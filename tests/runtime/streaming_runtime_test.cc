/**
 * @file
 * Tests of the §6.6 mini streaming runtime: data integrity through the
 * prefetch path, the fallback-to-slow path, and the Table 4 throughput
 * shape (memif beats direct slow-memory streaming).
 */
#include "runtime/streaming_runtime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "memif/device.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/random.h"
#include "workloads/stream.h"

namespace memif::runtime {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    core::MemifDevice dev;

    Fixture() : proc(kernel.create_process()), dev(kernel, proc) {}

    /** Map and fill a stream source in slow memory. */
    vm::VAddr
    make_stream(std::uint64_t bytes, std::uint64_t seed = 1)
    {
        const vm::VAddr base = proc.mmap(bytes, vm::PageSize::k4K);
        EXPECT_NE(base, 0u);
        sim::Rng rng(seed);
        std::vector<double> chunk(4096 / sizeof(double));
        for (std::uint64_t off = 0; off < bytes; off += 4096) {
            for (double &v : chunk) v = rng.next_double();
            proc.as().write(base + off, chunk.data(), 4096);
        }
        return base;
    }
};

TEST(StreamingRuntime, PrefetchedAndDirectRunsAgreeOnData)
{
    // The strongest data-integrity check: streaming through fast-memory
    // buffers (replicated by memif) must produce the exact digest of
    // computing in place.
    Fixture f;
    const std::uint64_t total = 8u << 20;
    const vm::VAddr src = f.make_stream(total);
    StreamingRuntime rt(f.kernel, f.proc, f.dev,
                        RuntimeConfig{.num_buffers = 4,
                                      .buffer_bytes = 1u << 20,
                                      .page_size = vm::PageSize::k4K});
    workloads::StreamTriad triad;

    StreamRunResult direct;
    f.kernel.spawn(rt.run_direct(src, total, triad, &direct));
    f.kernel.run();

    StreamRunResult prefetched;
    f.kernel.spawn(rt.run(src, total, triad, &prefetched));
    f.kernel.run();

    EXPECT_EQ(direct.bytes_consumed, total);
    EXPECT_EQ(prefetched.bytes_consumed, total);
    ASSERT_NE(direct.result_digest, 0u);
    EXPECT_EQ(prefetched.result_digest, direct.result_digest);
}

TEST(StreamingRuntime, PrefetchingBeatsDirectForTriad)
{
    // Long enough that the warmup (first fills pay fresh descriptor
    // configuration) is amortized, as in the paper's runs.
    Fixture f;
    const std::uint64_t total = 48u << 20;
    const vm::VAddr src = f.make_stream(total);
    StreamingRuntime rt(f.kernel, f.proc, f.dev);
    workloads::StreamTriad triad;

    StreamRunResult direct, prefetched;
    f.kernel.spawn(rt.run_direct(src, total, triad, &direct));
    f.kernel.run();
    f.kernel.spawn(rt.run(src, total, triad, &prefetched));
    f.kernel.run();

    const double gain = prefetched.throughput_mb_per_sec() /
                        direct.throughput_mb_per_sec() - 1.0;
    // Paper Table 4: +33.6% for triad. Require a solid gain with slack.
    EXPECT_GT(gain, 0.20);
    EXPECT_LT(gain, 0.50);
    // Most chunks must have come through the fast buffers.
    EXPECT_GT(prefetched.chunks_from_fast,
              2 * prefetched.chunks_from_slow);
}

TEST(StreamingRuntime, ThroughputsLandNearTable4)
{
    Fixture f;
    const std::uint64_t total = 64u << 20;
    const vm::VAddr src = f.make_stream(total);
    StreamingRuntime rt(f.kernel, f.proc, f.dev);

    struct Row {
        runtime::StreamKernel *kernel;
        double paper_linux;
        double paper_memif;
    };
    workloads::StreamClusterPgain pgain;
    workloads::StreamTriad triad;
    workloads::StreamAdd add;
    const Row rows[] = {{&pgain, 1440.1, 1778.4},
                        {&triad, 2384.1, 3184.4},
                        {&add, 2390.1, 3186.9}};

    for (const Row &row : rows) {
        StreamRunResult direct, prefetched;
        f.kernel.spawn(rt.run_direct(src, total, *row.kernel, &direct));
        f.kernel.run();
        f.kernel.spawn(rt.run(src, total, *row.kernel, &prefetched));
        f.kernel.run();
        // Within 15% of the paper's absolute numbers (MB/s).
        EXPECT_NEAR(direct.throughput_mb_per_sec(), row.paper_linux,
                    0.15 * row.paper_linux)
            << row.kernel->name();
        EXPECT_NEAR(prefetched.throughput_mb_per_sec(), row.paper_memif,
                    0.15 * row.paper_memif)
            << row.kernel->name();
    }
}

TEST(StreamingRuntime, FallsBackToSlowWhenBuffersStarve)
{
    // One tiny buffer: compute drains it instantly relative to the
    // fill, so the fallback path must engage.
    Fixture f;
    const std::uint64_t total = 4u << 20;
    const vm::VAddr src = f.make_stream(total);
    StreamingRuntime rt(f.kernel, f.proc, f.dev,
                        RuntimeConfig{.num_buffers = 1,
                                      .buffer_bytes = 64 * 1024,
                                      .page_size = vm::PageSize::k4K});
    workloads::StreamTriad triad;
    StreamRunResult res;
    f.kernel.spawn(rt.run(src, total, triad, &res));
    f.kernel.run();
    EXPECT_EQ(res.bytes_consumed, total);
    EXPECT_GT(res.chunks_from_slow, 0u);
    EXPECT_GT(res.chunks_from_fast, 0u);
}

TEST(StreamingRuntime, HandlesNonChunkMultipleStreams)
{
    Fixture f;
    const std::uint64_t total = (3u << 20) + 8 * 4096;  // ragged tail
    const vm::VAddr src = f.make_stream(total);
    StreamingRuntime rt(f.kernel, f.proc, f.dev);
    workloads::StreamAdd add;
    StreamRunResult pre, direct;
    f.kernel.spawn(rt.run(src, total, add, &pre));
    f.kernel.run();
    f.kernel.spawn(rt.run_direct(src, total, add, &direct));
    f.kernel.run();
    EXPECT_EQ(pre.bytes_consumed, total);
    EXPECT_EQ(pre.result_digest, direct.result_digest);
}

TEST(StreamKernels, ProcessFoldsRealData)
{
    workloads::StreamTriad triad;
    std::vector<double> data(1024, 1.0);
    triad.process(reinterpret_cast<const std::byte *>(data.data()),
                  data.size() * sizeof(double));
    const std::uint64_t one = triad.result();
    EXPECT_NE(one, 0u);
    triad.reset();
    EXPECT_EQ(triad.result(), 0u);
    // Different data, different digest.
    data.assign(1024, 2.0);
    triad.process(reinterpret_cast<const std::byte *>(data.data()),
                  data.size() * sizeof(double));
    EXPECT_NE(triad.result(), one);
}

TEST(StreamKernels, PgainAccumulatesBoundedCosts)
{
    workloads::StreamClusterPgain pgain;
    std::vector<float> points(workloads::StreamClusterPgain::kDim * 100,
                              0.5f);
    pgain.process(reinterpret_cast<const std::byte *>(points.data()),
                  points.size() * sizeof(float));
    EXPECT_DOUBLE_EQ(pgain.gain(), 0.0);  // all points at the center
    points.assign(points.size(), 100.0f);  // far away: capped cost
    pgain.process(reinterpret_cast<const std::byte *>(points.data()),
                  points.size() * sizeof(float));
    EXPECT_DOUBLE_EQ(pgain.gain(), 100 * 4.0);
}

TEST(StreamKernels, ModelsMatchCalibration)
{
    workloads::StreamTriad triad;
    workloads::StreamClusterPgain pgain;
    // Slow-memory consumption rates (GB/s) used by Table 4.
    const double triad_slow = 6.2e9 / triad.model().slow_traffic_factor;
    const double pgain_slow = 6.2e9 / pgain.model().slow_traffic_factor;
    EXPECT_NEAR(triad_slow / 1e9, 2.37, 0.1);
    EXPECT_NEAR(pgain_slow / 1e9, 1.44, 0.1);
    EXPECT_NEAR(pgain.model().compute_rate_fast / 1e9, 1.80, 0.05);
}

}  // namespace
}  // namespace memif::runtime
