/**
 * @file
 * Tiered memory: the chained multi-hop eviction engine (tiered_memory
 * lever). A migration between non-adjacent tiers (SRAM ↔ far, as the
 * SLIT distances encode) is decomposed into per-hop DMA stages through
 * the middle (DDR) tier: the request is split into bounded batches,
 * each batch leases staging frames from a capped pool, copies
 * old→staging (hop 1) then staging→new (hop 2), and returns the
 * frames. With pipelined_eviction on, up to tiered_max_batches batches
 * are in flight at once and their stages execute out of order across
 * the engine's transfer controllers — batch k+1's fast hop overlaps
 * batch k's slow far hop — so a large eviction approaches the far
 * tier's bandwidth instead of the sum of both hops' serial times.
 *
 * Recovery is per hop: each stage supervises its own transfer
 * (completion callback + deadline timer; the flight-table watchdog
 * machinery never sees hop transfers) and runs the PR 1 ladder —
 * bounded retries with exponential backoff, then the CPU byte-copy
 * fallback. A stage whose ladder runs dry fails the chain: sibling
 * batches stop before their next hop, and the master rolls the remap
 * back. Mid-chain state is recoverable by construction — completed
 * hops only wrote staging or new frames that no PTE points at yet
 * (chained flights migrate behind blocking migration PTEs), so the
 * old frames stay authoritative until Release.
 */
#include "memif/device.h"

#include <algorithm>

#include "sim/log.h"

namespace memif::core {

using sim::ExecContext;
using sim::Op;

namespace {

/** Append a run to @p sg, merging into the previous entry when both
 *  sides are contiguous (bulk-allocated staging frames usually are —
 *  the hop-level analogue of the sg_coalescing lever). */
void
append_merged(std::vector<dma::SgEntry> &sg, std::uint64_t src,
              std::uint64_t dst, std::uint64_t bytes)
{
    if (!sg.empty()) {
        dma::SgEntry &last = sg.back();
        if (last.src_addr + last.bytes == src &&
            last.dst_addr + last.bytes == dst) {
            last.bytes += bytes;
            return;
        }
    }
    sg.push_back(dma::SgEntry{src, dst, bytes});
}

}  // namespace

mem::NodeId
MemifDevice::chain_mid_node(mem::NodeId src, mem::NodeId dst) const
{
    if (src == dst) return mem::kInvalidNode;
    mem::PhysicalMemory &pm = kernel_.phys();
    const std::uint32_t direct = pm.distance(src, dst);
    mem::NodeId best = mem::kInvalidNode;
    std::uint32_t best_worst = 0;
    const auto count = static_cast<mem::NodeId>(pm.node_count());
    for (mem::NodeId n = 0; n < count; ++n) {
        if (n == src || n == dst) continue;
        const std::uint32_t a = pm.distance(src, n);
        const std::uint32_t b = pm.distance(n, dst);
        // "Between" in SLIT terms: strictly closer to both endpoints
        // than they are to each other. With the default topology only
        // DDR sits between SRAM and the far tier; SRAM is not between
        // DDR and far (its far leg is longer than the direct path).
        if (a >= direct || b >= direct) continue;
        const std::uint32_t worst = a > b ? a : b;
        if (best == mem::kInvalidNode || worst < best_worst) {
            best = n;
            best_worst = worst;
        }
    }
    return best;
}

sim::Task
MemifDevice::staging_acquire(mem::NodeId mid, unsigned order,
                             std::uint32_t pages,
                             std::vector<mem::Pfn> *out, bool *ok)
{
    *ok = false;
    const std::uint64_t frames = std::uint64_t{pages} << order;
    // The pool bounds total staging memory across all chains. A batch
    // larger than the whole cap may borrow past it *alone* (progress
    // guarantee); everyone else waits for a peer's release.
    bool waited = false;
    while (staging_frames_out_ != 0 &&
           staging_frames_out_ + frames > config_.staging_pool_pages) {
        if (!waited) {
            waited = true;
            ++stats_.staging_pool_waits;
        }
        co_await staging_wq_.wait();
        if (stopping_) co_return;
    }
    staging_frames_out_ += frames;
    if (staging_frames_out_ > stats_.staging_frames_hwm)
        stats_.staging_frames_hwm = staging_frames_out_;
    // Straight from the buddy, not the magazines: staging frames are
    // transient device property, never tenant-charged, and freeing
    // them back keeps the magazines' accounting untouched.
    const sim::CostModel &cm = kernel_.costs();
    mem::PhysicalMemory &pm = kernel_.phys();
    sim::Duration cost = 0;
    std::vector<mem::Pfn> got;
    got.reserve(pages);
    bool exhausted = false;
    for (std::uint32_t i = 0; i < pages; ++i) {
        cost += cm.page_alloc_time(order);
        const mem::Pfn pfn = pm.allocate(mid, order);
        if (pfn == mem::kInvalidPfn) {
            exhausted = true;
            break;
        }
        got.push_back(pfn);
    }
    if (exhausted) {
        // Middle tier itself is full: undo and report — the batch
        // degrades to a direct end-to-end hop.
        for (const mem::Pfn pfn : got) pm.free(pfn, order);
        staging_frames_out_ -= frames;
        staging_wq_.notify_all();
        co_await kernel_.cpu().busy(ExecContext::kKthread, Op::kRemap,
                                    cost);
        co_return;
    }
    co_await kernel_.cpu().busy(ExecContext::kKthread, Op::kRemap, cost);
    *out = std::move(got);
    *ok = true;
}

void
MemifDevice::staging_release(std::vector<mem::Pfn> &frames, unsigned order)
{
    mem::PhysicalMemory &pm = kernel_.phys();
    for (const mem::Pfn pfn : frames) pm.free(pfn, order);
    staging_frames_out_ -= std::uint64_t{frames.size()} << order;
    frames.clear();
    staging_wq_.notify_all();
}

sim::Task
MemifDevice::run_hop(InFlightPtr fl, const std::vector<dma::SgEntry> *sg,
                     bool *ok)
{
    const sim::CostModel &cm = kernel_.costs();
    sim::Cpu &cpu = kernel_.cpu();
    dma::DmaDriver &drv = kernel_.dma();
    *ok = false;
    std::uint64_t bytes = 0;
    for (const dma::SgEntry &e : *sg) bytes += e.bytes;

    for (std::uint32_t attempt = 1;; ++attempt) {
        if (fl->chain_failed || stopping_) co_return;
        co_await drv.reserve_descriptors(
            static_cast<std::uint32_t>(sg->size()), &fl->chain_failed,
            &stopping_);
        if (fl->chain_failed || stopping_) co_return;
        dma::DmaDriver::Prepared prepared = drv.prepare(*sg);
        co_await cpu.busy(ExecContext::kKthread, Op::kDmaConfig,
                          prepared.cpu_time);
        if (fl->chain_failed || stopping_) {
            drv.abandon(std::move(prepared));
            co_return;
        }
        const unsigned tc = config_.multi_tc_dispatch ? drv.pick_tc() : tc_;
        ++stats_.tc_dispatches[tc];
        ++stats_.hop_stages_issued;
        if (++active_hop_stages_ > 1) ++stats_.hop_overlap_events;
        // Self-supervised completion: the stage waits on its own event,
        // set by the completion callback or by a deadline timer at the
        // watchdog margin — the latter covers stuck transfers and lost
        // IRQs without the flight-table watchdog (whose scans key off
        // fl->tid, which a chained master never populates). The shared
        // event outlives the frame, so a late engine callback after a
        // timeout (or teardown) sets a flag nobody reads instead of
        // resuming freed memory.
        auto done = std::make_shared<sim::SimEvent>(kernel_.eq());
        const sim::SimTime started = kernel_.eq().now();
        const dma::TransferId tid =
            drv.start(std::move(prepared), /*irq_mode=*/true,
                      [done](dma::TransferId) { done->set(); }, tc,
                      /*moderated=*/false, nullptr);
        const sim::SimTime quote = drv.completion_time(tid);
        const sim::Duration remaining =
            quote > started ? quote - started : 0;
        const auto padded = static_cast<sim::Duration>(
            static_cast<double>(remaining) * config_.watchdog_margin);
        const sim::EventQueue::EventId timer = kernel_.eq().schedule_at(
            started + padded + config_.watchdog_slack,
            [done] { done->set(); });
        co_await done->wait();
        kernel_.eq().cancel(timer);
        --active_hop_stages_;
        // Inspect the transfer before any suspension: once the recovery
        // path yields, the engine may purge an errored record and the
        // stale id would read as a clean completion.
        bool success = false;
        if (drv.is_complete(tid)) {
            if (drv.status(tid) == dma::TransferStatus::kOk) {
                // If the completion IRQ was lost the retiring callback
                // never ran; return the lease ourselves (harmless when
                // it did run).
                drv.reclaim(tid);
                success = true;
            } else {
                // TC bus error: completion moved zero bytes.
                ++stats_.dma_errors;
                drv.reclaim(tid);
            }
        } else {
            // Stuck: the deadline passed with the transfer still
            // running. Cancel returns the lease and feeds the ladder.
            ++stats_.watchdog_timeouts;
            drv.cancel(tid);
        }
        co_await cpu.busy(ExecContext::kKthread, Op::kSched,
                          cm.irq_overhead);
        if (success) {
            ++stats_.hop_stages_completed;
            *ok = true;
            co_return;
        }
        // The per-hop ladder: bounded retries with exponential backoff,
        // then the CPU byte-copy floor. Only the failed hop is redone —
        // earlier hops' copies are already safe in staging/new frames.
        if (attempt <= config_.dma_max_retries) {
            ++stats_.hop_retries;
            ++stats_.dma_retries;
            co_await sim::Delay{kernel_.eq(), config_.dma_retry_backoff
                                                 << (attempt - 1)};
            continue;
        }
        if (config_.cpu_copy_fallback) {
            mem::PhysicalMemory &pm = kernel_.phys();
            for (const dma::SgEntry &e : *sg)
                pm.copy(e.dst_addr >> mem::kPageShift,
                        e.src_addr >> mem::kPageShift, e.bytes);
            co_await cpu.busy(ExecContext::kKthread, Op::kCopy,
                              cm.cpu_copy_time(bytes));
            ++stats_.hop_fallback_copies;
            ++stats_.fallback_copies;
            ++stats_.hop_stages_completed;
            *ok = true;
        }
        co_return;
    }
}

sim::Task
MemifDevice::run_chain_batch(InFlightPtr fl, ChainStatePtr cs,
                             mem::NodeId mid, std::uint32_t first,
                             std::uint32_t count)
{
    ++stats_.chain_batches;
    bool ok = true;
    if (!fl->chain_failed && !stopping_) {
        std::vector<mem::Pfn> staging;
        bool have_staging = false;
        co_await staging_acquire(mid, fl->order, count, &staging,
                                 &have_staging);
        if (!fl->chain_failed && !stopping_) {
            if (have_staging) {
                std::vector<dma::SgEntry> hop1;
                std::vector<dma::SgEntry> hop2;
                hop1.reserve(count);
                hop2.reserve(count);
                for (std::uint32_t i = 0; i < count; ++i) {
                    const std::uint64_t src = fl->old_pfns[first + i]
                                              << mem::kPageShift;
                    const std::uint64_t st = staging[i]
                                             << mem::kPageShift;
                    const std::uint64_t dst = fl->new_pfns[first + i]
                                              << mem::kPageShift;
                    append_merged(hop1, src, st, fl->page_bytes);
                    append_merged(hop2, st, dst, fl->page_bytes);
                }
                stats_.sg_entries_emitted += hop1.size() + hop2.size();
                co_await run_hop(fl, &hop1, &ok);
                if (ok && !fl->chain_failed && !stopping_)
                    co_await run_hop(fl, &hop2, &ok);
            } else if (!stopping_) {
                // Middle tier exhausted: degrade this batch to one
                // direct end-to-end hop — correct, just unstaged (the
                // far latency rides on every descriptor, and nothing
                // overlaps inside the batch).
                std::vector<dma::SgEntry> direct;
                direct.reserve(count);
                for (std::uint32_t i = 0; i < count; ++i)
                    append_merged(
                        direct,
                        fl->old_pfns[first + i] << mem::kPageShift,
                        fl->new_pfns[first + i] << mem::kPageShift,
                        fl->page_bytes);
                stats_.sg_entries_emitted += direct.size();
                co_await run_hop(fl, &direct, &ok);
            }
        }
        if (!staging.empty()) staging_release(staging, fl->order);
    }
    if (!ok) fl->chain_failed = true;
    --cs->batches_left;
    cs->join.notify_all();
}

sim::Task
MemifDevice::run_chain(InFlightPtr fl, mem::NodeId mid)
{
    const std::uint32_t bp =
        std::max<std::uint32_t>(config_.tiered_batch_pages, 1);
    const std::uint32_t nb = (fl->num_pages + bp - 1) / bp;
    auto cs = std::make_shared<ChainState>(kernel_.eq());
    cs->batches_left = nb;
    // Pipelined: keep up to tiered_max_batches batches in flight; their
    // hop stages land on whichever TC frees up first, so batch k+1's
    // hop 1 runs while batch k's hop 2 is still copying. Sequential
    // (store-and-forward, the bench baseline): a window of one batch,
    // each batch's hops in series.
    const std::uint32_t window =
        config_.pipelined_eviction
            ? std::max<std::uint32_t>(config_.tiered_max_batches, 1)
            : 1;
    // Batch frames are owned here: destroying the master (device
    // teardown destroys chain_tasks_) destroys every suspended batch
    // and hop frame with it, so nothing kernel-owned can resume into a
    // dead device.
    std::vector<sim::Task> batches;
    std::uint32_t launched = 0;
    for (std::uint32_t b = 0; b < nb; ++b) {
        while (launched - (nb - cs->batches_left) >= window)
            co_await cs->join.wait();
        if (stopping_) co_return;
        const std::uint32_t first = b * bp;
        const std::uint32_t count =
            std::min<std::uint32_t>(bp, fl->num_pages - first);
        std::erase_if(batches, [](const sim::Task &t) {
            if (!t.done()) return false;
            t.rethrow_if_failed();
            return true;
        });
        batches.push_back(run_chain_batch(fl, cs, mid, first, count));
        ++launched;
    }
    while (cs->batches_left != 0) co_await cs->join.wait();
    if (stopping_) co_return;
    if (fl->chain_failed) {
        // Mid-chain failure: only unfinished hops are lost — completed
        // hops wrote frames no PTE points at, so restoring the old
        // PTEs (and freeing the new frames) is the whole rollback.
        ++stats_.chain_rollbacks;
        fail_unrecoverable(fl, ExecContext::kKthread, MovError::kDmaError);
    } else {
        co_await do_release(fl, ExecContext::kKthread);
    }
    // The master retires the flight itself — no completion interrupt
    // fires for a chain. The worker may have gone to sleep while this
    // flight was the only thing keeping the queues kernel-owned (red);
    // wake it so it can hand flush responsibility back to the
    // application, or nothing ever kicks the next submission.
    wake_kthread();
}

}  // namespace memif::core
