#include "dma/engine.h"

#include <cstring>

#include "sim/log.h"

namespace memif::dma {

namespace {

/** Per-side bandwidth of the node owning physical byte address @p addr. */
double
addr_bandwidth(mem::PhysicalMemory &pm, std::uint64_t addr)
{
    const mem::NodeId id = pm.node_of(addr >> mem::kPageShift);
    MEMIF_ASSERT(id != mem::kInvalidNode, "DMA address outside memory");
    return pm.node(id).bandwidth_bps();
}

/**
 * Per-descriptor access latency implied by the nodes a descriptor
 * touches: the slower (higher-latency) side gates the transfer, as with
 * bandwidth. On-board tiers carry zero, so two-node machines are
 * byte-identical; only descriptors touching a far/remote node pay.
 */
sim::Duration
desc_latency(mem::PhysicalMemory &pm, const TransferDescriptor &d)
{
    const auto lat = [&pm](std::uint64_t addr) {
        const mem::NodeId id = pm.node_of(addr >> mem::kPageShift);
        MEMIF_ASSERT(id != mem::kInvalidNode, "DMA address outside memory");
        return pm.node(id).latency_ns();
    };
    const std::uint64_t s = lat(d.src);
    const std::uint64_t t = lat(d.dst);
    return static_cast<sim::Duration>(s > t ? s : t);
}

}  // namespace

sim::Duration
Edma3Engine::chain_duration(DescIndex head) const
{
    sim::Duration total = cm_.dma_latency;
    DescIndex idx = head;
    unsigned hops = 0;
    while (idx != kNullLink) {
        MEMIF_ASSERT(++hops <= DescriptorRam::kEntries,
                     "descriptor chain loops");
        const TransferDescriptor &d = ram_.read(idx);
        auto &pm = const_cast<mem::PhysicalMemory &>(pm_);
        const double src_bw = addr_bandwidth(pm, d.src);
        const double dst_bw = addr_bandwidth(pm, d.dst);
        total += cm_.dma_per_desc + desc_latency(pm, d) +
                 cm_.dma_stream_time(d.total_bytes(), src_bw, dst_bw);
        idx = d.link;
    }
    return total;
}

TransferId
Edma3Engine::start_chain(DescIndex head, unsigned tc, bool raise_irq,
                         CompletionFn on_complete, bool moderated,
                         XlateGate gate)
{
    MEMIF_ASSERT(tc < kNumTcs, "bad transfer controller");
    // Housekeeping: keep the flight table bounded even when no driver
    // ever calls purge_finished() explicitly.
    if (flights_.size() >= kPurgeThreshold) purge_finished();

    const sim::Duration duration = chain_duration(head);
    const sim::SimTime begin =
        tc_busy_until_[tc] > eq_.now() ? tc_busy_until_[tc] : eq_.now();
    const sim::SimTime done_at = begin + duration;
    tc_busy_until_[tc] = done_at;

    const TransferId id = next_id_++;
    Flight flight{head, raise_irq};
    flight.moderated = moderated && raise_irq;
    flight.tc = tc;
    flight.completes_at = done_at;
    flight.on_complete = std::move(on_complete);
    // The error model decides each transfer's fate up front so one
    // seeded plan replays identically. Sites are only consulted while
    // armed (the common case costs one integer compare).
    if (faults_ && faults_->enabled()) {
        flight.stuck = faults_->should_fire(kFaultStuck);
        flight.error =
            faults_->should_fire(kFaultTcError) && !flight.stuck;
        // A lost completion only makes sense in interrupt mode; polled
        // completions are observed via the pollable flag.
        flight.lose_irq =
            faults_->should_fire(kFaultLostIrq) && raise_irq;
    }
    // Stepped (SVA-gated) consumption: with zero gate stalls the step
    // events land at exactly the monolithic done_at, so an always-hit
    // gate is time-identical to the pre-pinned path. Injected error /
    // stuck transfers keep the monolithic event: an errored chain moves
    // no bytes at all, and a stuck one never completes.
    const bool stepped = gate && !flight.stuck && !flight.error;
    if (stepped) {
        flight.gate = std::move(gate);
        flight.next_desc = head;
        ++stats_.gated_transfers;
    }
    flights_.emplace(id, std::move(flight));
    ++stats_.transfers_started;
    stats_.busy_time += duration;

    if (stepped) {
        eq_.schedule_at(begin + cm_.dma_latency,
                        [this, id] { step_chain(id); });
        return id;
    }
    eq_.schedule_at(done_at, [this, id] {
        auto it = flights_.find(id);
        if (it == flights_.end()) return;  // cancelled and purged
        Flight &fl = it->second;
        if (fl.cancelled) return;
        if (fl.stuck) return;  // hangs until the driver cancels it
        if (fl.error) {
            // TC bus error: the chain terminates without moving a
            // byte; the CC dispatches the error interrupt instead of
            // the completion interrupt.
            ++stats_.transfers_failed;
        } else {
            execute_copies(fl.head);
            ++stats_.transfers_completed;
        }
        fl.completed = true;
        if (fl.lose_irq) {
            ++stats_.interrupts_lost;
            return;  // nobody learns of the completion
        }
        // An error interrupt is never moderated: the CC error line is
        // separate from the completion line, so time-to-detection of a
        // TC bus error is identical with moderation on or off.
        if (fl.moderated && !fl.error) {
            hold_completion(id, fl.tc);
            return;
        }
        if (fl.raise_irq) ++stats_.interrupts_raised;
        if (fl.on_complete) fl.on_complete(id);
    });
    return id;
}

void
Edma3Engine::step_chain(TransferId id)
{
    auto it = flights_.find(id);
    if (it == flights_.end() || it->second.cancelled) return;
    if (it->second.next_desc == kNullLink) {
        finish_flight(id);
        return;
    }
    MEMIF_ASSERT(++it->second.steps <= DescriptorRam::kEntries,
                 "descriptor chain loops");
    const std::uint32_t index = it->second.steps - 1;
    // The TC streams from a local copy: the gate may redirect the entry
    // (a mid-flight re-walk) without the PaRAM ever being rewritten.
    TransferDescriptor d = ram_.read(it->second.next_desc);
    XlateVerdict v = it->second.gate(id, index, d);
    // The gate is driver code; revalidate the iterator after it ran.
    it = flights_.find(id);
    if (it == flights_.end() || it->second.cancelled) return;
    Flight &fl = it->second;
    if (v.fault) {
        // SVA walk fault: the chain terminates like a TC bus error —
        // the CC error interrupt dispatches immediately and is never
        // moderated or lost. Entries already streamed stay written;
        // the driver's recovery ladder owns the cleanup.
        fl.error = true;
        fl.gate_fault = true;
        fl.completed = true;
        fl.completes_at = eq_.now();
        ++stats_.transfers_failed;
        ++stats_.gate_faults;
        if (fl.raise_irq) ++stats_.interrupts_raised;
        if (fl.on_complete) fl.on_complete(id);
        return;
    }
    if (v.stall > 0) {
        // The consumer outran the translation machinery: push the
        // completion estimate (and the TC's busy horizon) back so
        // completion_time() keeps quoting the current schedule.
        ++stats_.gate_stalls;
        stats_.gate_stall_time += v.stall;
        stats_.busy_time += v.stall;
        fl.completes_at += v.stall;
        if (tc_busy_until_[fl.tc] < fl.completes_at)
            tc_busy_until_[fl.tc] = fl.completes_at;
    }
    const double src_bw = addr_bandwidth(pm_, d.src);
    const double dst_bw = addr_bandwidth(pm_, d.dst);
    const sim::Duration step =
        v.stall + cm_.dma_per_desc + desc_latency(pm_, d) +
        cm_.dma_stream_time(d.total_bytes(), src_bw, dst_bw);
    fl.next_desc = d.link;
    // Bytes land when the entry finishes streaming; the next gate check
    // happens at the same instant.
    eq_.schedule_after(step, [this, id, d] {
        auto cur = flights_.find(id);
        if (cur == flights_.end() || cur->second.cancelled) return;
        execute_one(d);
        step_chain(id);
    });
}

void
Edma3Engine::finish_flight(TransferId id)
{
    auto it = flights_.find(id);
    if (it == flights_.end()) return;
    Flight &fl = it->second;
    fl.completed = true;
    ++stats_.transfers_completed;
    if (fl.lose_irq) {
        ++stats_.interrupts_lost;
        return;  // nobody learns of the completion
    }
    if (fl.moderated && !fl.error) {
        hold_completion(id, fl.tc);
        return;
    }
    if (fl.raise_irq) ++stats_.interrupts_raised;
    if (fl.on_complete) fl.on_complete(id);
}

bool
Edma3Engine::gate_faulted(TransferId id) const
{
    auto it = flights_.find(id);
    return it != flights_.end() && it->second.gate_fault;
}

void
Edma3Engine::hold_completion(TransferId id, unsigned tc)
{
    Moderation &mod = moderation_[tc];
    flights_.at(id).delivery_pending = true;
    mod.pending.push_back(id);
    // While masked the driver's poller reaps held completions itself
    // (NAPI-style); neither the batch threshold nor the holdoff timer
    // raises an IRQ. An already-armed timer keeps running as a
    // liveness backstop.
    if (moderation_mask_ > 0) return;
    if (mod.pending.size() >= moderation_batch_) {
        flush_moderated(tc);
        return;
    }
    // First held completion arms the holdoff timer; later ones ride it.
    if (mod.timer == sim::EventQueue::kInvalidEvent) {
        mod.timer = eq_.schedule_after(moderation_holdoff_, [this, tc] {
            moderation_[tc].timer = sim::EventQueue::kInvalidEvent;
            ++stats_.moderation_timer_flushes;
            flush_moderated(tc);
        });
    }
}

void
Edma3Engine::flush_moderated(unsigned tc)
{
    Moderation &mod = moderation_[tc];
    if (mod.timer != sim::EventQueue::kInvalidEvent) {
        eq_.cancel(mod.timer);
        mod.timer = sim::EventQueue::kInvalidEvent;
    }
    if (mod.pending.empty()) return;
    std::vector<TransferId> batch;
    batch.swap(mod.pending);
    // One coalesced IRQ retires the whole batch.
    ++stats_.interrupts_raised;
    ++stats_.moderated_irqs;
    for (TransferId id : batch) {
        auto it = flights_.find(id);
        if (it == flights_.end() || !it->second.delivery_pending)
            continue;  // discarded (watchdog or teardown) meanwhile
        it->second.delivery_pending = false;
        ++stats_.moderated_completions;
        if (it->second.on_complete) it->second.on_complete(id);
    }
}

void
Edma3Engine::unmask_moderation()
{
    MEMIF_ASSERT(moderation_mask_ > 0, "unbalanced unmask_moderation");
    if (--moderation_mask_ > 0) return;
    // Deliver anything the poller left behind before it goes idle.
    for (unsigned tc = 0; tc < kNumTcs; ++tc) flush_moderated(tc);
}

bool
Edma3Engine::discard_moderated(TransferId id)
{
    auto it = flights_.find(id);
    if (it == flights_.end() || !it->second.delivery_pending) return false;
    it->second.delivery_pending = false;
    Moderation &mod = moderation_[it->second.tc];
    std::erase(mod.pending, id);
    if (mod.pending.empty() &&
        mod.timer != sim::EventQueue::kInvalidEvent) {
        eq_.cancel(mod.timer);
        mod.timer = sim::EventQueue::kInvalidEvent;
    }
    return true;
}

void
Edma3Engine::execute_one(const TransferDescriptor &d)
{
    // Walk the 3D geometry; the common cases collapse to one memcpy.
    for (std::uint32_t frame = 0; frame < (d.c_cnt ? d.c_cnt : 1);
         ++frame) {
        for (std::uint32_t arr = 0; arr < d.b_cnt; ++arr) {
            const std::uint64_t src = d.src +
                                      frame * std::int64_t{d.src_cidx} +
                                      arr * std::int64_t{d.src_bidx};
            const std::uint64_t dst = d.dst +
                                      frame * std::int64_t{d.dst_cidx} +
                                      arr * std::int64_t{d.dst_bidx};
            std::byte *s = pm_.span(src >> mem::kPageShift,
                                    (src & (mem::kPageSize - 1)) + d.a_cnt) +
                           (src & (mem::kPageSize - 1));
            std::byte *t = pm_.span(dst >> mem::kPageShift,
                                    (dst & (mem::kPageSize - 1)) + d.a_cnt) +
                           (dst & (mem::kPageSize - 1));
            std::memcpy(t, s, d.a_cnt);
            stats_.bytes_copied += d.a_cnt;
        }
    }
}

void
Edma3Engine::execute_copies(DescIndex head)
{
    DescIndex idx = head;
    while (idx != kNullLink) {
        const TransferDescriptor &d = ram_.read(idx);
        execute_one(d);
        idx = d.link;
    }
}

bool
Edma3Engine::is_complete(TransferId id) const
{
    auto it = flights_.find(id);
    if (it == flights_.end()) return true;  // purged => finished
    return it->second.completed;
}

TransferStatus
Edma3Engine::status(TransferId id) const
{
    auto it = flights_.find(id);
    if (it == flights_.end()) return TransferStatus::kOk;  // purged
    if (it->second.cancelled) return TransferStatus::kCancelled;
    if (it->second.completed && it->second.error)
        return TransferStatus::kError;
    return TransferStatus::kOk;
}

sim::SimTime
Edma3Engine::completion_time(TransferId id) const
{
    auto it = flights_.find(id);
    if (it == flights_.end()) return 0;
    return it->second.completes_at;
}

std::size_t
Edma3Engine::purge_finished()
{
    return std::erase_if(flights_, [](const auto &kv) {
        // A moderated completion whose delivery is still held must keep
        // its record (and callback) alive until the batch flushes.
        return (kv.second.completed && !kv.second.delivery_pending) ||
               kv.second.cancelled;
    });
}

bool
Edma3Engine::cancel(TransferId id)
{
    auto it = flights_.find(id);
    if (it == flights_.end()) return false;  // purged => was finished
    if (it->second.completed) return false;
    if (!it->second.cancelled) {
        it->second.cancelled = true;
        ++stats_.transfers_cancelled;
    }
    return true;
}

}  // namespace memif::dma
