/**
 * @file
 * Basic simulation types: virtual time and duration helpers.
 *
 * The simulator measures time in integer nanoseconds of *virtual* time.
 * All modelled costs (CPU work, DMA transfers, interrupt latencies) advance
 * this clock; host wall-clock time is never consulted, which keeps every
 * experiment deterministic.
 */
#pragma once

#include <cstdint>

namespace memif::sim {

/** Virtual time, in nanoseconds since simulation start. */
using SimTime = std::uint64_t;

/** Duration in virtual nanoseconds. */
using Duration = std::uint64_t;

/** Sentinel for "no deadline". */
inline constexpr SimTime kTimeNever = ~SimTime{0};

/** @name Duration literals (plain constexpr helpers, not UDLs). */
///@{
constexpr Duration nanoseconds(std::uint64_t n) { return n; }
constexpr Duration microseconds(std::uint64_t n) { return n * 1000; }
constexpr Duration milliseconds(std::uint64_t n) { return n * 1000 * 1000; }
constexpr Duration seconds(std::uint64_t n) { return n * 1000 * 1000 * 1000; }
///@}

/** Convert a virtual duration to floating-point microseconds. */
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e3; }

/** Convert a virtual duration to floating-point milliseconds. */
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1e6; }

/** Convert a virtual duration to floating-point seconds. */
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1e9; }

/**
 * Throughput in GB/s for @p bytes moved over duration @p d.
 * Returns 0 for a zero duration.
 */
constexpr double gb_per_sec(std::uint64_t bytes, Duration d)
{
    if (d == 0) return 0.0;
    return static_cast<double>(bytes) / static_cast<double>(d);
}

}  // namespace memif::sim
