/**
 * @file
 * Host-time microbenchmark (google-benchmark) of the red-blue lock-free
 * queue — the one component that runs natively rather than under the
 * simulator.
 *
 * Checks the §4.3 claim that "compared to the classic design, the
 * overhead added by coloring is negligible", by comparing against a
 * mutex-protected queue baseline and measuring enqueue/dequeue pairs
 * single- and multi-threaded.
 */
#include <benchmark/benchmark.h>

#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <vector>

#include "lockfree/cell.h"
#include "lockfree/link.h"
#include "lockfree/queue.h"

namespace {

using namespace memif::lockfree;

struct Region {
    StackHeader stack_header;
    std::vector<Cell> cells;
    QueueHeader q_header;

    explicit Region(std::uint32_t n) : cells(n)
    {
        CellPool::initialize(&stack_header, cells.data(), n);
        CellPool pool(&stack_header, cells.data(), n);
        RedBlueQueue::initialize(&q_header, pool, Color::kRed);
    }
    RedBlueQueue
    queue()
    {
        return RedBlueQueue(&q_header,
                            CellPool(&stack_header, cells.data(),
                                     static_cast<std::uint32_t>(cells.size())));
    }
};

void
BM_RedBlueEnqueueDequeue(benchmark::State &state)
{
    static Region *region = nullptr;
    if (state.thread_index() == 0) region = new Region(4096);
    RedBlueQueue q = region->queue();
    for (auto _ : state) {
        q.enqueue(42);
        benchmark::DoNotOptimize(q.dequeue());
    }
    state.SetItemsProcessed(state.iterations() * 2);
    if (state.thread_index() == 0) {
        delete region;
        region = nullptr;
    }
}
BENCHMARK(BM_RedBlueEnqueueDequeue)->Threads(1)->Threads(2)->Threads(4);

void
BM_MutexQueueEnqueueDequeue(benchmark::State &state)
{
    static std::mutex *mu = nullptr;
    static std::deque<std::uint32_t> *dq = nullptr;
    if (state.thread_index() == 0) {
        mu = new std::mutex;
        dq = new std::deque<std::uint32_t>;
    }
    for (auto _ : state) {
        {
            std::lock_guard<std::mutex> lock(*mu);
            dq->push_back(42);
        }
        std::uint32_t v = 0;
        {
            std::lock_guard<std::mutex> lock(*mu);
            if (!dq->empty()) {
                v = dq->front();
                dq->pop_front();
            }
        }
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations() * 2);
    if (state.thread_index() == 0) {
        delete mu;
        delete dq;
        mu = nullptr;
        dq = nullptr;
    }
}
BENCHMARK(BM_MutexQueueEnqueueDequeue)->Threads(1)->Threads(2)->Threads(4);

void
BM_RedBlueMultiProducerBurst(benchmark::State &state)
{
    // submit_many()-like burst deposits: 16 enqueues then 16 dequeues
    // per iteration, every producer on ONE shared queue. All threads
    // hammer the same tail CAS — the contention the per-CPU submission
    // rings are designed to remove.
    static Region *region = nullptr;
    if (state.thread_index() == 0) region = new Region(1 << 16);
    RedBlueQueue q = region->queue();
    for (auto _ : state) {
        for (std::uint32_t i = 0; i < 16; ++i) q.enqueue(i);
        for (std::uint32_t i = 0; i < 16; ++i)
            benchmark::DoNotOptimize(q.dequeue());
    }
    state.SetItemsProcessed(state.iterations() * 32);
    if (state.thread_index() == 0) {
        delete region;
        region = nullptr;
    }
}
BENCHMARK(BM_RedBlueMultiProducerBurst)->Threads(1)->Threads(2)->Threads(4);

void
BM_RedBluePerProducerRings(benchmark::State &state)
{
    // The per-CPU-ring counterpart of the burst cell: identical op mix,
    // but each producer owns a private ring, so no CAS ever crosses
    // threads. The items/s gap versus MultiProducerBurst at 2/4
    // producers is the modeled contention win.
    static std::vector<std::unique_ptr<Region>> *rings = nullptr;
    if (state.thread_index() == 0) {
        rings = new std::vector<std::unique_ptr<Region>>;
        for (int i = 0; i < state.threads(); ++i)
            rings->push_back(std::make_unique<Region>(4096));
    }
    RedBlueQueue q = (*rings)[state.thread_index()]->queue();
    for (auto _ : state) {
        for (std::uint32_t i = 0; i < 16; ++i) q.enqueue(i);
        for (std::uint32_t i = 0; i < 16; ++i)
            benchmark::DoNotOptimize(q.dequeue());
    }
    state.SetItemsProcessed(state.iterations() * 32);
    if (state.thread_index() == 0) {
        delete rings;
        rings = nullptr;
    }
}
BENCHMARK(BM_RedBluePerProducerRings)->Threads(1)->Threads(2)->Threads(4);

void
BM_RedBlueSetColorProbe(benchmark::State &state)
{
    // The cost SubmitRequest pays per call when the queue is red: one
    // enqueue observing the color.
    Region region(4096);
    RedBlueQueue q = region.queue();
    for (auto _ : state) {
        const Color c = q.enqueue(1);
        benchmark::DoNotOptimize(c);
        benchmark::DoNotOptimize(q.dequeue());
    }
}
BENCHMARK(BM_RedBlueSetColorProbe);

void
BM_RedBlueFlushCycle(benchmark::State &state)
{
    // A full SubmitRequest blue-path cycle: enqueue, drain, recolor.
    Region staging_region(4096);
    Region submission_region(4096);
    RedBlueQueue staging = staging_region.queue();
    RedBlueQueue submission = submission_region.queue();
    staging.set_color(Color::kBlue);
    for (auto _ : state) {
        staging.enqueue(7);
        for (;;) {
            const DequeueResult d = staging.dequeue();
            if (!d.ok) break;
            submission.enqueue(d.value);
        }
        staging.set_color(Color::kRed);
        staging.set_color(Color::kBlue);
        benchmark::DoNotOptimize(submission.dequeue());
    }
}
BENCHMARK(BM_RedBlueFlushCycle);

}  // namespace

// Custom main: besides the console tables, always emit
// BENCH_lockfree_queue.json (google-benchmark's JSON schema) so the CI
// smoke job can collect the queue numbers alongside the figure
// harnesses' reports.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    std::ofstream json("BENCH_lockfree_queue.json");
    benchmark::ConsoleReporter console;
    benchmark::JSONReporter json_reporter;
    json_reporter.SetOutputStream(&json);
    json_reporter.SetErrorStream(&std::cerr);
    benchmark::RunSpecifiedBenchmarks(&console,
                                      json ? &json_reporter : nullptr);
    benchmark::Shutdown();
    return 0;
}
