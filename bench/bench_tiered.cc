/**
 * @file
 * Tiered memory (third far tier + chained multi-hop eviction).
 *
 * Two experiments, both on a three-node machine (6 MB SRAM, DDR,
 * far/remote tier at RDMA-class latency):
 *
 *   demotion burst   one large SRAM→far migration, decomposed by the
 *                    tiered lever into per-batch SRAM→DDR→far hop
 *                    chains. Pipelined (up to tiered_max_batches
 *                    batches in flight, hop stages out of order across
 *                    the engine's TCs) against sequential
 *                    store-and-forward (one batch at a time, its hops
 *                    in series) at several burst sizes.
 *
 *   capacity sweep   a working set grown past each tier boundary:
 *                    hottest pages on SRAM, warm middle on DDR, cold
 *                    tail on the far tier. Every epoch sweeps the whole
 *                    set — each access priced by the node its page
 *                    lives on *right now* — and churns a fixed window
 *                    across the hot/cold boundary with real chained
 *                    migrations (SRAM→far demotion, far→SRAM
 *                    promotion) racing the access loop. Aggregate
 *                    GB/s must degrade monotonically, with no cliff,
 *                    as the set outgrows SRAM and then DDR.
 *
 * Gates (scripts/check_bench_regression.py): pipelined >= 1.3x
 * sequential on the largest demotion burst, and every capacity-sweep
 * step retains a bounded fraction of the previous point's throughput
 * (monotone graceful degradation).
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.h"

namespace {

using namespace memif;
using namespace memif::bench;

constexpr std::uint64_t kPageBytes = 4096;
/** 6 MB SRAM / 4 KB. */
constexpr std::uint32_t kFastPages = 1536;

core::MemifConfig
tiered_cfg(bool pipelined)
{
    // The tiered lever pair without the managed daemon: both
    // experiments drive their migrations by hand, so placement is
    // deterministic and the chains are the only moving parts.
    core::MemifConfig mc;
    mc.tiered_memory = true;
    mc.pipelined_eviction = pipelined;
    // Hop stages overlap across transfer controllers; pinning every
    // stage to one TC would serialize them at the engine and hide the
    // pipelining entirely.
    mc.multi_tc_dispatch = true;
    return mc;
}

// ---------------------------------------------------------------------
// Demotion burst: pipelined vs sequential store-and-forward.
// ---------------------------------------------------------------------

struct BurstOutcome {
    sim::Duration elapsed = 0;
    std::uint64_t bytes = 0;
    core::DeviceStats stats{};

    double gb_per_sec() const { return sim::gb_per_sec(bytes, elapsed); }
};

BurstOutcome
run_burst(std::uint32_t pages, bool pipelined)
{
    os::KernelConfig kc;
    kc.far_bytes = 256ull << 20;
    TestBed bed(tiered_cfg(pipelined), kc);
    const vm::VAddr base =
        bed.proc.mmap(std::uint64_t{pages} * kPageBytes, vm::PageSize::k4K,
                      bed.kernel.fast_node());
    MEMIF_ASSERT(base != 0, "burst mmap failed");

    const std::uint32_t idx = bed.user.alloc_request();
    MEMIF_ASSERT(idx != core::kNoRequest);
    core::MovReq &req = bed.user.request(idx);
    req.op = core::MovOp::kMigrate;
    req.src_base = base;
    req.num_pages = pages;
    req.dst_node = bed.kernel.far_node();

    const sim::SimTime t0 = bed.kernel.eq().now();
    bed.kernel.spawn(bed.user.submit(idx));
    bed.kernel.run();
    MEMIF_ASSERT(req.load_status() == core::MovStatus::kDone,
                 "burst migration failed (%u)",
                 static_cast<unsigned>(req.error));

    BurstOutcome out;
    out.elapsed = req.complete_time - t0;
    out.bytes = std::uint64_t{pages} * kPageBytes;
    out.stats = bed.dev.stats();
    MEMIF_ASSERT(out.stats.chained_migrations == 1,
                 "burst did not take the chained path");
    return out;
}

// ---------------------------------------------------------------------
// Capacity sweep: working set grown past each tier boundary.
// ---------------------------------------------------------------------

/** Pages of the hot set pinned on SRAM (headroom for churn windows). */
constexpr std::uint32_t kHotBudget = 1024;
/** Pages of the warm set resting on DDR (the machine's DDR is sized
 *  above this so the staging pool and slack never collide). */
constexpr std::uint32_t kWarmBudget = 4096;
/** Pages swapped across the hot/cold boundary per epoch (two chained
 *  migrations: one SRAM→far demotion, one far→SRAM promotion). */
constexpr std::uint32_t kChurnWindow = 256;

struct SweepOutcome {
    sim::Duration elapsed = 0;
    std::uint64_t bytes = 0;
    core::DeviceStats stats{};

    double gb_per_sec() const { return sim::gb_per_sec(bytes, elapsed); }
};

SweepOutcome
run_sweep_cell(std::uint32_t ws_pages)
{
    const std::uint32_t epochs = quick_mode() ? 3 : 6;
    core::MemifConfig mc = tiered_cfg(/*pipelined=*/true);
    // Prevention keeps the access loop deterministic: a touch landing
    // on a page mid-churn blocks on the migration PTE instead of
    // racing the copy, so every churn migration terminates kDone.
    mc.race_policy = core::RacePolicy::kPrevent;
    os::KernelConfig kc;
    kc.slow_bytes = 24ull << 20;
    kc.far_bytes = 256ull << 20;
    TestBed bed(mc, kc);
    os::Kernel &k = bed.kernel;

    const std::uint32_t hot = std::min(ws_pages, kHotBudget);
    const std::uint32_t warm = std::min(ws_pages - hot, kWarmBudget);
    const std::uint32_t cold = ws_pages - hot - warm;

    auto map_on = [&](std::uint32_t pages, mem::NodeId node) -> vm::VAddr {
        if (pages == 0) return 0;
        const vm::VAddr va = bed.proc.mmap(
            std::uint64_t{pages} * kPageBytes, vm::PageSize::k4K, node);
        MEMIF_ASSERT(va != 0, "sweep mmap failed");
        return va;
    };
    const vm::VAddr hot_base = map_on(hot, k.fast_node());
    const vm::VAddr warm_base = map_on(warm, k.slow_node());
    const vm::VAddr cold_base = map_on(cold, k.far_node());

    // Price one access by where the page lives right now: the node's
    // bandwidth share for the page plus its access latency (the far
    // tier's RDMA-class round trip is what the sweep must surface)
    // plus a fixed per-access overhead.
    auto access_cost = [&](const vm::Vma *vma, std::uint32_t page) {
        const vm::Pte pte = vma->pte(page);
        const mem::NodeId n =
            pte.present && !pte.migration ? k.phys().node_of(pte.pfn)
                                          : k.slow_node();
        const mem::MemoryNode &node = k.phys().node(n);
        return static_cast<sim::Duration>(
                   static_cast<double>(kPageBytes) * 1e9 /
                   node.bandwidth_bps()) +
               static_cast<sim::Duration>(node.latency_ns()) + 150;
    };

    SweepOutcome out;
    sim::SimTime t_end = 0;
    const sim::SimTime t0 = k.eq().now();

    auto submit_migrate = [&](vm::VAddr src, std::uint32_t npages,
                              mem::NodeId dst) -> std::uint32_t {
        const std::uint32_t idx = bed.user.alloc_request();
        MEMIF_ASSERT(idx != core::kNoRequest);
        core::MovReq &req = bed.user.request(idx);
        req.op = core::MovOp::kMigrate;
        req.src_base = src;
        req.num_pages = npages;
        req.dst_node = dst;
        return idx;
    };

    auto driver = [&]() -> sim::Task {
        const std::uint32_t churn =
            cold > 0 ? std::min({kChurnWindow, cold, hot}) : 0;
        std::uint32_t hot_cursor = 0;
        std::uint32_t cold_cursor = 0;
        for (std::uint32_t e = 0; e < epochs; ++e) {
            // Boundary churn first, completion drained last: the two
            // chained migrations run underneath the access sweep, so
            // touches landing on mid-chain pages block on the
            // migration PTEs — the interference is part of the cell's
            // measured time, exactly as it would hit an application.
            std::uint32_t pending[2];
            std::uint32_t npending = 0;
            if (churn > 0) {
                pending[npending++] = submit_migrate(
                    hot_base + std::uint64_t{hot_cursor} * kPageBytes,
                    churn, k.far_node());
                pending[npending++] = submit_migrate(
                    cold_base + std::uint64_t{cold_cursor} * kPageBytes,
                    churn, k.fast_node());
                for (std::uint32_t i = 0; i < npending; ++i)
                    co_await bed.user.submit(pending[i]);
                hot_cursor = (hot_cursor + churn) % (hot - churn + 1);
                cold_cursor = (cold_cursor + churn) % (cold - churn + 1);
            }
            // Full working-set sweep, priced in small batches (one
            // lump per epoch would let the whole sweep land on one
            // instant and hide the churn interference).
            struct Span {
                vm::VAddr base;
                std::uint32_t pages;
            };
            const Span spans[3] = {
                {hot_base, hot}, {warm_base, warm}, {cold_base, cold}};
            sim::Duration pending_cost = 0;
            std::uint32_t pending_pages = 0;
            for (const Span &sp : spans) {
                if (sp.pages == 0) continue;
                const vm::Vma *vma = bed.proc.as().find_vma(sp.base);
                MEMIF_ASSERT(vma != nullptr, "sweep vma vanished");
                for (std::uint32_t p = 0; p < sp.pages; ++p) {
                    os::TouchOutcome t;
                    co_await bed.proc.touch(
                        sp.base + std::uint64_t{p} * kPageBytes,
                        /*write=*/false, &t);
                    pending_cost += access_cost(vma, p);
                    out.bytes += kPageBytes;
                    if (++pending_pages == 16) {
                        co_await sim::Delay{k.eq(), pending_cost};
                        pending_cost = 0;
                        pending_pages = 0;
                    }
                }
            }
            if (pending_cost > 0) co_await sim::Delay{k.eq(), pending_cost};
            // Drain the epoch's churn completions.
            for (std::uint32_t done = 0; done < npending;) {
                const std::uint32_t idx = bed.user.retrieve_completed();
                if (idx == core::kNoRequest) {
                    co_await bed.user.poll();
                    continue;
                }
                core::MovReq &req = bed.user.request(idx);
                MEMIF_ASSERT(req.succeeded(),
                             "churn migration failed (%u)",
                             static_cast<unsigned>(req.error));
                bed.user.free_request(idx);
                ++done;
            }
        }
        t_end = k.eq().now();
    };
    auto task = driver();
    k.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "sweep loop did not finish");
    out.elapsed = t_end - t0;
    out.stats = bed.dev.stats();
    return out;
}

}  // namespace

int
main()
{
    BenchReport report("tiered");

    header("Demotion burst: pipelined multi-hop vs store-and-forward");
    std::printf("%8s %12s %12s %12s %9s %8s %8s\n", "pages", "seq_GB/s",
                "pip_GB/s", "speedup", "batches", "stages", "overlap");
    rule();
    // 512 pages (2 MB) is the largest single request the descriptor
    // RAM admits — and a third of the SRAM, a genuinely large burst.
    const std::vector<std::uint32_t> bursts =
        quick_mode() ? std::vector<std::uint32_t>{64, 512}
                     : std::vector<std::uint32_t>{64, 256, 512};
    for (const std::uint32_t pages : bursts) {
        const BurstOutcome seq = run_burst(pages, /*pipelined=*/false);
        const BurstOutcome pip = run_burst(pages, /*pipelined=*/true);
        const double speedup = pip.gb_per_sec() / seq.gb_per_sec();
        std::printf("%8u %12.2f %12.2f %11.2fx %9llu %8llu %8llu\n",
                    pages, seq.gb_per_sec(), pip.gb_per_sec(), speedup,
                    static_cast<unsigned long long>(pip.stats.chain_batches),
                    static_cast<unsigned long long>(
                        pip.stats.hop_stages_issued),
                    static_cast<unsigned long long>(
                        pip.stats.hop_overlap_events));
        report.add("demotion-burst-sequential", pages, seq.gb_per_sec());
        report.add("demotion-burst-pipelined", pages, pip.gb_per_sec());
        report.add("pipelined-speedup", pages, speedup);
    }
    rule();

    header("Capacity sweep: working set vs the tier boundaries");
    std::printf("%6s %8s %6s %6s %6s %8s %10s %8s\n", "xSRAM", "pages",
                "hot", "warm", "cold", "GB/s", "elapsed_ms", "chains");
    rule();
    const double factors[] = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
    for (const double f : factors) {
        const auto ws =
            static_cast<std::uint32_t>(kFastPages * f);
        const SweepOutcome c = run_sweep_cell(ws);
        const std::uint32_t hot = std::min(ws, kHotBudget);
        const std::uint32_t warm = std::min(ws - hot, kWarmBudget);
        std::printf("%5.1fx %8u %6u %6u %6u %8.2f %10.1f %8llu\n", f, ws,
                    hot, warm, ws - hot - warm, c.gb_per_sec(),
                    sim::to_us(c.elapsed) / 1000.0,
                    static_cast<unsigned long long>(
                        c.stats.chained_migrations));
        report.add("capacity-sweep", f, c.gb_per_sec());
    }
    rule();
    std::printf("gates: pipelined >= 1.3x sequential on the largest "
                "burst; capacity sweep monotone with bounded per-step "
                "retention (no cliff)\n");
    return 0;
}
