#include "os/report.h"

#include "os/numa.h"
#include "sim/cpu.h"
#include "sim/types.h"

namespace memif::os {

void
print_system_report(std::FILE *out, Kernel &kernel)
{
    std::fprintf(out, "=== system report @ t=%.1f us ===\n",
                 sim::to_us(kernel.eq().now()));

    std::fprintf(out, "memory nodes:\n");
    for (const NumaNodeStat &s : numa_stat(kernel)) {
        std::fprintf(out,
                     "  node%u %-10s %6llu KB total, %6llu KB used, "
                     "%6llu KB free%s\n",
                     s.id, s.name.c_str(),
                     static_cast<unsigned long long>(s.total_bytes >> 10),
                     static_cast<unsigned long long>(s.used_bytes >> 10),
                     static_cast<unsigned long long>(s.free_bytes >> 10),
                     s.is_fast ? "  [fast]" : "");
    }

    const dma::EngineStats &es = kernel.dma_engine().stats();
    std::fprintf(out,
                 "dma engine: %llu transfers (%llu irq, %llu cancelled), "
                 "%llu MB moved, busy %.1f us\n",
                 static_cast<unsigned long long>(es.transfers_started),
                 static_cast<unsigned long long>(es.interrupts_raised),
                 static_cast<unsigned long long>(es.transfers_cancelled),
                 static_cast<unsigned long long>(es.bytes_copied >> 20),
                 sim::to_us(es.busy_time));
    const dma::DescriptorRamStats &ds =
        kernel.dma_engine().param_ram().stats();
    std::fprintf(out,
                 "descriptor ram: %llu full writes, %llu partial "
                 "(reuse) writes\n",
                 static_cast<unsigned long long>(ds.full_writes),
                 static_cast<unsigned long long>(ds.partial_writes));

    const sim::CpuAccounting &acct = kernel.cpu().accounting();
    std::fprintf(out, "cpu time by context:");
    for (unsigned c = 0;
         c < static_cast<unsigned>(sim::ExecContext::kCount); ++c) {
        const auto ctx = static_cast<sim::ExecContext>(c);
        std::fprintf(out, "  %s=%.1fus",
                     std::string(sim::to_string(ctx)).c_str(),
                     sim::to_us(acct.context(ctx)));
    }
    std::fprintf(out, "\ncpu time by operation:");
    for (unsigned o = 0; o < static_cast<unsigned>(sim::Op::kCount); ++o) {
        const auto op = static_cast<sim::Op>(o);
        if (acct.op(op) == 0) continue;
        std::fprintf(out, "  %s=%.1fus",
                     std::string(sim::to_string(op)).c_str(),
                     sim::to_us(acct.op(op)));
    }
    std::fprintf(out, "\n");
}

}  // namespace memif::os
