/**
 * @file
 * Tiered-memory tests: chained multi-hop migration between the SRAM
 * and far tiers (staged through DDR), pipelined batch overlap, and the
 * per-hop recovery ladder — injected TC errors and lost IRQs on the
 * second hop of a demotion chain must either be absorbed hop-locally
 * or roll the whole chain back with no leaked staging frames or
 * descriptor leases (the fixture's quiesce sweep checks both).
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "dma/engine.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::core {
namespace {

MemifConfig
tiered_cfg()
{
    // The tiered lever pair alone, without the managed daemon — these
    // tests drive migrations by hand and must not share the machine
    // with scanner-originated movs.
    MemifConfig cfg;
    cfg.tiered_memory = true;
    cfg.pipelined_eviction = true;
    // Hop stages overlap across transfer controllers; pinning every
    // stage to one TC would serialize them at the engine.
    cfg.multi_tc_dispatch = true;
    return cfg;
}

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = tiered_cfg(),
                     std::uint64_t far_bytes = 64ull << 20)
        : kernel(os::KernelConfig{.far_bytes = far_bytes}),
          proc(kernel.create_process()),
          dev(kernel, proc, cfg),
          user(dev)
    {
    }

    ~Fixture()
    {
        // No test may leave the driver dirty: empty flight table, no
        // leased descriptors, and — the tiered invariant — zero
        // staging frames still out of the pool.
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    sim::FaultInjector &faults() { return kernel.faults(); }

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    bool
    check(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!proc.as().read(base, buf.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    std::uint32_t
    migrate(vm::VAddr src, std::uint32_t npages, mem::NodeId dst_node)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = src;
        req.num_pages = npages;
        req.dst_node = dst_node;
        kernel.spawn(user.submit(idx));
        return idx;
    }

    void
    expect_on_node(vm::VAddr base, std::uint64_t npages, mem::NodeId n)
    {
        vm::Vma *vma = proc.as().find_vma(base);
        ASSERT_NE(vma, nullptr);
        for (std::uint64_t i = 0; i < npages; ++i) {
            const vm::Pte pte = vma->pte(i);
            EXPECT_EQ(kernel.phys().node_of(pte.pfn), n) << "page " << i;
            EXPECT_FALSE(pte.migration) << "page " << i;
        }
    }
};

TEST(Tiered, DemotionToFarChainsThroughDdr)
{
    Fixture f;
    const vm::VAddr base =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(base, 8 * 4096, 42);

    const std::uint32_t idx = f.migrate(base, 8, f.kernel.far_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 42));
    f.expect_on_node(base, 8, f.kernel.far_node());
    // One chain, one batch (8 <= tiered_batch_pages), two hop stages.
    EXPECT_EQ(f.dev.stats().chained_migrations, 1u);
    EXPECT_EQ(f.dev.stats().chain_batches, 1u);
    EXPECT_EQ(f.dev.stats().hop_stages_issued, 2u);
    EXPECT_EQ(f.dev.stats().hop_stages_completed, 2u);
    EXPECT_EQ(f.dev.stats().chain_rollbacks, 0u);
    EXPECT_GT(f.dev.stats().staging_frames_hwm, 0u);
}

TEST(Tiered, AdjacentMigrationsNeverChain)
{
    // slow↔far and fast↔slow are one SLIT hop apart: no middle node is
    // strictly closer to both endpoints, so these stay single-transfer
    // moves even with the lever on.
    Fixture f;
    const vm::VAddr base = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(base, 8 * 4096, 9);

    const std::uint32_t to_far = f.migrate(base, 8, f.kernel.far_node());
    f.kernel.run();
    EXPECT_EQ(f.user.request(to_far).load_status(), MovStatus::kDone);
    const std::uint32_t back = f.migrate(base, 8, f.kernel.slow_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(back).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 9));
    EXPECT_EQ(f.dev.stats().chained_migrations, 0u);
    EXPECT_EQ(f.dev.stats().hop_stages_issued, 0u);
}

TEST(Tiered, PromotionFromFarChainsBack)
{
    Fixture f;
    const vm::VAddr base =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(base, 16 * 4096, 77);

    const std::uint32_t down = f.migrate(base, 16, f.kernel.far_node());
    f.kernel.run();
    ASSERT_EQ(f.user.request(down).load_status(), MovStatus::kDone);
    const std::uint32_t up = f.migrate(base, 16, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(up).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 16 * 4096, 77));
    f.expect_on_node(base, 16, f.kernel.fast_node());
    EXPECT_EQ(f.dev.stats().chained_migrations, 2u);
    EXPECT_EQ(f.dev.stats().chain_rollbacks, 0u);
}

TEST(Tiered, PipelinedBatchesOverlapAndBeatSequential)
{
    auto run = [](bool pipelined) {
        MemifConfig cfg = tiered_cfg();
        cfg.pipelined_eviction = pipelined;
        Fixture f(cfg);
        const vm::VAddr base = f.proc.mmap(64 * 4096, vm::PageSize::k4K,
                                           f.kernel.fast_node());
        f.fill(base, 64 * 4096, 5);
        const std::uint32_t idx =
            f.migrate(base, 64, f.kernel.far_node());
        f.kernel.run();
        EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
        EXPECT_TRUE(f.check(base, 64 * 4096, 5));
        EXPECT_EQ(f.dev.stats().chain_batches, 4u);  // 64 / 16
        EXPECT_EQ(f.dev.stats().hop_stages_issued, 8u);
        if (pipelined)
            EXPECT_GT(f.dev.stats().hop_overlap_events, 0u);
        else
            EXPECT_EQ(f.dev.stats().hop_overlap_events, 0u);
        return f.kernel.eq().now();
    };
    const std::uint64_t sequential = run(false);
    const std::uint64_t pipelined = run(true);
    EXPECT_LT(pipelined, sequential)
        << "out-of-order hop stages must beat store-and-forward";
}

TEST(Tiered, TcErrorOnSecondHopIsRetriedHopLocally)
{
    // The error hits hop 2 only; hop 1's copy into staging is already
    // safe, so recovery replays just the second stage.
    Fixture f;
    const vm::VAddr base =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(base, 8 * 4096, 31);
    f.faults().arm_nth(dma::kFaultTcError, 2);

    const std::uint32_t idx = f.migrate(base, 8, f.kernel.far_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 31));
    f.expect_on_node(base, 8, f.kernel.far_node());
    EXPECT_EQ(f.dev.stats().dma_errors, 1u);
    EXPECT_EQ(f.dev.stats().hop_retries, 1u);
    EXPECT_EQ(f.dev.stats().hop_stages_issued, 3u);  // 2 + 1 replay
    EXPECT_EQ(f.dev.stats().chain_rollbacks, 0u);
    EXPECT_EQ(f.kernel.dma_engine().stats().transfers_failed, 1u);
}

TEST(Tiered, UnrecoverableSecondHopRollsBackTheWholeChain)
{
    // Ladder exhausted mid-chain (no retries, no CPU fallback): the
    // master restores the old PTEs and frees the new frames. Hop 1's
    // bytes sat in staging frames no PTE ever pointed at, so partial
    // progress is invisible — and the staging lease must be returned
    // (fixture teardown asserts the pool drained).
    MemifConfig cfg = tiered_cfg();
    cfg.cpu_copy_fallback = false;
    cfg.dma_max_retries = 0;
    Fixture f(cfg);
    const vm::VAddr base =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(base, 8 * 4096, 63);
    const std::uint64_t outstanding_before =
        f.kernel.phys().outstanding_pages();
    f.faults().arm_nth(dma::kFaultTcError, 2);  // second hop only

    const std::uint32_t idx = f.migrate(base, 8, f.kernel.far_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idx).error, MovError::kDmaError);
    EXPECT_TRUE(f.check(base, 8 * 4096, 63));
    f.expect_on_node(base, 8, f.kernel.fast_node());
    EXPECT_EQ(f.kernel.phys().outstanding_pages(), outstanding_before);
    EXPECT_EQ(f.dev.stats().chain_rollbacks, 1u);
    EXPECT_EQ(f.dev.stats().rollbacks, 1u);
    // The region stays usable after the rollback.
    f.fill(base, 8 * 4096, 64);
    EXPECT_TRUE(f.check(base, 8 * 4096, 64));
}

TEST(Tiered, LostIrqOnSecondHopIsCaughtByTheHopDeadline)
{
    // The transfer completes but its IRQ is dropped: the hop's own
    // deadline timer fires, the stage reads the clean completion and
    // reclaims the descriptor lease itself — no retry, no second copy,
    // no leaked lease (teardown quiesce).
    Fixture f;
    const vm::VAddr base =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(base, 8 * 4096, 88);
    f.faults().arm_nth(dma::kFaultLostIrq, 2);

    const std::uint32_t idx = f.migrate(base, 8, f.kernel.far_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 88));
    f.expect_on_node(base, 8, f.kernel.far_node());
    // The transfer itself completed, so the deadline wake reads a
    // clean record: no timeout is charged and nothing is recopied.
    EXPECT_EQ(f.dev.stats().watchdog_timeouts, 0u);
    EXPECT_EQ(f.dev.stats().hop_retries, 0u);
    EXPECT_EQ(f.dev.stats().chain_rollbacks, 0u);
    EXPECT_EQ(f.kernel.dma_engine().stats().interrupts_lost, 1u);
}

TEST(Tiered, PersistentHopErrorFallsBackToCpuCopy)
{
    // Every transfer errors: each hop burns its retries then the CPU
    // copies that hop's bytes — the chain still completes end to end.
    Fixture f;
    const vm::VAddr base =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(base, 8 * 4096, 19);
    f.faults().arm_probability(dma::kFaultTcError, 1.0);

    const std::uint32_t idx = f.migrate(base, 8, f.kernel.far_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 19));
    f.expect_on_node(base, 8, f.kernel.far_node());
    EXPECT_EQ(f.dev.stats().hop_fallback_copies, 2u);  // one per hop
    EXPECT_EQ(f.dev.stats().chain_rollbacks, 0u);
}

TEST(Tiered, LeverOffNeverChains)
{
    // Same machine (far node present), lever off: a fast→far migration
    // is one direct transfer, as before the tier shipped.
    Fixture f{MemifConfig{}};
    const vm::VAddr base =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(base, 8 * 4096, 50);

    const std::uint32_t idx = f.migrate(base, 8, f.kernel.far_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 50));
    f.expect_on_node(base, 8, f.kernel.far_node());
    EXPECT_EQ(f.dev.stats().chained_migrations, 0u);
    EXPECT_EQ(f.dev.stats().hop_stages_issued, 0u);
}

}  // namespace
}  // namespace memif::core
