/**
 * @file
 * The streaming compute kernels of the paper's case study (§6.6,
 * Table 4): STREAM add and triad [McCalpin] and the pgain kernel of
 * PARSEC StreamCluster.
 *
 * Each kernel is real arithmetic over the simulated machine's backing
 * bytes (so tests can verify the data path end to end) plus a
 * KernelModel calibrated against Table 4:
 *
 *   kernel                paper Linux   paper memif   gain
 *   StreamCluster.pgain   1440.1 MB/s   1778.4 MB/s   +23.5%
 *   STREAM.triad          2384.1 MB/s   3184.4 MB/s   +33.6%
 *   STREAM.add            2390.1 MB/s   3186.9 MB/s   +33.3%
 *
 * Model rationale:
 *  - triad/add touch three arrays per element (two streamed reads, one
 *    write + write-allocate); computing from slow DRAM they are bound
 *    by slow_bw / slow_traffic_factor; through memif the DMA stages the
 *    two streamed arrays (fill_factor = 2), so the ceiling becomes
 *    slow_bw / 2 ~ 3.1 GB/s — matching the paper's ~3.18 GB/s.
 *  - pgain is compute-heavier: ~1.8 GB/s even from fast memory, and
 *    bound at ~1.44 GB/s from slow memory (irregular accesses raise
 *    its effective traffic factor); only the point array streams
 *    (fill_factor = 1).
 */
#pragma once

#include <cstdint>

#include "runtime/stream_kernel.h"

namespace memif::workloads {

/**
 * STREAM triad: a[i] = b[i] + q * c[i].
 *
 * The stream is interpreted as interleaved (b, c) double pairs; a[] is
 * folded into an order-independent digest instead of stored (the
 * runtime's throughput metric counts stream bytes consumed).
 */
class StreamTriad : public runtime::StreamKernel {
  public:
    static constexpr double kScalar = 3.0;

    StreamTriad();
    void process(const std::byte *data, std::uint64_t bytes) override;
    std::uint64_t result() const override { return digest_; }
    void reset() override { digest_ = 0; }

  private:
    std::uint64_t digest_ = 0;
};

/** STREAM add: a[i] = b[i] + c[i]; same traffic shape as triad. */
class StreamAdd : public runtime::StreamKernel {
  public:
    StreamAdd();
    void process(const std::byte *data, std::uint64_t bytes) override;
    std::uint64_t result() const override { return digest_; }
    void reset() override { digest_ = 0; }

  private:
    std::uint64_t digest_ = 0;
};

/**
 * StreamCluster pgain: the dominant kernel of PARSEC streamcluster —
 * for a candidate center, accumulate min(d(point, candidate), current
 * assignment cost) over the streamed points. Points are kDim floats.
 */
class StreamClusterPgain : public runtime::StreamKernel {
  public:
    static constexpr unsigned kDim = 8;

    StreamClusterPgain();
    void process(const std::byte *data, std::uint64_t bytes) override;
    std::uint64_t result() const override { return digest_; }
    void reset() override
    {
        digest_ = 0;
        gain_ = 0.0;
    }

    /** The accumulated pgain value (diagnostic). */
    double gain() const { return gain_; }

  private:
    std::uint64_t digest_ = 0;
    double gain_ = 0.0;
};

}  // namespace memif::workloads
