#include "check/reference_model.h"

#include <cstring>

namespace memif::check {

using core::MovError;
using core::MovOp;
using core::MovStatus;
using core::RacePolicy;

namespace {

MovError
expected_malform_error(const MovSpec &m)
{
    switch (m.malform) {
        case Malform::kUnmappedSrc: return MovError::kBadAddress;
        case Malform::kZeroPages: return MovError::kBadRequest;
        case Malform::kTooManyPages: return MovError::kBadRequest;
        case Malform::kBadNode: return MovError::kBadNode;
        case Malform::kOverlap: return MovError::kBadRequest;
        case Malform::kZeroRowBytes: return MovError::kBadRequest;
        case Malform::kPitchUnderRow: return MovError::kBadRequest;
        case Malform::kNone: break;
    }
    return MovError::kNone;
}

}  // namespace

ReferenceModel::ReferenceModel(const Workload &w) : w_(w)
{
    for (const RegionSpec &r : w.regions) {
        const std::uint64_t bytes = r.pages * vm::page_bytes(r.psize);
        std::vector<std::uint8_t> mem(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            mem[i] = pat_byte(r.pattern, i);
        mem_.push_back(std::move(mem));
    }

    // Flatten requests in submission order and collect per-phase
    // touches; then mark each migration that shares a phase (and
    // pages) with a touch as possibly raced.
    struct Touch {
        std::uint32_t phase, region, page;
    };
    std::vector<Touch> touches;
    std::uint32_t phase = 0;
    for (std::size_t i = 0; i < w.ops.size(); ++i) {
        const WorkloadOp &op = w.ops[i];
        switch (op.kind) {
            case OpKind::kBarrier: ++phase; break;
            case OpKind::kTouch:
                touches.push_back(
                    Touch{phase, op.touch.region, op.touch.page});
                break;
            case OpKind::kMov:
            case OpKind::kMovMany:
                for (const MovSpec &m : op.movs)
                    movs_.push_back(MovRecord{
                        m, i, phase, expected_malform_error(m), false});
                break;
        }
    }
    for (MovRecord &rec : movs_) {
        if (rec.spec.op != MovOp::kMigrate ||
            rec.spec.malform != Malform::kNone)
            continue;
        for (const Touch &t : touches) {
            if (t.phase == rec.phase &&
                t.region == rec.spec.src_region &&
                t.page >= rec.spec.src_page &&
                t.page < rec.spec.src_page + rec.spec.num_pages) {
                rec.may_race = true;
                break;
            }
        }
    }
}

bool
ReferenceModel::outcome_allowed(std::size_t id, MovStatus st,
                                MovError err, const OutcomeContext &ctx,
                                std::string *why) const
{
    const MovRecord &rec = movs_[id];
    auto reject = [&](const char *reason) {
        if (why) {
            *why += "mov #" + std::to_string(id) + " (op " +
                    std::to_string(rec.op_index) + "): got " +
                    status_name(st) + "/" + error_name(err) + ", " +
                    reason;
        }
        return false;
    };

    // Admission backpressure (multi_tenant): a quota rejection is a
    // legal terminal for ANY request — it fires at submit, before
    // validation, so even malformed requests can see it. The runner
    // normally retries these instead of recording them, but a client
    // that gives up on kNoSpace is within its rights.
    if (ctx.multi_tenant && st == MovStatus::kFailed &&
        err == MovError::kNoSpace)
        return true;

    if (rec.spec.malform != Malform::kNone) {
        if (st == MovStatus::kFailed && err == rec.expect_error)
            return true;
        return reject(
            ("malformed request must fail with " +
             std::string(error_name(rec.expect_error)))
                .c_str());
    }

    // Managed mode: any valid request can collide with a
    // device-originated daemon mov and fail fast with kBusy
    // (validation precedes the gate, so malformed requests never see
    // it). The runner retries these like quota backpressure, but a
    // client that gives up is within its rights — a bounced request
    // moves no memory.
    if (ctx.auto_migrate && st == MovStatus::kFailed &&
        err == MovError::kBusy)
        return true;

    const bool dma_fault_visible =
        ctx.faults_armed && !ctx.cpu_copy_fallback;
    if (rec.spec.op == MovOp::kMigrate) {
        if (st == MovStatus::kDone) return true;
        // Destination-node exhaustion (or an injected allocation
        // failure) can strike any migration; content is preserved.
        if (st == MovStatus::kFailed && err == MovError::kNoMemory)
            return true;
        if (st == MovStatus::kRaceDetected &&
            ctx.policy == RacePolicy::kDetect && rec.may_race)
            return true;
        if (st == MovStatus::kAborted &&
            ctx.policy == RacePolicy::kRecover && rec.may_race)
            return true;
        if (st == MovStatus::kFailed && dma_fault_visible &&
            (err == MovError::kDmaError || err == MovError::kTimeout))
            return true;
        return reject("not an acceptable migration outcome here");
    }

    // Replication: never raced, never aborted.
    if (st == MovStatus::kDone) return true;
    if (st == MovStatus::kFailed && dma_fault_visible &&
        (err == MovError::kDmaError || err == MovError::kTimeout))
        return true;
    if (st == MovStatus::kFailed && err == MovError::kNoMemory &&
        ctx.faults_armed)
        return true;  // injected alloc failure on the bounce path
    return reject("not an acceptable replication outcome here");
}

void
ReferenceModel::commit(std::size_t id, MovStatus st)
{
    const MovRecord &rec = movs_[id];
    if (rec.spec.op != MovOp::kReplicate ||
        rec.spec.malform != Malform::kNone || st != MovStatus::kDone)
        return;
    const MovSpec &m = rec.spec;
    const std::uint64_t src_pb =
        vm::page_bytes(w_.regions[m.src_region].psize);
    const std::uint64_t dst_pb =
        vm::page_bytes(w_.regions[m.dst_region].psize);
    if (m.rows != 0) {
        // Strided replication: rows land row_bytes at a time, pitches
        // apart — the naive per-row oracle the 2D descriptors must
        // match byte-for-byte.
        const std::uint64_t src0 = m.src_page * src_pb;
        const std::uint64_t dst0 = m.dst_page * dst_pb;
        for (std::uint32_t r = 0; r < m.rows; ++r)
            std::memcpy(
                mem_[m.dst_region].data() + dst0 + r * m.dst_pitch,
                mem_[m.src_region].data() + src0 + r * m.src_pitch,
                m.row_bytes);
        return;
    }
    const std::uint64_t bytes = m.num_pages * src_pb;
    std::memcpy(mem_[m.dst_region].data() + m.dst_page * dst_pb,
                mem_[m.src_region].data() + m.src_page * src_pb,
                bytes);
}

const char *
status_name(MovStatus st)
{
    switch (st) {
        case MovStatus::kFree: return "kFree";
        case MovStatus::kOwned: return "kOwned";
        case MovStatus::kSubmitted: return "kSubmitted";
        case MovStatus::kInFlight: return "kInFlight";
        case MovStatus::kDone: return "kDone";
        case MovStatus::kRaceDetected: return "kRaceDetected";
        case MovStatus::kAborted: return "kAborted";
        case MovStatus::kFailed: return "kFailed";
    }
    return "?";
}

const char *
error_name(MovError err)
{
    switch (err) {
        case MovError::kNone: return "kNone";
        case MovError::kBadAddress: return "kBadAddress";
        case MovError::kBadNode: return "kBadNode";
        case MovError::kNoMemory: return "kNoMemory";
        case MovError::kBadRequest: return "kBadRequest";
        case MovError::kRace: return "kRace";
        case MovError::kAborted: return "kAborted";
        case MovError::kBusy: return "kBusy";
        case MovError::kFileBacked: return "kFileBacked";
        case MovError::kDmaError: return "kDmaError";
        case MovError::kTimeout: return "kTimeout";
        case MovError::kNoSpace: return "kNoSpace";
        case MovError::kXlateFault: return "kXlateFault";
    }
    return "?";
}

}  // namespace memif::check
