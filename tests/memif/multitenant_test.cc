/**
 * @file
 * Multi-tenant service layer tests: per-ASID address spaces, admission
 * quotas (in-flight and frames) with retry-after hints, weighted
 * round-robin dispatch, queue-depth load shedding, and the recovery
 * ladder (retry / CPU-copy fallback / rollback) under concurrent
 * multi-tenant load. Every scenario must leave per-tenant quota
 * accounting at zero (no cross-tenant frame leaks) and the device
 * fully quiesced.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "dma/engine.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::core {
namespace {

/** A device owned by one process plus @p extra registered tenants,
 *  each with its own address space and one MemifUser handle. */
struct MtFixture {
    os::Kernel kernel;
    os::Process &owner;
    MemifDevice dev;
    std::vector<os::Process *> procs;           ///< index == asid
    std::vector<std::unique_ptr<MemifUser>> users;  ///< index == asid

    explicit MtFixture(MemifConfig cfg, std::uint32_t extra_tenants)
        : owner(kernel.create_process()), dev(kernel, owner, cfg)
    {
        procs.push_back(&owner);
        users.push_back(std::make_unique<MemifUser>(dev, 0, 0));
        for (std::uint32_t t = 1; t <= extra_tenants; ++t) {
            os::Process &p = kernel.create_process();
            EXPECT_EQ(dev.register_tenant(p), t);
            procs.push_back(&p);
            users.push_back(std::make_unique<MemifUser>(dev, t, t));
        }
    }

    ~MtFixture()
    {
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
        // Per-ASID quota accounting must return to zero: a tenant
        // still holding quota after quiesce leaked another's frames
        // or lost a completion.
        for (std::uint32_t t = 0; t < dev.num_tenants(); ++t) {
            EXPECT_EQ(dev.tenant_stats(t).outstanding, 0u)
                << "asid " << t;
            EXPECT_EQ(dev.tenant_stats(t).frames_charged, 0u)
                << "asid " << t;
        }
    }

    sim::FaultInjector &faults() { return kernel.faults(); }

    void
    fill(std::uint32_t asid, vm::VAddr base, std::uint64_t bytes,
         std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(procs[asid]->as().write(base, buf.data(), bytes));
    }

    bool
    check(std::uint32_t asid, vm::VAddr base, std::uint64_t bytes,
          std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!procs[asid]->as().read(base, buf.data(), bytes))
            return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    std::uint32_t
    prepare(std::uint32_t asid, MovOp op, vm::VAddr src,
            std::uint32_t npages, vm::VAddr dst_or_node)
    {
        MemifUser &u = *users[asid];
        const std::uint32_t idx = u.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = u.request(idx);
        req.op = op;
        req.src_base = src;
        req.num_pages = npages;
        if (op == MovOp::kReplicate)
            req.dst_base = dst_or_node;
        else
            req.dst_node = static_cast<std::uint32_t>(dst_or_node);
        return idx;
    }

    std::uint32_t
    submit(std::uint32_t asid, MovOp op, vm::VAddr src,
           std::uint32_t npages, vm::VAddr dst_or_node)
    {
        const std::uint32_t idx =
            prepare(asid, op, src, npages, dst_or_node);
        kernel.spawn(users[asid]->submit(idx));
        return idx;
    }
};

MemifConfig
mt_config()
{
    MemifConfig cfg;
    cfg.multi_tenant = true;
    return cfg;
}

TEST(MultiTenant, LeverOffTenancyIsInert)
{
    MemifConfig cfg;  // multi_tenant = false
    MtFixture f(cfg, 0);
    EXPECT_EQ(f.dev.num_tenants(), 0u);

    const vm::VAddr src = f.owner.mmap(4 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.owner.mmap(4 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(0, src, 4 * 4096, 9);
    const std::uint32_t idx =
        f.submit(0, MovOp::kReplicate, src, 4, dst);
    f.kernel.run();

    EXPECT_EQ(f.users[0]->request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.dev.stats().admission_rejections, 0u);
    EXPECT_EQ(f.dev.stats().wrr_dispatches, 0u);
    EXPECT_EQ(f.dev.stats().shed_requests, 0u);
    EXPECT_EQ(f.dev.fairness_ratio(), 1.0);
}

TEST(MultiTenant, PerAsidAddressSpacesAreIsolated)
{
    MtFixture f(mt_config(), 2);
    ASSERT_EQ(f.dev.num_tenants(), 3u);

    // Every process's mmap arena starts at the same virtual base, so
    // tenants 1 and 2 get IDENTICAL virtual addresses backed by
    // different physical pages — the strongest translation-isolation
    // probe available: a request routed through the wrong page table
    // would visibly corrupt the other tenant's bytes.
    const vm::VAddr src1 = f.procs[1]->mmap(8 * 4096, vm::PageSize::k4K);
    const vm::VAddr src2 = f.procs[2]->mmap(8 * 4096, vm::PageSize::k4K);
    ASSERT_EQ(src1, src2);
    const vm::VAddr dst1 = f.procs[1]->mmap(8 * 4096, vm::PageSize::k4K,
                                            f.kernel.fast_node());
    const vm::VAddr dst2 = f.procs[2]->mmap(8 * 4096, vm::PageSize::k4K,
                                            f.kernel.fast_node());
    ASSERT_EQ(dst1, dst2);
    f.fill(1, src1, 8 * 4096, 11);
    f.fill(2, src2, 8 * 4096, 77);
    f.fill(1, dst1, 8 * 4096, 1);
    f.fill(2, dst2, 8 * 4096, 2);

    const std::uint32_t i1 =
        f.submit(1, MovOp::kReplicate, src1, 8, dst1);
    const std::uint32_t i2 =
        f.submit(2, MovOp::kReplicate, src2, 8, dst2);
    f.kernel.run();

    EXPECT_EQ(f.users[1]->request(i1).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.users[2]->request(i2).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(1, dst1, 8 * 4096, 11));
    EXPECT_TRUE(f.check(2, dst2, 8 * 4096, 77));
    // Sources untouched, and neither tenant saw the other's pattern.
    EXPECT_TRUE(f.check(1, src1, 8 * 4096, 11));
    EXPECT_TRUE(f.check(2, src2, 8 * 4096, 77));
    EXPECT_EQ(f.dev.tenant_stats(1).completed, 1u);
    EXPECT_EQ(f.dev.tenant_stats(2).completed, 1u);
    EXPECT_GE(f.dev.stats().wrr_dispatches, 2u);
}

TEST(MultiTenant, InflightQuotaRejectsWithRetryHint)
{
    MemifConfig cfg = mt_config();
    cfg.tenant_inflight_quota = 1;
    MtFixture f(cfg, 1);

    const vm::VAddr src = f.procs[1]->mmap(12 * 4096, vm::PageSize::k4K);
    f.fill(1, src, 12 * 4096, 5);

    // Admission runs synchronously at submit: with a quota of one, the
    // first of the batch is admitted and the other two bounce with
    // kNoSpace before anything reaches the kernel.
    std::vector<std::uint32_t> idxs;
    for (std::uint32_t i = 0; i < 3; ++i)
        idxs.push_back(f.prepare(1, MovOp::kMigrate, src + i * 4 * 4096,
                                 4, f.kernel.fast_node()));
    f.kernel.spawn(f.users[1]->submit_many(idxs));
    f.kernel.run();

    std::uint32_t done = 0, bounced = 0;
    for (const std::uint32_t idx : idxs) {
        const MovReq &req = f.users[1]->request(idx);
        if (req.load_status() == MovStatus::kDone) {
            ++done;
        } else {
            EXPECT_EQ(req.load_status(), MovStatus::kFailed);
            EXPECT_EQ(req.error, MovError::kNoSpace);
            EXPECT_GT(req.retry_after_us, 0u);
            EXPECT_LE(req.retry_after_us, 10000u);
            ++bounced;
        }
    }
    EXPECT_EQ(done, 1u);
    EXPECT_EQ(bounced, 2u);
    EXPECT_EQ(f.dev.stats().admission_rejections, 2u);
    EXPECT_EQ(f.dev.stats().quota_hits_inflight, 2u);
    EXPECT_EQ(f.dev.stats().quota_hits_frames, 0u);
    EXPECT_EQ(f.dev.tenant_stats(1).rejected, 2u);
    EXPECT_EQ(f.dev.tenant_stats(1).admitted, 1u);
    EXPECT_EQ(f.users[1]->stats().rejected, 2u);
}

TEST(MultiTenant, FrameQuotaRejectsOversizedMigration)
{
    MemifConfig cfg = mt_config();
    cfg.tenant_frame_quota = 4;  // transient-frame budget: 4 x 4 KB
    MtFixture f(cfg, 1);

    const vm::VAddr src = f.procs[1]->mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(1, src, 8 * 4096, 21);

    // 8 destination frames would double-charge past the 4-frame quota.
    const std::uint32_t big =
        f.submit(1, MovOp::kMigrate, src, 8, f.kernel.fast_node());
    // 2 frames fit, so a small migration from the same tenant sails
    // through even while the big one is being bounced.
    const std::uint32_t small =
        f.submit(1, MovOp::kMigrate, src, 2, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.users[1]->request(big).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.users[1]->request(big).error, MovError::kNoSpace);
    // 8 frames can never fit a 4-frame quota no matter how far the
    // tenant drains: a zero hint tells the client not to retry.
    EXPECT_EQ(f.users[1]->request(big).retry_after_us, 0u);
    EXPECT_EQ(f.users[1]->request(small).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.dev.stats().quota_hits_frames, 1u);
    EXPECT_TRUE(f.check(1, src, 8 * 4096, 21));
}

TEST(MultiTenant, QueueDepthBoundShedsBacklog)
{
    MemifConfig cfg = mt_config();
    cfg.tenant_queue_depth = 1;  // x weight 1: at most one waiter
    MtFixture f(cfg, 1);

    const vm::VAddr src = f.procs[1]->mmap(12 * 4096, vm::PageSize::k4K);
    f.fill(1, src, 12 * 4096, 33);

    std::vector<std::uint32_t> idxs;
    for (std::uint32_t i = 0; i < 6; ++i)
        idxs.push_back(f.prepare(1, MovOp::kMigrate, src + i * 2 * 4096,
                                 2, f.kernel.fast_node()));
    f.kernel.spawn(f.users[1]->submit_many(idxs));
    f.kernel.run();

    std::uint32_t done = 0, shed = 0;
    for (const std::uint32_t idx : idxs) {
        const MovReq &req = f.users[1]->request(idx);
        if (req.load_status() == MovStatus::kDone) {
            ++done;
        } else {
            EXPECT_EQ(req.error, MovError::kNoSpace);
            ++shed;
        }
    }
    // All six pass admission (quota 32), but the dispatcher's bounded
    // queue sheds whatever exceeds one waiter at drain time.
    EXPECT_GE(done, 1u);
    EXPECT_GE(shed, 1u);
    EXPECT_EQ(done + shed, 6u);
    EXPECT_EQ(f.dev.stats().shed_requests, shed);
    EXPECT_EQ(f.dev.tenant_stats(1).shed, shed);
}

TEST(MultiTenant, RecoveryFallbackKeepsTenantAccountingClean)
{
    // Every DMA transfer errors: the ladder retries then falls back to
    // CPU copies, concurrently for two tenants. Both must complete
    // with intact data and zeroed quota charges (checked in teardown).
    MtFixture f(mt_config(), 2);
    f.faults().arm_probability(dma::kFaultTcError, 1.0);

    const vm::VAddr b1 = f.procs[1]->mmap(8 * 4096, vm::PageSize::k4K);
    const vm::VAddr b2 = f.procs[2]->mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(1, b1, 8 * 4096, 40);
    f.fill(2, b2, 8 * 4096, 50);

    const std::uint32_t i1 =
        f.submit(1, MovOp::kMigrate, b1, 8, f.kernel.fast_node());
    const std::uint32_t i2 =
        f.submit(2, MovOp::kMigrate, b2, 8, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.users[1]->request(i1).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.users[2]->request(i2).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(1, b1, 8 * 4096, 40));
    EXPECT_TRUE(f.check(2, b2, 8 * 4096, 50));
    EXPECT_GE(f.dev.stats().fallback_copies, 2u);
    EXPECT_EQ(f.dev.tenant_stats(1).completed, 1u);
    EXPECT_EQ(f.dev.tenant_stats(2).completed, 1u);
    // Equal work from equal-weight tenants: the tripwire stays calm.
    EXPECT_GE(f.dev.fairness_ratio(), 1.0);
    EXPECT_LE(f.dev.fairness_ratio(), 2.0);
}

TEST(MultiTenant, RollbackUnchargesTheFailingTenantOnly)
{
    // Retries exhausted with no fallback: the first transfer's tenant
    // rolls back (uncharging its transient frames) while the bystander
    // tenant completes normally. The teardown sweep then proves the
    // rollback returned exactly the failing tenant's charge — no
    // cross-tenant frame leak.
    MemifConfig cfg = mt_config();
    cfg.cpu_copy_fallback = false;
    cfg.dma_max_retries = 0;
    MtFixture f(cfg, 2);
    f.faults().arm_nth(dma::kFaultTcError, 1);

    const vm::VAddr b1 = f.procs[1]->mmap(8 * 4096, vm::PageSize::k4K);
    const vm::VAddr b2 = f.procs[2]->mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(1, b1, 8 * 4096, 60);
    f.fill(2, b2, 8 * 4096, 70);
    const std::uint64_t baseline = f.kernel.phys().outstanding_pages();

    const std::uint32_t i1 =
        f.submit(1, MovOp::kMigrate, b1, 8, f.kernel.fast_node());
    f.kernel.run();
    const std::uint32_t i2 =
        f.submit(2, MovOp::kMigrate, b2, 8, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.users[1]->request(i1).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.users[1]->request(i1).error, MovError::kDmaError);
    EXPECT_EQ(f.users[2]->request(i2).load_status(), MovStatus::kDone);
    // Rolled-back migration preserves content; frames balance.
    EXPECT_TRUE(f.check(1, b1, 8 * 4096, 60));
    EXPECT_TRUE(f.check(2, b2, 8 * 4096, 70));
    EXPECT_EQ(f.kernel.phys().outstanding_pages(),
              baseline + f.dev.magazine_pages());
}

TEST(MultiTenant, AllocFailBurstStormDegradesGracefully)
{
    // A sustained allocation-pressure storm (deterministic square
    // wave: 2 of every 8 page allocations fail; the quiet phase is
    // wide enough for a whole 4-page request to get through).
    // Requests may fail with kNoMemory but nothing hangs, accounting
    // balances, and the outcome replays identically — no seed
    // involved.
    auto run_once = [](std::uint32_t *done, std::uint32_t *failed) {
        MtFixture f(mt_config(), 2);
        f.faults().arm_burst(kFaultAllocFail, 8, 2);
        std::vector<vm::VAddr> base(3);
        for (std::uint32_t t = 1; t <= 2; ++t) {
            base[t] = f.procs[t]->mmap(16 * 4096, vm::PageSize::k4K);
            f.fill(t, base[t], 16 * 4096,
                   static_cast<std::uint8_t>(t * 3));
        }
        std::vector<std::pair<std::uint32_t, std::uint32_t>> subs;
        for (std::uint32_t t = 1; t <= 2; ++t)
            for (std::uint32_t i = 0; i < 4; ++i)
                subs.emplace_back(
                    t, f.submit(t, MovOp::kMigrate,
                                base[t] + i * 4 * 4096, 4,
                                f.kernel.fast_node()));
        f.kernel.run();
        *done = *failed = 0;
        for (const auto &[t, idx] : subs) {
            const MovReq &req = f.users[t]->request(idx);
            if (req.load_status() == MovStatus::kDone) {
                ++*done;
            } else {
                EXPECT_EQ(req.load_status(), MovStatus::kFailed);
                EXPECT_EQ(req.error, MovError::kNoMemory);
                ++*failed;
            }
        }
        for (std::uint32_t t = 1; t <= 2; ++t)
            EXPECT_TRUE(f.check(t, base[t], 16 * 4096,
                                static_cast<std::uint8_t>(t * 3)));
    };
    std::uint32_t done_a = 0, failed_a = 0, done_b = 0, failed_b = 0;
    run_once(&done_a, &failed_a);
    run_once(&done_b, &failed_b);
    EXPECT_EQ(done_a + failed_a, 8u);
    EXPECT_GT(failed_a, 0u);  // the storm actually bit
    EXPECT_GT(done_a, 0u);    // ... but did not starve everyone
    EXPECT_EQ(done_a, done_b);
    EXPECT_EQ(failed_a, failed_b);
}

TEST(MultiTenant, WeightedTenantsAndStatsReport)
{
    MtFixture f(mt_config(), 2);
    f.dev.set_tenant_weight(1, 4);
    EXPECT_EQ(f.dev.tenant_stats(1).weight, 4u);
    EXPECT_EQ(f.dev.tenant_stats(2).weight, 1u);

    std::vector<vm::VAddr> base(3);
    for (std::uint32_t t = 1; t <= 2; ++t) {
        base[t] = f.procs[t]->mmap(16 * 4096, vm::PageSize::k4K);
        f.fill(t, base[t], 16 * 4096, static_cast<std::uint8_t>(t + 1));
    }
    for (std::uint32_t t = 1; t <= 2; ++t) {
        std::vector<std::uint32_t> idxs;
        for (std::uint32_t i = 0; i < 4; ++i)
            idxs.push_back(f.prepare(t, MovOp::kMigrate,
                                     base[t] + i * 4 * 4096, 4,
                                     f.kernel.fast_node()));
        f.kernel.spawn(f.users[t]->submit_many(idxs));
    }
    f.kernel.run();

    EXPECT_EQ(f.dev.tenant_stats(1).completed, 4u);
    EXPECT_EQ(f.dev.tenant_stats(2).completed, 4u);
    EXPECT_EQ(f.dev.tenant_stats(1).bytes_moved, 16u * 4096);
    EXPECT_EQ(f.dev.tenant_stats(2).bytes_moved, 16u * 4096);
    EXPECT_GE(f.dev.stats().wrr_dispatches, 8u);
    EXPECT_EQ(f.dev.fairness_ratio(), 1.0);

    // The stats report renders without tripping any assertion.
    std::FILE *sink = std::fopen("/dev/null", "w");
    ASSERT_NE(sink, nullptr);
    f.dev.print_stats(sink);
    std::fclose(sink);
}

}  // namespace
}  // namespace memif::core
