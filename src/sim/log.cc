#include "sim/log.h"

#include <atomic>

namespace memif::sim {

namespace {
std::atomic<int> g_log_level{0};

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}
}  // namespace

int
log_level()
{
    return g_log_level.load(std::memory_order_relaxed);
}

void
set_log_level(int level)
{
    g_log_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panic_impl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatal_impl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::exit(1);
}

void
warn_impl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform_impl(const char *fmt, ...)
{
    if (log_level() < 1) return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debug_impl(const char *fmt, ...)
{
    if (log_level() < 2) return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

void
assert_fail(const char *file, int line, const char *cond)
{
    std::fprintf(stderr, "panic: %s:%d: assertion failed: %s\n", file, line,
                 cond);
}

void
assert_abort()
{
    std::abort();
}

void
assert_abort(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

}  // namespace detail
}  // namespace memif::sim
