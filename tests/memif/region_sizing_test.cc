/**
 * @file
 * Property tests for shared-region sizing: the cell pool must never
 * run dry under any legal queue population, at any capacity.
 */
#include <gtest/gtest.h>

#include <vector>

#include "memif/shared_region.h"

namespace memif::core {
namespace {

class RegionSizing : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RegionSizing, AllRequestsCanSitInAnyOneQueue)
{
    const std::uint32_t capacity = GetParam();
    SharedRegion region(capacity);

    // Drain the free list entirely into each queue in turn and back.
    lockfree::RedBlueQueue queues[] = {
        region.staging_queue(), region.submission_queue(),
        region.completion_ok_queue(), region.completion_err_queue()};
    for (lockfree::RedBlueQueue &q : queues) {
        std::uint32_t moved = 0;
        for (;;) {
            const lockfree::DequeueResult d = region.free_queue().dequeue();
            if (!d.ok) break;
            q.enqueue(d.value);  // would panic if the pool ran dry
            ++moved;
        }
        EXPECT_EQ(moved, capacity);
        for (;;) {
            const lockfree::DequeueResult d = q.dequeue();
            if (!d.ok) break;
            region.free_queue().enqueue(d.value);
        }
    }
}

TEST_P(RegionSizing, SpreadAcrossAllQueuesSimultaneously)
{
    const std::uint32_t capacity = GetParam();
    SharedRegion region(capacity);
    lockfree::RedBlueQueue queues[] = {
        region.staging_queue(), region.submission_queue(),
        region.completion_ok_queue(), region.completion_err_queue()};
    // Round-robin every request across the four queues at once.
    unsigned qi = 0;
    std::uint32_t moved = 0;
    for (;;) {
        const lockfree::DequeueResult d = region.free_queue().dequeue();
        if (!d.ok) break;
        queues[qi++ % 4].enqueue(d.value);
        ++moved;
    }
    EXPECT_EQ(moved, capacity);
    // Everything is retrievable exactly once.
    std::vector<bool> seen(capacity, false);
    for (lockfree::RedBlueQueue &q : queues) {
        for (;;) {
            const lockfree::DequeueResult d = q.dequeue();
            if (!d.ok) break;
            ASSERT_LT(d.value, capacity);
            ASSERT_FALSE(seen[d.value]);
            seen[d.value] = true;
        }
    }
    for (std::uint32_t i = 0; i < capacity; ++i) EXPECT_TRUE(seen[i]);
}

INSTANTIATE_TEST_SUITE_P(Capacities, RegionSizing,
                         ::testing::Values(1u, 2u, 8u, 256u, 1024u));

}  // namespace
}  // namespace memif::core
