#include "sim/fault.h"

namespace memif::sim {

void
FaultInjector::arm(std::string_view site, FaultSpec spec)
{
    auto [it, inserted] = sites_.try_emplace(std::string(site));
    SiteState &st = it->second;
    if (!st.armed) ++armed_;
    st.spec = spec;
    st.armed = true;
    st.occurrences = 0;
    st.fired = 0;
}

void
FaultInjector::disarm(std::string_view site)
{
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return;
    it->second.armed = false;
    --armed_;
}

void
FaultInjector::reset()
{
    sites_.clear();
    armed_ = 0;
    total_fired_ = 0;
}

bool
FaultInjector::should_fire(std::string_view site)
{
    if (armed_ == 0) return false;
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return false;
    SiteState &st = it->second;
    const std::uint64_t n = ++st.occurrences;
    bool fire = false;
    if (st.spec.nth != 0 && n >= st.spec.nth &&
        n < st.spec.nth + st.spec.count)
        fire = true;
    if (st.spec.burst_period != 0 && n >= st.spec.burst_start) {
        const std::uint64_t phase =
            (n - st.spec.burst_start) % st.spec.burst_period;
        if (phase < st.spec.burst_len) fire = true;
    }
    // The probability draw is taken whenever configured, even if the
    // occurrence trigger already decided, so the random stream advances
    // identically no matter how triggers are combined.
    if (st.spec.probability > 0.0 &&
        rng_.next_double() < st.spec.probability)
        fire = true;
    if (fire) {
        ++st.fired;
        ++total_fired_;
    }
    return fire;
}

std::uint64_t
FaultInjector::occurrences(std::string_view site) const
{
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.occurrences;
}

std::uint64_t
FaultInjector::fired(std::string_view site) const
{
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
}

}  // namespace memif::sim
