/**
 * @file
 * The schedule fuzzer: seeded tie-break randomization of same-timestamp
 * event dispatch in sim::EventQueue.
 *
 * Three layers of coverage:
 *  - the EventQueue contract itself (FIFO by default, seeded
 *    permutations deterministic, cross-timestamp order untouchable);
 *  - a deliberately buggy decide-then-suspend completion protocol that
 *    is invisible under FIFO dispatch but caught by the fuzzer, with a
 *    deterministic repro from the printed seed — the canonical
 *    interleaving-bug shape (PR 2's watchdog-vs-reap race);
 *  - driver-level fuzzing: racing young-bit CAS touches against a
 *    migration served from a warm scaled() xlate cache, under both
 *    kDetect and kPrevent, with pinned regression seed pairs.
 */
#include <gtest/gtest.h>

#include <vector>

#include "check/differential.h"
#include "check/workload.h"
#include "sim/event_queue.h"

namespace memif::check {
namespace {

using core::MemifConfig;
using core::MovOp;
using core::RacePolicy;

std::vector<int>
dispatch_order(std::uint64_t fuzz_seed, int n)
{
    sim::EventQueue eq;
    if (fuzz_seed != 0) eq.set_tie_break_seed(fuzz_seed);
    std::vector<int> order;
    for (int i = 0; i < n; ++i)
        eq.schedule_at(100, [&order, i] { order.push_back(i); });
    eq.run();
    return order;
}

TEST(ScheduleFuzzer, DefaultDispatchIsFifo)
{
    const std::vector<int> order = dispatch_order(0, 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ScheduleFuzzer, SeededOrdersAreDeterministic)
{
    for (std::uint64_t seed : {1ull, 2ull, 99ull})
        EXPECT_EQ(dispatch_order(seed, 8), dispatch_order(seed, 8));
}

TEST(ScheduleFuzzer, SomeSeedPermutesSameTimestampEvents)
{
    const std::vector<int> fifo = dispatch_order(0, 8);
    bool permuted = false;
    for (std::uint64_t seed = 1; seed <= 16 && !permuted; ++seed)
        permuted = dispatch_order(seed, 8) != fifo;
    EXPECT_TRUE(permuted)
        << "16 seeds never changed an 8-event tie-break order";
}

TEST(ScheduleFuzzer, NeverReordersAcrossTimestamps)
{
    sim::EventQueue eq;
    eq.set_tie_break_seed(77);
    std::vector<int> order;
    for (int i = 4; i >= 0; --i)
        eq.schedule_at(10 * (i + 1), [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(ScheduleFuzzer, CancelWorksUnderFuzzing)
{
    sim::EventQueue eq;
    eq.set_tie_break_seed(5);
    int ran = 0;
    eq.schedule_at(50, [&] { ++ran; });
    const auto victim = eq.schedule_at(50, [&] { ran += 100; });
    eq.schedule_at(50, [&] { ++ran; });
    EXPECT_TRUE(eq.cancel(victim));
    eq.run();
    EXPECT_EQ(ran, 2);
}

TEST(ScheduleFuzzer, ClearTieBreakRestoresFifo)
{
    sim::EventQueue eq;
    eq.set_tie_break_seed(3);
    EXPECT_TRUE(eq.tie_break_fuzzed());
    eq.clear_tie_break();
    EXPECT_FALSE(eq.tie_break_fuzzed());
    std::vector<int> order;
    for (int i = 0; i < 6; ++i)
        eq.schedule_at(1, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------
// The injected ordering bug. A completion event and a watchdog fire at
// the same virtual instant. The correct protocol claims the resolution
// synchronously before suspending; the buggy one decides, suspends (an
// event at the same timestamp), and acts on the stale decision. Under
// FIFO dispatch the completion always runs first and the bug never
// fires; the fuzzer finds the interleaving, and the failing seed
// replays the violation deterministically.
// ---------------------------------------------------------------------

struct ProtocolResult {
    int completions = 0;
    int timeouts = 0;

    bool violated() const { return completions + timeouts != 1; }
};

ProtocolResult
run_protocol(std::uint64_t fuzz_seed, bool buggy)
{
    sim::EventQueue eq;
    if (fuzz_seed != 0) eq.set_tie_break_seed(fuzz_seed);
    ProtocolResult r;
    bool resolved = false;
    // The completion interrupt.
    eq.schedule_at(100, [&] {
        if (resolved) return;
        resolved = true;
        ++r.completions;
    });
    // The watchdog, racing it at the same instant.
    eq.schedule_at(100, [&, buggy] {
        if (resolved) return;
        if (buggy) {
            // BUG: suspension point between the check and the claim.
            eq.schedule_at(100, [&] {
                resolved = true;
                ++r.timeouts;
            });
        } else {
            resolved = true;  // claim before suspending
            eq.schedule_at(100, [&] { ++r.timeouts; });
        }
    });
    eq.run();
    return r;
}

TEST(ScheduleFuzzer, BuggyProtocolSurvivesFifo)
{
    const ProtocolResult r = run_protocol(0, /*buggy=*/true);
    EXPECT_FALSE(r.violated())
        << "FIFO dispatch was supposed to mask this bug";
    EXPECT_EQ(r.completions, 1);
}

TEST(ScheduleFuzzer, FuzzerCatchesTheBuggyProtocolDeterministically)
{
    // Sweep seeds until the double-resolution shows up.
    std::uint64_t failing_seed = 0;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        if (run_protocol(seed, /*buggy=*/true).violated()) {
            failing_seed = seed;
            break;
        }
    }
    ASSERT_NE(failing_seed, 0u)
        << "64 fuzzed schedules never exposed the decide-then-suspend "
           "bug";
    // The printed seed IS the repro: the violation replays exactly.
    for (int replay = 0; replay < 3; ++replay) {
        const ProtocolResult r = run_protocol(failing_seed, true);
        EXPECT_TRUE(r.violated()) << "schedule_seed=" << failing_seed
                                  << " stopped reproducing";
        EXPECT_EQ(r.completions + r.timeouts, 2);
    }
}

TEST(ScheduleFuzzer, CorrectProtocolSurvivesEverySchedule)
{
    for (std::uint64_t seed = 0; seed <= 64; ++seed) {
        const ProtocolResult r = run_protocol(seed, /*buggy=*/false);
        EXPECT_FALSE(r.violated()) << "schedule_seed=" << seed;
    }
}

// ---------------------------------------------------------------------
// Driver-level fuzzing: young-bit CAS races against a migration whose
// translations came from a warm xlate cache (the scaled() preset's
// submission fast path), under both race policies.
// ---------------------------------------------------------------------

Workload
young_cas_race_workload()
{
    Workload w;
    w.seed = 806;  // label only; the workload is handcrafted
    w.regions = {RegionSpec{16, vm::PageSize::k4K, 42}};

    // Phase 1: migrate pages [0, 8) to the fast node. Completion
    // write-through records the final translations in the xlate cache.
    WorkloadOp warm;
    warm.kind = OpKind::kMov;
    warm.movs = {
        MovSpec{MovOp::kMigrate, 0, 0, 8, 0, 0, true, false,
                Malform::kNone}};
    w.ops.push_back(warm);
    w.ops.push_back(WorkloadOp{});  // barrier

    // Phase 2: migrate the same range back — served from the cache —
    // while CPU touches hammer the young bits of the moving pages.
    WorkloadOp hit;
    hit.kind = OpKind::kMov;
    hit.movs = {
        MovSpec{MovOp::kMigrate, 0, 0, 8, 0, 0, false, false,
                Malform::kNone}};
    w.ops.push_back(hit);
    std::uint32_t delay_us = 10;
    for (std::uint32_t page : {1u, 3u, 5u, 7u}) {
        WorkloadOp t;
        t.kind = OpKind::kTouch;
        t.touch = TouchSpec{0, page, true};
        t.cpu = page % kWorkloadCpus;
        // Staggered past the submission fast path: the prep must read
        // the cache first (otherwise the touches would invalidate the
        // entry before it is ever hit), and the touches then land while
        // the migration is in flight — racing the release-side CAS.
        t.delay_us = delay_us;
        delay_us += 2;
        w.ops.push_back(t);
    }
    w.ops.push_back(WorkloadOp{});  // barrier
    return w;
}

TEST(ScheduleFuzzer, YoungBitCasRaceOnXlateHitStaysConsistent)
{
    const Workload w = young_cas_race_workload();
    // Pinned regression seeds: 0 is FIFO; the rest were chosen to vary
    // the touch-vs-release interleaving and are replayed verbatim on
    // every run of this test.
    const std::uint64_t pinned[] = {0, 13, 29, 57, 101, 806};
    for (const RacePolicy policy :
         {RacePolicy::kDetect, RacePolicy::kPrevent}) {
        for (const std::uint64_t sched : pinned) {
            RunOptions opt;
            opt.config = MemifConfig::scaled();
            opt.config.race_policy = policy;
            opt.schedule_seed = sched;
            const RunResult r = run_workload(w, opt);
            ASSERT_TRUE(r.ok)
                << "policy " << static_cast<int>(policy) << " "
                << seed_pair(w, opt) << ": " << r.failure;
            // The second migration's prep must actually have hit the
            // cache — otherwise this test is not exercising the path
            // it pins down.
            EXPECT_GT(r.stats.xlate_hits, 0u)
                << "policy " << static_cast<int>(policy) << " "
                << seed_pair(w, opt);
        }
    }
}

TEST(ScheduleFuzzer, YoungBitCasRaceReplaysBitIdentically)
{
    const Workload w = young_cas_race_workload();
    RunOptions opt;
    opt.config = MemifConfig::scaled();
    opt.schedule_seed = 57;
    const RunResult a = run_workload(w, opt);
    const RunResult b = run_workload(w, opt);
    EXPECT_EQ(a.full_digest, b.full_digest);
    EXPECT_EQ(a.end_time, b.end_time);
}

// Pinned (workload_seed, schedule_seed) pairs over generated workloads
// under the full-lever preset: regression anchors for interleavings
// the fuzzer has already explored.
TEST(ScheduleFuzzer, PinnedSeedPairRegressions)
{
    const std::pair<std::uint64_t, std::uint64_t> pinned[] = {
        {7, 13}, {101, 997}, {2026, 806}, {4242, 1}, {31337, 65537},
    };
    for (const auto &[wseed, sseed] : pinned) {
        const Workload w = generate_workload(wseed);
        RunOptions opt;
        opt.config = MemifConfig::scaled();
        opt.schedule_seed = sseed;
        const RunResult r = run_workload(w, opt);
        EXPECT_TRUE(r.ok) << seed_pair(w, opt) << ": " << r.failure;
    }
}

}  // namespace
}  // namespace memif::check
