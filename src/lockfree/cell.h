/**
 * @file
 * Queue cells and the lock-free cell pool.
 *
 * The paper chains mov_req entries directly through link fields. A
 * faithful MPMC realization of the Michael & Scott queue, however, must
 * not let a node's link word be rewritten while it is still a queue's
 * dummy. We therefore decouple the *cells* (the linked-list nodes) from
 * the *payload slots* (the mov_req array): a cell carries the index of
 * the payload it transports, and released cells recycle through a
 * Treiber-stack pool that lives in the same shared region. All references
 * remain validated indices, preserving the paper's safety argument.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "lockfree/link.h"

namespace memif::lockfree {

/**
 * One linked-list node in the shared region.
 *
 * `next` doubles as the Treiber-stack link while the cell sits in the
 * free pool. Writes to `next` always increment its tag so stale readers'
 * CAS attempts fail.
 */
struct alignas(16) Cell {
    std::atomic<std::uint64_t> next;
    std::atomic<std::uint32_t> value;
    std::uint32_t pad = 0;
};
static_assert(sizeof(Cell) == 16, "Cell layout is part of the shared ABI");

/** Cache-line-aligned stack header (Treiber top pointer). */
struct alignas(64) StackHeader {
    std::atomic<std::uint64_t> top;  ///< HeadPtr encoding
};

/**
 * A lock-free pool of cells: a Treiber stack over a StackHeader and a
 * cell array, both residing in the shared region. The pool is a *view*
 * — it owns no memory.
 */
class CellPool {
  public:
    CellPool(StackHeader *header, Cell *cells, std::uint32_t capacity)
        : header_(header), cells_(cells), capacity_(capacity)
    {
    }

    /** Format the header and chain every cell into the pool. */
    static void
    initialize(StackHeader *header, Cell *cells, std::uint32_t capacity)
    {
        for (std::uint32_t i = 0; i < capacity; ++i) {
            const std::uint32_t succ = (i + 1 < capacity) ? i + 1 : kNil;
            cells[i].next.store(Link{succ, Color::kRed, 0}.pack(),
                                std::memory_order_relaxed);
            cells[i].value.store(kNil, std::memory_order_relaxed);
        }
        header->top.store(HeadPtr{capacity ? 0 : kNil, 0}.pack(),
                          std::memory_order_release);
    }

    /**
     * Pop a free cell.
     * @return the cell index, or kNil if the pool is exhausted.
     */
    std::uint32_t
    pop()
    {
        for (;;) {
            const HeadPtr top =
                HeadPtr::unpack(header_->top.load(std::memory_order_acquire));
            if (top.index == kNil) return kNil;
            const Link next = Link::unpack(
                cells_[top.index].next.load(std::memory_order_acquire));
            std::uint64_t expected = top.pack();
            const std::uint64_t desired =
                HeadPtr{next.index, top.tag + 1}.pack();
            if (header_->top.compare_exchange_weak(expected, desired,
                                                   std::memory_order_acq_rel))
                return top.index;
        }
    }

    /** Return a cell to the pool. */
    void
    push(std::uint32_t idx)
    {
        Cell &cell = cells_[idx];
        for (;;) {
            const HeadPtr top =
                HeadPtr::unpack(header_->top.load(std::memory_order_acquire));
            const Link old_link =
                Link::unpack(cell.next.load(std::memory_order_relaxed));
            cell.next.store(
                Link{top.index, Color::kRed, old_link.tag + 1}.pack(),
                std::memory_order_relaxed);
            std::uint64_t expected = top.pack();
            const std::uint64_t desired = HeadPtr{idx, top.tag + 1}.pack();
            if (header_->top.compare_exchange_weak(expected, desired,
                                                   std::memory_order_acq_rel))
                return;
        }
    }

    Cell *cells() { return cells_; }
    std::uint32_t capacity() const { return capacity_; }

    /** True if @p idx could be a valid cell reference. */
    bool valid_index(std::uint32_t idx) const { return idx < capacity_; }

  private:
    StackHeader *header_;
    Cell *cells_;
    std::uint32_t capacity_;
};

}  // namespace memif::lockfree
