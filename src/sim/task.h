/**
 * @file
 * C++20 coroutine tasks for the discrete-event simulator.
 *
 * A simulated "thread of control" (an application thread, a kernel thread,
 * an interrupt handler body) is written as a coroutine returning
 * sim::Task. Inside, it awaits:
 *
 *   - sim::Delay{eq, ns}      advance virtual time (optionally charging CPU)
 *   - sim::SimEvent::wait()   block until another task signals (sync.h)
 *   - another sim::Task       join a child task
 *
 * Tasks start eagerly: the coroutine body runs synchronously until its
 * first suspension point. Completion is observable through done() and by
 * co_await-ing the Task. A Task object owns the coroutine frame; destroying
 * a still-suspended Task destroys the frame (any event that would have
 * resumed it is disarmed through a shared liveness token, so stray
 * callbacks in the event queue are harmless).
 */
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>

#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/types.h"

namespace memif::sim {

/**
 * An eagerly-started, joinable coroutine task with void result.
 *
 * Move-only. Exactly one awaiter may co_await a given task.
 */
class [[nodiscard]] Task {
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type {
        /** Set once the coroutine runs to completion. */
        bool done = false;
        /** Coroutine waiting on us via co_await, if any. */
        std::coroutine_handle<> continuation;
        /** Captured exception, rethrown at the join point. */
        std::exception_ptr error;
        /**
         * Liveness token shared with resume callbacks sitting in the event
         * queue; reset when the frame is destroyed.
         */
        std::shared_ptr<bool> alive = std::make_shared<bool>(true);

        Task get_return_object() { return Task{Handle::from_promise(*this)}; }
        std::suspend_never initial_suspend() noexcept { return {}; }

        struct FinalAwaiter {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                promise_type &p = h.promise();
                p.done = true;
                if (p.continuation) return p.continuation;
                return std::noop_coroutine();
            }
            void await_resume() noexcept {}
        };
        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_void() {}
        void
        unhandled_exception()
        {
            error = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task &&other) noexcept : handle_(std::exchange(other.handle_, {})) {}
    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    /** True if no coroutine is attached (moved-from or default). */
    bool empty() const { return !handle_; }

    /** True once the coroutine body has run to completion. */
    bool done() const { return handle_ && handle_.promise().done; }

    /**
     * Rethrow any exception the task captured. Call after done(); joining
     * via co_await does this automatically.
     */
    void
    rethrow_if_failed() const
    {
        if (handle_ && handle_.promise().error)
            std::rethrow_exception(handle_.promise().error);
    }

    /** Awaiter: suspend the caller until this task completes. */
    struct JoinAwaiter {
        Handle handle;
        bool await_ready() const noexcept { return handle.promise().done; }
        void
        await_suspend(std::coroutine_handle<> caller) noexcept
        {
            MEMIF_ASSERT(!handle.promise().continuation,
                         "a Task may only be awaited once");
            handle.promise().continuation = caller;
        }
        void
        await_resume() const
        {
            if (handle.promise().error)
                std::rethrow_exception(handle.promise().error);
        }
    };
    JoinAwaiter
    operator co_await() const
    {
        MEMIF_ASSERT(handle_, "awaiting an empty Task");
        return JoinAwaiter{handle_};
    }

    /** Liveness token for resume callbacks (see Delay). */
    std::weak_ptr<bool>
    liveness() const
    {
        MEMIF_ASSERT(handle_, "liveness of an empty Task");
        return handle_.promise().alive;
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.promise().alive.reset();  // disarm pending resumes
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

namespace detail {

/**
 * Fetch the liveness token of the coroutine identified by @p h, assuming it
 * is a Task coroutine. Awaitables use this so a resume scheduled in the
 * event queue becomes a no-op if the frame has been destroyed meanwhile.
 */
inline std::weak_ptr<bool>
liveness_of(std::coroutine_handle<> h)
{
    auto typed = Task::Handle::from_address(h.address());
    return typed.promise().alive;
}

/** Schedule a liveness-guarded resume of @p h after @p delay. */
inline void
schedule_resume(EventQueue &eq, Duration delay, std::coroutine_handle<> h)
{
    std::weak_ptr<bool> alive = liveness_of(h);
    eq.schedule_after(delay, [h, alive = std::move(alive)] {
        if (alive.lock()) h.resume();
    });
}

}  // namespace detail

/**
 * Awaitable that advances virtual time by a fixed duration.
 *
 * `co_await Delay{eq, microseconds(3)};`
 */
struct Delay {
    EventQueue &eq;
    Duration amount;

    bool await_ready() const noexcept { return false; }
    void
    await_suspend(std::coroutine_handle<> h) const
    {
        detail::schedule_resume(eq, amount, h);
    }
    void await_resume() const noexcept {}
};

/**
 * Awaitable that reschedules the current task at the current time, letting
 * all other runnable events at this instant execute first.
 */
struct Yield {
    EventQueue &eq;

    bool await_ready() const noexcept { return false; }
    void
    await_suspend(std::coroutine_handle<> h) const
    {
        detail::schedule_resume(eq, 0, h);
    }
    void await_resume() const noexcept {}
};

}  // namespace memif::sim
