/**
 * @file
 * Shared anonymous pages across processes — the capability the paper's
 * prototype left "primitive" (§6.7), implemented here via full
 * reverse-map walks: migrating a shared page updates *every* mapper's
 * PTE, and race handling covers all of them.
 */
#include <gtest/gtest.h>

#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/page_migration.h"
#include "os/process.h"

namespace memif::core {
namespace {

struct SharedFixture {
    os::Kernel kernel;
    os::Process &a;
    os::Process &b;
    MemifDevice dev;  ///< opened by process a
    MemifUser user;
    vm::VAddr base_a = 0;
    vm::VAddr base_b = 0;

    explicit SharedFixture(std::uint64_t bytes = 16 * 4096,
                           RacePolicy policy = RacePolicy::kDetect)
        : a(kernel.create_process()),
          b(kernel.create_process()),
          dev(kernel, a,
              MemifConfig{.capacity = 64,
                          .gang_lookup = true,
                          .race_policy = policy,
                          .poll_threshold_bytes = 512 * 1024}),
          user(dev)
    {
        base_a = a.mmap(bytes, vm::PageSize::k4K);
        vm::Vma *vma = a.as().find_vma(base_a);
        base_b = b.as().mmap_shared(*vma);
    }

    ~SharedFixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;

    std::uint32_t
    migrate(std::uint32_t npages, mem::NodeId dst)
    {
        const std::uint32_t idx = user.alloc_request();
        MovReq &req = user.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = base_a;
        req.num_pages = npages;
        req.dst_node = dst;
        kernel.spawn(user.submit(idx));
        return idx;
    }
};

TEST(SharedPages, MmapSharedAliasesTheSameFrames)
{
    SharedFixture f;
    const std::uint32_t value = 0xABCD1234;
    ASSERT_TRUE(f.a.as().write(f.base_a + 5 * 4096, &value, sizeof(value)));
    std::uint32_t got = 0;
    ASSERT_TRUE(f.b.as().read(f.base_b + 5 * 4096, &got, sizeof(got)));
    EXPECT_EQ(got, value);

    vm::Vma *va = f.a.as().find_vma(f.base_a);
    vm::Vma *vb = f.b.as().find_vma(f.base_b);
    for (std::uint64_t i = 0; i < va->num_pages(); ++i) {
        EXPECT_EQ(va->pte(i).pfn, vb->pte(i).pfn);
        EXPECT_EQ(f.kernel.phys().frame(va->pte(i).pfn).mapcount(), 2u);
    }
}

TEST(SharedPages, LastUnmapFreesFrames)
{
    os::Kernel kernel;
    os::Process &a = kernel.create_process();
    os::Process &b = kernel.create_process();
    const std::uint64_t before =
        kernel.phys().node(kernel.slow_node()).free_frames();
    const vm::VAddr base_a = a.mmap(8 * 4096, vm::PageSize::k4K);
    const vm::VAddr base_b =
        b.as().mmap_shared(*a.as().find_vma(base_a));
    ASSERT_NE(base_b, 0u);
    a.as().munmap(base_a);
    // Still mapped by b: frames alive.
    EXPECT_EQ(kernel.phys().node(kernel.slow_node()).free_frames(),
              before - 8);
    std::uint8_t probe = 0;
    EXPECT_TRUE(b.as().read(base_b, &probe, 1));
    b.as().munmap(base_b);
    EXPECT_EQ(kernel.phys().node(kernel.slow_node()).free_frames(), before);
}

TEST(SharedPages, MigrationUpdatesEveryMapper)
{
    SharedFixture f;
    std::vector<std::uint8_t> data(16 * 4096);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 11 + 2);
    ASSERT_TRUE(f.a.as().write(f.base_a, data.data(), data.size()));

    const std::uint32_t idx = f.migrate(16, f.kernel.fast_node());
    f.kernel.run();
    ASSERT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);

    vm::Vma *va = f.a.as().find_vma(f.base_a);
    vm::Vma *vb = f.b.as().find_vma(f.base_b);
    for (std::uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(f.kernel.phys().node_of(va->pte(i).pfn),
                  f.kernel.fast_node());
        // The other process's PTEs moved too — no stale mapping.
        EXPECT_EQ(vb->pte(i).pfn, va->pte(i).pfn);
        EXPECT_FALSE(vb->pte(i).young);
        EXPECT_EQ(f.kernel.phys().frame(va->pte(i).pfn).mapcount(), 2u);
    }
    // Both processes read the same (correct) bytes afterwards.
    std::vector<std::uint8_t> got(data.size());
    ASSERT_TRUE(f.b.as().read(f.base_b, got.data(), got.size()));
    EXPECT_EQ(got, data);
    // Old frames all freed.
    EXPECT_EQ(f.kernel.phys().node(f.kernel.slow_node()).free_frames(),
              f.kernel.phys().node(f.kernel.slow_node()).num_frames());
}

TEST(SharedPages, OtherProcessAccessMidMigrationIsDetected)
{
    SharedFixture f;
    const std::uint32_t idx = f.migrate(16, f.kernel.fast_node());

    // Process b (which did not ask for the move) writes mid-flight.
    os::TouchOutcome out;
    auto toucher = [&]() -> sim::Task {
        co_await f.b.touch(f.base_b + 3 * 4096, true, &out);
    };
    f.kernel.eq().schedule_at(sim::microseconds(90),
                              [&] { f.kernel.spawn(toucher()); });
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kRaceDetected);
    EXPECT_EQ(out.blocked, 0u);  // detection never blocks the accessor
}

TEST(SharedPages, PreventPolicyBlocksOtherProcessToo)
{
    SharedFixture f(16 * 4096, RacePolicy::kPrevent);
    const std::uint32_t idx = f.migrate(16, f.kernel.fast_node());

    os::TouchOutcome out;
    bool touched = false;
    auto toucher = [&]() -> sim::Task {
        co_await f.b.touch(f.base_b + 3 * 4096, true, &out);
        touched = true;
    };
    f.kernel.eq().schedule_at(sim::microseconds(90),
                              [&] { f.kernel.spawn(toucher()); });
    f.kernel.run();

    EXPECT_TRUE(touched);
    EXPECT_GE(out.blocked, 1u);  // parked on b's migration PTE
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
}

TEST(SharedPages, LinuxBaselineSkipsSharedPages)
{
    // The baseline (like the paper's prototype) punts on shared pages.
    SharedFixture f;
    os::MigrationResult res;
    f.kernel.spawn(os::migrate_pages_sync(f.a, f.base_a, 16,
                                          f.kernel.fast_node(), &res));
    f.kernel.run();
    EXPECT_EQ(res.pages_moved, 0u);
    EXPECT_EQ(res.pages_failed, 16u);
}

TEST(SharedPages, ThreeWaySharingMigrates)
{
    os::Kernel kernel;
    os::Process &a = kernel.create_process();
    os::Process &b = kernel.create_process();
    os::Process &c = kernel.create_process();
    MemifDevice dev(kernel, a);
    MemifUser user(dev);

    const vm::VAddr base_a = a.mmap(4 * 4096, vm::PageSize::k4K);
    const vm::VAddr base_b = b.as().mmap_shared(*a.as().find_vma(base_a));
    const vm::VAddr base_c = c.as().mmap_shared(*a.as().find_vma(base_a));

    const std::uint32_t idx = user.alloc_request();
    MovReq &req = user.request(idx);
    req.op = MovOp::kMigrate;
    req.src_base = base_a;
    req.num_pages = 4;
    req.dst_node = kernel.fast_node();
    kernel.spawn(user.submit(idx));
    kernel.run();
    ASSERT_EQ(user.request(idx).load_status(), MovStatus::kDone);

    const mem::Pfn pfn = a.as().find_vma(base_a)->pte(0).pfn;
    EXPECT_EQ(kernel.phys().node_of(pfn), kernel.fast_node());
    EXPECT_EQ(b.as().find_vma(base_b)->pte(0).pfn, pfn);
    EXPECT_EQ(c.as().find_vma(base_c)->pte(0).pfn, pfn);
    EXPECT_EQ(kernel.phys().frame(pfn).mapcount(), 3u);
}

}  // namespace
}  // namespace memif::core
