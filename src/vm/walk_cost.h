/**
 * @file
 * Page-table walk cost structure for gang lookup (paper §5.1).
 *
 * The driver locates PTEs for a virtually contiguous range. A naive
 * walk descends from the table root for every page; gang lookup
 * descends once and then steps horizontally through adjacent PTEs,
 * re-descending only when it crosses into the next leaf table.
 *
 * This helper computes, for a given range, how many full descents and
 * how many adjacent steps each strategy performs. The OS layer converts
 * these counts into time via the CostModel.
 */
#pragma once

#include <cstdint>

#include "vm/page_size.h"

namespace memif::vm {

/** Entries per leaf page table (512 x 8-byte entries in one 4 KB page). */
inline constexpr std::uint64_t kPtesPerLeaf = 512;

/** Counted walk operations for one PTE-range lookup. */
struct WalkCost {
    std::uint64_t full_descents = 0;   ///< root-to-leaf walks
    std::uint64_t adjacent_steps = 0;  ///< horizontal neighbour steps
};

/**
 * Cost of the baseline strategy: one full descent per page.
 */
constexpr WalkCost
per_page_walk(std::uint64_t num_pages)
{
    return WalkCost{num_pages, 0};
}

/**
 * Cost of gang lookup over @p num_pages pages starting at @p va.
 *
 * PTEs of @p page_size pages sit @p page_size / 4 KB... no: each page of
 * any granularity consumes one leaf entry at its own level, so for large
 * pages the leaf span is wider and boundary crossings rarer. We model
 * the leaf index as (va / page_bytes) % kPtesPerLeaf.
 */
constexpr WalkCost
gang_walk(VAddr va, std::uint64_t num_pages, PageSize page_size)
{
    if (num_pages == 0) return WalkCost{};
    WalkCost c{1, 0};
    std::uint64_t leaf_index =
        (va >> static_cast<unsigned>(page_size)) % kPtesPerLeaf;
    for (std::uint64_t i = 1; i < num_pages; ++i) {
        if (++leaf_index == kPtesPerLeaf) {
            // Crossed into the next leaf table: re-descend.
            leaf_index = 0;
            ++c.full_descents;
        } else {
            ++c.adjacent_steps;
        }
    }
    return c;
}

}  // namespace memif::vm
