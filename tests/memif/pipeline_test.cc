/**
 * @file
 * Tests for the throughput-pipeline levers (SG coalescing, multi-TC
 * dispatch, batched TLB shootdown): each must be byte-identical to the
 * paper-default path — including under injected DMA errors, where
 * retries and the CPU fallback replay the coalesced SG — while the
 * DeviceStats counters attribute what each lever actually did. Also
 * covers mixed-granularity replication (the destination walk uses the
 * destination VMA's geometry) and descriptor-capacity fairness at the
 * device level.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "dma/engine.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::core {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = {})
        : proc(kernel.create_process()),
          dev(kernel, proc, cfg),
          user(dev)
    {
    }

    ~Fixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;

    sim::FaultInjector &faults() { return kernel.faults(); }

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    bool
    check(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!proc.as().read(base, buf.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    std::uint32_t
    submit(MovOp op, vm::VAddr src, std::uint32_t npages,
           vm::VAddr dst_or_node)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = op;
        req.src_base = src;
        req.num_pages = npages;
        if (op == MovOp::kReplicate)
            req.dst_base = dst_or_node;
        else
            req.dst_node = static_cast<std::uint32_t>(dst_or_node);
        kernel.spawn(user.submit(idx));
        return idx;
    }
};

unsigned
tcs_used(const DeviceStats &stats)
{
    unsigned n = 0;
    for (const std::uint64_t d : stats.tc_dispatches)
        if (d) ++n;
    return n;
}

TEST(Pipeline, CoalescedMigrationIsByteIdentical)
{
    MemifConfig cfg;
    cfg.sg_coalescing = true;
    Fixture f(cfg);
    const vm::VAddr base = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    f.fill(base, 64 * 4096, 23);

    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 64, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 64 * 4096, 23));
    vm::Vma *vma = f.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(f.kernel.phys().node_of(vma->pte(i).pfn),
                  f.kernel.fast_node());
    // The buddy allocator hands back adjacent frames, so the 64-entry
    // list collapses; every original entry is accounted for either as
    // an emitted run or a saved descriptor write.
    const DeviceStats &s = f.dev.stats();
    EXPECT_LT(s.sg_entries_emitted, 64u);
    EXPECT_EQ(s.sg_entries_emitted + s.descriptor_writes_saved, 64u);
}

TEST(Pipeline, CoalescedReplicationIsByteIdentical)
{
    MemifConfig cfg;
    cfg.sg_coalescing = true;
    Fixture f(cfg);
    const vm::VAddr src = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(64 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 64 * 4096, 41);

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 64, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 64 * 4096, 41));
    EXPECT_TRUE(f.check(src, 64 * 4096, 41));
    EXPECT_LT(f.dev.stats().sg_entries_emitted, 64u);
}

TEST(Pipeline, CoalescedFallbackUnderTcErrorsMatchesUncoalesced)
{
    // Retries and the CPU fallback replay the *coalesced* SG; with
    // every transfer erroring out, both configurations must still land
    // the exact same bytes (the acceptance property: coalescing is
    // invisible except in time and counters).
    for (const bool coalesce : {false, true}) {
        MemifConfig cfg;
        cfg.sg_coalescing = coalesce;
        Fixture f(cfg);
        const vm::VAddr src = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
        const vm::VAddr dst =
            f.proc.mmap(32 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
        f.fill(src, 32 * 4096, 67);
        f.faults().arm_probability(dma::kFaultTcError, 1.0);

        const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 32, dst);
        f.kernel.run();

        EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
        EXPECT_TRUE(f.check(dst, 32 * 4096, 67)) << "coalesce=" << coalesce;
        EXPECT_EQ(f.dev.stats().fallback_copies, 1u);
        EXPECT_EQ(f.dev.stats().dma_retries, 3u);
    }
}

TEST(Pipeline, CoalescedMidChainErrorMigrationRecovers)
{
    // A mid-stream TC error on a coalesced migration: the retry path
    // replays the coalesced SG and the final memory image matches the
    // default path bit for bit.
    for (const bool coalesce : {false, true}) {
        MemifConfig cfg;
        cfg.sg_coalescing = coalesce;
        Fixture f(cfg);
        const vm::VAddr base = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
        f.fill(base, 32 * 4096, 19);
        f.faults().arm_nth(dma::kFaultTcError, 1);  // first transfer dies

        const std::uint32_t idx =
            f.submit(MovOp::kMigrate, base, 32, f.kernel.fast_node());
        f.kernel.run();

        EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
        EXPECT_TRUE(f.check(base, 32 * 4096, 19)) << "coalesce=" << coalesce;
        vm::Vma *vma = f.proc.as().find_vma(base);
        for (std::uint64_t i = 0; i < 32; ++i)
            EXPECT_EQ(f.kernel.phys().node_of(vma->pte(i).pfn),
                      f.kernel.fast_node());
        EXPECT_EQ(f.dev.stats().dma_retries, 1u);
        EXPECT_EQ(f.dev.stats().fallback_copies, 0u);
    }
}

TEST(Pipeline, BatchedShootdownFlushesOncePerVma)
{
    MemifConfig cfg;
    cfg.batched_tlb_shootdown = true;
    Fixture f(cfg);
    const vm::VAddr base = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
    f.fill(base, 32 * 4096, 51);

    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 32, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 32 * 4096, 51));
    // One VMA dirtied -> exactly one ranged flush instead of 32
    // per-page broadcasts.
    EXPECT_EQ(f.dev.stats().ranged_tlb_flushes, 1u);
}

TEST(Pipeline, MultiTcDispatchSpreadsAcrossControllers)
{
    Fixture f(MemifConfig::pipelined());
    const vm::VAddr src = f.proc.mmap(128 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(128 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 128 * 4096, 3);

    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 8; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.num_pages = 16;
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    EXPECT_TRUE(f.check(dst, 128 * 4096, 3));
    int completed = 0;
    while (f.user.retrieve_completed() != kNoRequest) ++completed;
    EXPECT_EQ(completed, 8);
    // The kthread configures request N+1 while N is still copying, so
    // the stream spreads over more than one transfer controller (and
    // never drops to polled mode, which would serialise it).
    EXPECT_GE(tcs_used(f.dev.stats()), 2u);
    EXPECT_EQ(f.dev.stats().polled_completions, 0u);
    // Wakeup accounting: every notify is counted exactly once, split by
    // whether it found the thread asleep. A pipelined stream must hit
    // both cases — first IRQ wakes the thread, later IRQs land while it
    // is still draining (the undercount the split was added to expose).
    const DeviceStats &s = f.dev.stats();
    EXPECT_EQ(s.kthread_wakeups,
              s.wakeups_from_sleep + s.notifies_while_running);
    EXPECT_GT(s.wakeups_from_sleep, 0u);
    EXPECT_GT(s.notifies_while_running, 0u);
}

TEST(Pipeline, ReplicationAcrossMixedPageSizesBothDirections)
{
    // 4 KB source pages into a 64 KB destination region: the
    // destination walk must use the destination VMA's geometry (4
    // large pages, not 64), and chunks are emitted at the finer 4 KB
    // granularity.
    Fixture f;
    const vm::VAddr src4 = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst64 =
        f.proc.mmap(4 * 65536, vm::PageSize::k64K, f.kernel.fast_node());
    f.fill(src4, 64 * 4096, 81);
    const std::uint32_t a = f.submit(MovOp::kReplicate, src4, 64, dst64);
    f.kernel.run();
    ASSERT_EQ(f.user.request(a).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst64, 64 * 4096, 81));

    // And the reverse: 64 KB source pages into a 4 KB region.
    const vm::VAddr src64 = f.proc.mmap(4 * 65536, vm::PageSize::k64K);
    const vm::VAddr dst4 =
        f.proc.mmap(64 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src64, 4 * 65536, 82);
    const std::uint32_t b = f.submit(MovOp::kReplicate, src64, 4, dst4);
    f.kernel.run();
    ASSERT_EQ(f.user.request(b).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst4, 4 * 65536, 82));
}

TEST(Pipeline, MixedPageSizeReplicationWithCoalescing)
{
    // The same cross-granularity replication with the pipeline levers
    // on: coalescing merges the within-large-page runs back together,
    // and the result is still byte-identical.
    Fixture f(MemifConfig::pipelined());
    const vm::VAddr src4 = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst64 =
        f.proc.mmap(4 * 65536, vm::PageSize::k64K, f.kernel.fast_node());
    f.fill(src4, 64 * 4096, 91);
    const std::uint32_t idx = f.submit(MovOp::kReplicate, src4, 64, dst64);
    f.kernel.run();
    ASSERT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst64, 64 * 4096, 91));
    EXPECT_LT(f.dev.stats().sg_entries_emitted, 64u);
}

TEST(Pipeline, ParamSizedRequestCompletesAmongSmallStream)
{
    // Device-level FIFO fairness: a request needing the whole 512-entry
    // PaRAM, submitted into a stream of small pipelined requests, must
    // still complete (the capacity gate queues it ahead of later small
    // ones instead of letting them starve it).
    Fixture f(MemifConfig::pipelined());
    const vm::VAddr big = f.proc.mmap(512 * 4096, vm::PageSize::k4K);
    const vm::VAddr small_src = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr small_dst =
        f.proc.mmap(64 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(big, 512 * 4096, 7);
    f.fill(small_src, 64 * 4096, 8);

    std::uint32_t big_idx = kNoRequest;
    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 8; ++r) {
            if (r == 2) {
                big_idx = f.user.alloc_request();
                MovReq &req = f.user.request(big_idx);
                req.op = MovOp::kMigrate;
                req.src_base = big;
                req.num_pages = 512;  // the whole PaRAM
                req.dst_node = f.kernel.fast_node();
                co_await f.user.submit(big_idx);
            }
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = small_src + static_cast<vm::VAddr>(r) * 8 * 4096;
            req.dst_base = small_dst + static_cast<vm::VAddr>(r) * 8 * 4096;
            req.num_pages = 8;
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    ASSERT_NE(big_idx, kNoRequest);
    EXPECT_EQ(f.user.request(big_idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(big, 512 * 4096, 7));
    EXPECT_TRUE(f.check(small_dst, 64 * 4096, 8));
    int completed = 0;
    while (f.user.retrieve_completed() != kNoRequest) ++completed;
    EXPECT_EQ(completed, 9);
    EXPECT_TRUE(f.dev.idle());
}

}  // namespace
}  // namespace memif::core
