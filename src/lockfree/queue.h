/**
 * @file
 * The red-blue lock-free queue (paper §4.3).
 *
 * A Michael & Scott counted-pointer MPMC queue whose every link carries a
 * color bit. The color is a queue-wide flag — "who is responsible for
 * flushing this queue" — that is read and updated *atomically with* queue
 * operations:
 *
 *   - enqueue() observes the old tail's color while checkpointing its
 *     link, propagates it into the new tail's nil link, and returns it;
 *   - dequeue() returns the color of the link it traversed;
 *   - set_color() succeeds only on an empty queue, by CASing the dummy's
 *     nil link from one color to the other.
 *
 * Because the color rides inside the same word the CAS already targets,
 * no separate flag (and hence no lock) is needed — the property the
 * paper's SubmitRequest protocol depends on.
 *
 * The queue is a *view* over shared-region memory: a QueueHeader plus the
 * cell array / pool shared with sibling queues. Values are opaque 31-bit
 * payload indices.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "lockfree/cell.h"
#include "lockfree/link.h"

namespace memif::lockfree {

/** Cache-line-aligned queue head/tail words in the shared region. */
struct alignas(64) QueueHeader {
    std::atomic<std::uint64_t> head;  ///< HeadPtr: dummy cell
    std::atomic<std::uint64_t> tail;  ///< HeadPtr: last cell
};

/** Result of a dequeue attempt. */
struct DequeueResult {
    bool ok = false;           ///< false: the queue was empty
    std::uint32_t value = kNil;  ///< dequeued payload index when ok
    Color color = Color::kRed;   ///< color of the link traversed / nil link
};

/**
 * MPMC lock-free FIFO queue with an entangled queue-wide color.
 *
 * Thread-safe for any number of concurrent enqueuers and dequeuers from
 * any context (application threads, simulated syscall/interrupt/kthread
 * contexts). All operations are lock-free; a stalled thread can never
 * block others (paper §4.2 "Why lock-free?").
 */
class RedBlueQueue {
  public:
    RedBlueQueue(QueueHeader *header, CellPool pool)
        : header_(header), pool_(pool), cells_(pool.cells())
    {
    }

    /**
     * Format @p header as an empty queue with the given initial color.
     * Consumes one cell from @p pool as the permanent-style dummy.
     * Must happen before any concurrent access.
     */
    static void
    initialize(QueueHeader *header, CellPool &pool, Color initial)
    {
        const std::uint32_t dummy = pool.pop();
        // Initialization happens before sharing; a full pool is a setup bug
        // the caller (SharedRegion) guards against.
        Cell &cell = pool.cells()[dummy];
        const Link old_link =
            Link::unpack(cell.next.load(std::memory_order_relaxed));
        cell.next.store(Link{kNil, initial, old_link.tag + 1}.pack(),
                        std::memory_order_relaxed);
        header->head.store(HeadPtr{dummy, 0}.pack(),
                           std::memory_order_relaxed);
        header->tail.store(HeadPtr{dummy, 0}.pack(),
                           std::memory_order_release);
    }

    /**
     * Append payload index @p value.
     *
     * @return the queue color observed atomically with the append, i.e.
     *         the color the queue had when this element became visible.
     *         The caller uses it to decide flush responsibility (§4.4).
     */
    Color
    enqueue(std::uint32_t value)
    {
        const std::uint32_t idx = pool_.pop();
        if (idx == kNil) return enqueue_overflow();
        Cell &cell = cells_[idx];
        cell.value.store(value, std::memory_order_relaxed);

        for (;;) {
            const HeadPtr tail = load_tail();
            Cell &last = cells_[tail.index];
            const Link next =
                Link::unpack(last.next.load(std::memory_order_acquire));
            if (tail.pack() != header_->tail.load(std::memory_order_acquire))
                continue;  // tail moved under us; re-read
            if (!next.is_nil()) {
                // Tail is lagging; help swing it forward.
                advance_tail(tail, next.index);
                continue;
            }
            // Propagate the observed color into our own nil link *before*
            // publishing, so the color travels with the list atomically.
            const Link my_old =
                Link::unpack(cell.next.load(std::memory_order_relaxed));
            cell.next.store(Link{kNil, next.color, my_old.tag + 1}.pack(),
                            std::memory_order_relaxed);
            std::uint64_t expected = next.pack();
            const Link desired{idx, next.color, next.tag + 1};
            if (last.next.compare_exchange_weak(expected, desired.pack(),
                                                std::memory_order_acq_rel)) {
                advance_tail(tail, idx);
                return next.color;
            }
        }
    }

    /**
     * Remove the oldest element.
     *
     * @return {ok=false, color} when empty (color = the queue's current
     *         color); {ok=true, value, color} otherwise.
     */
    DequeueResult
    dequeue()
    {
        for (;;) {
            const HeadPtr head = load_head();
            const HeadPtr tail = load_tail();
            const Link next = Link::unpack(
                cells_[head.index].next.load(std::memory_order_acquire));
            if (head.pack() != header_->head.load(std::memory_order_acquire))
                continue;  // inconsistent snapshot
            if (head.index == tail.index) {
                if (next.is_nil())
                    return DequeueResult{false, kNil, next.color};
                // Tail lagging behind a half-finished enqueue: help.
                advance_tail(tail, next.index);
                continue;
            }
            const std::uint32_t value =
                cells_[next.index].value.load(std::memory_order_relaxed);
            std::uint64_t expected = head.pack();
            const std::uint64_t desired =
                HeadPtr{next.index, head.tag + 1}.pack();
            if (header_->head.compare_exchange_weak(
                    expected, desired, std::memory_order_acq_rel)) {
                pool_.push(head.index);  // old dummy recycles
                return DequeueResult{true, value, next.color};
            }
        }
    }

    /**
     * Atomically change the queue color, permitted only while the queue
     * is empty (paper §4.3).
     *
     * @return the previous color on success, or kColorBusy if the queue
     *         held elements at the decision point.
     */
    int
    set_color(Color new_color)
    {
        for (;;) {
            const HeadPtr head = load_head();
            Cell &dummy = cells_[head.index];
            const Link next =
                Link::unpack(dummy.next.load(std::memory_order_acquire));
            if (head.pack() != header_->head.load(std::memory_order_acquire))
                continue;
            if (!next.is_nil()) return kColorBusy;
            if (next.color == new_color)
                return static_cast<int>(new_color);  // idempotent
            std::uint64_t expected = next.pack();
            const Link desired{kNil, new_color, next.tag + 1};
            if (dummy.next.compare_exchange_weak(expected, desired.pack(),
                                                 std::memory_order_acq_rel))
                return static_cast<int>(next.color);
        }
    }

    /** Best-effort emptiness check (exact only when externally quiesced). */
    bool
    empty() const
    {
        const HeadPtr head = load_head();
        const Link next = Link::unpack(
            cells_[head.index].next.load(std::memory_order_acquire));
        return next.is_nil();
    }

    /** Best-effort color read (the dummy link's color). */
    Color
    color() const
    {
        const HeadPtr head = load_head();
        return Link::unpack(
                   cells_[head.index].next.load(std::memory_order_acquire))
            .color;
    }

    /** Exact size; only meaningful when externally quiesced. */
    std::size_t
    size_unsafe() const
    {
        std::size_t n = 0;
        std::uint32_t idx =
            Link::unpack(cells_[load_head().index].next.load(
                             std::memory_order_acquire))
                .index;
        while (idx != kNil) {
            ++n;
            idx = Link::unpack(
                      cells_[idx].next.load(std::memory_order_acquire))
                      .index;
        }
        return n;
    }

  private:
    HeadPtr
    load_head() const
    {
        return HeadPtr::unpack(header_->head.load(std::memory_order_acquire));
    }
    HeadPtr
    load_tail() const
    {
        return HeadPtr::unpack(header_->tail.load(std::memory_order_acquire));
    }

    void
    advance_tail(const HeadPtr &seen, std::uint32_t to)
    {
        std::uint64_t expected = seen.pack();
        header_->tail.compare_exchange_strong(
            expected, HeadPtr{to, seen.tag + 1}.pack(),
            std::memory_order_acq_rel);
    }

    [[noreturn]] static Color enqueue_overflow();

    QueueHeader *header_;
    CellPool pool_;
    Cell *cells_;
};

}  // namespace memif::lockfree
