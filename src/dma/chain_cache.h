/**
 * @file
 * Descriptor-chain reuse (paper §5.3 "Minimal Reconfiguration of DMA
 * Engine").
 *
 * The enhanced driver "maintains the knowledge of existing descriptor
 * chains": it remembers that, say, descriptors 42..73 form a chain each
 * configured for a 4 KB copy, and reuses part or all of such a chain
 * for the next transfer — rewriting only the source and destination
 * fields (4x cheaper than a full 12-parameter write into uncached I/O
 * memory).
 *
 * The cache allocates PaRAM entries, hands out chains for transfers,
 * and reabsorbs them at retirement. When the PaRAM fills up, chains of
 * other chunk sizes are evicted oldest-first.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "dma/descriptor.h"

namespace memif::dma {

/** A chain handed out for one transfer. */
struct ChainLease {
    /** Descriptor indices in chain order; links are already programmed. */
    std::vector<DescIndex> descs;
    /** The first @c reused entries were already configured for this
     *  chunk size/shape (only src/dst need rewriting). */
    std::uint32_t reused = 0;
    /** Chunk size the lease is keyed under (uniform leases only). */
    std::uint64_t chunk_bytes = 0;
    /** Non-uniform leases: the per-descriptor chunk sizes the chain is
     *  keyed under (empty for uniform leases). */
    std::vector<std::uint64_t> chunk_sizes;

    DescIndex head() const { return descs.empty() ? kNullLink : descs.front(); }
    std::uint32_t size() const { return static_cast<std::uint32_t>(descs.size()); }
    std::uint32_t fresh() const { return size() - reused; }
};

/** Cache hit/miss accounting (ablation benches read these). */
struct ChainCacheStats {
    std::uint64_t descs_reused = 0;
    std::uint64_t descs_fresh = 0;
    std::uint64_t evictions = 0;
    std::uint64_t link_fixups = 0;
};

class ChainCache {
  public:
    /**
     * @param ram      the PaRAM to allocate from
     * @param enabled  when false every acquisition is fully fresh
     *                 (the ablation baseline of Table 1's "Baseline"
     *                 DMA/cfg column)
     */
    explicit ChainCache(DescriptorRam &ram, bool enabled = true);

    /**
     * Lease @p count descriptors for copies of @p chunk_bytes each.
     * Reuses cached same-size chains first; then fresh PaRAM entries;
     * then evicts other-size chains. Links along the lease are made
     * consistent (fix-ups are counted as partial writes).
     *
     * @p count must not exceed the PaRAM capacity.
     */
    ChainLease acquire(std::uint32_t count, std::uint64_t chunk_bytes);

    /**
     * Lease one descriptor per entry of @p chunk_sizes — the variable-
     * chunk form used by coalesced scatter-gather lists. Uniform shapes
     * delegate to acquire() (and share its per-size pool); non-uniform
     * shapes reuse only a cached chain of the *exact* same shape (a
     * split prefix would silently change per-position chunk sizes), and
     * otherwise fall back to fresh/evicted PaRAM entries.
     */
    ChainLease acquire_shape(std::vector<std::uint64_t> chunk_sizes);

    /** Return a retired transfer's chain to the cache. */
    void release(ChainLease lease);

    /** Max descriptors a single lease may request. */
    std::uint32_t capacity() const { return ram_.size(); }

    /** Descriptors not currently leased to an in-flight transfer. */
    std::uint32_t available() const { return ram_.size() - outstanding_; }

    const ChainCacheStats &stats() const { return stats_; }
    void reset_stats() { stats_ = ChainCacheStats{}; }

  private:
    /** Fix the link field of @p idx if it does not already equal @p to. */
    void ensure_link(DescIndex idx, DescIndex to);

    /** Free the oldest cached chain (panics when nothing is cached). */
    void evict_one();

    DescriptorRam &ram_;
    bool enabled_;
    /** PaRAM entries in no cached chain. */
    std::vector<DescIndex> free_;
    /** Cached chains per chunk size, oldest first. */
    std::map<std::uint64_t, std::deque<std::vector<DescIndex>>> chains_;
    /** Cached non-uniform chains keyed by their exact run shape. */
    std::map<std::vector<std::uint64_t>, std::deque<std::vector<DescIndex>>>
        shaped_;
    /** Driver-side knowledge of each entry's link (no I/O reads needed). */
    std::vector<DescIndex> shadow_links_;
    /** Descriptors in currently leased (not yet released) chains. */
    std::uint32_t outstanding_ = 0;
    ChainCacheStats stats_;
};

}  // namespace memif::dma
