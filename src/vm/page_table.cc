#include "vm/page_table.h"

#include "sim/log.h"

namespace memif::vm {

PageTable::Table *
PageTable::descend(Table &parent, unsigned index, bool create)
{
    MEMIF_ASSERT(index < kEntries);
    if (!parent.children[index]) {
        if (!create) return nullptr;
        parent.children[index] = std::make_unique<Table>();
        ++table_count_;
    }
    return parent.children[index].get();
}

PteSlot *
PageTable::slot(VAddr va, PageSize psize, bool create)
{
    MEMIF_ASSERT(va < kVaLimit, "address beyond the 39-bit space");
    MEMIF_ASSERT(va % page_bytes(psize) == 0, "unaligned page address");

    const auto l1 = static_cast<unsigned>((va >> kL1Shift) & (kEntries - 1));
    Table *l2 = descend(root_, l1, create);
    if (!l2) return nullptr;

    const auto l2i = static_cast<unsigned>((va >> kL2Shift) & (kEntries - 1));
    if (psize == PageSize::k2M) {
        // 2 MB block entry directly in the L2 table.
        return &l2->slots[l2i];
    }
    Table *l3 = descend(*l2, l2i, create);
    if (!l3) return nullptr;
    // 4 KB pages use their own slot; a 64 KB page owns the head slot of
    // its aligned 16-entry group.
    return &l3->slots[leaf_index(va, psize)];
}

PageTable::Gang
PageTable::gang_lookup(VAddr va, std::uint64_t num_pages, PageSize psize)
{
    Gang gang;
    if (num_pages == 0) return gang;
    gang.slots.reserve(num_pages);

    const std::uint64_t pb = page_bytes(psize);
    const unsigned step =
        psize == PageSize::k64K ? 16u : 1u;  // leaf slots per page

    VAddr cursor = va;
    unsigned index = 0;
    PteSlot *base = nullptr;  // first slot of the current leaf table
    for (std::uint64_t i = 0; i < num_pages; ++i, cursor += pb) {
        const unsigned li = leaf_index(cursor, psize);
        if (base != nullptr && i != 0 && li == index + step) {
            // Horizontal move to the adjacent entry in the same table.
            index = li;
            ++gang.cost.adjacent_steps;
        } else {
            // First page, or we crossed into the next leaf table:
            // descend from the root again.
            PteSlot *s = slot(cursor, psize, /*create=*/false);
            MEMIF_ASSERT(s != nullptr, "gang lookup over unmapped range");
            base = s - li;
            index = li;
            ++gang.cost.full_descents;
            gang.slots.push_back(s);
            continue;
        }
        gang.slots.push_back(base + index);
    }
    return gang;
}

}  // namespace memif::vm
