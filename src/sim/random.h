/**
 * @file
 * A small, fast, deterministic PRNG (xoshiro256**) for workload
 * generation. std::mt19937 would work too, but a self-contained generator
 * guarantees bit-identical streams across standard libraries.
 */
#pragma once

#include <cstdint>

namespace memif::sim {

/** xoshiro256** by Blackman & Vigna (public domain reference algorithm). */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation workloads.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

}  // namespace memif::sim
