/**
 * @file
 * Randomized-but-replayable workloads for the differential model
 * checker (tests/model): a plain-data description of everything one
 * checker run does to a memif instance — regions to map, requests to
 * submit (single and batched), CPU touches that may race in-flight
 * migrations, and barriers that drain to quiescence.
 *
 * The description is deliberately dumb data: the generator fills it
 * from a seed, the reference model interprets it against plain byte
 * arrays, the differential runner replays it through the real stack,
 * and the minimizer shrinks it by dropping ops. Tests can also build
 * workloads by hand (pinned regression cases).
 *
 * Disjointness invariant: between two barriers, the pages any two
 * *valid* generated requests operate on (sources and destinations)
 * never overlap, except that replications may share read-only source
 * pages. Migrations preserve content and replications have exclusive
 * destinations, so the final bytes of every region are independent of
 * completion order — which is what lets one sequential reference model
 * predict the outcome of every differently-scheduled preset.
 * CPU touches are exempt (they never modify content, only PTE state)
 * and are the designated way to race an in-flight migration.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "memif/mov_req.h"
#include "vm/page_size.h"

namespace memif::check {

/** One mapped region of the workload's address space. */
struct RegionSpec {
    std::uint32_t pages = 0;
    vm::PageSize psize = vm::PageSize::k4K;
    /** Seed byte of the initial fill pattern (pattern + i * 13). */
    std::uint8_t pattern = 0;
    /** Owning tenant. Under a multi_tenant preset the differential
     *  runner maps each region into its tenant's process and submits
     *  its requests through that tenant's MemifUser handle; presets
     *  with the lever off map everything into the owner process and
     *  ignore this field. The generator keeps every request (source
     *  AND destination) within one tenant's regions, so tenancy never
     *  changes which requests are valid. */
    std::uint32_t tenant = 0;

    bool operator==(const RegionSpec &) const = default;
};

/** Deliberate malformations the generator can emit (the expected
 *  validation error is derived from the kind). */
enum class Malform : std::uint8_t {
    kNone = 0,
    kUnmappedSrc,   ///< src outside every vma -> kBadAddress
    kZeroPages,     ///< num_pages == 0 -> kBadRequest
    kTooManyPages,  ///< num_pages > PaRAM -> kBadRequest
    kBadNode,       ///< unknown dst_node -> kBadNode
    kOverlap,       ///< replication src/dst overlap -> kBadRequest
    kZeroRowBytes,  ///< strided with row_bytes == 0 -> kBadRequest
    kPitchUnderRow, ///< strided dst_pitch < row_bytes -> kBadRequest
};

/** One mov_req to submit. Page indices are region-relative. */
struct MovSpec {
    core::MovOp op = core::MovOp::kMigrate;
    std::uint32_t src_region = 0;
    std::uint32_t src_page = 0;
    std::uint32_t num_pages = 1;
    /** Replication destination (region + start page in ITS page size). */
    std::uint32_t dst_region = 0;
    std::uint32_t dst_page = 0;
    /** Migration destination: fast node (true) or slow node. */
    bool to_fast = true;
    /** Tiered presets only: route a slow-bound migration to the far
     *  node instead (SRAM-resident pages then take the chained
     *  SRAM→DDR→far path). Derived from the page run, never from a
     *  fresh RNG draw, so every existing seed's workload stays
     *  byte-identical; two-node presets ignore the flag. */
    bool to_far = false;
    Malform malform = Malform::kNone;
    /** @name Strided-replication geometry (strided knob).
     *  rows != 0 marks the spec strided: num_pages stays 0 and the
     *  request replicates `rows` rows of `row_bytes`, read `src_pitch`
     *  apart starting at src_region page src_page and written
     *  `dst_pitch` apart at dst_region page dst_page. Fields default
     *  to zero so pre-strided specs (and their operator==) are
     *  untouched. */
    ///@{
    std::uint32_t rows = 0;
    std::uint32_t row_bytes = 0;
    std::uint64_t src_pitch = 0;
    std::uint64_t dst_pitch = 0;
    ///@}

    bool operator==(const MovSpec &) const = default;
};

/** One simulated CPU access. Touches never change memory contents —
 *  only PTE state — so they are free to race in-flight migrations. */
struct TouchSpec {
    std::uint32_t region = 0;
    std::uint32_t page = 0;
    bool write = false;

    bool operator==(const TouchSpec &) const = default;
};

enum class OpKind : std::uint8_t {
    kMov,      ///< submit movs[0] via MemifUser::submit()
    kMovMany,  ///< submit all movs in one submit_many() batch
    kTouch,    ///< one CPU access (may race an in-flight migration)
    kBarrier,  ///< drain every outstanding completion, then verify memory
};

struct WorkloadOp {
    OpKind kind = OpKind::kBarrier;
    std::vector<MovSpec> movs;
    TouchSpec touch;
    /** Simulated CPU the op runs from (selects the MemifUser handle,
     *  i.e. the submission ring / contention-model slot). */
    std::uint32_t cpu = 0;
    /** Virtual-time pause before the op (microseconds). */
    std::uint32_t delay_us = 0;

    bool operator==(const WorkloadOp &) const = default;
};

struct Workload {
    std::uint64_t seed = 0;
    /** Tenants the regions are partitioned over (>= 1). Only
     *  multi_tenant presets instantiate more than one address space. */
    std::uint32_t num_tenants = 1;
    /** Invalidation-storm knob: the generator chases every mov with a
     *  burst of zero-delay touches aimed at the mov's own pages, so
     *  young/dirty PTE CASes fire the xlate-invalidate hook while the
     *  request's translations are still in flight — prefetched entries
     *  (and pending prefetches) get shot down between issue and
     *  consumption. Stress for the mmu_aware() preset; pure PTE-state
     *  noise, so the reference model is unaffected beyond the usual
     *  may-race marking of migrations. */
    bool invalidation_storm = false;
    /** Heat-churn knob: the generator hammers one small per-seed "hot
     *  window" of pages with repeated touches throughout the run, so
     *  the managed preset's scanner sees the same buckets accessed
     *  epoch after epoch and the migration daemon actually promotes
     *  (and, once the churn moves on, demotes) them concurrently with
     *  the workload's own requests. Touches are content-inert and
     *  exempt from the disjointness invariant, so the reference
     *  model's byte predictions are unaffected. */
    bool heat_churn = false;
    /** Strided knob: the generator mixes in 2D replications with
     *  randomized pitch/rows geometries (claimed page runs keep them
     *  pairwise page-disjoint) plus strided malformations. Only
     *  meaningful under presets with the strided_dma lever on: with
     *  the lever off a valid strided request fails validation, which
     *  the reference model would mispredict. RNG draws happen only
     *  when the knob is set, so every existing seed's workload stays
     *  byte-identical without it. */
    bool strided = false;
    std::vector<RegionSpec> regions;
    std::vector<WorkloadOp> ops;

    bool operator==(const Workload &) const = default;
};

/** Simulated submission CPUs a workload uses (MemifUser handles). */
inline constexpr std::uint32_t kWorkloadCpus = 4;

/**
 * Generate the seeded randomized workload for @p seed: mixed 4 KB /
 * 64 KB regions partitioned over 2-4 tenants, migrations bouncing
 * between nodes, replications with exclusive destinations, batched
 * submits, malformed requests, racing touches, and periodic barriers.
 * Every op stays within one tenant's regions. Deterministic: the same
 * seed always yields the same workload, on any host.
 *
 * With @p invalidation_storm set, every generated mov is chased by a
 * burst of same-instant touches on its own pages (see
 * Workload::invalidation_storm). With @p heat_churn set, every op is
 * followed by a burst of touches on a fixed per-seed hot window (see
 * Workload::heat_churn). With @p strided set, 2D replications and
 * strided malformations join the mix (see Workload::strided).
 */
Workload generate_workload(std::uint64_t seed,
                           bool invalidation_storm = false,
                           bool heat_churn = false,
                           bool strided = false);

/** Copy of @p w with ops [begin, begin+count) removed (minimizer). */
Workload drop_ops(const Workload &w, std::size_t begin, std::size_t count);

}  // namespace memif::check
