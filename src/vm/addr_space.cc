#include "vm/addr_space.h"

#include <cstring>

#include "sim/log.h"

namespace memif::vm {

AddressSpace::~AddressSpace()
{
    for (auto &vma : vmas_) release_vma(*vma);
}

VAddr
AddressSpace::mmap(std::uint64_t bytes, PageSize psize, mem::NodeId node)
{
    return mmap_policy(bytes, psize, [node](std::uint64_t) {
        return std::vector<mem::NodeId>{node};
    });
}

VAddr
AddressSpace::mmap_policy(std::uint64_t bytes, PageSize psize,
                          const NodeCandidatesFn &candidates_of)
{
    const std::uint64_t pb = page_bytes(psize);
    const std::uint64_t num_pages = (bytes + pb - 1) / pb;
    if (num_pages == 0) return 0;

    // Align the base to the page size so large pages are natural.
    const VAddr base = (next_base_ + pb - 1) & ~(pb - 1);

    const std::vector<mem::NodeId> first_candidates = candidates_of(0);
    const mem::NodeId home = first_candidates.empty()
                                 ? mem::kInvalidNode
                                 : first_candidates.front();
    auto vma = std::make_unique<Vma>(this, base, num_pages, psize, home,
                                     table_);
    const unsigned order = page_order(psize);

    // Eager population, freeing everything on mid-way exhaustion.
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        mem::Pfn pfn = mem::kInvalidPfn;
        for (const mem::NodeId node : candidates_of(i)) {
            pfn = pm_.allocate(node, order);
            if (pfn != mem::kInvalidPfn) break;
        }
        if (pfn == mem::kInvalidPfn) {
            for (std::uint64_t j = 0; j < i; ++j) {
                const mem::Pfn mapped = vma->pte(j).pfn;
                pm_.frame(mapped).remove_rmap(this, vma->page_vaddr(j));
                pm_.free(mapped, order);
            }
            return 0;
        }
        pm_.frame(pfn).add_rmap(this, vma->page_vaddr(i));
        vma->pte_slot(i).store(Pte::make(pfn).pack(),
                               std::memory_order_release);
        ++stats_.mapped_pages;
    }

    next_base_ = base + num_pages * pb;
    vmas_.push_back(std::move(vma));
    return base;
}

void
AddressSpace::munmap(VAddr base)
{
    for (auto it = vmas_.begin(); it != vmas_.end(); ++it) {
        if ((*it)->base() == base) {
            release_vma(**it);
            vmas_.erase(it);
            return;
        }
    }
    MEMIF_WARN("munmap: no vma at 0x%llx",
               static_cast<unsigned long long>(base));
}

void
AddressSpace::notify_xlate_invalidate(VAddr va, std::uint64_t num_pages)
{
    if (!xlate_invalidate_hook_) return;
    const Vma *vma = find_vma(va);
    if (!vma) return;
    xlate_invalidate_hook_(vma, vma->page_index(va), num_pages);
}

void
AddressSpace::release_vma(Vma &vma)
{
    // The whole Vma is about to disappear; drop every cached
    // translation before any PTE is cleared so nothing can alias a
    // later Vma recycled at the same address.
    if (xlate_invalidate_hook_)
        xlate_invalidate_hook_(&vma, 0, vma.num_pages());
    const unsigned order = page_order(vma.page_size());
    for (std::uint64_t i = 0; i < vma.num_pages(); ++i) {
        const Pte pte = vma.pte(i);
        if (!pte.present) continue;
        mem::PageFrame &frame = pm_.frame(pte.pfn);
        frame.remove_rmap(this, vma.page_vaddr(i));
        // Shared frames survive until their last mapping goes away.
        if (frame.rmaps.empty()) pm_.free(pte.pfn, order);
        vma.pte_slot(i).store(0, std::memory_order_release);
        ++stats_.unmapped_pages;
    }
}

VAddr
AddressSpace::mmap_file(FileBacking &backing,
                        std::uint64_t file_page_offset,
                        std::uint64_t num_pages)
{
    const PageSize psize = PageSize::k4K;  // page caches are 4 KB-granular
    const std::uint64_t pb = page_bytes(psize);
    const VAddr base = (next_base_ + pb - 1) & ~(pb - 1);

    auto vma = std::make_unique<Vma>(this, base, num_pages, psize,
                                     mem::kInvalidNode, table_);
    vma->set_backing(&backing, file_page_offset);
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        const mem::Pfn pfn = backing.cached_pfn(file_page_offset + i);
        if (pfn == mem::kInvalidPfn) return 0;  // hole / beyond EOF
        pm_.frame(pfn).add_rmap(this, vma->page_vaddr(i));
        vma->pte_slot(i).store(Pte::make(pfn).pack(),
                               std::memory_order_release);
        ++stats_.mapped_pages;
    }
    next_base_ = base + num_pages * pb;
    vmas_.push_back(std::move(vma));
    return base;
}

VAddr
AddressSpace::mmap_shared(const Vma &source)
{
    const PageSize psize = source.page_size();
    const std::uint64_t pb = page_bytes(psize);
    const VAddr base = (next_base_ + pb - 1) & ~(pb - 1);

    auto vma = std::make_unique<Vma>(this, base, source.num_pages(), psize,
                                     source.home_node(), table_);
    for (std::uint64_t i = 0; i < source.num_pages(); ++i) {
        const Pte src_pte = source.pte(i);
        if (!src_pte.present) return 0;
        pm_.frame(src_pte.pfn).add_rmap(this, vma->page_vaddr(i));
        vma->pte_slot(i).store(Pte::make(src_pte.pfn).pack(),
                               std::memory_order_release);
        ++stats_.mapped_pages;
    }
    next_base_ = base + source.num_pages() * pb;
    vmas_.push_back(std::move(vma));
    return base;
}

Vma *
AddressSpace::find_vma(VAddr va)
{
    for (auto &vma : vmas_)
        if (vma->contains(va)) return vma.get();
    return nullptr;
}

const Vma *
AddressSpace::find_vma(VAddr va) const
{
    for (const auto &vma : vmas_)
        if (vma->contains(va)) return vma.get();
    return nullptr;
}

std::byte *
AddressSpace::translate(VAddr va)
{
    Vma *vma = find_vma(va);
    if (!vma) return nullptr;
    const std::uint64_t idx = vma->page_index(va);
    const Pte pte = vma->pte(idx);
    if (!pte.present) return nullptr;
    const std::uint64_t offset = va - vma->page_vaddr(idx);
    return pm_.span(pte.pfn, page_bytes(vma->page_size())) + offset;
}

AccessResult
AddressSpace::touch(VAddr va, bool write)
{
    Vma *vma = find_vma(va);
    if (!vma) {
        ++stats_.hard_faults;
        return AccessResult::kNotPresent;
    }
    const std::uint64_t idx = vma->page_index(va);
    PteSlot &slot = vma->pte_slot(idx);

    for (;;) {
        const std::uint64_t raw = slot.load(std::memory_order_acquire);
        const Pte pte = Pte::unpack(raw);
        if (!pte.present) {
            ++stats_.hard_faults;
            return AccessResult::kNotPresent;
        }
        if (pte.migration) {
            // Baseline race prevention: the accessor is parked until the
            // migration completes (caller loops / sleeps).
            ++stats_.migration_blocks;
            return AccessResult::kBlockedOnMigration;
        }
        if (pte.lazy) {
            // Lazy migration (paper §7): the fault handler migrates
            // the page before the access proceeds (os layer does it).
            return AccessResult::kLazyFault;
        }
        if (pte.young) {
            // A registered custom fault handler gets first shot (§5.2
            // proceed-and-recover); if it resolves the fault, retry.
            if (young_fault_hook_ && young_fault_hook_(*vma, idx)) continue;
            // Software access-flag emulation: the first access traps and
            // the kernel clears young (paper 5.2 relies on this).
            Pte cleared = pte;
            cleared.young = false;
            cleared.dirty = pte.dirty || write;
            std::uint64_t expected = raw;
            if (!slot.compare_exchange_strong(expected, cleared.pack(),
                                              std::memory_order_acq_rel))
                continue;  // raced with the driver or another accessor
            ++stats_.young_clears;
            if (xlate_invalidate_hook_) xlate_invalidate_hook_(vma, idx, 1);
            // The finalized translation may now be cached.
            tlb_.lookup(va, vma->page_size());
            tlb_.fill(va, vma->page_size());
            return AccessResult::kClearedYoung;
        }
        if (write && !pte.dirty) {
            Pte dirtied = pte;
            dirtied.dirty = true;
            std::uint64_t expected = raw;
            if (slot.compare_exchange_strong(expected, dirtied.pack(),
                                             std::memory_order_acq_rel) &&
                xlate_invalidate_hook_)
                xlate_invalidate_hook_(vma, idx, 1);
        }
        if (!tlb_.lookup(va, vma->page_size()))
            tlb_.fill(va, vma->page_size());
        return AccessResult::kOk;
    }
}

HeatSample
AddressSpace::heat_sample(Vma &vma, std::uint64_t page_idx)
{
    PteSlot &slot = vma.pte_slot(page_idx);
    HeatSample s;
    for (;;) {
        const std::uint64_t raw = slot.load(std::memory_order_acquire);
        const Pte pte = Pte::unpack(raw);
        // Observe only: absent, mid-migration and lazy pages are the
        // driver's (or the fault path's) business, never the scanner's.
        if (!pte.present || pte.migration || pte.lazy) return s;
        s.sampled = true;
        s.accessed = !pte.young;  // inverted polarity: cleared == touched
        s.written = pte.dirty;
        ++stats_.heat_samples;
        // A young-set page is left untouched even when dirty: it may be
        // a semi-final migration PTE whose Release CAS expects this
        // exact raw value. The dirty bit is swept up at the next rearm.
        if (pte.young) return s;
        Pte armed = pte;
        armed.young = true;
        armed.dirty = false;
        std::uint64_t expected = raw;
        if (!slot.compare_exchange_strong(expected, armed.pack(),
                                          std::memory_order_acq_rel)) {
            --stats_.heat_samples;
            continue;  // raced with a touch or the driver; re-examine
        }
        s.rearmed = true;
        ++stats_.heat_rearms;
        // The rewritten PTE invalidates any cached translation of it.
        flush_tlb_page(vma.page_vaddr(page_idx), vma.page_size());
        return s;
    }
}

bool
AddressSpace::read(VAddr va, void *out, std::uint64_t len)
{
    std::byte *dst = static_cast<std::byte *>(out);
    while (len > 0) {
        const Vma *vma = find_vma(va);
        if (!vma) return false;
        const std::uint64_t pb = page_bytes(vma->page_size());
        const std::uint64_t in_page = pb - (va & (pb - 1));
        const std::uint64_t chunk = len < in_page ? len : in_page;
        const std::byte *src = translate(va);
        if (!src) return false;
        std::memcpy(dst, src, chunk);
        va += chunk;
        dst += chunk;
        len -= chunk;
    }
    return true;
}

bool
AddressSpace::write(VAddr va, const void *in, std::uint64_t len)
{
    const std::byte *src = static_cast<const std::byte *>(in);
    while (len > 0) {
        const Vma *vma = find_vma(va);
        if (!vma) return false;
        const std::uint64_t pb = page_bytes(vma->page_size());
        const std::uint64_t in_page = pb - (va & (pb - 1));
        const std::uint64_t chunk = len < in_page ? len : in_page;
        std::byte *dst = translate(va);
        if (!dst) return false;
        std::memcpy(dst, src, chunk);
        va += chunk;
        src += chunk;
        len -= chunk;
    }
    return true;
}

}  // namespace memif::vm
