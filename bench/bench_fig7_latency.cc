/**
 * @file
 * Figure 7 reproduction: per-request completion latency for a sequence
 * of eight migration requests, each covering sixteen 4 KB pages.
 *
 *   Linux-b1 / Linux-b4 / Linux-b8 — NUMA migration syscalls batching
 *       1, 4 or 8 requests per syscall: batching amortizes overhead but
 *       delays every batched request to the syscall's return.
 *   memif — all eight submitted asynchronously; one ioctl total; each
 *       notification arrives soon after its own request completes.
 *
 * Paper claim: memif reduces latency by up to 63% while needing no
 * batching.
 */
#include <cstdio>

#include "harness.h"

int
main()
{
    using namespace memif::bench;
    BenchReport report("fig7_latency");
    header("Figure 7: latency of 8 migration requests (16 x 4KB pages each)");

    const RequestPlan plan{.op = memif::core::MovOp::kMigrate,
                           .page_size = memif::vm::PageSize::k4K,
                           .pages_per_request = 16,
                           .num_requests = 8};

    struct Series {
        const char *name;
        std::vector<double> us;
        std::uint64_t kicks = 0;
    };
    std::vector<Series> series;

    static const char *kLinuxNames[] = {"Linux-b1", "Linux-b4", "Linux-b8"};
    const std::uint32_t kBatches[] = {1, 4, 8};
    for (int i = 0; i < 3; ++i) {
        TestBed bed;
        const StreamOutcome out = run_linux_stream(bed, plan, kBatches[i]);
        Series s{.name = kLinuxNames[i], .us = {}, .kicks = 0};
        for (const RequestTiming &t : out.timings)
            s.us.push_back(memif::sim::to_us(t.latency()));
        series.push_back(std::move(s));
    }
    {
        TestBed bed;
        const StreamOutcome out = run_memif_stream(bed, plan);
        Series s{.name = "memif", .us = {}, .kicks = bed.user.stats().kicks};
        for (const RequestTiming &t : out.timings)
            s.us.push_back(memif::sim::to_us(t.latency()));
        series.push_back(std::move(s));
    }

    std::printf("%-10s", "request#");
    for (int i = 0; i < 8; ++i) std::printf(" %8d", i + 1);
    std::printf(" %9s\n", "mean_us");
    rule();
    double memif_mean = 0, best_linux_mean = 1e30;
    for (const Series &s : series) {
        double sum = 0;
        std::printf("%-10s", s.name);
        for (std::size_t i = 0; i < s.us.size(); ++i) {
            const double v = s.us[i];
            std::printf(" %8.1f", v);
            sum += v;
            report.add(s.name, static_cast<double>(i + 1), v);
        }
        const double mean = sum / static_cast<double>(s.us.size());
        std::printf(" %9.1f\n", mean);
        if (std::string(s.name) == "memif")
            memif_mean = mean;
        else if (mean < best_linux_mean)
            best_linux_mean = mean;
    }
    rule();
    std::printf(
        "memif mean latency reduction vs best Linux config: %.0f%% "
        "(paper: up to 63%%)\n",
        100.0 * (1.0 - memif_mean / best_linux_mean));
    std::printf("memif syscalls (kick ioctls) for all 8 requests: %llu "
                "(paper: one)\n",
                static_cast<unsigned long long>(series.back().kicks));
    return 0;
}
