/**
 * @file
 * Ablation of the §5 driver optimizations, isolating each Table 1
 * "Optimized" column against its baseline:
 *
 *   - gang page lookup (§5.1) vs per-page walks
 *   - descriptor-chain reuse + parameter caching (§5.3) vs full
 *     reconfiguration
 *   - race detection (§5.2) vs Linux-style prevention (extra PTE+TLB
 *     work and no interrupt-context release) vs proceed-and-recover
 *   - interrupt-vs-poll threshold (§5.4)
 */
#include <cstdio>

#include "harness.h"
#include "sim/cpu.h"

namespace memif::bench {
namespace {

StreamOutcome
run(core::MemifConfig mc, os::KernelConfig kc, std::uint32_t pages,
    std::uint32_t requests, core::MovOp op = core::MovOp::kMigrate)
{
    TestBed bed(mc, kc);
    RequestPlan plan{.op = op,
                     .page_size = vm::PageSize::k4K,
                     .pages_per_request = pages,
                     .num_requests = requests};
    return run_memif_stream(bed, plan);
}

void
row(const char *name, const StreamOutcome &out, BenchReport *report = nullptr)
{
    double mean_lat = 0;
    for (const RequestTiming &t : out.timings)
        mean_lat += sim::to_us(t.latency());
    mean_lat /= static_cast<double>(out.timings.size());
    std::printf("%-26s %9.2f %11.1f %12.1f %10.1f\n", name,
                out.gb_per_sec(), mean_lat, sim::to_us(out.cpu.total),
                sim::to_us(out.cpu.op(sim::Op::kPrep)));
    if (report) {
        report->add(std::string(name) + ":gbps", 0, out.gb_per_sec());
        report->add(std::string(name) + ":cpu_us", 0,
                    sim::to_us(out.cpu.total));
    }
}

/**
 * One pipelined-dispatch lever in isolation: run the migration stream
 * under @p mc and print the device counters that attribute the gain —
 * SG entries actually emitted vs descriptor writes saved (coalescing),
 * distinct TCs dispatched to (multi-TC), and ranged TLB flushes
 * (batched shootdown).
 */
void
lever_row(BenchReport &report, const char *name, core::MemifConfig mc,
          std::uint32_t pages, std::uint32_t requests)
{
    TestBed bed(mc, {});
    RequestPlan plan{.op = core::MovOp::kMigrate,
                     .page_size = vm::PageSize::k4K,
                     .pages_per_request = pages,
                     .num_requests = requests};
    const StreamOutcome out = run_memif_stream(bed, plan);
    row(name, out, &report);
    const core::DeviceStats &st = bed.dev.stats();
    unsigned tcs_used = 0;
    for (const std::uint64_t n : st.tc_dispatches) tcs_used += n != 0;
    std::printf("  sg_entries=%llu desc_writes_saved=%llu "
                "ranged_tlb_flushes=%llu tcs_used=%u\n",
                static_cast<unsigned long long>(st.sg_entries_emitted),
                static_cast<unsigned long long>(st.descriptor_writes_saved),
                static_cast<unsigned long long>(st.ranged_tlb_flushes),
                tcs_used);
    report.add(std::string(name) + ":desc_writes_saved", 0,
               static_cast<double>(st.descriptor_writes_saved));
    report.add(std::string(name) + ":ranged_tlb_flushes", 0,
               static_cast<double>(st.ranged_tlb_flushes));
    report.add(std::string(name) + ":tcs_used", 0, tcs_used);
}

}  // namespace
}  // namespace memif::bench

int
main()
{
    using namespace memif::bench;
    using memif::core::MemifConfig;
    using memif::core::RacePolicy;
    using memif::os::KernelConfig;

    BenchReport report("ablation_optimizations");
    header("Ablations: the Section 5 optimizations in isolation");
    std::printf("workload: 64 migration requests x 64 x 4KB pages\n\n");
    std::printf("%-26s %9s %11s %12s %10s\n", "configuration", "GB/s",
                "mean_lat_us", "cpu_total_us", "prep_us");
    rule();

    const std::uint32_t pages = 64, requests = 64;

    // 5.1: gang lookup.
    {
        MemifConfig on{}, off{};
        off.gang_lookup = false;
        row("gang lookup ON  (memif)", run(on, {}, pages, requests));
        row("gang lookup OFF", run(off, {}, pages, requests));
    }
    rule('-');
    // 5.3: descriptor reuse + parameter caching.
    {
        KernelConfig cold{};
        cold.dma_options.reuse_chains = false;
        cold.dma_options.cache_params = false;
        row("desc reuse ON  (memif)", run({}, {}, pages, requests));
        row("desc reuse OFF", run({}, cold, pages, requests));
    }
    rule('-');
    // 5.2: race policy.
    {
        MemifConfig detect{}, recover{}, prevent{};
        recover.race_policy = RacePolicy::kRecover;
        prevent.race_policy = RacePolicy::kPrevent;
        row("race detect (memif)", run(detect, {}, pages, requests));
        row("race recover", run(recover, {}, pages, requests));
        row("race prevent (Linux-ish)", run(prevent, {}, pages, requests));
    }
    rule('-');
    // 5.4: interrupt-vs-poll threshold.
    {
        MemifConfig always_poll{}, never_poll{};
        always_poll.poll_threshold_bytes = ~std::uint64_t{0};
        never_poll.poll_threshold_bytes = 0;
        row("hybrid 512KB (memif)", run({}, {}, pages, requests));
        row("always poll", run(always_poll, {}, pages, requests));
        row("always interrupt", run(never_poll, {}, pages, requests));
    }
    rule();
    // Pipelined-dispatch levers (off in every row above and in all the
    // paper figures): each in isolation, then combined, with the device
    // counters attributing the gain per lever.
    std::printf("\npipelined-dispatch levers (64 x 64 x 4KB migrations):\n");
    std::printf("%-26s %9s %11s %12s %10s\n", "configuration", "GB/s",
                "mean_lat_us", "cpu_total_us", "prep_us");
    rule();
    {
        MemifConfig base{}, co{}, tc{}, fl{};
        co.sg_coalescing = true;
        tc.multi_tc_dispatch = true;
        fl.batched_tlb_shootdown = true;
        lever_row(report, "paper default", base, pages, requests);
        lever_row(report, "+ sg coalescing", co, pages, requests);
        lever_row(report, "+ multi-TC dispatch", tc, pages, requests);
        lever_row(report, "+ batched shootdown", fl, pages, requests);
        lever_row(report, "pipelined (all three)",
                  MemifConfig::pipelined(), pages, requests);
    }
    rule();
    std::printf("\nexpected: each OFF/alternative row costs more CPU and/or"
                " throughput\nthan the memif default above it.\n");
    return 0;
}
