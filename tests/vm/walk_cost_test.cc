/**
 * @file
 * Tests for the gang-lookup walk-cost model (paper §5.1).
 */
#include "vm/walk_cost.h"

#include <gtest/gtest.h>

namespace memif::vm {
namespace {

TEST(WalkCost, PerPageWalkDescendsEveryTime)
{
    const WalkCost c = per_page_walk(64);
    EXPECT_EQ(c.full_descents, 64u);
    EXPECT_EQ(c.adjacent_steps, 0u);
}

TEST(WalkCost, GangWalkDescendsOnceWithinOneLeaf)
{
    // 64 pages starting leaf-aligned: one descent, 63 neighbour steps.
    const WalkCost c = gang_walk(0, 64, PageSize::k4K);
    EXPECT_EQ(c.full_descents, 1u);
    EXPECT_EQ(c.adjacent_steps, 63u);
}

TEST(WalkCost, GangWalkRedescendsAtLeafBoundary)
{
    // Start at leaf entry 510 (of 512): pages 510,511 | 512... crossing
    // after two pages.
    const VAddr va = 510ull * 4096;
    const WalkCost c = gang_walk(va, 4, PageSize::k4K);
    EXPECT_EQ(c.full_descents, 2u);
    EXPECT_EQ(c.adjacent_steps, 2u);
}

TEST(WalkCost, GangWalkOverManyLeaves)
{
    // 2048 leaf-aligned pages: 4 descents (one per 512-entry leaf).
    const WalkCost c = gang_walk(0, 2048, PageSize::k4K);
    EXPECT_EQ(c.full_descents, 4u);
    EXPECT_EQ(c.adjacent_steps, 2044u);
}

TEST(WalkCost, ZeroAndOnePageEdges)
{
    EXPECT_EQ(gang_walk(0, 0, PageSize::k4K).full_descents, 0u);
    const WalkCost one = gang_walk(4096, 1, PageSize::k4K);
    EXPECT_EQ(one.full_descents, 1u);
    EXPECT_EQ(one.adjacent_steps, 0u);
}

TEST(WalkCost, LargePagesCrossLeavesRarely)
{
    // 2 MB pages: 512 of them span a gigabyte yet only one leaf level.
    const WalkCost c = gang_walk(0, 512, PageSize::k2M);
    EXPECT_EQ(c.full_descents, 1u);
    EXPECT_EQ(c.adjacent_steps, 511u);
}

TEST(WalkCost, GangNeverWorseThanPerPage)
{
    for (std::uint64_t n : {1ull, 5ull, 512ull, 513ull, 5000ull}) {
        for (VAddr va : {0ull, 4096ull * 300, 4096ull * 511}) {
            const WalkCost g = gang_walk(va, n, PageSize::k4K);
            const WalkCost p = per_page_walk(n);
            EXPECT_LE(g.full_descents, p.full_descents);
            EXPECT_EQ(g.full_descents + g.adjacent_steps, n);
        }
    }
}

}  // namespace
}  // namespace memif::vm
