/**
 * @file
 * Tests for the paper-verbatim C-style API (§4.1, Fig. 2).
 */
#include "memif/memif.h"

#include <gtest/gtest.h>

#include "os/kernel.h"
#include "os/process.h"

namespace memif::core {
namespace {

class CApi : public ::testing::Test {
  protected:
    void TearDown() override { ResetDeviceFiles(); }
};

TEST_F(CApi, OpenCloseLifecycle)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev(kernel, proc);
    RegisterDeviceFile("/dev/memif0", dev);

    EXPECT_EQ(MemifOpen("/dev/none"), kErrNoEntry);
    const int fd = MemifOpen("/dev/memif0");
    ASSERT_GE(fd, 0);
    EXPECT_EQ(MemifClose(fd), kOk);
    EXPECT_EQ(MemifClose(fd), kErrBadFd);
    EXPECT_EQ(MemifClose(1234), kErrBadFd);
    // Slot reuse.
    const int fd2 = MemifOpen("/dev/memif0");
    EXPECT_EQ(fd2, fd);
    MemifClose(fd2);
}

TEST_F(CApi, Figure2EndToEnd)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev(kernel, proc);
    RegisterDeviceFile("/dev/memif0", dev);
    const vm::VAddr region = proc.mmap(10 * 16 * 4096, vm::PageSize::k4K);

    int completed = 0;
    auto app = [&]() -> sim::Task {
        const int memfd = MemifOpen("/dev/memif0");
        EXPECT_GE(memfd, 0);

        // "Request to move memory regions" — ten of them, Fig. 2 style.
        for (int i = 0; i < 10; ++i) {
            mov_req *req = AllocRequest(memfd);
            EXPECT_NE(req, nullptr);
            req->op = MovOp::kMigrate;
            req->src_base = region + static_cast<vm::VAddr>(i) * 16 * 4096;
            req->num_pages = 16;
            req->dst_node = kernel.fast_node();
            int rc = -1;
            co_await SubmitRequest(memfd, req, &rc);  // non-blocking
            EXPECT_EQ(rc, kOk);
        }

        // "Do computation"
        co_await sim::Delay{kernel.eq(), sim::microseconds(100)};

        // "Is any move completed?"
        while (completed < 10) {
            mov_req *req = RetrieveCompleted(memfd);
            if (!req) {
                // "No other work, sleep until any move is completed."
                co_await Poll(memfd);
                continue;
            }
            EXPECT_TRUE(req->succeeded());
            FreeRequest(memfd, req);
            ++completed;
        }
        EXPECT_EQ(MemifClose(memfd), kOk);
    };
    auto t = app();
    kernel.run();
    EXPECT_EQ(completed, 10);
}

TEST_F(CApi, MovManySubmitsBatchWithOneCrossing)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev(kernel, proc);
    RegisterDeviceFile("/dev/memif0", dev);
    const vm::VAddr region = proc.mmap(8 * 16 * 4096, vm::PageSize::k4K);

    int completed = 0;
    auto app = [&]() -> sim::Task {
        const int memfd = MemifOpen("/dev/memif0");
        EXPECT_GE(memfd, 0);

        mov_req *reqs[8] = {};
        for (int i = 0; i < 8; ++i) {
            reqs[i] = AllocRequest(memfd);
            EXPECT_NE(reqs[i], nullptr);  // ASSERT returns; no co_return
            reqs[i]->op = MovOp::kMigrate;
            reqs[i]->src_base =
                region + static_cast<vm::VAddr>(i) * 16 * 4096;
            reqs[i]->num_pages = 16;
            reqs[i]->dst_node = kernel.fast_node();
        }
        kernel.reset_syscall_stats();
        int rc = -1;
        co_await memif_mov_many(memfd, reqs, 8, &rc);
        EXPECT_EQ(rc, kOk);
        // The whole batch cost one user/kernel crossing (the kick); the
        // kernel thread drained the other seven submissions itself.
        EXPECT_EQ(kernel.syscall_stats().crossings, 1u);

        while (completed < 8) {
            mov_req *req = RetrieveCompleted(memfd);
            if (!req) {
                co_await Poll(memfd);
                continue;
            }
            EXPECT_TRUE(req->succeeded());
            FreeRequest(memfd, req);
            ++completed;
        }
        EXPECT_EQ(MemifClose(memfd), kOk);
    };
    auto t = app();
    kernel.run();
    EXPECT_EQ(completed, 8);
    // Against eight one-at-a-time SubmitRequest() calls, each of which
    // starts an idle period and kicks: 8x fewer crossings.
    EXPECT_EQ(kernel.syscall_stats().crossings, 1u);

    int rc = -1;
    auto bad = memif_mov_many(1234, nullptr, 0, &rc);
    EXPECT_EQ(rc, kErrBadFd);
}

TEST_F(CApi, BadDescriptorsAreHarmless)
{
    EXPECT_EQ(AllocRequest(7), nullptr);
    EXPECT_EQ(RetrieveCompleted(7), nullptr);
    FreeRequest(7, nullptr);  // no crash
    int rc = 12345;
    auto t = SubmitRequest(7, nullptr, &rc);
    EXPECT_EQ(rc, kErrBadFd);
    auto p = Poll(7);  // completes immediately
    EXPECT_TRUE(p.done());
}

TEST_F(CApi, AllocRequestReportsNoSpaceWhenFreeListEmpty)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev(kernel, proc, MemifConfig{.capacity = 2});
    RegisterDeviceFile("/dev/memif0", dev);
    const int fd = MemifOpen("/dev/memif0");
    ASSERT_GE(fd, 0);

    int rc = 12345;
    mov_req *a = AllocRequest(fd, &rc);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(rc, kOk);
    mov_req *b = AllocRequest(fd, &rc);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(rc, kOk);

    // The application holds every slot: ENOSPC, not a silent nullptr.
    EXPECT_EQ(AllocRequest(fd, &rc), nullptr);
    EXPECT_EQ(rc, kErrNoSpace);
    EXPECT_EQ(AllocRequest(fd), nullptr);  // legacy overload still works

    FreeRequest(fd, b);
    EXPECT_NE(AllocRequest(fd, &rc), nullptr);
    EXPECT_EQ(rc, kOk);

    // A bad descriptor reports EBADF, not ENOSPC.
    EXPECT_EQ(AllocRequest(999, &rc), nullptr);
    EXPECT_EQ(rc, kErrBadFd);
    // A null out_rc is allowed.
    EXPECT_EQ(AllocRequest(999, nullptr), nullptr);
    MemifClose(fd);
}

TEST_F(CApi, UnregisterInvalidatesOpenDescriptors)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev(kernel, proc);
    RegisterDeviceFile("/dev/memif0", dev);
    const int fd = MemifOpen("/dev/memif0");
    ASSERT_GE(fd, 0);
    UnregisterDeviceFile("/dev/memif0");
    EXPECT_EQ(AllocRequest(fd), nullptr);
    EXPECT_EQ(MemifClose(fd), kErrBadFd);
}

TEST_F(CApi, TwoDevicesTwoDescriptors)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev0(kernel, proc);
    MemifDevice dev1(kernel, proc,
                     MemifConfig{.capacity = 4,
                                 .gang_lookup = true,
                                 .race_policy = RacePolicy::kDetect,
                                 .poll_threshold_bytes = 512 * 1024});
    RegisterDeviceFile("/dev/memif0", dev0);
    RegisterDeviceFile("/dev/memif1", dev1);
    const int a = MemifOpen("/dev/memif0");
    const int b = MemifOpen("/dev/memif1");
    ASSERT_NE(a, b);
    // Instance isolation through the C API: exhaust b's free list.
    for (int i = 0; i < 4; ++i) EXPECT_NE(AllocRequest(b), nullptr);
    EXPECT_EQ(AllocRequest(b), nullptr);
    EXPECT_NE(AllocRequest(a), nullptr);
}

TEST_F(CApi, PollFdsWakesOnWhicheverDeviceCompletesFirst)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev0(kernel, proc);
    MemifDevice dev1(kernel, proc);
    RegisterDeviceFile("/dev/memif0", dev0);
    RegisterDeviceFile("/dev/memif1", dev1);
    const vm::VAddr small = proc.mmap(4 * 4096, vm::PageSize::k4K);
    const vm::VAddr big = proc.mmap(512 * 4096, vm::PageSize::k4K);

    int ready = -99;
    auto app = [&]() -> sim::Task {
        const int fd0 = MemifOpen("/dev/memif0");
        const int fd1 = MemifOpen("/dev/memif1");
        // A long request on fd0, a short one on fd1.
        mov_req *slow_req = AllocRequest(fd0);
        slow_req->op = MovOp::kMigrate;
        slow_req->src_base = big;
        slow_req->num_pages = 512;
        slow_req->dst_node = kernel.fast_node();
        co_await SubmitRequest(fd0, slow_req);
        mov_req *fast_req = AllocRequest(fd1);
        fast_req->op = MovOp::kMigrate;
        fast_req->src_base = small;
        fast_req->num_pages = 4;
        fast_req->dst_node = kernel.fast_node();
        co_await SubmitRequest(fd1, fast_req);

        std::vector<int> fds{fd0, fd1, 1234 /*bogus: ignored*/};
        co_await PollFds(fds, &ready);
    };
    auto t = app();
    kernel.run();
    EXPECT_EQ(ready, 1);  // the short request's device woke us
}

TEST_F(CApi, PollFdsOnNothingReturnsImmediately)
{
    int ready = -99;
    auto t = PollFds({7, 8}, &ready);
    EXPECT_TRUE(t.done());
    EXPECT_EQ(ready, -1);
}

}  // namespace
}  // namespace memif::core
