/**
 * @file
 * Tests for the tracer and for simulation determinism: two identical
 * simulations must produce bit-identical traces.
 */
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"

namespace memif::sim {
namespace {

TEST(Tracer, DisabledByDefaultAndFree)
{
    Tracer t;
    EXPECT_FALSE(t.enabled());
    t.record(10, TracePoint::kSubmit, ExecContext::kUser, 1);
    EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, RecordsWhenEnabled)
{
    Tracer t;
    t.enable();
    t.record(10, TracePoint::kSubmit, ExecContext::kUser, 1);
    t.record(20, TracePoint::kNotifyDone, ExecContext::kIrq, 1);
    ASSERT_EQ(t.records().size(), 2u);
    EXPECT_EQ(t.records()[0].time, 10u);
    EXPECT_EQ(t.records()[0].point, TracePoint::kSubmit);
    EXPECT_EQ(t.records()[1].ctx, ExecContext::kIrq);
    t.clear();
    EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, PointNamesAreStable)
{
    EXPECT_EQ(to_string(TracePoint::kDmaStart), "dma-start");
    EXPECT_EQ(to_string(TracePoint::kReleaseDone), "4:release");
    EXPECT_EQ(to_string(TracePoint::kKickIoctl), "ioctl(MOV_ONE)");
}

/** Run one fixed memif scenario and return its trace. */
std::vector<TraceRecord>
run_scenario()
{
    os::Kernel kernel;
    kernel.tracer().enable();
    os::Process &proc = kernel.create_process();
    core::MemifDevice dev(kernel, proc);
    core::MemifUser user(dev);
    const vm::VAddr base = proc.mmap(64 * 4096, vm::PageSize::k4K);
    auto app = [&]() -> sim::Task {
        for (int i = 0; i < 4; ++i) {
            const std::uint32_t idx = user.alloc_request();
            core::MovReq &req = user.request(idx);
            req.op = core::MovOp::kMigrate;
            req.src_base = base + static_cast<vm::VAddr>(i) * 16 * 4096;
            req.num_pages = 16;
            req.dst_node = kernel.fast_node();
            co_await user.submit(idx);
        }
    };
    auto t = app();
    kernel.run();
    return kernel.tracer().records();
}

TEST(Determinism, IdenticalRunsProduceIdenticalTraces)
{
    const std::vector<TraceRecord> a = run_scenario();
    const std::vector<TraceRecord> b = run_scenario();
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time) << i;
        EXPECT_EQ(a[i].point, b[i].point) << i;
        EXPECT_EQ(a[i].ctx, b[i].ctx) << i;
        EXPECT_EQ(a[i].req, b[i].req) << i;
    }
}

TEST(Determinism, TraceTellsTheFigure5Story)
{
    const std::vector<TraceRecord> trace = run_scenario();
    // Exactly one kick ioctl; at least one interrupt completion (the
    // kicked request) and the rest polled by the kernel thread.
    int kicks = 0, irq_enters = 0, polled = 0, notifies = 0;
    for (const TraceRecord &r : trace) {
        if (r.point == TracePoint::kKickIoctl) ++kicks;
        if (r.point == TracePoint::kIrqEnter) ++irq_enters;
        if (r.point == TracePoint::kPolledWait) ++polled;
        if (r.point == TracePoint::kNotifyDone) ++notifies;
    }
    EXPECT_EQ(kicks, 1);
    EXPECT_EQ(irq_enters, 1);
    EXPECT_EQ(polled, 3);
    EXPECT_EQ(notifies, 4);
}

}  // namespace
}  // namespace memif::sim
