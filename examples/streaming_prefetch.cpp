/**
 * @file
 * The §6.6 case study as a runnable program: STREAM triad over a 32 MB
 * data set, once computing in place in slow DDR ("Linux") and once
 * through the mini runtime's fast-SRAM prefetch buffers filled by
 * asynchronous memif replication.
 *
 * Run: build/examples/streaming_prefetch
 */
#include <cstdio>
#include <vector>

#include "memif/device.h"
#include "os/kernel.h"
#include "os/process.h"
#include "runtime/streaming_runtime.h"
#include "sim/random.h"
#include "workloads/stream.h"

using namespace memif;

int
main()
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    core::MemifDevice device(kernel, proc);

    // A 32 MB stream of random doubles in slow memory.
    const std::uint64_t total = 32ull << 20;
    const vm::VAddr src = proc.mmap(total, vm::PageSize::k4K);
    {
        sim::Rng rng(2026);
        std::vector<double> page(4096 / sizeof(double));
        for (std::uint64_t off = 0; off < total; off += 4096) {
            for (double &v : page) v = rng.next_double();
            proc.as().write(src + off, page.data(), 4096);
        }
    }

    runtime::RuntimeConfig cfg{.num_buffers = 4,
                               .buffer_bytes = 1u << 20,
                               .page_size = vm::PageSize::k4K};
    runtime::StreamingRuntime rt(kernel, proc, device, cfg);
    workloads::StreamTriad triad;

    runtime::StreamRunResult direct;
    kernel.spawn(rt.run_direct(src, total, triad, &direct));
    kernel.run();

    runtime::StreamRunResult prefetched;
    kernel.spawn(rt.run(src, total, triad, &prefetched));
    kernel.run();

    std::printf("STREAM.triad over %llu MB (4 x 1 MB SRAM buffers)\n\n",
                static_cast<unsigned long long>(total >> 20));
    std::printf("  in-place (slow DDR):      %8.1f MB/s\n",
                direct.throughput_mb_per_sec());
    std::printf("  memif prefetch (SRAM):    %8.1f MB/s  (%+.1f%%)\n",
                prefetched.throughput_mb_per_sec(),
                100.0 * (prefetched.throughput_mb_per_sec() /
                             direct.throughput_mb_per_sec() -
                         1.0));
    std::printf("\n  chunks consumed from fast buffers: %llu, fallback "
                "from slow: %llu\n",
                static_cast<unsigned long long>(prefetched.chunks_from_fast),
                static_cast<unsigned long long>(prefetched.chunks_from_slow));
    std::printf("  data digests %s (prefetch path moved the exact bytes)\n",
                direct.result_digest == prefetched.result_digest
                    ? "match"
                    : "MISMATCH");
    std::printf("  kick ioctls during the prefetched run: %llu\n",
                static_cast<unsigned long long>(
                    device.stats().kick_ioctls));
    return 0;
}
