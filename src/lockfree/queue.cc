#include "lockfree/queue.h"

#include "sim/log.h"

namespace memif::lockfree {

Color
RedBlueQueue::enqueue_overflow()
{
    // The shared region sizes the pool as payload-capacity + queues +
    // margin, so exhaustion means region corruption or a sizing bug.
    MEMIF_PANIC("lock-free cell pool exhausted: shared region mis-sized");
}

}  // namespace memif::lockfree
