/**
 * @file
 * The shared user/kernel region of one memif instance (paper Fig. 3).
 *
 * On the real system this is a set of pinned pages the driver allocates
 * and mmap()s into the application; here it is one heap buffer both
 * "sides" address directly (KeyStone II's non-aliasing caches make the
 * shared-mapping trick sound, §2.3). Layout:
 *
 *     [RegionHeader | Cell pool | MovReq array]
 *
 * The header holds the lock-free metadata: the cell-pool top and the
 * five queue head/tail pairs — free list, staging (the red-blue queue),
 * submission, and the two completion queues ("one for successful moves
 * and the other for failed ones", §4.2).
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "lockfree/cell.h"
#include "lockfree/link.h"
#include "lockfree/queue.h"
#include "memif/mov_req.h"

namespace memif::core {

/** Upper bound on per-CPU submission rings a region can carry. */
inline constexpr std::uint32_t kMaxSubmitRings = 8;

/** Queue metadata at the head of the region. */
struct RegionHeader {
    std::uint32_t capacity = 0;   ///< MovReq slots
    std::uint32_t ncells = 0;     ///< lock-free cells
    std::uint32_t num_rings = 0;  ///< per-CPU submission rings (0 = off)
    lockfree::StackHeader cell_pool;
    lockfree::QueueHeader free_q;
    lockfree::QueueHeader staging_q;     ///< red-blue
    lockfree::QueueHeader submission_q;
    lockfree::QueueHeader completion_ok_q;
    lockfree::QueueHeader completion_err_q;
    /** Per-CPU submission rings (red-blue, first num_rings used). */
    std::array<lockfree::QueueHeader, kMaxSubmitRings> ring_q;
};

/**
 * Owner of one instance's shared memory plus typed views onto it.
 *
 * All cross-references inside the region are indices; accessors
 * validate them, preserving the §4.2 safety argument (a corrupted
 * region can fail requests but cannot make the kernel wander).
 */
class SharedRegion {
  public:
    /** Default request capacity per instance. */
    static constexpr std::uint32_t kDefaultCapacity = 256;

    /**
     * @param num_rings per-CPU submission rings to format (0 = classic
     *        single shared deposit path; capped at kMaxSubmitRings).
     */
    explicit SharedRegion(std::uint32_t capacity = kDefaultCapacity,
                          std::uint32_t num_rings = 0);
    SharedRegion(const SharedRegion &) = delete;
    SharedRegion &operator=(const SharedRegion &) = delete;

    std::uint32_t capacity() const { return header_->capacity; }
    std::uint32_t num_rings() const { return header_->num_rings; }

    /** True if @p idx names a MovReq slot. */
    bool valid_index(std::uint32_t idx) const { return idx < capacity(); }

    MovReq &request(std::uint32_t idx);
    const MovReq &request(std::uint32_t idx) const;

    /** Index of @p req within the region (panics on foreign pointers). */
    std::uint32_t index_of(const MovReq &req) const;

    lockfree::CellPool pool();
    lockfree::RedBlueQueue free_queue();
    lockfree::RedBlueQueue staging_queue();
    lockfree::RedBlueQueue submission_queue();
    lockfree::RedBlueQueue completion_ok_queue();
    lockfree::RedBlueQueue completion_err_queue();
    /** Per-CPU submission ring @p i (i < num_rings()). */
    lockfree::RedBlueQueue ring_queue(std::uint32_t i);

    /** Total region footprint in bytes (what the driver would pin). */
    std::size_t bytes() const { return bytes_; }

  private:
    lockfree::Cell *cells();

    std::size_t bytes_;
    std::unique_ptr<std::byte[]> storage_;
    RegionHeader *header_;
    lockfree::Cell *cells_;
    MovReq *requests_;
};

}  // namespace memif::core
