/**
 * @file
 * Smoke test of the system report formatter.
 */
#include "os/report.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "os/kernel.h"
#include "os/process.h"

namespace memif::os {
namespace {

TEST(Report, ContainsTheExpectedSections)
{
    Kernel k;
    Process &p = k.create_process();
    p.mmap(1 << 20, vm::PageSize::k4K, k.fast_node());

    char *buffer = nullptr;
    std::size_t size = 0;
    std::FILE *mem = open_memstream(&buffer, &size);
    ASSERT_NE(mem, nullptr);
    print_system_report(mem, k);
    std::fclose(mem);
    const std::string out(buffer, size);
    free(buffer);

    EXPECT_NE(out.find("system report"), std::string::npos);
    EXPECT_NE(out.find("ddr3-slow"), std::string::npos);
    EXPECT_NE(out.find("sram-fast"), std::string::npos);
    EXPECT_NE(out.find("[fast]"), std::string::npos);
    EXPECT_NE(out.find("1024 KB used"), std::string::npos);
    EXPECT_NE(out.find("dma engine"), std::string::npos);
    EXPECT_NE(out.find("cpu time by context"), std::string::npos);
}

}  // namespace
}  // namespace memif::os
