/**
 * @file
 * EDMA3-style transfer descriptors (PaRAM entries).
 *
 * The TI EDMA3 exposes an array of 512 descriptors (Table 2), each a
 * 12-parameter command describing a three-dimensional copy; descriptors
 * chain through a link field to form scatter-gather transfers
 * (paper §5.3). Descriptor memory is uncached I/O space on the real
 * part, which is why writes to it dominate configuration cost — the
 * DescriptorRam therefore counts full and partial writes so the 4x
 * reuse saving is observable.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/log.h"

namespace memif::dma {

/** Index of a PaRAM entry. */
using DescIndex = std::uint16_t;
/** Link terminator, as on the real EDMA3. */
inline constexpr DescIndex kNullLink = 0xFFFF;

/**
 * One PaRAM entry. Field names follow the EDMA3 TRM: a transfer moves
 * CCNT frames of BCNT arrays of ACNT bytes, with the four index fields
 * giving the strides between arrays/frames on each side.
 */
struct TransferDescriptor {
    std::uint32_t opt = 0;        ///< options (interrupt enable, chaining)
    std::uint64_t src = 0;        ///< source physical byte address
    std::uint16_t a_cnt = 0;      ///< bytes per array
    std::uint16_t b_cnt = 0;      ///< arrays per frame
    std::uint64_t dst = 0;        ///< destination physical byte address
    std::int32_t src_bidx = 0;    ///< source array stride
    std::int32_t dst_bidx = 0;    ///< destination array stride
    DescIndex link = kNullLink;   ///< next PaRAM entry in the chain
    std::uint16_t bcnt_rld = 0;   ///< BCNT reload value
    std::int32_t src_cidx = 0;    ///< source frame stride
    std::int32_t dst_cidx = 0;    ///< destination frame stride
    std::uint16_t c_cnt = 0;      ///< frames

    /** Total bytes this descriptor moves. */
    std::uint64_t
    total_bytes() const
    {
        return std::uint64_t{a_cnt} * b_cnt * (c_cnt ? c_cnt : 1);
    }

    /**
     * Build a descriptor that copies @p bytes of physically contiguous
     * memory, packed as ACNT x BCNT arrays so page sizes above 64 KB
     * (beyond the 16-bit ACNT) still fit a single descriptor.
     */
    static TransferDescriptor
    contiguous(std::uint64_t src, std::uint64_t dst, std::uint64_t bytes)
    {
        TransferDescriptor d;
        d.src = src;
        d.dst = dst;
        if (bytes <= 0xFFFF) {
            d.a_cnt = static_cast<std::uint16_t>(bytes);
            d.b_cnt = 1;
        } else {
            MEMIF_ASSERT(bytes % 4096 == 0, "odd large transfer size");
            d.a_cnt = 4096;
            d.b_cnt = static_cast<std::uint16_t>(bytes / 4096);
            d.src_bidx = 4096;
            d.dst_bidx = 4096;
        }
        d.c_cnt = 1;
        d.bcnt_rld = d.b_cnt;
        return d;
    }

    /**
     * Build a 2D descriptor: @p rows arrays of @p row_bytes each, the
     * source arrays @p src_pitch bytes apart and the destination
     * arrays @p dst_pitch apart (A/B-count synchronized transfer).
     * Both endpoints must be physically contiguous across the whole
     * pitched extent; callers split at page boundaries first.
     */
    static TransferDescriptor
    strided(std::uint64_t src, std::uint64_t dst, std::uint64_t row_bytes,
            std::uint32_t rows, std::uint64_t src_pitch,
            std::uint64_t dst_pitch)
    {
        MEMIF_ASSERT(row_bytes > 0 && row_bytes <= 0xFFFF,
                     "row does not fit ACNT");
        MEMIF_ASSERT(rows > 0 && rows <= 0xFFFF, "rows do not fit BCNT");
        MEMIF_ASSERT(src_pitch <= 0x7FFFFFFF && dst_pitch <= 0x7FFFFFFF,
                     "pitch does not fit BIDX");
        TransferDescriptor d;
        d.src = src;
        d.dst = dst;
        d.a_cnt = static_cast<std::uint16_t>(row_bytes);
        d.b_cnt = static_cast<std::uint16_t>(rows);
        d.src_bidx = static_cast<std::int32_t>(src_pitch);
        d.dst_bidx = static_cast<std::int32_t>(dst_pitch);
        d.c_cnt = 1;
        d.bcnt_rld = d.b_cnt;
        return d;
    }
};

/** Statistics on descriptor-memory traffic. */
struct DescriptorRamStats {
    std::uint64_t full_writes = 0;     ///< all 12 parameters written
    std::uint64_t partial_writes = 0;  ///< src/dst-only rewrites (reuse)
    std::uint64_t reads = 0;
};

/**
 * The PaRAM array. Functional storage plus traffic counters; the time
 * cost of each write is charged by the DMA driver from the CostModel.
 */
class DescriptorRam {
  public:
    static constexpr std::uint32_t kEntries = 512;  // Table 2

    DescriptorRam() : entries_(kEntries) {}

    std::uint32_t size() const { return kEntries; }

    /** Program all 12 parameters of entry @p idx. */
    void
    write_full(DescIndex idx, const TransferDescriptor &d)
    {
        entries_.at(idx) = d;
        ++stats_.full_writes;
    }

    /** Rewrite only source/destination (+sizes) of a reused entry. */
    void
    rewrite_src_dst(DescIndex idx, std::uint64_t src, std::uint64_t dst)
    {
        TransferDescriptor &d = entries_.at(idx);
        d.src = src;
        d.dst = dst;
        ++stats_.partial_writes;
    }

    /** Update only the link field (counts as a partial write). */
    void
    rewrite_link(DescIndex idx, DescIndex link)
    {
        entries_.at(idx).link = link;
        ++stats_.partial_writes;
    }

    const TransferDescriptor &
    read(DescIndex idx) const
    {
        ++stats_.reads;
        return entries_.at(idx);
    }

    const DescriptorRamStats &stats() const { return stats_; }
    void reset_stats() { stats_ = DescriptorRamStats{}; }

  private:
    std::vector<TransferDescriptor> entries_;
    mutable DescriptorRamStats stats_;
};

}  // namespace memif::dma
