/**
 * @file
 * Property tests of the red-blue *protocol* (paper §4.4): with many
 * threads racing SubmitRequest-style flushes against a kernel-style
 * drainer, exactly one party holds flush responsibility at a time, no
 * request is lost, and the "kick" syscall happens exactly when the color
 * flips blue->red.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "lockfree/cell.h"
#include "lockfree/link.h"
#include "lockfree/queue.h"

namespace memif::lockfree {
namespace {

/** staging + submission queues over one pool, as in a memif instance. */
struct Instance {
    std::uint32_t capacity;
    StackHeader stack_header;
    std::vector<Cell> cells;
    QueueHeader staging_header;
    QueueHeader submission_header;

    explicit Instance(std::uint32_t ncells)
        : capacity(ncells), cells(ncells)
    {
        CellPool::initialize(&stack_header, cells.data(), capacity);
        CellPool pool(&stack_header, cells.data(), capacity);
        RedBlueQueue::initialize(&staging_header, pool, Color::kBlue);
        RedBlueQueue::initialize(&submission_header, pool, Color::kRed);
    }

    CellPool pool() { return CellPool(&stack_header, cells.data(), capacity); }
    RedBlueQueue staging() { return RedBlueQueue(&staging_header, pool()); }
    RedBlueQueue submission() { return RedBlueQueue(&submission_header, pool()); }
};

/**
 * The SubmitRequest flush protocol, verbatim from the paper's pseudo
 * code (§4.4). @return true if this call made the "kick" ioctl.
 */
bool
submit_request(RedBlueQueue &staging, RedBlueQueue &submission,
               std::uint32_t req)
{
    const Color color = staging.enqueue(req);
    if (color != Color::kBlue) return false;  // kernel will flush
flush:
    for (;;) {
        const DequeueResult d = staging.dequeue();
        if (!d.ok) break;
        submission.enqueue(d.value);
    }
    const int old_color = staging.set_color(Color::kRed);
    if (old_color == kColorBusy) goto flush;  // raced with a new submit
    if (old_color == static_cast<int>(Color::kRed))
        return false;  // another thread won the flip and kicked
    return true;       // we flipped blue->red: issue ioctl(MOV_ONE)
}

TEST(RedBlueProtocol, SingleThreadKicksExactlyOncePerDrainCycle)
{
    Instance inst(64);
    RedBlueQueue staging = inst.staging();
    RedBlueQueue submission = inst.submission();

    EXPECT_TRUE(submit_request(staging, submission, 1));  // blue -> kick
    EXPECT_FALSE(submit_request(staging, submission, 2)); // red -> no kick
    EXPECT_FALSE(submit_request(staging, submission, 3));

    // "Kernel" drains: requests 2 and 3 still sit in staging (red).
    std::vector<std::uint32_t> served;
    for (;;) {
        DequeueResult d = submission.dequeue();
        if (!d.ok) d = staging.dequeue();
        if (!d.ok) break;
        served.push_back(d.value);
    }
    EXPECT_EQ(served, (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_EQ(staging.set_color(Color::kBlue),
              static_cast<int>(Color::kRed));
    EXPECT_TRUE(submit_request(staging, submission, 4));  // kicks again
}

TEST(RedBlueProtocol, ConcurrentSubmittersLoseNoRequests)
{
    constexpr std::uint32_t kPerThread = 5000;
    const unsigned nthreads = 4;
    const std::uint32_t total = kPerThread * nthreads;
    Instance inst(total + 16);

    std::atomic<std::uint64_t> kicks{0};
    std::atomic<bool> stop_kernel{false};
    std::vector<std::atomic<std::uint32_t>> seen(total);
    for (auto &s : seen) s.store(0);
    std::atomic<std::uint32_t> served{0};

    // Kernel thread: whenever requests exist, drain submission+staging,
    // then try to hand flush duty back (red->blue), exactly like the
    // memif kernel worker.
    std::thread kernel([&] {
        RedBlueQueue staging = inst.staging();
        RedBlueQueue submission = inst.submission();
        for (;;) {
            bool any = false;
            for (;;) {
                DequeueResult d = submission.dequeue();
                if (!d.ok) d = staging.dequeue();
                if (!d.ok) break;
                any = true;
                ASSERT_LT(d.value, total);
                seen[d.value].fetch_add(1);
                served.fetch_add(1);
            }
            if (!any) {
                // Queues look empty: recolor blue so apps kick again.
                staging.set_color(Color::kBlue);
                if (stop_kernel.load() && served.load() >= total) break;
            }
        }
    });

    std::vector<std::thread> apps;
    for (unsigned t = 0; t < nthreads; ++t) {
        apps.emplace_back([&, t] {
            RedBlueQueue staging = inst.staging();
            RedBlueQueue submission = inst.submission();
            std::uint64_t my_kicks = 0;
            for (std::uint32_t i = 0; i < kPerThread; ++i) {
                if (submit_request(staging, submission,
                                   t * kPerThread + i))
                    ++my_kicks;
            }
            kicks.fetch_add(my_kicks);
        });
    }
    for (auto &th : apps) th.join();
    stop_kernel.store(true);
    kernel.join();

    EXPECT_EQ(served.load(), total);
    for (std::uint32_t v = 0; v < total; ++v)
        ASSERT_EQ(seen[v].load(), 1u) << "request " << v;
    // At least one kick must have happened; far fewer than one per
    // request (that is the whole point of the protocol).
    EXPECT_GE(kicks.load(), 1u);
    EXPECT_LT(kicks.load(), total);
}

TEST(RedBlueProtocol, OnlyOneThreadWinsTheBlueToRedFlip)
{
    // Many threads race set_color(RED) on an empty blue queue: exactly
    // one observes BLUE (the winner), the rest observe RED or busy.
    for (int round = 0; round < 200; ++round) {
        Instance inst(32);
        std::atomic<int> winners{0};
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t) {
            threads.emplace_back([&] {
                RedBlueQueue staging = inst.staging();
                const int old_color = staging.set_color(Color::kRed);
                if (old_color == static_cast<int>(Color::kBlue))
                    winners.fetch_add(1);
            });
        }
        for (auto &th : threads) th.join();
        ASSERT_EQ(winners.load(), 1);
    }
}

}  // namespace
}  // namespace memif::lockfree
