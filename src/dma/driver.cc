#include "dma/driver.h"

#include <utility>

#include "sim/log.h"

namespace memif::dma {

namespace {

/**
 * Chain-cache keying signature of one SG entry. Flat entries key by
 * their raw byte count (the historical keying, so pre-strided
 * behaviour is bit-identical); strided entries fold their whole
 * geometry into a hash with bit 63 set, which no realistic flat size
 * carries — a flat acquire can therefore never be handed a descriptor
 * still programmed with 2D geometry, and vice versa.
 */
std::uint64_t
entry_signature(const SgEntry &e)
{
    if (!e.strided()) return e.bytes;
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(e.bytes);
    mix(e.rows);
    mix(e.src_pitch);
    mix(e.dst_pitch);
    return h | (1ull << 63);
}

}  // namespace

DmaDriver::Prepared
DmaDriver::prepare(const std::vector<SgEntry> &sg)
{
    MEMIF_ASSERT(!sg.empty(), "empty scatter-gather list");
    bool uniform = true;
    for (const SgEntry &e : sg)
        uniform = uniform && entry_signature(e) ==
                                 entry_signature(sg.front());

    Prepared p;
    if (uniform) {
        p.lease = cache_.acquire(static_cast<std::uint32_t>(sg.size()),
                                 entry_signature(sg.front()));
    } else {
        std::vector<std::uint64_t> sizes;
        sizes.reserve(sg.size());
        for (const SgEntry &e : sg) sizes.push_back(entry_signature(e));
        p.lease = cache_.acquire_shape(std::move(sizes));
    }
    for (const SgEntry &e : sg) p.bytes += e.total_bytes();

    // Program the PaRAM: reused flat entries get src/dst only (their
    // sizes already match by the cache's keying); fresh entries get
    // the full 12 parameters (link included). Strided entries are
    // ALWAYS written in full — a partial src/dst rewrite cannot update
    // the A/B-count geometry fields, and the signature is a hash, so
    // a (harmless) collision must not leave stale pitches behind.
    for (std::uint32_t i = 0; i < p.lease.size(); ++i) {
        const DescIndex idx = p.lease.descs[i];
        if (i < p.lease.reused && !sg[i].strided()) {
            engine_.param_ram().rewrite_src_dst(idx, sg[i].src_addr,
                                                sg[i].dst_addr);
            p.cpu_time += cm_.dma_desc_write_reuse;
        } else {
            TransferDescriptor d =
                sg[i].strided()
                    ? TransferDescriptor::strided(
                          sg[i].src_addr, sg[i].dst_addr, sg[i].bytes,
                          sg[i].rows, sg[i].src_pitch, sg[i].dst_pitch)
                    : TransferDescriptor::contiguous(
                          sg[i].src_addr, sg[i].dst_addr, sg[i].bytes);
            d.link = (i + 1 < p.lease.size()) ? p.lease.descs[i + 1]
                                              : kNullLink;
            engine_.param_ram().write_full(idx, d);
            p.cpu_time += cm_.dma_desc_write_full;
            p.cpu_time += opts_.cache_params ? cm_.dma_desc_param_cached
                                             : cm_.dma_desc_param_calc;
        }
    }
    // Link fix-ups the cache already performed on reused entries.
    // (acquire() counts them; each is one uncached field write.)
    p.cpu_time +=
        0;  // fix-up costs folded below via stats delta would be racy;
            // instead charge per junction: at most one per reuse splice.
    // Conservatively charge one link write when the lease mixes reused
    // and fresh entries (the splice point).
    if (p.lease.reused > 0 && p.lease.fresh() > 0)
        p.cpu_time += cm_.dma_desc_write_link;

    // The trigger-register write that starts the engine.
    p.cpu_time += cm_.dma_start;
    return p;
}

sim::Task
DmaDriver::reserve_descriptors(std::uint32_t need, const bool *abandon_a,
                               const bool *abandon_b)
{
    MEMIF_ASSERT(need > 0 && need <= cache_.capacity(),
                 "reservation of %u descriptors out of range", need);
    // Fast path: nobody queued ahead and the capacity is already there.
    if (capacity_fifo_.empty() && available_descriptors() >= need)
        co_return;
    auto ticket = std::make_shared<std::uint32_t>(need);
    capacity_fifo_.push_back(ticket);
    for (;;) {
        if ((abandon_a && *abandon_a) || (abandon_b && *abandon_b)) {
            // The caller's request died while queued; drop the ticket
            // so successors are not blocked behind a ghost.
            std::erase(capacity_fifo_, ticket);
            capacity_wq_.notify_all();
            co_return;
        }
        if (capacity_fifo_.front() == ticket &&
            available_descriptors() >= need)
            break;
        co_await capacity_wq_.wait();
    }
    capacity_fifo_.pop_front();
    // The caller consumes its descriptors synchronously (prepare());
    // waking the next ticket now keeps the pipeline moving once enough
    // capacity remains for it too.
    capacity_wq_.notify_all();
}

TransferId
DmaDriver::start(Prepared prepared, bool irq_mode, CompletionFn on_complete,
                 unsigned tc, bool moderated, XlateGate gate)
{
    const DescIndex head = prepared.lease.head();
    MEMIF_ASSERT(head != kNullLink, "starting an empty chain");

    // Stash the lease; it returns to the cache on retirement or cancel.
    const TransferId id = engine_.start_chain(
        head, tc, irq_mode,
        [this, cb = std::move(on_complete)](TransferId tid) {
            retire(tid);
            if (cb) cb(tid);
        },
        moderated, std::move(gate));
    leases_.emplace(id, std::move(prepared.lease));
    return id;
}

void
DmaDriver::retire(TransferId id)
{
    auto it = leases_.find(id);
    if (it == leases_.end()) return;  // already cancelled
    cache_.release(std::move(it->second));
    leases_.erase(it);
    capacity_wq_.notify_all();
}

bool
DmaDriver::cancel(TransferId id)
{
    const bool cancelled = engine_.cancel(id);
    if (cancelled) retire(id);  // the engine will not retire it for us
    return cancelled;
}

}  // namespace memif::dma
