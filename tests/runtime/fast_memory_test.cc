/**
 * @file
 * Tests of the FastMemoryManager extension (§6.7 future work):
 * admission, LRU eviction under budget pressure, hits, explicit
 * eviction, data integrity across the swap traffic, and failure modes.
 */
#include "runtime/fast_memory.h"

#include <gtest/gtest.h>

#include <vector>

#include "os/kernel.h"
#include "os/process.h"

namespace memif::runtime {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    FastMemoryManager mgr;

    explicit Fixture(std::uint64_t budget = 3ull << 20)
        : proc(kernel.create_process()), mgr(kernel, proc, budget)
    {
    }

    vm::VAddr
    make_region(std::uint64_t bytes, std::uint8_t seed)
    {
        const vm::VAddr va = proc.mmap(bytes, vm::PageSize::k4K);
        EXPECT_NE(va, 0u);
        std::vector<std::uint8_t> data(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            data[i] = static_cast<std::uint8_t>(seed + i * 3);
        proc.as().write(va, data.data(), bytes);
        return va;
    }

    bool
    on_node(vm::VAddr va, mem::NodeId node)
    {
        const vm::Vma *vma = proc.as().find_vma(va);
        const std::uint64_t idx = vma->page_index(va);
        return kernel.phys().node_of(vma->pte(idx).pfn) == node;
    }

    bool
    data_ok(vm::VAddr va, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> data(bytes);
        if (!proc.as().read(va, data.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (data[i] != static_cast<std::uint8_t>(seed + i * 3))
                return false;
        return true;
    }

    bool
    resident_ok(vm::VAddr va, std::uint64_t bytes)
    {
        bool ok = false;
        auto t = mgr.make_resident(va, bytes, &ok);
        kernel.run();
        return ok;
    }
};

TEST(FastMemory, AdmissionMigratesToFastNode)
{
    Fixture f;
    const vm::VAddr a = f.make_region(1 << 20, 1);
    EXPECT_TRUE(f.resident_ok(a, 1 << 20));
    EXPECT_TRUE(f.mgr.is_resident(a));
    EXPECT_TRUE(f.on_node(a, f.kernel.fast_node()));
    EXPECT_TRUE(f.data_ok(a, 1 << 20, 1));
    EXPECT_EQ(f.mgr.resident_bytes(), 1u << 20);
    EXPECT_EQ(f.mgr.stats().admissions, 1u);
}

TEST(FastMemory, SecondRequestIsAHit)
{
    Fixture f;
    const vm::VAddr a = f.make_region(1 << 20, 2);
    EXPECT_TRUE(f.resident_ok(a, 1 << 20));
    EXPECT_TRUE(f.resident_ok(a, 1 << 20));
    EXPECT_EQ(f.mgr.stats().hits, 1u);
    EXPECT_EQ(f.mgr.stats().admissions, 1u);
}

TEST(FastMemory, LruEvictionUnderPressure)
{
    Fixture f(3ull << 20);  // room for three 1 MB regions
    const vm::VAddr a = f.make_region(1 << 20, 10);
    const vm::VAddr b = f.make_region(1 << 20, 20);
    const vm::VAddr c = f.make_region(1 << 20, 30);
    const vm::VAddr d = f.make_region(1 << 20, 40);

    EXPECT_TRUE(f.resident_ok(a, 1 << 20));
    EXPECT_TRUE(f.resident_ok(b, 1 << 20));
    EXPECT_TRUE(f.resident_ok(c, 1 << 20));
    // Touch a so b becomes LRU.
    f.mgr.touch_region(a);
    EXPECT_TRUE(f.resident_ok(d, 1 << 20));

    EXPECT_TRUE(f.mgr.is_resident(a));
    EXPECT_FALSE(f.mgr.is_resident(b));  // evicted
    EXPECT_TRUE(f.mgr.is_resident(c));
    EXPECT_TRUE(f.mgr.is_resident(d));
    EXPECT_TRUE(f.on_node(b, f.kernel.slow_node()));
    EXPECT_TRUE(f.on_node(d, f.kernel.fast_node()));
    // The evicted region's data survived the round trip.
    EXPECT_TRUE(f.data_ok(b, 1 << 20, 20));
    EXPECT_EQ(f.mgr.stats().evictions, 1u);
    EXPECT_LE(f.mgr.resident_bytes(), f.mgr.budget());
}

TEST(FastMemory, ExplicitEvictReturnsRegionToSlow)
{
    Fixture f;
    const vm::VAddr a = f.make_region(1 << 20, 5);
    EXPECT_TRUE(f.resident_ok(a, 1 << 20));
    bool ok = false;
    auto t = f.mgr.evict(a, &ok);
    f.kernel.run();
    EXPECT_TRUE(ok);
    EXPECT_FALSE(f.mgr.is_resident(a));
    EXPECT_TRUE(f.on_node(a, f.kernel.slow_node()));
    EXPECT_TRUE(f.data_ok(a, 1 << 20, 5));
    EXPECT_EQ(f.mgr.resident_bytes(), 0u);
}

TEST(FastMemory, EvictOfNonResidentFails)
{
    Fixture f;
    bool ok = true;
    auto t = f.mgr.evict(0x123000, &ok);
    f.kernel.run();
    EXPECT_FALSE(ok);
}

TEST(FastMemory, OverBudgetRequestFails)
{
    Fixture f(1ull << 20);
    const vm::VAddr a = f.make_region(2 << 20, 9);
    EXPECT_FALSE(f.resident_ok(a, 2 << 20));
    EXPECT_EQ(f.mgr.stats().failures, 1u);
    EXPECT_TRUE(f.on_node(a, f.kernel.slow_node()));
}

TEST(FastMemory, UnmappedRegionFails)
{
    Fixture f;
    EXPECT_FALSE(f.resident_ok(0xDEAD000, 1 << 20));
}

TEST(FastMemory, LargeRegionSplitsAcrossRequests)
{
    // 3 MB = 768 pages > the 512-descriptor PaRAM: the manager must
    // split the migration into multiple mov_reqs.
    Fixture f(4ull << 20);
    const vm::VAddr a = f.make_region(3ull << 20, 60);
    EXPECT_TRUE(f.resident_ok(a, 3ull << 20));
    EXPECT_TRUE(f.on_node(a, f.kernel.fast_node()));
    EXPECT_TRUE(f.on_node(a + (3ull << 20) - 4096, f.kernel.fast_node()));
    EXPECT_TRUE(f.data_ok(a, 3ull << 20, 60));
}

TEST(FastMemory, ChurnKeepsDataAndBudgetConsistent)
{
    Fixture f(2ull << 20);
    std::vector<vm::VAddr> regions;
    for (std::uint8_t i = 0; i < 6; ++i)
        regions.push_back(
            f.make_region(1 << 20, static_cast<std::uint8_t>(i * 7 + 1)));

    for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < regions.size(); ++i) {
            EXPECT_TRUE(f.resident_ok(regions[i], 1 << 20));
            EXPECT_LE(f.mgr.resident_bytes(), f.mgr.budget());
        }
    }
    for (std::size_t i = 0; i < regions.size(); ++i)
        EXPECT_TRUE(f.data_ok(regions[i], 1 << 20,
                              static_cast<std::uint8_t>(i * 7 + 1)));
    // With a 2-region budget over 6 regions, there were many evictions.
    EXPECT_GE(f.mgr.stats().evictions, 10u);
}

}  // namespace
}  // namespace memif::runtime
