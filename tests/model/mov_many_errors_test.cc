/**
 * @file
 * memif_mov_many() error paths through the paper-verbatim C API: a
 * partial allocation failure mid-batch, a DMA fault that exhausts its
 * retries on one request of a batch, and rollback visibility — in each
 * case the reference model must agree on which requests completed and
 * on every byte of user-visible memory afterwards.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "check/reference_model.h"
#include "check/workload.h"
#include "dma/engine.h"
#include "memif/memif.h"
#include "os/kernel.h"
#include "os/process.h"

namespace memif::check {
namespace {

using core::kNoRequest;
using core::MemifConfig;
using core::mov_req;
using core::MovError;
using core::MovOp;
using core::MovStatus;
using core::RacePolicy;

constexpr std::uint32_t kPages = 40;
constexpr std::uint8_t kPattern = 31;
constexpr std::uint64_t kPb = 4096;

/**
 * The shared batch shape: six 4-page migrations over pages [0, 24)
 * followed by one replication of pages [24, 28) into [28, 32). The
 * workload mirror lets the reference model pronounce on outcomes and
 * final bytes.
 */
Workload
batch_workload()
{
    Workload w;
    w.seed = 0;  // handcrafted
    w.regions = {RegionSpec{kPages, vm::PageSize::k4K, kPattern}};
    WorkloadOp batch;
    batch.kind = OpKind::kMovMany;
    for (std::uint32_t i = 0; i < 6; ++i)
        batch.movs.push_back(MovSpec{MovOp::kMigrate, 0, i * 4, 4, 0, 0,
                                     true, false, Malform::kNone});
    batch.movs.push_back(MovSpec{MovOp::kReplicate, 0, 24, 4, 0, 28,
                                 false, false, Malform::kNone});
    w.ops = {batch, WorkloadOp{}};
    return w;
}

struct BatchRun {
    os::Kernel kernel;
    os::Process &proc;
    core::MemifDevice dev;
    vm::VAddr base = 0;
    std::uint64_t baseline = 0;
    /** Terminal (status, error) by batch position. */
    std::vector<std::pair<MovStatus, MovError>> outcomes;

    explicit BatchRun(MemifConfig cfg = {})
        : proc(kernel.create_process()), dev(kernel, proc, cfg)
    {
        base = proc.mmap(kPages * kPb, vm::PageSize::k4K);
        EXPECT_NE(base, 0u);
        std::vector<std::uint8_t> buf(kPages * kPb);
        for (std::uint64_t i = 0; i < buf.size(); ++i)
            buf[i] = pat_byte(kPattern, i);
        EXPECT_TRUE(proc.as().write(base, buf.data(), buf.size()));
        core::RegisterDeviceFile("/dev/memif0", dev);
        baseline = kernel.phys().outstanding_pages();
    }

    ~BatchRun() { core::ResetDeviceFiles(); }

    /** Submit the batch_workload() batch via memif_mov_many and drain. */
    void
    run(const Workload &w)
    {
        const std::vector<MovSpec> &movs = w.ops[0].movs;
        outcomes.assign(movs.size(), {MovStatus::kFree, MovError::kNone});
        auto app = [&]() -> sim::Task {
            const int fd = core::MemifOpen("/dev/memif0");
            EXPECT_GE(fd, 0);
            std::vector<mov_req *> reqs;
            for (std::size_t i = 0; i < movs.size(); ++i) {
                mov_req *req = core::AllocRequest(fd);
                EXPECT_NE(req, nullptr);
                const MovSpec &m = movs[i];
                req->op = m.op;
                req->src_base = base + m.src_page * kPb;
                req->num_pages = m.num_pages;
                if (m.op == MovOp::kMigrate)
                    req->dst_node = kernel.fast_node();
                else
                    req->dst_base = base + m.dst_page * kPb;
                req->user_tag = i;
                reqs.push_back(req);
            }
            int rc = -1;
            co_await core::memif_mov_many(fd, reqs.data(), reqs.size(),
                                          &rc);
            EXPECT_EQ(rc, core::kOk);
            std::size_t completed = 0;
            while (completed < movs.size()) {
                mov_req *req = core::RetrieveCompleted(fd);
                if (!req) {
                    co_await core::Poll(fd);
                    continue;
                }
                EXPECT_LT(req->user_tag, outcomes.size());
                if (req->user_tag < outcomes.size())
                    outcomes[req->user_tag] = {req->load_status(),
                                               req->error};
                core::FreeRequest(fd, req);
                ++completed;
            }
            EXPECT_EQ(core::MemifClose(fd), core::kOk);
        };
        auto task = app();
        kernel.run();
        ASSERT_TRUE(task.done());
        task.rethrow_if_failed();
    }

    /** Every driver invariant that must hold after the batch drained. */
    void
    expect_quiesced()
    {
        EXPECT_TRUE(dev.idle());
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << why;
        EXPECT_EQ(kernel.phys().outstanding_pages(),
                  baseline + dev.magazine_pages());
    }

    /** Byte-compare the region against the reference model's verdict. */
    void
    expect_memory_matches(const ReferenceModel &model)
    {
        std::vector<std::uint8_t> buf(kPages * kPb);
        ASSERT_TRUE(proc.as().read(base, buf.data(), buf.size()));
        const std::vector<std::uint8_t> &want = model.memory(0);
        ASSERT_EQ(buf.size(), want.size());
        for (std::size_t i = 0; i < buf.size(); ++i)
            ASSERT_EQ(buf[i], want[i]) << "byte " << i;
    }
};

TEST(MovManyErrors, PartialAllocFailureMidBatch)
{
    const Workload w = batch_workload();
    BatchRun run;
    // The 10th destination-page allocation fails: that is page 2 of
    // the third migration (batch position 2). Everything else in the
    // batch must complete untouched by its neighbour's failure.
    run.kernel.faults().arm_nth(core::kFaultAllocFail, 10);
    run.run(w);

    ReferenceModel model(w);
    const OutcomeContext ctx{RacePolicy::kDetect, false, true};
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
        const auto [st, err] = run.outcomes[i];
        std::string why;
        EXPECT_TRUE(model.outcome_allowed(i, st, err, ctx, &why)) << why;
        model.commit(i, st);
        if (i == 2) {
            EXPECT_EQ(st, MovStatus::kFailed) << "batch position " << i;
            EXPECT_EQ(err, MovError::kNoMemory);
        } else {
            EXPECT_EQ(st, MovStatus::kDone) << "batch position " << i;
        }
    }
    // Rollback visibility: the failed migration's pages kept their
    // old frames and bytes; the replication landed; accounting and the
    // flight table are clean.
    run.expect_memory_matches(model);
    run.expect_quiesced();
}

/**
 * DMA-fault variant of the batch: the replication leads and the six
 * migrations follow, so the victim (the last migration) is the final
 * chain the batch starts. Chain-start occurrence N is then request
 * N-1's first attempt, and every occurrence after the batch's 7 chain
 * starts belongs to the victim's retries — the only deterministic way
 * to pin the tc_error fault to one request's whole retry ladder.
 */
Workload
dma_fault_workload()
{
    Workload w = batch_workload();
    std::vector<MovSpec> &movs = w.ops[0].movs;
    std::rotate(movs.begin(), movs.end() - 1, movs.end());
    return w;
}

TEST(MovManyErrors, DmaFaultOnLastRequestExhaustsRetriesAndRollsBack)
{
    const Workload w = dma_fault_workload();
    MemifConfig cfg;
    cfg.cpu_copy_fallback = false;  // let the DMA error reach the app
    BatchRun run(cfg);
    // Fail the victim's first chain (the batch's 7th start) and all
    // three of its retries; the rest of the batch rides on untouched
    // hardware.
    run.kernel.faults().arm_nth(dma::kFaultTcError, 7,
                                1 + cfg.dma_max_retries);
    run.run(w);

    ReferenceModel model(w);
    const OutcomeContext ctx{RacePolicy::kDetect, true, false};
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
        const auto [st, err] = run.outcomes[i];
        std::string why;
        EXPECT_TRUE(model.outcome_allowed(i, st, err, ctx, &why)) << why;
        model.commit(i, st);
        if (i == 6) {
            EXPECT_EQ(st, MovStatus::kFailed) << "batch position " << i;
            EXPECT_EQ(err, MovError::kDmaError);
        } else {
            EXPECT_EQ(st, MovStatus::kDone) << "batch position " << i;
        }
    }
    // Rollback visibility: the failed migration restored its old PTEs
    // and frames, so its pages read back their original bytes.
    run.expect_memory_matches(model);
    run.expect_quiesced();
}

TEST(MovManyErrors, MalformedEntryMidBatchFailsAloneAndInPlace)
{
    Workload w = batch_workload();
    // Corrupt batch position 3 into a zero-page request.
    w.ops[0].movs[3].num_pages = 0;
    w.ops[0].movs[3].malform = Malform::kZeroPages;
    BatchRun run;
    // The runner derives num_pages straight from the spec; a 0 simply
    // goes through validation and fails there.
    run.run(w);

    ReferenceModel model(w);
    const OutcomeContext ctx{RacePolicy::kDetect, false, true};
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
        const auto [st, err] = run.outcomes[i];
        std::string why;
        EXPECT_TRUE(model.outcome_allowed(i, st, err, ctx, &why)) << why;
        model.commit(i, st);
        if (i == 3) {
            EXPECT_EQ(st, MovStatus::kFailed);
            EXPECT_EQ(err, MovError::kBadRequest);
        } else {
            EXPECT_EQ(st, MovStatus::kDone);
        }
    }
    run.expect_memory_matches(model);
    run.expect_quiesced();
}

TEST(MovManyErrors, CpuCopyFallbackAbsorbsTheSameDmaFault)
{
    const Workload w = dma_fault_workload();
    BatchRun run;  // default config: fallback on
    run.kernel.faults().arm_nth(dma::kFaultTcError, 7, 4);
    run.run(w);

    ReferenceModel model(w);
    const OutcomeContext ctx{RacePolicy::kDetect, true, true};
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
        const auto [st, err] = run.outcomes[i];
        std::string why;
        EXPECT_TRUE(model.outcome_allowed(i, st, err, ctx, &why)) << why;
        EXPECT_EQ(st, MovStatus::kDone)
            << "batch position " << i << " err " << error_name(err);
        model.commit(i, st);
    }
    run.expect_memory_matches(model);
    run.expect_quiesced();
}

}  // namespace
}  // namespace memif::check
