/**
 * @file
 * The §6.6 mini runtime: fast memory as an array of prefetch buffers,
 * outstanding memif replications managed like asynchronous I/O.
 *
 * Behaviour, straight from the paper:
 *  - at start, every buffer is filled by replicating from slow memory
 *    asynchronously;
 *  - once a buffer is ready, the workload's compute function consumes
 *    it with all available cores;
 *  - immediately after a buffer is consumed, a fill for fresh data is
 *    requested;
 *  - if all prefetched data are consumed while moves are still in
 *    flight, the compute function consumes the next chunk directly
 *    from slow memory.
 *
 * run_direct() is the Table 4 "Linux" configuration: the same kernel
 * consuming the stream in place in slow memory, no memif.
 *
 * The runtime is ~simple by design; the paper built it in ~400 SLoC to
 * show memif is "practical and easy to use".
 */
#pragma once

#include <cstdint>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "runtime/stream_kernel.h"
#include "sim/task.h"
#include "vm/vma.h"

namespace memif::runtime {

/** Prefetch-buffer geometry. */
struct RuntimeConfig {
    /** Number of fast-memory buffers ("array of prefetch buffers"). */
    std::uint32_t num_buffers = 4;
    /** Bytes per buffer (must fit num_buffers x this in fast memory). */
    std::uint64_t buffer_bytes = 1u << 20;
    /** Page granularity of the stream source and the buffers. */
    vm::PageSize page_size = vm::PageSize::k4K;
};

/** Result of one streaming run. */
struct StreamRunResult {
    std::uint64_t bytes_consumed = 0;
    sim::Duration elapsed = 0;
    std::uint64_t chunks_from_fast = 0;  ///< consumed out of buffers
    std::uint64_t chunks_from_slow = 0;  ///< fallback path
    std::uint64_t result_digest = 0;     ///< kernel's data digest

    double
    throughput_mb_per_sec() const
    {
        if (elapsed == 0) return 0.0;
        return static_cast<double>(bytes_consumed) /
               (1e6 * sim::to_sec(elapsed));
    }
};

class StreamingRuntime {
  public:
    /**
     * @param device an opened memif instance of @p proc
     * Allocates the prefetch buffers in fast memory immediately.
     */
    StreamingRuntime(os::Kernel &kernel, os::Process &proc,
                     core::MemifDevice &device, RuntimeConfig config = {});
    StreamingRuntime(const StreamingRuntime &) = delete;
    StreamingRuntime &operator=(const StreamingRuntime &) = delete;

    const RuntimeConfig &config() const { return config_; }

    /**
     * Stream @p total_bytes starting at @p src (a slow-memory region of
     * the configured page size) through the prefetch buffers into
     * @p kernel. Coroutine; completes when the whole stream is consumed.
     */
    sim::Task run(vm::VAddr src, std::uint64_t total_bytes,
                  StreamKernel &kernel, StreamRunResult *out);

    /**
     * The no-memif baseline: consume the stream in place, in slow
     * memory (Table 4 "Linux" row).
     */
    sim::Task run_direct(vm::VAddr src, std::uint64_t total_bytes,
                         StreamKernel &kernel, StreamRunResult *out);

  private:
    struct Buffer {
        vm::VAddr base = 0;
        std::uint32_t req = core::kNoRequest;  ///< outstanding fill
        std::uint64_t chunk_offset = 0;        ///< stream offset it fills
        bool ready = false;
    };

    /** Submit an async fill of @p buf from stream offset @p offset. */
    sim::Task submit_fill(Buffer &buf, vm::VAddr src, std::uint64_t offset,
                          std::uint64_t bytes);

    os::Kernel &kernel_;
    os::Process &proc_;
    core::MemifDevice &device_;
    core::MemifUser user_;
    RuntimeConfig config_;
    std::vector<Buffer> buffers_;
};

}  // namespace memif::runtime
