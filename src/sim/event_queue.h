/**
 * @file
 * The discrete-event core: a virtual clock plus a priority queue of
 * timestamped callbacks.
 *
 * Ordering guarantee: events scheduled for the same instant fire in
 * FIFO order by default — each event carries a monotonically increasing
 * sequence number assigned at schedule time, and the dispatch order is
 * (timestamp, sequence). The tie-break is total and stable, so two runs
 * of the same program are event-for-event identical; nothing about the
 * dispatch order depends on heap internals, iteration order, or host
 * addresses. Code may rely on it: an event scheduled before another at
 * the same timestamp runs first.
 *
 * The schedule fuzzer (src/check) deliberately perturbs exactly — and
 * only — this tie-break: set_tie_break_seed() makes same-timestamp
 * events dispatch in a seeded pseudo-random order instead of FIFO.
 * Cross-timestamp ordering is never affected, and a given seed always
 * produces the same permutation, so any interleaving found by the
 * fuzzer replays deterministically from its seed.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/random.h"
#include "sim/types.h"

namespace memif::sim {

/**
 * A deterministic discrete-event queue with a virtual clock.
 *
 * The queue is single-threaded by design: all simulated concurrency
 * (kernel threads, interrupt handlers, DMA completions) is expressed as
 * interleaved events on one host thread.
 */
class EventQueue {
  public:
    using Callback = std::function<void()>;
    /** Handle for cancelling a scheduled event. */
    using EventId = std::uint64_t;
    static constexpr EventId kInvalidEvent = ~EventId{0};

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Schedule @p cb to run at absolute virtual time @p when.
     *  @return an id usable with cancel(). */
    EventId schedule_at(SimTime when, Callback cb);

    /** Schedule @p cb to run @p delay after the current time. */
    EventId schedule_after(Duration delay, Callback cb);

    /**
     * Cancel a scheduled event. A cancelled event neither runs nor
     * advances the virtual clock — as if it were never scheduled
     * (watchdog timers disarm without stretching the simulation).
     * @return false if the event already ran, was already cancelled,
     * or never existed.
     */
    bool cancel(EventId id);

    /** True when no live (uncancelled) events remain. */
    bool empty() const { return live_.empty(); }

    /** Number of pending live events. */
    std::size_t pending() const { return live_.size(); }

    /**
     * Run the single earliest event, advancing the clock to its timestamp.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run events until the queue drains.
     * @return the number of events executed.
     */
    std::uint64_t run();

    /**
     * Run events with timestamps <= @p deadline; the clock ends at
     * min(deadline, time of last event) and never goes backwards.
     * @return the number of events executed.
     */
    std::uint64_t run_until(SimTime deadline);

    /** Total events executed since construction. */
    std::uint64_t events_executed() const { return executed_; }

    /**
     * Schedule-fuzzer hook: dispatch same-timestamp events in a seeded
     * pseudo-random order instead of FIFO. Each event scheduled from
     * now on draws a random tie-break key from a stream seeded with
     * @p seed (sequence number remains the final tie-break, so the
     * order stays total and a seed always reproduces the same
     * permutation). Events already in the queue keep their FIFO keys.
     * Cross-timestamp ordering is unaffected.
     */
    void
    set_tie_break_seed(std::uint64_t seed)
    {
        fuzzing_ = true;
        tie_rng_ = Rng(seed);
    }

    /** Restore the default FIFO tie-break for newly scheduled events. */
    void
    clear_tie_break()
    {
        fuzzing_ = false;
    }

    /** True while the fuzzer tie-break is active. */
    bool tie_break_fuzzed() const { return fuzzing_; }

  private:
    struct Event {
        SimTime when;
        /** Tie-break among same-timestamp events: == seq (FIFO) by
         *  default, a seeded random draw under the schedule fuzzer. */
        std::uint64_t key;
        std::uint64_t seq;
        Callback cb;
    };

    /** Pop cancelled events off the top without advancing the clock. */
    void skip_cancelled();
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when) return a.when > b.when;
            if (a.key != b.key) return a.key > b.key;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    /** Scheduled-but-not-run event ids (excludes cancelled ones). */
    std::unordered_set<EventId> live_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    bool fuzzing_ = false;
    Rng tie_rng_;
};

}  // namespace memif::sim
