/**
 * @file
 * Managed mode (auto_migrate lever): the heat-sampling scan kthread
 * and the migration daemon.
 *
 * The scan kthread wakes every heat_scan_interval, walks the PTEs of
 * every region registered through manage_region() with the same atomic
 * test-and-rearm path the CPU-access emulation uses (never resolving a
 * fault, never blocking on a migration PTE), and folds the young/dirty
 * observations into per-bucket heat state (heat_policy.h). The daemon
 * kthread turns policy verdicts into ordinary device-originated
 * migration requests: demotions first (freeing fast-node frames for
 * the promotions that follow), bounded per epoch by
 * migrate_pages_per_epoch and backed off whenever the engine backlog
 * reaches daemon_backlog_limit, so background placement can never
 * starve application traffic — daemon movs also compete through the
 * WRR at their own weight rather than jumping the queue.
 *
 * Failure handling is strictly absorb-and-cool-down: a daemon mov that
 * comes back failed (allocation exhaustion, DMA error past the
 * recovery ladder, kBusy collision with an app request) is dropped and
 * its bucket sits out kDaemonFailCooldown epochs. Nothing is ever
 * retried on — or diverted to — the fault path.
 */
#include "memif/device.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "sim/cost_model.h"
#include "sim/log.h"
#include "vm/addr_space.h"
#include "vm/pte.h"

namespace memif::core {

using sim::ExecContext;
using sim::Op;

namespace {

/** Epochs a bucket sits out after its daemon mov failed (or the fast
 *  node could not fit its promotion). */
constexpr std::uint32_t kDaemonFailCooldown = 8;

}  // namespace

HeatConfig
MemifDevice::heat_config() const
{
    HeatConfig hc;
    hc.policy = config_.migrate_policy;
    hc.bucket_pages = std::max<std::uint32_t>(config_.heat_bucket_pages, 1);
    hc.aging_promote_threshold = config_.heat_promote_threshold;
    hc.aging_demote_threshold = config_.heat_demote_threshold;
    hc.ewma_alpha = config_.heat_ewma_alpha;
    hc.ewma_hot_enter = config_.heat_hot_enter;
    hc.ewma_cold_exit = config_.heat_cold_exit;
    hc.aging_cold_enter = config_.heat_cold_threshold;
    hc.aging_cold_exit = config_.heat_warm_threshold;
    hc.ewma_far_enter = config_.heat_far_enter;
    hc.ewma_far_exit = config_.heat_far_exit;
    return hc;
}

bool
MemifDevice::daemon_tiered() const
{
    return config_.tiered_memory && kernel_.has_far_node();
}

bool
MemifDevice::manage_region(vm::VAddr base, std::uint32_t asid)
{
    if (!config_.auto_migrate) return false;
    os::Process *proc = &proc_;
    if (config_.multi_tenant) {
        Tenant *t = tenant_for(asid);
        if (!t) return false;
        proc = t->proc;
    } else if (asid != 0) {
        return false;
    }
    vm::AddressSpace &as = proc->as();
    vm::Vma *vma = as.find_vma(base);
    if (!vma) return false;
    for (const auto &mr : managed_)
        if (mr->vma == vma) return true;  // already managed
    managed_.push_back(std::make_unique<ManagedRegion>(heat_config(), asid,
                                                       &as, vma));
    // Arm every page up front: a fresh PTE carries young == 0, which
    // the first scan would read as "the whole region was just
    // accessed" and promote-storm cold pages into the fast node.
    // Arming means the scanner only ever sees heat an actual touch
    // produced.
    for (std::uint64_t p = 0; p < vma->num_pages(); ++p)
        as.heat_sample(*vma, p);
    wake_scanner();
    return true;
}

void
MemifDevice::unmanage_region(vm::VAddr base, std::uint32_t asid)
{
    // In-flight daemon movs for the region complete normally; their
    // terminal handling tolerates the missing record and just recycles
    // the slot.
    std::erase_if(managed_, [&](const std::unique_ptr<ManagedRegion> &mr) {
        return mr->asid == asid && mr->vma->base() == base;
    });
}

std::uint64_t
MemifDevice::heat_ping_pongs() const
{
    std::uint64_t total = 0;
    for (const auto &mr : managed_) total += mr->heat.ping_pongs();
    return total;
}

void
MemifDevice::print_heat_histogram(std::FILE *out) const
{
    for (std::size_t r = 0; r < managed_.size(); ++r) {
        const ManagedRegion &mr = *managed_[r];
        const std::vector<std::uint64_t> h = mr.heat.histogram();
        std::fprintf(out,
                     "  heat region %zu (asid %u, %llu buckets):",
                     r, mr.asid,
                     static_cast<unsigned long long>(
                         mr.heat.num_buckets()));
        for (const std::uint64_t n : h)
            std::fprintf(out, " %llu", static_cast<unsigned long long>(n));
        if (daemon_tiered()) {
            // Per-tier residency: where the region's buckets actually
            // live right now (placement, not heat — the pair together
            // shows whether the daemon has caught up with the policy).
            std::uint64_t per[3] = {0, 0, 0};
            for (std::uint64_t b = 0; b < mr.heat.num_buckets(); ++b)
                ++per[static_cast<std::size_t>(bucket_tier(mr, b))];
            std::fprintf(out, " | tiers fast=%llu slow=%llu far=%llu",
                         static_cast<unsigned long long>(per[0]),
                         static_cast<unsigned long long>(per[1]),
                         static_cast<unsigned long long>(per[2]));
        }
        std::fprintf(out, "\n");
    }
}

void
MemifDevice::wake_scanner()
{
    if (!config_.auto_migrate || !scan_parked_ || managed_.empty()) return;
    scan_wq_.notify_one();
}

bool
MemifDevice::page_run_in_flight(const vm::Vma *vma, std::uint64_t first,
                                std::uint64_t n, bool daemon_only)
{
    const std::uint64_t hi = first + n;
    auto overlaps = [&](const InFlightPtr &fl) {
        // App-vs-app overlap keeps its pre-managed semantics (the
        // migration PTE check in Prep; replications may legitimately
        // share read-only source pages) — the gate only arbitrates
        // collisions that involve a daemon mov.
        if (daemon_only && !fl->daemon) return false;
        if (fl->vma == vma && fl->first_page < hi &&
            first < fl->first_page + fl->num_pages)
            return true;
        if (fl->op == MovOp::kReplicate && fl->dst_vma == vma) {
            const MovReq &req = region_.request(fl->req_idx);
            const std::uint64_t dpb =
                vm::page_bytes(fl->dst_vma->page_size());
            const std::uint64_t dfirst =
                fl->dst_vma->page_index(req.dst_base);
            // Strided flights write a pitched window, gaps included —
            // wider than their payload byte count.
            const std::uint64_t dspan =
                req.rows != 0
                    ? (std::uint64_t{req.rows} - 1) * req.dst_pitch +
                          req.row_bytes
                    : fl->total_bytes;
            const std::uint64_t dpages = (dspan + dpb - 1) / dpb;
            if (dfirst < hi && first < dfirst + dpages) return true;
        }
        return false;
    };
    for (const InFlightPtr &fl : in_flight_)
        if (overlaps(fl)) return true;
    for (const InFlightPtr &fl : pending_release_)
        if (overlaps(fl)) return true;
    return false;
}

bool
MemifDevice::bucket_resident_fast(const ManagedRegion &mr,
                                  std::uint64_t bucket) const
{
    // Residency is judged by the bucket's first page: the daemon moves
    // whole buckets, so pages of one bucket only straddle nodes
    // transiently (mid-migration, which the scanner skips anyway).
    const vm::Pte pte = mr.vma->pte(mr.heat.first_page(bucket));
    if (!pte.present) return false;
    return kernel_.phys().node_of(pte.pfn) == kernel_.fast_node();
}

HeatTier
MemifDevice::bucket_tier(const ManagedRegion &mr,
                         std::uint64_t bucket) const
{
    const vm::Pte pte = mr.vma->pte(mr.heat.first_page(bucket));
    if (!pte.present) return HeatTier::kSlow;
    const mem::NodeId n = kernel_.phys().node_of(pte.pfn);
    if (n == kernel_.fast_node()) return HeatTier::kFast;
    if (kernel_.has_far_node() && n == kernel_.far_node())
        return HeatTier::kFar;
    return HeatTier::kSlow;
}

sim::Duration
MemifDevice::scan_epoch(bool *any_accessed, bool *has_work,
                        bool *still_hot)
{
    const sim::CostModel &cm = kernel_.costs();
    sim::Duration cost = 0;
    ++stats_.heat_scans;
    for (const auto &mrp : managed_) {
        ManagedRegion &mr = *mrp;
        std::uint64_t region_rearmed = 0;
        for (std::uint64_t b = 0; b < mr.heat.num_buckets(); ++b) {
            if (mr.cooldown[b] > 0) --mr.cooldown[b];
            const std::uint64_t first = mr.heat.first_page(b);
            const std::uint32_t pages = mr.heat.pages_in(b);
            if (mr.busy[b] || page_run_in_flight(mr.vma, first, pages)) {
                // A bucket with a move in flight is the driver's, not
                // the scanner's. Decay must not stall: fold zeros.
                stats_.heat_pages_skipped += pages;
                mr.heat.fold(b, 0, 0, 0);
                continue;
            }
            if (mr.dormant[b] > 0) {
                // Settled: pages are unarmed (the app traps on none of
                // them) and the heat state is frozen until the probe.
                // A dormant hot bucket still keeps the scanner alive —
                // once the app goes idle its probe must run the decay
                // down to a demotion before the scanner may park.
                if (--mr.dormant[b] == 0) mr.probing[b] = true;
                if (mr.heat.bucket(b).hot) *still_hot = true;
                continue;
            }
            std::uint32_t accessed = 0, written = 0, sampled = 0;
            for (std::uint32_t i = 0; i < pages; ++i) {
                const vm::HeatSample s =
                    mr.as->heat_sample(*mr.vma, first + i);
                // Sequential PTE read (the walk stays in one leaf);
                // re-arming pays the CAS, and — unless the batched
                // shootdown lever folds them into one ranged
                // invalidation per region below — a per-page broadcast.
                cost += cm.page_walk_adjacent;
                if (s.rearmed) {
                    ++region_rearmed;
                    cost += cm.pte_cas;
                    if (!config_.batched_tlb_shootdown)
                        cost += cm.tlb_flush_page;
                }
                if (!s.sampled) continue;
                ++sampled;
                if (s.accessed) ++accessed;
                if (s.written) ++written;
            }
            if (mr.probing[b]) {
                // First pass after a sleep only re-armed the PTEs: the
                // young bits were left clear the whole sleep, so this
                // pass's "accessed" readings are artifacts of our own
                // disarming. Fold nothing; next epoch reads real heat.
                // A cold bucket also forgets its frozen partial heat:
                // the gap was unobserved, so stale age must not stack
                // with post-wake touches into a spurious promotion.
                mr.probing[b] = false;
                mr.heat.reset_cold(b);
                if (mr.heat.bucket(b).hot) *still_hot = true;
                continue;
            }
            mr.heat.fold(b, accessed, written, sampled);
            stats_.heat_pages_sampled += sampled;
            stats_.heat_pages_accessed += accessed;
            stats_.heat_pages_written += written;
            if (accessed > 0) *any_accessed = true;
            // A hot bucket that stops being touched is not settled:
            // decay is still heading for a demotion (or a deferred
            // promotion retry), so the scanner must keep running it
            // down rather than park with stale pages on the fast node.
            if (mr.heat.bucket(b).hot) *still_hot = true;
            if (mr.cooldown[b] > 0) continue;
            // Tiered mode asks the three-way classifier: a warm-band
            // bucket parked on the far tier (or a cold one on DDR) is
            // work the two-way verdict cannot see, and a parked scanner
            // would strand it there.
            const bool stay =
                daemon_tiered()
                    ? mr.heat.classify_tiered(b, bucket_tier(mr, b)) ==
                          TierVerdict::kStay
                    : mr.heat.classify(b, bucket_resident_fast(mr, b)) ==
                          HeatVerdict::kStay;
            if (!stay) *has_work = true;
            // Settling: epochs with no placement work extend the
            // streak; enough of them put the bucket to sleep, and each
            // matching probe afterwards doubles the sleep up to the
            // cap. A cold bucket settles even when the odd sweep grazes
            // it — arming a rarely-touched page only taxes the app with
            // access-flag traps for no verdict change — but a hot
            // bucket settles only while fully touched: once its
            // accesses thin out the decay must keep folding every epoch
            // so the demotion lands promptly.
            const bool matches =
                stay && (!mr.heat.bucket(b).hot ||
                         (sampled == pages && accessed == sampled));
            if (config_.heat_settle_epochs > 0 && matches) {
                ++mr.streak[b];
                if (mr.next_dorm[b] > 0 ||
                    mr.streak[b] >= config_.heat_settle_epochs) {
                    mr.next_dorm[b] = std::min(
                        std::max(mr.next_dorm[b] * 2,
                                 config_.heat_settle_epochs),
                        std::max<std::uint32_t>(config_.heat_dormant_cap,
                                                1));
                    mr.dormant[b] = mr.next_dorm[b];
                    mr.streak[b] = 0;
                }
            } else {
                mr.streak[b] = 0;
                mr.next_dorm[b] = 0;
            }
        }
        // One ranged invalidation covers every PTE the pass re-armed in
        // this region — the same batching the driver uses for migration
        // unmaps. Without it the scan pays a broadcast per touched page
        // and the epoch stretches to several times the configured
        // interval on large working sets.
        if (config_.batched_tlb_shootdown && region_rearmed > 0)
            cost += cm.tlb_flush_range_time(region_rearmed);
    }
    return cost;
}

sim::Task
MemifDevice::scan_loop()
{
    os::Kernel &k = kernel_;
    for (;;) {
        if (stopping_) co_return;
        if (managed_.empty() ||
            scan_quiet_epochs_ >= config_.scan_idle_park_epochs) {
            // Nothing is moving: park until device activity (an app
            // completion, a trap on a scanner-armed page, or a new
            // managed region) says the working set is live again.
            scan_parked_ = true;
            co_await scan_wq_.wait();
            scan_parked_ = false;
            scan_quiet_epochs_ = 0;
            continue;
        }
        co_await sim::Delay{k.eq(), config_.heat_scan_interval};
        if (stopping_) co_return;
        if (managed_.empty()) continue;
        bool any_accessed = false;
        bool has_work = false;
        bool still_hot = false;
        const sim::Duration cost =
            scan_epoch(&any_accessed, &has_work, &still_hot);
        co_await k.cpu().busy(ExecContext::kKthread, Op::kOther, cost);
        // Each epoch refreshes the daemon's page budget; unspent budget
        // does not roll over (the cap is a rate, not a credit line).
        daemon_budget_ = config_.migrate_pages_per_epoch;
        if (has_work && daemon_parked_) daemon_wq_.notify_one();
        if (std::getenv("MEMIF_DEBUG_MANAGED"))
            std::fprintf(stderr,
                         "scan now=%llu scans=%llu acc=%d work=%d hot=%d "
                         "out=%llu p=%llu/%llu d=%llu/%llu drop=%llu\n",
                         (unsigned long long)k.eq().now(),
                         (unsigned long long)stats_.heat_scans,
                         (int)any_accessed, (int)has_work, (int)still_hot,
                         (unsigned long long)daemon_outstanding_,
                         (unsigned long long)stats_.promotions_issued,
                         (unsigned long long)stats_.promotions_completed,
                         (unsigned long long)stats_.demotions_issued,
                         (unsigned long long)stats_.demotions_completed,
                         (unsigned long long)stats_.daemon_movs_dropped);
        if (!any_accessed && !has_work && !still_hot &&
            daemon_outstanding_ == 0)
            ++scan_quiet_epochs_;
        else
            scan_quiet_epochs_ = 0;
    }
}

sim::Task
MemifDevice::daemon_loop()
{
    os::Kernel &k = kernel_;
    const sim::CostModel &cm = k.costs();
    for (;;) {
        if (stopping_) co_return;
        daemon_parked_ = true;
        co_await daemon_wq_.wait();
        daemon_parked_ = false;
        if (stopping_) co_return;
        co_await k.cpu().busy(ExecContext::kKthread, Op::kSched,
                              cm.kthread_wakeup);
        daemon_issue_pass();
    }
}

void
MemifDevice::daemon_issue_pass()
{
    if (stopping_ || managed_.empty()) return;
    // Demotions first: they free the very fast-node frames the
    // promotions that follow want to land in.
    const HeatVerdict order[2] = {HeatVerdict::kDemote,
                                  HeatVerdict::kPromote};
    for (const HeatVerdict want : order) {
        for (const auto &mrp : managed_) {
            ManagedRegion &mr = *mrp;
            for (std::uint64_t b = 0; b < mr.heat.num_buckets(); ++b) {
                if (mr.busy[b] || mr.cooldown[b] > 0) continue;
                bool promote;
                mem::NodeId dst;
                if (daemon_tiered()) {
                    const HeatTier tier = bucket_tier(mr, b);
                    const TierVerdict v = mr.heat.classify_tiered(b, tier);
                    if (v == TierVerdict::kStay) continue;
                    dst = v == TierVerdict::kToFast ? kernel_.fast_node()
                          : v == TierVerdict::kToSlow
                              ? kernel_.slow_node()
                              : kernel_.far_node();
                    // Anything moving toward the CPU is a promotion —
                    // far→slow included: it allocates in the very space
                    // the demotion sweep just freed, so it must run in
                    // the second leg of the pass like every promotion.
                    promote = v == TierVerdict::kToFast ||
                              (v == TierVerdict::kToSlow &&
                               tier == HeatTier::kFar);
                } else {
                    const bool fast = bucket_resident_fast(mr, b);
                    if (mr.heat.classify(b, fast) != want) continue;
                    promote = want == HeatVerdict::kPromote;
                    dst = promote ? kernel_.fast_node()
                                  : kernel_.slow_node();
                }
                if ((want == HeatVerdict::kPromote) != promote) continue;
                const std::uint32_t pages = mr.heat.pages_in(b);
                if (daemon_budget_ < pages) {
                    ++stats_.daemon_budget_exhausted;
                    return;  // next epoch refills the budget
                }
                if (in_flight_.size() + daemon_tenant_.pending.size() >=
                    config_.daemon_backlog_limit) {
                    // Engine saturated with (mostly app) work: back
                    // off entirely; a completion wakes us again.
                    ++stats_.daemon_busy_backoffs;
                    return;
                }
                if (promote) {
                    const unsigned ord =
                        vm::page_order(mr.vma->page_size());
                    mem::MemoryNode &dstn = kernel_.phys().node(dst);
                    if (!dstn.buddy().can_allocate(ord, pages)) {
                        // No room: don't burn the recovery ladder on a
                        // mov that must fail — cool the bucket down and
                        // let demotions open space first.
                        ++stats_.promotions_skipped_full;
                        mr.cooldown[b] = kDaemonFailCooldown;
                        continue;
                    }
                }
                daemon_submit_bucket(mr, b, promote, dst);
            }
        }
    }
}

bool
MemifDevice::daemon_submit_bucket(ManagedRegion &mr, std::uint64_t bucket,
                                  bool promote, mem::NodeId dst)
{
    const sim::CostModel &cm = kernel_.costs();
    const lockfree::DequeueResult d = region_.free_queue().dequeue();
    if (!d.ok) return false;  // the app owns every request slot
    const std::uint32_t pages = mr.heat.pages_in(bucket);
    const HeatTier src_tier = bucket_tier(mr, bucket);
    MovReq &req = region_.request(d.value);
    req.store_status(MovStatus::kOwned);
    req.op = MovOp::kMigrate;
    req.src_base = mr.vma->page_vaddr(mr.heat.first_page(bucket));
    req.dst_base = 0;
    req.dst_node = dst;
    req.num_pages = pages;
    req.error = MovError::kNone;
    req.user_tag = 0;
    req.submit_cpu = 0;
    req.asid = mr.asid;  // translations resolve in the target's tables
    req.retry_after_us = 0;
    req.admitted = 0;    // never holds an app tenant's quota slot
    req.daemon = 1;
    req.submit_time = kernel_.eq().now();
    req.store_status(MovStatus::kSubmitted);
    region_.submission_queue().enqueue(d.value);
    kernel_.cpu().charge(ExecContext::kKthread, Op::kQueue,
                         cm.queue_op * 2);
    daemon_movs_[d.value] =
        DaemonMov{mr.vma, bucket, promote, pages,
                  kernel_.has_far_node() && dst == kernel_.far_node(),
                  src_tier == HeatTier::kFar};
    mr.busy[bucket] = true;
    ++daemon_outstanding_;
    daemon_budget_ -= pages;
    ++daemon_tenant_.stats.admitted;
    if (promote)
        ++stats_.promotions_issued;
    else
        ++stats_.demotions_issued;
    wake_kthread();
    return true;
}

void
MemifDevice::daemon_request_done(std::uint32_t idx, MovStatus status)
{
    auto it = daemon_movs_.find(idx);
    if (it == daemon_movs_.end()) {
        MEMIF_WARN("memif: daemon completion for unknown request %u", idx);
        return;
    }
    const DaemonMov dm = it->second;
    daemon_movs_.erase(it);
    MEMIF_ASSERT(daemon_outstanding_ > 0, "daemon outstanding underflow");
    --daemon_outstanding_;
    ++daemon_tenant_.stats.completed;

    // The region may have been unmanaged while the mov was in flight.
    ManagedRegion *mr = nullptr;
    for (const auto &p : managed_)
        if (p->vma == dm.vma) {
            mr = p.get();
            break;
        }
    if (status == MovStatus::kDone) {
        if (dm.promote)
            ++stats_.promotions_completed;
        else
            ++stats_.demotions_completed;
        if (dm.to_far) ++stats_.demotions_to_far;
        if (dm.from_far) ++stats_.promotions_from_far;
        daemon_tenant_.stats.pages_moved += dm.pages;
        if (mr) {
            daemon_tenant_.stats.bytes_moved +=
                std::uint64_t{dm.pages} *
                vm::page_bytes(mr->vma->page_size());
            // Re-arm the bucket right away: migration installs fresh
            // PTEs with young clear, which the next scan would misread
            // as an access — the just-moved bucket would re-heat, decay
            // and move again, forever. Arming now means only a real
            // touch can make it look accessed.
            const std::uint64_t first = mr->heat.first_page(dm.bucket);
            for (std::uint32_t i = 0; i < dm.pages; ++i)
                mr->as->heat_sample(*mr->vma, first + i);
        }
    } else {
        // Absorb the failure (whatever was left of the recovery ladder
        // already ran): drop the verdict and sit the bucket out. A
        // mid-move CPU touch (race, rollback, busy collision) is
        // transient — the sweep has moved past the bucket within an
        // epoch — while resource failures get the full cooldown so the
        // daemon cannot hammer an exhausted fast node.
        ++stats_.daemon_movs_dropped;
        const MovReq &failed = region_.request(idx);
        const bool transient = status == MovStatus::kRaceDetected ||
                               status == MovStatus::kAborted ||
                               failed.error == MovError::kBusy;
        if (std::getenv("MEMIF_DEBUG_MANAGED"))
            std::fprintf(stderr,
                         "daemon drop bucket=%llu status=%u error=%u "
                         "transient=%d\n",
                         (unsigned long long)dm.bucket, (unsigned)status,
                         (unsigned)failed.error, (int)transient);
        if (mr)
            mr->cooldown[dm.bucket] =
                transient ? 1 : kDaemonFailCooldown;
    }
    if (mr) mr->busy[dm.bucket] = false;

    // Recycle the slot straight back to the free queue — daemon movs
    // never surface on the completion queues.
    MovReq &req = region_.request(idx);
    req.daemon = 0;
    req.store_status(MovStatus::kFree);
    region_.free_queue().enqueue(idx);

    if (daemon_parked_) daemon_wq_.notify_one();
}

}  // namespace memif::core
