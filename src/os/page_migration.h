/**
 * @file
 * The Linux page-migration baseline (paper §2.2, Table 1 "Baseline"
 * column): the synchronous, CPU-copy, race-*preventing* migration path
 * that memif is evaluated against in Figures 6, 7 and 8.
 *
 * For every page the baseline:
 *   1. walks the page table from the root and touches the rmap   (Prep)
 *   2. allocates a destination page, installs a *migration PTE*
 *      that blocks any accessor, flushes the TLB entry, performs
 *      cache maintenance                                        (Remap)
 *   3. copies the bytes with the CPU                             (Copy)
 *   4. installs the final PTE, flushes the TLB entry again,
 *      frees the old page, wakes blocked accessors            (Release)
 *
 * The whole operation runs in the caller's process context inside one
 * syscall; completion is the syscall's return (requests batched into a
 * syscall all complete together — the latency behaviour Figure 7
 * demonstrates).
 */
#pragma once

#include <cstdint>

#include "mem/phys.h"
#include "os/process.h"
#include "sim/task.h"
#include "sim/types.h"
#include "vm/vma.h"

namespace memif::os {

/** Outcome of one migrate_pages()-style syscall. */
struct MigrationResult {
    std::uint64_t pages_requested = 0;
    std::uint64_t pages_moved = 0;
    /** Unmapped, already on target, or destination exhausted. */
    std::uint64_t pages_failed = 0;
    std::uint64_t bytes_moved = 0;
    /** Virtual time at which the syscall returned. */
    sim::SimTime completed_at = 0;
};

/**
 * Synchronously migrate @p npages pages (of the containing Vma's
 * granularity) starting at @p start to @p dst_node, Linux-style.
 *
 * Coroutine; runs in @p proc's context. Bytes really move and PTEs are
 * really rewritten, with all costs charged per the Table 1 baseline.
 */
sim::Task migrate_pages_sync(Process &proc, vm::VAddr start,
                             std::uint64_t npages, mem::NodeId dst_node,
                             MigrationResult *out);

/**
 * Lazy migration (Goglin & Furmento, paper §7's related work): mark
 * @p npages pages so each migrates to @p dst_node on its *first
 * access*. Cheap to request (PTE marking only); every deferred
 * migration pays the full baseline per-page cost at fault time —
 * exactly the critique the paper makes ("defer migration without
 * addressing the major inefficiency").
 *
 * Coroutine (one syscall); Process::touch() performs the deferred
 * per-page migration when the fault fires.
 */
sim::Task mbind_lazy(Process &proc, vm::VAddr start, std::uint64_t npages,
                     mem::NodeId dst_node, MigrationResult *out);

/**
 * The fault-side worker: migrate exactly the page containing @p va to
 * its lazy target and clear the marker. Used by Process::touch().
 */
sim::Task migrate_lazy_fault(Process &proc, vm::VAddr va);

}  // namespace memif::os
