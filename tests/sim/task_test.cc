/**
 * @file
 * Unit tests for coroutine Tasks: eager start, delays, joining, exception
 * propagation, and liveness-guarded cancellation.
 */
#include "sim/task.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"

namespace memif::sim {
namespace {

Task
record_after(EventQueue &eq, Duration d, std::vector<SimTime> &out)
{
    co_await Delay{eq, d};
    out.push_back(eq.now());
}

TEST(Task, RunsEagerlyUntilFirstSuspension)
{
    EventQueue eq;
    bool started = false;
    auto coro = [&](EventQueue &q) -> Task {
        started = true;
        co_await Delay{q, 10};
    };
    Task t = coro(eq);
    EXPECT_TRUE(started);
    EXPECT_FALSE(t.done());
    eq.run();
    EXPECT_TRUE(t.done());
}

TEST(Task, DelayAdvancesVirtualTime)
{
    EventQueue eq;
    std::vector<SimTime> times;
    Task t = record_after(eq, 1234, times);
    eq.run();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_EQ(times[0], 1234u);
}

TEST(Task, SequentialDelaysAccumulate)
{
    EventQueue eq;
    std::vector<SimTime> times;
    auto coro = [&]() -> Task {
        co_await Delay{eq, 100};
        times.push_back(eq.now());
        co_await Delay{eq, 200};
        times.push_back(eq.now());
    };
    Task t = coro();
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 100u);
    EXPECT_EQ(times[1], 300u);
}

TEST(Task, JoinResumesAwaiterAfterCompletion)
{
    EventQueue eq;
    std::vector<int> order;
    auto child = [&]() -> Task {
        co_await Delay{eq, 50};
        order.push_back(1);
    };
    std::optional<Task> child_task;
    auto parent = [&]() -> Task {
        child_task.emplace(child());
        co_await *child_task;
        order.push_back(2);
    };
    Task p = parent();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(p.done());
}

TEST(Task, JoinOfAlreadyDoneTaskIsImmediate)
{
    EventQueue eq;
    auto quick = [&]() -> Task { co_return; };
    Task c = quick();
    EXPECT_TRUE(c.done());
    bool joined = false;
    auto parent = [&]() -> Task {
        co_await c;
        joined = true;
    };
    Task p = parent();
    EXPECT_TRUE(joined);  // no suspension needed
    eq.run();
}

TEST(Task, ExceptionPropagatesToJoiner)
{
    EventQueue eq;
    auto thrower = [&]() -> Task {
        co_await Delay{eq, 10};
        throw std::runtime_error("boom");
    };
    Task c = thrower();
    bool caught = false;
    auto parent = [&]() -> Task {
        try {
            co_await c;
        } catch (const std::runtime_error &e) {
            caught = std::string(e.what()) == "boom";
        }
    };
    Task p = parent();
    eq.run();
    EXPECT_TRUE(caught);
}

TEST(Task, RethrowIfFailedSurfacesError)
{
    EventQueue eq;
    auto thrower = [&]() -> Task {
        co_await Delay{eq, 1};
        throw std::logic_error("bad");
    };
    Task t = thrower();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_THROW(t.rethrow_if_failed(), std::logic_error);
}

TEST(Task, DestroyedTaskDoesNotResumeFromPendingEvent)
{
    EventQueue eq;
    bool resumed = false;
    {
        auto coro = [&]() -> Task {
            co_await Delay{eq, 100};
            resumed = true;  // must never run
        };
        Task t = coro();
        EXPECT_FALSE(t.done());
        // t destroyed here while suspended; the queued resume must no-op.
    }
    eq.run();
    EXPECT_FALSE(resumed);
}

TEST(Task, YieldRunsOtherEventsFirst)
{
    EventQueue eq;
    std::vector<int> order;
    // The competing event is scheduled first; the task then starts
    // eagerly (pushes 1) and yields behind it in the same-time FIFO.
    eq.schedule_at(0, [&] { order.push_back(2); });
    auto coro = [&]() -> Task {
        order.push_back(1);
        co_await Yield{eq};
        order.push_back(3);
    };
    Task t = coro();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically)
{
    EventQueue eq;
    std::vector<SimTime> times;
    std::vector<Task> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.push_back(record_after(eq, static_cast<Duration>(16 - i), times));
    eq.run();
    ASSERT_EQ(times.size(), 16u);
    for (size_t i = 1; i < times.size(); ++i) EXPECT_LE(times[i - 1], times[i]);
    EXPECT_EQ(times.front(), 1u);
    EXPECT_EQ(times.back(), 16u);
}

TEST(Task, MoveTransfersOwnership)
{
    EventQueue eq;
    auto coro = [&]() -> Task { co_await Delay{eq, 5}; };
    Task a = coro();
    Task b = std::move(a);
    EXPECT_TRUE(a.empty());
    EXPECT_FALSE(b.empty());
    eq.run();
    EXPECT_TRUE(b.done());
}

}  // namespace
}  // namespace memif::sim
