#include "memif/device.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "sim/cost_model.h"
#include "sim/log.h"
#include "vm/addr_space.h"
#include "vm/pte.h"
#include "vm/walk_cost.h"

namespace memif::core {

using sim::ExecContext;
using sim::Op;
using sim::TracePoint;

namespace {

/** Cap on one coalesced run: a descriptor packs large transfers as
 *  4 KB x BCNT arrays and BCNT is 16-bit, so stay well below the
 *  0xFFFF * 4 KB ceiling (and keep runs page-aligned multiples). */
constexpr std::uint64_t kMaxCoalescedRunBytes = 64ull << 20;

/** Merge adjacent SG entries whose src AND dst runs are contiguous. */
std::vector<dma::SgEntry>
coalesce_sg(const std::vector<dma::SgEntry> &sg)
{
    std::vector<dma::SgEntry> out;
    out.reserve(sg.size());
    for (const dma::SgEntry &e : sg) {
        if (!out.empty()) {
            dma::SgEntry &last = out.back();
            // Only flat entries merge: a 2D entry's extent is pitched,
            // so byte-contiguity of its endpoints says nothing about
            // the next run, and folding one away would lose geometry.
            if (!last.strided() && !e.strided() &&
                last.src_addr + last.bytes == e.src_addr &&
                last.dst_addr + last.bytes == e.dst_addr &&
                last.bytes + e.bytes <= kMaxCoalescedRunBytes) {
                last.bytes += e.bytes;
                continue;
            }
        }
        out.push_back(e);
    }
    return out;
}

}  // namespace

MemifDevice::MemifDevice(os::Kernel &kernel, os::Process &proc,
                         MemifConfig config)
    : kernel_(kernel),
      proc_(proc),
      config_(config),
      tc_(kernel.assign_transfer_controller()),
      region_(config.capacity,
              config.percpu_rings
                  ? std::min(config.num_submit_cpus, kMaxSubmitRings)
                  : 0),
      completion_ctl_(kernel.costs(), config.poll_threshold_bytes,
                      config.ewma_alpha),
      completion_event_(kernel.eq()),
      kthread_wq_(kernel.eq()),
      scan_wq_(kernel.eq()),
      daemon_wq_(kernel.eq()),
      staging_wq_(kernel.eq())
{
    if (config_.irq_moderation &&
        (config_.moderation_batch || config_.moderation_holdoff))
        kernel_.dma().configure_moderation(config_.moderation_batch,
                                           config_.moderation_holdoff);
    // The young-fault hook serves two masters: kRecover's rollback
    // machinery, and (managed mode) the scanner's activity signal — a
    // trap on a scanner-armed page means the working set moved, so a
    // parked scanner must wake. handle_young_fault routes both.
    if (config_.race_policy == RacePolicy::kRecover ||
        config_.auto_migrate) {
        proc_.as().set_young_fault_hook(
            [this](vm::Vma &vma, std::uint64_t idx) {
                return handle_young_fault(vma, idx);
            });
    }
    if (config_.xlate_cache) {
        xlate_cache_ =
            std::make_unique<XlateCache>(config_.xlate_cache_entries);
        proc_.as().set_xlate_invalidate_hook(
            [this](const vm::Vma *vma, std::uint64_t first,
                   std::uint64_t n) {
                stats_.xlate_invalidations +=
                    xlate_cache_->invalidate(vma, first, n);
            });
    }
    if (config_.multi_tenant) {
        // The owning process is tenant 0; its hooks (young-fault,
        // xlate invalidation) were just installed above.
        Tenant t;
        t.proc = &proc_;
        t.stats.weight = std::max<std::uint32_t>(
            config_.tenant_default_weight, 1);
        tenants_.push_back(std::move(t));
    }
    kthread_task_ = kthread_loop();
    if (config_.auto_migrate) {
        // The daemon's service class: a WRR participant with its own
        // weight and frame accounting, deliberately NOT in tenants_
        // (its index would collide with a real ASID).
        daemon_tenant_.stats.weight =
            std::max<std::uint32_t>(config_.daemon_weight, 1);
        scan_task_ = scan_loop();
        daemon_task_ = daemon_loop();
    }
}

MemifDevice::~MemifDevice()
{
    stopping_ = true;
    // Cancel anything still in flight: the engine outlives us, and its
    // completion callbacks capture this device. Watchdog events capture
    // it too, so disarm them all before the device goes away.
    for (const InFlightPtr &fl : in_flight_) {
        disarm_watchdog(fl);
        // Prefetch-fill events capture this device; drop them too.
        if (!fl->prefetch_events.empty() || !fl->prefetch_tokens.empty())
            cancel_stream_prefetch(fl);
        if (fl->tid == dma::kInvalidTransfer) continue;
        if (kernel_.dma().discard_moderated(fl->tid)) {
            // Completed but its moderated delivery was still held: the
            // held callback captures this device, so drop it and return
            // the descriptor lease ourselves.
            kernel_.dma().reclaim(fl->tid);
        } else if (!kernel_.dma().is_complete(fl->tid)) {
            kernel_.dma().cancel(fl->tid);
        }
    }
    if (config_.race_policy == RacePolicy::kRecover ||
        config_.auto_migrate)
        proc_.as().set_young_fault_hook(nullptr);
    if (config_.xlate_cache)
        proc_.as().set_xlate_invalidate_hook(nullptr);
    // Tenant address spaces outlive the device (the kernel owns the
    // processes); unhook them so no dangling callback survives.
    for (std::size_t i = 1; i < tenants_.size(); ++i) {
        if (config_.race_policy == RacePolicy::kRecover ||
            config_.auto_migrate)
            tenants_[i].proc->as().set_young_fault_hook(nullptr);
        if (config_.xlate_cache)
            tenants_[i].proc->as().set_xlate_invalidate_hook(nullptr);
    }
    drain_magazines();
    // The kernel thread may be destroyed mid-suspension while holding
    // its moderation mask; rebalance so the engine (which the kernel
    // owns and which outlives us) is not left masked. Every held
    // delivery was discarded above, so the unmask flushes nothing.
    if (kthread_masked_) {
        kernel_.dma().unmask_moderation();
        kthread_masked_ = false;
    }
}

bool
MemifDevice::idle() const
{
    auto &region = const_cast<SharedRegion &>(region_);
    for (std::uint32_t r = 0; r < region.num_rings(); ++r)
        if (!region.ring_queue(r).empty()) return false;
    for (const Tenant &t : tenants_)
        if (!t.pending.empty()) return false;
    if (!daemon_tenant_.pending.empty()) return false;
    return in_flight_.empty() && pending_release_.empty() &&
           region.staging_queue().empty() &&
           region.submission_queue().empty();
}

bool
MemifDevice::check_quiesced(std::string *why) const
{
    bool ok = true;
    auto fail = [&](const std::string &msg) {
        ok = false;
        if (!why) return;
        if (!why->empty()) *why += "; ";
        *why += msg;
    };

    if (!in_flight_.empty())
        fail("flight table holds " + std::to_string(in_flight_.size()) +
             " record(s)");
    for (std::uint32_t s = 0; s < kMaxSubmitRings; ++s)
        if (!flight_shards_[s].empty())
            fail("flight shard " + std::to_string(s) + " holds " +
                 std::to_string(flight_shards_[s].size()) + " record(s)");
    if (!pending_release_.empty())
        fail("pending-release list holds " +
             std::to_string(pending_release_.size()) + " record(s)");

    auto &region = const_cast<SharedRegion &>(region_);
    if (!region.staging_queue().empty()) fail("staging queue not drained");
    if (!region.submission_queue().empty())
        fail("submission queue not drained");
    for (std::uint32_t r = 0; r < region.num_rings(); ++r)
        if (!region.ring_queue(r).empty())
            fail("submission ring " + std::to_string(r) + " not drained");

    for (std::uint32_t i = 0; i < region_.capacity(); ++i) {
        const MovStatus st = region_.request(i).load_status();
        if (st == MovStatus::kSubmitted || st == MovStatus::kInFlight)
            fail("request " + std::to_string(i) +
                 " stuck in non-terminal status " +
                 std::to_string(static_cast<int>(st)));
    }

    // Descriptor leases: at quiesce every chain has been returned, so
    // the cache sees its full PaRAM capacity. (With several instances
    // on one kernel this only holds once ALL of them are idle, which
    // is the state test teardown checks.)
    const dma::ChainCache &cache = kernel_.dma().cache();
    if (cache.available() != cache.capacity())
        fail(std::to_string(cache.capacity() - cache.available()) +
             " DMA descriptor(s) still leased");

    mem::PhysicalMemory &pm = kernel_.phys();
    for (const auto &[key, mag] : magazines_) {
        if (mag.size() > config_.magazine_capacity)
            fail("magazine (" + std::to_string(key.first) + ", order " +
                 std::to_string(key.second) + ") over capacity");
        for (const mem::Pfn head : mag) {
            const mem::PageFrame &frame = pm.frame(head);
            if (!frame.allocated) {
                fail("magazine parks unallocated frame " +
                     std::to_string(head));
                continue;
            }
            if (!frame.rmaps.empty())
                fail("magazine parks still-mapped frame " +
                     std::to_string(head));
        }
    }

    auto check_cache = [&](const XlateCache &cache) {
        for (const XlateCache::Entry &e : cache.entries()) {
            if (e.generation > cache.generation()) {
                fail("xlate entry from the future (generation " +
                     std::to_string(e.generation) + " > " +
                     std::to_string(cache.generation()) + ")");
                continue;
            }
            for (std::uint64_t i = 0; i < e.num_pages(); ++i) {
                if (e.ptes[i].pack() ==
                    e.vma->pte(e.first_page + i).pack())
                    continue;
                fail("stale xlate entry: vma page " +
                     std::to_string(e.first_page + i) +
                     " diverged from the live PTE");
                break;
            }
        }
    };
    if (xlate_cache_) check_cache(*xlate_cache_);

    // Per-ASID quiesce: every tenant has returned its quota charges and
    // drained its pending queue, and its private cache is consistent.
    for (std::size_t a = 0; a < tenants_.size(); ++a) {
        const Tenant &t = tenants_[a];
        if (t.stats.outstanding != 0)
            fail("tenant " + std::to_string(a) + " still holds " +
                 std::to_string(t.stats.outstanding) +
                 " in-flight quota slot(s)");
        if (t.stats.frames_charged != 0)
            fail("tenant " + std::to_string(a) + " still charged " +
                 std::to_string(t.stats.frames_charged) +
                 " transient frame(s)");
        if (!t.pending.empty())
            fail("tenant " + std::to_string(a) + " pending queue holds " +
                 std::to_string(t.pending.size()) + " request(s)");
        if (t.xcache) check_cache(*t.xcache);
    }

    // Managed mode: the daemon has no mov between submission and its
    // terminal handling, its frame charges are returned, and no bucket
    // is marked busy with nothing in flight for it.
    if (daemon_outstanding_ != 0 || !daemon_movs_.empty())
        fail("daemon still has " + std::to_string(daemon_outstanding_) +
             " mov(s) outstanding");
    if (daemon_tenant_.stats.frames_charged != 0)
        fail("daemon still charged " +
             std::to_string(daemon_tenant_.stats.frames_charged) +
             " transient frame(s)");
    if (!daemon_tenant_.pending.empty())
        fail("daemon pending queue holds " +
             std::to_string(daemon_tenant_.pending.size()) + " request(s)");
    for (const auto &mr : managed_)
        for (std::uint64_t b = 0; b < mr->heat.num_buckets(); ++b)
            if (mr->busy[b])
                fail("managed bucket " + std::to_string(b) +
                     " marked busy with no daemon mov in flight");

    // Tiered memory: every chained batch returned its staging frames
    // (a leaked lease would also show up as a frame-count mismatch,
    // but this names the culprit).
    if (staging_frames_out_ != 0)
        fail("staging pool still holds " +
             std::to_string(staging_frames_out_) + " frame(s)");
    return ok;
}

std::uint64_t
MemifDevice::magazine_pages() const
{
    std::uint64_t pages = 0;
    for (const auto &[key, mag] : magazines_)
        pages += mag.size() * (std::uint64_t{1} << key.second);
    return pages;
}

// --------------------------------------------------------------------
// Multi-tenant service layer: registry, admission control, weighted
// round-robin dispatch, load shedding (multi_tenant lever).
// --------------------------------------------------------------------

MemifDevice::Tenant *
MemifDevice::tenant_for(std::uint32_t asid)
{
    if (asid >= tenants_.size()) return nullptr;
    return &tenants_[asid];
}

const MemifDevice::Tenant *
MemifDevice::tenant_for(std::uint32_t asid) const
{
    if (asid >= tenants_.size()) return nullptr;
    return &tenants_[asid];
}

vm::AddressSpace &
MemifDevice::request_as(const MovReq &req) const
{
    if (config_.multi_tenant && req.asid < tenants_.size())
        return tenants_[req.asid].proc->as();
    return const_cast<os::Process &>(proc_).as();
}

XlateCache *
MemifDevice::xlate_for(std::uint32_t asid)
{
    if (Tenant *t = tenant_for(asid); t && t->xcache)
        return t->xcache.get();
    return xlate_cache_.get();
}

void
MemifDevice::invalidate_xlate(const vm::Vma *vma, std::uint64_t first,
                              std::uint64_t n)
{
    if (xlate_cache_)
        stats_.xlate_invalidations +=
            xlate_cache_->invalidate(vma, first, n);
    for (Tenant &t : tenants_)
        if (t.xcache)
            stats_.xlate_invalidations +=
                t.xcache->invalidate(vma, first, n);
}

std::uint32_t
MemifDevice::register_tenant(os::Process &proc, std::uint32_t weight)
{
    MEMIF_ASSERT(config_.multi_tenant,
                 "register_tenant requires the multi_tenant lever");
    const auto asid = static_cast<std::uint32_t>(tenants_.size());
    Tenant t;
    t.proc = &proc;
    t.stats.weight = weight != 0
                         ? weight
                         : std::max<std::uint32_t>(
                               config_.tenant_default_weight, 1);
    if (config_.race_policy == RacePolicy::kRecover ||
        config_.auto_migrate) {
        proc.as().set_young_fault_hook(
            [this](vm::Vma &vma, std::uint64_t idx) {
                return handle_young_fault(vma, idx);
            });
    }
    if (config_.xlate_cache) {
        t.xcache = std::make_unique<XlateCache>(config_.xlate_cache_entries);
        XlateCache *cache = t.xcache.get();
        proc.as().set_xlate_invalidate_hook(
            [this, cache](const vm::Vma *vma, std::uint64_t first,
                          std::uint64_t n) {
                stats_.xlate_invalidations +=
                    cache->invalidate(vma, first, n);
            });
    }
    tenants_.push_back(std::move(t));
    return asid;
}

void
MemifDevice::set_tenant_weight(std::uint32_t asid, std::uint32_t weight)
{
    Tenant *t = tenant_for(asid);
    MEMIF_ASSERT(t != nullptr, "set_tenant_weight: unknown ASID");
    t->stats.weight = std::max<std::uint32_t>(weight, 1);
}

const TenantStats &
MemifDevice::tenant_stats(std::uint32_t asid) const
{
    const Tenant *t = tenant_for(asid);
    MEMIF_ASSERT(t != nullptr, "tenant_stats: unknown ASID");
    return t->stats;
}

double
MemifDevice::fairness_ratio() const
{
    std::uint64_t lo = 0, hi = 0;
    bool have = false;
    for (const Tenant &t : tenants_) {
        if (t.stats.admitted == 0) continue;
        if (!have) {
            lo = hi = t.stats.bytes_moved;
            have = true;
            continue;
        }
        lo = std::min(lo, t.stats.bytes_moved);
        hi = std::max(hi, t.stats.bytes_moved);
    }
    if (!have || hi == 0 || lo == hi) return 1.0;
    if (lo == 0) return std::numeric_limits<double>::infinity();
    return static_cast<double>(hi) / static_cast<double>(lo);
}

void
MemifDevice::print_stats(std::FILE *out) const
{
    const DeviceStats &s = stats_;
    std::fprintf(out, "memif device stats\n");
    std::fprintf(out, "  requests_completed    %12llu\n",
                 static_cast<unsigned long long>(s.requests_completed));
    std::fprintf(out, "  replications          %12llu\n",
                 static_cast<unsigned long long>(s.replications));
    std::fprintf(out, "  migrations            %12llu\n",
                 static_cast<unsigned long long>(s.migrations));
    std::fprintf(out, "  pages_moved           %12llu\n",
                 static_cast<unsigned long long>(s.pages_moved));
    std::fprintf(out, "  bytes_moved           %12llu\n",
                 static_cast<unsigned long long>(s.bytes_moved));
    std::fprintf(out, "  validation_failures   %12llu\n",
                 static_cast<unsigned long long>(s.validation_failures));
    std::fprintf(out, "  dma_errors/retries    %8llu/%llu\n",
                 static_cast<unsigned long long>(s.dma_errors),
                 static_cast<unsigned long long>(s.dma_retries));
    std::fprintf(out, "  watchdog_timeouts     %12llu\n",
                 static_cast<unsigned long long>(s.watchdog_timeouts));
    std::fprintf(out, "  fallback_copies       %12llu\n",
                 static_cast<unsigned long long>(s.fallback_copies));
    std::fprintf(out, "  rollbacks             %12llu\n",
                 static_cast<unsigned long long>(s.rollbacks));
    if (config_.xlate_cache) {
        // The two prefetchers are distinct machines: the gang cache's
        // reactive neighbour expansion vs. the ahead-of-stream walks.
        std::fprintf(out, "  xlate_gang_prefetched %12llu\n",
                     static_cast<unsigned long long>(
                         s.xlate_gang_prefetched));
    }
    if (config_.sva_dma || config_.xlate_prefetch_ahead) {
        std::fprintf(
            out, "  stream_prefetch i/h/l/w %6llu/%llu/%llu/%llu\n",
            static_cast<unsigned long long>(s.stream_prefetch_issued),
            static_cast<unsigned long long>(s.stream_prefetch_hits),
            static_cast<unsigned long long>(s.stream_prefetch_late),
            static_cast<unsigned long long>(s.stream_prefetch_wasted));
        std::fprintf(out, "  prefetch_fills_dropped%12llu\n",
                     static_cast<unsigned long long>(
                         s.prefetch_fills_dropped));
        std::fprintf(out, "  consumer_stalls       %12llu (%.1f us)\n",
                     static_cast<unsigned long long>(s.consumer_stalls),
                     static_cast<double>(s.consumer_stall_time) / 1000.0);
        std::fprintf(
            out, "  sva res/walk/rexl/flt %6llu/%llu/%llu/%llu\n",
            static_cast<unsigned long long>(s.sva_resolved),
            static_cast<unsigned long long>(s.sva_demand_walks),
            static_cast<unsigned long long>(s.sva_retranslated),
            static_cast<unsigned long long>(s.sva_faults));
    }
    if (config_.auto_migrate) {
        const double sampled =
            s.heat_pages_sampled ? static_cast<double>(s.heat_pages_sampled)
                                 : 1.0;
        std::fprintf(out, "  heat_scans            %12llu\n",
                     static_cast<unsigned long long>(s.heat_scans));
        std::fprintf(out,
                     "  heat_pages s/a/w/skip %6llu/%llu/%llu/%llu\n",
                     static_cast<unsigned long long>(s.heat_pages_sampled),
                     static_cast<unsigned long long>(s.heat_pages_accessed),
                     static_cast<unsigned long long>(s.heat_pages_written),
                     static_cast<unsigned long long>(s.heat_pages_skipped));
        std::fprintf(out, "  heat young/dirty hit  %10.1f%%/%.1f%%\n",
                     100.0 * static_cast<double>(s.heat_pages_accessed) /
                         sampled,
                     100.0 * static_cast<double>(s.heat_pages_written) /
                         sampled);
        std::fprintf(out, "  promotions iss/done   %8llu/%llu\n",
                     static_cast<unsigned long long>(s.promotions_issued),
                     static_cast<unsigned long long>(
                         s.promotions_completed));
        std::fprintf(out, "  demotions iss/done    %8llu/%llu\n",
                     static_cast<unsigned long long>(s.demotions_issued),
                     static_cast<unsigned long long>(
                         s.demotions_completed));
        std::fprintf(out, "  daemon_movs_dropped   %12llu\n",
                     static_cast<unsigned long long>(
                         s.daemon_movs_dropped));
        std::fprintf(out, "  daemon_busy_backoffs  %12llu\n",
                     static_cast<unsigned long long>(
                         s.daemon_busy_backoffs));
        std::fprintf(out, "  daemon_budget_exhaust %12llu\n",
                     static_cast<unsigned long long>(
                         s.daemon_budget_exhausted));
        std::fprintf(out, "  promotions_skip_full  %12llu\n",
                     static_cast<unsigned long long>(
                         s.promotions_skipped_full));
        std::fprintf(out, "  heat_ping_pongs       %12llu\n",
                     static_cast<unsigned long long>(heat_ping_pongs()));
        if (std::getenv("MEMIF_HEAT_HISTOGRAM"))
            print_heat_histogram(out);
    }
    if (config_.tiered_memory) {
        std::fprintf(out, "  chained_migrations    %12llu\n",
                     static_cast<unsigned long long>(s.chained_migrations));
        std::fprintf(out, "  chain_batches         %12llu\n",
                     static_cast<unsigned long long>(s.chain_batches));
        std::fprintf(out, "  hop stages iss/done   %8llu/%llu\n",
                     static_cast<unsigned long long>(s.hop_stages_issued),
                     static_cast<unsigned long long>(
                         s.hop_stages_completed));
        std::fprintf(out, "  hop retries/fallbacks %8llu/%llu\n",
                     static_cast<unsigned long long>(s.hop_retries),
                     static_cast<unsigned long long>(
                         s.hop_fallback_copies));
        std::fprintf(out, "  hop_overlap_events    %12llu\n",
                     static_cast<unsigned long long>(s.hop_overlap_events));
        std::fprintf(out, "  chain_rollbacks       %12llu\n",
                     static_cast<unsigned long long>(s.chain_rollbacks));
        std::fprintf(out, "  staging hwm/waits     %8llu/%llu\n",
                     static_cast<unsigned long long>(s.staging_frames_hwm),
                     static_cast<unsigned long long>(s.staging_pool_waits));
        std::fprintf(out, "  far demote/promote    %8llu/%llu\n",
                     static_cast<unsigned long long>(s.demotions_to_far),
                     static_cast<unsigned long long>(
                         s.promotions_from_far));
    }
    if (!config_.multi_tenant) return;
    // kErrNoSpace used to vanish from the caller's view; the admission
    // counters make every refused or shed request visible.
    std::fprintf(out, "  admission_rejections  %12llu\n",
                 static_cast<unsigned long long>(s.admission_rejections));
    std::fprintf(out, "  quota_hits_inflight   %12llu\n",
                 static_cast<unsigned long long>(s.quota_hits_inflight));
    std::fprintf(out, "  quota_hits_frames     %12llu\n",
                 static_cast<unsigned long long>(s.quota_hits_frames));
    std::fprintf(out, "  shed_requests         %12llu\n",
                 static_cast<unsigned long long>(s.shed_requests));
    std::fprintf(out, "  wrr_dispatches        %12llu\n",
                 static_cast<unsigned long long>(s.wrr_dispatches));
    std::fprintf(out, "  fairness_ratio        %12.3f\n",
                 fairness_ratio());
    std::fprintf(out,
                 "  asid  weight   admitted  completed   rejected"
                 "       shed  bytes_moved  max_wait_us\n");
    for (std::size_t a = 0; a < tenants_.size(); ++a) {
        const TenantStats &t = tenants_[a].stats;
        std::fprintf(out,
                     "  %4zu  %6u %10llu %10llu %10llu %10llu %12llu "
                     "%12.1f\n",
                     a, t.weight,
                     static_cast<unsigned long long>(t.admitted),
                     static_cast<unsigned long long>(t.completed),
                     static_cast<unsigned long long>(t.rejected),
                     static_cast<unsigned long long>(t.shed),
                     static_cast<unsigned long long>(t.bytes_moved),
                     static_cast<double>(t.max_slot_wait) / 1000.0);
    }
}

void
MemifDevice::charge_frames(const InFlightPtr &fl)
{
    if (!config_.multi_tenant || fl->frames_charged != 0) return;
    // Daemon movs charge the daemon's own service class, never the
    // tenant whose pages move — managed placement must not eat into an
    // app's frame quota.
    Tenant *t = fl->daemon ? &daemon_tenant_ : tenant_for(fl->asid);
    if (!t) return;
    fl->frames_charged =
        std::uint64_t{fl->num_pages} << fl->order;
    t->stats.frames_charged += fl->frames_charged;
}

void
MemifDevice::uncharge_frames(const InFlightPtr &fl)
{
    if (fl->frames_charged == 0) return;
    if (Tenant *t = fl->daemon ? &daemon_tenant_ : tenant_for(fl->asid)) {
        MEMIF_ASSERT(t->stats.frames_charged >= fl->frames_charged,
                     "tenant frame charge underflow");
        t->stats.frames_charged -= fl->frames_charged;
    }
    fl->frames_charged = 0;
}

void
MemifDevice::reject_no_space(std::uint32_t idx, Tenant &t, bool permanent)
{
    MovReq &req = region_.request(idx);
    // Back-off hint: roughly one service interval per request already
    // ahead of this tenant (a heuristic, monotone in the backlog). A
    // zero hint means the rejection is permanent — the request can
    // never fit this tenant's quota, so retrying is pointless.
    const std::uint64_t backlog =
        std::uint64_t{t.stats.outstanding} + t.pending.size();
    req.retry_after_us =
        permanent ? 0
                  : static_cast<std::uint32_t>(std::min<std::uint64_t>(
                        20 * (backlog + 1), 10000));
    ++t.stats.rejected;
    notify(idx, MovStatus::kFailed, MovError::kNoSpace);
}

bool
MemifDevice::admit_request(std::uint32_t idx)
{
    if (!config_.multi_tenant) return true;
    MovReq &req = region_.request(idx);
    Tenant *t = tenant_for(req.asid);
    if (!t) {
        // Unknown ASID: not a quota matter — a malformed request.
        notify(idx, MovStatus::kFailed, MovError::kBadRequest);
        return false;
    }
    if (config_.tenant_inflight_quota != 0 &&
        t->stats.outstanding >= config_.tenant_inflight_quota) {
        ++stats_.admission_rejections;
        ++stats_.quota_hits_inflight;
        reject_no_space(idx, *t);
        return false;
    }
    if (config_.tenant_frame_quota != 0 && req.op == MovOp::kMigrate) {
        // Estimate the transient doubled-frame window against the
        // quota. An unmapped src_base is admitted — validation fails
        // it with the precise error.
        if (const vm::Vma *vma = t->proc->as().find_vma(req.src_base)) {
            const std::uint64_t est =
                std::uint64_t{req.num_pages}
                << vm::page_order(vma->page_size());
            if (t->stats.frames_charged + est >
                config_.tenant_frame_quota) {
                ++stats_.admission_rejections;
                ++stats_.quota_hits_frames;
                // An estimate that exceeds the whole quota can never
                // fit no matter how far the tenant drains: reject it
                // permanently (hint 0) so callers don't retry forever.
                reject_no_space(idx, *t,
                                est > config_.tenant_frame_quota);
                return false;
            }
        }
    }
    req.admitted = 1;
    ++t->stats.outstanding;
    ++t->stats.admitted;
    return true;
}

void
MemifDevice::route_to_pending(bool take_staging)
{
    const sim::CostModel &cm = kernel_.costs();
    auto route = [&](std::uint32_t idx) {
        if (!region_.valid_index(idx)) {
            MEMIF_WARN("memif: dropping corrupt request index %u", idx);
            return;
        }
        MovReq &req = region_.request(idx);
        if (req.daemon) {
            // Daemon movs have their own service class and are already
            // bounded by the backlog limit and the epoch budget — the
            // shedding bound below is for unthrottled app tenants.
            daemon_tenant_.pending.push_back(idx);
            return;
        }
        Tenant *t = tenant_for(req.asid);
        if (!t) {
            notify(idx, MovStatus::kFailed, MovError::kBadRequest);
            return;
        }
        // Graceful degradation: a tenant whose unserved queue outgrows
        // its weight-scaled bound is shed instead of letting it stall
        // everyone behind a fault storm or frame exhaustion.
        const std::uint64_t bound =
            std::uint64_t{config_.tenant_queue_depth} * t->stats.weight;
        if (config_.tenant_queue_depth != 0 && t->pending.size() >= bound) {
            ++stats_.shed_requests;
            ++t->stats.shed;
            reject_no_space(idx, *t);
            return;
        }
        t->pending.push_back(idx);
    };
    for (;;) {
        lockfree::DequeueResult d = region_.submission_queue().dequeue();
        if (!d.ok && take_staging) d = region_.staging_queue().dequeue();
        if (!d.ok && region_.num_rings() > 0) {
            const std::uint32_t nr = region_.num_rings();
            for (std::uint32_t i = 0; i < nr && !d.ok; ++i) {
                const std::uint32_t r = (ring_rr_ + i) % nr;
                d = region_.ring_queue(r).dequeue();
                if (d.ok) ring_rr_ = (r + 1) % nr;
            }
        }
        if (!d.ok) return;
        kernel_.cpu().charge(sim::ExecContext::kKthread, Op::kQueue,
                             cm.queue_op);
        route(d.value);
    }
}

bool
MemifDevice::wrr_pick(std::uint32_t *out)
{
    // Smooth weighted round-robin: every active tenant earns its
    // weight, the richest serves, then pays the active-weight total.
    // Under continuous backlog this interleaves tenants in exact
    // weight proportion (descriptor slots and TC bandwidth follow).
    std::int64_t active_weight = 0;
    Tenant *best = nullptr;
    auto offer = [&](Tenant &t) {
        if (t.pending.empty()) return;
        active_weight += t.stats.weight;
        t.wrr_credit += t.stats.weight;
        if (!best || t.wrr_credit > best->wrr_credit) best = &t;
    };
    for (Tenant &t : tenants_) offer(t);
    // The migration daemon competes like any tenant, at its configured
    // weight — background placement never preempts app traffic, it is
    // interleaved with it.
    offer(daemon_tenant_);
    if (!best) return false;
    best->wrr_credit -= active_weight;
    *out = best->pending.front();
    best->pending.erase(best->pending.begin());
    ++stats_.wrr_dispatches;
    // Starvation tripwire: worst wait from submit to service start.
    const MovReq &req = region_.request(*out);
    const sim::SimTime now = kernel_.eq().now();
    if (now >= req.submit_time) {
        const sim::Duration wait = now - req.submit_time;
        if (wait > best->stats.max_slot_wait)
            best->stats.max_slot_wait = wait;
    }
    return true;
}

bool
MemifDevice::next_request(std::uint32_t *out, bool take_staging)
{
    if (config_.multi_tenant) {
        route_to_pending(take_staging);
        return wrr_pick(out);
    }
    lockfree::DequeueResult d = region_.submission_queue().dequeue();
    if (!d.ok && take_staging) d = region_.staging_queue().dequeue();
    if (!d.ok && region_.num_rings() > 0) {
        // Per-CPU rings: round-robin scan so no submitting CPU can
        // starve the others.
        const std::uint32_t nr = region_.num_rings();
        for (std::uint32_t i = 0; i < nr && !d.ok; ++i) {
            const std::uint32_t r = (ring_rr_ + i) % nr;
            d = region_.ring_queue(r).dequeue();
            if (d.ok) ring_rr_ = (r + 1) % nr;
        }
    }
    if (!d.ok) return false;
    *out = d.value;
    return true;
}

// --------------------------------------------------------------------
// Validation (§4.2 safety: the driver trusts nothing in the region).
// --------------------------------------------------------------------

MovError
MemifDevice::validate(const MovReq &req, vm::Vma **src_vma,
                      vm::Vma **dst_vma) const
{
    *src_vma = nullptr;
    *dst_vma = nullptr;
    // Strided geometry rides in dedicated fields, so the branch comes
    // before the flat num_pages checks (a strided request leaves
    // num_pages zero on purpose).
    if (req.rows != 0) return validate_strided(req, src_vma, dst_vma);
    if (req.num_pages == 0 ||
        req.num_pages > dma::DescriptorRam::kEntries)
        return MovError::kBadRequest;

    vm::AddressSpace &as = request_as(req);
    vm::Vma *src = as.find_vma(req.src_base);
    if (!src) return MovError::kBadAddress;
    const std::uint64_t pb = vm::page_bytes(src->page_size());
    if (req.src_base % pb != 0) return MovError::kBadAddress;
    if (req.src_base + req.num_pages * pb > src->end())
        return MovError::kBadAddress;
    *src_vma = src;

    if (req.op == MovOp::kMigrate) {
        if (req.dst_node >= kernel_.phys().node_count())
            return MovError::kBadNode;
        if (src->is_file_backed() && !config_.allow_file_backed)
            return MovError::kFileBacked;  // the prototype's §6.7 limit
        return MovError::kNone;
    }

    // Replication: the destination must be mapped — at any granularity;
    // a 64 KB source may replicate into a 4 KB destination region and
    // vice versa — and must not overlap the source. Chunks are emitted
    // at the finer of the two granularities, so their count (not the
    // source page count) is what the PaRAM bounds.
    vm::Vma *dst = as.find_vma(req.dst_base);
    if (!dst) return MovError::kBadAddress;
    const std::uint64_t dst_pb = vm::page_bytes(dst->page_size());
    const std::uint64_t align = pb < dst_pb ? pb : dst_pb;
    if (req.dst_base % align != 0) return MovError::kBadAddress;
    if (req.num_pages * pb / align > dma::DescriptorRam::kEntries)
        return MovError::kBadRequest;
    if (req.dst_base + req.num_pages * pb > dst->end())
        return MovError::kBadAddress;
    const std::uint64_t src_end = req.src_base + req.num_pages * pb;
    const std::uint64_t dst_end = req.dst_base + req.num_pages * pb;
    if (req.src_base < dst_end && req.dst_base < src_end)
        return MovError::kBadRequest;
    *dst_vma = dst;
    return MovError::kNone;
}

MovError
MemifDevice::validate_strided(const MovReq &req, vm::Vma **src_vma,
                              vm::Vma **dst_vma) const
{
    if (!config_.strided_dma) return MovError::kBadRequest;
    // Strided moves are replication-shaped: migrations relocate whole
    // pages, for which 2D geometry is meaningless.
    if (req.op != MovOp::kReplicate) return MovError::kBadRequest;
    if (req.num_pages != 0) return MovError::kBadRequest;
    if (req.row_bytes == 0 || req.row_bytes > 0xFFFF)
        return MovError::kBadRequest;
    if (req.rows > dma::DescriptorRam::kEntries)
        return MovError::kBadRequest;
    // Pitches are bounded by the descriptor's signed 32-bit BIDX;
    // together with the rows bound this also makes every extent
    // computation below overflow-free (rows * pitch < 2^40).
    if (req.src_pitch > 0x7FFFFFFF || req.dst_pitch > 0x7FFFFFFF)
        return MovError::kBadRequest;
    if (req.dst_pitch < req.row_bytes) return MovError::kBadRequest;
    const bool gather = req.gather_list != 0;
    if (!gather && req.src_pitch < req.row_bytes)
        return MovError::kBadRequest;
    // A misaligned list would make its u64 reads straddle frames.
    if (gather && req.gather_list % 8 != 0) return MovError::kBadRequest;

    vm::AddressSpace &as = request_as(req);
    vm::Vma *src = as.find_vma(req.src_base);
    if (!src) return MovError::kBadAddress;
    const std::uint64_t src_extent =
        gather ? 0
               : (std::uint64_t{req.rows} - 1) * req.src_pitch +
                     req.row_bytes;
    if (!gather && req.src_base + src_extent > src->end())
        return MovError::kBadAddress;
    if (gather) {
        // The row-address list itself must be mapped; the per-row
        // addresses it holds are read (and bounds-checked against the
        // source vma) at serve time.
        vm::Vma *lv = as.find_vma(req.gather_list);
        if (!lv ||
            req.gather_list + std::uint64_t{req.rows} * 8 > lv->end())
            return MovError::kBadAddress;
    }
    *src_vma = src;

    vm::Vma *dst = as.find_vma(req.dst_base);
    if (!dst) return MovError::kBadAddress;
    const std::uint64_t dst_extent =
        (std::uint64_t{req.rows} - 1) * req.dst_pitch + req.row_bytes;
    if (req.dst_base + dst_extent > dst->end())
        return MovError::kBadAddress;
    // Envelope overlap check (non-gather): pitched reads from inside
    // the write window would see half-written rows.
    if (!gather) {
        const std::uint64_t src_hi = req.src_base + src_extent;
        const std::uint64_t dst_hi = req.dst_base + dst_extent;
        if (req.src_base < dst_hi && req.dst_base < src_hi)
            return MovError::kBadRequest;
    }
    *dst_vma = dst;
    return MovError::kNone;
}

// --------------------------------------------------------------------
// Notification (op 5).
// --------------------------------------------------------------------

void
MemifDevice::notify(std::uint32_t idx, MovStatus status, MovError error)
{
    MovReq &req = region_.request(idx);
    if (req.daemon) {
        // Daemon movs never surface on the application's completion
        // queues and hold no tenant quota slot: the daemon recycles
        // the request slot itself and absorbs the outcome (a failed
        // promotion is dropped into a cooldown, not retried here).
        req.error = error;
        req.complete_time = kernel_.eq().now();
        req.store_status(status);
        daemon_request_done(idx, status);
        return;
    }
    req.error = error;
    req.complete_time = kernel_.eq().now();
    req.store_status(status);
    wake_scanner();
    // Return the tenant's in-flight quota slot exactly once per
    // admitted request (rejections never held one).
    if (config_.multi_tenant && req.admitted) {
        req.admitted = 0;
        if (Tenant *t = tenant_for(req.asid)) {
            MEMIF_ASSERT(t->stats.outstanding > 0,
                         "tenant in-flight quota underflow");
            --t->stats.outstanding;
            ++t->stats.completed;
        }
    }
    if (status == MovStatus::kDone)
        region_.completion_ok_queue().enqueue(idx);
    else
        region_.completion_err_queue().enqueue(idx);
    ++stats_.requests_completed;
    completion_event_.set();
}

// --------------------------------------------------------------------
// Batched TLB shootdown plumbing (PR 2's span accumulator, shared).
// --------------------------------------------------------------------

void
MemifDevice::accumulate_flush(FlushPlan &plan, vm::AddressSpace *as,
                              vm::Vma *vma, std::uint64_t page_idx)
{
    for (FlushSpan &s : plan) {
        if (s.as == as && s.vma == vma) {
            s.lo = std::min(s.lo, page_idx);
            s.hi = std::max(s.hi, page_idx);
            return;
        }
    }
    plan.push_back(FlushSpan{as, vma, page_idx, page_idx});
}

void
MemifDevice::issue_flush_plan(const FlushPlan &plan, sim::Duration &cost)
{
    const sim::CostModel &cm = kernel_.costs();
    for (const FlushSpan &s : plan) {
        const std::uint64_t span_pages = s.hi - s.lo + 1;
        s.as->flush_tlb_range(s.vma->page_vaddr(s.lo), span_pages,
                              s.vma->page_size());
        cost += cm.tlb_flush_range_time(span_pages);
        ++stats_.ranged_tlb_flushes;
    }
}

// --------------------------------------------------------------------
// Submission-path acceleration: gang translation cache, per-node frame
// magazines, per-CPU submission rings (all lever-gated, default off).
// --------------------------------------------------------------------

void
MemifDevice::xlate_writethrough(const InFlightPtr &fl, ExecContext ctx)
{
    // The driver's own remap shootdown invalidated the region's entry
    // while the request was in flight; with the final PTEs now live
    // (and, under kDetect, never flushed again), re-record them so the
    // next move over the region starts from a hit.
    XlateCache *const xcache = xlate_for(fl->asid);
    if (!xcache) return;
    std::vector<vm::Pte> ptes;
    ptes.reserve(fl->num_pages);
    for (std::uint32_t i = 0; i < fl->num_pages; ++i)
        ptes.push_back(fl->vma->pte(fl->first_page + i));
    xcache->record(fl->vma, fl->first_page, std::move(ptes));
    kernel_.cpu().charge(ctx, Op::kRelease, kernel_.costs().xlate_probe);
}

bool
MemifDevice::magazine_alloc(mem::NodeId node, unsigned order,
                            std::uint32_t n, std::vector<mem::Pfn> &out,
                            sim::Duration &cost)
{
    const sim::CostModel &cm = kernel_.costs();
    std::vector<mem::Pfn> &mag = magazines_[{node, order}];
    std::uint32_t got = 0;
    while (got < n) {
        if (!mag.empty()) {
            out.push_back(mag.back());
            mag.pop_back();
            cost += cm.magazine_op;
            ++stats_.magazine_pops;
            ++got;
            continue;
        }
        // Refill: one bulk buddy call for at least the refill floor,
        // falling back to the exact remainder under memory pressure.
        const std::uint32_t need = n - got;
        std::uint32_t want = std::max(need, config_.magazine_refill);
        std::vector<mem::Pfn> bulk;
        const bool fault = kernel_.faults().should_fire(kFaultAllocFail);
        if (fault || !kernel_.phys().allocate_bulk(node, order, want, bulk)) {
            if (fault || want == need ||
                !kernel_.phys().allocate_bulk(node, order, need, bulk)) {
                // Exhausted: a failed bulk call still entered the
                // allocator once; undo the pops so the caller sees
                // all-or-nothing.
                cost += cm.bulk_alloc_base;
                while (got > 0) {
                    mag.push_back(out.back());
                    out.pop_back();
                    cost += cm.magazine_op;
                    --got;
                }
                return false;
            }
            want = need;
        }
        cost += cm.bulk_alloc_time(order, want);
        ++stats_.bulk_allocs;
        mag.insert(mag.end(), bulk.begin(), bulk.end());
    }
    return true;
}

void
MemifDevice::magazine_free(mem::Pfn head, unsigned order,
                           sim::Duration &cost)
{
    const sim::CostModel &cm = kernel_.costs();
    std::vector<mem::Pfn> &mag = magazines_[{kernel_.phys().node_of(head),
                                             order}];
    if (mag.size() < config_.magazine_capacity) {
        MEMIF_ASSERT(kernel_.phys().frame(head).rmaps.empty(),
                     "parking a still-mapped frame");
        mag.push_back(head);
        cost += cm.magazine_op;
        return;
    }
    kernel_.phys().free(head, order);
    cost += cm.page_free;
    ++stats_.magazine_spills;
}

void
MemifDevice::free_frames(mem::Pfn head, unsigned order, sim::Duration &cost)
{
    if (config_.bulk_alloc) {
        magazine_free(head, order, cost);
        return;
    }
    kernel_.phys().free(head, order);
    cost += kernel_.costs().page_free;
}

void
MemifDevice::drain_magazines()
{
    for (auto &[key, mag] : magazines_) {
        for (const mem::Pfn head : mag)
            kernel_.phys().free(head, key.second);
        mag.clear();
    }
}

void
MemifDevice::add_in_flight(const InFlightPtr &fl)
{
    in_flight_.push_back(fl);
    if (config_.percpu_rings && region_.num_rings() > 0)
        flight_shards_[fl->submit_cpu % region_.num_rings()].push_back(fl);
}

void
MemifDevice::remove_in_flight(const InFlightPtr &fl)
{
    std::erase(in_flight_, fl);
    if (config_.percpu_rings && region_.num_rings() > 0)
        std::erase(flight_shards_[fl->submit_cpu % region_.num_rings()],
                   fl);
    // An SVA stream may retire with prefetch walks still in flight
    // (gate fault, rollback); drop them and their pending tokens.
    if (!fl->prefetch_events.empty() || !fl->prefetch_tokens.empty())
        cancel_stream_prefetch(fl);
}

sim::Duration
MemifDevice::shared_submit_penalty(std::uint32_t cpu)
{
    const sim::CostModel &cm = kernel_.costs();
    const sim::SimTime now = kernel_.eq().now();
    sim::Duration penalty = 0;
    if (have_shared_submit_ && last_shared_cpu_ != cpu &&
        now - last_shared_submit_ <= cm.queue_contention_window) {
        penalty = cm.queue_contention_retry;
        ++stats_.shared_submit_retries;
    }
    have_shared_submit_ = true;
    last_shared_submit_ = now;
    last_shared_cpu_ = cpu;
    return penalty;
}

// --------------------------------------------------------------------
// MMU-aware DMA: ahead-of-stream translation prefetch + SVA routing.
// --------------------------------------------------------------------

bool
MemifDevice::resolve_span(const vm::Vma *vma, vm::VAddr va,
                          std::uint64_t bytes, std::uint64_t *out)
{
    const std::uint64_t pb = vm::page_bytes(vma->page_size());
    std::uint64_t idx = vma->page_index(va);
    const std::uint64_t off = va - vma->page_vaddr(idx);
    vm::Pte pte = vma->pte(idx);
    if (!pte.present || pte.migration) return false;
    const std::uint64_t base = (pte.pfn << mem::kPageShift) + off;
    std::uint64_t covered = pb - off;
    std::uint64_t expect = (pte.pfn << mem::kPageShift) + pb;
    while (covered < bytes) {
        ++idx;
        if (idx >= vma->num_pages()) return false;
        pte = vma->pte(idx);
        if (!pte.present || pte.migration) return false;
        // A remap broke the physical contiguity the descriptor needs;
        // the gate reports a walk fault rather than split the chain.
        if ((pte.pfn << mem::kPageShift) != expect) return false;
        covered += pb;
        expect += pb;
    }
    *out = base;
    return true;
}

void
MemifDevice::issue_stream_prefetch(const InFlightPtr &fl,
                                   std::uint64_t batch)
{
    const std::uint32_t w =
        std::max<std::uint32_t>(config_.prefetch_window, 1);
    const std::uint64_t lo = batch * w;
    if (lo >= fl->slots.size()) return;
    const std::uint64_t hi =
        std::min<std::uint64_t>(lo + w, fl->slots.size());
    const sim::CostModel &cm = kernel_.costs();
    const vm::Vma *const svma = fl->vma;
    const vm::Vma *const dvma = fl->dst_vma;
    const XlateSlot &head = fl->slots[lo];
    const XlateSlot &tail = fl->slots[hi - 1];
    const std::uint64_t s0 = svma->page_index(head.src_va);
    const std::uint64_t sn =
        svma->page_index(tail.src_va + tail.bytes - 1) - s0 + 1;
    const std::uint64_t d0 = dvma->page_index(head.dst_va);
    const std::uint64_t dn =
        dvma->page_index(tail.dst_va + tail.bytes - 1) - d0 + 1;

    // The asynchronous walker: one full descent then adjacent steps
    // per run (the gang-walk cost shape), elapsed as walker time on
    // the event queue — no CPU is charged, which is the whole point:
    // the walk overlaps in-flight DMA instead of serialising in prep.
    const sim::Duration walk = 2 * cm.page_walk_full +
                               (sn - 1 + dn - 1) * cm.page_walk_adjacent;
    const sim::SimTime ready = kernel_.eq().now() + walk;
    for (std::uint64_t i = lo; i < hi; ++i) {
        fl->slots[i].ready_at = ready;
        fl->slots[i].prefetched = true;
    }
    stats_.stream_prefetch_issued += hi - lo;

    XlateCache *const cache = xlate_for(fl->asid);
    std::uint64_t stok = 0, dtok = 0;
    if (cache) {
        // Pending entries: an invalidation landing before the fill
        // kills the token and the stale walk result is dropped.
        stok = cache->begin_prefetch(svma, s0, sn);
        dtok = cache->begin_prefetch(dvma, d0, dn);
        fl->prefetch_tokens.push_back(stok);
        fl->prefetch_tokens.push_back(dtok);
    }
    std::weak_ptr<InFlight> weak = fl;
    const sim::EventQueue::EventId ev = kernel_.eq().schedule_at(
        ready, [this, weak, stok, dtok, svma, dvma, s0, sn, d0, dn] {
            InFlightPtr alive = weak.lock();
            if (!alive || stopping_) return;
            XlateCache *const xc = xlate_for(alive->asid);
            if (!xc) return;
            // Fill from the PTEs live *now*: the walk result delivered
            // is whatever the tables say at completion time, and the
            // generation check drops it if an invalidation raced ahead.
            const auto fill = [&](std::uint64_t tok, const vm::Vma *vma,
                                  std::uint64_t p0, std::uint64_t n) {
                std::vector<vm::Pte> ptes;
                ptes.reserve(n);
                for (std::uint64_t i = 0; i < n; ++i)
                    ptes.push_back(vma->pte(p0 + i));
                if (!xc->fill_prefetch(tok, std::move(ptes)))
                    ++stats_.prefetch_fills_dropped;
            };
            fill(stok, svma, s0, sn);
            fill(dtok, dvma, d0, dn);
        });
    fl->prefetch_events.push_back(ev);
}

void
MemifDevice::cancel_stream_prefetch(const InFlightPtr &fl)
{
    for (const sim::EventQueue::EventId ev : fl->prefetch_events)
        kernel_.eq().cancel(ev);
    fl->prefetch_events.clear();
    // Drain any still-pending tokens so no pending-prefetch entry
    // outlives the move (a fill that already ran erased its own).
    if (XlateCache *cache = xlate_for(fl->asid))
        for (const std::uint64_t tok : fl->prefetch_tokens)
            cache->fill_prefetch(tok, {});
    fl->prefetch_tokens.clear();
}

dma::XlateVerdict
MemifDevice::sva_gate_check(const InFlightPtr &fl, std::uint32_t idx,
                            dma::TransferDescriptor &d)
{
    dma::XlateVerdict v;
    if (fl->aborted || stopping_ || idx >= fl->slots.size()) return v;
    const sim::CostModel &cm = kernel_.costs();
    const sim::SimTime now = kernel_.eq().now();
    XlateSlot &slot = fl->slots[idx];
    const std::uint32_t w =
        std::max<std::uint32_t>(config_.prefetch_window, 1);

    // Keep the prefetcher running ahead of the consumption stream:
    // entering a new window triggers the walk two windows out, so the
    // walker (~page_walk_adjacent per page) stays ahead of the copy
    // stream (~dma_stream_time per page) after the first window.
    if (config_.xlate_prefetch_ahead && idx % w == 0) {
        const std::uint64_t target = idx / w + 2;
        while (fl->next_prefetch_batch <= target &&
               fl->next_prefetch_batch * w < fl->slots.size()) {
            issue_stream_prefetch(fl, fl->next_prefetch_batch);
            ++fl->next_prefetch_batch;
        }
    }

    // Injected IOMMU walk fault: the chain terminates mid-stream and
    // the recovery ladder sees kXlateFault.
    if (kernel_.faults().should_fire(kFaultSvaWalk)) {
        ++stats_.sva_faults;
        v.fault = true;
        return v;
    }

    // ALWAYS resolve from the live page tables — the prefetch / cache
    // state below only decides the stall charged, never the bytes.
    std::uint64_t src = 0, dst = 0;
    if (!resolve_span(fl->vma, slot.src_va, slot.bytes, &src) ||
        !resolve_span(fl->dst_vma, slot.dst_va, slot.bytes, &dst)) {
        ++stats_.sva_faults;
        v.fault = true;
        return v;
    }
    ++stats_.sva_resolved;
    if (src != d.src || dst != d.dst) {
        // The translation moved since the descriptor was programmed;
        // rewrite the engine's working copy from the live tables.
        ++stats_.sva_retranslated;
        dma::TransferDescriptor nd =
            dma::TransferDescriptor::contiguous(src, dst, slot.bytes);
        nd.opt = d.opt;
        nd.link = d.link;
        d = nd;
    }

    // Stall accounting: is the translation already in the cache?
    XlateCache *const cache = xlate_for(fl->asid);
    const std::uint64_t s0 = fl->vma->page_index(slot.src_va);
    const std::uint64_t sn =
        fl->vma->page_index(slot.src_va + slot.bytes - 1) - s0 + 1;
    const std::uint64_t d0 = fl->dst_vma->page_index(slot.dst_va);
    const std::uint64_t dn =
        fl->dst_vma->page_index(slot.dst_va + slot.bytes - 1) - d0 + 1;
    const bool covered = cache && cache->lookup(fl->vma, s0, sn) &&
                         cache->lookup(fl->dst_vma, d0, dn);
    const auto rec = [&](const vm::Vma *vma, std::uint64_t p0,
                         std::uint64_t n) {
        std::vector<vm::Pte> ptes;
        ptes.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            ptes.push_back(vma->pte(p0 + i));
        cache->record(vma, p0, std::move(ptes));
    };
    const sim::Duration demand_walk =
        2 * cm.page_walk_full +
        (sn - 1 + dn - 1) * cm.page_walk_adjacent;

    if (slot.prefetched) {
        if (now < slot.ready_at) {
            // Consumer outran the prefetcher: the TC stalls until the
            // covering walk lands (and then proceeds off its result).
            v.stall = slot.ready_at - now;
            ++stats_.stream_prefetch_late;
            ++stats_.consumer_stalls;
            stats_.consumer_stall_time += v.stall;
        } else if (covered) {
            // Prefetched translation ready and live: the walk fully
            // overlapped earlier streaming — zero consumption stall.
            ++stats_.stream_prefetch_hits;
        } else {
            // Prefetched but unusable (invalidated after the fill, or
            // the fill was dropped): demand re-walk in the stream.
            ++stats_.stream_prefetch_wasted;
            ++stats_.sva_demand_walks;
            v.stall = demand_walk;
            if (cache) {
                rec(fl->vma, s0, sn);
                rec(fl->dst_vma, d0, dn);
            }
        }
    } else if (covered) {
        // Pure SVA routing: every descriptor pays the IOTLB lookup
        // inline with the stream (prefetched entries are pushed, so
        // they skip even this).
        v.stall = cm.xlate_probe;
    } else {
        ++stats_.sva_demand_walks;
        v.stall = demand_walk;
        if (cache) {
            rec(fl->vma, s0, sn);
            rec(fl->dst_vma, d0, dn);
        }
    }
    return v;
}

void
MemifDevice::revalidate_stream(const InFlightPtr &fl)
{
    // A retried chain (or the CPU fallback) must not trust prefetched
    // translations from before the failure: re-resolve every entry
    // from the live page tables. Entries that no longer resolve keep
    // their programmed addresses — the gate (or the next failure)
    // handles them; only reachable through injection or a real unmap.
    MEMIF_ASSERT(fl->slots.size() == fl->sg.size(),
                 "stream slots out of sync with the SG list");
    for (std::size_t i = 0; i < fl->slots.size(); ++i) {
        const XlateSlot &slot = fl->slots[i];
        std::uint64_t src = 0, dst = 0;
        if (!resolve_span(fl->vma, slot.src_va, slot.bytes, &src) ||
            !resolve_span(fl->dst_vma, slot.dst_va, slot.bytes, &dst))
            continue;
        if (src != fl->sg[i].src_addr || dst != fl->sg[i].dst_addr) {
            ++stats_.sva_retranslated;
            fl->sg[i].src_addr = src;
            fl->sg[i].dst_addr = dst;
        }
    }
}

// --------------------------------------------------------------------
// Ops 1-3: Prep, Remap, DMA config + trigger.
// --------------------------------------------------------------------

sim::Task
MemifDevice::serve_request(std::uint32_t idx, ExecContext ctx, bool irq_mode,
                           InFlightPtr *out, bool moderated)
{
    const sim::CostModel &cm = kernel_.costs();
    sim::Cpu &cpu = kernel_.cpu();
    mem::PhysicalMemory &pm = kernel_.phys();
    MovReq &req = region_.request(idx);
    sim::Tracer &tr = kernel_.tracer();
    tr.record(kernel_.eq().now(), TracePoint::kServeBegin, ctx, idx);

    // ---- 1. Prep: validate + locate every physical page -------------
    co_await cpu.busy(ctx, Op::kPrep,
                      cm.request_validate + cm.request_admin);
    vm::Vma *src_vma = nullptr;
    vm::Vma *dst_vma = nullptr;
    const MovError verr = validate(req, &src_vma, &dst_vma);
    if (verr != MovError::kNone) {
        ++stats_.validation_failures;
        co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
        notify(idx, MovStatus::kFailed, verr);
        co_return;
    }

    auto fl = std::make_shared<InFlight>();
    fl->req_idx = idx;
    fl->op = req.op;
    fl->asid = req.asid;
    fl->daemon = req.daemon != 0;
    fl->submit_cpu = req.submit_cpu;
    fl->vma = src_vma;
    fl->num_pages = req.num_pages;
    fl->order = vm::page_order(src_vma->page_size());
    fl->page_bytes = vm::page_bytes(src_vma->page_size());
    fl->total_bytes = fl->page_bytes * req.num_pages;
    fl->first_page = src_vma->page_index(req.src_base);

    // Strided geometry (validated above): the flight's page envelope
    // covers the whole pitched extent — pitch gaps included — so the
    // in-flight overlap checks stay conservative; total_bytes is the
    // payload only (rows * row_bytes), which is what the completion
    // controller, fallback copy, and byte counters care about.
    const bool strided = req.rows != 0;
    const bool gather = strided && req.gather_list != 0;
    std::uint64_t dst_span_bytes = fl->total_bytes;
    if (strided) {
        fl->total_bytes = std::uint64_t{req.rows} * req.row_bytes;
        dst_span_bytes = (std::uint64_t{req.rows} - 1) * req.dst_pitch +
                         req.row_bytes;
        if (gather) {
            // Gather rows may sit anywhere in the source vma; the
            // envelope is the vma itself.
            fl->first_page = 0;
            fl->num_pages =
                static_cast<std::uint32_t>(src_vma->num_pages());
        } else {
            const std::uint64_t src_extent =
                (std::uint64_t{req.rows} - 1) * req.src_pitch +
                req.row_bytes;
            fl->num_pages = static_cast<std::uint32_t>(
                src_vma->page_index(req.src_base + src_extent - 1) -
                fl->first_page + 1);
        }
    }

    if (config_.auto_migrate) {
        // Managed mode adds device-originated movs that the app cannot
        // see coming (and vice versa). Whichever of the two reaches
        // Prep second fails fast with kBusy: the daemon absorbs it
        // (cooldown), the app retries like any transient rejection.
        const bool daemon_only = !fl->daemon;
        bool busy = page_run_in_flight(src_vma, fl->first_page,
                                       fl->num_pages, daemon_only);
        if (!busy && dst_vma) {
            const std::uint64_t dpb = vm::page_bytes(dst_vma->page_size());
            busy = page_run_in_flight(
                dst_vma, dst_vma->page_index(req.dst_base),
                (dst_span_bytes + dpb - 1) / dpb, daemon_only);
        }
        if (busy) {
            co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
            notify(idx, MovStatus::kFailed, MovError::kBusy);
            co_return;
        }
    }

    // Page lookup: gang (§5.1) walks the real radix table, descending
    // once and stepping horizontally through adjacent PTEs; the
    // baseline pays a full root-to-leaf descent per page. The
    // destination walk of a replication uses the *destination* VMA's
    // geometry: its page size may differ from the source's, so the
    // same byte range spans a different number of its pages.
    struct LookupRegion {
        vm::VAddr base = 0;
        std::uint64_t pages = 0;
        vm::PageSize psize = vm::PageSize::k4K;
        const vm::Vma *vma = nullptr;
    };
    LookupRegion lookups[2] = {
        {src_vma->page_vaddr(fl->first_page), fl->num_pages,
         src_vma->page_size(), src_vma},
        {}};
    std::uint64_t lookup_regions = 1;
    if (req.op == MovOp::kReplicate) {
        const std::uint64_t dfirst = dst_vma->page_index(req.dst_base);
        const std::uint64_t dlast =
            dst_vma->page_index(req.dst_base + dst_span_bytes - 1);
        lookups[1] = {dst_vma->page_vaddr(dfirst), dlast - dfirst + 1,
                      dst_vma->page_size(), dst_vma};
        lookup_regions = 2;
    }
    sim::Duration lookup_cost = 0;
    vm::PageTable &table = request_as(req).page_table();
    XlateCache *const xcache = xlate_for(req.asid);
    // Source translations snapshotted from a gang-cache hit; validated
    // against the cache generation after the Prep charge below (any
    // invalidation in between falls back to live PTE reads).
    std::vector<vm::Pte> cached_src;
    std::uint64_t cached_src_gen = 0;
    // SVA-routed streams defer translation to consumption time (the
    // engine's per-descriptor gate): prep pays only the submission-side
    // probe, so large-SG walks no longer serialise before submit.
    // Gather stays pre-pinned: its rows carry no forward-marching
    // virtual span for the gate to re-resolve (a row may precede
    // src_base entirely), so it takes the classic translated path.
    const bool sva_stream =
        config_.sva_dma && req.op == MovOp::kReplicate && !gather;
    for (std::uint64_t r = 0; r < lookup_regions; ++r) {
        const LookupRegion &lr = lookups[r];
        if (sva_stream) {
            lookup_cost += cm.xlate_probe;
            continue;
        }
        std::uint64_t walk_pages = lr.pages;
        if (xcache) {
            // One hashed probe against the per-VMA generation, hit or
            // miss (the cache's only cost on the submission path).
            lookup_cost += cm.xlate_probe;
            const std::uint64_t first = lr.vma->page_index(lr.base);
            const XlateCache::Entry *e =
                xcache->lookup(lr.vma, first, lr.pages);
            if (e) {
                stats_.xlate_hits += lr.pages;
                if (r == 0) {
                    const std::uint64_t off = first - e->first_page;
                    cached_src.assign(
                        e->ptes.begin() + static_cast<std::ptrdiff_t>(off),
                        e->ptes.begin() +
                            static_cast<std::ptrdiff_t>(off + lr.pages));
                    cached_src_gen = xcache->generation();
                }
                continue;  // walk skipped entirely (§5.1 eliminated)
            }
            stats_.xlate_misses += lr.pages;
            // Miss: gang-prefetch the next translations while the walk
            // is down here anyway (clamped to the Vma).
            const std::uint64_t room = lr.vma->num_pages() - first;
            walk_pages = std::min<std::uint64_t>(
                lr.pages + config_.xlate_prefetch, room);
            stats_.xlate_gang_prefetched += walk_pages - lr.pages;
        }
        const vm::WalkCost wc =
            config_.gang_lookup
                ? table.gang_lookup(lr.base, walk_pages, lr.psize).cost
                : vm::PageTable::per_page_cost(walk_pages);
        lookup_cost += wc.full_descents * cm.page_walk_full +
                       wc.adjacent_steps * cm.page_walk_adjacent;
        if (xcache) {
            const std::uint64_t first = lr.vma->page_index(lr.base);
            std::vector<vm::Pte> ptes;
            ptes.reserve(walk_pages);
            for (std::uint64_t i = 0; i < walk_pages; ++i)
                ptes.push_back(lr.vma->pte(first + i));
            xcache->record(lr.vma, first, std::move(ptes));
        }
    }
    co_await cpu.busy(ctx, Op::kPrep, lookup_cost);
    tr.record(kernel_.eq().now(), TracePoint::kPrepDone, ctx, idx);

    const bool use_cached_src =
        !cached_src.empty() && xcache &&
        xcache->generation() == cached_src_gen;
    fl->old_pfns.reserve(req.num_pages);
    for (std::uint32_t i = 0; i < req.num_pages; ++i) {
        const vm::Pte pte = use_cached_src
                                ? cached_src[i]
                                : src_vma->pte(fl->first_page + i);
        if (!pte.present) {
            co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
            notify(idx, MovStatus::kFailed, MovError::kBadAddress);
            co_return;
        }
        if (pte.migration) {
            // Under race *prevention* an in-flight page is marked by
            // the migration bit while the PTE still names the old
            // frame; overlapping the move would double-manage it.
            co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
            notify(idx, MovStatus::kFailed, MovError::kBusy);
            co_return;
        }
        fl->old_pfns.push_back(pte.pfn);
        fl->old_ptes.push_back(pte.pack());
    }

    // Tiered memory: a migration whose endpoints are non-adjacent tiers
    // (SRAM ↔ far; the SLIT distances encode adjacency) is *chained*
    // through the middle tier. Decided before Remap because chained
    // flights install blocking migration PTEs (flight_prevents) rather
    // than semi-final ones. Mixed source residency falls back to the
    // classic single-hop path.
    mem::NodeId chain_mid = mem::kInvalidNode;
    if (config_.tiered_memory && kernel_.has_far_node() &&
        req.op == MovOp::kMigrate && !fl->old_pfns.empty()) {
        mem::NodeId src_node = pm.node_of(fl->old_pfns[0]);
        for (const mem::Pfn pfn : fl->old_pfns) {
            if (pm.node_of(pfn) != src_node) {
                src_node = mem::kInvalidNode;
                break;
            }
        }
        if (src_node != mem::kInvalidNode)
            chain_mid = chain_mid_node(src_node, req.dst_node);
        fl->chained = chain_mid != mem::kInvalidNode;
    }

    std::vector<dma::SgEntry> sg;
    sg.reserve(req.num_pages);

    if (req.op == MovOp::kMigrate) {
        // ---- 2. Remap (migration only) -------------------------------
        sim::Duration remap_cost = 0;
        fl->new_pfns.reserve(req.num_pages);
        bool exhausted = false;
        if (config_.bulk_alloc) {
            // One magazine pass for the whole gang: pops at list-op
            // cost, one allocate_bulk call per refill. All-or-nothing,
            // so the exhausted path has nothing to undo.
            exhausted = !magazine_alloc(req.dst_node, fl->order,
                                        req.num_pages, fl->new_pfns,
                                        remap_cost);
        } else {
            for (std::uint32_t i = 0; i < req.num_pages; ++i) {
                remap_cost += cm.page_alloc_time(fl->order);
                const mem::Pfn new_pfn =
                    kernel_.faults().should_fire(kFaultAllocFail)
                        ? mem::kInvalidPfn
                        : pm.allocate(req.dst_node, fl->order);
                if (new_pfn == mem::kInvalidPfn) {
                    exhausted = true;
                    break;
                }
                fl->new_pfns.push_back(new_pfn);
            }
        }
        if (exhausted) {
            for (const mem::Pfn pfn : fl->new_pfns) pm.free(pfn, fl->order);
            co_await cpu.busy(ctx, Op::kRemap, remap_cost);
            co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
            notify(idx, MovStatus::kFailed, MovError::kNoMemory);
            co_return;
        }
        // The doubled-frame window opens here: both the old and the new
        // copy exist until Release (or a rollback) frees one of them.
        // Charge it to the tenant's frame quota for the duration.
        charge_frames(fl);
        // Collect every mapping of every page from the reverse-map
        // chains (shared anonymous pages have several, §6.7) — the
        // caller's own mapping is forced to the front.
        fl->mappings.resize(req.num_pages);
        fl->cache_refs.resize(req.num_pages);
        bool busy = false;
        for (std::uint32_t i = 0; i < req.num_pages && !busy; ++i) {
            const mem::PageFrame &frame = pm.frame(fl->old_pfns[i]);
            if (frame.mapcount() == 0) {
                // The PTE points at a frame with no reverse mapping yet:
                // the page is mid-flight in another move. A protected
                // service rejects this cleanly (§4.2) — the application
                // overlapped moves on the same region.
                busy = true;
                break;
            }
            for (const mem::RmapEntry &re : frame.rmaps) {
                if (re.kind == mem::RmapKind::kPageCache) {
                    fl->cache_refs[i] = CacheRef{
                        static_cast<vm::FileBacking *>(re.owner),
                        re.vaddr};
                    continue;
                }
                auto *as = static_cast<vm::AddressSpace *>(re.owner);
                vm::Vma *mvma = as->find_vma(re.vaddr);
                MEMIF_ASSERT(mvma != nullptr, "stale rmap entry");
                Mapping m;
                m.as = as;
                m.vma = mvma;
                m.page_idx = mvma->page_index(re.vaddr);
                m.old_pte = mvma->pte(m.page_idx).pack();
                if (as == &request_as(req) && mvma == src_vma)
                    fl->mappings[i].insert(fl->mappings[i].begin(), m);
                else
                    fl->mappings[i].push_back(m);
            }
            if (frame.mapcount() > 1)
                remap_cost += cm.rmap_per_page * (frame.mapcount() - 1);
        }
        // The admission-gate collision check ran before Prep — several
        // suspension points ago. A racing mov (say a replication whose
        // destination overlaps this source run) may have registered
        // since without leaving any PTE mark for the capture loop to
        // see. Re-check the flight table here, in the same synchronous
        // stretch as the PTE stores and the registration below, so the
        // verdict cannot go stale before this flight becomes visible.
        if (!busy && config_.auto_migrate)
            busy = page_run_in_flight(src_vma, fl->first_page,
                                      req.num_pages, !fl->daemon);
        if (busy) {
            // Frees are uncharged here, as on the non-bulk path (the
            // reject happens before the Remap charge).
            uncharge_frames(fl);
            sim::Duration scratch = 0;
            for (const mem::Pfn pfn : fl->new_pfns)
                free_frames(pfn, fl->order, scratch);
            co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
            notify(idx, MovStatus::kFailed, MovError::kBusy);
            co_return;
        }
        // Batched shootdown: instead of broadcasting one invalidation
        // per PTE, remember the dirtied span per (address space, vma)
        // and issue a single ranged flush for each after all stores.
        // No access can interleave — the whole loop runs without a
        // suspension point and its time is charged afterwards, exactly
        // as the per-page variant's.
        FlushPlan flush_spans;
        for (std::uint32_t i = 0; i < req.num_pages; ++i) {
            for (const Mapping &m : fl->mappings[i]) {
                const vm::Pte old_pte = vm::Pte::unpack(m.old_pte);
                vm::Pte next = old_pte;
                if (flight_prevents(*fl)) {
                    // Linux-style: block accessors on the old mapping.
                    next.migration = true;
                } else {
                    // Semi-final PTE: points at the new page, young set
                    // so any CPU access is trapped (§5.2 Fig. 4b).
                    next.pfn = fl->new_pfns[i];
                    next.young = true;
                }
                m.vma->pte_slot(m.page_idx)
                    .store(next.pack(), std::memory_order_release);
                if (config_.batched_tlb_shootdown) {
                    remap_cost += cm.pte_update;
                    accumulate_flush(flush_spans, m.as, m.vma, m.page_idx);
                } else {
                    m.as->flush_tlb_page(m.vma->page_vaddr(m.page_idx),
                                         m.vma->page_size());
                    remap_cost += cm.pte_update + cm.tlb_flush_page;
                }
            }
            sg.push_back(dma::SgEntry{
                fl->old_pfns[i] << mem::kPageShift,
                fl->new_pfns[i] << mem::kPageShift, fl->page_bytes});
        }
        issue_flush_plan(flush_spans, remap_cost);
        // The semi-final/migration PTEs are live the moment the store
        // loop above ran — register the request in the same synchronous
        // stretch, before the Remap time is even charged. Were the
        // registration deferred past the charge (a suspension point), a
        // concurrent serve could pass its own collision re-check while
        // this flight is live but still invisible to the table.
        ++stats_.migrations;
        req.store_status(MovStatus::kInFlight);
        add_in_flight(fl);
        co_await cpu.busy(ctx, Op::kRemap, remap_cost);
        tr.record(kernel_.eq().now(), TracePoint::kRemapDone, ctx, idx);
    } else if (strided) {
        // ---- 2'. Strided replication -------------------------------
        // The generic PTE capture above saw zero pages (num_pages
        // carries the envelope, not a flat run), so rows resolve their
        // translations here. Each row is walked into segments split at
        // virtual page boundaries on BOTH sides — within a page the
        // backing 4 KB frames are contiguous, so a segment is one flat
        // physically contiguous run. Adjacent single-segment rows whose
        // physical starts line up with the pitches re-merge into true
        // 2D (A/B-count) descriptors; SVA streams skip the merge, as
        // the consumption-time gate needs the 1:1 slot <-> entry map.
        ++stats_.strided_requests;
        if (gather) ++stats_.gather_requests;
        stats_.strided_rows_moved += req.rows;

        // Gather: the per-row source addresses live in user memory;
        // validate pinned the list's span, each address is bounds-
        // checked against the source vma here.
        std::vector<vm::VAddr> row_srcs;
        if (gather) {
            vm::AddressSpace &as = request_as(req);
            row_srcs.reserve(req.rows);
            for (std::uint32_t r = 0; r < req.rows; ++r) {
                const std::byte *p =
                    as.translate(req.gather_list + std::uint64_t{r} * 8);
                if (!p) {
                    co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
                    notify(idx, MovStatus::kFailed,
                           MovError::kBadAddress);
                    co_return;
                }
                vm::VAddr row = 0;
                std::memcpy(&row, p, sizeof(row));
                if (row < src_vma->page_vaddr(0) ||
                    row + req.row_bytes > src_vma->end()) {
                    co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
                    notify(idx, MovStatus::kFailed,
                           MovError::kBadAddress);
                    co_return;
                }
                row_srcs.push_back(row);
            }
            // One list-sized read charged as prep work.
            co_await cpu.busy(ctx, Op::kPrep,
                              (std::uint64_t{req.rows} * 8 / 64 + 1) *
                                  cm.queue_op);
        }

        const std::uint64_t spb = fl->page_bytes;
        const std::uint64_t dpb = vm::page_bytes(dst_vma->page_size());
        for (std::uint32_t r = 0; r < req.rows; ++r) {
            const vm::VAddr row_src =
                gather ? row_srcs[r]
                       : req.src_base + std::uint64_t{r} * req.src_pitch;
            const vm::VAddr row_dst =
                req.dst_base + std::uint64_t{r} * req.dst_pitch;
            std::uint64_t done = 0;
            unsigned segs = 0;
            while (done < req.row_bytes) {
                const vm::VAddr sva = row_src + done;
                const vm::VAddr dva = row_dst + done;
                const std::uint64_t sidx = src_vma->page_index(sva);
                const std::uint64_t didx = dst_vma->page_index(dva);
                const vm::Pte spte = src_vma->pte(sidx);
                const vm::Pte dpte = dst_vma->pte(didx);
                if (!spte.present || !dpte.present) {
                    co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
                    notify(idx, MovStatus::kFailed,
                           MovError::kBadAddress);
                    co_return;
                }
                if (spte.migration || dpte.migration) {
                    // Same reject contract as the flat paths: a page
                    // mid-migration abandons its old frame at Release.
                    co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
                    notify(idx, MovStatus::kFailed, MovError::kBusy);
                    co_return;
                }
                const std::uint64_t s_off =
                    sva - src_vma->page_vaddr(sidx);
                const std::uint64_t d_off =
                    dva - dst_vma->page_vaddr(didx);
                const std::uint64_t seg = std::min(
                    {req.row_bytes - done, spb - s_off, dpb - d_off});
                const std::uint64_t spa =
                    (spte.pfn << mem::kPageShift) + s_off;
                const std::uint64_t dpa =
                    (dpte.pfn << mem::kPageShift) + d_off;
                dma::SgEntry *last = sg.empty() ? nullptr : &sg.back();
                if (!sva_stream && !gather && segs == 0 &&
                    seg == req.row_bytes && last &&
                    last->bytes == req.row_bytes &&
                    last->rows < 0xFFFF &&
                    spa == last->src_addr +
                               std::uint64_t{last->rows} * req.src_pitch &&
                    dpa == last->dst_addr +
                               std::uint64_t{last->rows} * req.dst_pitch) {
                    // Whole row, physically in line with the previous
                    // entry's pitch train: fold into its B-count.
                    ++last->rows;
                } else {
                    sg.push_back(dma::SgEntry{spa, dpa, seg, 1,
                                              req.src_pitch,
                                              req.dst_pitch});
                }
                if (sva_stream) {
                    XlateSlot s;
                    s.src_va = sva;
                    s.dst_va = dva;
                    s.bytes = seg;
                    fl->slots.push_back(s);
                }
                done += seg;
                ++segs;
            }
            if (segs > 1) ++stats_.strided_row_splits;
        }
        for (const dma::SgEntry &e : sg)
            if (e.strided()) ++stats_.strided_descriptors;
        if (sg.size() > dma::DescriptorRam::kEntries) {
            // Page-boundary splitting blew past the PaRAM; reject
            // rather than deadlock on a reservation that cannot fit.
            fl->slots.clear();
            co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
            notify(idx, MovStatus::kFailed, MovError::kBadRequest);
            co_return;
        }
        fl->dst_vma = dst_vma;
        ++stats_.replications;
        req.store_status(MovStatus::kInFlight);
        add_in_flight(fl);
    } else {
        // Replication: both regions already mapped; no VM management
        // and no race concern (§3). Chunks are emitted at the finer of
        // the two granularities — a coarse source page can span several
        // destination frames (and vice versa), and only within-page
        // spans are physically contiguous on both sides.
        const std::uint64_t dst_pb = vm::page_bytes(dst_vma->page_size());
        const std::uint64_t chunk =
            fl->page_bytes < dst_pb ? fl->page_bytes : dst_pb;
        for (std::uint64_t off = 0; off < fl->total_bytes; off += chunk) {
            const vm::VAddr dva = req.dst_base + off;
            const std::uint64_t didx = dst_vma->page_index(dva);
            const vm::Pte dst_pte = dst_vma->pte(didx);
            if (!dst_pte.present) {
                co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
                notify(idx, MovStatus::kFailed, MovError::kBadAddress);
                co_return;
            }
            if (dst_pte.migration) {
                // Destination page mid-migration: the PTE still names
                // the old frame, which the migrating flight abandons at
                // Release — bytes copied there would silently vanish.
                // Same reject contract as the source-side check above.
                co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
                notify(idx, MovStatus::kFailed, MovError::kBusy);
                co_return;
            }
            const std::uint64_t src_page = off / fl->page_bytes;
            const std::uint64_t src_off = off % fl->page_bytes;
            const std::uint64_t dst_off = dva - dst_vma->page_vaddr(didx);
            sg.push_back(dma::SgEntry{
                (fl->old_pfns[src_page] << mem::kPageShift) + src_off,
                (dst_pte.pfn << mem::kPageShift) + dst_off, chunk});
        }
        fl->dst_vma = dst_vma;
        ++stats_.replications;
        req.store_status(MovStatus::kInFlight);
        add_in_flight(fl);
    }

    if (fl->chained) {
        // Chained multi-hop move: the migration PTEs are live and the
        // record registered; hand the copy to the chain master instead
        // of one end-to-end DMA. The master keeps
        // tid == kInvalidTransfer, so the drain / reap / watchdog
        // machinery never claims it — each hop stage supervises
        // itself. fl->sg keeps the logical old→new list for
        // bookkeeping; the hops build their own per-batch lists. The
        // caller's @p out stays unset: there is no single transfer for
        // the kernel thread to poll on.
        fl->sg = std::move(sg);
        ++stats_.chained_migrations;
        std::erase_if(chain_tasks_, [](const sim::Task &t) {
            if (!t.done()) return false;
            t.rethrow_if_failed();
            return true;
        });
        chain_tasks_.push_back(run_chain(fl, chain_mid));
        tr.record(kernel_.eq().now(), TracePoint::kDmaStart, ctx, idx);
        co_return;
    }

    // ---- 3. DMA config + trigger -------------------------------------
    // Contiguous-run coalescing: the buddy allocator routinely hands
    // back adjacent frames, so physically contiguous old->new runs
    // collapse into one variable-size descriptor each. The list is
    // coalesced once, here — retries and the CPU fallback then replay
    // the coalesced SG verbatim.
    if (config_.sg_coalescing && !(strided && sva_stream)) {
        // (A strided SVA stream keeps its list verbatim: slots were
        // built 1:1 with the per-segment entries above, and the gate
        // depends on that alignment.)
        const std::size_t raw_entries = sg.size();
        sg = coalesce_sg(sg);
        stats_.descriptor_writes_saved += raw_entries - sg.size();
    }
    stats_.sg_entries_emitted += sg.size();
    // The SG list is kept on the in-flight record: retries and the CPU
    // fallback replay it after a transfer failure.
    fl->sg = std::move(sg);
    if (sva_stream && !strided) {
        // SVA routing: one virtual span per descriptor; the engine's
        // gate re-resolves each through the live page tables at
        // consumption time. Chunks were emitted at increasing region
        // offsets and coalescing preserves that order, so the spans
        // fall out of the cumulative byte offsets. (Strided streams
        // built their slots in the segment walk above — pitched spans
        // do not fall out of cumulative offsets.)
        fl->slots.reserve(fl->sg.size());
        std::uint64_t off = 0;
        for (const dma::SgEntry &e : fl->sg) {
            XlateSlot s;
            s.src_va = req.src_base + off;
            s.dst_va = req.dst_base + off;
            s.bytes = e.bytes;
            fl->slots.push_back(s);
            off += e.bytes;
        }
    }
    if (sva_stream) {
        if (config_.xlate_prefetch_ahead && !fl->slots.empty()) {
            // Walk only the first window synchronously; everything
            // beyond it is walked by asynchronous prefetch events that
            // run ahead of the consumption stream (two windows of
            // lead, sustained by the gate as the stream advances).
            const std::uint32_t w =
                std::max<std::uint32_t>(config_.prefetch_window, 1);
            const std::uint64_t hi =
                std::min<std::uint64_t>(w, fl->slots.size());
            const XlateSlot &tail = fl->slots[hi - 1];
            const std::uint64_t s0 = src_vma->page_index(req.src_base);
            const std::uint64_t sn =
                src_vma->page_index(tail.src_va + tail.bytes - 1) - s0 +
                1;
            const std::uint64_t d0 = dst_vma->page_index(req.dst_base);
            const std::uint64_t dn =
                dst_vma->page_index(tail.dst_va + tail.bytes - 1) - d0 +
                1;
            const sim::Duration sync_walk =
                2 * cm.page_walk_full +
                (sn - 1 + dn - 1) * cm.page_walk_adjacent;
            if (XlateCache *cache = xlate_for(req.asid)) {
                std::vector<vm::Pte> ptes;
                ptes.reserve(sn);
                for (std::uint64_t i = 0; i < sn; ++i)
                    ptes.push_back(src_vma->pte(s0 + i));
                cache->record(src_vma, s0, std::move(ptes));
                ptes.clear();
                ptes.reserve(dn);
                for (std::uint64_t i = 0; i < dn; ++i)
                    ptes.push_back(dst_vma->pte(d0 + i));
                cache->record(dst_vma, d0, std::move(ptes));
            }
            co_await cpu.busy(ctx, Op::kPrep, sync_walk);
            const sim::SimTime ready = kernel_.eq().now();
            for (std::uint64_t i = 0; i < hi; ++i) {
                fl->slots[i].ready_at = ready;
                fl->slots[i].prefetched = true;
            }
            stats_.stream_prefetch_issued += hi;
            issue_stream_prefetch(fl, 1);
            issue_stream_prefetch(fl, 2);
            fl->next_prefetch_batch = 3;
        }
    }
    fl->irq_mode = irq_mode;
    fl->moderated = moderated && irq_mode && config_.irq_moderation;
    // The PaRAM has 512 entries (Table 2); with several instances (or a
    // deep pipeline) in flight, wait until enough descriptors retire.
    // The gate is FIFO-fair: a PaRAM-sized request cannot starve behind
    // a stream of small ones slipping in front of it.
    co_await kernel_.dma().reserve_descriptors(
        static_cast<std::uint32_t>(fl->sg.size()), &fl->aborted,
        &stopping_);
    if (fl->aborted || stopping_) co_return;  // rolled back while waiting
    dma::DmaDriver::Prepared prepared = kernel_.dma().prepare(fl->sg);
    co_await cpu.busy(ctx, Op::kDmaConfig, prepared.cpu_time);
    tr.record(kernel_.eq().now(), TracePoint::kDmaConfigDone, ctx, idx);

    if (fl->aborted) {
        // A racing access rolled the migration back while we were
        // programming descriptors; nothing to trigger.
        kernel_.dma().abandon(std::move(prepared));
        co_return;
    }
    if (out) *out = fl;
    trigger_dma(fl, std::move(prepared), ctx);
    tr.record(kernel_.eq().now(), TracePoint::kDmaStart, ctx, idx);
}

// --------------------------------------------------------------------
// DMA trigger + error recovery.
// --------------------------------------------------------------------

void
MemifDevice::trigger_dma(const InFlightPtr &fl, dma::DmaDriver::Prepared p,
                         ExecContext ctx)
{
    (void)ctx;
    ++fl->dma_attempts;
    // A (re)started transfer is supervised afresh: a drain pass must
    // only skip transfers whose *current* attempt it retired.
    fl->completion_claimed = false;
    fl->dma_start_at = kernel_.eq().now();
    // The TC scheduler: with multi-TC dispatch the chain goes to the
    // controller that frees up first, so independent in-flight chains
    // run in parallel instead of serialising behind this instance's
    // assigned TC.
    const unsigned tc =
        config_.multi_tc_dispatch ? kernel_.dma().pick_tc() : tc_;
    ++stats_.tc_dispatches[tc];
    // SVA-routed stream: install the per-descriptor translation gate.
    // The engine then consumes the chain one entry at a time, asking
    // the gate before each copy; the weak capture keeps a retired
    // record from being revived by a late engine step.
    dma::XlateGate gate;
    if (!fl->slots.empty()) {
        std::weak_ptr<InFlight> weak = fl;
        gate = [this, weak](dma::TransferId, std::uint32_t idx,
                            dma::TransferDescriptor &d) {
            InFlightPtr alive = weak.lock();
            if (!alive) return dma::XlateVerdict{};
            return sva_gate_check(alive, idx, d);
        };
    }
    if (fl->irq_mode) {
        // Retries bypass moderation: once the recovery ladder is
        // involved, detection latency matters more than IRQ rate.
        const bool moderated = fl->moderated && fl->dma_attempts == 1;
        if (moderated) ++stats_.moderated_dispatches;
        fl->tid = kernel_.dma().start(
            std::move(p), /*irq_mode=*/true,
            [this, fl](dma::TransferId) {
                kernel_.spawn(on_dma_complete(fl));
            },
            tc, moderated, std::move(gate));
        fl->predicted =
            kernel_.dma().completion_time(fl->tid) - fl->dma_start_at;
        arm_watchdog(fl);
    } else {
        // Polled mode: the kernel thread supervises the transfer itself
        // (its timed wait doubles as the watchdog).
        fl->tid = kernel_.dma().start(std::move(p), /*irq_mode=*/false,
                                      nullptr, tc, /*moderated=*/false,
                                      std::move(gate));
        fl->predicted =
            kernel_.dma().completion_time(fl->tid) - fl->dma_start_at;
    }
}

void
MemifDevice::arm_watchdog(const InFlightPtr &fl)
{
    const sim::SimTime now = kernel_.eq().now();
    const sim::SimTime done = kernel_.dma().completion_time(fl->tid);
    const sim::Duration remaining = done > now ? done - now : 0;
    const auto padded = static_cast<sim::Duration>(
        static_cast<double>(remaining) * config_.watchdog_margin);
    const sim::SimTime deadline = now + padded + config_.watchdog_slack;
    // The event must not keep the device or the record alive, and the
    // normal completion path cancels it before it can run — a cancelled
    // event neither executes nor advances virtual time, so supervision
    // is free on the fault-less path.
    std::weak_ptr<InFlight> weak = fl;
    fl->watchdog_id = kernel_.eq().schedule_at(deadline, [this, weak] {
        InFlightPtr alive = weak.lock();
        if (!alive) return;
        alive->watchdog_id = sim::EventQueue::kInvalidEvent;
        kernel_.spawn(watchdog_expired(std::move(alive)));
    });
}

void
MemifDevice::disarm_watchdog(const InFlightPtr &fl)
{
    if (fl->watchdog_id == sim::EventQueue::kInvalidEvent) return;
    kernel_.eq().cancel(fl->watchdog_id);
    fl->watchdog_id = sim::EventQueue::kInvalidEvent;
}

sim::Task
MemifDevice::on_dma_complete(InFlightPtr fl)
{
    disarm_watchdog(fl);
    if (fl->aborted || stopping_) co_return;
    // Retired inside a sibling's drain pass (the claim happens before
    // any suspension point, so this check is race-free in the DES).
    if (fl->completion_claimed) co_return;
    if (kernel_.dma().status(fl->tid) == dma::TransferStatus::kError) {
        // CC error interrupt (EDMA3 EMR): recover. A translation-gate
        // fault (SVA walk error) is distinguished from a TC bus error
        // here, before any suspension — the engine purges the errored
        // record later and the stale id would read as faultless.
        const bool xfault = kernel_.dma().gate_faulted(fl->tid);
        // Claim the flight BEFORE charging interrupt time: the engine
        // purges the errored record during that suspension, after which
        // a drain/reap pass querying the stale id would read a clean
        // completion and release the request while the recovery ladder
        // is still on its way to retry it.
        fl->completion_claimed = true;
        const sim::CostModel &cm = kernel_.costs();
        ++stats_.dma_errors;
        kernel_.tracer().record(kernel_.eq().now(), TracePoint::kDmaError,
                                ExecContext::kIrq, fl->req_idx);
        co_await kernel_.cpu().busy(ExecContext::kIrq, Op::kSched,
                                    cm.irq_overhead);
        co_await handle_dma_failure(fl, ExecContext::kIrq,
                                    xfault ? MovError::kXlateFault
                                           : MovError::kDmaError);
        wake_kthread();
        co_return;
    }
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kDmaComplete,
                            ExecContext::kIrq, fl->req_idx);
    if (config_.completion_drain) {
        co_await drain_completions(std::move(fl));
        co_return;
    }
    co_await irq_complete(fl);
}

void
MemifDevice::observe_completion(const InFlightPtr &fl)
{
    // Only clean first attempts teach the controller: a retry's span
    // covers backoff and watchdog slack, not DMA service time.
    if (!config_.adaptive_polling || fl->dma_attempts != 1) return;
    completion_ctl_.observe(fl->total_bytes, fl->predicted,
                            kernel_.eq().now() - fl->dma_start_at);
}

sim::Task
MemifDevice::drain_completions(InFlightPtr first)
{
    const sim::CostModel &cm = kernel_.costs();
    sim::Cpu &cpu = kernel_.cpu();
    // Claim-and-collect. This runs synchronously — coroutines start
    // eagerly and the first co_await is below — so when a coalesced IRQ
    // fans out into N handler tasks, the first one claims every
    // completed transfer before the others get to their claimed-check.
    std::vector<InFlightPtr> batch;
    first->completion_claimed = true;
    batch.push_back(first);
    for (const InFlightPtr &fl : in_flight_) {
        if (fl == first || fl->completion_claimed || fl->aborted ||
            !fl->irq_mode)
            continue;
        if (fl->tid == dma::kInvalidTransfer ||
            !kernel_.dma().is_complete(fl->tid))
            continue;
        if (kernel_.dma().status(fl->tid) != dma::TransferStatus::kOk)
            continue;  // errors take their own recovery path
        if (region_.request(fl->req_idx).load_status() !=
            MovStatus::kInFlight)
            continue;
        fl->completion_claimed = true;
        // A claimed sibling whose delivery is still held on another
        // TC's timer must not cost a second (empty) IRQ when that
        // timer fires; drop the delivery and return its lease. The
        // reclaim is unconditional: if the sibling's interrupt was
        // lost (not merely held), no callback will ever return the
        // lease for us — and if the callback already ran, the lease
        // is back in the cache and reclaim is a no-op.
        kernel_.dma().discard_moderated(fl->tid);
        kernel_.dma().reclaim(fl->tid);
        disarm_watchdog(fl);
        batch.push_back(fl);
    }
    stats_.irq_completions += batch.size();
    if (batch.size() > 1) {
        ++stats_.completion_drains;
        stats_.drained_requests += batch.size() - 1;
    }
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kIrqEnter,
                            ExecContext::kIrq, first->req_idx);
    // One IRQ entry for the whole batch — that is the drain's point.
    co_await cpu.busy(ExecContext::kIrq, Op::kSched, cm.irq_overhead);
    for (const InFlightPtr &fl : batch) {
        observe_completion(fl);
        if (flight_prevents(*fl) && fl->op == MovOp::kMigrate) {
            // Release needs sleepable locks under race prevention; the
            // kernel thread drains these in one pass with a shared
            // ranged shootdown.
            pending_release_.push_back(fl);
        } else {
            co_await do_release(fl, ExecContext::kIrq);
        }
    }
    // ... and one wakeup charge.
    cpu.charge(ExecContext::kIrq, Op::kSched, cm.kthread_wakeup);
    wake_kthread();
}

sim::Task
MemifDevice::reap_moderated()
{
    // NAPI-style reaping: a running kernel thread retires completed
    // moderated transfers directly from the flight table, discarding
    // the held completion interrupt before it ever fires. The IRQ path
    // (and its wakeup) is then only paid as a backstop when the thread
    // was asleep at delivery time.
    std::vector<InFlightPtr> batch;
    for (const InFlightPtr &fl : in_flight_) {
        if (!fl->moderated || !fl->irq_mode || fl->completion_claimed ||
            fl->aborted)
            continue;
        if (fl->tid == dma::kInvalidTransfer ||
            !kernel_.dma().is_complete(fl->tid))
            continue;
        if (kernel_.dma().status(fl->tid) != dma::TransferStatus::kOk)
            continue;  // errors raise an unmoderated IRQ; not ours
        if (region_.request(fl->req_idx).load_status() !=
            MovStatus::kInFlight)
            continue;
        fl->completion_claimed = true;
        // The discarded callback was what returned the descriptor
        // lease; reclaim it ourselves (as the watchdog path does).
        kernel_.dma().discard_moderated(fl->tid);
        kernel_.dma().reclaim(fl->tid);
        disarm_watchdog(fl);
        batch.push_back(fl);
    }
    // One flight-table peek per pass, however many transfers it nets.
    kernel_.cpu().charge(ExecContext::kKthread, Op::kQueue,
                         kernel_.costs().queue_op);
    if (batch.empty()) co_return;
    stats_.reaped_completions += batch.size();
    if (batch.size() > 1) {
        ++stats_.completion_drains;
        stats_.drained_requests += batch.size() - 1;
    }
    FlushPlan plan;
    for (const InFlightPtr &fl : batch) {
        kernel_.tracer().record(kernel_.eq().now(),
                                TracePoint::kDmaComplete,
                                ExecContext::kKthread, fl->req_idx);
        observe_completion(fl);
        co_await do_release(fl, ExecContext::kKthread, &plan);
    }
    if (!plan.empty()) {
        sim::Duration flush_cost = 0;
        issue_flush_plan(plan, flush_cost);
        co_await kernel_.cpu().busy(ExecContext::kKthread, Op::kRelease,
                                    flush_cost);
    }
    // The shared shootdown above invalidated the just-released regions'
    // entries; re-record them now that the flushes are done.
    if (config_.batched_tlb_shootdown) {
        for (const InFlightPtr &fl : batch)
            if (flight_prevents(*fl) && fl->op == MovOp::kMigrate &&
                !fl->aborted)
                xlate_writethrough(fl, ExecContext::kKthread);
    }
}

sim::Task
MemifDevice::watchdog_expired(InFlightPtr fl)
{
    if (fl->aborted || stopping_) co_return;
    if (region_.request(fl->req_idx).load_status() != MovStatus::kInFlight)
        co_return;  // already resolved by some other path
    // Gate stalls (SVA demand walks, late prefetches) push a stepped
    // chain's completion later than the quote the deadline was armed
    // from. A transfer whose predicted completion still lies ahead is
    // progressing, not stuck: follow the new quote instead of firing.
    // Non-gated transfers never move their completion time, so this
    // re-arm is unreachable for them. A genuinely stuck transfer never
    // advances completes_at past its original quote, so the margin-
    // scaled deadline still catches it.
    if (!fl->slots.empty() && fl->tid != dma::kInvalidTransfer &&
        !kernel_.dma().is_complete(fl->tid) &&
        kernel_.dma().completion_time(fl->tid) > kernel_.eq().now()) {
        arm_watchdog(fl);
        co_return;
    }
    const sim::CostModel &cm = kernel_.costs();
    ++stats_.watchdog_timeouts;
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kWatchdogFire,
                            ExecContext::kIrq, fl->req_idx);
    co_await kernel_.cpu().busy(ExecContext::kIrq, Op::kSched,
                                cm.irq_overhead);
    // Re-validate after the suspension: while this handler was charging
    // interrupt time, a moderated flush, drain pass, or kthread reap
    // may have claimed the completion and resolved the request.
    if (fl->aborted || stopping_ || fl->completion_claimed ||
        region_.request(fl->req_idx).load_status() != MovStatus::kInFlight)
        co_return;

    if (kernel_.dma().is_complete(fl->tid)) {
        // The transfer finished but its completion interrupt was lost —
        // or (with a holdoff longer than the watchdog slack) is still
        // held by moderation. Either way this handler dispatches the
        // completion itself: drop any held delivery so the moderation
        // flush cannot dispatch it a second time, reclaim the
        // descriptor chain, then proceed as usual.
        kernel_.dma().discard_moderated(fl->tid);
        const dma::TransferStatus st = kernel_.dma().status(fl->tid);
        kernel_.dma().reclaim(fl->tid);
        if (st == dma::TransferStatus::kError) {
            ++stats_.dma_errors;
            kernel_.tracer().record(kernel_.eq().now(),
                                    TracePoint::kDmaError,
                                    ExecContext::kIrq, fl->req_idx);
            co_await handle_dma_failure(fl, ExecContext::kIrq,
                                        MovError::kDmaError);
            wake_kthread();
        } else {
            kernel_.tracer().record(kernel_.eq().now(),
                                    TracePoint::kDmaComplete,
                                    ExecContext::kIrq, fl->req_idx);
            co_await irq_complete(fl);
        }
        co_return;
    }
    // Genuinely stuck: drop the hung transfer and recover.
    kernel_.dma().cancel(fl->tid);
    co_await handle_dma_failure(fl, ExecContext::kIrq, MovError::kTimeout);
    wake_kthread();
}

sim::Task
MemifDevice::handle_dma_failure(InFlightPtr fl, ExecContext ctx,
                                MovError reason)
{
    if (fl->aborted) co_return;
    // The recovery ladder owns this flight until trigger_dma starts the
    // next attempt (which resets the claim). Without this, a drain or
    // reap pass scanning the flight table during the retry backoff can
    // mistake the dead transfer for a successful one — once the engine
    // purges the failed flight's record, is_complete()/status() on the
    // stale id report a clean completion — and release the request a
    // second time.
    fl->completion_claimed = true;
    if (fl->dma_attempts <= config_.dma_max_retries) {
        ++stats_.dma_retries;
        kernel_.tracer().record(kernel_.eq().now(), TracePoint::kDmaRetry,
                                ctx, fl->req_idx);
        const sim::Duration backoff = config_.dma_retry_backoff
                                      << (fl->dma_attempts - 1);
        co_await sim::Delay{kernel_.eq(), backoff};
        if (fl->aborted || stopping_) co_return;
        co_await restart_dma(fl, ctx);
        co_return;
    }
    if (config_.cpu_copy_fallback) {
        co_await fallback_copy(fl, ctx);
        co_return;
    }
    fail_unrecoverable(fl, ctx, reason);
}

sim::Task
MemifDevice::restart_dma(InFlightPtr fl, ExecContext ctx)
{
    co_await kernel_.dma().reserve_descriptors(
        static_cast<std::uint32_t>(fl->sg.size()), &fl->aborted,
        &stopping_);
    if (fl->aborted || stopping_) co_return;
    // Another path may have resolved the request while the retry was
    // backing off (it is no longer kInFlight then); restarting DMA for
    // it would leak the new chain and double-release the pages.
    if (region_.request(fl->req_idx).load_status() != MovStatus::kInFlight)
        co_return;
    // A retried SVA stream re-validates every prefetched translation:
    // the world may have moved while the chain was down.
    if (!fl->slots.empty()) revalidate_stream(fl);
    dma::DmaDriver::Prepared p = kernel_.dma().prepare(fl->sg);
    co_await kernel_.cpu().busy(ctx, Op::kDmaConfig, p.cpu_time);
    if (fl->aborted || stopping_) {
        kernel_.dma().abandon(std::move(p));
        co_return;
    }
    trigger_dma(fl, std::move(p), ctx);
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kDmaStart, ctx,
                            fl->req_idx);
}

sim::Task
MemifDevice::fallback_copy(InFlightPtr fl, ExecContext ctx)
{
    const sim::CostModel &cm = kernel_.costs();
    mem::PhysicalMemory &pm = kernel_.phys();
    ++stats_.fallback_copies;
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kFallbackCopy,
                            ctx, fl->req_idx);
    // The CPU replays the scatter-gather list byte-for-byte; correct
    // but slow — this is the graceful-degradation floor. An SVA
    // stream's list may hold translations from before the failure;
    // re-resolve it so the copy lands where the live tables point.
    if (!fl->slots.empty()) revalidate_stream(fl);
    const auto span_at = [&pm](std::uint64_t pa, std::uint64_t bytes) {
        const std::uint64_t off = pa & (mem::kPageSize - 1);
        return pm.span(pa >> mem::kPageShift, off + bytes) + off;
    };
    for (const dma::SgEntry &e : fl->sg) {
        if (!e.strided() && e.src_addr % mem::kPageSize == 0 &&
            e.dst_addr % mem::kPageSize == 0) {
            pm.copy(e.dst_addr >> mem::kPageShift,
                    e.src_addr >> mem::kPageShift, e.bytes);
            continue;
        }
        // Layout-preserving replay of a 2D (or sub-page) entry: the
        // CPU walks the exact row geometry the descriptor encodes, so
        // the fallback lands rows where the engine would have.
        for (std::uint32_t k = 0; k < e.rows; ++k)
            std::memcpy(span_at(e.dst_addr + k * e.dst_pitch, e.bytes),
                        span_at(e.src_addr + k * e.src_pitch, e.bytes),
                        e.bytes);
    }
    co_await kernel_.cpu().busy(ctx, Op::kCopy,
                                cm.cpu_copy_time(fl->total_bytes));
    if (flight_prevents(*fl) && fl->op == MovOp::kMigrate &&
        ctx == ExecContext::kIrq) {
        // Same constraint as irq_complete: Release needs sleepable
        // locks under race prevention.
        pending_release_.push_back(fl);
        wake_kthread();
        co_return;
    }
    co_await do_release(fl, ctx);
}

void
MemifDevice::fail_unrecoverable(const InFlightPtr &fl, ExecContext ctx,
                                MovError reason)
{
    if (fl->op == MovOp::kMigrate) {
        // Put the region back exactly as it was: old PTEs restored, new
        // frames freed. Error completions never touched the new frames,
        // so the old copy is still authoritative.
        rollback_remap(fl, ctx);
        ++stats_.rollbacks;
    }
    fl->aborted = true;
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kDmaFailed,
                            ctx, fl->req_idx);
    notify(fl->req_idx, MovStatus::kFailed, reason);
    remove_in_flight(fl);
}

void
MemifDevice::rollback_remap(const InFlightPtr &fl, ExecContext ctx)
{
    const sim::CostModel &cm = kernel_.costs();
    sim::Duration cost = 0;
    for (std::uint32_t i = 0; i < fl->num_pages; ++i) {
        for (const Mapping &m : fl->mappings[i]) {
            m.vma->pte_slot(m.page_idx)
                .store(m.old_pte, std::memory_order_release);
            m.as->flush_tlb_page(m.vma->page_vaddr(m.page_idx),
                                 m.vma->page_size());
            cost += cm.pte_update + cm.tlb_flush_page;
        }
        // Batch-return the never-used new frames (magazine when the
        // bulk-alloc lever is on, buddy otherwise).
        free_frames(fl->new_pfns[i], fl->order, cost);
    }
    // The rolled-back migration returns its transient frame charge.
    uncharge_frames(fl);
    kernel_.cpu().charge(ctx, Op::kRelease, cost);
    // Under race prevention (or a daemon flight) accessors may be
    // blocked on the migration PTEs we just replaced; let them
    // re-check.
    if (flight_prevents(*fl))
        kernel_.migration_waitq().notify_all();
}

// --------------------------------------------------------------------
// Ops 4-5: Release + Notify.
// --------------------------------------------------------------------

sim::Task
MemifDevice::do_release(InFlightPtr fl, ExecContext ctx,
                        FlushPlan *shared_plan)
{
    const sim::CostModel &cm = kernel_.costs();
    sim::Cpu &cpu = kernel_.cpu();
    mem::PhysicalMemory &pm = kernel_.phys();
    bool raced = false;
    if (fl->op == MovOp::kMigrate) {
        sim::Duration release_cost = 0;
        for (std::uint32_t i = 0; i < fl->num_pages; ++i) {
            bool page_raced = false;
            for (const Mapping &m : fl->mappings[i]) {
                vm::PteSlot &slot = m.vma->pte_slot(m.page_idx);
                if (flight_prevents(*fl)) {
                    // Swap the migration PTE for the final one;
                    // accessors blocked on it can proceed afterwards.
                    vm::Pte final_pte = vm::Pte::unpack(m.old_pte);
                    final_pte.pfn = fl->new_pfns[i];
                    final_pte.migration = false;
                    slot.store(final_pte.pack(),
                               std::memory_order_release);
                    if (shared_plan && config_.batched_tlb_shootdown) {
                        // Completion drain: the caller issues one
                        // ranged shootdown covering the whole batch of
                        // released requests.
                        accumulate_flush(*shared_plan, m.as, m.vma,
                                         m.page_idx);
                        release_cost += cm.pte_update;
                    } else {
                        m.as->flush_tlb_page(
                            m.vma->page_vaddr(m.page_idx),
                            m.vma->page_size());
                        release_cost += cm.pte_update + cm.tlb_flush_page;
                    }
                } else {
                    // Proceed-and-fail: one CAS clears young; failure
                    // means some access beat us to the semi-final PTE
                    // (§5.2). No TLB flush is needed — the semi-final
                    // entry never entered the TLB.
                    vm::Pte semi = vm::Pte::unpack(m.old_pte);
                    semi.pfn = fl->new_pfns[i];
                    semi.young = true;
                    vm::Pte final_pte = semi;
                    final_pte.young = false;
                    std::uint64_t expected = semi.pack();
                    const bool ok = slot.compare_exchange_strong(
                        expected, final_pte.pack(),
                        std::memory_order_acq_rel);
                    release_cost += cm.pte_cas;
                    if (!ok) {
                        const vm::Pte seen = vm::Pte::unpack(expected);
                        const bool benign =
                            config_.race_policy == RacePolicy::kRecover &&
                            seen.present &&
                            seen.pfn == fl->new_pfns[i] && !seen.young;
                        // In recover mode an access *after* the copy
                        // landed is harmless: the new page was already
                        // authoritative.
                        if (!benign) page_raced = true;
                    }
                    // The CAS rewrites a live PTE with no TLB flush, so
                    // no invalidate hook fires — but a concurrent gang
                    // walk may have cached the semi-final translation
                    // (prefetch reaches into neighbouring requests'
                    // pages). Drop any such entry; the write-through
                    // below re-records the final one for our own range.
                    invalidate_xlate(m.vma, m.page_idx, 1);
                }
                // The new frame inherits this reverse mapping.
                pm.frame(fl->new_pfns[i])
                    .add_rmap(m.as, m.vma->page_vaddr(m.page_idx));
                pm.frame(fl->old_pfns[i])
                    .remove_rmap(m.as, m.vma->page_vaddr(m.page_idx));
            }
            if (page_raced) {
                raced = true;
                ++stats_.races_detected;
            }
            // File-backed pages: the page cache follows the frame.
            if (fl->cache_refs[i].backing) {
                const CacheRef &cr = fl->cache_refs[i];
                cr.backing->relocate(cr.file_page, fl->new_pfns[i]);
                pm.frame(fl->new_pfns[i])
                    .add_rmap(cr.backing, cr.file_page,
                              mem::RmapKind::kPageCache);
                pm.frame(fl->old_pfns[i])
                    .remove_rmap(cr.backing, cr.file_page,
                                 mem::RmapKind::kPageCache);
            }
            // Old page (now unmapped everywhere) back to the buddy —
            // or parked in its magazine under the bulk-alloc lever.
            free_frames(fl->old_pfns[i], fl->order, release_cost);
        }
        // The doubled-frame window closed with the old frames freed.
        uncharge_frames(fl);
        co_await cpu.busy(ctx, Op::kRelease, release_cost);
        if (flight_prevents(*fl))
            kernel_.migration_waitq().notify_all();
        if (raced)
            kernel_.tracer().record(kernel_.eq().now(),
                                    TracePoint::kRaceDetected, ctx,
                                    fl->req_idx);
        // Write-through: re-record the final translations (skipped when
        // raced, or when a shared flush plan will invalidate them again
        // after this return — those callers re-record themselves).
        const bool flush_deferred = shared_plan != nullptr &&
                                    config_.batched_tlb_shootdown &&
                                    flight_prevents(*fl);
        if (!raced && !flush_deferred) xlate_writethrough(fl, ctx);
    }
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kReleaseDone,
                            ctx, fl->req_idx);

    // ---- 5. Notify ----------------------------------------------------
    co_await cpu.busy(ctx, Op::kNotify, cm.queue_op);
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kNotifyDone,
                            ctx, fl->req_idx);
    stats_.pages_moved += fl->num_pages;
    stats_.bytes_moved += fl->total_bytes;
    if (config_.multi_tenant && !raced) {
        if (Tenant *t = tenant_for(fl->asid)) {
            t->stats.pages_moved += fl->num_pages;
            t->stats.bytes_moved += fl->total_bytes;
        }
    }
    if (raced)
        notify(fl->req_idx, MovStatus::kRaceDetected, MovError::kRace);
    else
        notify(fl->req_idx, MovStatus::kDone, MovError::kNone);

    remove_in_flight(fl);
}

// --------------------------------------------------------------------
// Interrupt path (§5.4).
// --------------------------------------------------------------------

sim::Task
MemifDevice::irq_complete(InFlightPtr fl)
{
    const sim::CostModel &cm = kernel_.costs();
    sim::Cpu &cpu = kernel_.cpu();
    // Take ownership before the first suspension so a concurrent drain
    // or kthread reap pass cannot dispatch this completion a second
    // time (the watchdog's lost-IRQ branch arrives here with the
    // transfer still unclaimed).
    fl->completion_claimed = true;
    ++stats_.irq_completions;
    observe_completion(fl);
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kIrqEnter,
                            ExecContext::kIrq, fl->req_idx);
    co_await cpu.busy(ExecContext::kIrq, Op::kSched, cm.irq_overhead);

    if (flight_prevents(*fl) && fl->op == MovOp::kMigrate) {
        // Modifying the address space under race prevention needs
        // sleepable locks — forbidden here. Defer to the kernel thread.
        pending_release_.push_back(fl);
    } else {
        co_await do_release(fl, ExecContext::kIrq);
    }
    cpu.charge(ExecContext::kIrq, Op::kSched, cm.kthread_wakeup);
    wake_kthread();
}

// --------------------------------------------------------------------
// Kernel-thread path (§5.4).
// --------------------------------------------------------------------

void
MemifDevice::wake_kthread()
{
    // Count every notify. The old code only counted notifies that found
    // the thread asleep, silently dropping notify-while-draining from
    // the wakeup totals the benches report.
    ++stats_.kthread_wakeups;
    if (kthread_sleeping_)
        ++stats_.wakeups_from_sleep;
    else
        ++stats_.notifies_while_running;
    kthread_wq_.notify_one();
}

sim::Task
MemifDevice::kthread_loop()
{
    os::Kernel &k = kernel_;
    const sim::CostModel &cm = k.costs();
    sim::Cpu &cpu = k.cpu();
    // With reaping active the thread masks the moderated completion
    // IRQ for as long as it is awake (NAPI): held completions are
    // retired by reap_moderated() below, and the coalesced IRQ is only
    // paid as a wakeup backstop when a completion lands while the
    // thread sleeps.
    const bool reaping =
        config_.irq_moderation && config_.completion_drain;
    if (reaping) {
        k.dma().mask_moderation();
        kthread_masked_ = true;
    }

    for (;;) {
        if (stopping_) {
            if (kthread_masked_) {
                k.dma().unmask_moderation();
                kthread_masked_ = false;
            }
            co_return;
        }

        // Moderated completions whose held IRQ has not fired yet are
        // retired inline while the worker is running anyway.
        if (reaping && !in_flight_.empty()) co_await reap_moderated();

        // Releases the interrupt handler deferred (kPrevent only).
        if (!pending_release_.empty()) {
            if (config_.completion_drain) {
                // Drain every deferred release in one pass, sharing a
                // single batched ranged shootdown across requests.
                std::vector<InFlightPtr> batch;
                batch.swap(pending_release_);
                FlushPlan plan;
                for (const InFlightPtr &fl : batch)
                    co_await do_release(fl, ExecContext::kKthread, &plan);
                if (!plan.empty()) {
                    sim::Duration flush_cost = 0;
                    issue_flush_plan(plan, flush_cost);
                    co_await cpu.busy(ExecContext::kKthread, Op::kRelease,
                                      flush_cost);
                }
                // The shared shootdown invalidated the batch's cache
                // entries; re-record now that the flushes are issued.
                if (config_.batched_tlb_shootdown) {
                    for (const InFlightPtr &fl : batch)
                        if (flight_prevents(*fl) &&
                            fl->op == MovOp::kMigrate && !fl->aborted)
                            xlate_writethrough(fl, ExecContext::kKthread);
                }
                if (batch.size() > 1) {
                    ++stats_.completion_drains;
                    stats_.drained_requests += batch.size() - 1;
                }
                continue;
            }
            InFlightPtr fl = pending_release_.front();
            pending_release_.erase(pending_release_.begin());
            co_await do_release(fl, ExecContext::kKthread);
            continue;
        }

        // Serve the oldest queued request: submission first, then any
        // requests still parked in staging (the queue is red, so the
        // kernel owns them). Under multi_tenant the deposited order is
        // re-ranked by the weighted round-robin instead.
        std::uint32_t next = 0;
        // Under multi_tenant the engine backlog is bounded: the WRR
        // can only arbitrate work that is still in the pending lists,
        // so overload must queue there, not in the FIFO TC queues.
        // Completion interrupts wake the loop as slots free up.
        const bool gated = config_.multi_tenant &&
                           config_.tenant_dispatch_window != 0 &&
                           in_flight_.size() >=
                               config_.tenant_dispatch_window;
        const bool got =
            !gated && next_request(&next, /*take_staging=*/true);
        cpu.charge(ExecContext::kKthread, Op::kQueue, cm.queue_op);

        if (got) {
            if (!region_.valid_index(next)) {
                MEMIF_WARN("memif: dropping corrupt request index %u",
                           next);
                continue;
            }
            MovReq &req = region_.request(next);
            const vm::Vma *vma = request_as(req).find_vma(req.src_base);
            const std::uint64_t bytes =
                vma ? req.num_pages * vm::page_bytes(vma->page_size()) : 0;
            // Completion-mode decision. The static rule is the paper's:
            // poll below the threshold — and never under multi-TC
            // dispatch, where parking the worker on THIS transfer would
            // stall the pipeline that wants to configure request N+1
            // while N is still copying. The adaptive controller
            // replaces the static rule when enabled, using the backlog
            // (queued + in-flight requests) as the coalescing signal;
            // it only ever polls with an empty backlog, so the
            // pipeline-stall concern cannot arise.
            CompletionMode mode;
            if (config_.adaptive_polling && bytes > 0) {
                std::size_t backlog =
                    in_flight_.size() +
                    region_.submission_queue().size_unsafe() +
                    region_.staging_queue().size_unsafe();
                for (std::uint32_t r = 0; r < region_.num_rings(); ++r)
                    backlog += region_.ring_queue(r).size_unsafe();
                mode = completion_ctl_.choose(bytes, backlog);
                if (mode == CompletionMode::kModerated &&
                    !config_.irq_moderation)
                    mode = CompletionMode::kInterrupt;
                if (mode == CompletionMode::kPolled)
                    ++stats_.adaptive_polled;
                else if (mode == CompletionMode::kModerated)
                    ++stats_.adaptive_moderated;
                else
                    ++stats_.adaptive_irq;
            } else {
                const bool below =
                    !config_.multi_tc_dispatch && bytes > 0 &&
                    bytes < config_.poll_threshold_bytes;
                mode = below ? CompletionMode::kPolled
                       : config_.irq_moderation
                           ? CompletionMode::kModerated
                           : CompletionMode::kInterrupt;
            }
            const bool polled = mode == CompletionMode::kPolled;
            InFlightPtr fl;
            co_await serve_request(next, ExecContext::kKthread,
                                   /*irq_mode=*/!polled, &fl,
                                   mode == CompletionMode::kModerated);
            if (polled && fl) {
                // §5.4: small request — interrupt off, sleep until the
                // predicted completion, then Release/Notify here. The
                // timed wait doubles as the watchdog: waking with the
                // transfer still incomplete means it is stuck, and the
                // loop runs the recovery ladder until the request
                // reaches a terminal status.
                k.tracer().record(k.eq().now(), TracePoint::kPolledWait,
                                  ExecContext::kKthread, fl->req_idx);
                while (!fl->aborted &&
                       region_.request(fl->req_idx).load_status() ==
                           MovStatus::kInFlight) {
                    const sim::SimTime done =
                        k.dma().completion_time(fl->tid);
                    const sim::SimTime now = k.eq().now();
                    if (done > now) {
                        // Sleep in whole scheduler ticks: the worker
                        // cannot wake at an arbitrary instant (§5.4
                        // "sleeps shortly").
                        const sim::Duration tick = cm.kthread_poll_interval;
                        const sim::Duration wait =
                            (done - now + tick - 1) / tick * tick;
                        co_await sim::Delay{k.eq(), wait};
                    } else {
                        co_await sim::Yield{k.eq()};
                    }
                    if (fl->aborted) break;
                    if (!fl->slots.empty() &&
                        !k.dma().is_complete(fl->tid) &&
                        k.dma().completion_time(fl->tid) > k.eq().now()) {
                        // Gate stalls pushed an SVA stream's completion
                        // out past the quote this wait slept on; it is
                        // progressing, not stuck — sleep to the new
                        // quote. (Stuck transfers never advance it.)
                        continue;
                    }
                    if (!k.dma().is_complete(fl->tid)) {
                        // Stuck: the predicted completion time passed
                        // with the transfer still running.
                        ++stats_.watchdog_timeouts;
                        k.tracer().record(k.eq().now(),
                                          TracePoint::kWatchdogFire,
                                          ExecContext::kKthread,
                                          fl->req_idx);
                        k.dma().cancel(fl->tid);
                        co_await handle_dma_failure(
                            fl, ExecContext::kKthread, MovError::kTimeout);
                        continue;
                    }
                    if (k.dma().status(fl->tid) ==
                        dma::TransferStatus::kError) {
                        const bool xfault =
                            k.dma().gate_faulted(fl->tid);
                        ++stats_.dma_errors;
                        k.tracer().record(k.eq().now(),
                                          TracePoint::kDmaError,
                                          ExecContext::kKthread,
                                          fl->req_idx);
                        co_await handle_dma_failure(
                            fl, ExecContext::kKthread,
                            xfault ? MovError::kXlateFault
                                   : MovError::kDmaError);
                        continue;
                    }
                    k.tracer().record(k.eq().now(),
                                      TracePoint::kDmaComplete,
                                      ExecContext::kKthread, fl->req_idx);
                    ++stats_.polled_completions;
                    observe_completion(fl);
                    co_await do_release(fl, ExecContext::kKthread);
                }
            }
            continue;
        }

        // Both queues drained. Moderated transfers still copying will
        // complete without a (prompt) interrupt; instead of parking and
        // paying the backstop IRQ + wakeup, nap until the earliest
        // predicted completion and reap it at the top of the loop.
        if (config_.irq_moderation && config_.completion_drain) {
            sim::SimTime earliest = 0;
            bool have = false;
            for (const InFlightPtr &fl : in_flight_) {
                if (!fl->moderated || fl->completion_claimed ||
                    fl->aborted || fl->tid == dma::kInvalidTransfer)
                    continue;
                const sim::SimTime done = k.dma().completion_time(fl->tid);
                if (done > k.eq().now() && (!have || done < earliest)) {
                    earliest = done;
                    have = true;
                }
            }
            if (have) {
                // Whole scheduler ticks, as in the polled path: the
                // worker cannot wake at an arbitrary instant. A stuck
                // transfer is not napped on forever — once its
                // predicted completion is in the past the loop falls
                // through to a real sleep and the watchdog takes over.
                const sim::Duration tick = cm.kthread_poll_interval;
                const sim::Duration wait =
                    (earliest - k.eq().now() + tick - 1) / tick * tick;
                co_await sim::Delay{k.eq(), wait};
                continue;
            }
        }

        // Both queues drained. If nothing is in flight either, hand
        // flush responsibility back to the application (color -> blue)
        // and sleep; otherwise sleep until an interrupt wakes us.
        if (in_flight_.empty() && pending_release_.empty()) {
            const int old = region_.staging_queue().set_color(
                lockfree::Color::kBlue);
            cpu.charge(ExecContext::kKthread, Op::kQueue, cm.queue_op);
            if (old == lockfree::kColorBusy) continue;  // raced: retry
            // Hand per-ring flush responsibility back too. A busy
            // result means a depositor slipped a request in — rescan.
            bool ring_raced = false;
            for (std::uint32_t r = 0; r < region_.num_rings(); ++r) {
                const int ro = region_.ring_queue(r).set_color(
                    lockfree::Color::kBlue);
                cpu.charge(ExecContext::kKthread, Op::kQueue, cm.queue_op);
                if (ro == lockfree::kColorBusy) ring_raced = true;
            }
            if (ring_raced) continue;
        }
        k.tracer().record(k.eq().now(), TracePoint::kKthreadSleep,
                          ExecContext::kKthread);
        // Housekeeping before sleeping: drop finished-transfer records.
        kernel_.dma_engine().purge_finished();
        // Re-enable the moderated IRQ across the sleep — it is the
        // wakeup mechanism while nobody is reaping.
        if (kthread_masked_) {
            k.dma().unmask_moderation();
            kthread_masked_ = false;
        }
        kthread_sleeping_ = true;
        co_await kthread_wq_.wait();
        kthread_sleeping_ = false;
        if (reaping) {
            k.dma().mask_moderation();
            kthread_masked_ = true;
        }
        co_await cpu.busy(ExecContext::kKthread, Op::kSched,
                          cm.kthread_wakeup);
        k.tracer().record(k.eq().now(), TracePoint::kKthreadWake,
                          ExecContext::kKthread);
    }
}

// --------------------------------------------------------------------
// Syscall path: ioctl(MOV_ONE) (§4.2, §5.4).
// --------------------------------------------------------------------

sim::Task
MemifDevice::ioctl_mov_one()
{
    ++stats_.kick_ioctls;
    co_await kernel_.syscall_crossing();
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kKickIoctl,
                            ExecContext::kSyscall);
    std::uint32_t next = 0;
    // The syscall fast path must honour the dispatch window too, or a
    // kicking tenant could push past the WRR's standing queue. Leave
    // the request deposited; the worker serves it as slots free up.
    const bool gated = config_.multi_tenant &&
                       config_.tenant_dispatch_window != 0 &&
                       in_flight_.size() >=
                           config_.tenant_dispatch_window;
    const bool got = !gated && next_request(&next, /*take_staging=*/false);
    kernel_.cpu().charge(ExecContext::kSyscall, Op::kQueue,
                         kernel_.costs().queue_op);
    if (!got) {
        // Nothing queued (the kernel thread may have raced us to it),
        // or the dispatch window is full; make sure the worker is
        // running and return.
        wake_kthread();
        co_return;
    }
    if (!region_.valid_index(next)) {
        MEMIF_WARN("memif: dropping corrupt request index %u", next);
        co_return;
    }
    // Serve exactly one request in the caller's context, interrupt-
    // driven, and return as soon as the DMA is started.
    InFlightPtr fl;
    co_await serve_request(next, ExecContext::kSyscall,
                           /*irq_mode=*/true, &fl,
                           /*moderated=*/config_.irq_moderation);
    // If no transfer started (validation/resource failure), there is no
    // completion interrupt coming: hand the rest to the worker now.
    if (!fl) wake_kthread();
}

// --------------------------------------------------------------------
// Proceed-and-recover (§5.2 alternative).
// --------------------------------------------------------------------

bool
MemifDevice::handle_young_fault(vm::Vma &vma, std::uint64_t page_idx)
{
    // Managed mode: a trap on a scanner-armed page is the activity
    // signal a parked scanner waits for. Never resolve anything here —
    // sampling stays off the fault path; the default young-clear CAS
    // in touch() proceeds as if the hook were absent.
    wake_scanner();
    if (config_.race_policy != RacePolicy::kRecover) return false;
    for (const InFlightPtr &fl : in_flight_) {
        if (fl->op != MovOp::kMigrate || fl->aborted) continue;
        // Blocking-PTE flights (daemon movs) have no semi-final entry
        // a young fault could race; accessors wait instead.
        if (flight_prevents(*fl)) continue;
        bool hit = false;
        for (const auto &page_mappings : fl->mappings) {
            for (const Mapping &m : page_mappings) {
                if (m.vma == &vma && m.page_idx == page_idx) {
                    hit = true;
                    break;
                }
            }
            if (hit) break;
        }
        if (!hit) continue;
        if (fl->tid != dma::kInvalidTransfer &&
            kernel_.dma().is_complete(fl->tid))
            return false;  // data already landed; default path is safe
        abort_migration(fl);
        return true;
    }
    return false;
}

void
MemifDevice::abort_migration(const InFlightPtr &fl)
{
    // Drop the outstanding DMA (if it was ever triggered), restore
    // every old mapping, release the new pages, and notify the
    // application of the abort. Runs synchronously in the faulting
    // thread's context.
    if (fl->tid != dma::kInvalidTransfer) {
        disarm_watchdog(fl);
        kernel_.dma().cancel(fl->tid);
    }
    rollback_remap(fl, ExecContext::kSyscall);
    fl->aborted = true;
    ++stats_.migrations_aborted;
    kernel_.tracer().record(kernel_.eq().now(), TracePoint::kAborted,
                            ExecContext::kSyscall, fl->req_idx);
    notify(fl->req_idx, MovStatus::kAborted, MovError::kAborted);
    remove_in_flight(fl);
}

}  // namespace memif::core
