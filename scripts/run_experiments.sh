#!/usr/bin/env bash
# Rebuild everything, run the full test suite and every figure/table
# harness, and collect the outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build --output-on-failure | tee results/tests.txt

for b in build/bench/*; do
    name=$(basename "$b")
    echo "== $name =="
    "$b" | tee "results/$name.txt"
done

for e in build/examples/*; do
    name=$(basename "$e")
    echo "== example: $name =="
    "$e" | tee "results/example_$name.txt"
done

echo "All outputs collected under results/."
