#include "sim/trace.h"

namespace memif::sim {

std::string_view
to_string(TracePoint p)
{
    switch (p) {
      case TracePoint::kSubmit: return "submit";
      case TracePoint::kKickIoctl: return "ioctl(MOV_ONE)";
      case TracePoint::kServeBegin: return "serve-begin";
      case TracePoint::kPrepDone: return "1:prep";
      case TracePoint::kRemapDone: return "2:remap";
      case TracePoint::kDmaConfigDone: return "3:dma-cfg";
      case TracePoint::kDmaStart: return "dma-start";
      case TracePoint::kDmaComplete: return "dma-complete";
      case TracePoint::kIrqEnter: return "irq-enter";
      case TracePoint::kReleaseDone: return "4:release";
      case TracePoint::kNotifyDone: return "5:notify";
      case TracePoint::kKthreadWake: return "kthread-wake";
      case TracePoint::kKthreadSleep: return "kthread-sleep";
      case TracePoint::kPolledWait: return "polled-wait";
      case TracePoint::kAborted: return "aborted";
      case TracePoint::kRaceDetected: return "race-detected";
      case TracePoint::kDmaError: return "dma-error";
      case TracePoint::kWatchdogFire: return "watchdog-fire";
      case TracePoint::kDmaRetry: return "dma-retry";
      case TracePoint::kFallbackCopy: return "fallback-copy";
      case TracePoint::kDmaFailed: return "dma-failed";
      default: return "?";
    }
}

void
Tracer::dump(std::FILE *out) const
{
    for (const TraceRecord &r : records_) {
        if (r.req == TraceRecord::kNoTraceReq) {
            std::fprintf(out, "t=%10.2fus [%-7s] %s\n", to_us(r.time),
                         std::string(to_string(r.ctx)).c_str(),
                         std::string(to_string(r.point)).c_str());
        } else {
            std::fprintf(out, "t=%10.2fus [%-7s] %-14s req=%u\n",
                         to_us(r.time),
                         std::string(to_string(r.ctx)).c_str(),
                         std::string(to_string(r.point)).c_str(), r.req);
        }
    }
}

}  // namespace memif::sim
