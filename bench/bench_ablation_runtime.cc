/**
 * @file
 * Runtime-geometry ablation for the §6.6 mini runtime: how the number
 * and size of the fast-memory prefetch buffers affect STREAM.triad
 * throughput.
 *
 * Expected shape: one buffer cannot overlap fill with compute (double
 * buffering is the knee); beyond a few buffers returns diminish; very
 * small buffers drown in per-request overhead, very large ones crowd
 * the 6 MB SRAM and lengthen the fill critical path.
 */
#include <cstdio>

#include "harness.h"
#include "runtime/streaming_runtime.h"
#include "sim/random.h"
#include "workloads/stream.h"

namespace {

constexpr std::uint64_t kTotal = 48ull << 20;

memif::vm::VAddr
make_stream(memif::bench::TestBed &bed)
{
    const memif::vm::VAddr src =
        bed.proc.mmap(kTotal, memif::vm::PageSize::k4K);
    memif::sim::Rng rng(11);
    std::vector<double> page(4096 / sizeof(double));
    for (std::uint64_t off = 0; off < kTotal; off += 4096) {
        for (double &v : page) v = rng.next_double();
        bed.proc.as().write(src + off, page.data(), 4096);
    }
    return src;
}

}  // namespace

int
main()
{
    using namespace memif::bench;
    namespace rt = memif::runtime;

    header("Runtime ablation: prefetch-buffer geometry (STREAM.triad MB/s)");

    memif::workloads::StreamTriad triad;
    rt::StreamRunResult direct;
    {
        TestBed bed;
        const memif::vm::VAddr src = make_stream(bed);
        rt::StreamingRuntime runtime(bed.kernel, bed.proc, bed.dev);
        bed.kernel.spawn(runtime.run_direct(src, kTotal, triad, &direct));
        bed.kernel.run();
    }
    std::printf("in-place (slow memory) baseline: %.1f MB/s\n\n",
                direct.throughput_mb_per_sec());

    std::printf("%8s %12s | %10s %8s %11s\n", "buffers", "buffer_kb",
                "MB/s", "gain", "slow-chunks");
    rule();
    struct Geometry {
        std::uint32_t buffers;
        std::uint64_t bytes;
    };
    const Geometry sweep[] = {
        {1, 1u << 20}, {2, 1u << 20}, {3, 1u << 20}, {4, 1u << 20},
        {5, 1u << 20}, {4, 256u << 10}, {4, 512u << 10}, {2, 2u << 20},
        {8, 512u << 10},
    };
    for (const Geometry &g : sweep) {
        // A fresh machine per geometry: identical starting state.
        TestBed bed;
        const memif::vm::VAddr src = make_stream(bed);
        rt::StreamingRuntime runtime(
            bed.kernel, bed.proc, bed.dev,
            rt::RuntimeConfig{.num_buffers = g.buffers,
                              .buffer_bytes = g.bytes,
                              .page_size = memif::vm::PageSize::k4K});
        rt::StreamRunResult res;
        bed.kernel.spawn(runtime.run(src, kTotal, triad, &res));
        bed.kernel.run();
        std::printf("%8u %12llu | %10.1f %+6.1f%% %11llu\n", g.buffers,
                    static_cast<unsigned long long>(g.bytes >> 10),
                    res.throughput_mb_per_sec(),
                    100.0 * (res.throughput_mb_per_sec() /
                                 direct.throughput_mb_per_sec() -
                             1.0),
                    static_cast<unsigned long long>(res.chunks_from_slow));
    }
    rule();
    std::printf("\npaper config (4 x 1 MB) sits on the plateau: enough\n"
                "buffers to overlap fill with compute, small enough to\n"
                "leave SRAM headroom.\n");
    return 0;
}
