#include "harness.h"

#include <algorithm>
#include <cstdlib>

#include "sim/log.h"

namespace memif::bench {

namespace {

/** Cap on simultaneously fast-resident bytes (leave SRAM headroom). */
constexpr std::uint64_t kFastBudget = 5ull << 20;

std::uint32_t
window_for(std::uint64_t request_bytes, std::uint32_t num_requests)
{
    std::uint64_t w = kFastBudget / request_bytes;
    if (w < 1) w = 1;
    if (w > 8) w = 8;
    if (w > num_requests) w = num_requests;
    return static_cast<std::uint32_t>(w);
}

}  // namespace

StreamOutcome
run_memif_stream(TestBed &bed, const RequestPlan &plan)
{
    const std::uint64_t pb = vm::page_bytes(plan.page_size);
    const std::uint64_t req_bytes = pb * plan.pages_per_request;
    const std::uint32_t window =
        plan.window_override
            ? std::min(plan.window_override, plan.num_requests)
            : window_for(req_bytes, plan.num_requests);

    struct Region {
        vm::VAddr src = 0;   // slow-node home (migration ping-pongs it)
        vm::VAddr dst = 0;   // replication destination (fast node)
        bool on_fast = false;
    };
    std::vector<Region> regions(window);
    for (Region &r : regions) {
        r.src = bed.proc.mmap(req_bytes, plan.page_size);
        MEMIF_ASSERT(r.src != 0, "slow node exhausted");
        if (plan.op == core::MovOp::kReplicate) {
            r.dst = bed.proc.mmap(req_bytes, plan.page_size,
                                  bed.kernel.fast_node());
            MEMIF_ASSERT(r.dst != 0, "fast node exhausted");
        }
    }

    StreamOutcome outcome;
    outcome.timings.resize(plan.num_requests);
    const sim::CpuAccounting before = bed.kernel.cpu().snapshot();
    const sim::SimTime t0 = bed.kernel.eq().now();

    auto submit_one = [&](std::uint32_t region_idx,
                          std::uint32_t req_no) -> sim::Task {
        Region &r = regions[region_idx];
        const std::uint32_t idx = bed.user.alloc_request();
        MEMIF_ASSERT(idx != core::kNoRequest);
        core::MovReq &req = bed.user.request(idx);
        req.op = plan.op;
        req.src_base = r.src;
        req.num_pages = plan.pages_per_request;
        req.user_tag = (static_cast<std::uint64_t>(req_no) << 32) |
                       region_idx;
        if (plan.op == core::MovOp::kReplicate) {
            req.dst_base = r.dst;
        } else {
            req.dst_node = r.on_fast ? bed.kernel.slow_node()
                                     : bed.kernel.fast_node();
            r.on_fast = !r.on_fast;
        }
        co_await bed.user.submit(idx);
    };

    auto driver = [&]() -> sim::Task {
        std::uint32_t submitted = 0;
        std::uint32_t completed = 0;
        for (std::uint32_t w = 0; w < window && submitted < plan.num_requests;
             ++w) {
            co_await submit_one(w, submitted);
            ++submitted;
        }
        while (completed < plan.num_requests) {
            const std::uint32_t idx = bed.user.retrieve_completed();
            if (idx == core::kNoRequest) {
                co_await bed.user.poll();
                continue;
            }
            core::MovReq &req = bed.user.request(idx);
            MEMIF_ASSERT(req.succeeded(), "bench request failed (%u)",
                         static_cast<unsigned>(req.error));
            const auto req_no =
                static_cast<std::uint32_t>(req.user_tag >> 32);
            const auto region_idx =
                static_cast<std::uint32_t>(req.user_tag & 0xFFFFFFFF);
            outcome.timings[req_no] =
                RequestTiming{req.submit_time, req.complete_time};
            bed.user.free_request(idx);
            ++completed;
            if (submitted < plan.num_requests) {
                co_await submit_one(region_idx, submitted);
                ++submitted;
            }
        }
    };
    auto task = driver();
    bed.kernel.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "memif stream did not finish");

    outcome.elapsed = bed.kernel.eq().now() - t0;
    outcome.bytes = req_bytes * plan.num_requests;
    outcome.cpu = bed.kernel.cpu().snapshot().since(before);
    for (Region &r : regions) {
        bed.proc.as().munmap(r.src);
        if (r.dst) bed.proc.as().munmap(r.dst);
    }
    return outcome;
}

StreamOutcome
run_linux_stream(TestBed &bed, const RequestPlan &plan,
                 std::uint32_t requests_per_syscall)
{
    MEMIF_ASSERT(plan.op == core::MovOp::kMigrate,
                 "Linux page migration only migrates");
    const std::uint64_t pb = vm::page_bytes(plan.page_size);
    const std::uint64_t group_pages =
        std::uint64_t{plan.pages_per_request} * requests_per_syscall;
    MEMIF_ASSERT(group_pages * pb <= kFastBudget,
                 "batch exceeds fast-node capacity");

    const vm::VAddr base = bed.proc.mmap(group_pages * pb, plan.page_size);
    MEMIF_ASSERT(base != 0, "slow node exhausted");

    StreamOutcome outcome;
    outcome.timings.resize(plan.num_requests);
    const sim::CpuAccounting before = bed.kernel.cpu().snapshot();
    const sim::SimTime t0 = bed.kernel.eq().now();

    auto driver = [&]() -> sim::Task {
        bool to_fast = true;
        std::uint32_t done = 0;
        while (done < plan.num_requests) {
            const std::uint32_t in_group = std::min<std::uint32_t>(
                requests_per_syscall, plan.num_requests - done);
            os::MigrationResult res;
            co_await os::migrate_pages_sync(
                bed.proc, base,
                std::uint64_t{plan.pages_per_request} * in_group,
                to_fast ? bed.kernel.fast_node() : bed.kernel.slow_node(),
                &res);
            MEMIF_ASSERT(res.pages_failed == 0, "linux stream failed pages");
            // Every request batched into this syscall completes when the
            // syscall returns (the Fig. 7 latency behaviour).
            for (std::uint32_t i = 0; i < in_group; ++i)
                outcome.timings[done + i] =
                    RequestTiming{t0, res.completed_at};
            done += in_group;
            to_fast = !to_fast;
        }
    };
    auto task = driver();
    bed.kernel.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "linux stream did not finish");

    outcome.elapsed = bed.kernel.eq().now() - t0;
    outcome.bytes = std::uint64_t{plan.pages_per_request} * pb *
                    plan.num_requests;
    outcome.cpu = bed.kernel.cpu().snapshot().since(before);
    bed.proc.as().munmap(base);
    return outcome;
}

bool
quick_mode()
{
    const char *v = std::getenv("MEMIF_BENCH_QUICK");
    return v != nullptr && *v != '\0' && *v != '0';
}

void
BenchReport::add(const std::string &series, double x, double y)
{
    for (Series &s : series_) {
        if (s.name == series) {
            s.points.emplace_back(x, y);
            return;
        }
    }
    series_.push_back(Series{series, {{x, y}}});
}

void
BenchReport::write()
{
    if (written_) return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) return;  // read-only cwd: stdout tables remain the record
    std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"series\": {", name_.c_str());
    for (std::size_t i = 0; i < series_.size(); ++i) {
        const Series &s = series_[i];
        std::fprintf(f, "%s\n    \"%s\": [", i ? "," : "", s.name.c_str());
        for (std::size_t j = 0; j < s.points.size(); ++j)
            std::fprintf(f, "%s[%.17g, %.17g]", j ? ", " : "",
                         s.points[j].first, s.points[j].second);
        std::fprintf(f, "]");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    written_ = true;
}

void
rule(char c, int width)
{
    for (int i = 0; i < width; ++i) std::putchar(c);
    std::putchar('\n');
}

void
header(const std::string &title)
{
    rule('=');
    std::printf("%s\n", title.c_str());
    rule('=');
}

}  // namespace memif::bench
