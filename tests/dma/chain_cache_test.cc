/**
 * @file
 * Tests for descriptor-chain reuse (§5.3): reuse accounting, splits,
 * evictions, and the disabled (baseline) mode.
 */
#include "dma/chain_cache.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dma/descriptor.h"

namespace memif::dma {
namespace {

TEST(ChainCache, FirstAcquisitionIsAllFresh)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    const ChainLease lease = cache.acquire(16, 4096);
    EXPECT_EQ(lease.size(), 16u);
    EXPECT_EQ(lease.reused, 0u);
    EXPECT_EQ(lease.fresh(), 16u);
    EXPECT_EQ(lease.chunk_bytes, 4096u);
    // All indices distinct and in range.
    std::set<DescIndex> uniq(lease.descs.begin(), lease.descs.end());
    EXPECT_EQ(uniq.size(), 16u);
    for (DescIndex d : lease.descs) EXPECT_LT(d, ram.size());
}

TEST(ChainCache, ReleasedChainIsReusedForSameSize)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease a = cache.acquire(32, 4096);
    const std::vector<DescIndex> descs = a.descs;
    cache.release(std::move(a));
    const ChainLease b = cache.acquire(32, 4096);
    EXPECT_EQ(b.reused, 32u);
    EXPECT_EQ(b.descs, descs);
    EXPECT_EQ(cache.stats().descs_reused, 32u);
}

TEST(ChainCache, PartialReuseSplitsChain)
{
    // "it can reuse part of or the whole chain in the next transfer"
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease a = cache.acquire(32, 4096);
    cache.release(std::move(a));
    const ChainLease b = cache.acquire(8, 4096);
    EXPECT_EQ(b.reused, 8u);
    // The remaining 24 stay cached for the next lease.
    const ChainLease c = cache.acquire(24, 4096);
    EXPECT_EQ(c.reused, 24u);
}

TEST(ChainCache, GrowingLeaseMixesReusedAndFresh)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease a = cache.acquire(8, 4096);
    cache.release(std::move(a));
    const ChainLease b = cache.acquire(12, 4096);
    EXPECT_EQ(b.reused, 8u);
    EXPECT_EQ(b.fresh(), 4u);
}

TEST(ChainCache, DifferentChunkSizesDoNotReuse)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease a = cache.acquire(8, 4096);
    cache.release(std::move(a));
    const ChainLease b = cache.acquire(8, 65536);
    EXPECT_EQ(b.reused, 0u);
}

TEST(ChainCache, EvictsOtherSizesWhenRamFull)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    // Fill the whole PaRAM with cached 4 KB chains (hold them all
    // simultaneously so each acquisition is forced to be fresh).
    std::vector<ChainLease> held;
    for (int i = 0; i < 4; ++i) held.push_back(cache.acquire(128, 4096));
    for (ChainLease &l : held) cache.release(std::move(l));
    // A 64 KB lease finds no free entries: eviction must kick in.
    const ChainLease big = cache.acquire(256, 65536);
    EXPECT_EQ(big.size(), 256u);
    EXPECT_EQ(big.reused, 0u);
    EXPECT_GE(cache.stats().evictions, 2u);
}

TEST(ChainCache, DisabledModeNeverReuses)
{
    DescriptorRam ram;
    ChainCache cache(ram, /*enabled=*/false);
    for (int round = 0; round < 10; ++round) {
        ChainLease l = cache.acquire(64, 4096);
        EXPECT_EQ(l.reused, 0u);
        cache.release(std::move(l));
    }
    EXPECT_EQ(cache.stats().descs_reused, 0u);
    EXPECT_EQ(cache.stats().descs_fresh, 640u);
}

TEST(ChainCache, ShapedLeaseIsFreshFirstTime)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    const ChainLease lease = cache.acquire_shape({4096, 16384, 4096});
    EXPECT_EQ(lease.size(), 3u);
    EXPECT_EQ(lease.reused, 0u);
    EXPECT_EQ(lease.chunk_sizes, (std::vector<std::uint64_t>{4096, 16384,
                                                             4096}));
    std::set<DescIndex> uniq(lease.descs.begin(), lease.descs.end());
    EXPECT_EQ(uniq.size(), 3u);
}

TEST(ChainCache, ExactShapeIsReusedWhole)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease a = cache.acquire_shape({8192, 4096, 65536});
    const std::vector<DescIndex> descs = a.descs;
    cache.release(std::move(a));
    const ChainLease b = cache.acquire_shape({8192, 4096, 65536});
    EXPECT_EQ(b.reused, 3u);
    EXPECT_EQ(b.descs, descs);
}

TEST(ChainCache, DifferentShapeDoesNotReuse)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease a = cache.acquire_shape({8192, 4096});
    cache.release(std::move(a));
    // Same multiset of sizes, different order: per-position sizes would
    // not match, so the cached chain must not be handed back.
    const ChainLease b = cache.acquire_shape({4096, 8192});
    EXPECT_EQ(b.reused, 0u);
}

TEST(ChainCache, UniformShapeSharesThePerSizePool)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease a = cache.acquire_shape({4096, 4096, 4096, 4096});
    // Delegated to the uniform pool: keyed by chunk_bytes, not shape.
    EXPECT_EQ(a.chunk_bytes, 4096u);
    EXPECT_TRUE(a.chunk_sizes.empty());
    cache.release(std::move(a));
    const ChainLease b = cache.acquire(4, 4096);
    EXPECT_EQ(b.reused, 4u);
}

TEST(ChainCache, ShapedChainsAreEvictable)
{
    DescriptorRam ram;
    ChainCache cache(ram);
    // Fill the whole PaRAM with cached non-uniform chains.
    std::vector<ChainLease> held;
    const std::uint32_t half = ram.size() / 2;
    for (std::uint32_t i = 0; i < half; ++i) {
        std::vector<std::uint64_t> shape{4096 + 4096 * (i % 3), 8192};
        held.push_back(cache.acquire_shape(std::move(shape)));
    }
    for (ChainLease &l : held) cache.release(std::move(l));
    EXPECT_EQ(cache.available(), ram.size());
    // A full-PaRAM uniform lease must be able to evict them all.
    const ChainLease big = cache.acquire(ram.size(), 4096);
    EXPECT_EQ(big.size(), ram.size());
    EXPECT_GE(cache.stats().evictions, half);
}

TEST(ChainCacheDeath, OversizedLeasePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    DescriptorRam ram;
    ChainCache cache(ram);
    EXPECT_DEATH(cache.acquire(ram.size() + 1, 4096), "out of range");
}

TEST(ChainCacheDeath, ExhaustionByOutstandingLeasesPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    DescriptorRam ram;
    ChainCache cache(ram);
    ChainLease held = cache.acquire(ram.size(), 4096);  // hold everything
    EXPECT_EQ(cache.available(), 0u);
    EXPECT_DEATH(cache.acquire(1, 4096), "capacity");
    cache.release(std::move(held));
    EXPECT_EQ(cache.available(), ram.size());
}

}  // namespace
}  // namespace memif::dma
