/**
 * @file
 * FastMemoryManager — the paper's §6.7 future work, implemented: the
 * memif prototype "cannot automatically swap out fast memory"; this
 * extension manages the scarce fast node as an LRU cache of
 * application regions.
 *
 * Applications (or a compiler/runtime, per the paper's vision) ask for
 * regions to become fast-resident before a compute phase. The manager
 * migrates them in with memif and transparently evicts the least
 * recently used residents back to slow memory when the fast budget is
 * exceeded. All movement is asynchronous memif migration under the
 * hood; callers await residency.
 */
#pragma once

#include <cstdint>
#include <list>
#include <memory>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/task.h"
#include "vm/vma.h"

namespace memif::runtime {

/** Manager statistics. */
struct FastMemoryStats {
    std::uint64_t residency_requests = 0;
    std::uint64_t hits = 0;            ///< already resident
    std::uint64_t admissions = 0;      ///< migrated in
    std::uint64_t evictions = 0;       ///< migrated out to make room
    std::uint64_t failures = 0;        ///< could not admit
    std::uint64_t bytes_migrated = 0;  ///< both directions
};

class FastMemoryManager {
  public:
    /**
     * @param budget_bytes fast-node bytes the manager may occupy
     *        (leave headroom for other fast-memory users).
     *
     * Opens a dedicated memif instance for its own traffic so it never
     * steals the application's completion notifications.
     */
    FastMemoryManager(os::Kernel &kernel, os::Process &proc,
                      std::uint64_t budget_bytes = 5ull << 20);

    std::uint64_t budget() const { return budget_; }
    std::uint64_t resident_bytes() const { return resident_bytes_; }
    const FastMemoryStats &stats() const { return stats_; }

    /**
     * Make [va, va+bytes) fast-resident, evicting LRU residents as
     * needed. @p va must be page-aligned within one Vma. Coroutine;
     * *ok reports success (false: bigger than the budget, unmapped, or
     * migration failure).
     */
    sim::Task make_resident(vm::VAddr va, std::uint64_t bytes, bool *ok);

    /** LRU touch — call when computing over a resident region. */
    void touch_region(vm::VAddr va);

    /** Explicitly send a resident region back to slow memory. */
    sim::Task evict(vm::VAddr va, bool *ok);

    /** True if the region starting at @p va is currently resident. */
    bool is_resident(vm::VAddr va) const;

  private:
    struct Region {
        vm::VAddr va = 0;
        std::uint64_t bytes = 0;
        std::uint64_t last_use = 0;  ///< LRU stamp
    };

    /** Migrate [va, va+bytes) to @p node and wait; *ok = all succeeded. */
    sim::Task migrate_and_wait(vm::VAddr va, std::uint64_t bytes,
                               mem::NodeId node, bool *ok);

    std::list<Region>::iterator find_region(vm::VAddr va);

    os::Kernel &kernel_;
    os::Process &proc_;
    core::MemifDevice device_;  ///< dedicated instance
    core::MemifUser user_;
    std::uint64_t budget_;
    std::uint64_t resident_bytes_ = 0;
    std::uint64_t lru_clock_ = 0;
    std::list<Region> residents_;
    FastMemoryStats stats_;
};

}  // namespace memif::runtime
