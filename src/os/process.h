/**
 * @file
 * Simulated processes: an address space plus the user-side access
 * behaviours the experiments need (touching memory with migration-PTE
 * blocking, streaming reads/writes with modelled time).
 */
#pragma once

#include <cstdint>

#include "sim/task.h"
#include "vm/addr_space.h"
#include "vm/vma.h"

namespace memif::os {

class Kernel;

/** Result of a simulated, possibly blocking, memory access. */
struct TouchOutcome {
    vm::AccessResult result = vm::AccessResult::kOk;
    /** Times the accessor was parked on a migration PTE. */
    std::uint32_t blocked = 0;
    /** Lazy migrations this access performed (paper §7 related work). */
    std::uint32_t lazy_migrations = 0;
};

class Process {
  public:
    Process(Kernel &kernel, std::uint32_t pid);
    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    std::uint32_t pid() const { return pid_; }
    Kernel &kernel() { return kernel_; }
    vm::AddressSpace &as() { return as_; }

    /** mmap in this process, defaulting to the slow (CPU-local) node. */
    vm::VAddr mmap(std::uint64_t bytes, vm::PageSize psize);
    vm::VAddr mmap(std::uint64_t bytes, vm::PageSize psize,
                   mem::NodeId node);

    /**
     * Simulate one CPU access at @p va. Blocks (in virtual time) while
     * the page carries a migration PTE, exactly like a Linux thread
     * caught by baseline migration; charges the access-flag fault cost
     * when it clears a young bit.
     *
     * The final outcome is written to @p out (never kBlockedOnMigration).
     */
    sim::Task touch(vm::VAddr va, bool write, TouchOutcome *out);

    /**
     * Model the CPU streaming over @p bytes at @p va (reading and/or
     * writing, bandwidth-bound on the backing node). Returns via
     * @p out_duration the virtual time charged.
     */
    sim::Task stream_compute(vm::VAddr va, std::uint64_t bytes,
                             double bytes_per_sec_at_full_speed,
                             sim::Duration *out_duration);

  private:
    Kernel &kernel_;
    std::uint32_t pid_;
    vm::AddressSpace as_;
};

}  // namespace memif::os
