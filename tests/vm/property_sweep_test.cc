/**
 * @file
 * Parameterized property sweeps for the vm layer: the page table's
 * gang lookup agrees with single-slot lookup for every (page size,
 * alignment, count) combination, and the TLB behaves like a true LRU
 * at any capacity.
 */
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "vm/page_table.h"
#include "vm/tlb.h"

namespace memif::vm {
namespace {

using GangParam = std::tuple<PageSize, std::uint64_t /*start page*/,
                             std::uint64_t /*count*/>;

class GangSweep : public ::testing::TestWithParam<GangParam> {};

TEST_P(GangSweep, GangAgreesWithSlotLookups)
{
    const auto [psize, start_page, count] = GetParam();
    const std::uint64_t pb = page_bytes(psize);
    const VAddr start = start_page * pb;

    PageTable pt;
    for (std::uint64_t i = 0; i < count; ++i)
        pt.slot(start + i * pb, psize, /*create=*/true);

    const PageTable::Gang g = pt.gang_lookup(start, count, psize);
    ASSERT_EQ(g.slots.size(), count);
    for (std::uint64_t i = 0; i < count; ++i) {
        EXPECT_EQ(g.slots[i],
                  pt.slot(start + i * pb, psize, /*create=*/false))
            << "page " << i;
    }
    // Every page is reached exactly once, by descent or by stepping.
    EXPECT_EQ(g.cost.full_descents + g.cost.adjacent_steps, count);
    EXPECT_GE(g.cost.full_descents, 1u);
    // Gang lookup never descends more often than the per-page baseline.
    EXPECT_LE(g.cost.full_descents,
              PageTable::per_page_cost(count).full_descents);
}

INSTANTIATE_TEST_SUITE_P(
    Small, GangSweep,
    ::testing::Combine(::testing::Values(PageSize::k4K),
                       ::testing::Values(0ull, 7ull, 500ull, 511ull,
                                         1024ull),
                       ::testing::Values(1ull, 13ull, 512ull, 600ull)));

INSTANTIATE_TEST_SUITE_P(
    Medium, GangSweep,
    ::testing::Combine(::testing::Values(PageSize::k64K),
                       ::testing::Values(0ull, 31ull, 65ull),
                       ::testing::Values(1ull, 32ull, 64ull)));

INSTANTIATE_TEST_SUITE_P(
    Large, GangSweep,
    ::testing::Combine(::testing::Values(PageSize::k2M),
                       ::testing::Values(0ull, 511ull),
                       ::testing::Values(1ull, 4ull, 16ull)));

class TlbCapacity : public ::testing::TestWithParam<unsigned> {};

TEST_P(TlbCapacity, BehavesAsTrueLru)
{
    const unsigned capacity = GetParam();
    Tlb tlb(capacity);

    // Fill to capacity, touch in a known order, then overflow by one:
    // exactly the least recently used entry must be gone.
    for (unsigned i = 0; i < capacity; ++i)
        tlb.fill(i * 4096ull, PageSize::k4K);
    EXPECT_EQ(tlb.size(), capacity);
    // Touch everything except entry 0 so it becomes LRU.
    for (unsigned i = 1; i < capacity; ++i)
        EXPECT_TRUE(tlb.lookup(i * 4096ull, PageSize::k4K));
    tlb.fill(0x9000'0000ull, PageSize::k4K);
    EXPECT_FALSE(tlb.contains(0, PageSize::k4K));
    for (unsigned i = 1; i < capacity; ++i)
        EXPECT_TRUE(tlb.contains(i * 4096ull, PageSize::k4K)) << i;
    EXPECT_TRUE(tlb.contains(0x9000'0000ull, PageSize::k4K));
    EXPECT_EQ(tlb.size(), capacity);
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST_P(TlbCapacity, FlushAllThenRefill)
{
    const unsigned capacity = GetParam();
    Tlb tlb(capacity);
    for (unsigned round = 0; round < 3; ++round) {
        for (unsigned i = 0; i < capacity; ++i)
            tlb.fill(i * 4096ull, PageSize::k4K);
        EXPECT_EQ(tlb.size(), capacity);
        tlb.flush_all();
        EXPECT_EQ(tlb.size(), 0u);
    }
    EXPECT_EQ(tlb.stats().fills, 3ull * capacity);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbCapacity,
                         ::testing::Values(1u, 2u, 7u, 64u, 512u));

}  // namespace
}  // namespace memif::vm
