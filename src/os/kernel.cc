#include "os/kernel.h"

#include <algorithm>

#include "os/process.h"
#include "sim/log.h"

namespace memif::os {

Kernel::Kernel(KernelConfig cfg)
    : cfg_(cfg),
      cpu_(eq_, cfg.num_cores),
      migration_waitq_(eq_)
{
    cpu_.set_single_driver_core(cfg_.single_driver_core);
    auto ids = mem::KeystoneMemory::build(pm_, cfg_.slow_bytes);
    slow_node_ = ids.first;
    fast_node_ = ids.second;
    faults_.seed(cfg_.fault_seed);
    engine_ =
        std::make_unique<dma::Edma3Engine>(eq_, pm_, cfg_.costs, &faults_);
    dma_driver_ = std::make_unique<dma::DmaDriver>(*engine_, cfg_.costs,
                                                   cfg_.dma_options);
}

Kernel::~Kernel() = default;

Process &
Kernel::create_process()
{
    const auto pid = static_cast<std::uint32_t>(processes_.size() + 1);
    processes_.push_back(std::make_unique<Process>(*this, pid));
    return *processes_.back();
}

void
Kernel::spawn(sim::Task task)
{
    reap_finished_tasks();
    if (!task.done()) tasks_.push_back(std::move(task));
    // else: finished synchronously; rethrow any stored error and drop.
    else
        task.rethrow_if_failed();
}

void
Kernel::reap_finished_tasks()
{
    std::erase_if(tasks_, [](const sim::Task &t) {
        if (!t.done()) return false;
        t.rethrow_if_failed();
        return true;
    });
}

}  // namespace memif::os
