#include "check/workload.h"

#include <algorithm>

#include "dma/descriptor.h"
#include "sim/random.h"

namespace memif::check {
namespace {

/** Page-claim ledger enforcing the disjointness invariant: between
 *  barriers, no two valid requests may operate on the same page. */
class Claims {
  public:
    explicit Claims(const std::vector<RegionSpec> &regions)
    {
        for (const RegionSpec &r : regions)
            claimed_.emplace_back(r.pages, false);
    }

    bool
    free_run(std::uint32_t region, std::uint32_t first,
             std::uint32_t n) const
    {
        const auto &c = claimed_[region];
        if (first + n > c.size()) return false;
        for (std::uint32_t i = 0; i < n; ++i)
            if (c[first + i]) return false;
        return true;
    }

    void
    claim(std::uint32_t region, std::uint32_t first, std::uint32_t n)
    {
        for (std::uint32_t i = 0; i < n; ++i)
            claimed_[region][first + i] = true;
    }

    void
    release(std::uint32_t region, std::uint32_t first, std::uint32_t n)
    {
        for (std::uint32_t i = 0; i < n; ++i)
            claimed_[region][first + i] = false;
    }

    void
    release_all()
    {
        for (auto &c : claimed_) std::fill(c.begin(), c.end(), false);
    }

  private:
    std::vector<std::vector<bool>> claimed_;
};

}  // namespace

Workload
generate_workload(std::uint64_t seed, bool invalidation_storm,
                  bool heat_churn, bool strided)
{
    sim::Rng rng(seed);
    Workload w;
    w.seed = seed;
    w.invalidation_storm = invalidation_storm;
    w.heat_churn = heat_churn;
    w.strided = strided;

    // Mixed-granularity regions (≈ 832 KB total — comfortably inside
    // the 6 MB fast node, so clean-run migrations essentially always
    // have room, yet concurrent bursts can still brush the cap).
    w.regions = {
        RegionSpec{32, vm::PageSize::k4K,
                   static_cast<std::uint8_t>(1 + rng.next_below(250))},
        RegionSpec{8, vm::PageSize::k64K,
                   static_cast<std::uint8_t>(1 + rng.next_below(250))},
        RegionSpec{32, vm::PageSize::k4K,
                   static_cast<std::uint8_t>(1 + rng.next_below(250))},
        RegionSpec{16, vm::PageSize::k4K,
                   static_cast<std::uint8_t>(1 + rng.next_below(250))},
    };

    // Partition the regions over 2-4 tenants (round-robin, so every
    // tenant owns at least one region). Ops are generated per-tenant
    // below; only multi_tenant presets act on the partition.
    w.num_tenants = 2 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t r = 0; r < w.regions.size(); ++r)
        w.regions[r].tenant = r % w.num_tenants;

    // Heat-churn hot window: one small page run the whole run keeps
    // re-touching (see Workload::heat_churn). Drawn only when the
    // knob is on so existing seeds stay byte-identical without it.
    std::uint32_t hot_region = 0, hot_base = 0, hot_span = 0;
    if (heat_churn) {
        hot_region = static_cast<std::uint32_t>(
            rng.next_below(w.regions.size()));
        hot_span = std::min<std::uint32_t>(8, w.regions[hot_region].pages);
        hot_base = static_cast<std::uint32_t>(
            rng.next_below(w.regions[hot_region].pages - hot_span + 1));
    }

    Claims claims(w.regions);

    // Region indices owned by `tenant` (never empty: round-robin).
    auto regions_of = [&](std::uint32_t tenant) {
        std::vector<std::uint32_t> owned;
        for (std::uint32_t r = 0; r < w.regions.size(); ++r)
            if (w.regions[r].tenant == tenant) owned.push_back(r);
        return owned;
    };

    // Pick an unclaimed run of up to `want` pages anywhere in `region`.
    auto find_free = [&](std::uint32_t region, std::uint32_t want,
                         std::uint32_t *first, std::uint32_t *n) -> bool {
        const RegionSpec &r = w.regions[region];
        for (std::uint32_t len = std::min(want, r.pages); len >= 1;
             --len) {
            for (int attempt = 0; attempt < 16; ++attempt) {
                const std::uint32_t start = static_cast<std::uint32_t>(
                    rng.next_below(r.pages - len + 1));
                if (claims.free_run(region, start, len)) {
                    *first = start;
                    *n = len;
                    return true;
                }
            }
        }
        return false;
    };

    // One valid migration or replication with freshly claimed pages
    // inside @p tenant's regions, or nullopt-equivalent (returns false)
    // when everything is claimed.
    auto make_valid_mov = [&](std::uint32_t tenant, MovSpec *out) -> bool {
        const std::vector<std::uint32_t> owned = regions_of(tenant);
        const bool replicate = rng.next_below(3) == 0;
        const std::uint32_t rs =
            owned[rng.next_below(owned.size())];
        const std::uint32_t want =
            w.regions[rs].psize == vm::PageSize::k64K
                ? 1 + static_cast<std::uint32_t>(rng.next_below(4))
                : 1 + static_cast<std::uint32_t>(rng.next_below(8));
        std::uint32_t sfirst = 0, sn = 0;
        if (!find_free(rs, want, &sfirst, &sn)) return false;
        if (!replicate) {
            claims.claim(rs, sfirst, sn);
            const bool to_fast = rng.next_below(2) == 0;
            // Far-tier routing is derived, not drawn: a fresh RNG call
            // here would shift every draw after it and change the
            // workload all existing presets replay.
            const bool to_far = !to_fast && ((sfirst ^ sn) & 3) == 0;
            *out = MovSpec{core::MovOp::kMigrate, rs, sfirst, sn,
                           0,  0,
                           to_fast, to_far, Malform::kNone};
            return true;
        }
        // Replication: an exclusive destination run large enough for
        // sn source pages' worth of bytes, possibly at a different
        // granularity. Claim the source BEFORE searching so a
        // same-region destination cannot land on top of it (backtrack
        // on failure).
        claims.claim(rs, sfirst, sn);
        const std::uint64_t src_pb = vm::page_bytes(w.regions[rs].psize);
        const std::uint32_t rd =
            owned[rng.next_below(owned.size())];
        const std::uint64_t dst_pb = vm::page_bytes(w.regions[rd].psize);
        const std::uint64_t bytes = sn * src_pb;
        const std::uint32_t dst_pages = static_cast<std::uint32_t>(
            (bytes + dst_pb - 1) / dst_pb);
        // Keep the chunk count inside the PaRAM (fine-granularity
        // chunks: num_pages * src_pb / min(src_pb, dst_pb)).
        const std::uint64_t align = std::min(src_pb, dst_pb);
        std::uint32_t dfirst = 0, dn = 0;
        if (bytes / align > dma::DescriptorRam::kEntries ||
            !find_free(rd, dst_pages, &dfirst, &dn) || dn < dst_pages) {
            claims.release(rs, sfirst, sn);
            return false;
        }
        claims.claim(rd, dfirst, dst_pages);
        *out = MovSpec{core::MovOp::kReplicate, rs,    sfirst, sn,
                       rd,  dfirst, false,  false,  Malform::kNone};
        return true;
    };

    // Strided replication: randomized pitch/rows geometry over freshly
    // claimed page runs on both sides, so strided requests stay
    // pairwise page-disjoint from every other valid request (the
    // pitched envelopes — gaps included — live inside the claimed
    // runs). Geometry choices keep worst-case per-row splitting far
    // inside the PaRAM.
    auto make_valid_strided = [&](std::uint32_t tenant,
                                  MovSpec *out) -> bool {
        const std::vector<std::uint32_t> owned = regions_of(tenant);
        const std::uint32_t rs = owned[rng.next_below(owned.size())];
        const std::uint32_t rd = owned[rng.next_below(owned.size())];
        const std::uint64_t src_pb = vm::page_bytes(w.regions[rs].psize);
        const std::uint64_t dst_pb = vm::page_bytes(w.regions[rd].psize);
        const std::uint32_t rows =
            2 + static_cast<std::uint32_t>(rng.next_below(11));
        // row_bytes 16..768; pitch == row_bytes (degenerate flat) is
        // reachable, as are pitched gaps of up to ~1 KB.
        const std::uint32_t row_bytes = static_cast<std::uint32_t>(
            16 * (1 + rng.next_below(48)));
        const std::uint64_t src_pitch =
            row_bytes + 8 * rng.next_below(128);
        const std::uint64_t dst_pitch =
            row_bytes + 8 * rng.next_below(128);
        const std::uint64_t src_extent =
            (std::uint64_t{rows} - 1) * src_pitch + row_bytes;
        const std::uint64_t dst_extent =
            (std::uint64_t{rows} - 1) * dst_pitch + row_bytes;
        const std::uint32_t sp = static_cast<std::uint32_t>(
            (src_extent + src_pb - 1) / src_pb);
        const std::uint32_t dp = static_cast<std::uint32_t>(
            (dst_extent + dst_pb - 1) / dst_pb);
        std::uint32_t sfirst = 0, sn = 0;
        if (!find_free(rs, sp, &sfirst, &sn) || sn < sp) return false;
        claims.claim(rs, sfirst, sp);
        std::uint32_t dfirst = 0, dn = 0;
        if (!find_free(rd, dp, &dfirst, &dn) || dn < dp) {
            claims.release(rs, sfirst, sp);
            return false;
        }
        claims.claim(rd, dfirst, dp);
        *out = MovSpec{core::MovOp::kReplicate,
                       rs,
                       sfirst,
                       0,
                       rd,
                       dfirst,
                       false,
                       false,
                       Malform::kNone,
                       rows,
                       row_bytes,
                       src_pitch,
                       dst_pitch};
        return true;
    };

    auto make_malformed_mov = [&](std::uint32_t tenant) -> MovSpec {
        const std::vector<std::uint32_t> owned = regions_of(tenant);
        MovSpec m;
        m.src_region = owned[rng.next_below(owned.size())];
        m.src_page = 0;
        m.num_pages = 1;
        // The strided malform kinds join the lottery only under the
        // knob, so knob-off draws keep their historical bound.
        switch (rng.next_below(strided ? 7 : 5)) {
            case 0: m.malform = Malform::kUnmappedSrc; break;
            case 1: m.malform = Malform::kZeroPages; break;
            case 2:
                m.malform = Malform::kTooManyPages;
                m.num_pages = dma::DescriptorRam::kEntries + 7;
                break;
            case 3: m.malform = Malform::kBadNode; break;
            case 4:
                m.malform = Malform::kOverlap;
                m.op = core::MovOp::kReplicate;
                m.dst_region = m.src_region;
                m.dst_page = m.src_page;
                break;
            case 5:
                m.malform = Malform::kZeroRowBytes;
                m.op = core::MovOp::kReplicate;
                m.num_pages = 0;
                m.dst_region = m.src_region;
                m.dst_page = 0;
                m.rows = 4;
                m.row_bytes = 0;
                m.src_pitch = 64;
                m.dst_pitch = 64;
                break;
            default:
                m.malform = Malform::kPitchUnderRow;
                m.op = core::MovOp::kReplicate;
                m.num_pages = 0;
                m.dst_region = m.src_region;
                m.dst_page = 0;
                m.rows = 4;
                m.row_bytes = 128;
                m.src_pitch = 128;
                m.dst_pitch = 64;
                break;
        }
        return m;
    };

    const std::size_t total_ops = 48 + rng.next_below(17);
    std::uint32_t since_barrier = 0;
    for (std::size_t i = 0; i < total_ops; ++i) {
        WorkloadOp op;
        op.cpu = static_cast<std::uint32_t>(rng.next_below(kWorkloadCpus));
        op.delay_us = static_cast<std::uint32_t>(rng.next_below(40));

        // The tenant this op acts as; a batch stays within one tenant
        // (one MemifUser handle submits the whole submit_many() call).
        const std::uint32_t tenant = static_cast<std::uint32_t>(
            rng.next_below(w.num_tenants));
        const std::uint64_t dice = rng.next_below(100);
        if (since_barrier >= 12 || dice < 8) {
            op.kind = OpKind::kBarrier;
            claims.release_all();
            since_barrier = 0;
        } else if (dice < 30) {
            op.kind = OpKind::kTouch;
            const std::uint32_t r = static_cast<std::uint32_t>(
                rng.next_below(w.regions.size()));
            op.touch = TouchSpec{
                r,
                static_cast<std::uint32_t>(
                    rng.next_below(w.regions[r].pages)),
                rng.next_below(2) == 1};
            ++since_barrier;
        } else if (dice < 45) {
            op.kind = OpKind::kMovMany;
            const std::uint32_t batch = 2 + static_cast<std::uint32_t>(
                                                rng.next_below(3));
            for (std::uint32_t b = 0; b < batch; ++b) {
                MovSpec m;
                // One in six batch slots is deliberately malformed so
                // mixed-outcome batches are routine.
                if (rng.next_below(6) == 0)
                    op.movs.push_back(make_malformed_mov(tenant));
                else if (strided && rng.next_below(4) == 0 &&
                         make_valid_strided(tenant, &m))
                    op.movs.push_back(m);
                else if (make_valid_mov(tenant, &m))
                    op.movs.push_back(m);
            }
            if (op.movs.empty()) {
                op.kind = OpKind::kBarrier;
                claims.release_all();
                since_barrier = 0;
            } else {
                ++since_barrier;
            }
        } else {
            op.kind = OpKind::kMov;
            MovSpec m;
            if (rng.next_below(10) == 0) {
                op.movs.push_back(make_malformed_mov(tenant));
                ++since_barrier;
            } else if (strided && rng.next_below(3) == 0 &&
                       make_valid_strided(tenant, &m)) {
                op.movs.push_back(m);
                ++since_barrier;
            } else if (make_valid_mov(tenant, &m)) {
                op.movs.push_back(m);
                ++since_barrier;
            } else {
                op.kind = OpKind::kBarrier;
                claims.release_all();
                since_barrier = 0;
            }
        }
        const OpKind placed_kind = op.kind;
        w.ops.push_back(std::move(op));
        // Invalidation storm: chase every valid mov with same-instant
        // touches on its own pages. Each touch young/dirty-CASes a PTE
        // the request translated (or is still prefetching), firing the
        // xlate-invalidate hook mid-flight. Touches are exempt from the
        // disjointness invariant, so this only perturbs PTE/cache
        // state, never final bytes.
        const WorkloadOp &placed = w.ops.back();
        if (invalidation_storm && (placed.kind == OpKind::kMov ||
                                   placed.kind == OpKind::kMovMany)) {
            std::vector<WorkloadOp> burst;
            for (const MovSpec &m : placed.movs) {
                // Strided specs have no page-run shape to aim at
                // (num_pages is zero); the storm skips them.
                if (m.malform != Malform::kNone || m.rows != 0) continue;
                const std::uint32_t hits =
                    1 + static_cast<std::uint32_t>(rng.next_below(3));
                for (std::uint32_t h = 0; h < hits; ++h) {
                    std::uint32_t region = m.src_region;
                    std::uint32_t base = m.src_page;
                    std::uint32_t span = m.num_pages;
                    if (m.op == core::MovOp::kReplicate &&
                        rng.next_below(2) == 0) {
                        // Destination side, at its own granularity.
                        const std::uint64_t bytes =
                            std::uint64_t{m.num_pages} *
                            vm::page_bytes(w.regions[m.src_region].psize);
                        const std::uint64_t dst_pb =
                            vm::page_bytes(w.regions[m.dst_region].psize);
                        region = m.dst_region;
                        base = m.dst_page;
                        span = static_cast<std::uint32_t>(
                            (bytes + dst_pb - 1) / dst_pb);
                    }
                    WorkloadOp t;
                    t.kind = OpKind::kTouch;
                    t.cpu = placed.cpu;
                    t.delay_us = 0;
                    t.touch = TouchSpec{
                        region,
                        std::min<std::uint32_t>(
                            base + static_cast<std::uint32_t>(
                                       rng.next_below(span)),
                            w.regions[region].pages - 1),
                        rng.next_below(2) == 1};
                    burst.push_back(std::move(t));
                }
            }
            for (WorkloadOp &t : burst) {
                w.ops.push_back(std::move(t));
                ++since_barrier;
            }
        }
        // Heat churn: after every non-barrier op, hammer the hot
        // window so its buckets stay hot across scan epochs and the
        // managed preset's daemon has something to promote while app
        // requests are in flight. Content-inert (touches only).
        if (heat_churn && placed_kind != OpKind::kBarrier) {
            const std::uint32_t hits =
                2 + static_cast<std::uint32_t>(rng.next_below(3));
            for (std::uint32_t h = 0; h < hits; ++h) {
                WorkloadOp t;
                t.kind = OpKind::kTouch;
                t.cpu = static_cast<std::uint32_t>(
                    rng.next_below(kWorkloadCpus));
                t.delay_us =
                    static_cast<std::uint32_t>(rng.next_below(3));
                t.touch = TouchSpec{
                    hot_region,
                    hot_base + static_cast<std::uint32_t>(
                                   rng.next_below(hot_span)),
                    rng.next_below(2) == 1};
                w.ops.push_back(std::move(t));
                ++since_barrier;
            }
        }
    }
    // Always end quiesced: the runner's invariant sweep assumes the
    // final op drained every outstanding request.
    w.ops.push_back(WorkloadOp{OpKind::kBarrier, {}, {}, 0, 0});
    return w;
}

Workload
drop_ops(const Workload &w, std::size_t begin, std::size_t count)
{
    Workload out;
    out.seed = w.seed;
    out.num_tenants = w.num_tenants;
    out.invalidation_storm = w.invalidation_storm;
    out.heat_churn = w.heat_churn;
    out.strided = w.strided;
    out.regions = w.regions;
    out.ops.reserve(w.ops.size());
    for (std::size_t i = 0; i < w.ops.size(); ++i)
        if (i < begin || i >= begin + count) out.ops.push_back(w.ops[i]);
    // Preserve the trailing quiesce barrier no matter what was cut.
    if (out.ops.empty() || out.ops.back().kind != OpKind::kBarrier)
        out.ops.push_back(WorkloadOp{OpKind::kBarrier, {}, {}, 0, 0});
    return out;
}

}  // namespace memif::check
