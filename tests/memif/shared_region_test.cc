/**
 * @file
 * Tests for the shared region layout and queue plumbing.
 */
#include "memif/shared_region.h"

#include <gtest/gtest.h>

#include <set>

namespace memif::core {
namespace {

TEST(SharedRegion, FreeListStartsFullyLoaded)
{
    SharedRegion r(32);
    EXPECT_EQ(r.capacity(), 32u);
    std::set<std::uint32_t> got;
    lockfree::RedBlueQueue freeq = r.free_queue();
    for (;;) {
        const lockfree::DequeueResult d = freeq.dequeue();
        if (!d.ok) break;
        EXPECT_TRUE(r.valid_index(d.value));
        EXPECT_TRUE(got.insert(d.value).second);
    }
    EXPECT_EQ(got.size(), 32u);
}

TEST(SharedRegion, StagingStartsBlueOthersRed)
{
    SharedRegion r(8);
    EXPECT_EQ(r.staging_queue().color(), lockfree::Color::kBlue);
    EXPECT_EQ(r.submission_queue().color(), lockfree::Color::kRed);
    EXPECT_TRUE(r.staging_queue().empty());
    EXPECT_TRUE(r.completion_ok_queue().empty());
    EXPECT_TRUE(r.completion_err_queue().empty());
}

TEST(SharedRegion, RequestsStartFree)
{
    SharedRegion r(8);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(r.request(i).load_status(), MovStatus::kFree);
}

TEST(SharedRegion, IndexOfRoundTrips)
{
    SharedRegion r(16);
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(r.index_of(r.request(i)), i);
}

TEST(SharedRegion, QueuesMoveRequestsWithoutLoss)
{
    SharedRegion r(64);
    lockfree::RedBlueQueue freeq = r.free_queue();
    lockfree::RedBlueQueue staging = r.staging_queue();
    lockfree::RedBlueQueue ok = r.completion_ok_queue();

    // Cycle every request through the full path several times.
    for (int round = 0; round < 10; ++round) {
        std::uint32_t n = 0;
        for (;;) {
            const lockfree::DequeueResult d = freeq.dequeue();
            if (!d.ok) break;
            staging.enqueue(d.value);
            ++n;
        }
        EXPECT_EQ(n, 64u);
        for (;;) {
            const lockfree::DequeueResult d = staging.dequeue();
            if (!d.ok) break;
            ok.enqueue(d.value);
        }
        for (;;) {
            const lockfree::DequeueResult d = ok.dequeue();
            if (!d.ok) break;
            freeq.enqueue(d.value);
        }
    }
    std::set<std::uint32_t> all;
    for (;;) {
        const lockfree::DequeueResult d = freeq.dequeue();
        if (!d.ok) break;
        all.insert(d.value);
    }
    EXPECT_EQ(all.size(), 64u);
}

TEST(SharedRegionDeath, OutOfRangeIndexPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SharedRegion r(8);
    EXPECT_DEATH(r.request(8), "out of range");
}

TEST(SharedRegion, ReportsPinnedFootprint)
{
    SharedRegion small(8);
    SharedRegion big(256);
    EXPECT_GT(big.bytes(), small.bytes());
    // Sanity: 256 requests fit in a few pinned pages, as on the real
    // system.
    EXPECT_LT(big.bytes(), 64u * 1024);
}

}  // namespace
}  // namespace memif::core
