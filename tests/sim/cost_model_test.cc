/**
 * @file
 * Tests that the calibrated cost model reproduces the aggregate
 * micro-costs the paper reports in Sections 2.2 and 5.3.
 */
#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "sim/types.h"

namespace memif::sim {
namespace {

TEST(CostModel, CpuCopyOf4kPageIsAboutFourMicroseconds)
{
    // Paper 2.2: "of which only 4 us is for copying bytes" per 4 KB page.
    CostModel cm;
    const double us = to_us(cm.cpu_copy_time(4096));
    EXPECT_GT(us, 3.0);
    EXPECT_LT(us, 5.0);
}

TEST(CostModel, CpuCopyOfLargePageStreamsAtAboutTwoGBps)
{
    // Figure 8: migspeed reaches ~2 GB/s on 2 MB pages (copy-bound).
    CostModel cm;
    const std::uint64_t bytes = 2u << 20;
    const double gbps = gb_per_sec(bytes, cm.cpu_copy_time(bytes));
    EXPECT_GT(gbps, 1.7);
    EXPECT_LT(gbps, 2.3);
}

TEST(CostModel, BaselinePerPageKernelCostIsAboutFifteenMicroseconds)
{
    // Paper 2.2: "For each page these operations take around 15 us" on
    // the ARM platform: walk + alloc + 2x(PTE+TLB flush) + rmap + free +
    // copy.
    CostModel cm;
    const Duration per_page = cm.page_walk_full + cm.page_alloc_time(0) +
                              2 * (cm.pte_update + cm.tlb_flush_page) +
                              cm.rmap_per_page + cm.page_free +
                              cm.cpu_copy_time(4096);
    const double us = to_us(per_page);
    EXPECT_GT(us, 12.0);
    EXPECT_LT(us, 17.0);
}

TEST(CostModel, DescriptorConfigCostMatchesPaper)
{
    // Paper 5.3: "sometimes takes 4-5 us to configure one descriptor";
    // reuse reduces the descriptor-write overhead by ~4x.
    CostModel cm;
    EXPECT_GE(cm.dma_desc_write_full, microseconds(4));
    EXPECT_LE(cm.dma_desc_write_full, microseconds(5));
    const double ratio = static_cast<double>(cm.dma_desc_write_full) /
                         static_cast<double>(cm.dma_desc_write_reuse);
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 4.8);
}

TEST(CostModel, DmaBoundedBySlowerSide)
{
    CostModel cm;
    const std::uint64_t mb = 1u << 20;
    const Duration slow_to_fast =
        cm.dma_stream_time(mb, cm.slow_mem_bw, cm.fast_mem_bw);
    const Duration fast_to_fast =
        cm.dma_stream_time(mb, cm.fast_mem_bw, cm.fast_mem_bw);
    EXPECT_GT(slow_to_fast, fast_to_fast);
    // 1 MB at 6.2 GB/s is ~169 us.
    EXPECT_NEAR(to_us(slow_to_fast), 169.0, 3.0);
}

TEST(CostModel, DmaBeatsOneCpuCoreOnBulkCopies)
{
    // The whole premise: the engine streams at memory bandwidth while a
    // core copies at ~2 GB/s.
    CostModel cm;
    const std::uint64_t bytes = 2u << 20;
    EXPECT_LT(cm.dma_stream_time(bytes, cm.slow_mem_bw, cm.fast_mem_bw),
              cm.cpu_copy_time(bytes));
}

TEST(CostModel, AllocCostGrowsWithOrder)
{
    CostModel cm;
    EXPECT_LT(cm.page_alloc_time(0), cm.page_alloc_time(4));
    EXPECT_LT(cm.page_alloc_time(4), cm.page_alloc_time(9));
}

TEST(CostModel, TimeHelpers)
{
    EXPECT_EQ(microseconds(3), 3000u);
    EXPECT_EQ(milliseconds(2), 2'000'000u);
    EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
    EXPECT_DOUBLE_EQ(gb_per_sec(1000, 1000), 1.0);  // 1000 B/us = 1 GB/s
}

}  // namespace
}  // namespace memif::sim
