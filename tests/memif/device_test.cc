/**
 * @file
 * End-to-end tests of the memif service: replication and migration
 * through the full stack (user library -> shared queues -> driver ->
 * DMA engine -> interrupt/kthread paths -> completion notifications),
 * plus validation failures and execution-path selection.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::core {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = {})
        : proc(kernel.create_process()),
          dev(kernel, proc, cfg),
          user(dev)
    {
    }

    ~Fixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    bool
    check(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!proc.as().read(base, buf.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    /** Allocate + fill in + submit one request; returns its index. */
    std::uint32_t
    submit(MovOp op, vm::VAddr src, std::uint32_t npages,
           vm::VAddr dst_or_node, std::uint64_t tag = 0)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = op;
        req.src_base = src;
        req.num_pages = npages;
        req.user_tag = tag;
        if (op == MovOp::kReplicate)
            req.dst_base = dst_or_node;
        else
            req.dst_node = static_cast<std::uint32_t>(dst_or_node);
        kernel.spawn(user.submit(idx));
        return idx;
    }
};

TEST(MemifDevice, ReplicationCopiesBytes)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 42);

    const std::uint32_t idx =
        f.submit(MovOp::kReplicate, src, 16, dst, 0xBEEF);
    f.kernel.run();

    const std::uint32_t done = f.user.retrieve_completed();
    ASSERT_EQ(done, idx);
    EXPECT_EQ(f.user.request(done).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.user.request(done).user_tag, 0xBEEFu);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 42));
    EXPECT_TRUE(f.check(src, 16 * 4096, 42));  // source untouched
    EXPECT_EQ(f.dev.stats().replications, 1u);
    f.user.free_request(done);
}

TEST(MemifDevice, MigrationMovesPagesToFastNode)
{
    Fixture f;
    const vm::VAddr base = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
    f.fill(base, 32 * 4096, 9);
    const std::uint64_t slow_free_before =
        f.kernel.phys().node(f.kernel.slow_node()).free_frames();

    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 32, f.kernel.fast_node());
    f.kernel.run();

    ASSERT_EQ(f.user.retrieve_completed(), idx);
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 32 * 4096, 9));
    vm::Vma *vma = f.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < 32; ++i) {
        const vm::Pte pte = vma->pte(i);
        EXPECT_EQ(f.kernel.phys().node_of(pte.pfn), f.kernel.fast_node());
        EXPECT_FALSE(pte.young);  // finalized
        EXPECT_FALSE(pte.migration);
    }
    // Old frames freed back to the slow node.
    EXPECT_EQ(f.kernel.phys().node(f.kernel.slow_node()).free_frames(),
              slow_free_before + 32);
    EXPECT_EQ(f.dev.stats().migrations, 1u);
    EXPECT_EQ(f.dev.stats().pages_moved, 32u);
}

TEST(MemifDevice, BurstOfRequestsNeedsOnlyOneKick)
{
    // The headline interface property (§6.4): a stream of submissions
    // costs one ioctl; the kernel thread pulls the rest.
    Fixture f;
    const vm::VAddr src = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(64 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 64 * 4096, 1);

    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 8; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(r) * 8 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 8 * 4096;
            req.num_pages = 8;
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    EXPECT_EQ(f.user.stats().submits, 8u);
    EXPECT_EQ(f.user.stats().kicks, 1u);
    EXPECT_EQ(f.dev.stats().kick_ioctls, 1u);
    int completed = 0;
    while (f.user.retrieve_completed() != kNoRequest) ++completed;
    EXPECT_EQ(completed, 8);
    EXPECT_TRUE(f.check(dst, 64 * 4096, 1));
    EXPECT_TRUE(f.dev.idle());
}

TEST(MemifDevice, NewBurstAfterIdleKicksAgain)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 8 * 4096, 5);

    f.submit(MovOp::kReplicate, src, 4, dst);
    f.kernel.run();  // drain; kthread recolors staging blue
    f.submit(MovOp::kReplicate, src + 4 * 4096, 4, dst + 4 * 4096);
    f.kernel.run();

    EXPECT_EQ(f.user.stats().kicks, 2u);
    int completed = 0;
    while (f.user.retrieve_completed() != kNoRequest) ++completed;
    EXPECT_EQ(completed, 2);
}

TEST(MemifDevice, SmallRequestsUsePolledMode)
{
    // §5.4: below the 512 KB threshold the kthread turns the interrupt
    // off and polls; the kick-started first request is always irq-driven.
    Fixture f;
    const vm::VAddr src = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(64 * 4096, vm::PageSize::k4K, f.kernel.fast_node());

    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 4; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.num_pages = 16;  // 64 KB each: small
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    EXPECT_EQ(f.dev.stats().irq_completions, 1u);     // the kicked one
    EXPECT_EQ(f.dev.stats().polled_completions, 3u);  // kthread-polled
}

TEST(MemifDevice, LargeRequestsStayInterruptDriven)
{
    Fixture f(MemifConfig{.capacity = 64,
                          .gang_lookup = true,
                          .race_policy = RacePolicy::kDetect,
                          .poll_threshold_bytes = 512 * 1024});
    const vm::VAddr src = f.proc.mmap(2 << 20, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(2 << 20, vm::PageSize::k4K, f.kernel.fast_node());

    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 3; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            // 170 pages ~ 680 KB > threshold.
            req.src_base = src + static_cast<vm::VAddr>(r) * 170 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 170 * 4096;
            req.num_pages = 170;
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();
    EXPECT_EQ(f.dev.stats().irq_completions, 3u);
    EXPECT_EQ(f.dev.stats().polled_completions, 0u);
}

TEST(MemifDevice, PollSleepsUntilCompletion)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 77);

    sim::SimTime woke_at = 0;
    std::uint32_t got = kNoRequest;
    auto app = [&]() -> sim::Task {
        const std::uint32_t idx = f.user.alloc_request();
        MovReq &req = f.user.request(idx);
        req.op = MovOp::kReplicate;
        req.src_base = src;
        req.dst_base = dst;
        req.num_pages = 16;
        co_await f.user.submit(idx);
        // Nothing completed yet: go to sleep like Fig. 2's poll(fdset).
        EXPECT_EQ(f.user.retrieve_completed(), kNoRequest);
        co_await f.user.poll();
        woke_at = f.kernel.eq().now();
        got = f.user.retrieve_completed();
    };
    f.kernel.spawn(app());
    f.kernel.run();

    ASSERT_NE(got, kNoRequest);
    EXPECT_EQ(f.user.request(got).load_status(), MovStatus::kDone);
    EXPECT_GE(woke_at, f.user.request(got).complete_time);
}

TEST(MemifDevice, CompletionCarriesTimestamps)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 16, dst);
    f.kernel.run();
    const MovReq &req = f.user.request(idx);
    EXPECT_EQ(req.submit_time, 0u);  // submitted at t=0
    EXPECT_GT(req.complete_time, req.submit_time);
}

// ----- validation failures ---------------------------------------------

TEST(MemifDevice, RejectsUnmappedSource)
{
    Fixture f;
    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, 0xBAD000, 4, f.kernel.fast_node());
    f.kernel.run();
    ASSERT_EQ(f.user.retrieve_completed(), idx);
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idx).error, MovError::kBadAddress);
    EXPECT_EQ(f.dev.stats().validation_failures, 1u);
}

TEST(MemifDevice, RejectsBadNode)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(4 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx = f.submit(MovOp::kMigrate, src, 4, 99);
    f.kernel.run();
    ASSERT_EQ(f.user.retrieve_completed(), idx);
    EXPECT_EQ(f.user.request(idx).error, MovError::kBadNode);
}

TEST(MemifDevice, RejectsZeroAndOversizedRequests)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(4 * 4096, vm::PageSize::k4K);
    const std::uint32_t a = f.submit(MovOp::kMigrate, src, 0,
                                     f.kernel.fast_node());
    f.kernel.run();
    EXPECT_EQ(f.user.request(a).error, MovError::kBadRequest);

    const std::uint32_t b = f.submit(MovOp::kMigrate, src, 1000,
                                     f.kernel.fast_node());
    f.kernel.run();
    EXPECT_EQ(f.user.request(b).error, MovError::kBadRequest);
}

TEST(MemifDevice, RejectsOverlappingReplication)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx =
        f.submit(MovOp::kReplicate, src, 8, src + 4 * 4096);
    f.kernel.run();
    ASSERT_EQ(f.user.retrieve_completed(), idx);
    EXPECT_EQ(f.user.request(idx).error, MovError::kBadRequest);
}

TEST(MemifDevice, RejectsRangePastVmaEnd)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(4 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, src, 8, f.kernel.fast_node());
    f.kernel.run();
    EXPECT_EQ(f.user.request(idx).error, MovError::kBadAddress);
}

TEST(MemifDevice, ReportsDestinationExhaustion)
{
    Fixture f;
    // 8 MB cannot fit in 6 MB SRAM: a 512-page (2 MB) migration works,
    // three of them exhaust, the fourth fails cleanly.
    const vm::VAddr src = f.proc.mmap(8ull << 20, vm::PageSize::k4K);
    std::vector<std::uint32_t> idxs;
    for (int r = 0; r < 4; ++r)
        idxs.push_back(f.submit(MovOp::kMigrate,
                                src + static_cast<vm::VAddr>(r) * (2 << 20),
                                512, f.kernel.fast_node()));
    f.kernel.run();
    EXPECT_EQ(f.user.request(idxs[0]).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.user.request(idxs[1]).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.user.request(idxs[2]).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.user.request(idxs[3]).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idxs[3]).error, MovError::kNoMemory);
    // No frame leaked by the failed attempt.
    EXPECT_EQ(f.kernel.phys().node(f.kernel.fast_node()).free_frames(), 0u);
}

TEST(MemifDevice, FreeListExhaustionIsGraceful)
{
    Fixture f(MemifConfig{.capacity = 4,
                          .gang_lookup = true,
                          .race_policy = RacePolicy::kDetect,
                          .poll_threshold_bytes = 512 * 1024});
    std::vector<std::uint32_t> held;
    for (int i = 0; i < 4; ++i) {
        const std::uint32_t idx = f.user.alloc_request();
        ASSERT_NE(idx, kNoRequest);
        held.push_back(idx);
    }
    EXPECT_EQ(f.user.alloc_request(), kNoRequest);
    f.user.free_request(held.back());
    EXPECT_NE(f.user.alloc_request(), kNoRequest);
}

TEST(MemifDevice, MigrationOf2MPagesWorks)
{
    Fixture f;
    const vm::VAddr base = f.proc.mmap(4ull << 20, vm::PageSize::k2M);
    f.fill(base, 4ull << 20, 33);
    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 2, f.kernel.fast_node());
    f.kernel.run();
    ASSERT_EQ(f.user.retrieve_completed(), idx);
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 4ull << 20, 33));
    vm::Vma *vma = f.proc.as().find_vma(base);
    EXPECT_EQ(f.kernel.phys().node_of(vma->pte(0).pfn),
              f.kernel.fast_node());
}

TEST(MemifDevice, TeardownMidFlightIsSafe)
{
    // Destroying an instance with a transfer still running must cancel
    // it cleanly: no callback into the dead device, no frame leaks
    // from the request that never completed (its new pages are simply
    // part of the cancelled move; the old mapping remains usable).
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    vm::VAddr base = 0;
    {
        MemifDevice dev(kernel, proc);
        MemifUser user(dev);
        base = proc.mmap(512 * 4096, vm::PageSize::k4K);
        const std::uint32_t idx = user.alloc_request();
        MovReq &req = user.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = base;
        req.num_pages = 512;  // 2 MB: long DMA
        req.dst_node = kernel.fast_node();
        kernel.spawn(user.submit(idx));
        // Advance until the transfer has been triggered but not yet
        // completed: the teardown then races only the engine.
        while (kernel.dma_engine().stats().transfers_started == 0)
            kernel.run_until(kernel.eq().now() + sim::microseconds(100));
        ASSERT_EQ(kernel.dma_engine().stats().transfers_completed, 0u);
        // dev + user destroyed here, DMA in flight.
    }
    kernel.run();  // drain the (cancelled) completion event: no crash
    EXPECT_EQ(kernel.dma_engine().stats().transfers_cancelled, 1u);
}

}  // namespace
}  // namespace memif::core
