#include "check/differential.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "dma/engine.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/task.h"

namespace memif::check {

using core::kNoRequest;
using core::MemifConfig;
using core::MemifDevice;
using core::MemifUser;
using core::MovError;
using core::MovOp;
using core::MovReq;
using core::MovStatus;

const std::vector<Preset> &
presets()
{
    static const std::vector<Preset> kPresets = {
        {"levers-off", MemifConfig{}},
        {"pipelined", MemifConfig::pipelined()},
        {"moderated", MemifConfig::moderated()},
        {"scaled", MemifConfig::scaled()},
        {"tenanted", MemifConfig::tenanted()},
        {"mmu_aware", MemifConfig::mmu_aware()},
        {"managed", MemifConfig::managed()},
        {"tiered", MemifConfig::tiered()},
        {"strided", MemifConfig::strided()},
    };
    return kPresets;
}

std::string
seed_pair(const Workload &w, const RunOptions &opt)
{
    return "(workload_seed=" + std::to_string(w.seed) +
           ", schedule_seed=" + std::to_string(opt.schedule_seed) + ")";
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnv(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnv_u64(std::uint64_t &h, std::uint64_t v)
{
    fnv(h, &v, sizeof(v));
}

}  // namespace

RunResult
run_workload(const Workload &w, const RunOptions &opt)
{
    RunResult res;
    auto fail = [&](const std::string &msg) {
        if (res.ok) {
            res.ok = false;
            res.failure = seed_pair(w, opt) + " " + msg;
        }
    };

    // Tiered presets get a machine with the third tier attached; the
    // far node's capacity comfortably holds every workload region, so
    // chained demotions only fail for injected reasons, never by
    // construction.
    os::KernelConfig kcfg;
    if (opt.config.tiered_memory) kcfg.far_bytes = 64ull << 20;
    os::Kernel kernel(kcfg);
    if (opt.schedule_seed != 0)
        kernel.eq().set_tie_break_seed(opt.schedule_seed);
    if (opt.arm_faults) {
        sim::FaultInjector &fi = kernel.faults();
        fi.seed(w.seed * 0x9E3779B97F4A7C15ull + opt.schedule_seed);
        fi.arm_probability(dma::kFaultTcError, 0.04);
        fi.arm_probability(dma::kFaultLostIrq, 0.02);
        fi.arm_probability(dma::kFaultStuck, 0.02);
        fi.arm_probability(core::kFaultAllocFail, 0.02);
    }
    if (opt.inject_undeclared_fault_nth != 0)
        kernel.faults().arm_nth(dma::kFaultTcError,
                                opt.inject_undeclared_fault_nth);

    // Multi-tenant presets give every workload tenant its own process
    // (address space) and register it with the device; otherwise all
    // regions live in the single owner process and tenancy is inert.
    const bool mt = opt.config.multi_tenant;
    const std::uint32_t ntenants =
        mt ? std::max<std::uint32_t>(w.num_tenants, 1) : 1;

    os::Process &proc = kernel.create_process();
    std::vector<os::Process *> procs{&proc};
    for (std::uint32_t t = 1; t < ntenants; ++t)
        procs.push_back(&kernel.create_process());
    auto proc_for_region = [&](std::uint32_t r) -> os::Process & {
        return mt ? *procs[w.regions[r].tenant % ntenants] : proc;
    };

    std::vector<vm::VAddr> bases;
    std::vector<std::uint64_t> pbs;
    for (std::uint32_t ri = 0; ri < w.regions.size(); ++ri) {
        const RegionSpec &r = w.regions[ri];
        os::Process &rp = proc_for_region(ri);
        const std::uint64_t pb = vm::page_bytes(r.psize);
        const vm::VAddr base = rp.mmap(r.pages * pb, r.psize);
        if (base == 0) {
            fail("mmap failed during setup");
            return res;
        }
        std::vector<std::uint8_t> buf(r.pages * pb);
        for (std::uint64_t i = 0; i < buf.size(); ++i)
            buf[i] = pat_byte(r.pattern, i);
        if (!rp.as().write(base, buf.data(), buf.size())) {
            fail("initial fill failed during setup");
            return res;
        }
        bases.push_back(base);
        pbs.push_back(pb);
    }

    MemifDevice dev(kernel, proc, opt.config);
    for (std::uint32_t t = 1; t < ntenants; ++t)
        if (dev.register_tenant(*procs[t]) != t) {
            fail("register_tenant returned an unexpected asid");
            return res;
        }

    // Managed preset: hand every region to the heat scanner so the
    // migration daemon's device-originated movs run concurrently with
    // the workload's own requests. Migration is placement, not
    // mutation — the reference model's byte predictions must hold
    // unchanged with the daemon active.
    if (opt.config.auto_migrate)
        for (std::uint32_t r = 0; r < w.regions.size(); ++r)
            if (!dev.manage_region(bases[r],
                                   mt ? w.regions[r].tenant % ntenants
                                      : 0)) {
                fail("manage_region failed during setup");
                return res;
            }

    // One handle per (tenant, cpu); lever off collapses to one row.
    std::vector<std::unique_ptr<MemifUser>> users;
    for (std::uint32_t t = 0; t < ntenants; ++t)
        for (std::uint32_t cpu = 0; cpu < kWorkloadCpus; ++cpu)
            users.push_back(std::make_unique<MemifUser>(dev, cpu, t));
    auto user_for = [&](std::uint32_t asid,
                        std::uint32_t cpu) -> MemifUser & {
        return *users[asid * kWorkloadCpus + cpu % kWorkloadCpus];
    };
    auto tenant_of = [&](const WorkloadOp &op) -> std::uint32_t {
        if (!mt || op.movs.empty()) return 0;
        return w.regions[op.movs.front().src_region].tenant;
    };

    ReferenceModel model(w);
    const OutcomeContext ctx{opt.config.race_policy, opt.arm_faults,
                             opt.config.cpu_copy_fallback, mt,
                             opt.config.auto_migrate};
    const std::uint64_t baseline = kernel.phys().outstanding_pages();

    // Terminal (status, error) per mov id; doubles as the
    // exactly-once-completion ledger.
    struct Outcome {
        bool seen = false;
        MovStatus st = MovStatus::kFree;
        MovError err = MovError::kNone;
    };
    std::vector<Outcome> outcomes(model.num_movs());

    // Requests bounced by admission control (kFailed/kNoSpace) with a
    // positive retry-after hint: not a terminal outcome — the driver
    // loop honors retry_after_us and resubmits, so transient quota
    // pressure cannot change final memory and the exactly-once ledger
    // only ever sees real completions. A zero hint means the request
    // can never fit the quota (its frame estimate alone exceeds it);
    // that IS terminal, and the model's multi-tenant clause admits it.
    std::vector<std::uint32_t> retries;

    auto handle_completion = [&](MemifUser &u, std::uint32_t idx) {
        MovReq &req = u.request(idx);
        const std::uint64_t tag = req.user_tag;
        const MovStatus st = req.load_status();
        const MovError err = req.error;
        if (mt && st == MovStatus::kFailed &&
            err == MovError::kNoSpace && req.retry_after_us != 0) {
            ++res.rejected;
            retries.push_back(idx);
            return;
        }
        // Managed preset: an app request that collides with a daemon
        // mov in flight fails fast with kBusy. Like quota
        // backpressure, that is transient, not terminal — the daemon
        // mov completes in bounded virtual time, so wait out a short
        // copy window and resubmit.
        if (opt.config.auto_migrate && st == MovStatus::kFailed &&
            err == MovError::kBusy) {
            req.retry_after_us = 25;
            ++res.rejected;
            retries.push_back(idx);
            return;
        }
        if (tag >= outcomes.size()) {
            fail("completion with unknown user_tag " +
                 std::to_string(tag));
        } else if (outcomes[tag].seen) {
            fail("duplicate completion for mov #" + std::to_string(tag));
        } else {
            outcomes[tag] = Outcome{true, st, err};
            std::string why;
            if (!model.outcome_allowed(tag, st, err, ctx, &why))
                fail("unexpected outcome: " + why);
            model.commit(tag, st);
        }
        u.free_request(idx);
        ++res.completed;
    };

    // Resubmit every bounced request through its own tenant's handle
    // after the device's retry-after hint has elapsed.
    auto drain_retries = [&]() -> sim::Task {
        std::vector<std::uint32_t> batch = std::move(retries);
        retries.clear();
        for (const std::uint32_t idx : batch) {
            // Hint-0 rejections never land here (they are terminal),
            // so the wait below is always positive.
            MovReq &req = users[0]->request(idx);
            co_await sim::Delay{kernel.eq(),
                                sim::microseconds(req.retry_after_us)};
            co_await user_for(req.asid, req.submit_cpu).submit(idx);
        }
    };

    // Compare live memory against the model (barriers + final check).
    auto check_memory = [&](const char *where) {
        std::vector<std::uint8_t> buf;
        for (std::uint32_t r = 0; r < w.regions.size(); ++r) {
            const std::vector<std::uint8_t> &want = model.memory(r);
            buf.resize(want.size());
            if (!proc_for_region(r).as().read(bases[r], buf.data(),
                                              buf.size())) {
                fail(std::string(where) + ": region " +
                     std::to_string(r) + " unreadable");
                continue;
            }
            if (std::memcmp(buf.data(), want.data(), buf.size()) == 0)
                continue;
            std::size_t off = 0;
            while (buf[off] == want[off]) ++off;
            fail(std::string(where) + ": region " + std::to_string(r) +
                 " diverges from model at byte " + std::to_string(off) +
                 " (got " + std::to_string(buf[off]) + ", want " +
                 std::to_string(want[off]) + ")");
        }
    };

    std::uint64_t next_tag = 0;
    auto driver = [&]() -> sim::Task {
        for (const WorkloadOp &op : w.ops) {
            if (op.delay_us != 0)
                co_await sim::Delay{kernel.eq(),
                                    sim::microseconds(op.delay_us)};
            MemifUser &u = user_for(tenant_of(op), op.cpu);
            switch (op.kind) {
                case OpKind::kMov:
                case OpKind::kMovMany: {
                    std::vector<std::uint32_t> idxs;
                    for (const MovSpec &m : op.movs) {
                        std::uint32_t idx;
                        // At capacity: drain completions until a free
                        // slot appears (the region is finite).
                        while ((idx = u.alloc_request()) == kNoRequest) {
                            const std::uint32_t done =
                                u.retrieve_completed();
                            if (done != kNoRequest)
                                handle_completion(u, done);
                            else if (!retries.empty())
                                co_await drain_retries();
                            else
                                co_await u.poll();
                        }
                        MovReq &req = u.request(idx);
                        req.op = m.op;
                        req.src_base =
                            bases[m.src_region] +
                            std::uint64_t{m.src_page} * pbs[m.src_region];
                        req.num_pages = m.num_pages;
                        // Strided geometry (zero for flat specs; the
                        // slot is recycled, so always overwrite).
                        req.rows = m.rows;
                        req.row_bytes = m.row_bytes;
                        req.src_pitch = m.src_pitch;
                        req.dst_pitch = m.dst_pitch;
                        req.gather_list = 0;
                        req.user_tag = next_tag++;
                        if (m.op == MovOp::kMigrate)
                            // Far-bound movs exist only on far-capable
                            // machines; elsewhere the flag degrades to
                            // the slow node and the workload replays
                            // identically to its pre-tiered form.
                            req.dst_node =
                                m.to_fast ? kernel.fast_node()
                                : m.to_far && kernel.has_far_node()
                                    ? kernel.far_node()
                                    : kernel.slow_node();
                        else
                            req.dst_base = bases[m.dst_region] +
                                           std::uint64_t{m.dst_page} *
                                               pbs[m.dst_region];
                        switch (m.malform) {
                            case Malform::kUnmappedSrc:
                                req.src_base = 0x7FDE'AD00'0000ull;
                                break;
                            case Malform::kBadNode:
                                req.op = MovOp::kMigrate;
                                req.dst_node = 0xBAD;
                                break;
                            case Malform::kZeroPages:
                                req.num_pages = 0;
                                break;
                            case Malform::kOverlap:
                                req.dst_base = req.src_base;
                                break;
                            case Malform::kTooManyPages:
                            case Malform::kZeroRowBytes:
                            case Malform::kPitchUnderRow:
                            case Malform::kNone:
                                break;
                        }
                        ++res.submitted;
                        idxs.push_back(idx);
                    }
                    if (op.kind == OpKind::kMov) {
                        for (const std::uint32_t idx : idxs)
                            co_await u.submit(idx);
                    } else {
                        co_await u.submit_many(idxs);
                    }
                    break;
                }
                case OpKind::kTouch: {
                    os::TouchOutcome out;
                    co_await proc_for_region(op.touch.region)
                        .touch(bases[op.touch.region] +
                                   std::uint64_t{op.touch.page} *
                                       pbs[op.touch.region],
                               op.touch.write, &out);
                    break;
                }
                case OpKind::kBarrier: {
                    while (res.completed < res.submitted) {
                        const std::uint32_t idx =
                            users[0]->retrieve_completed();
                        if (idx != kNoRequest)
                            handle_completion(*users[0], idx);
                        else if (!retries.empty())
                            co_await drain_retries();
                        else
                            co_await users[0]->poll();
                    }
                    check_memory("barrier");
                    break;
                }
            }
        }
    };
    auto task = driver();
    kernel.run();

    if (!task.done()) {
        fail("driver coroutine never finished (lost wakeup?)");
        return res;
    }
    task.rethrow_if_failed();
    res.end_time = kernel.eq().now();

    if (res.completed != res.submitted)
        fail("only " + std::to_string(res.completed) + " of " +
             std::to_string(res.submitted) + " requests completed");
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        if (!outcomes[i].seen)
            fail("mov #" + std::to_string(i) + " never completed");

    // Quiescence invariants: the workload drained everything, so the
    // driver must be back to its empty state and physical-frame
    // accounting must balance (parked magazine frames excepted).
    if (!dev.idle()) fail("device not idle after final barrier");
    std::string why;
    if (!dev.check_quiesced(&why)) fail("check_quiesced: " + why);
    const std::uint64_t outstanding = kernel.phys().outstanding_pages();
    const std::uint64_t parked = dev.magazine_pages();
    if (outstanding != baseline + parked)
        fail("frame leak: outstanding " + std::to_string(outstanding) +
             " != baseline " + std::to_string(baseline) + " + parked " +
             std::to_string(parked));

    check_memory("final");
    res.stats = dev.stats();

    // Digests (computed even for failed runs; useful in diagnostics).
    std::uint64_t mem_h = kFnvOffset;
    {
        std::vector<std::uint8_t> buf;
        for (std::uint32_t r = 0; r < w.regions.size(); ++r) {
            buf.resize(w.regions[r].pages * pbs[r]);
            if (proc_for_region(r).as().read(bases[r], buf.data(),
                                             buf.size()))
                fnv(mem_h, buf.data(), buf.size());
        }
    }
    res.mem_digest = mem_h;
    std::uint64_t full_h = mem_h;
    fnv_u64(full_h, res.end_time);
    fnv_u64(full_h, res.submitted);
    for (const Outcome &o : outcomes) {
        fnv_u64(full_h, static_cast<std::uint64_t>(o.st));
        fnv_u64(full_h, static_cast<std::uint64_t>(o.err));
    }
    res.full_digest = full_h;
    return res;
}

}  // namespace memif::check
