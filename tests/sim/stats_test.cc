/**
 * @file
 * Unit tests for the statistics helpers and CPU accounting.
 */
#include "sim/stats.h"

#include <gtest/gtest.h>

#include "sim/cpu.h"
#include "sim/event_queue.h"

namespace memif::sim {
namespace {

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double v : {1.0, 2.0, 3.0, 4.0}) a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_NEAR(a.stddev(), 1.2909944, 1e-6);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Samples, Percentiles)
{
    Samples s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(CpuAccounting, ChargesByContextAndOp)
{
    CpuAccounting acct;
    acct.charge(ExecContext::kSyscall, Op::kRemap, 100);
    acct.charge(ExecContext::kSyscall, Op::kCopy, 50);
    acct.charge(ExecContext::kIrq, Op::kRelease, 25);
    EXPECT_EQ(acct.total, 175u);
    EXPECT_EQ(acct.context(ExecContext::kSyscall), 150u);
    EXPECT_EQ(acct.context(ExecContext::kIrq), 25u);
    EXPECT_EQ(acct.op(Op::kRemap), 100u);
    EXPECT_EQ(acct.op(Op::kCopy), 50u);
}

TEST(CpuAccounting, SinceSubtractsSnapshots)
{
    CpuAccounting a;
    a.charge(ExecContext::kUser, Op::kQueue, 10);
    CpuAccounting snap = a;
    a.charge(ExecContext::kUser, Op::kQueue, 7);
    CpuAccounting d = a.since(snap);
    EXPECT_EQ(d.total, 7u);
    EXPECT_EQ(d.op(Op::kQueue), 7u);
}

TEST(Cpu, BusyAdvancesTimeAndCharges)
{
    EventQueue eq;
    Cpu cpu(eq);
    auto coro = [&]() -> Task {
        co_await cpu.busy(ExecContext::kKthread, Op::kPrep, 500);
    };
    Task t = coro();
    eq.run();
    EXPECT_EQ(eq.now(), 500u);
    EXPECT_EQ(cpu.accounting().op(Op::kPrep), 500u);
    EXPECT_EQ(cpu.accounting().context(ExecContext::kKthread), 500u);
}

TEST(Cpu, OpAndContextNames)
{
    EXPECT_EQ(to_string(Op::kDmaConfig), "dma-cfg");
    EXPECT_EQ(to_string(ExecContext::kIrq), "irq");
}

}  // namespace
}  // namespace memif::sim
