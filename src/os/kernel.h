/**
 * @file
 * The simulated OS kernel: one object owning the machine (event queue,
 * CPU accounting, physical memory, DMA engine) and the kernel-side
 * services both the Linux-migration baseline and the memif driver build
 * on — syscall cost charging, interrupt-context task spawning, the
 * migration wait queue, and process management.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dma/driver.h"
#include "dma/engine.h"
#include "mem/phys.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/trace.h"

namespace memif::os {

class Process;

/** Machine + kernel configuration. */
struct KernelConfig {
    /** DDR capacity to back (the real board has 8 GB; experiments need
     *  far less, and this is host memory). */
    std::uint64_t slow_bytes = mem::KeystoneMemory::kDefaultSlowBytes;
    /** Far/remote tier capacity. Zero (the default) builds the classic
     *  two-node machine, byte-identical to every prior PR; nonzero adds
     *  a third node calibrated from the cost model's far_mem_bw /
     *  far_mem_latency (Akram et al.-style emulated remote memory). */
    std::uint64_t far_bytes = 0;
    /** Timing calibration; defaults model KeyStone II (Table 2). */
    sim::CostModel costs{};
    /** Cortex-A15 cores (Table 2). */
    unsigned num_cores = 4;
    /** DMA driver feature toggles (§5.3 ablations). */
    dma::DmaDriverOptions dma_options{};
    /** Seed for the fault injector's probability stream (the injector
     *  stays inert until a site is armed; see sim/fault.h). */
    std::uint64_t fault_seed = 0xfa017;
    /** Serialize kernel-context CPU time (syscall/irq/kthread) on one
     *  driver core instead of letting contexts overlap freely — the
     *  regime where per-request completion overhead sits on the
     *  critical path. Off by default; see sim::Cpu. */
    bool single_driver_core = false;
};

/** Counters for the user/kernel interface (satellite of the FlexSC-style
 *  motivation in §2.3: crossings are the cost batching amortizes). */
struct SyscallStats {
    std::uint64_t crossings = 0;       ///< enter+exit round trips charged
    sim::Duration crossing_time = 0;   ///< total time spent crossing
};

/**
 * The kernel. Everything in a simulation hangs off one Kernel instance;
 * it is not thread-safe (the DES is single-threaded by design).
 */
class Kernel {
  public:
    explicit Kernel(KernelConfig cfg = {});
    ~Kernel();
    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    // ----- machine access ---------------------------------------------
    sim::EventQueue &eq() { return eq_; }
    sim::Cpu &cpu() { return cpu_; }
    /** Driver-execution trace buffer (disabled by default). */
    sim::Tracer &tracer() { return tracer_; }
    const sim::CostModel &costs() const { return cfg_.costs; }
    mem::PhysicalMemory &phys() { return pm_; }
    mem::NodeId slow_node() const { return slow_node_; }
    mem::NodeId fast_node() const { return fast_node_; }
    /** Far/remote node (only with KernelConfig::far_bytes != 0). */
    mem::NodeId far_node() const { return far_node_; }
    bool has_far_node() const { return far_node_ != mem::kInvalidNode; }
    dma::Edma3Engine &dma_engine() { return *engine_; }
    dma::DmaDriver &dma() { return *dma_driver_; }
    /** Machine-wide fault injector (arm sites here; off by default). */
    sim::FaultInjector &faults() { return faults_; }

    // ----- processes ---------------------------------------------------
    Process &create_process();
    std::size_t process_count() const { return processes_.size(); }

    // ----- kernel facilities --------------------------------------------
    /**
     * Charge one user/kernel crossing (enter + exit) in the caller's
     * context and return the awaitable delay.
     */
    sim::Delay
    syscall_crossing()
    {
        ++syscall_stats_.crossings;
        syscall_stats_.crossing_time += cfg_.costs.syscall_crossing;
        return cpu_.busy(sim::ExecContext::kSyscall, sim::Op::kSyscall,
                         cfg_.costs.syscall_crossing);
    }

    const SyscallStats &syscall_stats() const { return syscall_stats_; }
    void reset_syscall_stats() { syscall_stats_ = SyscallStats{}; }

    /**
     * Keep a fire-and-forget task alive until it finishes (interrupt
     * handlers, kernel threads). Finished tasks are reaped lazily.
     */
    void spawn(sim::Task task);

    /**
     * Wait queue for threads blocked on migration PTEs (the baseline
     * race-prevention path; Linux uses per-page queues, we use one —
     * wakeups are rare and spurious wakeups re-check the PTE anyway).
     */
    sim::WaitQueue &migration_waitq() { return migration_waitq_; }

    /**
     * Round-robin a transfer controller to a new DMA client (e.g. a
     * memif instance), so concurrent instances' transfers overlap on
     * the engine's six TCs (Table 2).
     */
    unsigned
    assign_transfer_controller()
    {
        return next_tc_++ % dma::Edma3Engine::kNumTcs;
    }

    /** Run the simulation until no events remain. */
    void run() { eq_.run(); }
    /** Run the simulation up to @p deadline. */
    void run_until(sim::SimTime deadline) { eq_.run_until(deadline); }

  private:
    void reap_finished_tasks();

    KernelConfig cfg_;
    sim::EventQueue eq_;
    sim::Tracer tracer_;
    sim::Cpu cpu_;
    mem::PhysicalMemory pm_;
    mem::NodeId slow_node_;
    mem::NodeId fast_node_;
    mem::NodeId far_node_ = mem::kInvalidNode;
    sim::FaultInjector faults_;  // before engine_: engine holds a pointer
    std::unique_ptr<dma::Edma3Engine> engine_;
    std::unique_ptr<dma::DmaDriver> dma_driver_;
    sim::WaitQueue migration_waitq_;
    unsigned next_tc_ = 0;
    SyscallStats syscall_stats_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<sim::Task> tasks_;
};

}  // namespace memif::os
