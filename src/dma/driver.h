/**
 * @file
 * The DMA engine driver: turns a scatter-gather list into a programmed
 * descriptor chain and runs it on the engine.
 *
 * Usage is two-phase so the caller can charge the configuration cost to
 * the right simulated context:
 *
 *   DmaDriver::Prepared p = driver.prepare(sg);
 *   co_await cpu.busy(ctx, Op::kDmaConfig, p.cpu_time);
 *   dma::TransferId id = driver.start(std::move(p), irq_mode, callback);
 *
 * prepare() applies the §5.3 optimizations when enabled: parameter-
 * calculation caching and descriptor-chain reuse (only src/dst rewritten
 * on reused entries). Both can be disabled independently for ablations,
 * which reproduces the Table 1 "Baseline" DMA/cfg column.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dma/chain_cache.h"
#include "dma/descriptor.h"
#include "dma/engine.h"
#include "sim/cost_model.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/types.h"

namespace memif::dma {

/** Driver feature toggles (paper §5.3). */
struct DmaDriverOptions {
    /** Reuse previously configured descriptor chains. */
    bool reuse_chains = true;
    /** Cache per-chunk-size descriptor parameter calculations. */
    bool cache_params = true;
    /** Transfer controller to submit on. */
    unsigned tc = 0;
};

/**
 * One piece of a scatter-gather transfer (one descriptor). Flat
 * entries (rows <= 1) are a physically contiguous run of `bytes`;
 * strided entries (rows > 1) are `rows` physically contiguous runs of
 * `bytes` each, `src_pitch`/`dst_pitch` apart — the whole pitched
 * extent must be physically contiguous on each side (callers split at
 * page boundaries), and it maps to one EDMA3 A/B-count descriptor.
 */
struct SgEntry {
    std::uint64_t src_addr = 0;  ///< physical byte address
    std::uint64_t dst_addr = 0;  ///< physical byte address
    std::uint64_t bytes = 0;     ///< run length (strided: bytes per row)
    std::uint32_t rows = 1;      ///< > 1 = 2D entry (A/B-count geometry)
    std::uint64_t src_pitch = 0; ///< byte stride between source rows
    std::uint64_t dst_pitch = 0; ///< byte stride between destination rows

    bool strided() const { return rows > 1; }
    /** Total payload bytes the entry moves. */
    std::uint64_t
    total_bytes() const
    {
        return bytes * (rows ? rows : 1);
    }
};

class DmaDriver {
  public:
    DmaDriver(Edma3Engine &engine, const sim::CostModel &cm,
              DmaDriverOptions opts = {})
        : engine_(engine),
          cm_(cm),
          opts_(opts),
          cache_(engine.param_ram(), opts.reuse_chains),
          capacity_wq_(engine.eq())
    {
    }
    DmaDriver(const DmaDriver &) = delete;
    DmaDriver &operator=(const DmaDriver &) = delete;

    /** A configured-but-not-started transfer. */
    struct Prepared {
        ChainLease lease;
        sim::Duration cpu_time = 0;  ///< config + trigger cost to charge
        std::uint64_t bytes = 0;
    };

    /** Descriptors not leased to in-flight transfers right now. */
    std::uint32_t available_descriptors() const { return cache_.available(); }

    /**
     * Awaitable used by callers that found available_descriptors() too
     * low: wakes whenever a transfer retires and frees its chain.
     */
    sim::WaitQueue::Awaiter capacity_wait() { return capacity_wq_.wait(); }

    /**
     * FIFO-fair descriptor-capacity gate: returns once @p need
     * descriptors are available AND every earlier reservation has been
     * granted, so a PaRAM-sized request cannot starve behind a stream
     * of small ones that keep slipping in front of it. The caller must
     * consume the capacity (prepare()) before its next suspension
     * point, which holds by construction in the memif driver.
     *
     * @param abandon_a,abandon_b  optional abort flags, polled at each
     *     wake: when either is true the reservation is dropped (the
     *     caller's request died while queued) and the gate opens for
     *     the next waiter. Plain pointers on purpose: coroutine
     *     parameters must stay trivially destructible here — GCC 12
     *     double-destroys the frame copy of non-trivial ones (observed
     *     with std::function), corrupting whatever they own. The
     *     pointees must outlive the await, which holds as both live in
     *     the awaiting frame's request record / device.
     */
    sim::Task reserve_descriptors(std::uint32_t need,
                                  const bool *abandon_a = nullptr,
                                  const bool *abandon_b = nullptr);

    /**
     * The TC scheduler: the transfer controller that frees up first,
     * so independent in-flight chains spread across all six TCs
     * instead of serialising on one.
     */
    unsigned pick_tc() const { return engine_.least_busy_tc(); }

    /**
     * Program descriptors for @p sg: one chunk per descriptor, as DMA
     * without IOMMU needs physically contiguous chunks. Chunk sizes
     * may vary per entry (coalesced contiguous runs); uniform lists
     * keep using the per-size chain pools, variable lists are keyed by
     * their exact shape. Real descriptor memory is written here; only
     * time is deferred. The caller must ensure available_descriptors()
     * >= sg.size() (await capacity_wait()/reserve_descriptors()
     * otherwise); oversubscription panics.
     */
    Prepared prepare(const std::vector<SgEntry> &sg);

    /**
     * Trigger the prepared chain. The lease returns to the chain cache
     * automatically when the transfer retires.
     *
     * @param irq_mode     completion interrupts the CPU (vs. polling)
     * @param on_complete  called at completion time (any mode; may be
     *                     empty for pure polling)
     * @param tc           transfer controller (defaults to the driver
     *                     option; concurrent clients spread over the
     *                     engine's six TCs for parallel transfers)
     * @param moderated    hold the completion IRQ in the engine's per-TC
     *                     moderation batch (see Edma3Engine::start_chain)
     * @param gate         optional per-descriptor translation gate; when
     *                     set the engine consumes the chain one entry at
     *                     a time and consults the gate before each copy
     *                     (see Edma3Engine::XlateGate)
     */
    TransferId start(Prepared prepared, bool irq_mode,
                     CompletionFn on_complete, unsigned tc,
                     bool moderated = false, XlateGate gate = nullptr);
    TransferId
    start(Prepared prepared, bool irq_mode, CompletionFn on_complete)
    {
        return start(std::move(prepared), irq_mode, std::move(on_complete),
                     opts_.tc);
    }

    /** Forwarders for the engine's interrupt-moderation controls. */
    void
    configure_moderation(std::uint32_t batch, sim::Duration holdoff)
    {
        engine_.configure_moderation(batch, holdoff);
    }
    bool
    discard_moderated(TransferId id)
    {
        return engine_.discard_moderated(id);
    }
    void mask_moderation() { engine_.mask_moderation(); }
    void unmask_moderation() { engine_.unmask_moderation(); }

    /**
     * Abandon a prepared-but-never-started transfer (e.g. the request
     * was aborted between configuration and trigger); the descriptor
     * lease returns to the cache.
     */
    void
    abandon(Prepared prepared)
    {
        cache_.release(std::move(prepared.lease));
        capacity_wq_.notify_all();
    }

    /** Forwarders for polled mode / cancellation. */
    bool is_complete(TransferId id) const { return engine_.is_complete(id); }
    TransferStatus status(TransferId id) const { return engine_.status(id); }
    sim::SimTime
    completion_time(TransferId id) const
    {
        return engine_.completion_time(id);
    }
    /** Did @p id's chain terminate on a translation-gate fault? */
    bool gate_faulted(TransferId id) const { return engine_.gate_faulted(id); }
    bool cancel(TransferId id);

    /**
     * Return @p id's descriptor lease to the chain cache without a
     * completion callback having run. Needed when the completion
     * interrupt was lost: the engine finished the transfer but never
     * invoked the retiring callback, so the watchdog reclaims the
     * chain here. Harmless if the transfer already retired.
     */
    void reclaim(TransferId id) { retire(id); }

    Edma3Engine &engine() { return engine_; }
    const ChainCache &cache() const { return cache_; }
    const DmaDriverOptions &options() const { return opts_; }

  private:
    /** Return the lease of @p id to the chain cache. */
    void retire(TransferId id);

    Edma3Engine &engine_;
    const sim::CostModel &cm_;
    DmaDriverOptions opts_;
    ChainCache cache_;
    sim::WaitQueue capacity_wq_;
    std::unordered_map<TransferId, ChainLease> leases_;
    /** Outstanding reserve_descriptors() tickets, oldest first. */
    std::deque<std::shared_ptr<std::uint32_t>> capacity_fifo_;
};

}  // namespace memif::dma
