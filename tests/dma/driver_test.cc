/**
 * @file
 * Tests for the DMA driver facade: SG programming, cost accounting for
 * the reuse optimization (the ~4x descriptor-write saving of §5.3), and
 * lease recycling through completion and cancellation.
 */
#include "dma/driver.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/engine.h"
#include "mem/phys.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace memif::dma {
namespace {

struct Fixture {
    sim::EventQueue eq;
    mem::PhysicalMemory pm;
    sim::CostModel cm;
    mem::NodeId slow, fast;
    Edma3Engine engine{eq, pm, cm};

    explicit Fixture()
    {
        auto ids = mem::KeystoneMemory::build(pm, 32ull << 20);
        slow = ids.first;
        fast = ids.second;
    }

    std::vector<SgEntry>
    make_sg(unsigned pages)
    {
        std::vector<SgEntry> sg;
        for (unsigned i = 0; i < pages; ++i) {
            const mem::Pfn src = pm.allocate(slow, 0);
            const mem::Pfn dst = pm.allocate(fast, 0);
            std::memset(pm.span(src, mem::kPageSize), 0x40 + (i & 0xF),
                        mem::kPageSize);
            sg.push_back(SgEntry{src << mem::kPageShift,
                                 dst << mem::kPageShift, mem::kPageSize});
        }
        return sg;
    }
};

TEST(DmaDriver, TransfersMoveBytesEndToEnd)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(8);
    DmaDriver::Prepared p = driver.prepare(sg);
    EXPECT_GT(p.cpu_time, 0u);
    EXPECT_EQ(p.bytes, 8 * mem::kPageSize);
    bool done = false;
    driver.start(std::move(p), true, [&](TransferId) { done = true; });
    f.eq.run();
    EXPECT_TRUE(done);
    for (const SgEntry &e : sg) {
        EXPECT_EQ(std::memcmp(
                      f.pm.span(e.dst_addr >> mem::kPageShift, e.bytes),
                      f.pm.span(e.src_addr >> mem::kPageShift, e.bytes),
                      e.bytes),
                  0);
    }
}

TEST(DmaDriver, SecondTransferIsMuchCheaperToConfigure)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(32);

    DmaDriver::Prepared first = driver.prepare(sg);
    const sim::Duration cost_first = first.cpu_time;
    driver.start(std::move(first), true, nullptr);
    f.eq.run();

    DmaDriver::Prepared second = driver.prepare(sg);
    const sim::Duration cost_second = second.cpu_time;
    driver.start(std::move(second), true, nullptr);
    f.eq.run();

    // Paper 5.3: reuse cuts the descriptor-write overhead ~4x. With the
    // fixed trigger cost included the end-to-end ratio is a bit lower.
    const double ratio = static_cast<double>(cost_first) /
                         static_cast<double>(cost_second);
    EXPECT_GT(ratio, 3.0);
    EXPECT_EQ(f.engine.param_ram().stats().full_writes, 32u);
    EXPECT_EQ(f.engine.param_ram().stats().partial_writes, 32u);
}

TEST(DmaDriver, ReuseDisabledKeepsFullCost)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm,
                     DmaDriverOptions{.reuse_chains = false,
                                      .cache_params = false,
                                      .tc = 0});
    auto sg = f.make_sg(16);
    DmaDriver::Prepared first = driver.prepare(sg);
    const sim::Duration c1 = first.cpu_time;
    driver.start(std::move(first), true, nullptr);
    f.eq.run();
    DmaDriver::Prepared second = driver.prepare(sg);
    EXPECT_EQ(second.cpu_time, c1);
    driver.start(std::move(second), true, nullptr);
    f.eq.run();
    EXPECT_EQ(f.engine.param_ram().stats().partial_writes, 0u);
}

TEST(DmaDriver, PolledTransferStillRecyclesLease)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(4);
    const TransferId id = driver.start(driver.prepare(sg), false, nullptr);
    f.eq.run();
    EXPECT_TRUE(driver.is_complete(id));
    // The chain must now be reusable.
    DmaDriver::Prepared again = driver.prepare(sg);
    EXPECT_EQ(again.lease.reused, 4u);
    driver.start(std::move(again), false, nullptr);
    f.eq.run();
}

TEST(DmaDriver, CancelRecyclesLease)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(4);
    const TransferId id = driver.start(driver.prepare(sg), true, nullptr);
    EXPECT_TRUE(driver.cancel(id));
    f.eq.run();
    // Cancelled chain returned to the cache: next lease reuses it.
    DmaDriver::Prepared again = driver.prepare(sg);
    EXPECT_EQ(again.lease.reused, 4u);
    driver.start(std::move(again), false, nullptr);
    f.eq.run();
    EXPECT_EQ(f.engine.stats().transfers_cancelled, 1u);
}

TEST(DmaDriver, LargePageChunksUseOneDescriptorEach)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    const mem::Pfn src = f.pm.allocate(f.slow, 9);   // 2 MB
    const mem::Pfn dst = f.pm.allocate(f.fast, 9);
    std::memset(f.pm.span(src, 2u << 20), 0xCD, 2u << 20);
    std::vector<SgEntry> sg{SgEntry{src << mem::kPageShift,
                                    dst << mem::kPageShift, 2u << 20}};
    driver.start(driver.prepare(sg), true, nullptr);
    f.eq.run();
    EXPECT_EQ(f.engine.param_ram().stats().full_writes, 1u);
    EXPECT_EQ(std::memcmp(f.pm.span(dst, 2u << 20), f.pm.span(src, 2u << 20),
                          2u << 20),
              0);
}

TEST(DmaDriver, VariableChunkListProgramsPerEntrySizes)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    // A coalesced-style list: 8 KB run, lone 4 KB page, 16 KB run.
    const unsigned orders[] = {1, 0, 2};  // 8 KB, 4 KB, 16 KB
    std::vector<SgEntry> sg;
    for (const unsigned order : orders) {
        const std::uint64_t bytes = mem::kPageSize << order;
        const mem::Pfn src = f.pm.allocate(f.slow, order);
        const mem::Pfn dst = f.pm.allocate(f.fast, order);
        std::memset(f.pm.span(src, bytes), 0x11 + (bytes >> 12), bytes);
        sg.push_back(SgEntry{src << mem::kPageShift, dst << mem::kPageShift,
                             bytes});
    }
    DmaDriver::Prepared p = driver.prepare(sg);
    EXPECT_EQ(p.bytes, 8192u + 4096u + 16384u);
    EXPECT_EQ(p.lease.size(), 3u);
    driver.start(std::move(p), true, nullptr);
    f.eq.run();
    EXPECT_EQ(f.engine.param_ram().stats().full_writes, 3u);
    for (const SgEntry &e : sg)
        EXPECT_EQ(std::memcmp(
                      f.pm.span(e.dst_addr >> mem::kPageShift, e.bytes),
                      f.pm.span(e.src_addr >> mem::kPageShift, e.bytes),
                      e.bytes),
                  0);
    // The exact shape is reused on the next identical transfer.
    DmaDriver::Prepared again = driver.prepare(sg);
    EXPECT_EQ(again.lease.reused, 3u);
    driver.start(std::move(again), true, nullptr);
    f.eq.run();
}

TEST(DmaDriver, DescriptorGateIsFifoFair)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    const std::uint32_t cap = driver.engine().param_ram().size();

    // Keep 7/8 of the PaRAM in flight so only cap/8 descriptors remain.
    auto hold_sg = f.make_sg(cap - cap / 8);
    driver.start(driver.prepare(hold_sg), true, nullptr);
    ASSERT_EQ(driver.available_descriptors(), cap / 8);

    auto big_sg = f.make_sg(cap);
    auto small_sg = f.make_sg(cap / 8);
    std::vector<int> order;
    auto hungry = [&]() -> sim::Task {
        co_await driver.reserve_descriptors(cap);
        order.push_back(1);
        driver.abandon(driver.prepare(big_sg));
    };
    auto small = [&]() -> sim::Task {
        co_await driver.reserve_descriptors(cap / 8);
        order.push_back(2);
        driver.abandon(driver.prepare(small_sg));
    };
    sim::Task t1 = hungry();
    sim::Task t2 = small();
    // The PaRAM-sized reservation queued first; the small one has the
    // capacity it needs but must not slip in front of it.
    EXPECT_TRUE(order.empty());
    f.eq.run();
    EXPECT_TRUE(t1.done());
    EXPECT_TRUE(t2.done());
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(DmaDriver, AbandonedReservationUnblocksSuccessors)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    const std::uint32_t cap = driver.engine().param_ram().size();
    auto hold_sg = f.make_sg(16);
    driver.start(driver.prepare(hold_sg), true, nullptr);

    bool aborted = false;
    bool big_saw_abort = false;
    bool small_granted = false;
    auto small_sg = f.make_sg(8);
    auto hungry = [&]() -> sim::Task {
        // The gate returns on abort too; the caller re-checks the flag
        // (exactly what the memif device does) instead of consuming.
        co_await driver.reserve_descriptors(cap, &aborted);
        big_saw_abort = aborted;
    };
    auto small = [&]() -> sim::Task {
        co_await driver.reserve_descriptors(8);
        small_granted = true;
        driver.abandon(driver.prepare(small_sg));
    };
    sim::Task t1 = hungry();
    sim::Task t2 = small();
    EXPECT_FALSE(big_saw_abort);
    EXPECT_FALSE(small_granted);
    // The caller's request dies while queued: the ticket must be
    // dropped at the next wake so the successor is not blocked forever.
    aborted = true;
    f.eq.run();
    EXPECT_TRUE(t1.done());
    EXPECT_TRUE(t2.done());
    EXPECT_TRUE(big_saw_abort);
    EXPECT_TRUE(small_granted);
}

}  // namespace
}  // namespace memif::dma
