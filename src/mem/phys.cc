#include "mem/phys.h"

#include <cstring>

#include "sim/log.h"

namespace memif::mem {

MemoryNode::MemoryNode(NodeId id, Pfn base_pfn, const NodeConfig &cfg)
    : id_(id),
      base_(base_pfn),
      cfg_(cfg),
      backing_(new std::byte[cfg.bytes]()),
      buddy_(cfg.bytes >> kPageShift),
      frames_(cfg.bytes >> kPageShift)
{
    if (cfg.bytes == 0 || (cfg.bytes & (kPageSize - 1)) != 0)
        MEMIF_FATAL("node '%s': capacity must be a nonzero page multiple",
                    cfg.name.c_str());
}

NodeId
PhysicalMemory::add_node(const NodeConfig &cfg)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<MemoryNode>(id, next_base_, cfg));
    next_base_ += cfg.bytes >> kPageShift;
    return id;
}

NodeId
PhysicalMemory::node_of(Pfn pfn) const
{
    for (const auto &n : nodes_)
        if (n->contains(pfn)) return n->id();
    return kInvalidNode;
}

std::uint32_t
PhysicalMemory::distance(NodeId a, NodeId b) const
{
    MEMIF_ASSERT(a < nodes_.size() && b < nodes_.size(),
                 "distance query on unknown node");
    if (a == b) return 10;  // SLIT convention: local distance
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    for (const DistanceOverride &o : distances_)
        if (o.a == lo && o.b == hi) return o.d;
    return 20;  // default remote distance
}

void
PhysicalMemory::set_distance(NodeId a, NodeId b, std::uint32_t d)
{
    MEMIF_ASSERT(a < nodes_.size() && b < nodes_.size() && a != b,
                 "bad distance override");
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    for (DistanceOverride &o : distances_) {
        if (o.a == lo && o.b == hi) {
            o.d = d;
            return;
        }
    }
    distances_.push_back(DistanceOverride{lo, hi, d});
}

Pfn
PhysicalMemory::allocate(NodeId node_id, unsigned order)
{
    MemoryNode &n = node(node_id);
    const std::uint64_t local = n.buddy().allocate(order);
    if (local == BuddyAllocator::kInvalidFrame) return kInvalidPfn;
    const Pfn head = n.base_pfn() + local;
    for (std::uint64_t i = 0; i < (std::uint64_t{1} << order); ++i) {
        PageFrame &f = n.frame(head + i);
        f.allocated = true;
        f.is_block_head = (i == 0);
        f.order = static_cast<std::uint8_t>(order);
        f.rmaps.clear();
    }
    return head;
}

bool
PhysicalMemory::allocate_bulk(NodeId node_id, unsigned order,
                              std::uint64_t n, std::vector<Pfn> &out)
{
    MemoryNode &nd = node(node_id);
    std::vector<std::uint64_t> locals;
    if (!nd.buddy().allocate_bulk(order, n, locals)) return false;
    out.reserve(out.size() + locals.size());
    for (const std::uint64_t local : locals) {
        const Pfn head = nd.base_pfn() + local;
        for (std::uint64_t i = 0; i < (std::uint64_t{1} << order); ++i) {
            PageFrame &f = nd.frame(head + i);
            f.allocated = true;
            f.is_block_head = (i == 0);
            f.order = static_cast<std::uint8_t>(order);
            f.rmaps.clear();
        }
        out.push_back(head);
    }
    return true;
}

void
PhysicalMemory::free(Pfn head, unsigned order)
{
    const NodeId id = node_of(head);
    MEMIF_ASSERT(id != kInvalidNode, "freeing unmapped pfn");
    MemoryNode &n = node(id);
    for (std::uint64_t i = 0; i < (std::uint64_t{1} << order); ++i) {
        PageFrame &f = n.frame(head + i);
        MEMIF_ASSERT(f.allocated, "freeing unallocated frame pfn=%llu",
                     (unsigned long long)(head + i));
        MEMIF_ASSERT(f.rmaps.empty(), "freeing a still-mapped frame");
        f.allocated = false;
        f.is_block_head = false;
    }
    n.buddy().free(head - n.base_pfn(), order);
}

PageFrame &
PhysicalMemory::frame(Pfn pfn)
{
    const NodeId id = node_of(pfn);
    MEMIF_ASSERT(id != kInvalidNode, "pfn out of range");
    return node(id).frame(pfn);
}

std::byte *
PhysicalMemory::span(Pfn pfn, std::uint64_t bytes)
{
    const NodeId id = node_of(pfn);
    MEMIF_ASSERT(id != kInvalidNode, "pfn out of range");
    MemoryNode &n = node(id);
    const std::uint64_t last_frame = pfn + ((bytes + kPageSize - 1) >> kPageShift) - 1;
    MEMIF_ASSERT(bytes == 0 || n.contains(last_frame),
                 "span crosses node boundary");
    return n.frame_data(pfn);
}

void
PhysicalMemory::copy(Pfn dst, Pfn src, std::uint64_t bytes)
{
    if (bytes == 0) return;
    std::memcpy(span(dst, bytes), span(src, bytes), bytes);
}

std::vector<NodeId>
KeystoneMemory::build(PhysicalMemory &pm,
                      const std::vector<NodeConfig> &nodes)
{
    std::vector<NodeId> ids;
    ids.reserve(nodes.size());
    for (const NodeConfig &cfg : nodes) ids.push_back(pm.add_node(cfg));
    return ids;
}

std::pair<NodeId, NodeId>
KeystoneMemory::build(PhysicalMemory &pm, std::uint64_t slow_bytes)
{
    // Table 2: DDR3 measured at 6.2 GB/s, SRAM at 24.0 GB/s. Node 0 is
    // the CPU-local DRAM node, node 1 the fast SRAM node (§6.1).
    const std::vector<NodeId> ids =
        build(pm, {NodeConfig{.name = "ddr3-slow", .bytes = slow_bytes,
                              .bandwidth_bps = 6.2e9, .is_fast = false},
                   NodeConfig{.name = "sram-fast", .bytes = kFastBytes,
                              .bandwidth_bps = 24.0e9, .is_fast = true}});
    return {ids[0], ids[1]};
}

}  // namespace memif::mem
