/**
 * @file
 * Tests for the workload kernels: real computation correctness and the
 * §6.7 negative result — cache-friendly workloads gain little from
 * memif while the Table 4 streaming kernels gain a lot.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "memif/device.h"
#include "os/kernel.h"
#include "os/process.h"
#include "runtime/streaming_runtime.h"
#include "sim/random.h"
#include "workloads/data_intensive.h"
#include "workloads/stream.h"

namespace memif::workloads {
namespace {

TEST(WordCount, CountsWordsCorrectly)
{
    WordCount wc;
    const std::string text = "the quick brown fox jumps over the lazy dog";
    wc.process(reinterpret_cast<const std::byte *>(text.data()),
               text.size());
    EXPECT_EQ(wc.words(), 9u);
    wc.reset();
    EXPECT_EQ(wc.words(), 0u);
    const std::string tricky = "a,b;c d-e  f\ng2h";
    wc.process(reinterpret_cast<const std::byte *>(tricky.data()),
               tricky.size());
    EXPECT_EQ(wc.words(), 7u);  // a b c d e f g2h
}

TEST(WordCount, DigestDependsOnContent)
{
    WordCount a, b;
    const std::string s1 = "alpha beta gamma";
    const std::string s2 = "alpha beta delta";
    a.process(reinterpret_cast<const std::byte *>(s1.data()), s1.size());
    b.process(reinterpret_cast<const std::byte *>(s2.data()), s2.size());
    EXPECT_NE(a.result(), b.result());
}

TEST(PSearchy, FindsNeedles)
{
    PSearchy ps;
    const std::string text = "xxabcxx the thing";
    ps.process(reinterpret_cast<const std::byte *>(text.data()),
               text.size());
    // "abc" (0x616263), "the" (0x746865), "ing" (0x696E67 in "thing").
    EXPECT_EQ(ps.matches(), 3u);
}

TEST(Section67, CacheFriendlyWorkloadsGainLittle)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    core::MemifDevice dev(kernel, proc);
    runtime::StreamingRuntime rt(kernel, proc, dev);

    const std::uint64_t total = 32u << 20;
    const vm::VAddr src = proc.mmap(total, vm::PageSize::k4K);
    sim::Rng rng(4);
    std::vector<std::uint8_t> page(4096);
    for (std::uint64_t off = 0; off < total; off += 4096) {
        for (auto &b : page)
            b = static_cast<std::uint8_t>(' ' + rng.next_below(90));
        proc.as().write(src + off, page.data(), page.size());
    }

    auto gain = [&](runtime::StreamKernel &k) {
        runtime::StreamRunResult direct, prefetched;
        kernel.spawn(rt.run_direct(src, total, k, &direct));
        kernel.run();
        kernel.spawn(rt.run(src, total, k, &prefetched));
        kernel.run();
        EXPECT_EQ(direct.result_digest, prefetched.result_digest);
        return prefetched.throughput_mb_per_sec() /
                   direct.throughput_mb_per_sec() -
               1.0;
    };

    WordCount wordcount;
    PSearchy psearchy;
    StreamTriad triad;
    const double wc_gain = gain(wordcount);
    const double ps_gain = gain(psearchy);
    const double triad_gain = gain(triad);

    // The paper's 6.7 observation: little gain for the cache-friendly
    // pair, large gain for the bandwidth-bound streaming kernel.
    EXPECT_LT(wc_gain, 0.08);
    EXPECT_GT(wc_gain, -0.05);
    EXPECT_LT(ps_gain, 0.08);
    EXPECT_GT(ps_gain, -0.05);
    EXPECT_GT(triad_gain, 0.25);
}

TEST(Section67, CacheHitFractionDrivesTheDifference)
{
    // The same traffic profile with the cache friendliness stripped
    // gains substantially — isolating the mechanism.
    runtime::KernelModel friendly{.name = "friendly",
                                  .compute_rate_fast = 2.6e9,
                                  .slow_traffic_factor = 3.0,
                                  .fill_factor = 1.0,
                                  .cache_hit_fraction = 0.88};
    runtime::KernelModel unfriendly = friendly;
    unfriendly.cache_hit_fraction = 0.0;

    const std::uint64_t mb = 1u << 20;
    const double slow_bw = 6.2e9;
    const double friendly_ratio =
        static_cast<double>(friendly.consume_time_slow(mb, slow_bw)) /
        static_cast<double>(friendly.consume_time_fast(mb));
    const double unfriendly_ratio =
        static_cast<double>(unfriendly.consume_time_slow(mb, slow_bw)) /
        static_cast<double>(unfriendly.consume_time_fast(mb));
    EXPECT_LT(friendly_ratio, 1.05);   // slow nearly as fast as fast
    EXPECT_GT(unfriendly_ratio, 1.20); // real headroom for memif
}

}  // namespace
}  // namespace memif::workloads
