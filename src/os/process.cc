#include "os/process.h"

#include <algorithm>

#include "os/kernel.h"
#include "os/page_migration.h"
#include "sim/log.h"

namespace memif::os {

Process::Process(Kernel &kernel, std::uint32_t pid)
    : kernel_(kernel), pid_(pid), as_(kernel.phys())
{
}

vm::VAddr
Process::mmap(std::uint64_t bytes, vm::PageSize psize)
{
    return mmap(bytes, psize, kernel_.slow_node());
}

vm::VAddr
Process::mmap(std::uint64_t bytes, vm::PageSize psize, mem::NodeId node)
{
    return as_.mmap(bytes, psize, node);
}

sim::Task
Process::touch(vm::VAddr va, bool write, TouchOutcome *out)
{
    Kernel &k = kernel_;
    TouchOutcome result;
    for (;;) {
        const vm::AccessResult r = as_.touch(va, write);
        if (r == vm::AccessResult::kBlockedOnMigration) {
            // Baseline race prevention parks us until Release wakes the
            // migration wait queue; then we retry the access.
            ++result.blocked;
            co_await k.migration_waitq().wait();
            continue;
        }
        if (r == vm::AccessResult::kLazyFault) {
            // Lazy migration: the fault handler moves the page now,
            // then the access retries on the new location.
            ++result.lazy_migrations;
            co_await migrate_lazy_fault(*this, va);
            continue;
        }
        if (r == vm::AccessResult::kClearedYoung) {
            // The access-flag emulation fault costs a trap round trip.
            co_await k.cpu().busy(sim::ExecContext::kSyscall,
                                  sim::Op::kOther,
                                  k.costs().syscall_crossing);
        }
        result.result = r;
        break;
    }
    if (out) *out = result;
}

sim::Task
Process::stream_compute(vm::VAddr va, std::uint64_t bytes,
                        double bytes_per_sec_at_full_speed,
                        sim::Duration *out_duration)
{
    const vm::Vma *vma = as_.find_vma(va);
    MEMIF_ASSERT(vma != nullptr, "stream_compute over unmapped memory");
    const mem::Pfn pfn = vma->pte(vma->page_index(va)).pfn;
    const mem::NodeId node = kernel_.phys().node_of(pfn);
    const double node_bw = kernel_.phys().node(node).bandwidth_bps();
    const double bw = std::min(bytes_per_sec_at_full_speed, node_bw);
    const auto d = static_cast<sim::Duration>(
        static_cast<double>(bytes) / bw * 1e9);
    if (out_duration) *out_duration = d;
    co_await kernel_.cpu().busy(sim::ExecContext::kUser, sim::Op::kOther, d);
}

}  // namespace memif::os
