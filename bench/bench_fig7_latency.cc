/**
 * @file
 * Figure 7 reproduction: per-request completion latency for a sequence
 * of eight migration requests, each covering sixteen 4 KB pages.
 *
 *   Linux-b1 / Linux-b4 / Linux-b8 — NUMA migration syscalls batching
 *       1, 4 or 8 requests per syscall: batching amortizes overhead but
 *       delays every batched request to the syscall's return.
 *   memif — all eight submitted asynchronously; one ioctl total; each
 *       notification arrives soon after its own request completes.
 *
 * Paper claim: memif reduces latency by up to 63% while needing no
 * batching.
 */
#include <cstdio>

#include "harness.h"

int
main()
{
    using namespace memif::bench;
    BenchReport report("fig7_latency");
    header("Figure 7: latency of 8 migration requests (16 x 4KB pages each)");

    const RequestPlan plan{.op = memif::core::MovOp::kMigrate,
                           .page_size = memif::vm::PageSize::k4K,
                           .pages_per_request = 16,
                           .num_requests = 8};

    struct Series {
        const char *name;
        std::vector<double> us;
        std::uint64_t kicks = 0;
    };
    std::vector<Series> series;

    static const char *kLinuxNames[] = {"Linux-b1", "Linux-b4", "Linux-b8"};
    const std::uint32_t kBatches[] = {1, 4, 8};
    for (int i = 0; i < 3; ++i) {
        TestBed bed;
        const StreamOutcome out = run_linux_stream(bed, plan, kBatches[i]);
        Series s{.name = kLinuxNames[i], .us = {}, .kicks = 0};
        for (const RequestTiming &t : out.timings)
            s.us.push_back(memif::sim::to_us(t.latency()));
        series.push_back(std::move(s));
    }
    {
        TestBed bed;
        const StreamOutcome out = run_memif_stream(bed, plan);
        Series s{.name = "memif", .us = {}, .kicks = bed.user.stats().kicks};
        for (const RequestTiming &t : out.timings)
            s.us.push_back(memif::sim::to_us(t.latency()));
        series.push_back(std::move(s));
    }

    std::printf("%-10s", "request#");
    for (int i = 0; i < 8; ++i) std::printf(" %8d", i + 1);
    std::printf(" %9s\n", "mean_us");
    rule();
    double memif_mean = 0, best_linux_mean = 1e30;
    for (const Series &s : series) {
        double sum = 0;
        std::printf("%-10s", s.name);
        for (std::size_t i = 0; i < s.us.size(); ++i) {
            const double v = s.us[i];
            std::printf(" %8.1f", v);
            sum += v;
            report.add(s.name, static_cast<double>(i + 1), v);
        }
        const double mean = sum / static_cast<double>(s.us.size());
        std::printf(" %9.1f\n", mean);
        if (std::string(s.name) == "memif")
            memif_mean = mean;
        else if (mean < best_linux_mean)
            best_linux_mean = mean;
    }
    rule();
    std::printf(
        "memif mean latency reduction vs best Linux config: %.0f%% "
        "(paper: up to 63%%)\n",
        100.0 * (1.0 - memif_mean / best_linux_mean));
    std::printf("memif syscalls (kick ioctls) for all 8 requests: %llu "
                "(paper: one)\n",
                static_cast<unsigned long long>(series.back().kicks));

    // ---- Small-request streams: completion batching -------------------
    // Streams of small requests are dominated by the per-request
    // completion tax (one IRQ + one wakeup + Release/Notify each), not
    // copy bandwidth. These cells run with the kernel contexts
    // serialized on one driver core — the regime where that tax sits on
    // the critical path — and compare the paper default, the PR 2
    // pipelined levers, and the moderated (completion-batching) levers.
    // The legacy cells above keep the default free-overlap CPU model,
    // so their timelines are untouched.
    header("Fig. 7 extension: small-request streams, one driver core");

    struct StreamCell {
        const char *name;
        std::uint32_t pages_per_request;
        std::uint32_t num_requests;
    };
    const std::uint32_t shrink = quick_mode() ? 4 : 1;
    const StreamCell cells[] = {
        {"256x4KB", 1, 256 / shrink},
        {"64x16KB", 4, 64 / shrink},
    };
    struct StreamCfg {
        const char *name;
        memif::core::MemifConfig mc;
    };
    const StreamCfg cfgs[] = {
        {"default", memif::core::MemifConfig{}},
        {"pipelined", memif::core::MemifConfig::pipelined()},
        {"moderated", memif::core::MemifConfig::moderated()},
        {"scaled", memif::core::MemifConfig::scaled()},
    };

    std::printf("%-10s %-10s %10s %9s %9s %9s %9s\n", "stream", "config",
                "elapsed_us", "GB/s", "irqs/req", "wake/req", "drains");
    rule();
    for (const StreamCell &cell : cells) {
        for (const StreamCfg &cfg : cfgs) {
            memif::os::KernelConfig kc;
            kc.single_driver_core = true;
            TestBed bed(cfg.mc, kc);
            const RequestPlan sp{.op = memif::core::MovOp::kMigrate,
                                 .page_size = memif::vm::PageSize::k4K,
                                 .pages_per_request = cell.pages_per_request,
                                 .num_requests = cell.num_requests};
            const StreamOutcome out = run_memif_stream(bed, sp);
            const auto &es = bed.kernel.dma_engine().stats();
            const auto &ds = bed.dev.stats();
            const double n = static_cast<double>(cell.num_requests);
            const double irqs_per_req =
                static_cast<double>(es.interrupts_raised) / n;
            const double wakes_per_req =
                static_cast<double>(ds.kthread_wakeups) / n;
            std::printf("%-10s %-10s %10.1f %9.2f %9.2f %9.2f %9llu\n",
                        cell.name, cfg.name,
                        memif::sim::to_us(out.elapsed), out.gb_per_sec(),
                        irqs_per_req, wakes_per_req,
                        static_cast<unsigned long long>(
                            ds.completion_drains));
            const std::string sname =
                std::string("stream-") + cell.name + "-" + cfg.name;
            report.add(sname, 1, out.gb_per_sec());
            report.add(sname, 2, irqs_per_req);
            report.add(sname, 3, wakes_per_req);
        }
    }
    return 0;
}
