/**
 * @file
 * Link-word encodings for the memif lock-free interface (paper §4.2/4.3).
 *
 * Every pointer in the shared user/kernel region is an *index* into an
 * array (never a raw pointer), so a misbehaving application cannot make
 * the kernel dereference arbitrary memory; the driver validates indices
 * before use (paper §4.2 "Safety Concerns").
 *
 * Two 64-bit encodings are used:
 *
 *   Link  (a cell's `next` field):  [63:32] tag | [31] color | [30:0] index
 *   Head  (queue head/tail words):  [63:32] tag | [31:0] index
 *
 * The tag is a monotonically increasing modification counter that defeats
 * ABA on compare-and-swap, exactly as in the classic Michael & Scott
 * counted-pointer queue the paper builds on. The color bit is the
 * red-blue extension of §4.3: it rides inside every link so that a queue
 * operation and the queue-wide color are read/updated by a *single* CAS.
 */
#pragma once

#include <cstdint>

namespace memif::lockfree {

/** Queue color (paper §4.4): blue = application flushes, red = kernel. */
enum class Color : std::uint32_t {
    kRed = 0,
    kBlue = 1,
};

/** Null index: "no successor". */
inline constexpr std::uint32_t kNil = 0x7FFF'FFFFu;

/** Returned by RedBlueQueue::set_color() when the queue was not empty. */
inline constexpr int kColorBusy = -1;

/** A decoded cell link: successor index + queue color + ABA tag. */
struct Link {
    std::uint32_t index = kNil;
    Color color = Color::kRed;
    std::uint32_t tag = 0;

    static constexpr std::uint64_t kColorBit = 0x8000'0000ull;

    /** Encode to the 64-bit shared-region representation. */
    constexpr std::uint64_t
    pack() const
    {
        return (static_cast<std::uint64_t>(tag) << 32) |
               (color == Color::kBlue ? kColorBit : 0) |
               (index & 0x7FFF'FFFFull);
    }

    /** Decode from the 64-bit shared-region representation. */
    static constexpr Link
    unpack(std::uint64_t raw)
    {
        Link l;
        l.index = static_cast<std::uint32_t>(raw & 0x7FFF'FFFFull);
        l.color = (raw & kColorBit) ? Color::kBlue : Color::kRed;
        l.tag = static_cast<std::uint32_t>(raw >> 32);
        return l;
    }

    constexpr bool is_nil() const { return index == kNil; }

    friend constexpr bool
    operator==(const Link &a, const Link &b)
    {
        return a.index == b.index && a.color == b.color && a.tag == b.tag;
    }
};

/** A decoded queue head/tail pointer: cell index + ABA tag. */
struct HeadPtr {
    std::uint32_t index = kNil;
    std::uint32_t tag = 0;

    constexpr std::uint64_t
    pack() const
    {
        return (static_cast<std::uint64_t>(tag) << 32) | index;
    }

    static constexpr HeadPtr
    unpack(std::uint64_t raw)
    {
        return HeadPtr{static_cast<std::uint32_t>(raw & 0xFFFF'FFFFull),
                       static_cast<std::uint32_t>(raw >> 32)};
    }

    friend constexpr bool
    operator==(const HeadPtr &a, const HeadPtr &b)
    {
        return a.index == b.index && a.tag == b.tag;
    }
};

}  // namespace memif::lockfree
