/**
 * @file
 * Tests for the DMA driver facade: SG programming, cost accounting for
 * the reuse optimization (the ~4x descriptor-write saving of §5.3), and
 * lease recycling through completion and cancellation.
 */
#include "dma/driver.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/engine.h"
#include "mem/phys.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace memif::dma {
namespace {

struct Fixture {
    sim::EventQueue eq;
    mem::PhysicalMemory pm;
    sim::CostModel cm;
    mem::NodeId slow, fast;
    Edma3Engine engine{eq, pm, cm};

    explicit Fixture()
    {
        auto ids = mem::KeystoneMemory::build(pm, 32ull << 20);
        slow = ids.first;
        fast = ids.second;
    }

    std::vector<SgEntry>
    make_sg(unsigned pages)
    {
        std::vector<SgEntry> sg;
        for (unsigned i = 0; i < pages; ++i) {
            const mem::Pfn src = pm.allocate(slow, 0);
            const mem::Pfn dst = pm.allocate(fast, 0);
            std::memset(pm.span(src, mem::kPageSize), 0x40 + (i & 0xF),
                        mem::kPageSize);
            sg.push_back(SgEntry{src << mem::kPageShift,
                                 dst << mem::kPageShift, mem::kPageSize});
        }
        return sg;
    }
};

TEST(DmaDriver, TransfersMoveBytesEndToEnd)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(8);
    DmaDriver::Prepared p = driver.prepare(sg);
    EXPECT_GT(p.cpu_time, 0u);
    EXPECT_EQ(p.bytes, 8 * mem::kPageSize);
    bool done = false;
    driver.start(std::move(p), true, [&](TransferId) { done = true; });
    f.eq.run();
    EXPECT_TRUE(done);
    for (const SgEntry &e : sg) {
        EXPECT_EQ(std::memcmp(
                      f.pm.span(e.dst_addr >> mem::kPageShift, e.bytes),
                      f.pm.span(e.src_addr >> mem::kPageShift, e.bytes),
                      e.bytes),
                  0);
    }
}

TEST(DmaDriver, SecondTransferIsMuchCheaperToConfigure)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(32);

    DmaDriver::Prepared first = driver.prepare(sg);
    const sim::Duration cost_first = first.cpu_time;
    driver.start(std::move(first), true, nullptr);
    f.eq.run();

    DmaDriver::Prepared second = driver.prepare(sg);
    const sim::Duration cost_second = second.cpu_time;
    driver.start(std::move(second), true, nullptr);
    f.eq.run();

    // Paper 5.3: reuse cuts the descriptor-write overhead ~4x. With the
    // fixed trigger cost included the end-to-end ratio is a bit lower.
    const double ratio = static_cast<double>(cost_first) /
                         static_cast<double>(cost_second);
    EXPECT_GT(ratio, 3.0);
    EXPECT_EQ(f.engine.param_ram().stats().full_writes, 32u);
    EXPECT_EQ(f.engine.param_ram().stats().partial_writes, 32u);
}

TEST(DmaDriver, ReuseDisabledKeepsFullCost)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm,
                     DmaDriverOptions{.reuse_chains = false,
                                      .cache_params = false,
                                      .tc = 0});
    auto sg = f.make_sg(16);
    DmaDriver::Prepared first = driver.prepare(sg);
    const sim::Duration c1 = first.cpu_time;
    driver.start(std::move(first), true, nullptr);
    f.eq.run();
    DmaDriver::Prepared second = driver.prepare(sg);
    EXPECT_EQ(second.cpu_time, c1);
    driver.start(std::move(second), true, nullptr);
    f.eq.run();
    EXPECT_EQ(f.engine.param_ram().stats().partial_writes, 0u);
}

TEST(DmaDriver, PolledTransferStillRecyclesLease)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(4);
    const TransferId id = driver.start(driver.prepare(sg), false, nullptr);
    f.eq.run();
    EXPECT_TRUE(driver.is_complete(id));
    // The chain must now be reusable.
    DmaDriver::Prepared again = driver.prepare(sg);
    EXPECT_EQ(again.lease.reused, 4u);
    driver.start(std::move(again), false, nullptr);
    f.eq.run();
}

TEST(DmaDriver, CancelRecyclesLease)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    auto sg = f.make_sg(4);
    const TransferId id = driver.start(driver.prepare(sg), true, nullptr);
    EXPECT_TRUE(driver.cancel(id));
    f.eq.run();
    // Cancelled chain returned to the cache: next lease reuses it.
    DmaDriver::Prepared again = driver.prepare(sg);
    EXPECT_EQ(again.lease.reused, 4u);
    driver.start(std::move(again), false, nullptr);
    f.eq.run();
    EXPECT_EQ(f.engine.stats().transfers_cancelled, 1u);
}

TEST(DmaDriver, LargePageChunksUseOneDescriptorEach)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    const mem::Pfn src = f.pm.allocate(f.slow, 9);   // 2 MB
    const mem::Pfn dst = f.pm.allocate(f.fast, 9);
    std::memset(f.pm.span(src, 2u << 20), 0xCD, 2u << 20);
    std::vector<SgEntry> sg{SgEntry{src << mem::kPageShift,
                                    dst << mem::kPageShift, 2u << 20}};
    driver.start(driver.prepare(sg), true, nullptr);
    f.eq.run();
    EXPECT_EQ(f.engine.param_ram().stats().full_writes, 1u);
    EXPECT_EQ(std::memcmp(f.pm.span(dst, 2u << 20), f.pm.span(src, 2u << 20),
                          2u << 20),
              0);
}

}  // namespace
}  // namespace memif::dma
