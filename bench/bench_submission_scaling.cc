/**
 * @file
 * Submission-path scaling: the two regimes the PR 4 levers target.
 *
 * Section 1 — deposit scaling. The same migration stream submitted from
 * 1, 2 or 4 simulated CPUs, through the classic single shared staging
 * queue and through per-CPU submission rings. Submission is user-side
 * and advances no virtual time, so the metric is the kUser CPU
 * accounting delta around the submit calls: per-deposit cost, and an
 * aggregate "submit scaling" factor k * T(1 CPU) / T(k CPUs) — what k
 * truly parallel submitters would sustain relative to one. Rings keep
 * every deposit contention-free, so the factor tracks k; the shared
 * queue pays a CAS-retry penalty whenever a second CPU deposits within
 * the contention window, and the factor collapses.
 *
 * Section 2 — repeated-region streams. A 256-request stream of 4 KB
 * migrations ping-ponging over only four regions: after one lap, every
 * translation the driver needs is one it computed a moment ago. The
 * scaled() config (gang translation cache + bulk frame allocation +
 * rings) against moderated() measures the tentpole speedup; the
 * xlate-hit ratio must clear 0.9.
 */
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"

namespace {

using namespace memif;
using namespace memif::bench;

constexpr std::uint32_t kWindow = 8;  ///< in-flight regions, section 1

struct DepositOutcome {
    sim::Duration submit_user_ns = 0;  ///< kUser time inside submit()
    std::uint64_t retries = 0;         ///< shared-queue CAS retries
    std::uint64_t ring_submits = 0;    ///< deposits that went via rings
};

/**
 * Run @p num_requests 4 KB migrations, deposited round-robin from
 * @p ncpu user handles in bursts of kWindow back-to-back submissions
 * (the worst case for the shared queue: every deposit of a burst lands
 * at the same virtual instant).
 */
DepositOutcome
run_deposit_stream(TestBed &bed, std::uint32_t ncpu,
                   std::uint32_t num_requests)
{
    std::vector<std::unique_ptr<core::MemifUser>> users;
    for (std::uint32_t c = 0; c < ncpu; ++c)
        users.push_back(std::make_unique<core::MemifUser>(bed.dev, c));

    const std::uint64_t req_bytes = vm::page_bytes(vm::PageSize::k4K);
    struct Region {
        vm::VAddr base = 0;
        bool on_fast = false;
    };
    std::vector<Region> regions(kWindow);
    for (Region &r : regions) {
        r.base = bed.proc.mmap(req_bytes, vm::PageSize::k4K);
        MEMIF_ASSERT(r.base != 0, "slow node exhausted");
    }

    DepositOutcome out;
    auto driver = [&]() -> sim::Task {
        std::uint32_t done = 0;
        std::uint32_t next = 0;
        while (done < num_requests) {
            const std::uint32_t burst =
                std::min(kWindow, num_requests - done);
            for (std::uint32_t i = 0; i < burst; ++i, ++next) {
                Region &r = regions[i];
                core::MemifUser &u = *users[next % ncpu];
                const std::uint32_t idx = u.alloc_request();
                MEMIF_ASSERT(idx != core::kNoRequest);
                core::MovReq &req = u.request(idx);
                req.op = core::MovOp::kMigrate;
                req.src_base = r.base;
                req.num_pages = 1;
                req.dst_node = r.on_fast ? bed.kernel.slow_node()
                                         : bed.kernel.fast_node();
                r.on_fast = !r.on_fast;
                const sim::CpuAccounting before =
                    bed.kernel.cpu().snapshot();
                co_await u.submit(idx);
                out.submit_user_ns +=
                    bed.kernel.cpu().snapshot().since(before).by_context
                        [static_cast<std::size_t>(sim::ExecContext::kUser)];
            }
            for (std::uint32_t i = 0; i < burst;) {
                const std::uint32_t idx = users[0]->retrieve_completed();
                if (idx == core::kNoRequest) {
                    co_await users[0]->poll();
                    continue;
                }
                core::MovReq &req = users[0]->request(idx);
                MEMIF_ASSERT(req.succeeded(), "deposit stream failed (%u)",
                             static_cast<unsigned>(req.error));
                users[0]->free_request(idx);
                ++i;
            }
            done += burst;
        }
    };
    auto task = driver();
    bed.kernel.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "deposit stream did not finish");

    const core::DeviceStats &ds = bed.dev.stats();
    out.retries = ds.shared_submit_retries;
    for (std::uint64_t n : ds.ring_submits) out.ring_submits += n;
    for (Region &r : regions) bed.proc.as().munmap(r.base);
    return out;
}

}  // namespace

int
main()
{
    BenchReport report("submission_scaling");
    const std::uint32_t shrink = quick_mode() ? 4 : 1;

    // ---- Section 1: deposit scaling, shared queue vs per-CPU rings ----
    header("Submission scaling: deposits from 1/2/4 CPUs");
    const std::uint32_t kDeposits = 256 / shrink;
    std::printf("%-8s %-8s %12s %12s %10s %10s\n", "path", "cpus",
                "ns/deposit", "scaling", "retries", "ring_subs");
    rule();
    struct Mode {
        const char *name;
        bool rings;
    };
    const Mode modes[] = {{"shared", false}, {"rings", true}};
    for (const Mode &m : modes) {
        double t1 = 0;  // 1-CPU total submit time for this path
        for (const std::uint32_t ncpu : {1u, 2u, 4u}) {
            core::MemifConfig mc = core::MemifConfig::moderated();
            mc.percpu_rings = m.rings;
            mc.num_submit_cpus = 4;
            os::KernelConfig kc;
            kc.single_driver_core = true;
            TestBed bed(mc, kc);
            const DepositOutcome out =
                run_deposit_stream(bed, ncpu, kDeposits);
            const double total = static_cast<double>(out.submit_user_ns);
            if (ncpu == 1) t1 = total;
            // k truly parallel submitters each spend total/k of their
            // own time: aggregate throughput relative to one CPU.
            const double scaling = ncpu * t1 / total;
            std::printf("%-8s %-8u %12.1f %12.2f %10llu %10llu\n", m.name,
                        ncpu, total / kDeposits, scaling,
                        static_cast<unsigned long long>(out.retries),
                        static_cast<unsigned long long>(out.ring_submits));
            report.add(std::string("submit-scaling-") + m.name,
                       static_cast<double>(ncpu), scaling);
            report.add(std::string("deposit-ns-") + m.name,
                       static_cast<double>(ncpu), total / kDeposits);
        }
    }

    // ---- Section 2: repeated-region stream, moderated vs scaled -------
    header("Repeated-region 256x4KB stream: moderated vs scaled");
    const RequestPlan plan{.op = core::MovOp::kMigrate,
                           .page_size = vm::PageSize::k4K,
                           .pages_per_request = 1,
                           .num_requests = 256 / shrink,
                           .window_override = 4};
    struct Cfg {
        const char *name;
        core::MemifConfig mc;
    };
    const Cfg cfgs[] = {
        {"moderated", core::MemifConfig::moderated()},
        {"scaled", core::MemifConfig::scaled()},
    };
    std::printf("%-10s %10s %9s %9s %9s %9s %9s\n", "config", "elapsed_us",
                "GB/s", "hit%", "prefetch", "bulk", "spills");
    rule();
    double gbps_moderated = 0, gbps_scaled = 0, hit_ratio = 0;
    for (const Cfg &cfg : cfgs) {
        os::KernelConfig kc;
        kc.single_driver_core = true;
        TestBed bed(cfg.mc, kc);
        const StreamOutcome out = run_memif_stream(bed, plan);
        const core::DeviceStats &ds = bed.dev.stats();
        const double pages = static_cast<double>(plan.num_requests) *
                             plan.pages_per_request;
        const double ratio = static_cast<double>(ds.xlate_hits) / pages;
        std::printf("%-10s %10.1f %9.2f %9.1f %9llu %9llu %9llu\n",
                    cfg.name, sim::to_us(out.elapsed), out.gb_per_sec(),
                    100.0 * ratio,
                    static_cast<unsigned long long>(
                        ds.xlate_gang_prefetched),
                    static_cast<unsigned long long>(ds.bulk_allocs),
                    static_cast<unsigned long long>(ds.magazine_spills));
        report.add(std::string("stream-256x4KB-") + cfg.name, 1,
                   out.gb_per_sec());
        if (std::string(cfg.name) == "scaled") {
            gbps_scaled = out.gb_per_sec();
            hit_ratio = ratio;
        } else {
            gbps_moderated = out.gb_per_sec();
        }
    }
    report.add("xlate-hit-ratio", 1, hit_ratio);
    rule();
    std::printf("scaled vs moderated: %.2fx   xlate hit ratio: %.3f "
                "(gates: >= 1.20x, >= 0.90)\n",
                gbps_scaled / gbps_moderated, hit_ratio);
    return 0;
}
