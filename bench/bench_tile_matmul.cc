/**
 * @file
 * Tile-staging matmul: the 2D-descriptor (strided_dma) case study.
 *
 * C[M x N] = A[M x K] * B[K x N], T x T tiles staged from DDR into
 * scratchpad SRAM before each multiply step. Two questions:
 *
 *  - interface cost: staging a pitched tile as ONE strided request vs
 *    the pre-PR-10 workaround of one flat request per row (T requests,
 *    T completions) vs the CPU packing tiles itself;
 *  - overlap: with double buffering, how much of the staging DMA hides
 *    behind the multiply of the previous tile pair.
 *
 * The compute is real float arithmetic over the staged backing bytes;
 * every strategy must produce the identical checksum, which is the
 * end-to-end proof that pitched descriptors deliver byte-exact tiles.
 *
 * gates (scripts/check_bench_regression.py): at T = 64, staging-only
 * strided throughput >= 1.3x per-row flat, double-buffered overlap
 * ratio >= 0.5, and every checksum-match point == 1.
 */
#include <cstdio>
#include <vector>

#include "harness.h"
#include "memif/memif.h"
#include "sim/log.h"
#include "workloads/tile_matmul.h"

namespace {

using namespace memif;
using namespace memif::bench;
namespace wl = memif::workloads;

struct CellOutcome {
    wl::TileMatmulResult r;
    core::DeviceStats stats;
};

/**
 * One fresh machine per cell (regions would otherwise accumulate
 * across runs). The device runs the strided preset minus the levers
 * that add nondeterministic traffic to a single-application bench:
 * no tenant admission, no migration daemon, no far tier — and with
 * SVA routing off, since the scratchpad staging buffers are pinned
 * up front, which also exercises the genuine 2D descriptor path
 * (SVA streams carry strided rows as per-row translation slots).
 */
CellOutcome
run_cell(const wl::TileMatmulConfig &mm)
{
    core::MemifConfig mc = core::MemifConfig::strided();
    mc.multi_tenant = false;
    mc.auto_migrate = false;
    mc.tiered_memory = false;
    mc.sva_dma = false;
    mc.xlate_prefetch_ahead = false;
    TestBed bed(mc);
    core::RegisterDeviceFile("/dev/memif0", bed.dev);
    const int fd = core::MemifOpen("/dev/memif0");
    MEMIF_ASSERT(fd >= 0, "MemifOpen failed");

    CellOutcome out;
    auto task = wl::run_tile_matmul(bed.kernel, bed.proc, fd, mm, &out.r);
    bed.kernel.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "tile_matmul did not finish");
    out.stats = bed.dev.stats();

    core::MemifClose(fd);
    core::UnregisterDeviceFile("/dev/memif0");
    return out;
}

}  // namespace

int
main()
{
    BenchReport report("tile_matmul");

    const bool quick = quick_mode();
    const std::uint32_t dim = quick ? 128 : 256;
    const std::vector<std::uint32_t> tiles =
        quick ? std::vector<std::uint32_t>{64}
              : std::vector<std::uint32_t>{32, 64};

    header("Tile staging throughput (no compute): strided vs per-row");
    std::printf("%6s %10s %12s %12s %9s %9s %8s\n", "tile", "reqs(s/p)",
                "strided_MBs", "per_row_MBs", "speedup", "2D_descs",
                "match");
    rule();
    for (const std::uint32_t t : tiles) {
        wl::TileMatmulConfig mm;
        mm.m = mm.n = mm.k = dim;
        mm.tile = t;
        mm.compute = false;
        mm.double_buffer = false;

        mm.staging = wl::TileStaging::kStrided;
        const CellOutcome s = run_cell(mm);
        mm.staging = wl::TileStaging::kPerRowFlat;
        const CellOutcome p = run_cell(mm);

        const double speedup =
            s.r.staging_mb_per_sec() / p.r.staging_mb_per_sec();
        const bool match = s.r.checksum == p.r.checksum;
        std::printf("%4ux%-3u %4llu/%-5llu %12.1f %12.1f %8.2fx %9llu %8s\n",
                    t, t,
                    static_cast<unsigned long long>(
                        s.r.requests_submitted),
                    static_cast<unsigned long long>(
                        p.r.requests_submitted),
                    s.r.staging_mb_per_sec(), p.r.staging_mb_per_sec(),
                    speedup,
                    static_cast<unsigned long long>(
                        s.stats.strided_descriptors),
                    match ? "match" : "MISMATCH");
        report.add("staging-strided-mbps", t, s.r.staging_mb_per_sec());
        report.add("staging-per-row-mbps", t, p.r.staging_mb_per_sec());
        report.add("strided-speedup", t, speedup);
        report.add("staging-checksum-match", t, match ? 1.0 : 0.0);
    }
    rule();

    header("Full matmul: staged compute, double buffering, CPU baseline");
    std::printf("%6s %12s %12s %12s %9s %8s\n", "tile", "strided_ms",
                "no_db_ms", "cpu_copy_ms", "overlap", "match");
    rule();
    for (const std::uint32_t t : tiles) {
        wl::TileMatmulConfig mm;
        mm.m = mm.n = mm.k = dim;
        mm.tile = t;

        mm.staging = wl::TileStaging::kStrided;
        mm.double_buffer = true;
        const CellOutcome db = run_cell(mm);
        mm.double_buffer = false;
        const CellOutcome nd = run_cell(mm);
        mm.staging = wl::TileStaging::kCpuCopy;
        const CellOutcome cpu = run_cell(mm);

        const bool match = db.r.checksum == nd.r.checksum &&
                           db.r.checksum == cpu.r.checksum;
        std::printf("%4ux%-3u %12.2f %12.2f %12.2f %9.2f %8s\n", t, t,
                    sim::to_ms(db.r.elapsed), sim::to_ms(nd.r.elapsed),
                    sim::to_ms(cpu.r.elapsed), db.r.overlap_ratio(),
                    match ? "match" : "MISMATCH");
        report.add("matmul-strided-db-ms", t, sim::to_ms(db.r.elapsed));
        report.add("matmul-strided-ms", t, sim::to_ms(nd.r.elapsed));
        report.add("matmul-cpu-copy-ms", t, sim::to_ms(cpu.r.elapsed));
        report.add("overlap", t, db.r.overlap_ratio());
        report.add("compute-checksum-match", t, match ? 1.0 : 0.0);
    }
    rule();
    std::printf("gates: staging strided >= 1.3x per-row flat at 64x64 "
                "tiles; double-buffered overlap >= 0.5; every checksum "
                "column must read match\n");
    return 0;
}
