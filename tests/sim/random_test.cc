/**
 * @file
 * Tests for the deterministic PRNG used by workload generation.
 */
#include "sim/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace memif::sim {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowCoversTheRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(16));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Rng, DoubleIsInUnitInterval)
{
    Rng rng(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.next_double();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U(0,1) samples is ~0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RoughlyUniformBuckets)
{
    Rng rng(1234);
    std::vector<int> buckets(8, 0);
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i)
        ++buckets[rng.next_below(8)];
    for (const int b : buckets) {
        EXPECT_GT(b, kDraws / 8 * 0.9);
        EXPECT_LT(b, kDraws / 8 * 1.1);
    }
}

}  // namespace
}  // namespace memif::sim
