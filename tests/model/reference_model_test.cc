/**
 * @file
 * The model checker's own foundations: workload generation must be
 * deterministic and structurally sound (that is what makes the
 * differential oracle valid), and the reference model must interpret
 * workloads the way the docs claim.
 */
#include <gtest/gtest.h>

#include <vector>

#include "check/reference_model.h"
#include "check/workload.h"

namespace memif::check {
namespace {

using core::MovError;
using core::MovOp;
using core::MovStatus;
using core::RacePolicy;

TEST(WorkloadGenerator, IsDeterministic)
{
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 0xDEADBEEFull}) {
        const Workload a = generate_workload(seed);
        const Workload b = generate_workload(seed);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_FALSE(a.ops.empty());
    }
}

TEST(WorkloadGenerator, DifferentSeedsDiffer)
{
    EXPECT_NE(generate_workload(1), generate_workload(2));
}

TEST(WorkloadGenerator, EndsQuiesced)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        const Workload w = generate_workload(seed);
        ASSERT_FALSE(w.ops.empty());
        EXPECT_EQ(w.ops.back().kind, OpKind::kBarrier) << "seed " << seed;
    }
}

// The disjointness invariant the whole differential scheme rests on:
// between barriers, no two valid requests may share a page.
TEST(WorkloadGenerator, ConcurrentRequestsHaveDisjointPages)
{
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const Workload w = generate_workload(seed);
        std::vector<std::vector<bool>> used;
        for (const RegionSpec &r : w.regions)
            used.emplace_back(r.pages, false);
        auto take = [&](std::uint32_t region, std::uint64_t first,
                        std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                ASSERT_LT(first + i, used[region].size())
                    << "seed " << seed << ": page out of range";
                EXPECT_FALSE(used[region][first + i])
                    << "seed " << seed << ": page " << first + i
                    << " of region " << region
                    << " used twice in one phase";
                used[region][first + i] = true;
            }
        };
        for (const WorkloadOp &op : w.ops) {
            if (op.kind == OpKind::kBarrier) {
                for (auto &u : used)
                    std::fill(u.begin(), u.end(), false);
                continue;
            }
            for (const MovSpec &m : op.movs) {
                if (m.malform != Malform::kNone) continue;
                take(m.src_region, m.src_page, m.num_pages);
                if (m.op == MovOp::kReplicate) {
                    const std::uint64_t bytes =
                        m.num_pages *
                        vm::page_bytes(w.regions[m.src_region].psize);
                    const std::uint64_t dst_pb =
                        vm::page_bytes(w.regions[m.dst_region].psize);
                    take(m.dst_region, m.dst_page,
                         (bytes + dst_pb - 1) / dst_pb);
                }
            }
        }
    }
}

Workload
tiny_workload()
{
    Workload w;
    w.seed = 99;
    w.regions = {RegionSpec{8, vm::PageSize::k4K, 10},
                 RegionSpec{8, vm::PageSize::k4K, 200}};
    WorkloadOp rep;
    rep.kind = OpKind::kMov;
    rep.movs = {MovSpec{MovOp::kReplicate, 0, 2, 3, 1, 1, false, false,
                        Malform::kNone}};
    WorkloadOp mig;
    mig.kind = OpKind::kMov;
    mig.movs = {
        MovSpec{MovOp::kMigrate, 0, 6, 2, 0, 0, true, false,
                Malform::kNone}};
    WorkloadOp touch;
    touch.kind = OpKind::kTouch;
    touch.touch = TouchSpec{0, 7, true};
    w.ops = {rep, mig, touch, WorkloadOp{}};
    return w;
}

TEST(ReferenceModel, AppliesCommittedReplications)
{
    const Workload w = tiny_workload();
    ReferenceModel model(w);
    ASSERT_EQ(model.num_movs(), 2u);

    const std::uint64_t pb = vm::page_bytes(vm::PageSize::k4K);
    // Before commit: the destination region holds its own pattern.
    EXPECT_EQ(model.memory(1)[1 * pb], pat_byte(200, 1 * pb));
    model.commit(0, MovStatus::kDone);
    // After: bytes of region 0 pages [2,5) landed at region 1 page 1.
    for (std::uint64_t i = 0; i < 3 * pb; ++i)
        ASSERT_EQ(model.memory(1)[1 * pb + i], pat_byte(10, 2 * pb + i))
            << "offset " << i;
    // Region 0 (the source) is untouched.
    for (std::uint64_t i = 0; i < model.memory(0).size(); ++i)
        ASSERT_EQ(model.memory(0)[i], pat_byte(10, i));
}

TEST(ReferenceModel, FailedReplicationLeavesMemoryAlone)
{
    const Workload w = tiny_workload();
    ReferenceModel model(w);
    model.commit(0, MovStatus::kFailed);
    for (std::uint64_t i = 0; i < model.memory(1).size(); ++i)
        ASSERT_EQ(model.memory(1)[i], pat_byte(200, i));
}

TEST(ReferenceModel, MigrationsNeverChangeMemory)
{
    const Workload w = tiny_workload();
    ReferenceModel model(w);
    model.commit(1, MovStatus::kDone);
    for (std::uint64_t i = 0; i < model.memory(0).size(); ++i)
        ASSERT_EQ(model.memory(0)[i], pat_byte(10, i));
}

TEST(ReferenceModel, OutcomeSetsFollowPolicyAndRaces)
{
    const Workload w = tiny_workload();
    ReferenceModel model(w);
    // Mov 1 is the migration; the touch (region 0 page 7) overlaps its
    // pages [6, 8) in the same phase -> may_race.
    EXPECT_TRUE(model.mov(1).may_race);
    EXPECT_FALSE(model.mov(0).may_race);

    OutcomeContext detect{RacePolicy::kDetect, false, true};
    OutcomeContext recover{RacePolicy::kRecover, false, true};
    std::string why;

    EXPECT_TRUE(model.outcome_allowed(1, MovStatus::kDone,
                                      MovError::kNone, detect, &why));
    EXPECT_TRUE(model.outcome_allowed(1, MovStatus::kRaceDetected,
                                      MovError::kRace, detect, &why));
    // A raced *abort* is the kRecover policy's outcome, not kDetect's.
    EXPECT_FALSE(model.outcome_allowed(1, MovStatus::kAborted,
                                       MovError::kAborted, detect, &why));
    EXPECT_TRUE(model.outcome_allowed(1, MovStatus::kAborted,
                                      MovError::kAborted, recover, &why));
    // Node exhaustion is always acceptable for a migration.
    EXPECT_TRUE(model.outcome_allowed(1, MovStatus::kFailed,
                                      MovError::kNoMemory, detect, &why));
    // DMA errors are only acceptable when faults are armed AND the
    // CPU-copy fallback is off.
    EXPECT_FALSE(model.outcome_allowed(1, MovStatus::kFailed,
                                       MovError::kDmaError, detect,
                                       &why));
    OutcomeContext faulted{RacePolicy::kDetect, true, false};
    EXPECT_TRUE(model.outcome_allowed(1, MovStatus::kFailed,
                                      MovError::kDmaError, faulted,
                                      &why));

    // The replication never races.
    EXPECT_TRUE(model.outcome_allowed(0, MovStatus::kDone,
                                      MovError::kNone, detect, &why));
    EXPECT_FALSE(model.outcome_allowed(0, MovStatus::kRaceDetected,
                                       MovError::kRace, detect, &why));
}

TEST(ReferenceModel, MalformedRequestsRequireTheirValidationError)
{
    Workload w;
    w.seed = 5;
    w.regions = {RegionSpec{4, vm::PageSize::k4K, 1}};
    WorkloadOp bad;
    bad.kind = OpKind::kMov;
    MovSpec m;
    m.malform = Malform::kBadNode;
    bad.movs = {m};
    w.ops = {bad, WorkloadOp{}};

    ReferenceModel model(w);
    OutcomeContext ctx{RacePolicy::kDetect, false, true};
    std::string why;
    EXPECT_TRUE(model.outcome_allowed(0, MovStatus::kFailed,
                                      MovError::kBadNode, ctx, &why));
    EXPECT_FALSE(model.outcome_allowed(0, MovStatus::kDone,
                                       MovError::kNone, ctx, &why));
    EXPECT_FALSE(model.outcome_allowed(0, MovStatus::kFailed,
                                       MovError::kBadAddress, ctx, &why));
}

TEST(Workload, DropOpsPreservesTrailingBarrier)
{
    const Workload w = generate_workload(3);
    const Workload shrunk = drop_ops(w, w.ops.size() - 1, 1);
    ASSERT_FALSE(shrunk.ops.empty());
    EXPECT_EQ(shrunk.ops.back().kind, OpKind::kBarrier);
    const Workload empty = drop_ops(w, 0, w.ops.size());
    ASSERT_EQ(empty.ops.size(), 1u);
    EXPECT_EQ(empty.ops.back().kind, OpKind::kBarrier);
}

}  // namespace
}  // namespace memif::check
