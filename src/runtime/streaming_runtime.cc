#include "runtime/streaming_runtime.h"

#include <algorithm>

#include "sim/log.h"

namespace memif::runtime {

namespace {

/**
 * Feed @p bytes at @p va into the kernel page by page (virtually
 * contiguous memory need not be physically contiguous).
 */
void
process_region(StreamKernel &kernel, vm::AddressSpace &as, vm::VAddr va,
               std::uint64_t bytes, std::uint64_t page_bytes)
{
    std::uint64_t off = 0;
    while (off < bytes) {
        const std::uint64_t chunk = std::min(page_bytes, bytes - off);
        const std::byte *p = as.translate(va + off);
        MEMIF_ASSERT(p != nullptr, "stream region not mapped");
        kernel.process(p, chunk);
        off += chunk;
    }
}

}  // namespace

StreamingRuntime::StreamingRuntime(os::Kernel &kernel, os::Process &proc,
                                   core::MemifDevice &device,
                                   RuntimeConfig config)
    : kernel_(kernel),
      proc_(proc),
      device_(device),
      user_(device),
      config_(config),
      buffers_(config.num_buffers)
{
    MEMIF_ASSERT(config_.num_buffers > 0 && config_.buffer_bytes > 0);
    MEMIF_ASSERT(config_.buffer_bytes %
                     vm::page_bytes(config_.page_size) == 0,
                 "buffer size must be page-aligned");
    for (Buffer &buf : buffers_) {
        buf.base = proc_.mmap(config_.buffer_bytes, config_.page_size,
                              kernel_.fast_node());
        if (buf.base == 0)
            MEMIF_FATAL("fast memory cannot back %u x %llu prefetch buffers",
                        config_.num_buffers,
                        static_cast<unsigned long long>(config_.buffer_bytes));
    }
}

sim::Task
StreamingRuntime::submit_fill(Buffer &buf, vm::VAddr src,
                              std::uint64_t offset, std::uint64_t bytes)
{
    const std::uint32_t idx = user_.alloc_request();
    MEMIF_ASSERT(idx != core::kNoRequest,
                 "memif instance too small for the buffer count");
    core::MovReq &req = user_.request(idx);
    req.op = core::MovOp::kReplicate;
    req.src_base = src + offset;
    req.dst_base = buf.base;
    req.num_pages = static_cast<std::uint32_t>(
        (bytes + vm::page_bytes(config_.page_size) - 1) /
        vm::page_bytes(config_.page_size));
    buf.req = idx;
    buf.chunk_offset = offset;
    buf.ready = false;
    co_await user_.submit(idx);
}

sim::Task
StreamingRuntime::run(vm::VAddr src, std::uint64_t total_bytes,
                      StreamKernel &kernel, StreamRunResult *out)
{
    const sim::SimTime t0 = kernel_.eq().now();
    const std::uint64_t chunk = config_.buffer_bytes;
    const double slow_bw =
        kernel_.phys().node(kernel_.slow_node()).bandwidth_bps();
    const std::uint64_t page_bytes = vm::page_bytes(config_.page_size);

    kernel.reset();
    StreamRunResult result;
    std::uint64_t next_offset = 0;   // next stream offset to assign
    std::uint64_t consumed = 0;

    // Fill every buffer up front ("as soon as one application starts,
    // the runtime fills all buffers ... asynchronously"). Submissions
    // run as separate application threads: a kick ioctl then overlaps
    // with compute, as it does on the real 4-core machine where the
    // workload computes on all cores while one thread manages buffers.
    for (Buffer &buf : buffers_) {
        if (next_offset >= total_bytes) break;
        const std::uint64_t bytes = std::min(chunk, total_bytes - next_offset);
        kernel_.spawn(submit_fill(buf, src, next_offset, bytes));
        next_offset += bytes;
    }

    while (consumed < total_bytes) {
        const std::uint32_t done = user_.retrieve_completed();
        if (done != core::kNoRequest) {
            // A buffer is ready: consume it with all cores, then refill.
            auto it = std::find_if(
                buffers_.begin(), buffers_.end(),
                [done](const Buffer &b) { return b.req == done; });
            MEMIF_ASSERT(it != buffers_.end(), "orphan completion");
            MEMIF_ASSERT(user_.request(done).succeeded(),
                         "prefetch replication failed");
            Buffer &buf = *it;
            const std::uint64_t bytes =
                std::min(chunk, total_bytes - buf.chunk_offset);
            user_.free_request(done);
            buf.req = core::kNoRequest;

            co_await kernel_.cpu().busy(
                sim::ExecContext::kUser, sim::Op::kOther,
                kernel.model().consume_time_fast(bytes));
            process_region(kernel, proc_.as(), buf.base, bytes, page_bytes);
            consumed += bytes;
            ++result.chunks_from_fast;

            if (next_offset < total_bytes) {
                const std::uint64_t nbytes =
                    std::min(chunk, total_bytes - next_offset);
                kernel_.spawn(submit_fill(buf, src, next_offset, nbytes));
                next_offset += nbytes;
            }
            continue;
        }
        if (next_offset < total_bytes) {
            // No prefetched data ready: consume the next chunk straight
            // from slow memory (§6.6 fallback).
            const std::uint64_t bytes =
                std::min(chunk, total_bytes - next_offset);
            co_await kernel_.cpu().busy(
                sim::ExecContext::kUser, sim::Op::kOther,
                kernel.model().consume_time_slow(bytes, slow_bw));
            process_region(kernel, proc_.as(), src + next_offset, bytes,
                           page_bytes);
            consumed += bytes;
            next_offset += bytes;
            ++result.chunks_from_slow;
            continue;
        }
        // Everything is fetched or in flight: sleep for notifications.
        co_await user_.poll();
    }

    result.bytes_consumed = consumed;
    result.elapsed = kernel_.eq().now() - t0;
    result.result_digest = kernel.result();
    if (out) *out = result;
}

sim::Task
StreamingRuntime::run_direct(vm::VAddr src, std::uint64_t total_bytes,
                             StreamKernel &kernel, StreamRunResult *out)
{
    const sim::SimTime t0 = kernel_.eq().now();
    const std::uint64_t chunk = config_.buffer_bytes;
    const double slow_bw =
        kernel_.phys().node(kernel_.slow_node()).bandwidth_bps();
    const std::uint64_t page_bytes = vm::page_bytes(config_.page_size);

    kernel.reset();
    StreamRunResult result;
    std::uint64_t consumed = 0;
    while (consumed < total_bytes) {
        const std::uint64_t bytes = std::min(chunk, total_bytes - consumed);
        co_await kernel_.cpu().busy(
            sim::ExecContext::kUser, sim::Op::kOther,
            kernel.model().consume_time_slow(bytes, slow_bw));
        process_region(kernel, proc_.as(), src + consumed, bytes,
                       page_bytes);
        consumed += bytes;
        ++result.chunks_from_slow;
    }
    result.bytes_consumed = consumed;
    result.elapsed = kernel_.eq().now() - t0;
    result.result_digest = kernel.result();
    if (out) *out = result;
}

}  // namespace memif::runtime
