/**
 * @file
 * Gang translation cache: the driver-side cache of recent gang-lookup
 * results that lets repeated moves over hot regions skip the radix
 * page-table walk entirely (the TLB-prefetching / MMU-aware-DMA idea
 * applied to the memif submission path).
 *
 * Entries are keyed by (Vma, first page index) and cover a contiguous
 * page run. Invalidation is precise and eager: the AddressSpace
 * translation-invalidation hook (TLB shootdowns, CPU-side PTE CASes,
 * munmap / address-space teardown) drops every overlapping entry, so a
 * hit can never return a translation the page tables have moved away
 * from. Each entry carries the generation (a monotonic event counter)
 * at which it was recorded, which diagnostics and tests use to tell a
 * re-recorded entry from a surviving one.
 *
 * Purely functional: probe/maintenance *time* is charged by the driver
 * from CostModel::xlate_probe.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "vm/pte.h"
#include "vm/vma.h"

namespace memif {

class XlateCache {
  public:
    struct Entry {
        const vm::Vma *vma = nullptr;
        std::uint64_t first_page = 0;
        /** Cached translations for pages [first_page, first_page+size). */
        std::vector<vm::Pte> ptes;
        /** Invalidation-event generation at record time. */
        std::uint64_t generation = 0;
        /** LRU stamp (bumped on hit). */
        std::uint64_t tick = 0;

        std::uint64_t num_pages() const { return ptes.size(); }

        bool
        covers(const vm::Vma *v, std::uint64_t first, std::uint64_t n) const
        {
            return vma == v && first >= first_page &&
                   first + n <= first_page + num_pages();
        }
    };

    explicit XlateCache(std::size_t max_entries)
        : max_entries_(max_entries ? max_entries : 1)
    {
    }

    /**
     * Entry covering pages [first, first+n) of @p vma, or nullptr.
     * A hit refreshes the entry's LRU position.
     */
    const Entry *lookup(const vm::Vma *vma, std::uint64_t first,
                        std::uint64_t n);

    /**
     * Record a freshly walked run starting at page @p first. Replaces
     * any entry with the same key; evicts the least recently used
     * entry when the cache is full.
     */
    void record(const vm::Vma *vma, std::uint64_t first,
                std::vector<vm::Pte> ptes);

    /**
     * Drop every entry overlapping pages [first, first+n) of @p vma
     * and bump the generation. Pending prefetches overlapping the range
     * are marked killed so their eventual fill_prefetch() is discarded
     * (the walk they snapshot may predate the PTE change).
     * @return the number of entries dropped.
     */
    std::uint64_t invalidate(const vm::Vma *vma, std::uint64_t first,
                             std::uint64_t n);

    /**
     * An in-flight ahead-of-stream translation prefetch: issued when
     * the walk is scheduled, filled when it completes. The window
     * between the two is where an invalidation can land; the
     * generation check at fill time is what makes that race safe.
     */
    struct Pending {
        const vm::Vma *vma = nullptr;
        std::uint64_t first_page = 0;
        std::uint64_t num_pages = 0;
        std::uint64_t token = 0;
        bool killed = false;
    };

    /**
     * Register an in-flight prefetch for pages [first, first+n) of
     * @p vma. @return a token to pass to fill_prefetch() when the
     * simulated walk completes.
     */
    std::uint64_t begin_prefetch(const vm::Vma *vma, std::uint64_t first,
                                 std::uint64_t n);

    /**
     * Complete the prefetch registered under @p token. If no
     * invalidation overlapped the range in the meantime, the walked
     * @p ptes are record()ed and true is returned; otherwise the fill
     * is dropped (stale walk) and false is returned.
     */
    bool fill_prefetch(std::uint64_t token, std::vector<vm::Pte> ptes);

    /** In-flight prefetches (diagnostics / tests). */
    const std::vector<Pending> &pending_prefetches() const
    {
        return pending_;
    }

    std::size_t size() const { return entries_.size(); }
    std::uint64_t generation() const { return generation_; }

    /** All live entries (diagnostics / invariant checks: eager
     *  invalidation means every surviving entry must still match the
     *  live page tables). */
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::size_t max_entries_;
    std::uint64_t generation_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t next_token_ = 0;
    std::vector<Entry> entries_;
    std::vector<Pending> pending_;
};

}  // namespace memif
