/**
 * @file
 * Ablation of the fault-injection framework and DMA error recovery:
 *
 *   1. Overhead proof: arming every fault site at probability zero must
 *      leave the virtual timeline bit-identical to running with the
 *      framework disabled — the recovery machinery (watchdogs, status
 *      tracking) is free on the happy path.
 *   2. TC-error rate sweep: as the per-chain error probability rises,
 *      throughput degrades from full EDMA3 speed towards the CPU
 *      byte-copy floor (p=1.0: every attempt fails, retries exhaust,
 *      and the driver falls back to memcpy for every request).
 */
#include <cstdio>

#include "dma/engine.h"
#include "harness.h"

namespace memif::bench {
namespace {

constexpr std::uint32_t kPages = 64;
constexpr std::uint32_t kRequests = 64;

StreamOutcome
run(double tc_error_rate, bool arm_all_at_zero = false)
{
    TestBed bed;
    sim::FaultInjector &faults = bed.kernel.faults();
    if (arm_all_at_zero) {
        faults.arm_probability(dma::kFaultTcError, 0.0);
        faults.arm_probability(dma::kFaultLostIrq, 0.0);
        faults.arm_probability(dma::kFaultStuck, 0.0);
        faults.arm_probability(core::kFaultAllocFail, 0.0);
    } else if (tc_error_rate > 0.0) {
        faults.arm_probability(dma::kFaultTcError, tc_error_rate);
    }
    RequestPlan plan{.op = core::MovOp::kMigrate,
                     .page_size = vm::PageSize::k4K,
                     .pages_per_request = kPages,
                     .num_requests = kRequests};
    StreamOutcome out = run_memif_stream(bed, plan);
    std::printf("%9llu %9llu %9llu",
                static_cast<unsigned long long>(bed.dev.stats().dma_errors),
                static_cast<unsigned long long>(bed.dev.stats().dma_retries),
                static_cast<unsigned long long>(
                    bed.dev.stats().fallback_copies));
    return out;
}

}  // namespace
}  // namespace memif::bench

int
main()
{
    using namespace memif::bench;
    namespace sim = memif::sim;

    header("Fault recovery: injection overhead and degradation to the "
           "CPU-copy floor");
    std::printf("workload: %u migration requests x %u x 4KB pages "
                "(ping-pong slow<->fast)\n\n",
                64u, 64u);

    // 1. Zero-fault overhead: the armed-at-zero timeline must be
    //    bit-identical to the unarmed one.
    std::printf("%-22s %9s %9s %9s %12s %9s\n", "configuration", "errors",
                "retries", "fallbacks", "elapsed_us", "GB/s");
    rule();
    sim::Duration base_elapsed = 0;
    {
        std::printf("%-22s ", "framework disabled");
        const StreamOutcome out = run(0.0);
        base_elapsed = out.elapsed;
        std::printf(" %12.1f %9.2f\n", sim::to_us(out.elapsed),
                    out.gb_per_sec());
    }
    {
        std::printf("%-22s ", "all sites armed, p=0");
        const StreamOutcome out = run(0.0, /*arm_all_at_zero=*/true);
        std::printf(" %12.1f %9.2f\n", sim::to_us(out.elapsed),
                    out.gb_per_sec());
        std::printf("\nzero-fault overhead: %s\n",
                    out.elapsed == base_elapsed
                        ? "NONE (timelines bit-identical)"
                        : "NON-ZERO (REGRESSION: recovery machinery is "
                          "not free)");
    }

    // 2. Throughput vs injected TC-error rate.
    std::printf("\n");
    header("Throughput vs injected DMA TC-error rate");
    std::printf("%-22s %9s %9s %9s %12s %9s\n", "tc_error rate", "errors",
                "retries", "fallbacks", "elapsed_us", "GB/s");
    rule();
    const double rates[] = {0.0, 0.001, 0.01, 0.05, 0.1, 0.2, 1.0};
    for (const double p : rates) {
        char label[32];
        std::snprintf(label, sizeof label, "p = %.3f%s", p,
                      p >= 1.0 ? "  (floor)" : "");
        std::printf("%-22s ", label);
        const StreamOutcome out = run(p);
        std::printf(" %12.1f %9.2f\n", sim::to_us(out.elapsed),
                    out.gb_per_sec());
    }
    rule();
    std::printf("\nexpected: GB/s falls monotonically with the error rate;"
                " at p=1.0 every\nchain exhausts its retries and the driver"
                " degrades to the CPU byte-copy\nfloor, which bounds the"
                " worst case.\n");
    return 0;
}
