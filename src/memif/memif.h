/**
 * @file
 * The memif user API, verbatim from the paper (§4.1, Fig. 2): C-style
 * functions over integer device descriptors, so application code reads
 * exactly like the paper's example:
 *
 *     int memfd = MemifOpen("/dev/memif0");
 *     struct mov_req *req = AllocRequest(memfd);
 *     // populate all the fields
 *     req->src_base = ...;
 *     SubmitRequest(req);                  // non-blocking
 *     ...
 *     if ((req = RetrieveCompleted(memfd)))
 *         ... consume ...
 *     Poll(memfd);                         // sleep for notifications
 *     MemifClose(memfd);
 *
 * The façade wraps MemifUser/MemifDevice. Device files are registered
 * per simulated kernel under names like "/dev/memif0"; because the
 * substrate is a simulation, SubmitRequest and Poll are awaitable
 * (sim::Task) rather than plain blocking calls — the one concession to
 * the host environment.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "memif/device.h"
#include "memif/mov_req.h"
#include "memif/user_api.h"
#include "sim/task.h"

namespace memif::core {

/** mov_req under its paper name. */
using mov_req = MovReq;

/** Errno-style results for the C API. */
inline constexpr int kOk = 0;
inline constexpr int kErrBadFd = -9;       ///< EBADF
inline constexpr int kErrNoEntry = -2;     ///< ENOENT
inline constexpr int kErrNoSpace = -28;    ///< ENOSPC (free list empty)

/**
 * Register @p device under @p name ("/dev/memif0"); done by whoever
 * creates devices (the analogue of the driver creating the device
 * node). Names are per-kernel.
 */
void RegisterDeviceFile(const std::string &name, MemifDevice &device);

/** Remove a registration (device teardown); descriptors still open on
 *  the device are invalidated. */
void UnregisterDeviceFile(const std::string &name);

/** Drop every registration and descriptor (test isolation). */
void ResetDeviceFiles();

/**
 * MemifOpen(): open a memif device file.
 * @return a nonnegative descriptor, or kErrNoEntry.
 */
int MemifOpen(const char *device_name);

/** MemifClose(): release the descriptor. @return kOk or kErrBadFd. */
int MemifClose(int memfd);

/**
 * AllocRequest(): take a blank mov_req off the instance's free list.
 * @return the request, or nullptr when none is available.
 */
mov_req *AllocRequest(int memfd);

/**
 * AllocRequest() with an errno-style result: @p out_rc (may be null)
 * receives kOk, kErrBadFd, or kErrNoSpace when the shared region's
 * free list is exhausted (the application holds every request slot).
 */
mov_req *AllocRequest(int memfd, int *out_rc);

/** FreeRequest(): return a consumed request to the free list. */
void FreeRequest(int memfd, mov_req *req);

/**
 * SubmitRequest(): submit a populated request; non-blocking from the
 * application's perspective (the coroutine only suspends for modelled
 * time, including the kick ioctl when the library decides one is
 * needed). @p out_rc receives kOk or an error.
 */
sim::Task SubmitRequest(int memfd, mov_req *req, int *out_rc = nullptr);

/**
 * memif_mov_many(): submit a batch of populated requests in one call.
 * The whole batch is deposited in the staging queue first, then the
 * §4.4 flush protocol runs at most once — one syscall crossing and one
 * kernel-thread wakeup amortized over @p count requests. Semantically
 * identical to @p count SubmitRequest() calls; only the interface cost
 * differs. Null entries are skipped. @p out_rc receives kOk, or
 * kErrBadFd for a bad descriptor.
 */
sim::Task memif_mov_many(int memfd, mov_req *const *reqs,
                         std::size_t count, int *out_rc = nullptr);

/**
 * memif_mov_strided(): allocate, populate and submit one strided
 * replication — `rows` rows of `row_bytes` each, read `src_pitch`
 * apart from @p src and written `dst_pitch` apart at @p dst (the
 * strided_dma lever must be on). Pitch == row_bytes degenerates to a
 * flat copy. Non-blocking like SubmitRequest(); the caller retrieves
 * the completion and frees the request as usual. @p out_req (may be
 * null) receives the submitted request so the caller can match the
 * notification — including after an admission rejection, which also
 * travels the completion queue (read retry_after_us off the request).
 * @p out_rc receives kOk, kErrBadFd (nothing allocated), or
 * kErrNoSpace (free list empty and nothing allocated, or admission
 * rejected with *out_req set). Malformed geometry surfaces on the
 * completion queue as kFailed/kBadRequest, exactly like other
 * validation failures.
 */
sim::Task memif_mov_strided(int memfd, std::uint64_t dst,
                            std::uint64_t src, std::uint32_t row_bytes,
                            std::uint32_t rows, std::uint64_t src_pitch,
                            std::uint64_t dst_pitch,
                            int *out_rc = nullptr,
                            mov_req **out_req = nullptr);

/**
 * memif_mov_gather(): the gather form of memif_mov_strided(): the
 * per-row source addresses come from @p gather_list, the virtual
 * address of a u64 array of `rows` entries (8-byte aligned). Every row
 * must lie inside the vma containing @p src_region (any address inside
 * the source mapping). Rows land at @p dst, `dst_pitch` apart.
 */
sim::Task memif_mov_gather(int memfd, std::uint64_t dst,
                           std::uint64_t src_region,
                           std::uint64_t gather_list,
                           std::uint32_t row_bytes, std::uint32_t rows,
                           std::uint64_t dst_pitch,
                           int *out_rc = nullptr,
                           mov_req **out_req = nullptr);

/**
 * RetrieveCompleted(): one completion notification, or nullptr if none
 * is pending. Never blocks.
 */
mov_req *RetrieveCompleted(int memfd);

/**
 * Poll(): sleep until the instance has a pending notification — the
 * paper's poll(fdset) on one device file.
 */
sim::Task Poll(int memfd);

/**
 * PollFds(): the full poll(fdset) of Figure 2 — sleep until ANY of the
 * given memif descriptors has a pending notification. @p out_ready
 * receives a descriptor that is ready (-1 when @p fds was empty or all
 * invalid).
 */
sim::Task PollFds(std::vector<int> fds, int *out_ready);

}  // namespace memif::core
