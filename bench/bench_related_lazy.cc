/**
 * @file
 * Related-work comparison (§7): three ways to get a 4 MB working set
 * into fast memory before computing over it four times.
 *
 *   eager  — Linux migrate_pages(): the app blocks while the CPU
 *            copies everything, then computes at fast speed.
 *   lazy   — Goglin-style deferred migration: arming is instant, but
 *            the first compute pass pays a full per-page migration at
 *            every fault ("defer migration without addressing the
 *            major inefficiency").
 *   memif  — asynchronous DMA migration: the request returns in
 *            microseconds, the engine moves the data while the CPU is
 *            free, and compute starts on the completion notification.
 *
 * Reported: how long the app was blocked by the request, when the data
 * was fully fast-resident, total wall time for request + 4 passes, and
 * the CPU consumed.
 */
#include <cstdio>

#include "harness.h"
#include "memif/user_api.h"
#include "os/page_migration.h"

namespace memif::bench {
namespace {

constexpr std::uint64_t kPages = 1024;  // 4 MB of 4 KB pages
constexpr int kPasses = 4;
constexpr double kFastRate = 3.2e9;   // streaming compute over SRAM
constexpr double kSlowRate = 2.37e9;  // over DDR (triad-like)

struct Outcome {
    double request_us = 0;    ///< app blocked in the request call
    double resident_us = 0;   ///< all pages fast, from t0
    double total_ms = 0;      ///< request + 4 compute passes
    double cpu_ms = 0;
};

/** One streaming pass; pages compute at their current node's rate. */
sim::Task
compute_pass(TestBed &bed, vm::VAddr base, bool faults_allowed)
{
    vm::Vma *vma = bed.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < kPages; ++i) {
        if (faults_allowed) {
            os::TouchOutcome out;
            co_await bed.proc.touch(vma->page_vaddr(i), true, &out);
        }
        const bool fast = bed.kernel.phys().node_of(vma->pte(i).pfn) ==
                          bed.kernel.fast_node();
        const double rate = fast ? kFastRate : kSlowRate;
        co_await bed.kernel.cpu().busy(
            sim::ExecContext::kUser, sim::Op::kOther,
            static_cast<sim::Duration>(4096.0 / rate * 1e9));
    }
}

Outcome
run_eager()
{
    TestBed bed;
    const vm::VAddr base = bed.proc.mmap(kPages * 4096, vm::PageSize::k4K);
    Outcome o;
    auto app = [&]() -> sim::Task {
        os::MigrationResult res;
        co_await os::migrate_pages_sync(bed.proc, base, kPages,
                                        bed.kernel.fast_node(), &res);
        o.request_us = sim::to_us(bed.kernel.eq().now());
        o.resident_us = o.request_us;
        for (int p = 0; p < kPasses; ++p)
            co_await compute_pass(bed, base, false);
    };
    auto t = app();
    bed.kernel.run();
    o.total_ms = sim::to_ms(bed.kernel.eq().now());
    o.cpu_ms = sim::to_ms(bed.kernel.cpu().accounting().total);
    return o;
}

Outcome
run_lazy()
{
    TestBed bed;
    const vm::VAddr base = bed.proc.mmap(kPages * 4096, vm::PageSize::k4K);
    Outcome o;
    auto app = [&]() -> sim::Task {
        os::MigrationResult res;
        co_await os::mbind_lazy(bed.proc, base, kPages,
                                bed.kernel.fast_node(), &res);
        o.request_us = sim::to_us(bed.kernel.eq().now());
        for (int p = 0; p < kPasses; ++p)
            co_await compute_pass(bed, base, /*faults_allowed=*/true);
    };
    auto t = app();
    bed.kernel.run();
    // Residency completes when the first pass has faulted every page.
    o.resident_us = o.request_us;  // refined below: end of pass 1
    o.total_ms = sim::to_ms(bed.kernel.eq().now());
    o.cpu_ms = sim::to_ms(bed.kernel.cpu().accounting().total);
    // Pass 1 duration dominates the residency point; report it as the
    // time after which every page had migrated.
    o.resident_us = 1e3 * o.total_ms -
                    3.0 * (kPages * 4096.0 / kFastRate * 1e6);
    return o;
}

Outcome
run_memif()
{
    TestBed bed;
    const vm::VAddr base = bed.proc.mmap(kPages * 4096, vm::PageSize::k4K);
    Outcome o;
    auto app = [&]() -> sim::Task {
        // One request covers 512 pages: submit two.
        for (int half = 0; half < 2; ++half) {
            const std::uint32_t idx = bed.user.alloc_request();
            core::MovReq &req = bed.user.request(idx);
            req.op = core::MovOp::kMigrate;
            req.src_base = base + static_cast<vm::VAddr>(half) * 512 * 4096;
            req.num_pages = 512;
            req.dst_node = bed.kernel.fast_node();
            co_await bed.user.submit(idx);
        }
        o.request_us = sim::to_us(bed.kernel.eq().now());
        // The CPU is free here — a real app computes on other data.
        // Sleep for the notifications, then compute at full speed.
        unsigned done = 0;
        while (done < 2) {
            const std::uint32_t idx = bed.user.retrieve_completed();
            if (idx == core::kNoRequest) {
                co_await bed.user.poll();
                continue;
            }
            bed.user.free_request(idx);
            ++done;
        }
        o.resident_us = sim::to_us(bed.kernel.eq().now());
        for (int p = 0; p < kPasses; ++p)
            co_await compute_pass(bed, base, false);
    };
    auto t = app();
    bed.kernel.run();
    o.total_ms = sim::to_ms(bed.kernel.eq().now());
    o.cpu_ms = sim::to_ms(bed.kernel.cpu().accounting().total);
    return o;
}

void
row(const char *name, const Outcome &o)
{
    std::printf("%-8s %12.1f %13.1f %10.2f %8.2f\n", name, o.request_us,
                o.resident_us, o.total_ms, o.cpu_ms);
}

}  // namespace
}  // namespace memif::bench

int
main()
{
    using namespace memif::bench;
    header("Related work (\xc2\xa7" "7): eager vs lazy vs memif — "
           "move 4 MB, compute 4 passes");
    std::printf("%-8s %12s %13s %10s %8s\n", "strategy", "blocked_us",
                "resident_us", "total_ms", "cpu_ms");
    rule();
    row("eager", run_eager());
    row("lazy", run_lazy());
    row("memif", run_memif());
    rule();
    std::printf(
        "\neager blocks the app for the whole CPU copy; lazy returns\n"
        "instantly but the first pass crawls through per-page faults\n"
        "(same total work, deferred); memif returns at the first DMA\n"
        "trigger, the engine moves the data off-CPU, and both total\n"
        "time and total CPU drop.\n");
    return 0;
}
