/**
 * @file
 * Strided/gather replication tests at the memif device and C-API
 * layers: pitched copies must land exactly the bytes of a per-row
 * oracle (flat-degenerate, padded pitches, rows splitting at page
 * boundaries, mixed 64K/4K page sizes, SVA-routed streams, gathers),
 * the fault ladder must never tear a row (TC-error exhaustion rolls
 * back whole, the CPU fallback preserves the layout, a lost IRQ is
 * absorbed), and the C-API wrappers must surface malformed geometry,
 * lever-off rejection, admission bounces (with a usable retry hint)
 * and bad descriptors exactly like their flat siblings.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/engine.h"
#include "memif/memif.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/random.h"
#include "sim/types.h"

namespace memif::core {
namespace {

MemifConfig
strided_cfg()
{
    // The strided lever alone: sva_dma stays off, so pitch-uniform
    // page-interior rows fold into true 2D (A/B-count) descriptors —
    // the geometry path these tests are aimed at.
    MemifConfig cfg;
    cfg.strided_dma = true;
    return cfg;
}

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = strided_cfg())
        : kernel(os::KernelConfig{.far_bytes = 64ull << 20}),
          proc(kernel.create_process()),
          dev(kernel, proc, cfg),
          user(dev)
    {
    }

    ~Fixture()
    {
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    sim::FaultInjector &faults() { return kernel.faults(); }

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    std::vector<std::uint8_t>
    snap(vm::VAddr base, std::uint64_t bytes)
    {
        std::vector<std::uint8_t> buf(bytes);
        EXPECT_TRUE(proc.as().read(base, buf.data(), bytes));
        return buf;
    }

    /** Populate and spawn one strided replication via the user lib. */
    std::uint32_t
    submit_strided(vm::VAddr src, vm::VAddr dst, std::uint32_t row_bytes,
                   std::uint32_t rows, std::uint64_t src_pitch,
                   std::uint64_t dst_pitch, std::uint64_t gather_list = 0)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = MovOp::kReplicate;
        req.src_base = src;
        req.dst_base = dst;
        req.num_pages = 0;
        req.rows = rows;
        req.row_bytes = row_bytes;
        req.src_pitch = src_pitch;
        req.dst_pitch = dst_pitch;
        req.gather_list = gather_list;
        kernel.spawn(user.submit(idx));
        return idx;
    }
};

/** What dst must hold after the move: the naive per-row memcpy. */
std::vector<std::uint8_t>
oracle(Fixture &f, vm::VAddr src, vm::VAddr dst, std::uint32_t row_bytes,
       std::uint32_t rows, std::uint64_t sp, std::uint64_t dp)
{
    const std::uint64_t dspan = (std::uint64_t{rows} - 1) * dp + row_bytes;
    const std::uint64_t sspan = (std::uint64_t{rows} - 1) * sp + row_bytes;
    std::vector<std::uint8_t> want = f.snap(dst, dspan);
    const std::vector<std::uint8_t> have = f.snap(src, sspan);
    for (std::uint32_t r = 0; r < rows; ++r)
        std::memcpy(want.data() + r * dp, have.data() + r * sp, row_bytes);
    return want;
}

constexpr std::uint64_t kPb = 4096;

TEST(Strided, FlatPitchDegeneratesAndMatchesOracle)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(4 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(4 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 4 * kPb, 7);
    f.fill(dst, 4 * kPb, 201);

    // pitch == row_bytes on both sides: a flat copy in 2D clothing.
    const auto want = oracle(f, src, dst, 512, 8, 512, 512);
    const std::uint32_t idx = f.submit_strided(src, dst, 512, 8, 512, 512);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.snap(dst, want.size()), want);
    EXPECT_EQ(f.dev.stats().strided_requests, 1u);
    EXPECT_EQ(f.dev.stats().strided_rows_moved, 8u);
    // Bytes outside the written span survive untouched.
    const auto tail = f.snap(dst + want.size(), kPb);
    for (std::uint64_t i = 0; i < tail.size(); ++i)
        ASSERT_EQ(tail[i],
                  static_cast<std::uint8_t>(201 + (want.size() + i) * 13));
}

TEST(Strided, PitchedCopyMatchesPerRowOracle)
{
    // Randomized geometries, pinned seeds; every shape replays.
    for (const std::uint64_t seed : {3ull, 17ull, 400ull}) {
        Fixture f;
        sim::Rng rng(seed);
        const std::uint64_t bytes = 64 * kPb;
        const vm::VAddr src = f.proc.mmap(bytes, vm::PageSize::k4K);
        const vm::VAddr dst =
            f.proc.mmap(bytes, vm::PageSize::k4K, f.kernel.fast_node());
        f.fill(src, bytes, static_cast<std::uint8_t>(seed));
        f.fill(dst, bytes, static_cast<std::uint8_t>(seed + 101));

        for (unsigned round = 0; round < 12; ++round) {
            const std::uint32_t rows =
                2 + static_cast<std::uint32_t>(rng.next_below(14));
            const std::uint32_t rb =
                16 + static_cast<std::uint32_t>(rng.next_below(2000));
            const std::uint64_t sp = rb + 8 * rng.next_below(256);
            const std::uint64_t dp = rb + 8 * rng.next_below(256);
            const std::uint64_t sspan = (std::uint64_t{rows} - 1) * sp + rb;
            const std::uint64_t dspan = (std::uint64_t{rows} - 1) * dp + rb;
            if (sspan > bytes || dspan > bytes) continue;
            const std::uint64_t soff = rng.next_below(bytes - sspan + 1);
            const std::uint64_t doff = rng.next_below(bytes - dspan + 1);

            const auto want =
                oracle(f, src + soff, dst + doff, rb, rows, sp, dp);
            const std::uint32_t idx =
                f.submit_strided(src + soff, dst + doff, rb, rows, sp, dp);
            f.kernel.run();
            ASSERT_EQ(f.user.request(idx).load_status(), MovStatus::kDone)
                << "seed " << seed << " round " << round;
            ASSERT_EQ(f.snap(dst + doff, want.size()), want)
                << "seed " << seed << " round " << round << ": rows "
                << rows << " rb " << rb << " sp " << sp << " dp " << dp;
        }
        EXPECT_GT(f.dev.stats().strided_requests, 0u);
        EXPECT_GT(f.dev.stats().strided_descriptors, 0u);
    }
}

TEST(Strided, RowsSplitAtPageBoundariesAndAcrossPageSizes)
{
    Fixture f;
    // Source on 64K pages, destination on 4K: destination rows tile
    // straight across 4 KB frame boundaries, so nearly every row
    // splits on the dst side while the src side stays page-interior.
    const vm::VAddr src = f.proc.mmap(4ull << 16, vm::PageSize::k64K);
    const vm::VAddr dst =
        f.proc.mmap(16 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 4ull << 16, 33);
    f.fill(dst, 16 * kPb, 90);

    const std::uint32_t rows = 12, rb = 3000;
    const auto want = oracle(f, src, dst, rb, rows, 5000, rb);
    const std::uint32_t idx = f.submit_strided(src, dst, rb, rows, 5000, rb);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.snap(dst, want.size()), want);
    EXPECT_GT(f.dev.stats().strided_row_splits, 0u);
}

TEST(Strided, SvaStreamDeliversSameBytes)
{
    // The same geometry through the non-SVA (2D descriptors) and SVA
    // (per-row translation slots) routes must land identical bytes.
    const std::uint32_t rows = 9, rb = 700;
    const std::uint64_t sp = 1100, dp = 800;
    std::vector<std::uint8_t> got[2];
    for (int leg = 0; leg < 2; ++leg) {
        MemifConfig cfg = strided_cfg();
        cfg.sva_dma = leg == 1;
        Fixture f(cfg);
        const vm::VAddr src = f.proc.mmap(8 * kPb, vm::PageSize::k4K);
        const vm::VAddr dst =
            f.proc.mmap(8 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
        f.fill(src, 8 * kPb, 55);
        f.fill(dst, 8 * kPb, 120);

        const auto want = oracle(f, src, dst, rb, rows, sp, dp);
        const std::uint32_t idx = f.submit_strided(src, dst, rb, rows, sp, dp);
        f.kernel.run();
        EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
        got[leg] = f.snap(dst, want.size());
        EXPECT_EQ(got[leg], want) << "leg " << leg;
        if (leg == 0) {
            EXPECT_GT(f.dev.stats().strided_descriptors, 0u);
        } else {
            // SVA streams keep per-row 1:1 slots; no 2D folding.
            EXPECT_EQ(f.dev.stats().strided_descriptors, 0u);
        }
    }
    EXPECT_EQ(got[0], got[1]);
}

TEST(StridedFaults, TcErrorExhaustsRetriesWithoutTearingRows)
{
    MemifConfig cfg = strided_cfg();
    cfg.cpu_copy_fallback = false;  // let the DMA error reach the app
    Fixture f(cfg);
    const vm::VAddr src = f.proc.mmap(8 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(8 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 8 * kPb, 11);
    f.fill(dst, 8 * kPb, 222);

    // First chain and all dma_max_retries retries fail.
    f.faults().arm_nth(dma::kFaultTcError, 1, 1 + cfg.dma_max_retries);
    const std::uint32_t idx = f.submit_strided(src, dst, 900, 10, 1300, 1000);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idx).error, MovError::kDmaError);
    // No torn rows: the whole destination window still reads its old
    // pattern — a failed pitched move lands nothing, not half a row.
    const auto after = f.snap(dst, 8 * kPb);
    for (std::uint64_t i = 0; i < after.size(); ++i)
        ASSERT_EQ(after[i], static_cast<std::uint8_t>(222 + i * 13))
            << "byte " << i;
}

TEST(StridedFaults, CpuFallbackPreservesLayout)
{
    Fixture f;  // default strided cfg: cpu_copy_fallback on
    const vm::VAddr src = f.proc.mmap(8 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(8 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 8 * kPb, 14);
    f.fill(dst, 8 * kPb, 77);

    f.faults().arm_nth(dma::kFaultTcError, 1, 4);
    const auto want = oracle(f, src, dst, 900, 10, 1300, 1000);
    const std::uint32_t idx = f.submit_strided(src, dst, 900, 10, 1300, 1000);
    f.kernel.run();

    // The fallback replays the exact row geometry: the app sees the
    // same bytes a healthy DMA would have delivered.
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.snap(dst, want.size()), want);
    EXPECT_GT(f.dev.stats().fallback_copies, 0u);
}

TEST(StridedFaults, LostIrqRecovers)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(8 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(8 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 8 * kPb, 19);
    f.fill(dst, 8 * kPb, 60);

    f.faults().arm_nth(dma::kFaultLostIrq, 1);
    const auto want = oracle(f, src, dst, 512, 6, 2048, 640);
    const std::uint32_t idx = f.submit_strided(src, dst, 512, 6, 2048, 640);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.snap(dst, want.size()), want);
}

// --------------------------------------------------------------------
// C-API wrappers (memif_mov_strided / memif_mov_gather).
// --------------------------------------------------------------------

/** Registers the fixture's device as /dev/memif0 for the C API. */
struct DevFile {
    explicit DevFile(MemifDevice &dev)
    {
        RegisterDeviceFile("/dev/memif0", dev);
    }
    ~DevFile() { ResetDeviceFiles(); }
};

TEST(StridedCApi, GatherRowsFromScatteredSources)
{
    Fixture f;
    DevFile df(f.dev);
    const vm::VAddr src = f.proc.mmap(16 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(8 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    const vm::VAddr list = f.proc.mmap(kPb, vm::PageSize::k4K);
    f.fill(src, 16 * kPb, 41);
    f.fill(dst, 8 * kPb, 9);

    // Rows gathered in reverse page order, one per source page.
    const std::uint32_t rows = 8, rb = 256;
    const std::uint64_t dp = 320;
    std::vector<std::uint64_t> addrs(rows);
    for (std::uint32_t r = 0; r < rows; ++r)
        addrs[r] = src + (rows - 1 - r) * 2 * kPb + 128;
    ASSERT_TRUE(f.proc.as().write(list, addrs.data(), rows * 8));

    std::vector<std::uint8_t> want = f.snap(dst, (rows - 1) * dp + rb);
    for (std::uint32_t r = 0; r < rows; ++r) {
        const auto row = f.snap(addrs[r], rb);
        std::memcpy(want.data() + r * dp, row.data(), rb);
    }

    auto app = [&]() -> sim::Task {
        const int fd = MemifOpen("/dev/memif0");
        EXPECT_GE(fd, 0);
        int rc = -1;
        mov_req *req = nullptr;
        co_await memif_mov_gather(fd, dst, src, list, rb, rows, dp, &rc,
                                  &req);
        EXPECT_EQ(rc, kOk);
        EXPECT_NE(req, nullptr);
        if (!req) co_return;
        mov_req *done = nullptr;
        while (!(done = RetrieveCompleted(fd))) co_await Poll(fd);
        EXPECT_EQ(done, req);
        EXPECT_TRUE(done->succeeded());
        FreeRequest(fd, done);
        EXPECT_EQ(MemifClose(fd), kOk);
    };
    auto task = app();
    f.kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();

    EXPECT_EQ(f.snap(dst, want.size()), want);
    EXPECT_EQ(f.dev.stats().gather_requests, 1u);
    EXPECT_EQ(f.dev.stats().strided_rows_moved, rows);
}

TEST(StridedCApi, GatherRowOutsideVmaFailsBadAddress)
{
    Fixture f;
    DevFile df(f.dev);
    const vm::VAddr src = f.proc.mmap(4 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(4 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    const vm::VAddr list = f.proc.mmap(kPb, vm::PageSize::k4K);
    f.fill(src, 4 * kPb, 1);
    f.fill(dst, 4 * kPb, 2);

    // Second row address points past the end of the source vma.
    std::vector<std::uint64_t> addrs{src, src + 4 * kPb - 16};
    ASSERT_TRUE(f.proc.as().write(list, addrs.data(), addrs.size() * 8));
    const auto before = f.snap(dst, 4 * kPb);

    auto app = [&]() -> sim::Task {
        const int fd = MemifOpen("/dev/memif0");
        EXPECT_GE(fd, 0);
        int rc = -1;
        mov_req *req = nullptr;
        co_await memif_mov_gather(fd, dst, src, list, 64, 2, 64, &rc,
                                  &req);
        EXPECT_EQ(rc, kOk);
        mov_req *done = nullptr;
        while (!(done = RetrieveCompleted(fd))) co_await Poll(fd);
        EXPECT_EQ(done->load_status(), MovStatus::kFailed);
        EXPECT_EQ(done->error, MovError::kBadAddress);
        FreeRequest(fd, done);
        EXPECT_EQ(MemifClose(fd), kOk);
    };
    auto task = app();
    f.kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();

    // The failed gather moved nothing.
    EXPECT_EQ(f.snap(dst, 4 * kPb), before);
}

TEST(StridedCApi, MalformedGeometryFailsOnCompletionQueue)
{
    Fixture f;
    DevFile df(f.dev);
    const vm::VAddr src = f.proc.mmap(8 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(8 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 8 * kPb, 5);
    f.fill(dst, 8 * kPb, 6);

    struct Case {
        std::uint64_t d, s;
        std::uint32_t rb, rows;
        std::uint64_t sp, dp;
        MovError want;
    };
    const Case cases[] = {
        // Zero row_bytes.
        {dst, src, 0, 4, 64, 64, MovError::kBadRequest},
        // dst_pitch under row_bytes (rows would overlap).
        {dst, src, 128, 4, 128, 64, MovError::kBadRequest},
        // rows beyond the PaRAM.
        {dst, src, 64, dma::DescriptorRam::kEntries + 1, 64, 64,
         MovError::kBadRequest},
        // Overlapping src/dst envelopes in one vma.
        {src + 256, src, 512, 4, 512, 512, MovError::kBadRequest},
        // Source extent runs off the vma.
        {dst, src + 8 * kPb - 64, 128, 4, 4096, 128,
         MovError::kBadAddress},
    };
    auto app = [&]() -> sim::Task {
        const int fd = MemifOpen("/dev/memif0");
        EXPECT_GE(fd, 0);
        for (const Case &c : cases) {
            int rc = -1;
            mov_req *req = nullptr;
            co_await memif_mov_strided(fd, c.d, c.s, c.rb, c.rows, c.sp,
                                       c.dp, &rc, &req);
            EXPECT_EQ(rc, kOk);
            EXPECT_NE(req, nullptr);
            if (!req) co_return;
            mov_req *done = nullptr;
            while (!(done = RetrieveCompleted(fd))) co_await Poll(fd);
            EXPECT_EQ(done, req);
            EXPECT_EQ(done->load_status(), MovStatus::kFailed);
            EXPECT_EQ(done->error, c.want);
            FreeRequest(fd, done);
        }
        EXPECT_EQ(MemifClose(fd), kOk);
    };
    auto task = app();
    f.kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();
}

TEST(StridedCApi, LeverOffRejectsValidGeometry)
{
    Fixture f{MemifConfig{}};  // strided_dma off
    DevFile df(f.dev);
    const vm::VAddr src = f.proc.mmap(4 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(4 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 4 * kPb, 3);
    f.fill(dst, 4 * kPb, 4);

    auto app = [&]() -> sim::Task {
        const int fd = MemifOpen("/dev/memif0");
        EXPECT_GE(fd, 0);
        int rc = -1;
        mov_req *req = nullptr;
        co_await memif_mov_strided(fd, dst, src, 512, 4, 512, 512, &rc,
                                   &req);
        EXPECT_EQ(rc, kOk);
        mov_req *done = nullptr;
        while (!(done = RetrieveCompleted(fd))) co_await Poll(fd);
        EXPECT_EQ(done->load_status(), MovStatus::kFailed);
        EXPECT_EQ(done->error, MovError::kBadRequest);
        FreeRequest(fd, done);
        EXPECT_EQ(MemifClose(fd), kOk);
    };
    auto task = app();
    f.kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();
    EXPECT_EQ(f.dev.stats().strided_requests, 0u);
}

TEST(StridedCApi, AdmissionQuotaBouncesWithRetryHint)
{
    MemifConfig cfg = strided_cfg();
    cfg.multi_tenant = true;
    cfg.tenant_inflight_quota = 1;
    Fixture f(cfg);
    DevFile df(f.dev);
    const vm::VAddr src = f.proc.mmap(128 * kPb, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(128 * kPb, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 128 * kPb, 8);
    f.fill(dst, 128 * kPb, 9);

    auto app = [&]() -> sim::Task {
        const int fd = MemifOpen("/dev/memif0");
        EXPECT_GE(fd, 0);
        // A large strided move fills the quota of one...
        int rc1 = -1;
        mov_req *big = nullptr;
        co_await memif_mov_strided(fd, dst, src, 1024, 256, 1024, 1024,
                                   &rc1, &big);
        EXPECT_EQ(rc1, kOk);
        // ... so the second bounces at admission with a retry hint.
        // The bounced request still travels the completion queue (the
        // wrapper must NOT free it on kErrNoSpace).
        int rc2 = -1;
        mov_req *bounced = nullptr;
        co_await memif_mov_strided(fd, dst + 100 * kPb, src + 100 * kPb,
                                   512, 8, 512, 512, &rc2, &bounced);
        EXPECT_EQ(rc2, kErrNoSpace);
        EXPECT_NE(bounced, nullptr);
        if (!bounced) co_return;
        EXPECT_EQ(bounced->load_status(), MovStatus::kFailed);
        EXPECT_EQ(bounced->error, MovError::kNoSpace);
        EXPECT_GT(bounced->retry_after_us, 0u);
        EXPECT_LE(bounced->retry_after_us, 10000u);

        for (int drained = 0; drained < 2;) {
            mov_req *done = RetrieveCompleted(fd);
            if (!done) {
                co_await Poll(fd);
                continue;
            }
            FreeRequest(fd, done);
            ++drained;
        }
        EXPECT_TRUE(big->load_status() == MovStatus::kFree ||
                    big->succeeded());
        EXPECT_EQ(MemifClose(fd), kOk);
    };
    auto task = app();
    f.kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();

    EXPECT_EQ(f.dev.stats().admission_rejections, 1u);
    EXPECT_EQ(f.dev.stats().quota_hits_inflight, 1u);
    EXPECT_EQ(f.dev.stats().strided_requests, 1u);
}

TEST(StridedCApi, BadFdRejectsWithoutAllocation)
{
    Fixture f;  // no device file registered at all
    auto app = [&]() -> sim::Task {
        int rc = 0;
        mov_req *req = reinterpret_cast<mov_req *>(0x1);
        co_await memif_mov_strided(12345, 0, 0, 64, 2, 64, 64, &rc, &req);
        EXPECT_EQ(rc, kErrBadFd);
        EXPECT_EQ(req, nullptr);
    };
    auto task = app();
    f.kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();
}

}  // namespace
}  // namespace memif::core
