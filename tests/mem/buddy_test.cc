/**
 * @file
 * Unit and property tests for the buddy allocator.
 */
#include "mem/buddy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/random.h"

namespace memif::mem {
namespace {

TEST(Buddy, FreshAllocatorHasAllFramesFree)
{
    BuddyAllocator b(1024);
    EXPECT_EQ(b.free_frames(), 1024u);
    EXPECT_TRUE(b.can_allocate(BuddyAllocator::kMaxOrder));
}

TEST(Buddy, AllocatedBlocksAreAlignedAndDisjoint)
{
    BuddyAllocator b(1024);
    std::set<std::uint64_t> used;
    for (unsigned order = 0; order <= 4; ++order) {
        const std::uint64_t head = b.allocate(order);
        ASSERT_NE(head, BuddyAllocator::kInvalidFrame);
        EXPECT_EQ(head % (1u << order), 0u) << "order " << order;
        for (std::uint64_t f = head; f < head + (1u << order); ++f) {
            EXPECT_TRUE(used.insert(f).second) << "frame " << f;
        }
    }
}

TEST(Buddy, ExhaustionReturnsInvalid)
{
    BuddyAllocator b(16);
    std::vector<std::uint64_t> heads;
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t h = b.allocate(0);
        ASSERT_NE(h, BuddyAllocator::kInvalidFrame);
        heads.push_back(h);
    }
    EXPECT_EQ(b.free_frames(), 0u);
    EXPECT_EQ(b.allocate(0), BuddyAllocator::kInvalidFrame);
    for (auto h : heads) b.free(h, 0);
    EXPECT_EQ(b.free_frames(), 16u);
}

TEST(Buddy, OutstandingPagesTracksLiveAllocations)
{
    BuddyAllocator b(1024);
    EXPECT_EQ(b.outstanding_pages(), 0u);
    const std::uint64_t a = b.allocate(0);
    const std::uint64_t c = b.allocate(3);
    EXPECT_EQ(b.outstanding_pages(), 1u + 8u);
    b.free(a, 0);
    EXPECT_EQ(b.outstanding_pages(), 8u);
    b.free(c, 3);
    EXPECT_EQ(b.outstanding_pages(), 0u);  // leak-free
}

TEST(Buddy, FreeCoalescesBackToMaxOrder)
{
    BuddyAllocator b(1u << BuddyAllocator::kMaxOrder);
    std::vector<std::uint64_t> heads;
    for (unsigned i = 0; i < (1u << BuddyAllocator::kMaxOrder); ++i)
        heads.push_back(b.allocate(0));
    EXPECT_FALSE(b.can_allocate(1));
    for (auto h : heads) b.free(h, 0);
    // Everything must have merged into one max-order block again.
    EXPECT_EQ(b.free_blocks(BuddyAllocator::kMaxOrder), 1u);
    EXPECT_NE(b.allocate(BuddyAllocator::kMaxOrder),
              BuddyAllocator::kInvalidFrame);
}

TEST(Buddy, SplitsLargerBlocksOnDemand)
{
    BuddyAllocator b(1u << 6);
    const std::uint64_t a = b.allocate(0);
    EXPECT_EQ(a, 0u);
    // The rest of the initial order-6 block must still be allocatable.
    EXPECT_NE(b.allocate(5), BuddyAllocator::kInvalidFrame);
    EXPECT_NE(b.allocate(4), BuddyAllocator::kInvalidFrame);
    EXPECT_EQ(b.free_frames(), 64u - 1 - 32 - 16);
}

TEST(Buddy, NonPowerOfTwoCapacityIsFullyUsable)
{
    BuddyAllocator b(1000);  // not a power of two
    EXPECT_EQ(b.free_frames(), 1000u);
    std::uint64_t got = 0;
    while (b.allocate(0) != BuddyAllocator::kInvalidFrame) ++got;
    EXPECT_EQ(got, 1000u);
}

TEST(BuddyDeath, DoubleFreePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    BuddyAllocator b(64);
    const std::uint64_t h = b.allocate(2);
    b.free(h, 2);
    EXPECT_DEATH(b.free(h, 2), "double free");
}

TEST(BuddyDeath, WrongOrderFreePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    BuddyAllocator b(64);
    const std::uint64_t h = b.allocate(2);
    EXPECT_DEATH(b.free(h, 3), "mismatch");
}

/** Property: random alloc/free churn never corrupts accounting. */
class BuddyChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyChurn, RandomChurnPreservesInvariants)
{
    sim::Rng rng(GetParam());
    constexpr std::uint64_t kFrames = 2048;
    BuddyAllocator b(kFrames);
    struct Block { std::uint64_t head; unsigned order; };
    std::vector<Block> held;
    std::uint64_t held_frames = 0;

    for (int step = 0; step < 4000; ++step) {
        const bool do_alloc = held.empty() || rng.next_below(100) < 55;
        if (do_alloc) {
            const unsigned order =
                static_cast<unsigned>(rng.next_below(6));
            const std::uint64_t head = b.allocate(order);
            if (head != BuddyAllocator::kInvalidFrame) {
                ASSERT_EQ(head % (1u << order), 0u);
                ASSERT_LE(head + (1u << order), kFrames);
                held.push_back({head, order});
                held_frames += 1u << order;
            }
        } else {
            const std::size_t pick = rng.next_below(held.size());
            std::swap(held[pick], held.back());
            b.free(held.back().head, held.back().order);
            held_frames -= 1u << held.back().order;
            held.pop_back();
        }
        ASSERT_EQ(b.free_frames(), kFrames - held_frames);
    }
    for (const auto &blk : held) b.free(blk.head, blk.order);
    EXPECT_EQ(b.free_frames(), kFrames);
    EXPECT_TRUE(b.can_allocate(BuddyAllocator::kMaxOrder));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyChurn,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(BuddyBulk, AllocateBulkReturnsAlignedDisjointBlocks)
{
    BuddyAllocator b(256);
    std::vector<std::uint64_t> heads;
    ASSERT_TRUE(b.allocate_bulk(2, 8, heads));
    ASSERT_EQ(heads.size(), 8u);
    std::set<std::uint64_t> used;
    for (const std::uint64_t h : heads) {
        EXPECT_EQ(h % 4, 0u);
        for (std::uint64_t f = h; f < h + 4; ++f)
            EXPECT_TRUE(used.insert(f).second) << "frame " << f;
    }
    EXPECT_EQ(b.allocated_frames(), 32u);
    for (const std::uint64_t h : heads) b.free(h, 2);
    EXPECT_EQ(b.allocated_frames(), 0u);
}

TEST(BuddyBulk, AllOrNothingOnExhaustion)
{
    BuddyAllocator b(16);
    const std::uint64_t held = b.allocate(3);  // 8 of 16 frames gone
    ASSERT_NE(held, BuddyAllocator::kInvalidFrame);
    std::vector<std::uint64_t> heads;
    // 3 order-2 blocks = 12 frames > the 8 remaining: must refuse and
    // leave the allocator exactly as it was.
    EXPECT_FALSE(b.allocate_bulk(2, 3, heads));
    EXPECT_TRUE(heads.empty());
    EXPECT_EQ(b.free_frames(), 8u);
    EXPECT_TRUE(b.allocate_bulk(2, 2, heads));
    EXPECT_EQ(heads.size(), 2u);
    EXPECT_EQ(b.free_frames(), 0u);
}

/**
 * The consistency contract the magazine refill path depends on:
 * can_allocate(order, n) true must mean allocate_bulk(order, n)
 * succeeds with no intervening alloc/free, and false must mean it
 * fails — under arbitrary fragmentation, where counting free FRAMES
 * (rather than carvable blocks) would get the answer wrong.
 */
TEST(BuddyBulk, CanAllocateAgreesWithAllocateBulkUnderFragmentation)
{
    sim::Rng rng(4242);
    BuddyAllocator b(512);
    // Fragment: allocate everything at order 0, free a random subset.
    std::vector<std::uint64_t> singles;
    for (std::uint64_t h; (h = b.allocate(0)) != BuddyAllocator::kInvalidFrame;)
        singles.push_back(h);
    std::vector<std::uint64_t> kept;
    for (const std::uint64_t h : singles) {
        if (rng.next_below(100) < 60)
            b.free(h, 0);
        else
            kept.push_back(h);
    }
    for (unsigned order = 0; order <= 4; ++order) {
        for (std::uint64_t n = 1; n <= 64; n *= 2) {
            const bool predicted = b.can_allocate(order, n);
            std::vector<std::uint64_t> heads;
            const bool got = b.allocate_bulk(order, n, heads);
            ASSERT_EQ(got, predicted)
                << "order " << order << " n " << n;
            ASSERT_EQ(heads.size(), got ? n : 0u);
            for (const std::uint64_t h : heads) b.free(h, order);
        }
    }
    for (const std::uint64_t h : kept) b.free(h, 0);
    EXPECT_EQ(b.allocated_frames(), 0u);
}

/** Bulk/free churn under fragmentation must never leak split blocks:
 *  allocated_frames() must track exactly what the test holds, and end
 *  at zero with everything coalesced back to max order. */
TEST(BuddyBulk, FragmentationStressLeaksNoSplitBlocks)
{
    sim::Rng rng(977);
    constexpr std::uint64_t kFrames = 1u << BuddyAllocator::kMaxOrder;
    BuddyAllocator b(kFrames);
    struct Block { std::uint64_t head; unsigned order; };
    std::vector<Block> held;
    std::uint64_t held_frames = 0;

    for (int step = 0; step < 3000; ++step) {
        const int roll = static_cast<int>(rng.next_below(100));
        if (held.empty() || roll < 40) {
            const unsigned order = static_cast<unsigned>(rng.next_below(4));
            const std::uint64_t n = 1 + rng.next_below(8);
            std::vector<std::uint64_t> heads;
            if (b.allocate_bulk(order, n, heads)) {
                for (const std::uint64_t h : heads) {
                    held.push_back({h, order});
                    held_frames += std::uint64_t{1} << order;
                }
            } else {
                ASSERT_TRUE(heads.empty());
            }
        } else if (roll < 45) {
            const unsigned order = static_cast<unsigned>(rng.next_below(6));
            const std::uint64_t h = b.allocate(order);
            if (h != BuddyAllocator::kInvalidFrame) {
                held.push_back({h, order});
                held_frames += std::uint64_t{1} << order;
            }
        } else {
            const std::size_t pick = rng.next_below(held.size());
            std::swap(held[pick], held.back());
            b.free(held.back().head, held.back().order);
            held_frames -= std::uint64_t{1} << held.back().order;
            held.pop_back();
        }
        ASSERT_EQ(b.allocated_frames(), held_frames);
    }
    for (const auto &blk : held) b.free(blk.head, blk.order);
    EXPECT_EQ(b.allocated_frames(), 0u);
    EXPECT_EQ(b.free_blocks(BuddyAllocator::kMaxOrder), 1u);
}

}  // namespace
}  // namespace memif::mem
