/**
 * @file
 * Deterministic fault injection for the simulated machine.
 *
 * Subsystems declare *named injection sites* (a string constant next to
 * the hook, e.g. "dma.tc_error" in the EDMA3 engine) and ask the
 * injector `should_fire(site)` at the moment the modelled hardware
 * could misbehave. Tests and benches *arm* sites with a trigger:
 *
 *  - nth-occurrence: fire on exactly the nth call (and optionally the
 *    following count-1 calls) — for pinpoint unit tests;
 *  - seeded probability: fire independently per occurrence from the
 *    injector's own xoshiro stream — for randomized stress runs that
 *    replay bit-identically from a seed.
 *
 * Occurrence counting starts when a site is armed, so the same arm +
 * seed always selects the same victims regardless of what ran before.
 * With no site armed, `should_fire` is a single integer compare — the
 * hooks cost nothing on the happy path (verified by
 * bench_fault_recovery's zero-fault column).
 *
 * Site catalog (kept current in docs/INTERNALS.md §5):
 *
 *   dma.tc_error     transfer controller bus error: the chain "runs"
 *                    for its modelled duration, moves no bytes, and
 *                    completes with TransferStatus::kError (the CC
 *                    error interrupt still fires)
 *   dma.lost_irq     the completion interrupt is dropped; bytes land
 *                    but no handler runs (irq-mode transfers only)
 *   dma.stuck        the transfer never completes: no bytes, no
 *                    interrupt, is_complete() stays false until the
 *                    driver cancels it
 *   memif.alloc_fail one destination-page allocation reports an
 *                    exhausted buddy allocator
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/random.h"

namespace memif::sim {

/** How an armed injection site decides to fire. */
struct FaultSpec {
    /** 1-based occurrence at which to start firing; 0 disables the
     *  occurrence trigger. */
    std::uint64_t nth = 0;
    /** Number of consecutive occurrences to fire starting at nth. */
    std::uint64_t count = 1;
    /** Independent per-occurrence firing probability (seeded stream). */
    double probability = 0.0;
    /**
     * Sustained-pressure burst trigger: with burst_period > 0 the site
     * fires on the first burst_len occurrences of every burst_period
     * occurrences, starting at occurrence burst_start (1-based). A
     * square wave over the occurrence counter — a duty cycle of
     * burst_len / burst_period — that needs no random draw, so overload
     * scenarios replay bit-identically from the arm alone.
     */
    std::uint64_t burst_period = 0;
    /** Occurrences that fire at the head of each period. */
    std::uint64_t burst_len = 0;
    /** 1-based occurrence at which the first burst begins. */
    std::uint64_t burst_start = 1;
};

/**
 * The global fault registry for one simulated machine; owned by the
 * Kernel (CostModel-style: one instance configures every layer).
 */
class FaultInjector {
  public:
    FaultInjector() = default;
    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Re-seed the probability stream (call before arming). */
    void seed(std::uint64_t s) { rng_ = Rng(s); }

    /** Arm @p site with @p spec (replaces any previous arming). */
    void arm(std::string_view site, FaultSpec spec);

    /** Arm: fire on occurrences [nth, nth + count). */
    void
    arm_nth(std::string_view site, std::uint64_t nth,
            std::uint64_t count = 1)
    {
        arm(site, FaultSpec{nth, count, 0.0});
    }

    /** Arm: fire each occurrence independently with probability @p p. */
    void
    arm_probability(std::string_view site, double p)
    {
        arm(site, FaultSpec{0, 0, p});
    }

    /**
     * Arm: sustained-pressure bursts — fire the first @p burst_len of
     * every @p burst_period occurrences, starting at occurrence
     * @p burst_start. Deterministic (no probability stream consumed).
     */
    void
    arm_burst(std::string_view site, std::uint64_t burst_period,
              std::uint64_t burst_len, std::uint64_t burst_start = 1)
    {
        FaultSpec spec;
        spec.burst_period = burst_period;
        spec.burst_len = burst_len;
        spec.burst_start = burst_start;
        arm(site, spec);
    }

    /** Disarm one site (its counters are kept for inspection). */
    void disarm(std::string_view site);

    /** Disarm everything and forget all counters. */
    void reset();

    /** True while any site is armed — the hooks' fast-path gate. */
    bool enabled() const { return armed_ != 0; }

    /**
     * The injection hook: count one occurrence of @p site and decide
     * whether the fault fires. Unarmed sites are not counted and never
     * fire (and cost one compare).
     */
    bool should_fire(std::string_view site);

    /** Occurrences seen at @p site since it was armed. */
    std::uint64_t occurrences(std::string_view site) const;

    /** Faults fired at @p site since it was armed. */
    std::uint64_t fired(std::string_view site) const;

    /** Faults fired across all sites. */
    std::uint64_t total_fired() const { return total_fired_; }

  private:
    struct SiteState {
        FaultSpec spec;
        bool armed = false;
        std::uint64_t occurrences = 0;
        std::uint64_t fired = 0;
    };

    /** Heterogeneous string_view lookup (no allocation per hook call). */
    struct Hash {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view sv) const
        {
            return std::hash<std::string_view>{}(sv);
        }
    };

    std::unordered_map<std::string, SiteState, Hash, std::equal_to<>>
        sites_;
    Rng rng_;
    unsigned armed_ = 0;
    std::uint64_t total_fired_ = 0;
};

}  // namespace memif::sim
