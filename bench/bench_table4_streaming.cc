/**
 * @file
 * Table 4 reproduction: throughput of streaming workloads on the §6.6
 * mini runtime — Linux (in-place, slow memory) vs memif (fast-memory
 * prefetch buffers filled by asynchronous replication).
 *
 *   workload              paper Linux   paper memif   paper gain
 *   StreamCluster.pgain     1440.1        1778.4       +23.5%
 *   STREAM.triad            2384.1        3184.4       +33.6%
 *   STREAM.add              2390.1        3186.9       +33.3%
 */
#include <cstdio>
#include <vector>

#include "harness.h"
#include "runtime/streaming_runtime.h"
#include "sim/random.h"
#include "workloads/data_intensive.h"
#include "workloads/stream.h"

int
main()
{
    using namespace memif::bench;
    namespace rt = memif::runtime;
    namespace wl = memif::workloads;

    header("Table 4: streaming throughput on the mini runtime (MB/s)");

    TestBed bed;
    const std::uint64_t total = 64ull << 20;
    const memif::vm::VAddr src =
        bed.proc.mmap(total, memif::vm::PageSize::k4K);
    // Real data: random doubles, so the kernels chew on actual values.
    {
        memif::sim::Rng rng(7);
        std::vector<double> page(4096 / sizeof(double));
        for (std::uint64_t off = 0; off < total; off += 4096) {
            for (double &v : page) v = rng.next_double();
            bed.proc.as().write(src + off, page.data(), 4096);
        }
    }
    rt::StreamingRuntime runtime(bed.kernel, bed.proc, bed.dev);

    struct Row {
        rt::StreamKernel *kernel;
        double paper_linux, paper_memif;
    };
    wl::StreamClusterPgain pgain;
    wl::StreamTriad triad;
    wl::StreamAdd add;
    std::vector<Row> rows = {{&pgain, 1440.1, 1778.4},
                             {&triad, 2384.1, 3184.4},
                             {&add, 2390.1, 3186.9}};

    std::printf("%-22s %10s %10s %8s | %10s %10s %8s | %7s\n", "workload",
                "Linux", "memif", "gain", "paperLin", "paperMem",
                "papergain", "digest");
    rule();
    for (const Row &row : rows) {
        rt::StreamRunResult direct, prefetched;
        bed.kernel.spawn(
            runtime.run_direct(src, total, *row.kernel, &direct));
        bed.kernel.run();
        bed.kernel.spawn(runtime.run(src, total, *row.kernel, &prefetched));
        bed.kernel.run();
        const double gain = 100.0 * (prefetched.throughput_mb_per_sec() /
                                         direct.throughput_mb_per_sec() -
                                     1.0);
        const double paper_gain =
            100.0 * (row.paper_memif / row.paper_linux - 1.0);
        std::printf("%-22s %10.1f %10.1f %+7.1f%% | %10.1f %10.1f %+7.1f%% | %s\n",
                    row.kernel->name().c_str(),
                    direct.throughput_mb_per_sec(),
                    prefetched.throughput_mb_per_sec(), gain,
                    row.paper_linux, row.paper_memif, paper_gain,
                    direct.result_digest == prefetched.result_digest
                        ? "match"
                        : "MISMATCH");
    }
    rule();
    std::printf("digest column: prefetched run consumed byte-identical data "
                "to the in-place run.\n");

    // ----- the 6.7 negative result: cache-friendly workloads ----------
    std::printf("\nSection 6.7 limitation workloads (cache-friendly; "
                "paper: \"little performance gain\"):\n");
    wl::WordCount wordcount;
    wl::PSearchy psearchy;
    for (rt::StreamKernel *kernel :
         {static_cast<rt::StreamKernel *>(&wordcount),
          static_cast<rt::StreamKernel *>(&psearchy)}) {
        rt::StreamRunResult direct, prefetched;
        bed.kernel.spawn(
            runtime.run_direct(src, total, *kernel, &direct));
        bed.kernel.run();
        bed.kernel.spawn(runtime.run(src, total, *kernel, &prefetched));
        bed.kernel.run();
        std::printf("  %-12s %8.1f -> %8.1f MB/s  (%+.1f%%)\n",
                    kernel->name().c_str(),
                    direct.throughput_mb_per_sec(),
                    prefetched.throughput_mb_per_sec(),
                    100.0 * (prefetched.throughput_mb_per_sec() /
                                 direct.throughput_mb_per_sec() -
                             1.0));
    }
    return 0;
}
