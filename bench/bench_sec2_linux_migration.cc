/**
 * @file
 * Section 2.2 reproduction: the motivating measurements of Linux page
 * migration.
 *
 *   - migrating 1500 4 KB pages with one syscall: the paper measured
 *     0.30 GB/s on the ARM platform (all observed throughputs < 10% of
 *     memory bandwidth);
 *   - per-page cost ~15 us, of which only ~4 us is the byte copy;
 *   - batching more pages per syscall barely helps (the x86 numbers in
 *     the paper move from 0.66 to only 1.41 GB/s at a million pages).
 */
#include <cstdio>

#include "harness.h"
#include "os/page_migration.h"
#include "sim/cpu.h"

int
main()
{
    using namespace memif::bench;
    namespace os = memif::os;
    namespace sim = memif::sim;

    header("Section 2.2: Linux page migration is CPU-bound and slow");

    {
        TestBed bed;
        const std::uint64_t npages = 1500;
        const memif::vm::VAddr base =
            bed.proc.mmap(npages * 4096, memif::vm::PageSize::k4K);
        os::MigrationResult res;
        const sim::CpuAccounting before = bed.kernel.cpu().snapshot();
        bed.kernel.spawn(os::migrate_pages_sync(bed.proc, base, npages,
                                                bed.kernel.fast_node(),
                                                &res));
        bed.kernel.run();
        const sim::CpuAccounting cpu =
            bed.kernel.cpu().snapshot().since(before);

        const double gbps = sim::gb_per_sec(res.bytes_moved, res.completed_at);
        const double us_page =
            sim::to_us(res.completed_at) / static_cast<double>(npages);
        const double copy_us =
            sim::to_us(cpu.op(sim::Op::kCopy)) / static_cast<double>(npages);
        std::printf("migrate 1500 x 4KB pages, one syscall:\n");
        std::printf("  throughput           %6.2f GB/s   (paper: 0.30)\n",
                    gbps);
        std::printf("  %% of slow-mem bw     %6.1f %%      (paper: <10%%)\n",
                    100.0 * gbps / 6.2);
        std::printf("  per-page total       %6.2f us     (paper: ~15)\n",
                    us_page);
        std::printf("  per-page byte copy   %6.2f us     (paper: ~4)\n",
                    copy_us);
        std::printf("  CPU-bound fraction   %6.1f %%      (all work on CPU)\n",
                    100.0 * static_cast<double>(cpu.total) /
                        static_cast<double>(res.completed_at));
    }

    std::printf("\nbatching pages into one syscall (amortization limit):\n");
    std::printf("%10s %12s\n", "pages", "GB/s");
    rule('-', 24);
    for (const std::uint64_t npages : {1ull, 16ull, 128ull, 1500ull}) {
        TestBed bed;
        const memif::vm::VAddr base =
            bed.proc.mmap(npages * 4096, memif::vm::PageSize::k4K);
        os::MigrationResult res;
        bed.kernel.spawn(os::migrate_pages_sync(bed.proc, base, npages,
                                                bed.kernel.fast_node(),
                                                &res));
        bed.kernel.run();
        std::printf("%10llu %12.2f\n",
                    static_cast<unsigned long long>(npages),
                    sim::gb_per_sec(res.bytes_moved, res.completed_at));
    }
    std::printf("\nbatching amortizes only the per-syscall cost; the\n"
                "per-page kernel work and the CPU copy remain.\n");
    return 0;
}
