/**
 * @file
 * Multi-tenant service layer under overload: per-tenant latency
 * percentiles and throughput fairness as the tenant count scales
 * (1 / 4 / 16 / 64 equal-weight tenants, each keeping a window of
 * migrations in flight — roughly twice what the device can serve), and
 * a 4:1 weighted pair whose observed bandwidth split must track the
 * configured WRR weights.
 *
 * Every tenant is a separate process (its own address space) bound to
 * the device via an ASID. Admission-control bounces (kNoSpace) are
 * retried after the driver's retry-after hint, the way a real client
 * would; they are counted, not dropped.
 *
 * JSON series (BENCH_multitenant.json, gated by
 * scripts/check_bench_regression.py):
 *   p50_us / p99_us     aggregate request latency vs tenant count
 *   throughput_gbps     aggregate goodput vs tenant count
 *   fairness            max/min per-tenant throughput vs tenant count
 *                       (<= 2.0 at 16 equal-weight tenants)
 *   weighted_split      observed 4:1 pair bandwidth ratio at x=4
 */
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.h"
#include "sim/sync.h"

namespace memif::bench {
namespace {

constexpr std::uint32_t kPagesPerReq = 4;      // 16 KB per request
constexpr std::uint32_t kWindowPerTenant = 3;  // in-flight per tenant

std::uint32_t
requests_per_tenant()
{
    return quick_mode() ? 6 : 24;
}

/** Latency percentile (sorted copy; p in [0, 100]). */
double
percentile_us(std::vector<sim::Duration> lat, double p)
{
    if (lat.empty()) return 0.0;
    std::sort(lat.begin(), lat.end());
    const std::size_t i = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(lat.size() - 1) + 0.5);
    return sim::to_us(lat[std::min(i, lat.size() - 1)]);
}

struct TenantOutcome {
    std::uint64_t bytes = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;  ///< kNoSpace bounces (retried)
    sim::SimTime last_complete = 0;
    std::vector<sim::Duration> latencies;
};

struct MtOutcome {
    std::vector<TenantOutcome> tenants;
    sim::Duration elapsed = 0;
    std::uint64_t bytes = 0;
    /** Bytes the slower tenant had completed when the faster one
     *  finished (weighted-pair runs; 0 elsewhere). */
    std::uint64_t laggard_bytes_at_first_finish = 0;
    /** Tenant that drained its stream first (-1 = not recorded). */
    std::int32_t first_to_finish = -1;

    double
    gb_per_sec() const
    {
        return sim::gb_per_sec(bytes, elapsed);
    }

    /** Max/min per-tenant throughput (bytes over own completion span). */
    double
    fairness() const
    {
        double lo = 0.0, hi = 0.0;
        bool first = true;
        for (const TenantOutcome &t : tenants) {
            if (t.last_complete == 0) return 1e9;  // starved
            const double gbps =
                sim::gb_per_sec(t.bytes, t.last_complete);
            if (first) {
                lo = hi = gbps;
                first = false;
            } else {
                lo = std::min(lo, gbps);
                hi = std::max(hi, gbps);
            }
        }
        return lo > 0.0 ? hi / lo : 1e9;
    }
};

/**
 * Run @p weights.size() tenants concurrently, each migrating its own
 * regions slow<->fast with @p window requests in flight, through one
 * central driver that submits per-tenant and drains the shared
 * completion queues (completions arrive tagged with their ASID).
 */
MtOutcome
run_tenants(const std::vector<std::uint32_t> &weights,
            std::uint32_t window, std::uint32_t nreq,
            bool print_device_stats = false)
{
    const auto ntenants = static_cast<std::uint32_t>(weights.size());
    const std::uint64_t req_bytes = std::uint64_t{kPagesPerReq} * 4096;

    core::MemifConfig cfg = core::MemifConfig::tenanted();
    os::Kernel kernel;
    os::Process &owner = kernel.create_process();
    core::MemifDevice dev(kernel, owner, cfg);

    std::vector<os::Process *> procs{&owner};
    std::vector<std::unique_ptr<core::MemifUser>> users;
    users.push_back(std::make_unique<core::MemifUser>(dev, 0, 0));
    dev.set_tenant_weight(0, weights[0]);
    for (std::uint32_t t = 1; t < ntenants; ++t) {
        os::Process &p = kernel.create_process();
        const std::uint32_t asid = dev.register_tenant(p, weights[t]);
        MEMIF_ASSERT(asid == t, "unexpected asid");
        procs.push_back(&p);
        users.push_back(std::make_unique<core::MemifUser>(dev, t, t));
    }

    // Per-tenant ping-pong regions (tenant-private address spaces).
    struct Region {
        vm::VAddr base = 0;
        bool on_fast = false;
    };
    std::vector<std::vector<Region>> regions(ntenants);
    for (std::uint32_t t = 0; t < ntenants; ++t) {
        regions[t].resize(window);
        for (Region &r : regions[t]) {
            r.base = procs[t]->mmap(req_bytes, vm::PageSize::k4K);
            MEMIF_ASSERT(r.base != 0, "slow node exhausted");
        }
    }

    MtOutcome out;
    out.tenants.resize(ntenants);
    std::vector<std::uint32_t> submitted(ntenants, 0);
    std::vector<std::vector<sim::SimTime>> first_submit(ntenants);
    for (auto &v : first_submit) v.resize(nreq, 0);
    std::uint64_t total_completed = 0;
    const std::uint64_t total_requests =
        std::uint64_t{ntenants} * nreq;
    const sim::SimTime t0 = kernel.eq().now();

    auto submit_one = [&](std::uint32_t t,
                          std::uint32_t region_idx) -> sim::Task {
        Region &r = regions[t][region_idx];
        core::MemifUser &u = *users[t];
        const std::uint32_t idx = u.alloc_request();
        MEMIF_ASSERT(idx != core::kNoRequest, "request slots exhausted");
        core::MovReq &req = u.request(idx);
        const std::uint32_t req_no = submitted[t]++;
        req.op = core::MovOp::kMigrate;
        req.src_base = r.base;
        req.num_pages = kPagesPerReq;
        req.dst_node =
            r.on_fast ? kernel.slow_node() : kernel.fast_node();
        r.on_fast = !r.on_fast;
        req.user_tag = (std::uint64_t{t} << 48) |
                       (std::uint64_t{req_no} << 16) | region_idx;
        first_submit[t][req_no] = kernel.eq().now();
        co_await u.submit(idx);
    };

    auto driver = [&]() -> sim::Task {
        // Interleave the initial windows so no tenant gets a head
        // start on the submission queues.
        for (std::uint32_t w = 0; w < window; ++w)
            for (std::uint32_t t = 0; t < ntenants; ++t)
                if (submitted[t] < nreq) co_await submit_one(t, w);

        core::MemifUser &drain = *users[0];
        while (total_completed < total_requests) {
            const std::uint32_t idx = drain.retrieve_completed();
            if (idx == core::kNoRequest) {
                co_await drain.poll();
                continue;
            }
            core::MovReq &req = drain.request(idx);
            const auto t =
                static_cast<std::uint32_t>(req.user_tag >> 48);
            const auto req_no = static_cast<std::uint32_t>(
                (req.user_tag >> 16) & 0xFFFFFFFF);
            const auto region_idx =
                static_cast<std::uint32_t>(req.user_tag & 0xFFFF);
            TenantOutcome &to = out.tenants[t];
            if (req.load_status() == core::MovStatus::kFailed &&
                req.error == core::MovError::kNoSpace) {
                // Admission backpressure: honor the hint and retry
                // through the owning tenant's handle. A zero hint
                // marks a permanently over-quota request — the bench
                // never submits one, so treat it as a setup bug.
                assert(req.retry_after_us != 0 &&
                       "bench request permanently over quota");
                ++to.rejected;
                const std::uint32_t us = req.retry_after_us;
                co_await sim::Delay{kernel.eq(),
                                    sim::microseconds(us)};
                co_await users[t]->submit(idx);
                continue;
            }
            MEMIF_ASSERT(req.succeeded(), "bench request failed (%u)",
                         static_cast<unsigned>(req.error));
            to.latencies.push_back(req.complete_time -
                                   first_submit[t][req_no]);
            to.bytes += req_bytes;
            to.last_complete = req.complete_time;
            ++to.completed;
            ++total_completed;
            drain.free_request(idx);
            if (to.completed == nreq && out.first_to_finish < 0 &&
                ntenants == 2) {
                out.first_to_finish = static_cast<std::int32_t>(t);
                out.laggard_bytes_at_first_finish =
                    out.tenants[1 - t].bytes;
            }
            if (submitted[t] < nreq)
                co_await submit_one(t, region_idx);
        }
    };
    auto task = driver();
    kernel.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "multitenant stream did not finish");

    out.elapsed = kernel.eq().now() - t0;
    out.bytes = req_bytes * total_requests;
    if (print_device_stats) {
        std::printf("\n");
        dev.print_stats(stdout);
    }
    return out;
}

}  // namespace
}  // namespace memif::bench

int
main()
{
    using namespace memif::bench;

    BenchReport report("multitenant");
    const std::uint32_t nreq = requests_per_tenant();

    header("Multi-tenant overload: per-tenant latency and fairness vs "
           "tenant count");
    std::printf("workload: %u migrations x %u x 4KB pages per tenant, "
                "window %u in flight each\n\n",
                nreq, kPagesPerReq, kWindowPerTenant);
    std::printf("%8s %10s %10s %12s %10s %10s\n", "tenants", "p50_us",
                "p99_us", "agg_GB/s", "fairness", "rejected");
    rule();

    for (const std::uint32_t n : {1u, 4u, 16u, 64u}) {
        const std::vector<std::uint32_t> weights(n, 1);
        const MtOutcome out =
            run_tenants(weights, kWindowPerTenant, nreq,
                        /*print_device_stats=*/n == 16);
        std::vector<memif::sim::Duration> all;
        std::uint64_t rejected = 0;
        for (const TenantOutcome &t : out.tenants) {
            all.insert(all.end(), t.latencies.begin(),
                       t.latencies.end());
            rejected += t.rejected;
        }
        const double p50 = percentile_us(all, 50.0);
        const double p99 = percentile_us(all, 99.0);
        const double fair = out.fairness();
        std::printf("%8u %10.1f %10.1f %12.2f %10.2f %10llu\n", n, p50,
                    p99, out.gb_per_sec(), fair,
                    static_cast<unsigned long long>(rejected));
        report.add("p50_us", n, p50);
        report.add("p99_us", n, p99);
        report.add("throughput_gbps", n, out.gb_per_sec());
        report.add("fairness", n, fair);
    }
    rule();
    std::printf("\nexpected: every tenant makes progress at every count "
                "(fairness stays near 1,\ngated <= 2.0 at 16 tenants); "
                "p99 grows with contention but stays bounded.\n\n");

    header("Weighted pair: 4:1 WRR weights -> ~4:1 bandwidth split");
    {
        // Two tenants cannot overload the device at the sweep's small
        // window (the engines drain both before WRR ever has to pick a
        // loser), so the pair runs deep windows and a longer stream:
        // ~24 requests in flight against a device that saturates near
        // 12, with enough work that the light tenant is still queueing
        // when the heavy one finishes.
        const MtOutcome out = run_tenants({4, 1}, 12, 4 * nreq);
        const TenantOutcome &heavy = out.tenants[0];
        const std::uint64_t laggard =
            out.laggard_bytes_at_first_finish
                ? out.laggard_bytes_at_first_finish
                : 1;
        // Share of bytes completed while BOTH tenants still competed:
        // the heavy tenant's full load against what the light one had
        // finished at that moment.
        const double split = out.first_to_finish == 0
                                 ? static_cast<double>(heavy.bytes) /
                                       static_cast<double>(laggard)
                                 : 1.0;
        std::printf("heavy tenant (w=4): %7.2f MB moved\n",
                    static_cast<double>(heavy.bytes) / (1 << 20));
        std::printf("light tenant (w=1): %7.2f MB at heavy's finish\n",
                    static_cast<double>(laggard) / (1 << 20));
        std::printf("observed split: %.2f : 1 (configured 4 : 1)\n",
                    split);
        report.add("weighted_split", 4.0, split);
    }
    return 0;
}
