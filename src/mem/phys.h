/**
 * @file
 * Physical memory for the simulated platform: heterogeneous memory
 * nodes (paper Table 2: 6 MB on-chip SRAM + DDR3) with *real* host
 * backing buffers, page-frame descriptors, and per-node buddy
 * allocators.
 *
 * The module is purely functional: it moves real bytes and tracks real
 * allocation state but never advances virtual time. All timing is
 * charged by the OS/driver layers from the CostModel, keeping the
 * calibration in one place.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/buddy.h"

namespace memif::mem {

/** Base-2 log of the frame size; frames are 4 KB as on ARMv7/Linux. */
inline constexpr unsigned kPageShift = 12;
/** Physical frame size in bytes. */
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;

/** Global physical frame number. */
using Pfn = std::uint64_t;
/** Sentinel: no frame. */
inline constexpr Pfn kInvalidPfn = ~Pfn{0};

/** Pseudo-NUMA node id (paper §1: heterogeneous banks as NUMA nodes). */
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/** What kind of object holds a reverse mapping. */
enum class RmapKind : std::uint8_t {
    kAddressSpace = 0,  ///< a process page table maps the frame
    kPageCache,         ///< a file's page cache holds the frame
};

/** One reverse mapping of a frame: which object references it where. */
struct RmapEntry {
    /** Mapping object (opaque to this layer; the vm/os layers cast
     *  according to kind). */
    void *owner = nullptr;
    /** Virtual address (kAddressSpace) or file page index (kPageCache). */
    std::uint64_t vaddr = 0;
    RmapKind kind = RmapKind::kAddressSpace;

    friend bool
    operator==(const RmapEntry &a, const RmapEntry &b)
    {
        return a.owner == b.owner && a.vaddr == b.vaddr &&
               a.kind == b.kind;
    }
};

/**
 * Per-frame descriptor, the analogue of Linux's `struct page`.
 * The vm layer maintains the reverse-mapping chain: one entry per
 * address space mapping the frame (shared anonymous memory has
 * several, paper §6.7).
 */
struct PageFrame {
    /** Allocation order of the block this frame heads (head frames only). */
    std::uint8_t order = 0;
    /** True for the first frame of an allocated block. */
    bool is_block_head = false;
    /** True while the frame belongs to an allocated block. */
    bool allocated = false;
    /** Reverse mappings; size() is the map count. */
    std::vector<RmapEntry> rmaps;

    std::uint32_t
    mapcount() const
    {
        return static_cast<std::uint32_t>(rmaps.size());
    }

    void
    add_rmap(void *owner, std::uint64_t vaddr,
             RmapKind kind = RmapKind::kAddressSpace)
    {
        rmaps.push_back(RmapEntry{owner, vaddr, kind});
    }

    /** Remove one matching entry. @return true if found. */
    bool
    remove_rmap(void *owner, std::uint64_t vaddr,
                RmapKind kind = RmapKind::kAddressSpace)
    {
        for (auto it = rmaps.begin(); it != rmaps.end(); ++it) {
            if (it->owner == owner && it->vaddr == vaddr &&
                it->kind == kind) {
                rmaps.erase(it);
                return true;
            }
        }
        return false;
    }
};

/** Configuration of one memory node. */
struct NodeConfig {
    std::string name;
    std::uint64_t bytes = 0;       ///< capacity (multiple of kPageSize)
    double bandwidth_bps = 0.0;    ///< sustained bandwidth
    bool is_fast = false;          ///< fast (SRAM-like) vs slow (DRAM-like)
    /** Per-descriptor access latency in nanoseconds. Zero for on-board
     *  tiers (their latency is folded into the engine's constants); the
     *  far/remote tier carries its RDMA-class latency here so the DMA
     *  engine charges it on every descriptor touching the node. */
    std::uint64_t latency_ns = 0;
};

/**
 * One memory node: a contiguous physical frame range with a real
 * backing buffer and its own buddy allocator.
 */
class MemoryNode {
  public:
    MemoryNode(NodeId id, Pfn base_pfn, const NodeConfig &cfg);

    NodeId id() const { return id_; }
    const std::string &name() const { return cfg_.name; }
    bool is_fast() const { return cfg_.is_fast; }
    double bandwidth_bps() const { return cfg_.bandwidth_bps; }
    std::uint64_t latency_ns() const { return cfg_.latency_ns; }
    Pfn base_pfn() const { return base_; }
    std::uint64_t num_frames() const { return frames_.size(); }
    std::uint64_t bytes() const { return cfg_.bytes; }

    bool
    contains(Pfn pfn) const
    {
        return pfn >= base_ && pfn < base_ + num_frames();
    }

    /** Frames currently free in the buddy allocator. */
    std::uint64_t free_frames() const { return buddy_.free_frames(); }

    BuddyAllocator &buddy() { return buddy_; }
    PageFrame &frame(Pfn pfn) { return frames_.at(pfn - base_); }
    const PageFrame &frame(Pfn pfn) const { return frames_.at(pfn - base_); }

    /** Host pointer to the first byte of frame @p pfn. */
    std::byte *
    frame_data(Pfn pfn)
    {
        return backing_.get() + ((pfn - base_) << kPageShift);
    }

  private:
    NodeId id_;
    Pfn base_;
    NodeConfig cfg_;
    std::unique_ptr<std::byte[]> backing_;
    BuddyAllocator buddy_;
    std::vector<PageFrame> frames_;
};

/**
 * The machine's physical memory: all nodes, global PFN resolution,
 * allocation and byte access across node boundaries.
 */
class PhysicalMemory {
  public:
    PhysicalMemory() = default;
    PhysicalMemory(const PhysicalMemory &) = delete;
    PhysicalMemory &operator=(const PhysicalMemory &) = delete;

    /** Register a node; returns its id. Frame ranges never overlap. */
    NodeId add_node(const NodeConfig &cfg);

    std::size_t node_count() const { return nodes_.size(); }
    MemoryNode &node(NodeId id) { return *nodes_.at(id); }
    const MemoryNode &node(NodeId id) const { return *nodes_.at(id); }

    /** Node owning @p pfn; kInvalidNode when out of range. */
    NodeId node_of(Pfn pfn) const;

    /**
     * @name ACPI SLIT-style node distance table.
     * Distances default to 10 on-node and 20 between any two nodes;
     * set_distance overrides a pair (symmetric). The tiered placement
     * code uses distances to recognise non-adjacent tiers: a move whose
     * endpoints are further apart than either is from a middle node is
     * a candidate for staging through that middle node.
     */
    ///@{
    std::uint32_t distance(NodeId a, NodeId b) const;
    void set_distance(NodeId a, NodeId b, std::uint32_t d);
    ///@}

    /**
     * Allocate a 2^order-frame block on @p node.
     * @return the head PFN, or kInvalidPfn when the node is exhausted.
     */
    Pfn allocate(NodeId node, unsigned order);

    /**
     * Allocate @p n 2^order-frame blocks on @p node in one call,
     * appending the head PFNs to @p out. All-or-nothing: on failure no
     * frame is allocated and @p out is untouched.
     */
    bool allocate_bulk(NodeId node, unsigned order, std::uint64_t n,
                       std::vector<Pfn> &out);

    /** Free a block previously returned by allocate(). */
    void free(Pfn head, unsigned order);

    /** Machine-wide allocated-and-not-freed frame count (leak check:
     *  sums every node's BuddyAllocator::outstanding_pages()). */
    std::uint64_t
    outstanding_pages() const
    {
        std::uint64_t total = 0;
        for (const auto &n : nodes_) total += n->buddy().outstanding_pages();
        return total;
    }

    PageFrame &frame(Pfn pfn);

    /**
     * Host pointer to @p bytes of physically contiguous memory starting
     * at frame @p pfn (must stay inside one node).
     */
    std::byte *span(Pfn pfn, std::uint64_t bytes);

    /**
     * Copy @p bytes between physically contiguous regions (real bytes
     * move; no virtual time passes here).
     */
    void copy(Pfn dst, Pfn src, std::uint64_t bytes);

  private:
    std::vector<std::unique_ptr<MemoryNode>> nodes_;
    /** Symmetric distance overrides: {min(a,b), max(a,b), distance}. */
    struct DistanceOverride {
        NodeId a;
        NodeId b;
        std::uint32_t d;
    };
    std::vector<DistanceOverride> distances_;
    Pfn next_base_ = 0;
};

/**
 * Build the default simulated KeyStone II memory: node 0 = slow DDR3
 * (CPU-local), node 1 = fast on-chip SRAM — matching the paper's §6.1
 * pseudo-NUMA layout (cores+DRAM on one node, SRAM on the other).
 *
 * @param slow_bytes DDR capacity to actually back (default 256 MB; the
 *        real board has 8 GB but no experiment needs it).
 */
struct KeystoneMemory {
    static constexpr std::uint64_t kDefaultSlowBytes = 256ull << 20;
    static constexpr std::uint64_t kFastBytes = 6ull << 20;  // 6 MB SRAM

    /**
     * Register an arbitrary list of nodes on @p pm in order; returns
     * their ids. The two-node overload below is implemented on top of
     * this and stays byte-identical to the historical hard-coded pair.
     */
    static std::vector<NodeId> build(PhysicalMemory &pm,
                                     const std::vector<NodeConfig> &nodes);

    /** Adds both nodes to @p pm; returns {slow_id, fast_id}. */
    static std::pair<NodeId, NodeId> build(
        PhysicalMemory &pm, std::uint64_t slow_bytes = kDefaultSlowBytes);
};

}  // namespace memif::mem
