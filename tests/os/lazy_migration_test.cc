/**
 * @file
 * Tests for lazy migration (the Goglin-style related work of §7):
 * arming is cheap, the first touch pays the move, untouched pages
 * never move, and the paper's critique holds — total cost matches
 * eager migration, it is merely deferred.
 */
#include <gtest/gtest.h>

#include "os/kernel.h"
#include "os/page_migration.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::os {
namespace {

TEST(LazyMigration, ArmingIsCheapAndMovesNothing)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(64 * 4096, vm::PageSize::k4K);

    const sim::SimTime t0 = k.eq().now();
    MigrationResult res;
    k.spawn(mbind_lazy(p, base, 64, k.fast_node(), &res));
    k.run();
    EXPECT_EQ(res.pages_moved, 64u);  // armed
    // Marking 64 pages: ~2 us each, far below the ~15 us migration.
    EXPECT_LT(sim::to_us(k.eq().now() - t0), 64 * 5.0);
    // Nothing moved yet.
    vm::Vma *vma = p.as().find_vma(base);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_TRUE(vma->pte(i).lazy);
        EXPECT_EQ(k.phys().node_of(vma->pte(i).pfn), k.slow_node());
    }
}

TEST(LazyMigration, FirstTouchMigratesThatPageOnly)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(8 * 4096, vm::PageSize::k4K);
    const std::uint32_t marker = 0xFACE;
    p.as().write(base + 3 * 4096, &marker, sizeof(marker));

    MigrationResult res;
    k.spawn(mbind_lazy(p, base, 8, k.fast_node(), &res));
    k.run();

    TouchOutcome out;
    auto toucher = [&]() -> sim::Task {
        co_await p.touch(base + 3 * 4096, true, &out);
    };
    auto t = toucher();
    k.run();
    EXPECT_EQ(out.lazy_migrations, 1u);
    EXPECT_EQ(out.result, vm::AccessResult::kOk);

    vm::Vma *vma = p.as().find_vma(base);
    for (std::uint64_t i = 0; i < 8; ++i) {
        if (i == 3) {
            EXPECT_FALSE(vma->pte(i).lazy);
            EXPECT_EQ(k.phys().node_of(vma->pte(i).pfn), k.fast_node());
        } else {
            EXPECT_TRUE(vma->pte(i).lazy);
            EXPECT_EQ(k.phys().node_of(vma->pte(i).pfn), k.slow_node());
        }
    }
    std::uint32_t got = 0;
    p.as().read(base + 3 * 4096, &got, sizeof(got));
    EXPECT_EQ(got, marker);
}

TEST(LazyMigration, SecondTouchIsFree)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(4096, vm::PageSize::k4K);
    MigrationResult res;
    k.spawn(mbind_lazy(p, base, 1, k.fast_node(), &res));
    k.run();

    TouchOutcome first, second;
    auto coro = [&]() -> sim::Task {
        co_await p.touch(base, false, &first);
        const sim::SimTime mid = k.eq().now();
        co_await p.touch(base, false, &second);
        EXPECT_EQ(k.eq().now(), mid);  // no cost at all
    };
    sim::Task t = coro();
    k.run();
    EXPECT_EQ(first.lazy_migrations, 1u);
    EXPECT_EQ(second.lazy_migrations, 0u);
}

TEST(LazyMigration, ExhaustedTargetDropsMarkerGracefully)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr hog =
        p.mmap(6ull << 20, vm::PageSize::k4K, k.fast_node());
    ASSERT_NE(hog, 0u);
    const vm::VAddr base = p.mmap(4096, vm::PageSize::k4K);
    MigrationResult res;
    k.spawn(mbind_lazy(p, base, 1, k.fast_node(), &res));
    k.run();

    TouchOutcome out;
    auto coro = [&]() -> sim::Task { co_await p.touch(base, true, &out); };
    sim::Task t = coro();
    k.run();
    EXPECT_EQ(out.result, vm::AccessResult::kOk);
    vm::Vma *vma = p.as().find_vma(base);
    EXPECT_FALSE(vma->pte(0).lazy);  // marker dropped
    EXPECT_EQ(k.phys().node_of(vma->pte(0).pfn), k.slow_node());
}

TEST(LazyMigration, DefersButDoesNotReduceTotalCost)
{
    // The paper's §7 critique, quantified: touching every armed page
    // costs (at least) what one eager migration syscall costs.
    const std::uint64_t npages = 64;

    Kernel eager;
    Process &pe = eager.create_process();
    const vm::VAddr be = pe.mmap(npages * 4096, vm::PageSize::k4K);
    MigrationResult res;
    eager.spawn(migrate_pages_sync(pe, be, npages, eager.fast_node(),
                                   &res));
    eager.run();
    const double eager_cpu_us =
        sim::to_us(eager.cpu().accounting().total);

    Kernel lazy;
    Process &pl = lazy.create_process();
    const vm::VAddr bl = pl.mmap(npages * 4096, vm::PageSize::k4K);
    lazy.spawn(mbind_lazy(pl, bl, npages, lazy.fast_node(), &res));
    lazy.run();
    auto touch_all = [&]() -> sim::Task {
        TouchOutcome out;
        for (std::uint64_t i = 0; i < npages; ++i)
            co_await pl.touch(bl + i * 4096, true, &out);
    };
    auto t = touch_all();
    lazy.run();
    const double lazy_cpu_us = sim::to_us(lazy.cpu().accounting().total);

    // All pages moved in both cases...
    vm::Vma *vma = pl.as().find_vma(bl);
    for (std::uint64_t i = 0; i < npages; ++i)
        EXPECT_EQ(lazy.phys().node_of(vma->pte(i).pfn), lazy.fast_node());
    // ...and laziness did not make it cheaper overall (per-fault traps
    // plus the marking pass actually add a little).
    EXPECT_GE(lazy_cpu_us, eager_cpu_us);
    EXPECT_LT(lazy_cpu_us, 1.6 * eager_cpu_us);
}

}  // namespace
}  // namespace memif::os
