/**
 * @file
 * Page table entries.
 *
 * PTEs are 64-bit words held in std::atomic so the paper's race-handling
 * machinery is real: the baseline installs *migration PTEs* that block
 * accessors (§5.2 Fig. 4a), while memif installs a *semi-final* PTE with
 * the young bit set and later finalizes it with a genuine compare-and-
 * swap — any intervening access clears young and makes the CAS fail
 * (§5.2 Fig. 4b, "proceed and fail").
 *
 * Young-bit semantics follow the paper's ARM model: the kernel emulates
 * the access flag, so a PTE with young *set* traps the first access,
 * which clears the bit. memif exploits exactly this inversion.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "mem/phys.h"

namespace memif::vm {

/** Decoded PTE. */
struct Pte {
    mem::Pfn pfn = 0;
    bool present = false;
    bool writable = false;
    /** Set = first access will trap (ARM SW access-flag emulation). */
    bool young = false;
    bool dirty = false;
    /** Baseline race *prevention*: accessors must block (Linux-style). */
    bool migration = false;
    /** Lazy-migration marker (Goglin-style, paper §7): the first touch
     *  migrates the page to lazy_target. */
    bool lazy = false;
    /** Destination node for a lazy migration (2 bits: up to 4 nodes). */
    std::uint8_t lazy_target = 0;

    static constexpr std::uint64_t kPresent = 1ull << 0;
    static constexpr std::uint64_t kWrite = 1ull << 1;
    static constexpr std::uint64_t kYoung = 1ull << 2;
    static constexpr std::uint64_t kDirty = 1ull << 3;
    static constexpr std::uint64_t kMigration = 1ull << 4;
    static constexpr std::uint64_t kLazy = 1ull << 5;
    static constexpr unsigned kLazyTargetShift = 6;  // bits [7:6]
    static constexpr unsigned kPfnShift = 12;

    constexpr std::uint64_t
    pack() const
    {
        std::uint64_t v = pfn << kPfnShift;
        if (present) v |= kPresent;
        if (writable) v |= kWrite;
        if (young) v |= kYoung;
        if (dirty) v |= kDirty;
        if (migration) v |= kMigration;
        if (lazy) v |= kLazy;
        v |= (std::uint64_t{lazy_target} & 0x3) << kLazyTargetShift;
        return v;
    }

    static constexpr Pte
    unpack(std::uint64_t v)
    {
        Pte p;
        p.pfn = v >> kPfnShift;
        p.present = v & kPresent;
        p.writable = v & kWrite;
        p.young = v & kYoung;
        p.dirty = v & kDirty;
        p.migration = v & kMigration;
        p.lazy = v & kLazy;
        p.lazy_target =
            static_cast<std::uint8_t>((v >> kLazyTargetShift) & 0x3);
        return p;
    }

    /** A normal, immediately usable mapping. */
    static constexpr Pte
    make(mem::Pfn pfn, bool writable = true)
    {
        Pte p;
        p.pfn = pfn;
        p.present = true;
        p.writable = writable;
        return p;
    }

    /** The empty (non-present) entry. */
    static constexpr Pte none() { return Pte{}; }

    friend constexpr bool
    operator==(const Pte &a, const Pte &b)
    {
        return a.pack() == b.pack();
    }
};

/** Storage slot for one PTE. */
using PteSlot = std::atomic<std::uint64_t>;

}  // namespace memif::vm
