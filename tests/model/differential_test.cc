/**
 * @file
 * The differential suite proper: seeded random workloads replayed
 * through all nine presets (levers-off, pipelined, moderated, scaled,
 * tenanted, mmu_aware, managed, tiered, strided) must match the
 * reference model
 * byte-for-byte and leave the driver fully quiesced — under FIFO
 * scheduling, fuzzed schedules, injected faults, invalidation storms
 * racing TLB shootdowns against in-flight translation prefetches, and
 * heat churn driving the managed preset's migration daemon underneath
 * the workload's own requests.
 *
 * Seed count scales with the MEMIF_CHECK_SEEDS environment variable
 * (default 16; CI quick mode runs 64, nightly can run thousands).
 * Every failure message leads with the (workload_seed, schedule_seed)
 * pair that reproduces it; the minimizer shrinks the op list for the
 * pair before the test reports it.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/differential.h"
#include "check/minimize.h"
#include "check/reference_model.h"
#include "check/workload.h"

namespace memif::check {
namespace {

std::uint64_t
seeds_from_env(std::uint64_t fallback)
{
    const char *env = std::getenv("MEMIF_CHECK_SEEDS");
    if (!env) return fallback;
    const long long v = std::atoll(env);
    return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

/** On failure: shrink the workload and report the repro coordinates. */
std::string
diagnose(const Workload &w, const RunOptions &opt)
{
    const MinimizeOutcome m = minimize_workload(w, opt, 120);
    return "reproduce with " + seed_pair(w, opt) + "\n  failure: " +
           m.failure + "\n  minimized " +
           std::to_string(m.original_ops) + " -> " +
           std::to_string(m.minimized_ops) + " ops in " +
           std::to_string(m.runs) + " runs";
}

TEST(Differential, AllPresetsMatchTheModel)
{
    const std::uint64_t nseeds = seeds_from_env(16);
    for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
        const Workload w = generate_workload(seed);
        std::uint64_t mem_digest = 0;
        const char *digest_from = nullptr;
        for (const Preset &p : presets()) {
            RunOptions opt;
            opt.config = p.config;
            const RunResult r = run_workload(w, opt);
            ASSERT_TRUE(r.ok)
                << "preset " << p.name << ": " << r.failure << "\n"
                << diagnose(w, opt);
            // Byte-identical across presets: migrations preserve
            // content and replication effects are order-independent,
            // so lever choice must never show up in memory.
            if (!digest_from) {
                mem_digest = r.mem_digest;
                digest_from = p.name;
            } else {
                ASSERT_EQ(r.mem_digest, mem_digest)
                    << "seed " << seed << ": preset " << p.name
                    << " memory diverges from preset " << digest_from;
            }
        }
    }
}

TEST(Differential, FuzzedSchedulesMatchTheModel)
{
    const std::uint64_t nseeds = seeds_from_env(16) / 2 + 1;
    for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
        const Workload w = generate_workload(seed);
        for (const Preset &p : presets()) {
            std::uint64_t fifo_digest = 0;
            for (std::uint64_t sched : {0ull, 11ull, 97ull}) {
                RunOptions opt;
                opt.config = p.config;
                opt.schedule_seed = sched;
                const RunResult r = run_workload(w, opt);
                ASSERT_TRUE(r.ok)
                    << "preset " << p.name << ": " << r.failure << "\n"
                    << diagnose(w, opt);
                if (sched == 0)
                    fifo_digest = r.mem_digest;
                else
                    ASSERT_EQ(r.mem_digest, fifo_digest)
                        << seed_pair(w, opt) << " preset " << p.name
                        << ": fuzzed schedule changed final memory";
            }
        }
    }
}

TEST(Differential, FaultedRunsMatchTheModel)
{
    const std::uint64_t nseeds = seeds_from_env(16) / 2 + 1;
    for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
        const Workload w = generate_workload(seed);
        for (const Preset &p : presets()) {
            RunOptions opt;
            opt.config = p.config;
            opt.arm_faults = true;
            opt.schedule_seed = seed * 3 + 1;
            const RunResult r = run_workload(w, opt);
            ASSERT_TRUE(r.ok)
                << "preset " << p.name << " (faults armed): "
                << r.failure << "\n"
                << diagnose(w, opt);
        }
    }
}

TEST(Differential, ReplayIsBitIdentical)
{
    const Workload w = generate_workload(12345);
    for (const Preset &p : presets()) {
        RunOptions opt;
        opt.config = p.config;
        opt.schedule_seed = 777;
        opt.arm_faults = true;
        const RunResult a = run_workload(w, opt);
        const RunResult b = run_workload(w, opt);
        EXPECT_EQ(a.ok, b.ok) << p.name;
        EXPECT_EQ(a.full_digest, b.full_digest)
            << "preset " << p.name
            << ": same (workload, schedule, preset) triple produced "
               "different runs";
        EXPECT_EQ(a.end_time, b.end_time) << p.name;
    }
}

// The checker must be able to see its own injected bug: an undeclared
// deterministic DMA fault makes the driver report kDmaError while the
// model expects success -> the run fails and the minimizer shrinks the
// repro to a handful of ops that still replay from the same seed pair.
TEST(Differential, MinimizerShrinksAnInjectedDivergence)
{
    const Workload w = generate_workload(4242);
    RunOptions opt;
    opt.config.cpu_copy_fallback = false;  // let the fault surface
    opt.config.dma_max_retries = 0;        // ... on the first attempt
    opt.inject_undeclared_fault_nth = 1;

    const RunResult r = run_workload(w, opt);
    ASSERT_FALSE(r.ok) << "injected fault was not caught";
    EXPECT_NE(r.failure.find("workload_seed=4242"), std::string::npos)
        << "failure must print the repro seed pair: " << r.failure;

    const MinimizeOutcome m = minimize_workload(w, opt, 200);
    EXPECT_FALSE(m.failure.empty());
    EXPECT_LT(m.minimized_ops, m.original_ops);
    // The first DMA chain always carries the fault, so one valid mov
    // plus the mandatory trailing barrier must survive minimization.
    EXPECT_LE(m.minimized_ops, 4u);
    // The minimized workload still reproduces, deterministically.
    const RunResult again = run_workload(m.workload, opt);
    EXPECT_FALSE(again.ok);
    EXPECT_EQ(again.failure, m.failure);
}

// Preset-coverage tripwire (see CONTRIBUTING.md "Adding a config
// lever"): a behaviour lever the differential suite never turns on is
// a lever the model checker never exercises. The size check fires when
// MemifConfig grows a field; fix it by wiring the new lever into a
// preset (src/check/differential.cc) and updating both expectations.
TEST(Differential, EveryConfigLeverAppearsInAPreset)
{
    EXPECT_EQ(sizeof(core::MemifConfig), 280u)
        << "MemifConfig changed shape: add the new lever to a preset "
           "in src/check/differential.cc, then update this size";

    const core::MemifConfig &top = presets().back().config;
    EXPECT_STREQ(presets().back().name, "strided");
    // Default-on levers are exercised by every preset...
    EXPECT_TRUE(top.gang_lookup);
    EXPECT_TRUE(top.cpu_copy_fallback);
    // ...and every default-off behaviour lever must be on by the top
    // of the preset ladder.
    EXPECT_TRUE(top.sg_coalescing);
    EXPECT_TRUE(top.multi_tc_dispatch);
    EXPECT_TRUE(top.batched_tlb_shootdown);
    EXPECT_TRUE(top.irq_moderation);
    EXPECT_TRUE(top.completion_drain);
    EXPECT_TRUE(top.adaptive_polling);
    EXPECT_TRUE(top.xlate_cache);
    EXPECT_TRUE(top.bulk_alloc);
    EXPECT_TRUE(top.percpu_rings);
    EXPECT_TRUE(top.multi_tenant);
    EXPECT_TRUE(top.xlate_prefetch_ahead);
    EXPECT_TRUE(top.sva_dma);
    EXPECT_TRUE(top.auto_migrate);
    EXPECT_TRUE(top.tiered_memory);
    EXPECT_TRUE(top.pipelined_eviction);
    EXPECT_TRUE(top.strided_dma);
    // Scanner dormancy is default-on whenever the daemon runs, so the
    // managed preset exercises the settle/probe/wake machinery too.
    EXPECT_GT(top.heat_settle_epochs, 0u);
    EXPECT_GT(top.heat_dormant_cap, 0u);
}

// Invalidation storm: every mov is chased by same-instant touches on
// its own pages, so young/dirty PTE CASes fire the xlate-invalidate
// hook while translations are in flight — pending prefetches are
// killed between issue and fill, filled entries between fill and
// consumption. The SVA gate must re-walk (never serve stale bytes)
// and the generation check must drop the dead fills; final memory
// stays byte-identical across every preset.
TEST(Differential, InvalidationStormsMatchTheModel)
{
    const std::uint64_t nseeds = seeds_from_env(16) / 2 + 1;
    for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
        const Workload w =
            generate_workload(seed, /*invalidation_storm=*/true);
        std::uint64_t mem_digest = 0;
        const char *digest_from = nullptr;
        for (const Preset &p : presets()) {
            RunOptions opt;
            opt.config = p.config;
            opt.schedule_seed = seed * 7 + 3;
            const RunResult r = run_workload(w, opt);
            ASSERT_TRUE(r.ok)
                << "preset " << p.name << " (storm): " << r.failure
                << "\n"
                << diagnose(w, opt);
            if (!digest_from) {
                mem_digest = r.mem_digest;
                digest_from = p.name;
            } else {
                ASSERT_EQ(r.mem_digest, mem_digest)
                    << "storm seed " << seed << ": preset " << p.name
                    << " memory diverges from preset " << digest_from;
            }
        }
    }
}

// Strided workloads: 2D replications with randomized pitch/rows
// geometries (plus strided malformations) mixed into the usual op
// stream. Only the strided preset runs them — with the strided_dma
// lever off a valid strided request fails validation, which the model
// would mispredict — across FIFO and fuzzed schedules; the final
// bytes must match the model's naive per-row oracle exactly, and
// across the seed set the device must actually have taken the 2D
// descriptor path.
TEST(Differential, StridedWorkloadsMatchTheModel)
{
    const Preset &p = presets().back();
    ASSERT_STREQ(p.name, "strided");
    const std::uint64_t nseeds = seeds_from_env(16);
    std::uint64_t strided_requests = 0, strided_descriptors = 0;
    std::uint64_t row_splits = 0;
    for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
        const Workload w =
            generate_workload(seed, /*invalidation_storm=*/false,
                              /*heat_churn=*/false, /*strided=*/true);
        // Leg 1: the full preset (SVA on — strided requests ride the
        // translation stream as 1:1 flat slots, so rows never merge).
        // Leg 2: the same config minus sva_dma, where whole rows merge
        // into genuine 2D descriptors — both must match the oracle.
        core::MemifConfig nosva = p.config;
        nosva.sva_dma = false;
        nosva.xlate_prefetch_ahead = false;
        for (const core::MemifConfig &cfg : {p.config, nosva}) {
            for (std::uint64_t sched : {0ull, 29ull}) {
                RunOptions opt;
                opt.config = cfg;
                opt.schedule_seed = sched;
                const RunResult r = run_workload(w, opt);
                ASSERT_TRUE(r.ok)
                    << "preset " << p.name << " (strided, sva_dma="
                    << cfg.sva_dma << "): " << r.failure << "\n"
                    << diagnose(w, opt);
                strided_requests += r.stats.strided_requests;
                strided_descriptors += r.stats.strided_descriptors;
                row_splits += r.stats.strided_row_splits;
            }
        }
    }
    EXPECT_GT(strided_requests, 0u)
        << "strided workloads never produced a strided request";
    EXPECT_GT(strided_descriptors, 0u)
        << "no request ever merged rows into a 2D descriptor";
    EXPECT_GT(row_splits, 0u)
        << "no row ever straddled a page boundary (geometry too tame)";
}

// Strided + injected faults: mid-transfer TC errors, lost IRQs and
// stuck chains must retry (replaying the same pitched list) and, once
// retries exhaust, fall back to the layout-preserving CPU copy — the
// model's bytes must still match exactly (no torn rows, no missing
// pitch gaps).
TEST(Differential, StridedFaultedRunsMatchTheModel)
{
    const Preset &p = presets().back();
    ASSERT_STREQ(p.name, "strided");
    const std::uint64_t nseeds = seeds_from_env(16) / 2 + 1;
    for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
        const Workload w =
            generate_workload(seed, /*invalidation_storm=*/false,
                              /*heat_churn=*/false, /*strided=*/true);
        RunOptions opt;
        opt.config = p.config;
        opt.arm_faults = true;
        opt.schedule_seed = seed * 5 + 2;
        const RunResult r = run_workload(w, opt);
        ASSERT_TRUE(r.ok)
            << "preset " << p.name << " (strided, faults armed): "
            << r.failure << "\n"
            << diagnose(w, opt);
    }
}

// Heat churn: a per-seed hot window is hammered with touches all run
// long, so the managed preset's scanner sees stable heat and its
// migration daemon issues device-originated movs underneath the
// workload's own requests. Migration is placement, not mutation:
// final memory must stay byte-identical to every other preset, the
// daemon must be fully quiesced at the end (run_workload's invariant
// sweep), and across the seed set it must have actually moved pages.
TEST(Differential, HeatChurnDrivesTheManagedDaemon)
{
    const std::uint64_t nseeds = seeds_from_env(16) / 2 + 1;
    std::uint64_t daemon_movs = 0, heat_scans = 0;
    for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
        const Workload w = generate_workload(
            seed, /*invalidation_storm=*/false, /*heat_churn=*/true);
        std::uint64_t mem_digest = 0;
        const char *digest_from = nullptr;
        for (const Preset &p : presets()) {
            RunOptions opt;
            opt.config = p.config;
            opt.schedule_seed = seed * 13 + 5;
            const RunResult r = run_workload(w, opt);
            ASSERT_TRUE(r.ok)
                << "preset " << p.name << " (heat churn): " << r.failure
                << "\n"
                << diagnose(w, opt);
            if (!digest_from) {
                mem_digest = r.mem_digest;
                digest_from = p.name;
            } else {
                ASSERT_EQ(r.mem_digest, mem_digest)
                    << "churn seed " << seed << ": preset " << p.name
                    << " memory diverges from preset " << digest_from;
            }
            if (opt.config.auto_migrate) {
                heat_scans += r.stats.heat_scans;
                daemon_movs += r.stats.promotions_issued +
                               r.stats.demotions_issued;
            } else {
                EXPECT_EQ(r.stats.heat_scans, 0u)
                    << "preset " << p.name
                    << " ran the heat scanner with auto_migrate off";
            }
        }
    }
    EXPECT_GT(heat_scans, 0u)
        << "managed preset never ran a heat-scan epoch";
    EXPECT_GT(daemon_movs, 0u)
        << "managed preset's daemon never issued a migration";
}

}  // namespace
}  // namespace memif::check
