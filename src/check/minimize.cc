#include "check/minimize.h"

#include <algorithm>

namespace memif::check {

MinimizeOutcome
minimize_workload(const Workload &w, const RunOptions &opt,
                  std::uint32_t max_runs)
{
    MinimizeOutcome out;
    out.workload = w;
    out.original_ops = w.ops.size();

    RunResult first = run_workload(w, opt);
    out.runs = 1;
    if (first.ok) {
        out.minimized_ops = w.ops.size();
        return out;
    }
    out.failure = first.failure;

    // Drop chunks of `chunk` ops left to right; on a full pass with no
    // progress, halve the chunk. Any failure (not necessarily the
    // original message) counts as reproducing — divergences routinely
    // shift shape as context shrinks.
    std::size_t chunk = std::max<std::size_t>(1, out.workload.ops.size() / 2);
    while (chunk >= 1 && out.runs < max_runs) {
        bool progressed = false;
        std::size_t begin = 0;
        while (begin < out.workload.ops.size() && out.runs < max_runs) {
            const Workload candidate =
                drop_ops(out.workload, begin, chunk);
            if (candidate.ops.size() >= out.workload.ops.size()) {
                begin += chunk;
                continue;
            }
            const RunResult r = run_workload(candidate, opt);
            ++out.runs;
            if (!r.ok) {
                out.workload = candidate;
                out.failure = r.failure;
                progressed = true;
                // Retry the same offset: the next chunk slid into it.
            } else {
                begin += chunk;
            }
        }
        if (!progressed) {
            if (chunk == 1) break;
            chunk /= 2;
        } else {
            chunk = std::min(
                chunk, std::max<std::size_t>(
                           1, out.workload.ops.size() / 2));
        }
    }
    out.minimized_ops = out.workload.ops.size();
    return out;
}

}  // namespace memif::check
