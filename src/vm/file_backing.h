/**
 * @file
 * The contract between file-backed Vmas and whatever owns the file's
 * page cache (os::TmpFs here). The vm layer stays filesystem-agnostic:
 * it only needs to tell the backing when a cached frame was relocated
 * by a migration.
 */
#pragma once

#include <cstdint>

#include "mem/phys.h"

namespace memif::vm {

class FileBacking {
  public:
    virtual ~FileBacking() = default;

    /** Replace the cached frame of file page @p page_index. */
    virtual void relocate(std::uint64_t page_index, mem::Pfn new_pfn) = 0;

    /** Frame currently caching file page @p page_index (or invalid). */
    virtual mem::Pfn cached_pfn(std::uint64_t page_index) const = 0;
};

}  // namespace memif::vm
