#include "memif/memif.h"

#include <map>
#include <memory>
#include <vector>

#include "sim/log.h"

namespace memif::core {

namespace {

/** The "filesystem": device names -> devices (per-process fd tables
 *  would be overkill for the façade; descriptors are global). */
std::map<std::string, MemifDevice *> &
device_files()
{
    static std::map<std::string, MemifDevice *> files;
    return files;
}

struct OpenFile {
    MemifDevice *device = nullptr;
    std::unique_ptr<MemifUser> user;
};

std::vector<OpenFile> &
fd_table()
{
    static std::vector<OpenFile> fds;
    return fds;
}

OpenFile *
lookup(int memfd)
{
    auto &fds = fd_table();
    if (memfd < 0 || static_cast<std::size_t>(memfd) >= fds.size())
        return nullptr;
    OpenFile &f = fds[static_cast<std::size_t>(memfd)];
    return f.device ? &f : nullptr;
}

}  // namespace

void
RegisterDeviceFile(const std::string &name, MemifDevice &device)
{
    device_files()[name] = &device;
}

void
UnregisterDeviceFile(const std::string &name)
{
    device_files().erase(name);
    // Invalidate descriptors still pointing at now-unregistered devices.
    for (OpenFile &f : fd_table()) {
        if (!f.device) continue;
        bool still_registered = false;
        for (const auto &[n, d] : device_files())
            if (d == f.device) still_registered = true;
        if (!still_registered) {
            f.device = nullptr;
            f.user.reset();
        }
    }
}

void
ResetDeviceFiles()
{
    device_files().clear();
    fd_table().clear();
}

int
MemifOpen(const char *device_name)
{
    auto it = device_files().find(device_name);
    if (it == device_files().end()) return kErrNoEntry;
    OpenFile f;
    f.device = it->second;
    f.user = std::make_unique<MemifUser>(*it->second);
    // Reuse a closed slot if one exists.
    auto &fds = fd_table();
    for (std::size_t i = 0; i < fds.size(); ++i) {
        if (!fds[i].device) {
            fds[i] = std::move(f);
            return static_cast<int>(i);
        }
    }
    fds.push_back(std::move(f));
    return static_cast<int>(fds.size() - 1);
}

int
MemifClose(int memfd)
{
    OpenFile *f = lookup(memfd);
    if (!f) return kErrBadFd;
    f->device = nullptr;
    f->user.reset();
    return kOk;
}

mov_req *
AllocRequest(int memfd)
{
    return AllocRequest(memfd, nullptr);
}

mov_req *
AllocRequest(int memfd, int *out_rc)
{
    OpenFile *f = lookup(memfd);
    if (!f) {
        if (out_rc) *out_rc = kErrBadFd;
        return nullptr;
    }
    const std::uint32_t idx = f->user->alloc_request();
    if (idx == kNoRequest) {
        if (out_rc) *out_rc = kErrNoSpace;
        return nullptr;
    }
    if (out_rc) *out_rc = kOk;
    return &f->user->request(idx);
}

void
FreeRequest(int memfd, mov_req *req)
{
    OpenFile *f = lookup(memfd);
    if (!f || !req) return;
    f->user->free_request(f->device->region().index_of(*req));
}

sim::Task
SubmitRequest(int memfd, mov_req *req, int *out_rc)
{
    OpenFile *f = lookup(memfd);
    if (!f || !req) {
        if (out_rc) *out_rc = kErrBadFd;
        co_return;
    }
    co_await f->user->submit(f->device->region().index_of(*req));
    // Admission control (multi_tenant) completes a rejected request
    // synchronously as kFailed/kNoSpace; surface that as the paper's
    // ENOSPC-style return so callers can honor req->retry_after_us.
    if (out_rc)
        *out_rc = (req->load_status() == MovStatus::kFailed &&
                   req->error == MovError::kNoSpace)
                      ? kErrNoSpace
                      : kOk;
}

sim::Task
memif_mov_many(int memfd, mov_req *const *reqs, std::size_t count,
               int *out_rc)
{
    OpenFile *f = lookup(memfd);
    if (!f || !reqs) {
        if (out_rc) *out_rc = kErrBadFd;
        co_return;
    }
    std::vector<std::uint32_t> idxs;
    idxs.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        if (reqs[i])
            idxs.push_back(f->device->region().index_of(*reqs[i]));
    co_await f->user->submit_many(idxs);
    if (out_rc) *out_rc = kOk;
}

namespace {

/** Shared body of the strided/gather wrappers: alloc + fill + submit. */
sim::Task
submit_strided(int memfd, std::uint64_t dst, std::uint64_t src,
               std::uint64_t gather_list, std::uint32_t row_bytes,
               std::uint32_t rows, std::uint64_t src_pitch,
               std::uint64_t dst_pitch, int *out_rc, mov_req **out_req)
{
    if (out_req) *out_req = nullptr;
    int rc = kOk;
    mov_req *req = AllocRequest(memfd, &rc);
    if (!req) {
        if (out_rc) *out_rc = rc;
        co_return;
    }
    req->op = MovOp::kReplicate;
    req->src_base = src;
    req->dst_base = dst;
    req->num_pages = 0;
    req->rows = rows;
    req->row_bytes = row_bytes;
    req->src_pitch = src_pitch;
    req->dst_pitch = dst_pitch;
    req->gather_list = gather_list;
    co_await SubmitRequest(memfd, req, &rc);
    // On admission rejection (kErrNoSpace) the request still travels
    // the completion queue like any failure — hand it back so the
    // caller can read retry_after_us, retrieve the notification, and
    // free it; freeing here would leave a stale completion index.
    if (out_req) *out_req = req;
    if (out_rc) *out_rc = rc;
}

}  // namespace

sim::Task
memif_mov_strided(int memfd, std::uint64_t dst, std::uint64_t src,
                  std::uint32_t row_bytes, std::uint32_t rows,
                  std::uint64_t src_pitch, std::uint64_t dst_pitch,
                  int *out_rc, mov_req **out_req)
{
    co_await submit_strided(memfd, dst, src, /*gather_list=*/0, row_bytes,
                            rows, src_pitch, dst_pitch, out_rc, out_req);
}

sim::Task
memif_mov_gather(int memfd, std::uint64_t dst, std::uint64_t src_region,
                 std::uint64_t gather_list, std::uint32_t row_bytes,
                 std::uint32_t rows, std::uint64_t dst_pitch,
                 int *out_rc, mov_req **out_req)
{
    co_await submit_strided(memfd, dst, src_region, gather_list, row_bytes,
                            rows, /*src_pitch=*/row_bytes, dst_pitch,
                            out_rc, out_req);
}

mov_req *
RetrieveCompleted(int memfd)
{
    OpenFile *f = lookup(memfd);
    if (!f) return nullptr;
    const std::uint32_t idx = f->user->retrieve_completed();
    if (idx == kNoRequest) return nullptr;
    return &f->user->request(idx);
}

sim::Task
Poll(int memfd)
{
    OpenFile *f = lookup(memfd);
    if (!f) co_return;
    co_await f->user->poll();
}

sim::Task
PollFds(std::vector<int> fds, int *out_ready)
{
    if (out_ready) *out_ready = -1;
    std::vector<sim::SimEvent *> events;
    std::vector<int> valid;
    sim::EventQueue *eq = nullptr;
    for (const int fd : fds) {
        OpenFile *f = lookup(fd);
        if (!f) continue;
        events.push_back(&f->device->completion_event());
        valid.push_back(fd);
        eq = &f->device->kernel().eq();
    }
    if (events.empty()) co_return;
    // Charge the poll syscall once, against the first device's kernel.
    os::Kernel &k = lookup(valid.front())->device->kernel();
    co_await k.cpu().busy(sim::ExecContext::kSyscall, sim::Op::kSyscall,
                          k.costs().poll_syscall);
    std::size_t which = 0;
    co_await sim::wait_any(*eq, events, &which);
    if (out_ready) *out_ready = valid[which];
}

}  // namespace memif::core
