/**
 * @file
 * The pseudo-NUMA abstraction (paper §1/§6.1): heterogeneous memories
 * exposed as NUMA nodes so "all kernel subsystems and the userspace,
 * e.g., the numactl utility, can see and use two NUMA nodes".
 *
 * This module provides the userspace-facing NUMA machinery on top of
 * that abstraction:
 *
 *  - mbind-style allocation policies (bind / preferred / interleave)
 *    applied at mmap time;
 *  - a Linux-like move_pages(): per-page synchronous migration with a
 *    per-page status vector;
 *  - numastat-style per-node accounting.
 *
 * memif itself deliberately bypasses these (it is the *asynchronous*
 * alternative); this layer exists because a real system would ship
 * both, and the benches use it for the baseline.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/phys.h"
#include "os/process.h"
#include "sim/task.h"
#include "vm/page_size.h"

namespace memif::os {

class Kernel;

/** mbind-style allocation policies. */
enum class NumaPolicy : std::uint8_t {
    kDefault = 0,  ///< CPU-local node (the slow DDR node on KeyStone II)
    kBind,         ///< only the given nodes; fail when exhausted
    kPreferred,    ///< try the given node, fall back to any other
    kInterleave,   ///< round-robin pages across the given nodes
};

/** A policy plus its node set. */
struct MemPolicy {
    NumaPolicy policy = NumaPolicy::kDefault;
    std::vector<mem::NodeId> nodes;
};

/**
 * mmap with a NUMA policy: allocates each page's backing according to
 * @p pol (the mbind(2)-at-allocation model).
 * @return base address, or 0 when the policy cannot be satisfied.
 */
vm::VAddr numa_mmap(Process &proc, std::uint64_t bytes, vm::PageSize psize,
                    const MemPolicy &pol);

/** Per-page status codes for move_pages (errno-style, 0 = moved). */
inline constexpr int kPageMoved = 0;
inline constexpr int kPageNoEnt = -2;    ///< not mapped
inline constexpr int kPageBusy = -16;    ///< shared / pinned
inline constexpr int kPageNoMem = -12;   ///< destination exhausted
inline constexpr int kPageAlready = 1;   ///< already on the target node

/**
 * Linux-like move_pages(2): synchronously migrate each page in
 * @p pages to the corresponding node in @p nodes, writing one status
 * per page. Coroutine in @p proc's context (one syscall for the lot).
 *
 * The vectors are taken by value on purpose: coroutine reference
 * parameters to caller temporaries dangle after the first suspension.
 */
sim::Task move_pages(Process &proc, std::vector<vm::VAddr> pages,
                     std::vector<mem::NodeId> nodes,
                     std::vector<int> *status);

/** One node's numastat-style snapshot. */
struct NumaNodeStat {
    mem::NodeId id = 0;
    std::string name;
    std::uint64_t total_bytes = 0;
    std::uint64_t free_bytes = 0;
    std::uint64_t used_bytes = 0;
    bool is_fast = false;
};

/** Per-node accounting for every node in the machine. */
std::vector<NumaNodeStat> numa_stat(Kernel &kernel);

}  // namespace memif::os
