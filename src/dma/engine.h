/**
 * @file
 * The simulated EDMA3 engine: executes descriptor chains against real
 * physical memory with bandwidth-accurate virtual timing.
 *
 * Transfers run asynchronously on one of six transfer controllers
 * (Table 2). When a chain completes, the engine really copies the bytes
 * and then either raises a completion interrupt or sets a pollable flag
 * (the §5.4 kernel thread switches between those modes). Transfers can
 * be cancelled while in flight — no bytes move — which backs the
 * "proceed and recover" race policy of §5.2.
 *
 * The engine also carries an EDMA3-style error model, driven entirely
 * by the kernel's FaultInjector (sites below): a TC bus error completes
 * the transfer with TransferStatus::kError and zero bytes moved but
 * still dispatches the CC error interrupt (on_complete); a lost
 * completion interrupt moves the bytes but never runs on_complete; a
 * stuck transfer never completes at all until cancelled. The memif
 * driver's watchdog / retry / fallback machinery turns all three into
 * definite request outcomes.
 *
 * The engine is cache-coherent with the CPU, as on KeyStone II (§2.3),
 * so no cache maintenance is modelled around transfers.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dma/descriptor.h"
#include "mem/phys.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/types.h"

namespace memif::dma {

/** Handle for an in-flight or finished transfer. */
using TransferId = std::uint64_t;
inline constexpr TransferId kInvalidTransfer = 0;

/** Completion callback; runs in simulated interrupt context. */
using CompletionFn = std::function<void(TransferId)>;

/** Verdict of the per-descriptor translation gate (SVA-routed DMA). */
struct XlateVerdict {
    /** Engine stall charged before the entry streams (a demand walk or
     *  an in-progress prefetch the consumer outran). */
    sim::Duration stall = 0;
    /** The walk could not resolve: the chain terminates like a TC bus
     *  error (entries already streamed stay written — the driver's
     *  recovery ladder owns the cleanup). */
    bool fault = false;
};

/**
 * Per-descriptor translation gate (SVA-routed DMA): invoked at the
 * simulated instant the TC is about to consume each descriptor of a
 * gated chain, in chain order. The gate may rewrite @p d's src/dst (the
 * local copy the TC streams from; PaRAM is not written back), which is
 * how a mid-flight re-walk redirects an entry. Must be synchronous and
 * must not call back into the engine.
 */
using XlateGate = std::function<XlateVerdict(
    TransferId id, std::uint32_t index, TransferDescriptor &d)>;

/** Terminal outcome of a transfer (EDMA3 TC error status model). */
enum class TransferStatus : std::uint8_t {
    kOk = 0,     ///< completed, bytes copied
    kError,      ///< TC bus error: completed with no bytes moved
    kCancelled,  ///< cancelled by the driver: no bytes moved
};

/** @name Engine fault-injection sites (see sim/fault.h catalog). */
///@{
inline constexpr std::string_view kFaultTcError = "dma.tc_error";
inline constexpr std::string_view kFaultLostIrq = "dma.lost_irq";
inline constexpr std::string_view kFaultStuck = "dma.stuck";
///@}

/** Aggregate engine statistics. */
struct EngineStats {
    std::uint64_t transfers_started = 0;
    std::uint64_t transfers_completed = 0;
    std::uint64_t transfers_cancelled = 0;
    std::uint64_t transfers_failed = 0;   ///< TC-error completions
    std::uint64_t interrupts_lost = 0;    ///< injected lost completions
    std::uint64_t bytes_copied = 0;
    std::uint64_t interrupts_raised = 0;
    /** Coalesced completion IRQs delivered (each also counts once in
     *  interrupts_raised — that is the point of moderation). */
    std::uint64_t moderated_irqs = 0;
    /** Completions retired through moderated IRQs. */
    std::uint64_t moderated_completions = 0;
    /** Moderation batches flushed by the holdoff timer rather than the
     *  count threshold. */
    std::uint64_t moderation_timer_flushes = 0;
    /** Transfers consumed descriptor-by-descriptor through an
     *  XlateGate (SVA-routed DMA). */
    std::uint64_t gated_transfers = 0;
    /** Gate verdicts that stalled the consuming TC. */
    std::uint64_t gate_stalls = 0;
    /** Total stall time the gate inserted into transfer streams. */
    sim::Duration gate_stall_time = 0;
    /** Chains terminated by a gate fault (counted in transfers_failed
     *  too — a gate fault is delivered as a TC-error completion). */
    std::uint64_t gate_faults = 0;
    sim::Duration busy_time = 0;  ///< summed per-TC busy durations
};

/**
 * The DMA engine model.
 *
 * Owns the PaRAM (DescriptorRam) and the transfer controllers. The
 * engine itself is purely mechanical: descriptor programming policy
 * (and its CPU cost) lives in DmaDriver.
 */
class Edma3Engine {
  public:
    static constexpr unsigned kNumTcs = 6;  // Table 2
    /** Finished-flight records are purged automatically once the table
     *  grows past this, bounding memory in long-running simulations. */
    static constexpr std::size_t kPurgeThreshold = 1024;

    Edma3Engine(sim::EventQueue &eq, mem::PhysicalMemory &pm,
                const sim::CostModel &cm,
                sim::FaultInjector *faults = nullptr)
        : eq_(eq), pm_(pm), cm_(cm), faults_(faults),
          tc_busy_until_(kNumTcs, 0),
          moderation_batch_(cm.dma_moderation_batch),
          moderation_holdoff_(cm.dma_moderation_holdoff)
    {
    }
    Edma3Engine(const Edma3Engine &) = delete;
    Edma3Engine &operator=(const Edma3Engine &) = delete;

    sim::EventQueue &eq() { return eq_; }
    DescriptorRam &param_ram() { return ram_; }
    const DescriptorRam &param_ram() const { return ram_; }

    /**
     * Trigger the chain starting at @p head (following link fields).
     *
     * @param tc            transfer controller to use
     * @param raise_irq     whether completion conceptually interrupts the
     *                      CPU (the interrupt-entry cost is charged by
     *                      the caller's handler); in polled mode pass
     *                      false and watch is_complete()
     * @param on_complete   invoked at completion time regardless of
     *                      @p raise_irq (drivers use it for retirement
     *                      bookkeeping; may be empty)
     * @param moderated     completion joins the per-TC interrupt-
     *                      moderation batch: the bytes land and
     *                      is_complete() flips at the true completion
     *                      time, but on_complete is held until the
     *                      batch flushes (count threshold or holdoff
     *                      timer). TC errors always bypass moderation —
     *                      an error interrupt is never held.
     * @param gate          optional per-descriptor translation gate
     *                      (SVA-routed DMA): with one installed the TC
     *                      consumes the chain descriptor-by-descriptor,
     *                      asking the gate before each entry streams;
     *                      stalls push the completion time back and
     *                      a fault terminates the chain like a TC bus
     *                      error. Injected error/stuck transfers skip
     *                      stepping entirely (their all-or-nothing
     *                      semantics are unchanged).
     * @return a transfer id for polling/cancellation
     */
    TransferId start_chain(DescIndex head, unsigned tc, bool raise_irq,
                           CompletionFn on_complete, bool moderated = false,
                           XlateGate gate = nullptr);

    /** True if @p id terminated on an XlateGate fault (an SVA walk
     *  fault, reported as a TC-error completion). Purged ids report
     *  false. */
    bool gate_faulted(TransferId id) const;

    /**
     * Override the moderation parameters (defaults come from the cost
     * model: dma_moderation_batch / dma_moderation_holdoff). Engine-
     * wide; only transfers started with moderated=true are affected.
     */
    void
    configure_moderation(std::uint32_t batch, sim::Duration holdoff)
    {
        if (batch) moderation_batch_ = batch;
        if (holdoff) moderation_holdoff_ = holdoff;
    }
    std::uint32_t moderation_batch() const { return moderation_batch_; }
    sim::Duration moderation_holdoff() const { return moderation_holdoff_; }

    /**
     * Drop @p id's held moderated completion, if any: its on_complete
     * will not run when the batch flushes. Used by the watchdog path
     * (which dispatches the completion itself) and by device teardown
     * (whose callbacks must not outlive the device).
     * @return true if a pending delivery was discarded.
     */
    bool discard_moderated(TransferId id);

    /**
     * NAPI-style interrupt masking. While masked (nestable; count > 0)
     * held completions accumulate silently — no batch-threshold flush,
     * no holdoff timer — because the driver's poller has promised to
     * reap them directly. unmask_moderation() flushes anything still
     * pending, so a completion can never be stranded by an unbalanced
     * poller. A timer armed before the mask keeps running as a
     * liveness backstop.
     */
    void mask_moderation() { ++moderation_mask_; }
    void unmask_moderation();

    /** Completions currently held by moderation on @p tc (test/diag). */
    std::size_t
    moderation_pending(unsigned tc) const
    {
        return moderation_[tc].pending.size();
    }

    /** Virtual-time cost of the chain at @p head (excl. queueing). */
    sim::Duration chain_duration(DescIndex head) const;

    /** Time at which @p tc finishes its currently queued chains. */
    sim::SimTime
    tc_busy_until(unsigned tc) const
    {
        return tc_busy_until_.at(tc);
    }

    /** The transfer controller that frees up first (ties break toward
     *  the lowest TC number, keeping runs deterministic). */
    unsigned
    least_busy_tc() const
    {
        unsigned best = 0;
        for (unsigned i = 1; i < kNumTcs; ++i)
            if (tc_busy_until_[i] < tc_busy_until_[best]) best = i;
        return best;
    }

    /** True once the transfer finished (with or without error). A
     *  purged id is reported complete (only finished transfers are
     *  purged). Stuck transfers stay incomplete until cancelled. */
    bool is_complete(TransferId id) const;

    /** Terminal status of @p id; kOk while still in flight and for
     *  purged ids (an error is always observed before purging). */
    TransferStatus status(TransferId id) const;

    /** Earliest completion time of @p id (0 if purged). */
    sim::SimTime completion_time(TransferId id) const;

    /** Flight records currently tracked (diagnostic; bounded by
     *  kPurgeThreshold plus the genuinely in-flight population). */
    std::size_t flight_count() const { return flights_.size(); }

    /**
     * Drop bookkeeping for finished (completed or cancelled) transfers
     * so long-running simulations do not accumulate one record per
     * transfer. Queries on purged ids degrade gracefully (see above).
     * @return the number of records dropped.
     */
    std::size_t purge_finished();

    /**
     * Abort an in-flight transfer. No bytes are copied and no interrupt
     * fires. @return false if it had already completed.
     */
    bool cancel(TransferId id);

    const EngineStats &stats() const { return stats_; }
    void reset_stats() { stats_ = EngineStats{}; }

  private:
    struct Flight {
        DescIndex head;
        bool raise_irq;
        bool cancelled = false;
        bool completed = false;
        bool error = false;     ///< injected TC bus error
        bool stuck = false;     ///< injected hang: never completes
        bool lose_irq = false;  ///< injected lost completion interrupt
        bool moderated = false; ///< completion IRQ joins the TC batch
        /** Completed but the moderated delivery has not flushed yet;
         *  such records are exempt from purge_finished(). */
        bool delivery_pending = false;
        bool gate_fault = false; ///< terminated by an XlateGate fault
        unsigned tc = 0;
        sim::SimTime completes_at = 0;
        CompletionFn on_complete;
        /** SVA translation gate; non-null = stepped consumption. */
        XlateGate gate;
        /** Stepped consumption cursor: next descriptor to stream. */
        DescIndex next_desc = kNullLink;
        /** Descriptors consumed so far (loop guard + gate index). */
        std::uint32_t steps = 0;
    };

    /** Per-TC interrupt-moderation state. */
    struct Moderation {
        std::vector<TransferId> pending;  ///< completed, delivery held
        sim::EventQueue::EventId timer = sim::EventQueue::kInvalidEvent;
    };

    void execute_copies(DescIndex head);
    /** Copy one descriptor's bytes (possibly gate-rewritten). */
    void execute_one(const TransferDescriptor &d);
    /** Stepped consumption (gated transfers): gate + stream the next
     *  descriptor, or finish the flight when the chain is exhausted. */
    void step_chain(TransferId id);
    /** Shared completion delivery for stepped transfers (lost-IRQ,
     *  moderation, and callback semantics match the monolithic path). */
    void finish_flight(TransferId id);
    /** Park @p id's completion in @p tc's moderation batch. */
    void hold_completion(TransferId id, unsigned tc);
    /** Deliver one coalesced IRQ retiring everything held on @p tc. */
    void flush_moderated(unsigned tc);

    sim::EventQueue &eq_;
    mem::PhysicalMemory &pm_;
    const sim::CostModel &cm_;
    sim::FaultInjector *faults_;
    DescriptorRam ram_;
    std::vector<sim::SimTime> tc_busy_until_;
    std::unordered_map<TransferId, Flight> flights_;
    std::array<Moderation, kNumTcs> moderation_;
    std::uint32_t moderation_batch_;
    sim::Duration moderation_holdoff_;
    unsigned moderation_mask_ = 0;
    TransferId next_id_ = 1;
    EngineStats stats_;
};

}  // namespace memif::dma
