#include "os/numa.h"

#include "os/kernel.h"
#include "os/page_migration.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/log.h"
#include "vm/addr_space.h"
#include "vm/pte.h"

namespace memif::os {

using sim::ExecContext;
using sim::Op;

vm::VAddr
numa_mmap(Process &proc, std::uint64_t bytes, vm::PageSize psize,
          const MemPolicy &pol)
{
    Kernel &k = proc.kernel();
    const std::size_t num_nodes = k.phys().node_count();
    for (const mem::NodeId n : pol.nodes)
        if (n >= num_nodes) return 0;

    switch (pol.policy) {
      case NumaPolicy::kDefault:
        return proc.as().mmap(bytes, psize, k.slow_node());
      case NumaPolicy::kBind: {
        if (pol.nodes.empty()) return 0;
        return proc.as().mmap_policy(
            bytes, psize,
            [nodes = pol.nodes](std::uint64_t) { return nodes; });
      }
      case NumaPolicy::kPreferred: {
        if (pol.nodes.empty()) return 0;
        std::vector<mem::NodeId> order{pol.nodes.front()};
        for (mem::NodeId n = 0; n < num_nodes; ++n)
            if (n != pol.nodes.front()) order.push_back(n);
        return proc.as().mmap_policy(
            bytes, psize,
            [order = std::move(order)](std::uint64_t) { return order; });
      }
      case NumaPolicy::kInterleave: {
        if (pol.nodes.empty()) return 0;
        return proc.as().mmap_policy(
            bytes, psize, [nodes = pol.nodes](std::uint64_t page) {
                return std::vector<mem::NodeId>{
                    nodes[page % nodes.size()]};
            });
      }
    }
    return 0;
}

sim::Task
move_pages(Process &proc, std::vector<vm::VAddr> pages,
           std::vector<mem::NodeId> nodes, std::vector<int> *status)
{
    Kernel &k = proc.kernel();
    const sim::CostModel &cm = k.costs();
    sim::Cpu &cpu = k.cpu();
    vm::AddressSpace &as = proc.as();
    mem::PhysicalMemory &pm = k.phys();

    MEMIF_ASSERT(pages.size() == nodes.size(),
                 "move_pages: pages/nodes size mismatch");
    std::vector<int> st(pages.size(), kPageNoEnt);

    co_await k.syscall_crossing();
    co_await cpu.busy(ExecContext::kSyscall, Op::kPrep, cm.syscall_setup);

    for (std::size_t p = 0; p < pages.size(); ++p) {
        vm::Vma *vma = as.find_vma(pages[p]);
        if (!vma || nodes[p] >= pm.node_count()) {
            st[p] = kPageNoEnt;
            continue;
        }
        const std::uint64_t pb = vm::page_bytes(vma->page_size());
        const unsigned order = vm::page_order(vma->page_size());
        const std::uint64_t idx = vma->page_index(pages[p]);
        vm::PteSlot &slot = vma->pte_slot(idx);

        co_await cpu.busy(ExecContext::kSyscall, Op::kPrep,
                          cm.page_walk_full + cm.rmap_per_page);
        const vm::Pte old_pte =
            vm::Pte::unpack(slot.load(std::memory_order_acquire));
        if (!old_pte.present) {
            st[p] = kPageNoEnt;
            continue;
        }
        if (pm.node_of(old_pte.pfn) == nodes[p]) {
            st[p] = kPageAlready;
            continue;
        }
        if (pm.frame(old_pte.pfn).mapcount() > 1 ||
            vma->is_file_backed() || old_pte.migration) {
            st[p] = kPageBusy;
            continue;
        }

        co_await cpu.busy(ExecContext::kSyscall, Op::kRemap,
                          cm.page_alloc_time(order));
        const mem::Pfn new_pfn = pm.allocate(nodes[p], order);
        if (new_pfn == mem::kInvalidPfn) {
            st[p] = kPageNoMem;
            continue;
        }

        vm::Pte migration_pte = old_pte;
        migration_pte.migration = true;
        slot.store(migration_pte.pack(), std::memory_order_release);
        as.flush_tlb_page(vma->page_vaddr(idx), vma->page_size());
        co_await cpu.busy(ExecContext::kSyscall, Op::kRemap,
                          cm.pte_update + cm.tlb_flush_page +
                              cm.cache_flush_time(pb));

        pm.copy(new_pfn, old_pte.pfn, pb);
        co_await cpu.busy(ExecContext::kSyscall, Op::kCopy,
                          cm.cpu_copy_time(pb));

        vm::Pte final_pte = old_pte;
        final_pte.pfn = new_pfn;
        slot.store(final_pte.pack(), std::memory_order_release);
        as.flush_tlb_page(vma->page_vaddr(idx), vma->page_size());
        pm.frame(new_pfn).add_rmap(&as, vma->page_vaddr(idx));
        pm.frame(old_pte.pfn).remove_rmap(&as, vma->page_vaddr(idx));
        pm.free(old_pte.pfn, order);
        co_await cpu.busy(ExecContext::kSyscall, Op::kRelease,
                          cm.pte_update + cm.tlb_flush_page + cm.page_free);
        k.migration_waitq().notify_all();
        st[p] = kPageMoved;
    }
    if (status) *status = std::move(st);
}

std::vector<NumaNodeStat>
numa_stat(Kernel &kernel)
{
    std::vector<NumaNodeStat> stats;
    mem::PhysicalMemory &pm = kernel.phys();
    for (mem::NodeId n = 0; n < pm.node_count(); ++n) {
        const mem::MemoryNode &node = pm.node(n);
        NumaNodeStat s;
        s.id = n;
        s.name = node.name();
        s.total_bytes = node.bytes();
        s.free_bytes = node.free_frames() * mem::kPageSize;
        s.used_bytes = s.total_bytes - s.free_bytes;
        s.is_fast = node.is_fast();
        stats.push_back(std::move(s));
    }
    return stats;
}

}  // namespace memif::os
