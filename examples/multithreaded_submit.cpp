/**
 * @file
 * Multiple application threads submitting concurrently through one
 * memif instance: the red-blue protocol guarantees that no request is
 * lost, and that during each busy period exactly one thread pays the
 * kick syscall — everyone else enqueues lock-free and moves on.
 *
 * Run: build/examples/multithreaded_submit
 */
#include <cstdio>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/random.h"
#include "sim/types.h"

using namespace memif;

namespace {

/** One application thread: submits its share of replication requests
 *  with think time in between. */
sim::Task
app_thread(os::Kernel &kernel, core::MemifUser &mif, unsigned id,
           vm::VAddr src, vm::VAddr dst, unsigned requests,
           std::uint64_t *kicks)
{
    sim::Rng rng(1000 + id);
    for (unsigned i = 0; i < requests; ++i) {
        const std::uint32_t r = mif.alloc_request();
        core::MovReq &req = mif.request(r);
        req.op = core::MovOp::kReplicate;
        req.src_base = src + (id * requests + i) * 8 * 4096ull;
        req.dst_base = dst + id * 8 * 4096ull;  // per-thread buffer
        req.num_pages = 8;
        req.user_tag = id;
        bool kicked = false;
        co_await mif.submit(r, &kicked);
        if (kicked) ++*kicks;
        // Think for 5..40 us before the next submission.
        co_await sim::Delay{kernel.eq(),
                            sim::microseconds(5 + rng.next_below(36))};
    }
}

/** Reaper thread: poll()s for notifications and recycles requests. */
sim::Task
reaper(core::MemifUser &mif, unsigned expected, unsigned *completed)
{
    while (*completed < expected) {
        const std::uint32_t r = mif.retrieve_completed();
        if (r == core::kNoRequest) {
            co_await mif.poll();
            continue;
        }
        if (!mif.request(r).succeeded())
            std::printf("[reaper] request from thread %llu FAILED\n",
                        static_cast<unsigned long long>(
                            mif.request(r).user_tag));
        mif.free_request(r);
        ++*completed;
    }
}

}  // namespace

int
main()
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 16;

    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    core::MemifDevice device(kernel, proc);
    core::MemifUser mif(device);

    const vm::VAddr src =
        proc.mmap(kThreads * kPerThread * 8 * 4096ull, vm::PageSize::k4K);
    const vm::VAddr dst = proc.mmap(kThreads * 8 * 4096ull,
                                    vm::PageSize::k4K, kernel.fast_node());

    std::uint64_t kicks = 0;
    unsigned completed = 0;
    std::vector<sim::Task> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.push_back(app_thread(kernel, mif, t, src, dst, kPerThread,
                                     &kicks));
    sim::Task reap = reaper(mif, kThreads * kPerThread, &completed);
    kernel.run();

    std::printf("%u threads x %u requests = %u submissions through one "
                "instance\n",
                kThreads, kPerThread, kThreads * kPerThread);
    std::printf("  completed:            %u (no request lost)\n", completed);
    std::printf("  kick ioctls:          %llu (vs %u submissions; the "
                "red-blue queue\n"
                "                        hands flush duty to the kernel "
                "thread)\n",
                static_cast<unsigned long long>(kicks),
                kThreads * kPerThread);
    std::printf("  kthread wakeups:      %llu\n",
                static_cast<unsigned long long>(
                    device.stats().kthread_wakeups));
    std::printf("  virtual time elapsed: %.1f us\n",
                sim::to_us(kernel.eq().now()));
    return 0;
}
