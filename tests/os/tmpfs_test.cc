/**
 * @file
 * Tests for the tmpfs page cache, file mappings, and the §6.7
 * file-backed-pages behaviour of memif: faithful rejection by default,
 * full page-cache relocation with the extension enabled.
 */
#include "os/tmpfs.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"

namespace memif::os {
namespace {

TEST(TmpFs, CreateOpenUnlink)
{
    Kernel k;
    TmpFs fs(k);
    TmpFs::File *f = fs.create("/tmp/data", 8);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->size_bytes(), 8u * 4096);
    EXPECT_EQ(fs.open("/tmp/data"), f);
    EXPECT_EQ(fs.create("/tmp/data", 4), nullptr);  // exists
    EXPECT_EQ(fs.open("/tmp/none"), nullptr);
    EXPECT_TRUE(fs.unlink("/tmp/data"));
    EXPECT_FALSE(fs.unlink("/tmp/data"));
}

TEST(TmpFs, UnlinkReturnsCacheFramesToBuddy)
{
    Kernel k;
    const std::uint64_t before =
        k.phys().node(k.slow_node()).free_frames();
    TmpFs fs(k);
    fs.create("/tmp/a", 16);
    EXPECT_EQ(k.phys().node(k.slow_node()).free_frames(), before - 16);
    fs.unlink("/tmp/a");
    EXPECT_EQ(k.phys().node(k.slow_node()).free_frames(), before);
}

TEST(TmpFs, PwritePreadRoundTripAcrossPages)
{
    Kernel k;
    TmpFs fs(k);
    TmpFs::File *f = fs.create("/tmp/rw", 4);
    std::vector<std::uint8_t> data(2 * 4096 + 77);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 5 + 1);
    ASSERT_TRUE(f->pwrite(1000, data.data(), data.size()));
    std::vector<std::uint8_t> got(data.size());
    ASSERT_TRUE(f->pread(1000, got.data(), got.size()));
    EXPECT_EQ(got, data);
    // Bounds.
    EXPECT_FALSE(f->pwrite(4 * 4096 - 1, data.data(), 2));
    EXPECT_FALSE(f->pread(4 * 4096, got.data(), 1));
}

TEST(TmpFs, MmapFileSeesFileContent)
{
    Kernel k;
    Process &p = k.create_process();
    TmpFs fs(k);
    TmpFs::File *f = fs.create("/tmp/mapped", 8);
    const std::string text = "hello, page cache";
    ASSERT_TRUE(f->pwrite(2 * 4096 + 10, text.data(), text.size()));

    const vm::VAddr base = p.as().mmap_file(*f, 0, 8);
    ASSERT_NE(base, 0u);
    std::string got(text.size(), '\0');
    ASSERT_TRUE(p.as().read(base + 2 * 4096 + 10, got.data(), got.size()));
    EXPECT_EQ(got, text);

    // Writes through the mapping reach the file (MAP_SHARED semantics).
    const std::string edit = "EDITED";
    ASSERT_TRUE(p.as().write(base + 2 * 4096 + 10, edit.data(),
                             edit.size()));
    std::string reread(edit.size(), '\0');
    ASSERT_TRUE(f->pread(2 * 4096 + 10, reread.data(), reread.size()));
    EXPECT_EQ(reread, edit);
}

TEST(TmpFs, TwoProcessesShareAFileMapping)
{
    Kernel k;
    Process &a = k.create_process();
    Process &b = k.create_process();
    TmpFs fs(k);
    TmpFs::File *f = fs.create("/tmp/shared", 4);
    const vm::VAddr va = a.as().mmap_file(*f, 0, 4);
    const vm::VAddr vb = b.as().mmap_file(*f, 1, 2);  // partial window

    const std::uint32_t tag = 0xFEEDFACE;
    ASSERT_TRUE(a.as().write(va + 4096, &tag, sizeof(tag)));
    std::uint32_t got = 0;
    ASSERT_TRUE(b.as().read(vb, &got, sizeof(got)));
    EXPECT_EQ(got, tag);
    // The shared frame carries: cache entry + two AS mappings.
    EXPECT_EQ(k.phys().frame(f->cached_pfn(1)).mapcount(), 3u);
}

TEST(TmpFs, MemifRejectsFileBackedMigrationByDefault)
{
    // The paper's prototype limitation, faithfully (§6.7).
    Kernel k;
    Process &p = k.create_process();
    core::MemifDevice dev(k, p);
    core::MemifUser user(dev);
    TmpFs fs(k);
    TmpFs::File *f = fs.create("/tmp/nomove", 8);
    const vm::VAddr base = p.as().mmap_file(*f, 0, 8);

    const std::uint32_t idx = user.alloc_request();
    core::MovReq &req = user.request(idx);
    req.op = core::MovOp::kMigrate;
    req.src_base = base;
    req.num_pages = 8;
    req.dst_node = k.fast_node();
    k.spawn(user.submit(idx));
    k.run();
    EXPECT_EQ(user.request(idx).load_status(), core::MovStatus::kFailed);
    EXPECT_EQ(user.request(idx).error, core::MovError::kFileBacked);
    EXPECT_EQ(k.phys().node_of(f->cached_pfn(0)), k.slow_node());
}

TEST(TmpFs, ExtensionMigratesFilePagesAndRelocatesTheCache)
{
    Kernel k;
    Process &p = k.create_process();
    Process &q = k.create_process();
    core::MemifConfig cfg;
    cfg.allow_file_backed = true;
    core::MemifDevice dev(k, p, cfg);
    core::MemifUser user(dev);
    TmpFs fs(k);
    TmpFs::File *f = fs.create("/tmp/move", 8);
    std::vector<std::uint8_t> data(8 * 4096);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 3 + 7);
    ASSERT_TRUE(f->pwrite(0, data.data(), data.size()));

    const vm::VAddr base_p = p.as().mmap_file(*f, 0, 8);
    const vm::VAddr base_q = q.as().mmap_file(*f, 0, 8);

    const std::uint32_t idx = user.alloc_request();
    core::MovReq &req = user.request(idx);
    req.op = core::MovOp::kMigrate;
    req.src_base = base_p;
    req.num_pages = 8;
    req.dst_node = k.fast_node();
    k.spawn(user.submit(idx));
    k.run();
    ASSERT_EQ(user.request(idx).load_status(), core::MovStatus::kDone);

    for (std::uint64_t i = 0; i < 8; ++i) {
        // Cache relocated to the fast node...
        EXPECT_EQ(k.phys().node_of(f->cached_pfn(i)), k.fast_node());
        // ...and both mappings follow it.
        EXPECT_EQ(p.as().find_vma(base_p)->pte(i).pfn, f->cached_pfn(i));
        EXPECT_EQ(q.as().find_vma(base_q)->pte(i).pfn, f->cached_pfn(i));
        EXPECT_EQ(k.phys().frame(f->cached_pfn(i)).mapcount(), 3u);
    }
    // Content intact through the file API and both mappings.
    std::vector<std::uint8_t> got(data.size());
    ASSERT_TRUE(f->pread(0, got.data(), got.size()));
    EXPECT_EQ(got, data);
    ASSERT_TRUE(q.as().read(base_q, got.data(), got.size()));
    EXPECT_EQ(got, data);
}

TEST(TmpFs, UnmappedButCachedFileCanStillMigrate)
{
    // No process maps the file: only the cache references it; the
    // extension still relocates it (e.g. warming a file into SRAM).
    Kernel k;
    Process &p = k.create_process();
    core::MemifConfig cfg;
    cfg.allow_file_backed = true;
    core::MemifDevice dev(k, p, cfg);
    core::MemifUser user(dev);
    TmpFs fs(k);
    TmpFs::File *f = fs.create("/tmp/cold", 4);
    const std::uint64_t marker = 0x1122334455667788ull;
    ASSERT_TRUE(f->pwrite(0, &marker, sizeof(marker)));

    // Map + migrate + unmap pattern: migrate via a temporary mapping.
    const vm::VAddr base = p.as().mmap_file(*f, 0, 4);
    const std::uint32_t idx = user.alloc_request();
    core::MovReq &req = user.request(idx);
    req.op = core::MovOp::kMigrate;
    req.src_base = base;
    req.num_pages = 4;
    req.dst_node = k.fast_node();
    k.spawn(user.submit(idx));
    k.run();
    ASSERT_EQ(user.request(idx).load_status(), core::MovStatus::kDone);
    p.as().munmap(base);

    EXPECT_EQ(k.phys().node_of(f->cached_pfn(0)), k.fast_node());
    std::uint64_t got = 0;
    ASSERT_TRUE(f->pread(0, &got, sizeof(got)));
    EXPECT_EQ(got, marker);
    EXPECT_EQ(k.phys().frame(f->cached_pfn(0)).mapcount(), 1u);  // cache only
}

}  // namespace
}  // namespace memif::os
