/**
 * @file
 * Unit tests for physical memory nodes: PFN resolution, allocation
 * bookkeeping, real byte movement, and the KeyStone II default layout.
 */
#include "mem/phys.h"

#include <gtest/gtest.h>

#include <cstring>

namespace memif::mem {
namespace {

void
add_two_nodes(PhysicalMemory &pm)
{
    pm.add_node(NodeConfig{
        .name = "slow", .bytes = 8ull << 20, .bandwidth_bps = 6.2e9,
        .is_fast = false});
    pm.add_node(NodeConfig{
        .name = "fast", .bytes = 2ull << 20, .bandwidth_bps = 24.0e9,
        .is_fast = true});
}

TEST(Phys, NodesGetDisjointPfnRanges)
{
    PhysicalMemory pm;
    add_two_nodes(pm);
    ASSERT_EQ(pm.node_count(), 2u);
    const MemoryNode &a = pm.node(0);
    const MemoryNode &b = pm.node(1);
    EXPECT_EQ(a.base_pfn(), 0u);
    EXPECT_EQ(b.base_pfn(), a.num_frames());
    EXPECT_EQ(pm.node_of(0), 0u);
    EXPECT_EQ(pm.node_of(a.num_frames()), 1u);
    EXPECT_EQ(pm.node_of(a.num_frames() + b.num_frames()), kInvalidNode);
}

TEST(Phys, OutstandingPagesSumsAcrossNodes)
{
    PhysicalMemory pm;
    add_two_nodes(pm);
    EXPECT_EQ(pm.outstanding_pages(), 0u);
    const Pfn a = pm.allocate(0, 1);  // 2 frames slow
    const Pfn b = pm.allocate(1, 2);  // 4 frames fast
    EXPECT_EQ(pm.outstanding_pages(), 6u);
    pm.free(a, 1);
    pm.free(b, 2);
    EXPECT_EQ(pm.outstanding_pages(), 0u);
}

TEST(Phys, AllocateMarksFramesAndFreeClears)
{
    PhysicalMemory pm;
    add_two_nodes(pm);
    const Pfn head = pm.allocate(1, 2);  // 4 frames on the fast node
    ASSERT_NE(head, kInvalidPfn);
    EXPECT_EQ(pm.node_of(head), 1u);
    for (Pfn p = head; p < head + 4; ++p) {
        EXPECT_TRUE(pm.frame(p).allocated);
        EXPECT_EQ(pm.frame(p).is_block_head, p == head);
        EXPECT_EQ(pm.frame(p).order, 2);
    }
    pm.free(head, 2);
    for (Pfn p = head; p < head + 4; ++p)
        EXPECT_FALSE(pm.frame(p).allocated);
}

TEST(Phys, ExhaustionReturnsInvalidPfn)
{
    PhysicalMemory pm;
    pm.add_node(NodeConfig{.name = "tiny", .bytes = 4 * kPageSize,
                           .bandwidth_bps = 1e9, .is_fast = true});
    EXPECT_NE(pm.allocate(0, 2), kInvalidPfn);
    EXPECT_EQ(pm.allocate(0, 0), kInvalidPfn);
}

TEST(Phys, CopyMovesRealBytes)
{
    PhysicalMemory pm;
    add_two_nodes(pm);
    const Pfn src = pm.allocate(0, 0);
    const Pfn dst = pm.allocate(1, 0);
    std::byte *s = pm.span(src, kPageSize);
    for (std::uint64_t i = 0; i < kPageSize; ++i)
        s[i] = static_cast<std::byte>(i * 7 + 3);
    pm.copy(dst, src, kPageSize);
    EXPECT_EQ(std::memcmp(pm.span(dst, kPageSize), s, kPageSize), 0);
}

TEST(Phys, SpanCoversMultiFrameBlocks)
{
    PhysicalMemory pm;
    add_two_nodes(pm);
    const Pfn head = pm.allocate(0, 4);  // 64 KB block
    std::byte *p = pm.span(head, 16 * kPageSize);
    ASSERT_NE(p, nullptr);
    p[16 * kPageSize - 1] = std::byte{0xAB};
    EXPECT_EQ(pm.span(head + 15, kPageSize)[kPageSize - 1], std::byte{0xAB});
}

TEST(Phys, FreshMemoryIsZeroed)
{
    PhysicalMemory pm;
    add_two_nodes(pm);
    const Pfn p = pm.allocate(0, 0);
    const std::byte *d = pm.span(p, kPageSize);
    for (std::uint64_t i = 0; i < kPageSize; ++i)
        ASSERT_EQ(d[i], std::byte{0});
}

TEST(Phys, KeystoneLayoutMatchesTable2)
{
    PhysicalMemory pm;
    const auto [slow, fast] = KeystoneMemory::build(pm);
    EXPECT_EQ(pm.node(slow).name(), "ddr3-slow");
    EXPECT_EQ(pm.node(fast).name(), "sram-fast");
    EXPECT_FALSE(pm.node(slow).is_fast());
    EXPECT_TRUE(pm.node(fast).is_fast());
    EXPECT_EQ(pm.node(fast).bytes(), 6ull << 20);   // 6 MB SRAM
    EXPECT_DOUBLE_EQ(pm.node(slow).bandwidth_bps(), 6.2e9);
    EXPECT_DOUBLE_EQ(pm.node(fast).bandwidth_bps(), 24.0e9);
}

TEST(Phys, FastNodeCapacityIsScarce)
{
    // The 6 MB SRAM only holds 1536 4 KB frames: allocating three
    // 2 MB blocks exhausts it, mirroring the paper's §6.7 observation.
    PhysicalMemory pm;
    const auto [slow, fast] = KeystoneMemory::build(pm);
    (void)slow;
    EXPECT_NE(pm.allocate(fast, 9), kInvalidPfn);
    EXPECT_NE(pm.allocate(fast, 9), kInvalidPfn);
    EXPECT_NE(pm.allocate(fast, 9), kInvalidPfn);
    EXPECT_EQ(pm.allocate(fast, 9), kInvalidPfn);
}


TEST(Phys, ListBuildMatchesTwoNodeBuild)
{
    // The list overload with the classic pair must be frame-for-frame
    // identical to the historical two-node build.
    PhysicalMemory a, b;
    const auto pair = KeystoneMemory::build(a, 16ull << 20);
    const std::vector<NodeId> ids = KeystoneMemory::build(
        b, {NodeConfig{.name = "ddr3-slow",
                       .bytes = 16ull << 20,
                       .bandwidth_bps = 6.2e9,
                       .is_fast = false},
            NodeConfig{.name = "sram-fast",
                       .bytes = 6ull << 20,
                       .bandwidth_bps = 24.0e9,
                       .is_fast = true}});
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], pair.first);
    EXPECT_EQ(ids[1], pair.second);
    for (NodeId n : {pair.first, pair.second}) {
        EXPECT_EQ(a.node(n).base_pfn(), b.node(n).base_pfn());
        EXPECT_EQ(a.node(n).num_frames(), b.node(n).num_frames());
        EXPECT_EQ(a.node(n).is_fast(), b.node(n).is_fast());
    }
}

TEST(Phys, ListBuildTakesArbitraryNodeCounts)
{
    PhysicalMemory pm;
    const std::vector<NodeId> ids = KeystoneMemory::build(
        pm, {NodeConfig{.name = "ddr", .bytes = 8ull << 20,
                        .bandwidth_bps = 6.2e9},
            NodeConfig{.name = "sram", .bytes = 2ull << 20,
                       .bandwidth_bps = 24.0e9, .is_fast = true},
            NodeConfig{.name = "far", .bytes = 32ull << 20,
                       .bandwidth_bps = 1.2e9, .latency_ns = 8000}});
    ASSERT_EQ(ids.size(), 3u);
    ASSERT_EQ(pm.node_count(), 3u);
    EXPECT_EQ(pm.node(ids[2]).latency_ns(), 8000u);
    // Ranges stay disjoint in declaration order.
    EXPECT_GT(pm.node(ids[1]).base_pfn(), pm.node(ids[0]).base_pfn());
    EXPECT_GT(pm.node(ids[2]).base_pfn(), pm.node(ids[1]).base_pfn());
}

TEST(Phys, SlitDistancesDefaultAndOverride)
{
    PhysicalMemory pm;
    add_two_nodes(pm);
    const NodeId far = pm.add_node(NodeConfig{
        .name = "far", .bytes = 4ull << 20, .bandwidth_bps = 1.2e9});
    EXPECT_EQ(pm.distance(0, 0), 10u);   // on-node
    EXPECT_EQ(pm.distance(0, 1), 20u);   // default remote
    pm.set_distance(0, far, 30);
    pm.set_distance(1, far, 40);
    EXPECT_EQ(pm.distance(0, far), 30u);
    EXPECT_EQ(pm.distance(far, 0), 30u);  // symmetric
    EXPECT_EQ(pm.distance(1, far), 40u);
    EXPECT_EQ(pm.distance(0, 1), 20u);    // untouched pair keeps default
}

}  // namespace
}  // namespace memif::mem
