/**
 * @file
 * Unit tests for the shared-region link encodings.
 */
#include "lockfree/link.h"

#include <gtest/gtest.h>

namespace memif::lockfree {
namespace {

TEST(Link, PackUnpackRoundTrip)
{
    for (std::uint32_t idx : {0u, 1u, 12345u, 0x7FFF'FFFEu, kNil}) {
        for (Color c : {Color::kRed, Color::kBlue}) {
            for (std::uint32_t tag : {0u, 1u, 0xFFFF'FFFFu}) {
                const Link l{idx, c, tag};
                const Link r = Link::unpack(l.pack());
                EXPECT_EQ(r.index, idx);
                EXPECT_EQ(r.color, c);
                EXPECT_EQ(r.tag, tag);
            }
        }
    }
}

TEST(Link, ColorOccupiesBit31)
{
    const Link red{5, Color::kRed, 0};
    const Link blue{5, Color::kBlue, 0};
    EXPECT_EQ(red.pack() ^ blue.pack(), Link::kColorBit);
}

TEST(Link, NilDetection)
{
    EXPECT_TRUE((Link{kNil, Color::kBlue, 7}.is_nil()));
    EXPECT_FALSE((Link{0, Color::kBlue, 7}.is_nil()));
}

TEST(Link, TagDifferenceBreaksEquality)
{
    // The whole point of the tag: the "same" link after a reuse cycle
    // must not compare equal, so a stale CAS fails.
    const Link a{42, Color::kRed, 1};
    const Link b{42, Color::kRed, 2};
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.pack(), b.pack());
}

TEST(HeadPtr, PackUnpackRoundTrip)
{
    for (std::uint32_t idx : {0u, 77u, 0xFFFF'FFFFu}) {
        for (std::uint32_t tag : {0u, 3u, 0xFFFF'FFFFu}) {
            const HeadPtr h{idx, tag};
            const HeadPtr r = HeadPtr::unpack(h.pack());
            EXPECT_EQ(r.index, idx);
            EXPECT_EQ(r.tag, tag);
        }
    }
}

}  // namespace
}  // namespace memif::lockfree
