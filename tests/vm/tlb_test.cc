/**
 * @file
 * Tests for the TLB model and its integration with the access path —
 * including the §5.2 property that memif's semi-final PTE never enters
 * the TLB (which is why Release needs no flush).
 */
#include "vm/tlb.h"

#include <gtest/gtest.h>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "vm/addr_space.h"

namespace memif::vm {
namespace {

TEST(Tlb, MissThenHit)
{
    Tlb tlb(4);
    EXPECT_FALSE(tlb.lookup(0x1000, PageSize::k4K));
    tlb.fill(0x1000, PageSize::k4K);
    EXPECT_TRUE(tlb.lookup(0x1000, PageSize::k4K));
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
    EXPECT_EQ(tlb.stats().fills, 1u);
}

TEST(Tlb, LruEvictionAtCapacity)
{
    Tlb tlb(2);
    tlb.fill(0x1000, PageSize::k4K);
    tlb.fill(0x2000, PageSize::k4K);
    EXPECT_TRUE(tlb.lookup(0x1000, PageSize::k4K));  // 0x2000 now LRU
    tlb.fill(0x3000, PageSize::k4K);                 // evicts 0x2000
    EXPECT_TRUE(tlb.contains(0x1000, PageSize::k4K));
    EXPECT_FALSE(tlb.contains(0x2000, PageSize::k4K));
    EXPECT_TRUE(tlb.contains(0x3000, PageSize::k4K));
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(Tlb, PageFlushRemovesExactlyOneEntry)
{
    Tlb tlb;
    tlb.fill(0x1000, PageSize::k4K);
    tlb.fill(0x2000, PageSize::k4K);
    tlb.flush_page(0x1000, PageSize::k4K);
    EXPECT_FALSE(tlb.contains(0x1000, PageSize::k4K));
    EXPECT_TRUE(tlb.contains(0x2000, PageSize::k4K));
    EXPECT_EQ(tlb.stats().flushed_entries, 1u);
    // Flushing a non-resident page counts the request, removes nothing.
    tlb.flush_page(0x9000, PageSize::k4K);
    EXPECT_EQ(tlb.stats().page_flushes, 2u);
    EXPECT_EQ(tlb.stats().flushed_entries, 1u);
}

TEST(Tlb, DifferentPageSizesAreDistinctEntries)
{
    Tlb tlb;
    tlb.fill(0, PageSize::k4K);
    EXPECT_FALSE(tlb.contains(0, PageSize::k2M));
    tlb.fill(0, PageSize::k2M);
    tlb.flush_page(0, PageSize::k4K);
    EXPECT_TRUE(tlb.contains(0, PageSize::k2M));
}

TEST(Tlb, FlushAllEmpties)
{
    Tlb tlb;
    for (VAddr va = 0; va < 32 * 4096; va += 4096)
        tlb.fill(va, PageSize::k4K);
    EXPECT_EQ(tlb.size(), 32u);
    tlb.flush_all();
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(TlbIntegration, TouchFillsAndRefillsAfterFlush)
{
    os::Kernel k;
    os::Process &p = k.create_process();
    const VAddr base = p.mmap(4096, PageSize::k4K);
    os::TouchOutcome out;
    auto t1 = p.touch(base, false, &out);
    k.run();
    EXPECT_TRUE(p.as().tlb().contains(base, PageSize::k4K));

    p.as().flush_tlb_page(base, PageSize::k4K);
    EXPECT_FALSE(p.as().tlb().contains(base, PageSize::k4K));
    auto t2 = p.touch(base, false, &out);
    k.run();
    EXPECT_TRUE(p.as().tlb().contains(base, PageSize::k4K));
    EXPECT_GE(p.as().tlb().stats().misses, 2u);
}

TEST(TlbIntegration, SemiFinalPteNeverEntersTlb)
{
    // The §5.2 argument: Remap installs the semi-final PTE and flushes
    // the old entry; any access to it traps (young) before caching, so
    // at Release there is nothing to flush. We verify that across a
    // full memif migration no TLB entry for the migrated pages exists
    // until they are touched again afterwards.
    os::Kernel k;
    os::Process &p = k.create_process();
    core::MemifDevice dev(k, p);
    core::MemifUser user(dev);
    const VAddr base = p.mmap(16 * 4096, PageSize::k4K);

    // Populate the TLB with the pre-migration translations.
    os::TouchOutcome out;
    for (unsigned i = 0; i < 16; ++i) {
        auto t = p.touch(base + i * 4096, false, &out);
        k.run();
    }
    EXPECT_EQ(p.as().tlb().size(), 16u);

    const std::uint32_t idx = user.alloc_request();
    core::MovReq &req = user.request(idx);
    req.op = core::MovOp::kMigrate;
    req.src_base = base;
    req.num_pages = 16;
    req.dst_node = k.fast_node();
    k.spawn(user.submit(idx));
    k.run();
    EXPECT_TRUE(user.request(idx).succeeded());

    // Remap flushed all 16 old entries; nothing was cached since.
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_FALSE(p.as().tlb().contains(base + i * 4096, PageSize::k4K));

    // First post-migration access caches the final translation.
    auto t = p.touch(base, true, &out);
    k.run();
    EXPECT_TRUE(p.as().tlb().contains(base, PageSize::k4K));
    EXPECT_EQ(out.result, AccessResult::kOk);
}

TEST(TlbIntegration, PreventPolicyFlushesTwicePerPage)
{
    // Prevention rewrites the PTE at Remap AND Release; detection's
    // Release is a bare CAS. The flush-request counters make the §5.2
    // saving concrete.
    auto flushes = [](core::RacePolicy policy) {
        os::Kernel k;
        os::Process &p = k.create_process();
        core::MemifConfig cfg;
        cfg.race_policy = policy;
        core::MemifDevice dev(k, p, cfg);
        core::MemifUser user(dev);
        const VAddr base = p.mmap(8 * 4096, PageSize::k4K);
        const std::uint32_t idx = user.alloc_request();
        core::MovReq &req = user.request(idx);
        req.op = core::MovOp::kMigrate;
        req.src_base = base;
        req.num_pages = 8;
        req.dst_node = k.fast_node();
        k.spawn(user.submit(idx));
        k.run();
        return p.as().tlb().stats().page_flushes;
    };
    EXPECT_EQ(flushes(core::RacePolicy::kDetect), 8u);
    EXPECT_EQ(flushes(core::RacePolicy::kPrevent), 16u);
}

}  // namespace
}  // namespace memif::vm
