#include "memif/heat_policy.h"

#include "sim/log.h"

namespace memif::core {

RegionHeat::RegionHeat(const HeatConfig &config, std::uint64_t num_pages)
    : config_(config), num_pages_(num_pages)
{
    MEMIF_ASSERT(config_.bucket_pages > 0, "bucket_pages must be positive");
    const std::uint64_t n =
        (num_pages + config_.bucket_pages - 1) / config_.bucket_pages;
    buckets_.resize(n);
}

std::uint32_t
RegionHeat::pages_in(std::uint64_t bucket) const
{
    const std::uint64_t first = first_page(bucket);
    const std::uint64_t left = num_pages_ - first;
    return left < config_.bucket_pages ? static_cast<std::uint32_t>(left)
                                       : config_.bucket_pages;
}

void
RegionHeat::fold(std::uint64_t bucket, std::uint32_t accessed,
                 std::uint32_t written, std::uint32_t sampled)
{
    HeatBucket &b = buckets_[bucket];
    const bool any = sampled > 0 && accessed > 0;
    const double fraction =
        sampled > 0 ? static_cast<double>(accessed) / sampled : 0.0;

    b.age = static_cast<std::uint8_t>((b.age >> 1) | (any ? 0x80 : 0));
    b.rate = config_.ewma_alpha * fraction +
             (1.0 - config_.ewma_alpha) * b.rate;
    if (any) ++b.accessed_epochs;
    if (sampled > 0 && written > 0) ++b.written_epochs;

    bool hot = b.hot;
    if (config_.policy == MigratePolicy::kAging) {
        if (b.age >= config_.aging_promote_threshold)
            hot = true;
        else if (b.age < config_.aging_demote_threshold)
            hot = false;
        // In between: keep the previous classification (hysteresis).
    } else {
        if (b.rate >= config_.ewma_hot_enter)
            hot = true;
        else if (b.rate <= config_.ewma_cold_exit)
            hot = false;
    }
    if (hot != b.hot) {
        if (b.epochs_since_flip < config_.pingpong_window) ++ping_pongs_;
        b.hot = hot;
        b.epochs_since_flip = 0;
    } else if (b.epochs_since_flip < ~0u) {
        ++b.epochs_since_flip;
    }

    // Third band (only classify_tiered() reads it): independent
    // hysteresis at the bottom of the scale. A hot bucket is never
    // cold, whatever the thresholds say — the bands must not overlap.
    bool cold = b.cold;
    if (config_.policy == MigratePolicy::kAging) {
        if (b.age <= config_.aging_cold_enter)
            cold = true;
        else if (b.age >= config_.aging_cold_exit)
            cold = false;
    } else {
        if (b.rate <= config_.ewma_far_enter)
            cold = true;
        else if (b.rate >= config_.ewma_far_exit)
            cold = false;
    }
    b.cold = cold && !b.hot;
}

TierVerdict
RegionHeat::classify_tiered(std::uint64_t bucket, HeatTier resident) const
{
    const HeatBucket &b = buckets_[bucket];
    if (b.hot)
        return resident == HeatTier::kFast ? TierVerdict::kStay
                                           : TierVerdict::kToFast;
    if (b.cold)
        return resident == HeatTier::kFar ? TierVerdict::kStay
                                          : TierVerdict::kToFar;
    return resident == HeatTier::kSlow ? TierVerdict::kStay
                                       : TierVerdict::kToSlow;
}

HeatVerdict
RegionHeat::classify(std::uint64_t bucket, bool resident_fast) const
{
    const HeatBucket &b = buckets_[bucket];
    if (b.hot && !resident_fast) return HeatVerdict::kPromote;
    if (!b.hot && resident_fast) return HeatVerdict::kDemote;
    return HeatVerdict::kStay;
}

double
RegionHeat::score(const HeatBucket &b) const
{
    if (config_.policy == MigratePolicy::kAging)
        return static_cast<double>(b.age) / 255.0;
    return b.rate > 1.0 ? 1.0 : b.rate;
}

std::vector<std::uint64_t>
RegionHeat::histogram() const
{
    std::vector<std::uint64_t> h(8, 0);
    for (const HeatBucket &b : buckets_) {
        auto octile = static_cast<std::size_t>(score(b) * 8.0);
        if (octile > 7) octile = 7;
        ++h[octile];
    }
    return h;
}

}  // namespace memif::core
