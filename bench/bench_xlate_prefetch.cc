/**
 * @file
 * MMU-aware DMA: translation cost on large scatter-gather replication
 * streams, three ways.
 *
 *   pre-pinned    scaled(): every chain's page walks complete in Prep
 *                 before submit (the PR 1-6 contract).
 *   sva           scaled() + sva_dma: no pre-pinning — the engine
 *                 resolves each descriptor through the XlateCache /
 *                 page walk at consumption time, paying demand walks
 *                 inline with the stream.
 *   sva+prefetch  scaled() + sva_dma + xlate_prefetch_ahead: only the
 *                 first window is walked synchronously; asynchronous
 *                 prefetch walks run two windows ahead of the
 *                 consumption stream, so translation overlaps copy.
 *
 * Every cell replicates FRESH region pairs (cold translations — the
 * regime the prefetcher exists for; hot regions are the gang cache's
 * job, bench_submission_scaling) with SG coalescing off in all three
 * configs, so one 4 KB chunk = one descriptor = one stream slot and
 * the per-descriptor translation machinery is actually exercised.
 *
 * Gates (scripts/check_bench_regression.py): sva+prefetch throughput
 * >= 0.95x pre-pinned at every SG size, prefetch hit ratio >= 0.90.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

namespace {

using namespace memif;
using namespace memif::bench;

struct CellOutcome {
    sim::Duration elapsed = 0;
    std::uint64_t bytes = 0;
    core::DeviceStats stats{};

    double gb_per_sec() const { return sim::gb_per_sec(bytes, elapsed); }
};

/**
 * Replicate @p rounds fresh src->dst region pairs of @p pages 4 KB
 * pages each, one request at a time (each request's SG has one slot
 * per page). Regions are mapped immediately before and unmapped after
 * each request, so every chain walks cold translations.
 */
CellOutcome
run_cold_replication(TestBed &bed, std::uint32_t pages,
                     std::uint32_t rounds)
{
    CellOutcome out;
    const std::uint64_t bytes = std::uint64_t{pages} * 4096;
    const sim::SimTime t0 = bed.kernel.eq().now();
    auto driver = [&]() -> sim::Task {
        for (std::uint32_t r = 0; r < rounds; ++r) {
            const vm::VAddr src = bed.proc.mmap(bytes, vm::PageSize::k4K);
            const vm::VAddr dst = bed.proc.mmap(bytes, vm::PageSize::k4K);
            MEMIF_ASSERT(src != 0 && dst != 0, "slow node exhausted");
            const std::uint32_t idx = bed.user.alloc_request();
            MEMIF_ASSERT(idx != core::kNoRequest);
            core::MovReq &req = bed.user.request(idx);
            req.op = core::MovOp::kReplicate;
            req.src_base = src;
            req.dst_base = dst;
            req.num_pages = pages;
            co_await bed.user.submit(idx);
            std::uint32_t done;
            while ((done = bed.user.retrieve_completed()) ==
                   core::kNoRequest)
                co_await bed.user.poll();
            MEMIF_ASSERT(done == idx);
            MEMIF_ASSERT(req.succeeded(), "replication failed (%u)",
                         static_cast<unsigned>(req.error));
            bed.user.free_request(idx);
            out.bytes += bytes;
            bed.proc.as().munmap(src);
            bed.proc.as().munmap(dst);
        }
    };
    auto task = driver();
    bed.kernel.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "replication stream did not finish");
    out.elapsed = bed.kernel.eq().now() - t0;
    out.stats = bed.dev.stats();
    return out;
}

struct Mode {
    const char *name;
    const char *series;
    bool sva;
    bool prefetch;
};

core::MemifConfig
config_for(const Mode &m)
{
    core::MemifConfig mc = core::MemifConfig::scaled();
    // One 4 KB chunk per descriptor: without this the buddy allocator's
    // contiguous frames collapse a whole fresh region into one or two
    // descriptors and there is no large SG to sweep. Off in all three
    // configs, so the comparison stays apples-to-apples.
    mc.sg_coalescing = false;
    mc.sva_dma = m.sva;
    mc.xlate_prefetch_ahead = m.prefetch;
    return mc;
}

}  // namespace

int
main()
{
    BenchReport report("xlate_prefetch");
    const std::uint32_t rounds = quick_mode() ? 3 : 8;
    const Mode modes[] = {
        {"pre-pinned", "sg-sweep-prepinned", false, false},
        {"sva", "sg-sweep-sva", true, false},
        {"sva+prefetch", "sg-sweep-sva-prefetch", true, true},
    };

    header("Cold large-SG replication: translation three ways");
    std::printf("%-13s %6s %10s %8s %7s %6s %6s %7s %8s %9s\n", "config",
                "sg", "elapsed_us", "GB/s", "hit", "late", "waste",
                "demand", "stall_us", "vs_prepin");
    rule();
    for (const std::uint32_t pages : {32u, 64u, 128u}) {
        double prepinned_gbps = 0;
        for (const Mode &m : modes) {
            os::KernelConfig kc;
            kc.single_driver_core = true;
            TestBed bed(config_for(m), kc);
            const CellOutcome out =
                run_cold_replication(bed, pages, rounds);
            const core::DeviceStats &ds = out.stats;
            if (m.series == std::string("sg-sweep-prepinned"))
                prepinned_gbps = out.gb_per_sec();
            const double ratio = out.gb_per_sec() / prepinned_gbps;
            std::printf(
                "%-13s %6u %10.1f %8.2f %7llu %6llu %6llu %7llu %8.1f "
                "%8.2fx\n",
                m.name, pages, sim::to_us(out.elapsed), out.gb_per_sec(),
                static_cast<unsigned long long>(ds.stream_prefetch_hits),
                static_cast<unsigned long long>(ds.stream_prefetch_late),
                static_cast<unsigned long long>(
                    ds.stream_prefetch_wasted),
                static_cast<unsigned long long>(ds.sva_demand_walks),
                sim::to_us(ds.consumer_stall_time), ratio);
            report.add(m.series, pages, out.gb_per_sec());
            if (m.prefetch) {
                report.add("sva-prefetch-ratio", pages, ratio);
                const double hit_ratio =
                    ds.stream_prefetch_issued
                        ? static_cast<double>(ds.stream_prefetch_hits) /
                              static_cast<double>(
                                  ds.stream_prefetch_issued)
                        : 0.0;
                report.add("prefetch-hit-ratio", pages, hit_ratio);
                std::printf("%-13s %6s prefetch hit ratio: %.3f "
                            "(issued %llu, dropped fills %llu)\n",
                            "", "", hit_ratio,
                            static_cast<unsigned long long>(
                                ds.stream_prefetch_issued),
                            static_cast<unsigned long long>(
                                ds.prefetch_fills_dropped));
            }
        }
        rule();
    }
    std::printf("gates: sva+prefetch >= 0.95x pre-pinned, "
                "hit ratio >= 0.90 at every SG size\n");
    return 0;
}
