/**
 * @file
 * Tests for the radix page table: slot placement per page size, table
 * growth, stable pointers, and the real gang-lookup traversal counts
 * that back §5.1.
 */
#include "vm/page_table.h"

#include <gtest/gtest.h>

#include <set>

namespace memif::vm {
namespace {

TEST(PageTable, StartsEmpty)
{
    PageTable pt;
    EXPECT_EQ(pt.table_count(), 0u);
    EXPECT_EQ(pt.slot(0x1000, PageSize::k4K, /*create=*/false), nullptr);
}

TEST(PageTable, CreatesTwoLevelsForA4kPage)
{
    PageTable pt;
    PteSlot *s = pt.slot(0x1000, PageSize::k4K, true);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(pt.table_count(), 2u);  // one L2 + one L3
    // Re-lookup is stable and creates nothing new.
    EXPECT_EQ(pt.slot(0x1000, PageSize::k4K, false), s);
    EXPECT_EQ(pt.table_count(), 2u);
}

TEST(PageTable, TwoMegPagesAreL2BlockEntries)
{
    PageTable pt;
    PteSlot *s = pt.slot(2ull << 20, PageSize::k2M, true);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(pt.table_count(), 1u);  // only the L2 table
}

TEST(PageTable, DistinctPagesGetDistinctSlots)
{
    PageTable pt;
    std::set<PteSlot *> slots;
    for (VAddr va = 0; va < 64 * 4096; va += 4096)
        EXPECT_TRUE(slots.insert(pt.slot(va, PageSize::k4K, true)).second);
    for (VAddr va = 1ull << 30; va < (1ull << 30) + (8ull << 21);
         va += 2ull << 20)
        EXPECT_TRUE(slots.insert(pt.slot(va, PageSize::k2M, true)).second);
    for (VAddr va = 2ull << 30; va < (2ull << 30) + 8 * 65536; va += 65536)
        EXPECT_TRUE(slots.insert(pt.slot(va, PageSize::k64K, true)).second);
}

TEST(PageTable, SlotsHoldValues)
{
    PageTable pt;
    PteSlot *a = pt.slot(0x1000, PageSize::k4K, true);
    PteSlot *b = pt.slot(0x2000, PageSize::k4K, true);
    a->store(111, std::memory_order_relaxed);
    b->store(222, std::memory_order_relaxed);
    EXPECT_EQ(pt.slot(0x1000, PageSize::k4K, false)->load(), 111u);
    EXPECT_EQ(pt.slot(0x2000, PageSize::k4K, false)->load(), 222u);
}

TEST(PageTable, SparseAddressesGrowSeparateSubtrees)
{
    PageTable pt;
    pt.slot(0, PageSize::k4K, true);                 // first GB
    EXPECT_EQ(pt.table_count(), 2u);
    pt.slot(5ull << 30, PageSize::k4K, true);        // sixth GB
    EXPECT_EQ(pt.table_count(), 4u);
    pt.slot(4096, PageSize::k4K, true);              // same L3 as first
    EXPECT_EQ(pt.table_count(), 4u);
}

TEST(PageTable, GangLookupWithinOneLeafDescendsOnce)
{
    PageTable pt;
    for (VAddr va = 0; va < 64 * 4096; va += 4096)
        pt.slot(va, PageSize::k4K, true);
    const PageTable::Gang g = pt.gang_lookup(0, 64, PageSize::k4K);
    ASSERT_EQ(g.slots.size(), 64u);
    EXPECT_EQ(g.cost.full_descents, 1u);
    EXPECT_EQ(g.cost.adjacent_steps, 63u);
    // The slots are the very same atomic words slot() returns.
    EXPECT_EQ(g.slots[13], pt.slot(13 * 4096, PageSize::k4K, false));
}

TEST(PageTable, GangLookupRedescendsAtLeafBoundary)
{
    PageTable pt;
    const VAddr start = 508 * 4096;  // 4 entries before the boundary
    for (VAddr va = start; va < start + 8 * 4096; va += 4096)
        pt.slot(va, PageSize::k4K, true);
    const PageTable::Gang g = pt.gang_lookup(start, 8, PageSize::k4K);
    EXPECT_EQ(g.cost.full_descents, 2u);
    EXPECT_EQ(g.cost.adjacent_steps, 6u);
}

TEST(PageTable, GangLookupOn64kPagesCrossesEverySixteenSlots)
{
    // A 64 KB page occupies the head of a 16-entry group: 32 such pages
    // fill a 512-entry leaf, so 64 pages need exactly two descents.
    PageTable pt;
    for (VAddr va = 0; va < 64 * 65536; va += 65536)
        pt.slot(va, PageSize::k64K, true);
    const PageTable::Gang g = pt.gang_lookup(0, 64, PageSize::k64K);
    EXPECT_EQ(g.cost.full_descents, 2u);
    EXPECT_EQ(g.cost.adjacent_steps, 62u);
}

TEST(PageTable, GangLookupOn2MPagesWalksL2Horizontally)
{
    PageTable pt;
    for (VAddr va = 0; va < 8ull * (2 << 20); va += 2 << 20)
        pt.slot(va, PageSize::k2M, true);
    const PageTable::Gang g = pt.gang_lookup(0, 8, PageSize::k2M);
    EXPECT_EQ(g.cost.full_descents, 1u);
    EXPECT_EQ(g.cost.adjacent_steps, 7u);
}

TEST(PageTable, GangMatchesArithmeticModelFor4k)
{
    PageTable pt;
    const VAddr start = 300 * 4096;
    const std::uint64_t n = 1000;
    for (VAddr va = start; va < start + n * 4096; va += 4096)
        pt.slot(va, PageSize::k4K, true);
    const PageTable::Gang g = pt.gang_lookup(start, n, PageSize::k4K);
    const WalkCost model = gang_walk(start, n, PageSize::k4K);
    EXPECT_EQ(g.cost.full_descents, model.full_descents);
    EXPECT_EQ(g.cost.adjacent_steps, model.adjacent_steps);
}

TEST(PageTableDeath, UnalignedAddressPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    PageTable pt;
    EXPECT_DEATH(pt.slot(0x1001, PageSize::k4K, true), "unaligned");
    EXPECT_DEATH(pt.slot(4096, PageSize::k2M, true), "unaligned");
}

TEST(PageTableDeath, GangOverUnmappedRangePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    PageTable pt;
    pt.slot(0, PageSize::k4K, true);
    EXPECT_DEATH(pt.gang_lookup(1ull << 32, 4, PageSize::k4K), "unmapped");
}

}  // namespace
}  // namespace memif::vm
