/**
 * @file
 * The §6.7 limitation workloads: data-intensive applications the paper
 * tried — wordcount [BigDataBench] and psearchy [Boyd-Wickizer et al.]
 * — that see *little* gain from memif on KeyStone II, because working
 * sets that fit the 6 MB fast memory also tend to fit the 4 MB of
 * last-level cache ("applications whose working sets fit in the fast
 * memory are also likely cache-friendly").
 *
 * Both kernels do real work over the stream bytes and carry a high
 * cache_hit_fraction in their models, which is exactly why the mini
 * runtime cannot help them much — the negative result this module
 * exists to reproduce.
 */
#pragma once

#include <array>
#include <cstdint>

#include "runtime/stream_kernel.h"

namespace memif::workloads {

/**
 * wordcount: tokenize the stream on whitespace/punctuation and count
 * words into a small (cache-resident) hash of counters.
 */
class WordCount : public runtime::StreamKernel {
  public:
    static constexpr std::size_t kBuckets = 1024;

    WordCount();
    void process(const std::byte *data, std::uint64_t bytes) override;
    std::uint64_t result() const override;
    void reset() override;

    std::uint64_t words() const { return words_; }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t words_ = 0;
};

/**
 * psearchy-style indexing: scan for a small set of patterns (first
 * bytes hashed against needles), index structures staying in cache.
 */
class PSearchy : public runtime::StreamKernel {
  public:
    PSearchy();
    void process(const std::byte *data, std::uint64_t bytes) override;
    std::uint64_t result() const override { return matches_ * 31 + probes_; }
    void reset() override
    {
        matches_ = 0;
        probes_ = 0;
    }

    std::uint64_t matches() const { return matches_; }

  private:
    std::uint64_t matches_ = 0;
    std::uint64_t probes_ = 0;
};

}  // namespace memif::workloads
