/**
 * @file
 * Regression guards for the paper's headline evaluation claims: these
 * run miniature versions of the Figure 6/7/8 experiments through the
 * bench harness and assert the qualitative results, so a regression in
 * any subsystem that would flip a paper claim fails CI.
 */
#include <gtest/gtest.h>

#include "harness.h"
#include "sim/cpu.h"

namespace memif::bench {
namespace {

double
mean_latency_us(const StreamOutcome &out)
{
    double sum = 0;
    for (const RequestTiming &t : out.timings)
        sum += sim::to_us(t.latency());
    return sum / static_cast<double>(out.timings.size());
}

TEST(Claims, Fig7MemifBeatsEveryLinuxBatchOnLatency)
{
    const RequestPlan plan{.op = core::MovOp::kMigrate,
                           .page_size = vm::PageSize::k4K,
                           .pages_per_request = 16,
                           .num_requests = 8};
    double memif_mean;
    std::uint64_t kicks;
    {
        TestBed bed;
        const StreamOutcome out = run_memif_stream(bed, plan);
        memif_mean = mean_latency_us(out);
        kicks = bed.user.stats().kicks;
    }
    EXPECT_EQ(kicks, 1u);  // "the application only makes one syscall"
    for (const std::uint32_t batch : {1u, 4u, 8u}) {
        TestBed bed;
        const StreamOutcome out = run_linux_stream(bed, plan, batch);
        EXPECT_LT(memif_mean, mean_latency_us(out)) << "batch " << batch;
    }
}

TEST(Claims, Fig7LatencyReductionIsSubstantial)
{
    const RequestPlan plan{.op = core::MovOp::kMigrate,
                           .page_size = vm::PageSize::k4K,
                           .pages_per_request = 16,
                           .num_requests = 8};
    TestBed memif_bed, linux_bed;
    const double memif_mean =
        mean_latency_us(run_memif_stream(memif_bed, plan));
    const double linux_mean =
        mean_latency_us(run_linux_stream(linux_bed, plan, 1));
    // Paper: up to 63% reduction. Guard a solid band.
    const double reduction = 1.0 - memif_mean / linux_mean;
    EXPECT_GT(reduction, 0.40);
    EXPECT_LT(reduction, 0.75);
}

TEST(Claims, Fig8MemifThroughputBeatsMigspeedExceptOnePage)
{
    for (const std::uint32_t pages : {1u, 16u, 64u}) {
        RequestPlan plan{.op = core::MovOp::kMigrate,
                         .page_size = vm::PageSize::k4K,
                         .pages_per_request = pages,
                         .num_requests = 64};
        TestBed memif_bed, linux_bed;
        const double memif_gbps =
            run_memif_stream(memif_bed, plan).gb_per_sec();
        const double linux_gbps =
            run_linux_stream(linux_bed, plan, 1).gb_per_sec();
        if (pages == 1) {
            // The extreme case: no >=40% claim.
            EXPECT_GT(memif_gbps, 0.8 * linux_gbps);
        } else {
            EXPECT_GT(memif_gbps, 1.4 * linux_gbps) << pages << " pages";
        }
    }
}

TEST(Claims, Fig8LargePagesApproachThreeX)
{
    RequestPlan plan{.op = core::MovOp::kMigrate,
                     .page_size = vm::PageSize::k2M,
                     .pages_per_request = 1,
                     .num_requests = 24};
    TestBed memif_bed, linux_bed;
    const double memif_gbps = run_memif_stream(memif_bed, plan).gb_per_sec();
    const double linux_gbps =
        run_linux_stream(linux_bed, plan, 1).gb_per_sec();
    EXPECT_GT(memif_gbps / linux_gbps, 2.5);
    EXPECT_LT(memif_gbps / linux_gbps, 4.0);
}

TEST(Claims, Fig8ReplicationOutrunsMigration)
{
    for (const std::uint32_t pages : {4u, 64u}) {
        RequestPlan mig{.op = core::MovOp::kMigrate,
                        .page_size = vm::PageSize::k4K,
                        .pages_per_request = pages,
                        .num_requests = 32};
        RequestPlan rep = mig;
        rep.op = core::MovOp::kReplicate;
        TestBed mig_bed, rep_bed;
        EXPECT_GT(run_memif_stream(rep_bed, rep).gb_per_sec(),
                  run_memif_stream(mig_bed, mig).gb_per_sec())
            << pages << " pages";
    }
}

TEST(Claims, Fig6MemifLosesOnlyAtOneSmallPage)
{
    auto memif_latency = [](std::uint32_t pages) {
        TestBed bed;
        RequestPlan plan{.op = core::MovOp::kMigrate,
                         .page_size = vm::PageSize::k4K,
                         .pages_per_request = pages,
                         .num_requests = 1};
        (void)run_memif_stream(bed, plan);  // warm the chain cache
        return sim::to_us(run_memif_stream(bed, plan).timings[0].latency());
    };
    auto linux_latency = [](std::uint32_t pages) {
        TestBed bed;
        RequestPlan plan{.op = core::MovOp::kMigrate,
                         .page_size = vm::PageSize::k4K,
                         .pages_per_request = pages,
                         .num_requests = 1};
        (void)run_linux_stream(bed, plan, 1);
        return sim::to_us(run_linux_stream(bed, plan, 1).timings[0].latency());
    };
    EXPECT_GT(memif_latency(1), linux_latency(1));   // the extreme case
    EXPECT_LT(memif_latency(4), linux_latency(4));   // memif wins beyond
    EXPECT_LT(memif_latency(16), linux_latency(16));
    EXPECT_LT(memif_latency(64), linux_latency(64));
}

TEST(Claims, Fig6LargePageCpuReductionIsTensOfX)
{
    // Paper: up to 38x lower CPU usage for 2 MB pages.
    TestBed linux_bed, memif_bed;
    RequestPlan plan{.op = core::MovOp::kMigrate,
                     .page_size = vm::PageSize::k2M,
                     .pages_per_request = 2,
                     .num_requests = 1};
    (void)run_linux_stream(linux_bed, plan, 1);
    const StreamOutcome lin = run_linux_stream(linux_bed, plan, 1);
    (void)run_memif_stream(memif_bed, plan);
    const StreamOutcome mem = run_memif_stream(memif_bed, plan);
    const double ratio = static_cast<double>(lin.cpu.total) /
                         static_cast<double>(mem.cpu.total);
    EXPECT_GT(ratio, 25.0);
    EXPECT_LT(ratio, 50.0);  // paper: 38x
}

TEST(Claims, PipelinedConfigLiftsSmallPageThroughput)
{
    // The three throughput levers together (SG coalescing + multi-TC
    // dispatch + batched shootdown) must buy >= 25% over the paper-
    // default device on 4 KB migration streams of >= 16 pages/request.
    for (const std::uint32_t pages : {16u, 64u}) {
        RequestPlan plan{.op = core::MovOp::kMigrate,
                         .page_size = vm::PageSize::k4K,
                         .pages_per_request = pages,
                         .num_requests = 64};
        TestBed base_bed, pip_bed(core::MemifConfig::pipelined());
        const double base = run_memif_stream(base_bed, plan).gb_per_sec();
        const double pip = run_memif_stream(pip_bed, plan).gb_per_sec();
        EXPECT_GT(pip, 1.25 * base) << pages << " pages";
        // Each lever visibly did its job on this stream.
        const core::DeviceStats &s = pip_bed.dev.stats();
        EXPECT_GT(s.descriptor_writes_saved, 0u);
        EXPECT_GT(s.ranged_tlb_flushes, 0u);
        unsigned tcs = 0;
        for (const std::uint64_t d : s.tc_dispatches)
            if (d) ++tcs;
        EXPECT_GE(tcs, 2u);
    }
}

TEST(Claims, Sec22LinuxMigrationBelowTenPercentOfBandwidth)
{
    TestBed bed;
    RequestPlan plan{.op = core::MovOp::kMigrate,
                     .page_size = vm::PageSize::k4K,
                     .pages_per_request = 500,
                     .num_requests = 3};  // 1500 pages
    const StreamOutcome out = run_linux_stream(bed, plan, 1);
    EXPECT_LT(out.gb_per_sec(), 0.62);  // < 10% of 6.2 GB/s
    EXPECT_NEAR(out.gb_per_sec(), 0.30, 0.06);  // paper: 0.30
}

}  // namespace
}  // namespace memif::bench
