/**
 * @file
 * Per-process address spaces: anonymous mmap/munmap, functional byte
 * access through the page tables, and the CPU-access semantics
 * (young-bit clearing, migration-PTE blocking) that the paper's race
 * handling builds on.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/phys.h"
#include "vm/page_table.h"
#include "vm/pte.h"
#include "vm/tlb.h"
#include "vm/vma.h"

namespace memif::vm {

/** Outcome of one simulated CPU access (touch()). */
enum class AccessResult {
    kOk,                  ///< mapped, no trap
    kClearedYoung,        ///< trapped once to emulate the access flag
    kBlockedOnMigration,  ///< hit a baseline migration PTE; must wait
    kNotPresent,          ///< no mapping (hard fault)
    kLazyFault,           ///< lazy-migration marker: caller migrates
};

/** Counters for the vm events the evaluation reasons about. */
struct VmStats {
    std::uint64_t young_clears = 0;
    std::uint64_t migration_blocks = 0;
    std::uint64_t hard_faults = 0;
    std::uint64_t tlb_page_flushes = 0;
    std::uint64_t tlb_range_flushes = 0;
    std::uint64_t mapped_pages = 0;
    std::uint64_t unmapped_pages = 0;
    std::uint64_t heat_samples = 0;   ///< pages examined by heat_sample()
    std::uint64_t heat_rearms = 0;    ///< young bits re-armed by the scanner
};

/**
 * What one heat_sample() call observed about a page (managed mode).
 *
 * The access flag is software-emulated with inverted polarity: young
 * SET means the next touch traps; touch() clears it. So "accessed
 * since the scanner last armed this page" reads as young == 0.
 */
struct HeatSample {
    bool sampled = false;   ///< present, not mid-migration: counters apply
    bool accessed = false;  ///< young found clear (a touch trapped since arm)
    bool written = false;   ///< dirty was set
    bool rearmed = false;   ///< this call re-armed young (PTE CAS + flush)
};

/**
 * One process's virtual address space.
 *
 * Owns its Vmas and the physical frames they map; frames return to the
 * buddy allocator on munmap and on destruction.
 */
class AddressSpace {
  public:
    explicit AddressSpace(mem::PhysicalMemory &pm) : pm_(pm) {}
    ~AddressSpace();
    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    mem::PhysicalMemory &phys() { return pm_; }

    /** The process's radix page table (drivers walk it directly). */
    PageTable &page_table() { return table_; }

    /**
     * Map @p bytes of anonymous memory with @p psize pages backed by
     * @p node. Pages are populated eagerly (the paper moves anonymous
     * pages that already exist).
     *
     * @return the base address, or 0 if physical memory is exhausted.
     */
    VAddr mmap(std::uint64_t bytes, PageSize psize, mem::NodeId node);

    /**
     * mmap with per-page placement: @p candidates_of returns, for each
     * page index, the node candidates to try in order (NUMA policies
     * build on this). Fails (returns 0) when any page cannot be backed
     * by any of its candidates.
     */
    using NodeCandidatesFn =
        std::function<std::vector<mem::NodeId>(std::uint64_t)>;
    VAddr mmap_policy(std::uint64_t bytes, PageSize psize,
                      const NodeCandidatesFn &candidates_of);

    /**
     * Attach another address space's mapping into this one (shared
     * anonymous memory): the new Vma maps the same physical frames,
     * and every frame's reverse-map chain gains this mapping. Frames
     * are freed only when the last mapping goes away.
     *
     * @return the base address here, or 0 on failure.
     */
    VAddr mmap_shared(const Vma &source);

    /**
     * Map @p num_pages 4 KB pages of a file, starting at file page
     * @p file_page_offset, through its page cache (MAP_SHARED file
     * mapping). The backing's cached frames must exist.
     *
     * @return the base address, or 0 on failure.
     */
    VAddr mmap_file(FileBacking &backing, std::uint64_t file_page_offset,
                    std::uint64_t num_pages);

    /** Unmap the Vma starting exactly at @p base. */
    void munmap(VAddr base);

    /** The Vma containing @p va, or nullptr. */
    Vma *find_vma(VAddr va);
    const Vma *find_vma(VAddr va) const;

    std::size_t vma_count() const { return vmas_.size(); }

    /**
     * Host pointer to the byte at @p va, valid for the rest of the
     * containing page. Pure translation: no access-flag side effects.
     * @return nullptr if unmapped / not present.
     */
    std::byte *translate(VAddr va);

    /**
     * Simulate one CPU access: applies the software access-flag model
     * (clears young via CAS, as the kernel's emulation does) and detects
     * migration PTEs (the accessor must block).
     */
    AccessResult touch(VAddr va, bool write);

    /**
     * Test-and-rearm one page's access/dirty flags for heat sampling
     * (managed mode). Reads young/dirty, then re-arms via the same
     * atomic CAS path touch() uses, flushing the page's TLB entry and
     * firing the xlate-invalidation hook so a cached walk can never
     * resurrect the pre-CAS PTE. Pages that are absent, mid-migration,
     * or lazy-marked are skipped (sampled == false) — the scanner
     * NEVER resolves faults or waits; it only observes.
     *
     * The caller charges time (CostModel::pte_cas + tlb_flush_page per
     * rearm) — this is the functional half only.
     */
    HeatSample heat_sample(Vma &vma, std::uint64_t page_idx);

    /** Copy @p len bytes out of the address space (functional). */
    bool read(VAddr va, void *out, std::uint64_t len);

    /** Copy @p len bytes into the address space (functional). */
    bool write(VAddr va, const void *in, std::uint64_t len);

    /** The CPU-side TLB model. */
    Tlb &tlb() { return tlb_; }
    const Tlb &tlb() const { return tlb_; }

    /**
     * Invalidate one page's TLB entry after a PTE rewrite (the time
     * cost is charged by the caller from the CostModel).
     */
    void
    flush_tlb_page(VAddr va, PageSize psize)
    {
        tlb_.flush_page(va, psize);
        ++stats_.tlb_page_flushes;
        notify_xlate_invalidate(va, 1);
    }

    /**
     * Invalidate a contiguous run of @p num_pages pages starting at
     * @p va with one ranged operation (TLBI-range style): every
     * covered entry is dropped, but the broadcast/barrier is issued —
     * and charged, via CostModel::tlb_flush_range_time — only once.
     */
    void
    flush_tlb_range(VAddr va, std::uint64_t num_pages, PageSize psize)
    {
        const std::uint64_t pb = page_bytes(psize);
        for (std::uint64_t i = 0; i < num_pages; ++i)
            tlb_.flush_page(va + i * pb, psize);
        ++stats_.tlb_range_flushes;
        notify_xlate_invalidate(va, num_pages);
    }

    /**
     * Custom young-bit fault handler (paper §5.2 "proceed and recover"):
     * consulted *before* the default access-flag emulation when a touch
     * traps on a young PTE. Returning true means the handler resolved
     * the fault (e.g. rolled back an in-flight migration and restored
     * the old mapping); the access then retries.
     */
    using YoungFaultHook = std::function<bool(Vma &, std::uint64_t)>;
    void set_young_fault_hook(YoungFaultHook hook)
    {
        young_fault_hook_ = std::move(hook);
    }

    /**
     * Translation-invalidation hook: any event that can make a cached
     * walk result stale — TLB shootdown (page or ranged), a CPU-side
     * PTE CAS in touch(), or the Vma being torn down by munmap /
     * address-space destruction — reports the affected page run
     * (vma, first page index, page count). The memif driver's gang
     * translation cache registers here; the baseline never does, so
     * the hook costs one null check when unused.
     */
    using XlateInvalidateHook =
        std::function<void(const Vma *, std::uint64_t, std::uint64_t)>;
    void set_xlate_invalidate_hook(XlateInvalidateHook hook)
    {
        xlate_invalidate_hook_ = std::move(hook);
    }

    VmStats &stats() { return stats_; }
    const VmStats &stats() const { return stats_; }

  private:
    void release_vma(Vma &vma);
    /** Route a VA run to the xlate hook (resolves the containing Vma). */
    void notify_xlate_invalidate(VAddr va, std::uint64_t num_pages);

    mem::PhysicalMemory &pm_;
    PageTable table_;
    Tlb tlb_;
    std::vector<std::unique_ptr<Vma>> vmas_;
    VAddr next_base_ = 0x0000'1000'0000ull;
    VmStats stats_;
    YoungFaultHook young_fault_hook_;
    XlateInvalidateHook xlate_invalidate_hook_;
};

}  // namespace memif::vm
