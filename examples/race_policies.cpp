/**
 * @file
 * The three §5.2 race-handling policies side by side: an application
 * thread writes into a region while memif is migrating it.
 *
 *   detect  (memif default): the access proceeds unblocked; Release's
 *           CAS catches the race and the request fails loudly.
 *   recover: a custom fault handler aborts the migration, restores the
 *           old mapping, and the access continues — data never lost.
 *   prevent (Linux-style): the accessor blocks on a migration PTE until
 *           Release finishes.
 *
 * Run: build/examples/race_policies
 */
#include <cstdio>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

using namespace memif;

namespace {

const char *
policy_name(core::RacePolicy p)
{
    switch (p) {
      case core::RacePolicy::kDetect: return "detect (proceed-and-fail)";
      case core::RacePolicy::kRecover: return "recover (abort+rollback)";
      case core::RacePolicy::kPrevent: return "prevent (migration PTE)";
    }
    return "?";
}

void
demo(core::RacePolicy policy)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    core::MemifConfig cfg;
    cfg.race_policy = policy;
    core::MemifDevice device(kernel, proc, cfg);
    core::MemifUser mif(device);

    const vm::VAddr region = proc.mmap(64 * 4096, vm::PageSize::k4K);
    const std::uint32_t marker = 0xC0FFEE;
    proc.as().write(region + 10 * 4096, &marker, sizeof(marker));

    // Submit the migration of all 64 pages to fast memory.
    std::uint32_t r = mif.alloc_request();
    core::MovReq &req = mif.request(r);
    req.op = core::MovOp::kMigrate;
    req.src_base = region;
    req.num_pages = 64;
    req.dst_node = kernel.fast_node();
    auto submitter = [&]() -> sim::Task { co_await mif.submit(r); };
    sim::Task submit_task = submitter();

    // 300 us in (mid-migration), another thread writes page 10.
    os::TouchOutcome out;
    sim::SimTime touched_at = 0;
    auto toucher = [&]() -> sim::Task {
        co_await proc.touch(region + 10 * 4096, /*write=*/true, &out);
        touched_at = kernel.eq().now();
    };
    sim::Task touch_task;
    kernel.eq().schedule_at(sim::microseconds(300),
                            [&] { touch_task = toucher(); });
    kernel.run();

    const core::MovReq &done = mif.request(r);
    std::uint32_t readback = 0;
    proc.as().read(region + 10 * 4096, &readback, sizeof(readback));

    std::printf("policy: %s\n", policy_name(policy));
    std::printf("  request outcome:   %s\n",
                done.load_status() == core::MovStatus::kDone ? "completed"
                : done.load_status() == core::MovStatus::kRaceDetected
                    ? "RACE DETECTED (app notified, SIGSEGV analogue)"
                : done.load_status() == core::MovStatus::kAborted
                    ? "aborted & rolled back (old mapping restored)"
                    : "failed");
    std::printf("  accessor blocked:  %s%s\n",
                out.blocked ? "yes" : "no",
                out.blocked
                    ? " (parked on the migration PTE until Release)"
                    : "");
    std::printf("  access finished:   t=%.1f us\n", sim::to_us(touched_at));
    const vm::Vma *vma = proc.as().find_vma(region);
    std::printf("  page 10 now on:    %s node, data %s\n",
                kernel.phys().node_of(vma->pte(10).pfn) ==
                        kernel.fast_node()
                    ? "fast"
                    : "slow",
                readback == marker ? "intact" : "CHANGED");
    std::printf("\n");
}

}  // namespace

int
main()
{
    std::printf("a writer races a 64-page migration at t=300 us\n");
    std::printf("===============================================\n\n");
    demo(core::RacePolicy::kDetect);
    demo(core::RacePolicy::kRecover);
    demo(core::RacePolicy::kPrevent);
    return 0;
}
