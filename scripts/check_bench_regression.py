#!/usr/bin/env python3
"""Gate on the machine-readable bench artifacts (BENCH_*.json).

Checks that the optimisation levers actually pay off:

* Figure 8 sweep: at every 4 KB point with >= 16 pages/request, the
  memif-pip-4KB series must beat the paper-default memif-mig-4KB
  series by at least MIN_SPEEDUP.
* Figure 7 small-request streams: the moderated (completion-batching)
  configuration must beat pipelined on throughput by MIN_MOD_SPEEDUP
  per cell, and must cut the per-request completion tax
  (irqs/req + wakeups/req) to at most MAX_MOD_TAX_RATIO of
  pipelined's.
* Submission scaling: on the repeated-region 256x4KB stream the
  scaled() levers (gang translation cache + bulk frame allocation +
  per-CPU rings) must beat moderated() by MIN_SCALED_SPEEDUP, the
  translation cache must serve at least MIN_XLATE_HIT_RATIO of the
  stream's pages, and 4 submitting CPUs over per-CPU rings must
  sustain at least MIN_RING_SCALING_4CPU times the 1-CPU deposit
  throughput.
* Multi-tenant fairness: at 16 equal-weight tenants under overload
  the max/min per-tenant throughput ratio must stay at most
  MAX_FAIRNESS_16, and the 4:1 weighted pair's observed bandwidth
  split must land inside [MIN_WEIGHTED_SPLIT, MAX_WEIGHTED_SPLIT].
* MMU-aware DMA: on the cold large-SG sweep the SVA-routed +
  prefetch-ahead configuration must stay within 5% of the pre-pinned
  scaled() path (>= MIN_SVA_PREFETCH_RATIO) at every SG size, with a
  prefetch hit ratio of at least MIN_PREFETCH_HIT_RATIO.
* Managed mode: at 2x fast-node oversubscription the better of the
  two placement policies (aging / EWMA) must reach at least
  MIN_MANAGED_VS_WORST of static-worst throughput and stay within
  MIN_MANAGED_VS_BEST of the static-best oracle on at least one
  access mix.
* Tiered memory: pipelined multi-hop eviction must beat sequential
  store-and-forward by MIN_TIERED_PIPELINE_SPEEDUP on every demotion
  burst of at least MIN_TIERED_BURST_PAGES pages, and the capacity
  sweep must degrade gracefully — monotone non-increasing GB/s with
  every step retaining at least MIN_TIERED_STEP_RETENTION of the
  previous point (no cliff at a tier boundary).
* Strided DMA: staging a pitched tile as one strided request must
  beat the per-row flat workaround by MIN_STRIDED_SPEEDUP at the
  STRIDED_TILE x STRIDED_TILE point, the double-buffered matmul must
  hide at least MIN_OVERLAP of its staging DMA behind compute, and
  every staging strategy must produce the identical data checksum.

Pure stdlib so it runs anywhere CI does.

Usage: check_bench_regression.py [dir-with-BENCH-json]   (default: .)
"""
import json
import os
import sys

MIN_SPEEDUP = 1.25
MIN_PAGES = 16

# Figure 7 stream cells: (cell name, minimum moderated/pipelined GB/s
# ratio).  The 4 KB stream is pure completion tax, so moderation buys
# more there than at 16 KB.  Both bounds hold with margin in quick
# mode (1.37x / 1.18x measured) and full mode (1.40x / 1.22x).
FIG7_CELLS = [("256x4KB", 1.30), ("64x16KB", 1.15)]
MAX_MOD_TAX_RATIO = 0.5
# Point x-coordinates written by bench_fig7_latency for stream series.
X_GBPS, X_IRQS, X_WAKES = 1, 2, 3

# Submission-path gates (bench_submission_scaling).  Measured: scaled
# 1.23x full / 1.21x quick, hit ratio 0.984 full / 0.938 quick, rings
# 4-CPU scaling 3.82x full / 3.40x quick — deterministic simulation,
# so the margins hold exactly.
MIN_SCALED_SPEEDUP = 1.20
MIN_XLATE_HIT_RATIO = 0.90
MIN_RING_SCALING_4CPU = 2.0

# Multi-tenant gates (bench_multitenant).  The WRR dispatcher must keep
# 16 equal-weight tenants within 2x of each other, and a 4:1 weight
# pair must split bandwidth roughly 4:1 while both still compete.
MAX_FAIRNESS_16 = 2.0
MIN_WEIGHTED_SPLIT = 3.0
MAX_WEIGHTED_SPLIT = 5.0

# MMU-aware DMA gates (bench_xlate_prefetch).  Measured: sva+prefetch
# 1.03-1.04x pre-pinned with hit ratio 1.000 at every SG size (full
# and quick mode) — deterministic simulation, so the margins hold
# exactly.  Pure SVA without prefetch sits at ~0.65x, which is the
# gap the prefetcher must keep closed.
MIN_SVA_PREFETCH_RATIO = 0.95
MIN_PREFETCH_HIT_RATIO = 0.90

# Managed-mode gates (bench_managed).  The daemon starts from an
# all-on-DDR placement and must discover + move the hot set: at 2x
# oversubscription the better policy has to clearly beat leaving
# everything on DDR.  The static-best bound is looser because that
# oracle is strictly stronger than any sampler can be: it knows the
# hot set in advance (no discovery ramp), pays zero sampling tax, and
# packs leftover SRAM with cold pages the daemon deliberately never
# promotes.  Measured: managed reaches 0.77-0.91x of it at 2x;
# gate at 0.70 with margin.  Honoured in quick mode too
# (MEMIF_BENCH_QUICK only shrinks epochs, not the 2x row).
MANAGED_OVERSUB = 2.0
MIN_MANAGED_VS_WORST = 1.3
MIN_MANAGED_VS_BEST = 0.70
MANAGED_MIXES = ["stream", "data_intensive"]

# Tiered-memory gates (bench_tiered).  Pipelined multi-hop eviction
# overlaps batch k+1's SRAM->DDR hop with batch k's DDR->far hop across
# the engine's TCs; measured 1.64x sequential store-and-forward at
# every burst size (full and quick mode) — deterministic simulation,
# gate at 1.3 with margin.  The capacity sweep crosses the SRAM and
# DDR boundaries; measured per-step retentions 0.66/0.75/0.23/0.39/0.76
# (the 0.23 step is the working set crossing into the RDMA-latency far
# tier while doubling — proportional to the tier cost ratio, not a
# cliff); gate monotone non-increasing with >= 0.20 retained per step.
MIN_TIERED_PIPELINE_SPEEDUP = 1.3
MIN_TIERED_BURST_PAGES = 256
MIN_TIERED_STEP_RETENTION = 0.20

# Strided-DMA gates (bench_tile_matmul).  One pitched request per
# 64x64 tile vs 64 flat rows x 2 tiles per step: measured 17.9x full /
# 17.7x quick staging throughput — deterministic simulation, gate at
# 1.3 with margin.  Double-buffered overlap measured 0.79 full / 0.68
# quick; gate at 0.5.  The checksum columns compare the bytes the
# compute actually consumed across staging strategies and must agree
# exactly (1.0 means match).
MIN_STRIDED_SPEEDUP = 1.3
STRIDED_TILE = 64
MIN_OVERLAP = 0.5


def fail(msg):
    print(f"check_bench_regression: FAIL: {msg}")
    return 1


def load_report(where, name):
    path = os.path.join(where, name)
    try:
        with open(path) as f:
            return json.load(f), None
    except OSError as e:
        return None, f"cannot read {path}: {e}"


def check_fig7_streams(where):
    """Moderated completion batching must pay off over pipelined."""
    report, err = load_report(where, "BENCH_fig7_latency.json")
    if err:
        return fail(err)
    series = report.get("series", {})

    for cell, min_speedup in FIG7_CELLS:
        pip = dict(series.get(f"stream-{cell}-pipelined", []))
        mod = dict(series.get(f"stream-{cell}-moderated", []))
        if X_GBPS not in pip or X_GBPS not in mod:
            return fail(f"stream-{cell} series missing from the artifact")
        speedup = mod[X_GBPS] / pip[X_GBPS]
        pip_tax = pip.get(X_IRQS, 0.0) + pip.get(X_WAKES, 0.0)
        mod_tax = mod.get(X_IRQS, 0.0) + mod.get(X_WAKES, 0.0)
        tax_ratio = mod_tax / pip_tax if pip_tax else 0.0
        print(f"  {cell}: moderated {mod[X_GBPS]:.2f} GB/s "
              f"vs pipelined {pip[X_GBPS]:.2f} GB/s = {speedup:.2f}x, "
              f"completion tax {mod_tax:.2f} vs {pip_tax:.2f} "
              f"(irq+wake)/req = {tax_ratio:.2f}x")
        if speedup < min_speedup:
            return fail(f"moderated speedup {speedup:.2f}x "
                        f"< {min_speedup}x on {cell}")
        if tax_ratio > MAX_MOD_TAX_RATIO:
            return fail(f"moderated completion tax {tax_ratio:.2f}x "
                        f"> {MAX_MOD_TAX_RATIO}x pipelined on {cell}")
    print(f"check_bench_regression: fig7 OK ({len(FIG7_CELLS)} cells)")
    return check_submission_scaling(where)


def check_submission_scaling(where):
    """The PR 4 submission-path levers must pay off."""
    report, err = load_report(where, "BENCH_submission_scaling.json")
    if err:
        return fail(err)
    series = report.get("series", {})

    mod = dict(series.get("stream-256x4KB-moderated", []))
    sca = dict(series.get("stream-256x4KB-scaled", []))
    if 1 not in mod or 1 not in sca:
        return fail("stream-256x4KB series missing from the artifact")
    speedup = sca[1] / mod[1]
    print(f"  256x4KB repeated-region: scaled {sca[1]:.2f} GB/s "
          f"vs moderated {mod[1]:.2f} GB/s = {speedup:.2f}x")
    if speedup < MIN_SCALED_SPEEDUP:
        return fail(f"scaled speedup {speedup:.2f}x "
                    f"< {MIN_SCALED_SPEEDUP}x on the 256x4KB stream")

    hits = dict(series.get("xlate-hit-ratio", []))
    if 1 not in hits:
        return fail("xlate-hit-ratio series missing from the artifact")
    print(f"  xlate hit ratio: {hits[1]:.3f}")
    if hits[1] < MIN_XLATE_HIT_RATIO:
        return fail(f"xlate hit ratio {hits[1]:.3f} "
                    f"< {MIN_XLATE_HIT_RATIO}")

    rings = dict(series.get("submit-scaling-rings", []))
    if 1 not in rings or 4 not in rings:
        return fail("submit-scaling-rings series missing from the artifact")
    print(f"  per-CPU ring deposit scaling at 4 CPUs: {rings[4]:.2f}x")
    if rings[4] < MIN_RING_SCALING_4CPU:
        return fail(f"4-CPU ring submit scaling {rings[4]:.2f}x "
                    f"< {MIN_RING_SCALING_4CPU}x")
    print("check_bench_regression: submission scaling OK")
    return check_multitenant(where)


def check_multitenant(where):
    """WRR fairness and the weighted bandwidth split must hold."""
    report, err = load_report(where, "BENCH_multitenant.json")
    if err:
        return fail(err)
    series = report.get("series", {})

    fairness = dict(series.get("fairness", []))
    if 16 not in fairness:
        return fail("fairness series missing the 16-tenant point")
    print(f"  16 equal-weight tenants: max/min throughput "
          f"{fairness[16]:.2f}x")
    if fairness[16] > MAX_FAIRNESS_16:
        return fail(f"16-tenant fairness ratio {fairness[16]:.2f} "
                    f"> {MAX_FAIRNESS_16}")

    split = dict(series.get("weighted_split", []))
    if 4 not in split:
        return fail("weighted_split series missing from the artifact")
    print(f"  4:1 weighted pair: observed split {split[4]:.2f}:1")
    if not MIN_WEIGHTED_SPLIT <= split[4] <= MAX_WEIGHTED_SPLIT:
        return fail(f"weighted split {split[4]:.2f} outside "
                    f"[{MIN_WEIGHTED_SPLIT}, {MAX_WEIGHTED_SPLIT}]")
    print("check_bench_regression: multitenant OK")
    return check_xlate_prefetch(where)


def check_xlate_prefetch(where):
    """SVA routing with prefetch-ahead must match the pre-pinned path."""
    report, err = load_report(where, "BENCH_xlate_prefetch.json")
    if err:
        return fail(err)
    series = report.get("series", {})

    ratios = series.get("sva-prefetch-ratio", [])
    hits = series.get("prefetch-hit-ratio", [])
    if not ratios or not hits:
        return fail("sva-prefetch series missing from the artifact")
    for pages, ratio in ratios:
        print(f"  SG {int(pages)}x4KB: sva+prefetch {ratio:.2f}x "
              f"pre-pinned")
        if ratio < MIN_SVA_PREFETCH_RATIO:
            return fail(f"sva+prefetch throughput {ratio:.2f}x "
                        f"< {MIN_SVA_PREFETCH_RATIO}x pre-pinned "
                        f"at {int(pages)} pages")
    for pages, hit in hits:
        print(f"  SG {int(pages)}x4KB: prefetch hit ratio {hit:.3f}")
        if hit < MIN_PREFETCH_HIT_RATIO:
            return fail(f"prefetch hit ratio {hit:.3f} "
                        f"< {MIN_PREFETCH_HIT_RATIO} "
                        f"at {int(pages)} pages")
    print(f"check_bench_regression: xlate prefetch OK "
          f"({len(ratios)} points)")
    return check_managed(where)


def check_managed(where):
    """The migration daemon must pay off at 2x oversubscription."""
    report, err = load_report(where, "BENCH_managed.json")
    if err:
        return fail(err)
    series = report.get("series", {})

    passed = False
    for mix in MANAGED_MIXES:
        vs_worst = dict(series.get(f"{mix}-managed-vs-worst", []))
        vs_best = dict(series.get(f"{mix}-managed-vs-best", []))
        if MANAGED_OVERSUB not in vs_worst or MANAGED_OVERSUB not in vs_best:
            return fail(f"{mix} managed series missing the "
                        f"{MANAGED_OVERSUB}x oversubscription point")
        w, b = vs_worst[MANAGED_OVERSUB], vs_best[MANAGED_OVERSUB]
        print(f"  {mix} @ {MANAGED_OVERSUB}x: managed {w:.2f}x "
              f"static-worst, {b:.2f}x static-best")
        if w >= MIN_MANAGED_VS_WORST and b >= MIN_MANAGED_VS_BEST:
            passed = True
    if not passed:
        return fail(f"no mix reached >= {MIN_MANAGED_VS_WORST}x "
                    f"static-worst and >= {MIN_MANAGED_VS_BEST}x "
                    f"static-best at {MANAGED_OVERSUB}x oversubscription")
    print("check_bench_regression: managed mode OK")
    return check_tiered(where)


def check_tiered(where):
    """Pipelined chains must pay off; degradation must stay graceful."""
    report, err = load_report(where, "BENCH_tiered.json")
    if err:
        return fail(err)
    series = report.get("series", {})

    speedups = series.get("pipelined-speedup", [])
    checked = 0
    for pages, speedup in speedups:
        if pages < MIN_TIERED_BURST_PAGES:
            continue
        checked += 1
        print(f"  demotion burst {int(pages)} pages: pipelined "
              f"{speedup:.2f}x sequential")
        if speedup < MIN_TIERED_PIPELINE_SPEEDUP:
            return fail(f"pipelined eviction {speedup:.2f}x "
                        f"< {MIN_TIERED_PIPELINE_SPEEDUP}x sequential "
                        f"at {int(pages)} pages")
    if checked == 0:
        return fail(f"no demotion bursts at >= {MIN_TIERED_BURST_PAGES} "
                    f"pages in the artifact")

    sweep = sorted(series.get("capacity-sweep", []))
    if len(sweep) < 3:
        return fail("capacity-sweep series missing or too short")
    for (x0, y0), (x1, y1) in zip(sweep, sweep[1:]):
        retention = y1 / y0 if y0 else 0.0
        print(f"  capacity {x0:.1f}x -> {x1:.1f}x SRAM: "
              f"{y0:.2f} -> {y1:.2f} GB/s (retained {retention:.2f})")
        if y1 > y0:
            return fail(f"capacity sweep not monotone: {y1:.2f} GB/s at "
                        f"{x1:.1f}x > {y0:.2f} GB/s at {x0:.1f}x")
        if retention < MIN_TIERED_STEP_RETENTION:
            return fail(f"capacity cliff at {x1:.1f}x SRAM: retained "
                        f"{retention:.2f} < {MIN_TIERED_STEP_RETENTION}")
    print(f"check_bench_regression: tiered OK ({checked} bursts, "
          f"{len(sweep)} sweep points)")
    return check_tile_matmul(where)


def check_tile_matmul(where):
    """Strided tile staging must pay off and deliver exact bytes."""
    report, err = load_report(where, "BENCH_tile_matmul.json")
    if err:
        return fail(err)
    series = report.get("series", {})

    speedups = dict(series.get("strided-speedup", []))
    if STRIDED_TILE not in speedups:
        return fail(f"strided-speedup series missing the "
                    f"{STRIDED_TILE}x{STRIDED_TILE} tile point")
    print(f"  staging {STRIDED_TILE}x{STRIDED_TILE} tiles: strided "
          f"{speedups[STRIDED_TILE]:.2f}x per-row flat")
    if speedups[STRIDED_TILE] < MIN_STRIDED_SPEEDUP:
        return fail(f"strided staging {speedups[STRIDED_TILE]:.2f}x "
                    f"< {MIN_STRIDED_SPEEDUP}x per-row flat at "
                    f"{STRIDED_TILE}x{STRIDED_TILE} tiles")

    overlaps = dict(series.get("overlap", []))
    if STRIDED_TILE not in overlaps:
        return fail(f"overlap series missing the "
                    f"{STRIDED_TILE}x{STRIDED_TILE} tile point")
    print(f"  double-buffered matmul: overlap ratio "
          f"{overlaps[STRIDED_TILE]:.2f}")
    if overlaps[STRIDED_TILE] < MIN_OVERLAP:
        return fail(f"compute/DMA overlap {overlaps[STRIDED_TILE]:.2f} "
                    f"< {MIN_OVERLAP} at {STRIDED_TILE}x{STRIDED_TILE} "
                    f"tiles")

    checked = 0
    for name in ("staging-checksum-match", "compute-checksum-match"):
        points = series.get(name, [])
        if not points:
            return fail(f"{name} series missing from the artifact")
        for tile, match in points:
            checked += 1
            if match != 1.0:
                return fail(f"{name}: staging strategies disagree on "
                            f"the data at {int(tile)}x{int(tile)} tiles")
    print(f"check_bench_regression: tile matmul OK "
          f"({checked} checksum points)")
    return 0


def main():
    where = sys.argv[1] if len(sys.argv) > 1 else "."
    report, err = load_report(where, "BENCH_fig8_throughput.json")
    if err:
        return fail(err)

    series = report.get("series", {})
    base = dict((x, y) for x, y in series.get("memif-mig-4KB", []))
    pip = dict((x, y) for x, y in series.get("memif-pip-4KB", []))
    if not pip:
        return fail("memif-pip-4KB series missing from the artifact")

    checked = 0
    for pages, gbps in sorted(pip.items()):
        if pages < MIN_PAGES or pages not in base:
            continue
        checked += 1
        ratio = gbps / base[pages]
        print(f"  4KB x{int(pages)}: pipelined {gbps:.2f} GB/s "
              f"vs default {base[pages]:.2f} GB/s = {ratio:.2f}x")
        if ratio < MIN_SPEEDUP:
            return fail(
                f"pipelined speedup {ratio:.2f}x < {MIN_SPEEDUP}x "
                f"at {int(pages)} pages/request")
    if checked == 0:
        return fail(f"no comparable points at >= {MIN_PAGES} pages")
    print(f"check_bench_regression: fig8 OK ({checked} points)")
    return check_fig7_streams(where)


if __name__ == "__main__":
    sys.exit(main())
