/**
 * @file
 * Multiple memif instances — the paper designs for this ("Multiple
 * memif devices maintain separate copies of queues and free lists and
 * are therefore isolated from each other", §4.2) but never evaluated
 * it (§6.7). Here we do: several processes, each with its own device,
 * sharing one DMA engine and one fast node.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"

namespace memif::core {
namespace {

struct App {
    os::Process *proc;
    std::unique_ptr<MemifDevice> dev;
    std::unique_ptr<MemifUser> user;
    vm::VAddr src = 0;
    vm::VAddr dst = 0;
    unsigned completed = 0;
};

TEST(MultiInstance, ThreeProcessesShareTheEngine)
{
    os::Kernel kernel;
    constexpr unsigned kApps = 3;
    constexpr unsigned kRequestsEach = 12;

    std::vector<App> apps(kApps);
    for (unsigned a = 0; a < kApps; ++a) {
        apps[a].proc = &kernel.create_process();
        apps[a].dev = std::make_unique<MemifDevice>(kernel, *apps[a].proc);
        apps[a].user = std::make_unique<MemifUser>(*apps[a].dev);
        apps[a].src = apps[a].proc->mmap(32 * 4096, vm::PageSize::k4K);
        apps[a].dst = apps[a].proc->mmap(32 * 4096, vm::PageSize::k4K,
                                         kernel.fast_node());
        ASSERT_NE(apps[a].src, 0u);
        ASSERT_NE(apps[a].dst, 0u);
        // Distinct per-app data.
        std::vector<std::uint8_t> data(32 * 4096,
                                       static_cast<std::uint8_t>(0x11 * (a + 1)));
        apps[a].proc->as().write(apps[a].src, data.data(), data.size());
    }

    auto run_app = [&kernel](App &app, unsigned requests) -> sim::Task {
        for (unsigned i = 0; i < requests; ++i) {
            const std::uint32_t idx = app.user->alloc_request();
            EXPECT_NE(idx, kNoRequest);
            MovReq &req = app.user->request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = app.src;
            req.dst_base = app.dst;
            req.num_pages = 32;
            co_await app.user->submit(idx);
            co_await sim::Delay{kernel.eq(), sim::microseconds(7)};
        }
        while (app.completed < requests) {
            const std::uint32_t idx = app.user->retrieve_completed();
            if (idx == kNoRequest) {
                co_await app.user->poll();
                continue;
            }
            EXPECT_TRUE(app.user->request(idx).succeeded());
            app.user->free_request(idx);
            ++app.completed;
        }
    };

    std::vector<sim::Task> tasks;
    for (App &app : apps) tasks.push_back(run_app(app, kRequestsEach));
    kernel.run();

    for (unsigned a = 0; a < kApps; ++a) {
        EXPECT_EQ(apps[a].completed, kRequestsEach) << "app " << a;
        EXPECT_TRUE(apps[a].dev->idle());
        // Isolation: each app's destination holds its own pattern.
        std::vector<std::uint8_t> got(32 * 4096);
        apps[a].proc->as().read(apps[a].dst, got.data(), got.size());
        for (const std::uint8_t b : got)
            ASSERT_EQ(b, static_cast<std::uint8_t>(0x11 * (a + 1)));
    }
}

TEST(MultiInstance, OneProcessTwoDevices)
{
    // A process may open several instances; queues and free lists are
    // fully separate.
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev_a(kernel, proc,
                      MemifConfig{.capacity = 4,
                                  .gang_lookup = true,
                                  .race_policy = RacePolicy::kDetect,
                                  .poll_threshold_bytes = 512 * 1024});
    MemifDevice dev_b(kernel, proc);
    MemifUser ua(dev_a), ub(dev_b);

    // Exhaust A's free list; B is unaffected.
    std::vector<std::uint32_t> held;
    for (int i = 0; i < 4; ++i) held.push_back(ua.alloc_request());
    EXPECT_EQ(ua.alloc_request(), kNoRequest);
    EXPECT_NE(ub.alloc_request(), kNoRequest);
    for (const std::uint32_t idx : held) ua.free_request(idx);
}

TEST(MultiInstance, InstancesOverlapOnDistinctTransferControllers)
{
    // Two apps each move 1 MB concurrently (1 MB = 256 descriptors, so
    // both leases fit the 512-entry PaRAM at once). With round-robin TC
    // assignment their DMAs overlap: the two completions land within
    // one transfer duration of each other instead of stacking.
    os::Kernel kernel;
    std::vector<App> apps(2);
    std::vector<sim::SimTime> completed_at(2, 0);
    for (unsigned a = 0; a < 2; ++a) {
        apps[a].proc = &kernel.create_process();
        apps[a].dev = std::make_unique<MemifDevice>(kernel, *apps[a].proc);
        apps[a].user = std::make_unique<MemifUser>(*apps[a].dev);
        apps[a].src = apps[a].proc->mmap(1u << 20, vm::PageSize::k4K);
        apps[a].dst = apps[a].proc->mmap(1u << 20, vm::PageSize::k4K,
                                         kernel.fast_node());
    }
    auto run_app = [&](App &app, unsigned a) -> sim::Task {
        const std::uint32_t idx = app.user->alloc_request();
        MovReq &req = app.user->request(idx);
        req.op = MovOp::kReplicate;
        req.src_base = app.src;
        req.dst_base = app.dst;
        req.num_pages = 256;
        co_await app.user->submit(idx);
        while (app.user->retrieve_completed() == kNoRequest)
            co_await app.user->poll();
        completed_at[a] = app.user->request(idx).complete_time;
        ++app.completed;
    };
    auto t0 = run_app(apps[0], 0);
    auto t1 = run_app(apps[1], 1);
    kernel.run();
    EXPECT_EQ(apps[0].completed + apps[1].completed, 2u);
    const auto &es = kernel.dma_engine().stats();
    EXPECT_EQ(es.transfers_completed, 2u);
    // 1 MB at 6.2 GB/s is ~169 us; overlapped completions are closer
    // than that, serialized ones would differ by at least that.
    const sim::Duration gap = completed_at[1] > completed_at[0]
                                  ? completed_at[1] - completed_at[0]
                                  : completed_at[0] - completed_at[1];
    EXPECT_LT(gap, sim::microseconds(169));
}

}  // namespace
}  // namespace memif::core
