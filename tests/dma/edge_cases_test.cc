/**
 * @file
 * DMA edge cases: chain loops, capacity waiting at the driver level,
 * abandon semantics, and descriptor traffic accounting under reuse.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/driver.h"
#include "dma/engine.h"
#include "mem/phys.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace memif::dma {
namespace {

struct Fixture {
    sim::EventQueue eq;
    mem::PhysicalMemory pm;
    sim::CostModel cm;
    mem::NodeId slow, fast;
    Edma3Engine engine{eq, pm, cm};
    DmaDriver driver{engine, cm};

    Fixture()
    {
        auto ids = mem::KeystoneMemory::build(pm, 32ull << 20);
        slow = ids.first;
        fast = ids.second;
    }

    std::vector<SgEntry>
    make_sg(unsigned pages)
    {
        std::vector<SgEntry> sg;
        for (unsigned i = 0; i < pages; ++i) {
            const mem::Pfn src = pm.allocate(slow, 0);
            const mem::Pfn dst = pm.allocate(fast, 0);
            sg.push_back(SgEntry{src << mem::kPageShift,
                                 dst << mem::kPageShift, mem::kPageSize});
        }
        return sg;
    }
};

TEST(DmaEdge, ChainLoopIsDetected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Fixture f;
    TransferDescriptor d =
        TransferDescriptor::contiguous(0, 4096, mem::kPageSize);
    d.link = 0;  // points at itself
    f.engine.param_ram().write_full(0, d);
    EXPECT_DEATH((void)f.engine.chain_duration(0), "loops");
}

TEST(DmaEdge, AbandonReleasesCapacityAndWakesWaiters)
{
    Fixture f;
    // Lease everything, then have a waiter blocked on capacity.
    DmaDriver::Prepared big = f.driver.prepare(f.make_sg(512));
    EXPECT_EQ(f.driver.available_descriptors(), 0u);

    bool got_capacity = false;
    auto waiter = [&]() -> sim::Task {
        while (f.driver.available_descriptors() < 4)
            co_await f.driver.capacity_wait();
        got_capacity = true;
    };
    auto t = waiter();
    f.eq.run();
    EXPECT_FALSE(got_capacity);

    f.driver.abandon(std::move(big));
    f.eq.run();
    EXPECT_TRUE(got_capacity);
    EXPECT_EQ(f.driver.available_descriptors(), 512u);
}

TEST(DmaEdge, RetirementWakesCapacityWaiters)
{
    Fixture f;
    auto sg = f.make_sg(512);
    const TransferId id = f.driver.start(f.driver.prepare(sg), false,
                                         nullptr);
    EXPECT_EQ(f.driver.available_descriptors(), 0u);
    bool got_capacity = false;
    auto waiter = [&]() -> sim::Task {
        while (f.driver.available_descriptors() < 512)
            co_await f.driver.capacity_wait();
        got_capacity = true;
    };
    auto t = waiter();
    f.eq.run();  // transfer completes -> retire -> wake
    EXPECT_TRUE(got_capacity);
    EXPECT_TRUE(f.driver.is_complete(id));
}

TEST(DmaEdge, ReuseStatsAccumulateAcrossTransfers)
{
    Fixture f;
    auto sg = f.make_sg(16);
    for (int round = 0; round < 5; ++round) {
        f.driver.start(f.driver.prepare(sg), false, nullptr);
        f.eq.run();
    }
    const ChainCacheStats &cs = f.driver.cache().stats();
    EXPECT_EQ(cs.descs_fresh, 16u);       // only the first round
    EXPECT_EQ(cs.descs_reused, 4u * 16);  // all later rounds
    const DescriptorRamStats &rs = f.engine.param_ram().stats();
    EXPECT_EQ(rs.full_writes, 16u);
    EXPECT_EQ(rs.partial_writes, 4u * 16);
}

TEST(DmaEdge, ZeroByteChunkRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Fixture f;
    std::vector<SgEntry> sg{SgEntry{0, 4096, 0}};
    // A zero-size contiguous() hits the descriptor geometry check via
    // prepare's uniformity handling; the engine would move nothing.
    DmaDriver::Prepared p = f.driver.prepare(sg);
    EXPECT_EQ(p.bytes, 0u);
    f.driver.abandon(std::move(p));
}

TEST(DmaEdge, ManySmallTransfersOnAllTcsComplete)
{
    Fixture f;
    int completions = 0;
    for (unsigned tc = 0; tc < Edma3Engine::kNumTcs; ++tc) {
        auto sg = f.make_sg(2);
        f.driver.start(f.driver.prepare(sg), true,
                       [&](TransferId) { ++completions; }, tc);
    }
    f.eq.run();
    EXPECT_EQ(completions, static_cast<int>(Edma3Engine::kNumTcs));
    // All six ran concurrently: total time ~ one transfer, not six.
    const sim::Duration one =
        f.cm.dma_latency + 2 * (f.cm.dma_per_desc +
                                f.cm.dma_stream_time(mem::kPageSize,
                                                     6.2e9, 24.0e9));
    EXPECT_LE(f.eq.now(), one + sim::microseconds(2));
}

}  // namespace
}  // namespace memif::dma
