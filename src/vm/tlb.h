/**
 * @file
 * A TLB model: fully associative, LRU, like the Cortex-A15's unified
 * main TLB (512 entries).
 *
 * The simulated CPU fills it on successful accesses and the kernel
 * flushes entries when it rewrites PTEs. Its purpose in this
 * reproduction is observability: the §5.2 argument is that memif's
 * Release needs *no* TLB flush because the semi-final PTE (young set)
 * always traps before it can be cached — the TLB stats let tests state
 * that precisely, and the flush counters drive the CostModel charges.
 */
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "vm/page_size.h"

namespace memif::vm {

/** TLB event counters. */
struct TlbStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t page_flushes = 0;      ///< flush requests issued
    std::uint64_t flushed_entries = 0;   ///< entries actually removed
    std::uint64_t evictions = 0;         ///< capacity replacement
};

class Tlb {
  public:
    explicit Tlb(unsigned capacity = 512) : capacity_(capacity) {}
    Tlb(const Tlb &) = delete;
    Tlb &operator=(const Tlb &) = delete;

    unsigned capacity() const { return capacity_; }
    std::size_t size() const { return map_.size(); }
    const TlbStats &stats() const { return stats_; }

    /**
     * Look up the translation of @p va for a page of @p psize,
     * promoting it to most recently used. @return hit?
     */
    bool
    lookup(VAddr va, PageSize psize)
    {
        const std::uint64_t key = tag(va, psize);
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++stats_.misses;
            return false;
        }
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        return true;
    }

    /** Insert the translation (after a table walk). */
    void
    fill(VAddr va, PageSize psize)
    {
        const std::uint64_t key = tag(va, psize);
        auto it = map_.find(key);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        if (map_.size() >= capacity_) {
            map_.erase(lru_.back());
            lru_.pop_back();
            ++stats_.evictions;
        }
        lru_.push_front(key);
        map_[key] = lru_.begin();
        ++stats_.fills;
    }

    /** Invalidate one page's entry (TLBIMVA-style). */
    void
    flush_page(VAddr va, PageSize psize)
    {
        ++stats_.page_flushes;
        auto it = map_.find(tag(va, psize));
        if (it == map_.end()) return;
        lru_.erase(it->second);
        map_.erase(it);
        ++stats_.flushed_entries;
    }

    /** True if the page currently has an entry (no LRU side effect). */
    bool
    contains(VAddr va, PageSize psize) const
    {
        return map_.count(tag(va, psize)) != 0;
    }

    /** Invalidate everything. */
    void
    flush_all()
    {
        stats_.flushed_entries += map_.size();
        map_.clear();
        lru_.clear();
    }

  private:
    static std::uint64_t
    tag(VAddr va, PageSize psize)
    {
        // Tag by virtual page number; the size bits keep a 2 MB entry
        // distinct from a 4 KB entry at the same address.
        return (va >> static_cast<unsigned>(psize)) << 6 |
               static_cast<unsigned>(psize);
    }

    unsigned capacity_;
    std::list<std::uint64_t> lru_;  ///< MRU at front
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        map_;
    TlbStats stats_;
};

}  // namespace memif::vm
