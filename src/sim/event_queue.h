/**
 * @file
 * The discrete-event core: a virtual clock plus a priority queue of
 * timestamped callbacks.
 *
 * Events scheduled for the same instant fire in FIFO order (a monotonically
 * increasing sequence number breaks ties), which makes simulations fully
 * deterministic.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace memif::sim {

/**
 * A deterministic discrete-event queue with a virtual clock.
 *
 * The queue is single-threaded by design: all simulated concurrency
 * (kernel threads, interrupt handlers, DMA completions) is expressed as
 * interleaved events on one host thread.
 */
class EventQueue {
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Schedule @p cb to run at absolute virtual time @p when. */
    void schedule_at(SimTime when, Callback cb);

    /** Schedule @p cb to run @p delay after the current time. */
    void schedule_after(Duration delay, Callback cb);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Run the single earliest event, advancing the clock to its timestamp.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run events until the queue drains.
     * @return the number of events executed.
     */
    std::uint64_t run();

    /**
     * Run events with timestamps <= @p deadline; the clock ends at
     * min(deadline, time of last event) and never goes backwards.
     * @return the number of events executed.
     */
    std::uint64_t run_until(SimTime deadline);

    /** Total events executed since construction. */
    std::uint64_t events_executed() const { return executed_; }

  private:
    struct Event {
        SimTime when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace memif::sim
