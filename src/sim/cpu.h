/**
 * @file
 * CPU-time accounting for the simulated machine.
 *
 * Every modelled CPU cost is charged to a (context, cost-center) pair:
 * the context says *where* the cycles burn (user code, syscall path,
 * interrupt handler, kernel thread) and the cost center says *what for*
 * (the operations of Table 1 in the paper: Prep, Remap, DMA config, byte
 * copy, Release, Notify, plus interface costs). Figure 6's time breakdown
 * and CPU-usage lines are produced directly from these counters.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/event_queue.h"
#include "sim/task.h"
#include "sim/types.h"

namespace memif::sim {

/** Which execution context burns the cycles. */
enum class ExecContext : std::uint8_t {
    kUser = 0,     ///< application code (incl. the memif user library)
    kSyscall,      ///< kernel code running in the caller's process context
    kIrq,          ///< interrupt handler
    kKthread,      ///< kernel worker thread
    kCount,
};

/** What the cycles are spent on; mirrors Table 1 of the paper. */
enum class Op : std::uint8_t {
    kPrep = 0,     ///< op 1: page lookup / request validation
    kRemap,        ///< op 2: page allocation + PTE replace + TLB flush
    kDmaConfig,    ///< op 3: scatter-gather assembly + descriptor writes
    kCopy,         ///< CPU byte copy (baseline only; DMA time is not CPU)
    kRelease,      ///< op 4: PTE finalize + old-page free (+ TLB flush)
    kNotify,       ///< op 5: completion delivery
    kSyscall,      ///< user/kernel crossing cost
    kQueue,        ///< lock-free queue manipulation
    kSched,        ///< kthread wakeup / context switching
    kOther,        ///< anything else
    kCount,
};

/** Human-readable name for a context. */
std::string_view to_string(ExecContext c);

/** Human-readable name for a cost center. */
std::string_view to_string(Op op);

/**
 * Accumulated CPU time split by context and by cost center.
 *
 * Copyable: snapshot before/after an experiment and subtract to get the
 * cost of exactly that experiment.
 */
struct CpuAccounting {
    std::array<Duration, static_cast<std::size_t>(ExecContext::kCount)>
        by_context{};
    std::array<Duration, static_cast<std::size_t>(Op::kCount)> by_op{};
    Duration total = 0;

    void
    charge(ExecContext ctx, Op op, Duration d)
    {
        by_context[static_cast<std::size_t>(ctx)] += d;
        by_op[static_cast<std::size_t>(op)] += d;
        total += d;
    }

    Duration
    context(ExecContext ctx) const
    {
        return by_context[static_cast<std::size_t>(ctx)];
    }

    Duration op(Op o) const { return by_op[static_cast<std::size_t>(o)]; }

    void reset() { *this = CpuAccounting{}; }

    /** Element-wise difference (this - earlier snapshot). */
    CpuAccounting since(const CpuAccounting &earlier) const;
};

/**
 * The simulated CPU complex: an event queue plus accounting.
 *
 * busy() both advances virtual time and charges the duration as CPU-busy;
 * charge() accounts time that was already spanned by some other await
 * (e.g. CPU polling while a DMA completes).
 *
 * By default the contexts advance independently (the accounting view of
 * Figure 6, where interrupt work overlaps kernel-thread work on the
 * four A15 cores). With @ref set_single_driver_core the kernel-side
 * contexts (syscall, interrupt, kernel thread) instead contend for ONE
 * core timeline: a busy() that finds the driver core occupied queues
 * behind the earlier work, exactly as a completion interrupt preempts
 * the kernel thread on the core it is pinned to. That is the regime in
 * which per-request completion overhead sits on the critical path — the
 * small-request streams interrupt moderation is built for.
 */
class Cpu {
  public:
    explicit Cpu(EventQueue &eq, unsigned num_cores = 4)
        : eq_(eq), num_cores_(num_cores)
    {
    }
    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    EventQueue &event_queue() { return eq_; }
    unsigned num_cores() const { return num_cores_; }

    /** Serialize kernel-context busy time on one driver core (off by
     *  default so every paper-reproduction figure keeps its shape). */
    void set_single_driver_core(bool on) { single_driver_core_ = on; }
    bool single_driver_core() const { return single_driver_core_; }

    /** Time at which the driver core finishes its queued work (only
     *  meaningful under the single-driver-core model). */
    SimTime driver_busy_until() const { return driver_busy_until_; }

    /** Awaitable: spend @p d of CPU time in @p ctx doing @p op. */
    Delay
    busy(ExecContext ctx, Op op, Duration d)
    {
        acct_.charge(ctx, op, d);
        if (single_driver_core_ && ctx != ExecContext::kUser) {
            // Queue behind whatever the driver core is already running;
            // the awaited delay covers queueing + service.
            const SimTime now = eq_.now();
            const SimTime start =
                driver_busy_until_ > now ? driver_busy_until_ : now;
            driver_busy_until_ = start + d;
            return Delay{eq_, driver_busy_until_ - now};
        }
        return Delay{eq_, d};
    }

    /** Account CPU time without suspending (time already elapsed). */
    void
    charge(ExecContext ctx, Op op, Duration d)
    {
        acct_.charge(ctx, op, d);
        if (single_driver_core_ && ctx != ExecContext::kUser) {
            // The work happened now; later busy() calls queue behind it.
            const SimTime now = eq_.now();
            const SimTime start =
                driver_busy_until_ > now ? driver_busy_until_ : now;
            driver_busy_until_ = start + d;
        }
    }

    const CpuAccounting &accounting() const { return acct_; }
    CpuAccounting snapshot() const { return acct_; }
    void reset_accounting() { acct_.reset(); }

  private:
    EventQueue &eq_;
    unsigned num_cores_;
    bool single_driver_core_ = false;
    SimTime driver_busy_until_ = 0;
    CpuAccounting acct_;
};

}  // namespace memif::sim
