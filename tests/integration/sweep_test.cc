/**
 * @file
 * Parameterized end-to-end property sweep: for every (operation x page
 * size x request size) combination, a stream of memif requests must
 * preserve data byte-for-byte, place pages on the right node, leak no
 * physical frames, and leave the instance idle.
 */
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/random.h"

namespace memif::core {
namespace {

using Param = std::tuple<MovOp, vm::PageSize, std::uint32_t /*pages*/,
                         std::uint32_t /*requests*/>;

class MoveSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MoveSweep, StreamPreservesEverything)
{
    const auto [op, psize, pages, requests] = GetParam();
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifDevice dev(kernel, proc);
    MemifUser user(dev);

    const std::uint64_t pb = vm::page_bytes(psize);
    const std::uint64_t req_bytes = pb * pages;

    // Region(s): sources in slow memory with a per-request pattern.
    const vm::VAddr src = proc.mmap(req_bytes * requests, psize);
    ASSERT_NE(src, 0u);
    sim::Rng rng(static_cast<std::uint64_t>(pages) * 1315423911u + requests);
    std::vector<std::uint8_t> pattern(req_bytes);
    std::vector<std::vector<std::uint8_t>> patterns;
    for (std::uint32_t r = 0; r < requests; ++r) {
        for (auto &b : pattern)
            b = static_cast<std::uint8_t>(rng.next());
        proc.as().write(src + r * req_bytes, pattern.data(), req_bytes);
        patterns.push_back(pattern);
    }

    vm::VAddr dst = 0;
    if (op == MovOp::kReplicate) {
        dst = proc.mmap(req_bytes * requests, psize, kernel.fast_node());
        ASSERT_NE(dst, 0u);
    }

    const std::uint64_t slow_free0 =
        kernel.phys().node(kernel.slow_node()).free_frames();
    const std::uint64_t fast_free0 =
        kernel.phys().node(kernel.fast_node()).free_frames();

    auto app = [&]() -> sim::Task {
        for (std::uint32_t r = 0; r < requests; ++r) {
            const std::uint32_t idx = user.alloc_request();
            EXPECT_NE(idx, kNoRequest);
            MovReq &req = user.request(idx);
            req.op = op;
            req.src_base = src + r * req_bytes;
            req.num_pages = pages;
            if (op == MovOp::kReplicate)
                req.dst_base = dst + r * req_bytes;
            else
                req.dst_node = kernel.fast_node();
            req.user_tag = r;
            co_await user.submit(idx);
        }
        std::uint32_t completed = 0;
        while (completed < requests) {
            const std::uint32_t idx = user.retrieve_completed();
            if (idx == kNoRequest) {
                co_await user.poll();
                continue;
            }
            EXPECT_TRUE(user.request(idx).succeeded())
                << "request " << user.request(idx).user_tag << " error "
                << static_cast<unsigned>(user.request(idx).error);
            user.free_request(idx);
            ++completed;
        }
    };
    auto task = app();
    kernel.run();
    ASSERT_TRUE(task.done());

    // Data integrity on the moved side.
    std::vector<std::uint8_t> got(req_bytes);
    for (std::uint32_t r = 0; r < requests; ++r) {
        const vm::VAddr base =
            (op == MovOp::kReplicate ? dst : src) + r * req_bytes;
        ASSERT_TRUE(proc.as().read(base, got.data(), req_bytes));
        ASSERT_EQ(got, patterns[r]) << "request " << r;
    }

    // Placement + frame accounting.
    if (op == MovOp::kMigrate) {
        vm::Vma *vma = proc.as().find_vma(src);
        for (std::uint64_t p = 0; p < vma->num_pages(); ++p) {
            const vm::Pte pte = vma->pte(p);
            EXPECT_TRUE(pte.present);
            EXPECT_FALSE(pte.young);
            EXPECT_EQ(kernel.phys().node_of(pte.pfn), kernel.fast_node());
        }
        // Every source frame was freed; every destination frame came
        // from the fast node.
        EXPECT_EQ(kernel.phys().node(kernel.slow_node()).free_frames(),
                  slow_free0 + requests * pages * vm::frames_per_page(psize));
        EXPECT_EQ(kernel.phys().node(kernel.fast_node()).free_frames(),
                  fast_free0 - requests * pages * vm::frames_per_page(psize));
    } else {
        EXPECT_EQ(kernel.phys().node(kernel.slow_node()).free_frames(),
                  slow_free0);
        EXPECT_EQ(kernel.phys().node(kernel.fast_node()).free_frames(),
                  fast_free0);
    }
    EXPECT_TRUE(dev.idle());
    EXPECT_EQ(dev.stats().requests_completed, requests);
}

INSTANTIATE_TEST_SUITE_P(
    SmallPages, MoveSweep,
    ::testing::Combine(::testing::Values(MovOp::kReplicate, MovOp::kMigrate),
                       ::testing::Values(vm::PageSize::k4K),
                       ::testing::Values(1u, 3u, 16u, 64u),
                       ::testing::Values(1u, 7u)));

INSTANTIATE_TEST_SUITE_P(
    MediumPages, MoveSweep,
    ::testing::Combine(::testing::Values(MovOp::kReplicate, MovOp::kMigrate),
                       ::testing::Values(vm::PageSize::k64K),
                       ::testing::Values(1u, 8u, 16u),
                       ::testing::Values(1u, 4u)));

INSTANTIATE_TEST_SUITE_P(
    LargePages, MoveSweep,
    ::testing::Combine(::testing::Values(MovOp::kReplicate, MovOp::kMigrate),
                       ::testing::Values(vm::PageSize::k2M),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(1u)));

}  // namespace
}  // namespace memif::core
