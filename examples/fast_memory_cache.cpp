/**
 * @file
 * Automatic fast-memory management (the paper's §6.7 future work):
 * a phase-based application works over four 2 MB data sets but the
 * manager's SRAM budget only holds two — regions are migrated in on
 * demand and the least recently used ones are swapped back out, all
 * through asynchronous memif migrations.
 *
 * Run: build/examples/fast_memory_cache
 */
#include <cstdio>
#include <vector>

#include "os/kernel.h"
#include "os/process.h"
#include "runtime/fast_memory.h"
#include "sim/types.h"

using namespace memif;

int
main()
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    runtime::FastMemoryManager mgr(kernel, proc, /*budget=*/4ull << 20);

    constexpr unsigned kSets = 4;
    constexpr std::uint64_t kSetBytes = 2ull << 20;
    std::vector<vm::VAddr> sets;
    for (unsigned s = 0; s < kSets; ++s) {
        const vm::VAddr va = proc.mmap(kSetBytes, vm::PageSize::k4K);
        std::vector<std::uint8_t> data(kSetBytes,
                                       static_cast<std::uint8_t>(0x20 + s));
        proc.as().write(va, data.data(), data.size());
        sets.push_back(va);
    }

    // Phase schedule: A B A C D A B (locality on A).
    const unsigned schedule[] = {0, 1, 0, 2, 3, 0, 1};

    auto app = [&]() -> sim::Task {
        for (const unsigned s : schedule) {
            bool ok = false;
            const sim::SimTime before = kernel.eq().now();
            co_await mgr.make_resident(sets[s], kSetBytes, &ok);
            const double wait_us = sim::to_us(kernel.eq().now() - before);
            std::printf("phase on set %c: %-8s (%7.1f us to residency, "
                        "%llu KB resident)\n",
                        'A' + static_cast<char>(s),
                        ok ? (wait_us < 1.0 ? "hit" : "admitted") : "FAILED",
                        wait_us,
                        static_cast<unsigned long long>(
                            mgr.resident_bytes() >> 10));
            // Compute over the (now fast) data for a while.
            mgr.touch_region(sets[s]);
            co_await kernel.cpu().busy(sim::ExecContext::kUser,
                                       sim::Op::kOther,
                                       sim::microseconds(500));
        }
    };
    kernel.spawn(app());
    kernel.run();

    const runtime::FastMemoryStats &st = mgr.stats();
    std::printf("\nrequests %llu | hits %llu | admissions %llu | "
                "evictions %llu | migrated %llu MB\n",
                static_cast<unsigned long long>(st.residency_requests),
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.admissions),
                static_cast<unsigned long long>(st.evictions),
                static_cast<unsigned long long>(st.bytes_migrated >> 20));

    // Verify every data set survived the shuffling.
    bool all_ok = true;
    std::vector<std::uint8_t> got(kSetBytes);
    for (unsigned s = 0; s < kSets; ++s) {
        proc.as().read(sets[s], got.data(), got.size());
        for (const std::uint8_t b : got)
            if (b != static_cast<std::uint8_t>(0x20 + s)) {
                all_ok = false;
                break;
            }
    }
    std::printf("data integrity after all swaps: %s\n",
                all_ok ? "ok" : "CORRUPTED");
    return all_ok ? 0 : 1;
}
