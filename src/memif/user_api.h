/**
 * @file
 * The memif user library (paper §4.1, Fig. 2): thin wrappers around the
 * shared lock-free queues plus the one non-trivial piece, the
 * SubmitRequest() red-blue flush protocol (§4.4).
 *
 * Everything here runs in application context. Calls never block:
 * AllocRequest/RetrieveCompleted return "nothing available" rather than
 * waiting, SubmitRequest returns as soon as the request is visible to
 * the kernel (issuing at most one kick ioctl per idle period), and
 * poll() is the explicit way to sleep for notifications.
 *
 * Typical use (mirrors the paper's Figure 2):
 *
 *     MemifUser mif(device);                       // MemifOpen
 *     std::uint32_t r = mif.alloc_request();       // AllocRequest
 *     MovReq &req = mif.request(r);
 *     req.op = MovOp::kMigrate; req.src_base = ...;
 *     co_await mif.submit(r);                      // SubmitRequest
 *     ... compute ...
 *     std::uint32_t done = mif.retrieve_completed();
 *     if (done == kNoRequest) co_await mif.poll(); // sleep for events
 */
#pragma once

#include <cstdint>
#include <vector>

#include "lockfree/link.h"
#include "memif/device.h"
#include "memif/mov_req.h"
#include "sim/task.h"

namespace memif::core {

/** Returned when no request / completion is available. */
inline constexpr std::uint32_t kNoRequest = lockfree::kNil;

/** Library-side counters. */
struct UserStats {
    std::uint64_t submits = 0;
    std::uint64_t kicks = 0;         ///< ioctls actually issued
    std::uint64_t flush_moves = 0;   ///< staging->submission transfers
    std::uint64_t completions = 0;
    std::uint64_t polls = 0;
    std::uint64_t batch_submits = 0; ///< submit_many() calls
    std::uint64_t rejected = 0;      ///< submits refused at admission
};

/**
 * One application's handle on a memif instance ("MemifOpen").
 *
 * Multiple MemifUser objects (one per application thread) may wrap the
 * same device; the shared queues make that safe by construction (§3).
 */
class MemifUser {
  public:
    /**
     * @param cpu_id simulated CPU this handle submits from. With
     *        per-CPU rings enabled it selects the submission ring (and
     *        the device's flight-table shard); with the classic shared
     *        path it feeds the contention model.
     * @param asid tenant this handle submits as (multi_tenant lever;
     *        obtain via MemifDevice::register_tenant). 0 — the
     *        default — is the device's owning process.
     */
    explicit MemifUser(MemifDevice &device, std::uint32_t cpu_id = 0,
                       std::uint32_t asid = 0)
        : dev_(device), region_(device.region()), cpu_id_(cpu_id),
          asid_(asid)
    {
    }

    MemifDevice &device() { return dev_; }
    std::uint32_t cpu_id() const { return cpu_id_; }
    std::uint32_t asid() const { return asid_; }

    /**
     * AllocRequest(): take a blank mov_req off the free list.
     * @return its index, or kNoRequest when the instance is at capacity.
     */
    std::uint32_t alloc_request();

    /** Access a request slot by index. */
    MovReq &request(std::uint32_t idx) { return region_.request(idx); }

    /** FreeRequest(): return a consumed request to the free list. */
    void free_request(std::uint32_t idx);

    /**
     * SubmitRequest(): make the request visible to the kernel. The
     * caller is oblivious to whether a syscall happens; the library
     * decides via the staging queue's color (§4.4).
     *
     * @param kicked (optional) set to whether this call issued the ioctl
     */
    sim::Task submit(std::uint32_t idx, bool *kicked = nullptr);

    /**
     * Batch SubmitRequest(): deposit @p idxs in the staging queue in
     * order, then run the §4.4 flush protocol at most ONCE for the
     * whole batch — one syscall crossing and one kernel-thread wakeup
     * amortized over N requests, instead of up to one kick each.
     * Equivalent to N submit() calls for every observable outcome; only
     * the interface cost differs.
     */
    sim::Task submit_many(const std::vector<std::uint32_t> &idxs,
                          bool *kicked = nullptr);

    /**
     * RetrieveCompleted(): non-blocking; one completed request's index
     * or kNoRequest. Successful completions are drained before failed
     * ones; inspect MovReq::load_status()/error to distinguish.
     */
    std::uint32_t retrieve_completed();

    /**
     * poll(): sleep until at least one completion notification is
     * pending (the device file's poll() support, §4.1).
     */
    sim::Task poll();

    const UserStats &stats() const { return stats_; }

  private:
    /** Charge one user-side lock-free queue operation. */
    void charge_queue_op(std::uint64_t n = 1);

    /** Ring this handle deposits into (rings enabled only). */
    std::uint32_t my_ring() const { return cpu_id_ % region_.num_rings(); }

    MemifDevice &dev_;
    SharedRegion &region_;
    std::uint32_t cpu_id_ = 0;
    std::uint32_t asid_ = 0;
    UserStats stats_;
};

}  // namespace memif::core
