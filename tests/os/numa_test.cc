/**
 * @file
 * Tests for the NUMA policy layer: mbind-style placement, move_pages
 * per-page statuses, and numastat accounting.
 */
#include "os/numa.h"

#include <gtest/gtest.h>

#include <vector>

#include "os/kernel.h"
#include "os/process.h"

namespace memif::os {
namespace {

mem::NodeId
node_of_page(Process &p, vm::VAddr base, std::uint64_t page)
{
    const vm::Vma *vma = p.as().find_vma(base);
    return p.kernel().phys().node_of(vma->pte(page).pfn);
}

TEST(Numa, DefaultPolicyUsesTheCpuLocalSlowNode)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base =
        numa_mmap(p, 8 * 4096, vm::PageSize::k4K, MemPolicy{});
    ASSERT_NE(base, 0u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(node_of_page(p, base, i), k.slow_node());
}

TEST(Numa, BindToFastNodeHonoursAndFails)
{
    Kernel k;
    Process &p = k.create_process();
    const MemPolicy fast_bind{NumaPolicy::kBind, {k.fast_node()}};
    const vm::VAddr base =
        numa_mmap(p, 1 << 20, vm::PageSize::k4K, fast_bind);
    ASSERT_NE(base, 0u);
    EXPECT_EQ(node_of_page(p, base, 0), k.fast_node());
    // Binding 8 MB to the 6 MB SRAM must fail (and not leak).
    const std::uint64_t free_before =
        k.phys().node(k.fast_node()).free_frames();
    EXPECT_EQ(numa_mmap(p, 8ull << 20, vm::PageSize::k4K, fast_bind), 0u);
    EXPECT_EQ(k.phys().node(k.fast_node()).free_frames(), free_before);
}

TEST(Numa, PreferredFallsBackWhenExhausted)
{
    Kernel k;
    Process &p = k.create_process();
    const MemPolicy prefer_fast{NumaPolicy::kPreferred, {k.fast_node()}};
    // 8 MB preferred-fast: the first ~6 MB land on SRAM, the rest
    // falls back to DDR instead of failing.
    const vm::VAddr base =
        numa_mmap(p, 8ull << 20, vm::PageSize::k4K, prefer_fast);
    ASSERT_NE(base, 0u);
    EXPECT_EQ(node_of_page(p, base, 0), k.fast_node());
    EXPECT_EQ(node_of_page(p, base, (8ull << 20) / 4096 - 1),
              k.slow_node());
}

TEST(Numa, InterleaveAlternatesNodes)
{
    Kernel k;
    Process &p = k.create_process();
    const MemPolicy inter{NumaPolicy::kInterleave,
                          {k.slow_node(), k.fast_node()}};
    const vm::VAddr base = numa_mmap(p, 8 * 4096, vm::PageSize::k4K, inter);
    ASSERT_NE(base, 0u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(node_of_page(p, base, i),
                  i % 2 == 0 ? k.slow_node() : k.fast_node());
}

TEST(Numa, RejectsBadPolicies)
{
    Kernel k;
    Process &p = k.create_process();
    EXPECT_EQ(numa_mmap(p, 4096, vm::PageSize::k4K,
                        MemPolicy{NumaPolicy::kBind, {}}),
              0u);
    EXPECT_EQ(numa_mmap(p, 4096, vm::PageSize::k4K,
                        MemPolicy{NumaPolicy::kBind, {99}}),
              0u);
}

TEST(Numa, MovePagesReportsPerPageStatus)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(4 * 4096, vm::PageSize::k4K);
    const vm::VAddr fast_base =
        p.mmap(4096, vm::PageSize::k4K, k.fast_node());

    // A shared page (to trigger kPageBusy).
    Process &q = k.create_process();
    const vm::VAddr shared = p.mmap(4096, vm::PageSize::k4K);
    q.as().mmap_shared(*p.as().find_vma(shared));

    const std::vector<vm::VAddr> pages{
        base,                // movable
        base + 4096,         // movable
        fast_base,           // already on target
        0xDEAD0000,          // not mapped
        shared,              // shared -> busy
    };
    const std::vector<mem::NodeId> targets(pages.size(), k.fast_node());
    std::vector<int> status;
    k.spawn(move_pages(p, pages, targets, &status));
    k.run();

    ASSERT_EQ(status.size(), pages.size());
    EXPECT_EQ(status[0], kPageMoved);
    EXPECT_EQ(status[1], kPageMoved);
    EXPECT_EQ(status[2], kPageAlready);
    EXPECT_EQ(status[3], kPageNoEnt);
    EXPECT_EQ(status[4], kPageBusy);
    EXPECT_EQ(node_of_page(p, base, 0), k.fast_node());
    EXPECT_EQ(node_of_page(p, base, 1), k.fast_node());
    EXPECT_EQ(node_of_page(p, base, 2), k.slow_node());  // untouched
}

TEST(Numa, MovePagesReportsExhaustion)
{
    Kernel k;
    Process &p = k.create_process();
    // Fill the fast node completely, then ask for one more page.
    const vm::VAddr hog = p.mmap(6ull << 20, vm::PageSize::k4K,
                                 k.fast_node());
    ASSERT_NE(hog, 0u);
    const vm::VAddr base = p.mmap(4096, vm::PageSize::k4K);
    std::vector<int> status;
    k.spawn(move_pages(p, {base}, {k.fast_node()}, &status));
    k.run();
    ASSERT_EQ(status.size(), 1u);
    EXPECT_EQ(status[0], kPageNoMem);
}

TEST(Numa, NumaStatTracksUsage)
{
    Kernel k;
    Process &p = k.create_process();
    const std::vector<NumaNodeStat> before = numa_stat(k);
    ASSERT_EQ(before.size(), 2u);
    EXPECT_EQ(before[k.fast_node()].used_bytes, 0u);
    EXPECT_TRUE(before[k.fast_node()].is_fast);
    EXPECT_EQ(before[k.fast_node()].total_bytes, 6ull << 20);

    p.mmap(1 << 20, vm::PageSize::k4K, k.fast_node());
    const std::vector<NumaNodeStat> after = numa_stat(k);
    EXPECT_EQ(after[k.fast_node()].used_bytes, 1u << 20);
    EXPECT_EQ(after[k.fast_node()].free_bytes, 5u << 20);
}

}  // namespace
}  // namespace memif::os
