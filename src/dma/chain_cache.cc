#include "dma/chain_cache.h"

#include "sim/log.h"

namespace memif::dma {

ChainCache::ChainCache(DescriptorRam &ram, bool enabled)
    : ram_(ram), enabled_(enabled)
{
    free_.reserve(ram_.size());
    // Hand out low indices first (purely cosmetic determinism).
    for (std::uint32_t i = ram_.size(); i > 0; --i)
        free_.push_back(static_cast<DescIndex>(i - 1));
    shadow_links_.assign(ram_.size(), kNullLink);
}

void
ChainCache::ensure_link(DescIndex idx, DescIndex to)
{
    if (shadow_links_[idx] == to) return;
    ram_.rewrite_link(idx, to);
    shadow_links_[idx] = to;
    ++stats_.link_fixups;
}

ChainLease
ChainCache::acquire(std::uint32_t count, std::uint64_t chunk_bytes)
{
    MEMIF_ASSERT(count > 0 && count <= ram_.size(),
                 "lease of %u descriptors out of range", count);
    MEMIF_ASSERT(count <= available(),
                 "lease exceeds available PaRAM capacity; callers must "
                 "wait on DmaDriver::capacity_wait()");
    ChainLease lease;
    lease.chunk_bytes = chunk_bytes;
    lease.descs.reserve(count);
    std::uint32_t need = count;

    if (enabled_) {
        auto it = chains_.find(chunk_bytes);
        while (need > 0 && it != chains_.end() && !it->second.empty()) {
            std::vector<DescIndex> &chain = it->second.front();
            if (chain.size() <= need) {
                need -= static_cast<std::uint32_t>(chain.size());
                lease.reused += static_cast<std::uint32_t>(chain.size());
                lease.descs.insert(lease.descs.end(), chain.begin(),
                                   chain.end());
                it->second.pop_front();
            } else {
                // Split: take a prefix, keep the suffix cached.
                lease.descs.insert(lease.descs.end(), chain.begin(),
                                   chain.begin() + need);
                chain.erase(chain.begin(), chain.begin() + need);
                lease.reused += need;
                need = 0;
            }
        }
    }

    while (need > 0) {
        if (free_.empty()) evict_one();
        lease.descs.push_back(free_.back());
        free_.pop_back();
        --need;
    }

    stats_.descs_reused += lease.reused;
    stats_.descs_fresh += lease.fresh();
    outstanding_ += lease.size();

    // Make the lease's links consistent. Reused entries pay a real link
    // rewrite when their link changed; fresh entries get the link as
    // part of the full 12-parameter write the driver is about to do, so
    // only the shadow is updated.
    for (std::uint32_t i = 0; i < lease.size(); ++i) {
        const DescIndex next =
            (i + 1 < lease.size()) ? lease.descs[i + 1] : kNullLink;
        if (i < lease.reused)
            ensure_link(lease.descs[i], next);
        else
            shadow_links_[lease.descs[i]] = next;
    }
    return lease;
}

ChainLease
ChainCache::acquire_shape(std::vector<std::uint64_t> chunk_sizes)
{
    MEMIF_ASSERT(!chunk_sizes.empty() && chunk_sizes.size() <= ram_.size(),
                 "shape lease of %zu descriptors out of range",
                 chunk_sizes.size());
    bool uniform = true;
    for (const std::uint64_t s : chunk_sizes)
        uniform = uniform && s == chunk_sizes.front();
    if (uniform)
        return acquire(static_cast<std::uint32_t>(chunk_sizes.size()),
                       chunk_sizes.front());

    const auto count = static_cast<std::uint32_t>(chunk_sizes.size());
    MEMIF_ASSERT(count <= available(),
                 "lease exceeds available PaRAM capacity; callers must "
                 "wait on DmaDriver::capacity_wait()");
    ChainLease lease;
    lease.chunk_sizes = std::move(chunk_sizes);

    if (enabled_) {
        auto it = shaped_.find(lease.chunk_sizes);
        if (it != shaped_.end() && !it->second.empty()) {
            lease.descs = std::move(it->second.front());
            it->second.pop_front();
            if (it->second.empty()) shaped_.erase(it);
            lease.reused = count;
        }
    }
    while (lease.descs.size() < count) {
        if (free_.empty()) evict_one();
        lease.descs.push_back(free_.back());
        free_.pop_back();
    }

    stats_.descs_reused += lease.reused;
    stats_.descs_fresh += lease.fresh();
    outstanding_ += lease.size();
    for (std::uint32_t i = 0; i < lease.size(); ++i) {
        const DescIndex next =
            (i + 1 < lease.size()) ? lease.descs[i + 1] : kNullLink;
        if (i < lease.reused)
            ensure_link(lease.descs[i], next);
        else
            shadow_links_[lease.descs[i]] = next;
    }
    return lease;
}

void
ChainCache::evict_one()
{
    for (auto &[size, deq] : chains_) {
        if (deq.empty()) continue;
        std::vector<DescIndex> &victim = deq.front();
        free_.insert(free_.end(), victim.begin(), victim.end());
        deq.pop_front();
        ++stats_.evictions;
        return;
    }
    for (auto &[shape, deq] : shaped_) {
        if (deq.empty()) continue;
        std::vector<DescIndex> &victim = deq.front();
        free_.insert(free_.end(), victim.begin(), victim.end());
        deq.pop_front();
        ++stats_.evictions;
        return;
    }
    MEMIF_PANIC("PaRAM exhausted: too many outstanding DMA leases");
}

void
ChainCache::release(ChainLease lease)
{
    if (lease.descs.empty()) return;
    MEMIF_ASSERT(outstanding_ >= lease.size());
    outstanding_ -= lease.size();
    if (!enabled_) {
        free_.insert(free_.end(), lease.descs.begin(), lease.descs.end());
        return;
    }
    if (!lease.chunk_sizes.empty()) {
        shaped_[std::move(lease.chunk_sizes)].push_back(
            std::move(lease.descs));
        return;
    }
    chains_[lease.chunk_bytes].push_back(std::move(lease.descs));
}

}  // namespace memif::dma
