/**
 * @file
 * Synchronization primitives for simulated tasks.
 *
 *  - SimEvent:  a level-triggered completion flag (like a kernel completion
 *               or an eventfd). Tasks await it; set() wakes all waiters.
 *  - WaitQueue: an edge-triggered wait list (like a kernel wait queue).
 *               Tasks sleep on it; notify_one()/notify_all() wake them.
 *
 * All primitives are single-(host-)threaded and interact only with the
 * EventQueue; wakeups are delivered as zero-delay events so that the waker
 * finishes its current step before any woken task runs.
 */
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/task.h"
#include "sim/types.h"

namespace memif::sim {

/**
 * Level-triggered event. wait() completes immediately when already set;
 * reset() rearms it.
 */
class SimEvent {
  public:
    explicit SimEvent(EventQueue &eq) : eq_(eq) {}
    SimEvent(const SimEvent &) = delete;
    SimEvent &operator=(const SimEvent &) = delete;

    /** True while the event is signalled. */
    bool is_set() const { return set_; }

    /** Signal the event, waking every waiter. */
    void
    set()
    {
        set_ = true;
        wake_all();
    }

    /** Clear the signal; future wait()s block again. */
    void reset() { set_ = false; }

    struct Awaiter {
        SimEvent &ev;
        bool await_ready() const noexcept { return ev.set_; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            ev.waiters_.push_back(
                Waiter{h, detail::liveness_of(h)});
        }
        void await_resume() const noexcept {}
    };

    /** Awaitable: suspend until the event is set. */
    Awaiter wait() { return Awaiter{*this}; }

    /** Number of tasks currently blocked. */
    std::size_t waiter_count() const { return waiters_.size(); }

  private:
    friend struct Awaiter;
    struct Waiter {
        std::coroutine_handle<> handle;
        std::weak_ptr<bool> alive;
    };

    void
    wake_all()
    {
        // Swap out first: a woken task may wait() again immediately.
        std::deque<Waiter> ws;
        ws.swap(waiters_);
        for (Waiter &w : ws) {
            eq_.schedule_after(0, [h = w.handle, alive = std::move(w.alive)] {
                if (alive.lock()) h.resume();
            });
        }
    }

    EventQueue &eq_;
    bool set_ = false;
    std::deque<Waiter> waiters_;
};

/**
 * Edge-triggered wait list. A wait() always blocks until a subsequent
 * notify; there is no memory. Use it for "sleep until kicked" patterns
 * such as kernel threads.
 */
class WaitQueue {
  public:
    explicit WaitQueue(EventQueue &eq) : eq_(eq) {}
    WaitQueue(const WaitQueue &) = delete;
    WaitQueue &operator=(const WaitQueue &) = delete;

    struct Awaiter {
        WaitQueue &wq;
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            wq.waiters_.push_back(Waiter{h, detail::liveness_of(h)});
        }
        void await_resume() const noexcept {}
    };

    /** Awaitable: sleep until notified. */
    Awaiter wait() { return Awaiter{*this}; }

    /** Wake the longest-sleeping waiter, if any. @return true if woken. */
    bool
    notify_one()
    {
        while (!waiters_.empty()) {
            Waiter w = waiters_.front();
            waiters_.pop_front();
            if (w.alive.expired()) continue;  // task died while asleep
            eq_.schedule_after(0, [h = w.handle, alive = std::move(w.alive)] {
                if (alive.lock()) h.resume();
            });
            return true;
        }
        return false;
    }

    /** Wake all waiters. @return the number woken. */
    std::size_t
    notify_all()
    {
        std::size_t n = 0;
        while (notify_one()) ++n;
        return n;
    }

    /** Number of tasks currently asleep. */
    std::size_t waiter_count() const { return waiters_.size(); }

  private:
    friend struct Awaiter;
    struct Waiter {
        std::coroutine_handle<> handle;
        std::weak_ptr<bool> alive;
    };

    EventQueue &eq_;
    std::deque<Waiter> waiters_;
};

/**
 * Wait until ANY of @p events is set — the poll(2)/select(2) analogue
 * the paper's Figure 2 relies on ("applications can blocking wait for
 * memif notifications and other types of I/O events at the same
 * time"). Relay tasks guard each event; when the first fires, the
 * others' pending wakeups are disarmed by task-liveness guards.
 *
 * @return (via out param) the index of a set event.
 */
inline Task
wait_any(EventQueue &eq, std::vector<SimEvent *> events,
         std::size_t *which = nullptr)
{
    MEMIF_ASSERT(!events.empty(), "wait_any on nothing");
    SimEvent any(eq);
    auto relay = [](SimEvent &event, SimEvent &any_event) -> Task {
        co_await event.wait();
        any_event.set();
    };
    std::vector<Task> relays;
    relays.reserve(events.size());
    for (SimEvent *e : events) relays.push_back(relay(*e, any));
    co_await any.wait();
    if (which) {
        *which = 0;
        for (std::size_t i = 0; i < events.size(); ++i)
            if (events[i]->is_set()) {
                *which = i;
                break;
            }
    }
    // relays destroyed here; unsignalled events drop their waiters.
}

/**
 * Counting semaphore for simulated tasks (used e.g. to model a bounded
 * number of DMA channels).
 */
class SimSemaphore {
  public:
    SimSemaphore(EventQueue &eq, std::uint32_t initial)
        : wq_(eq), count_(initial)
    {
    }

    /** Awaitable acquire: decrements the count, sleeping while it is 0. */
    Task
    acquire()
    {
        while (count_ == 0) co_await wq_.wait();
        --count_;
    }

    /** Release one unit and wake a waiter. */
    void
    release()
    {
        ++count_;
        wq_.notify_one();
    }

    std::uint32_t available() const { return count_; }

  private:
    WaitQueue wq_;
    std::uint32_t count_;
};

}  // namespace memif::sim
