/**
 * @file
 * Tests of the three §5.2 race policies under a CPU access that lands
 * mid-migration: proceed-and-fail (detect), proceed-and-recover, and
 * Linux-style prevention.
 */
#include <gtest/gtest.h>

#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::core {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(RacePolicy policy)
        : proc(kernel.create_process()),
          dev(kernel, proc,
              MemifConfig{.capacity = 64,
                          .gang_lookup = true,
                          .race_policy = policy,
                          .poll_threshold_bytes = 512 * 1024}),
          user(dev)
    {
    }

    ~Fixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;

    std::uint32_t
    submit_migration(vm::VAddr src, std::uint32_t npages)
    {
        const std::uint32_t idx = user.alloc_request();
        MovReq &req = user.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = src;
        req.num_pages = npages;
        req.dst_node = kernel.fast_node();
        kernel.spawn(user.submit(idx));
        return idx;
    }
};

/** Pick a touch time that lands inside the DMA window of a 64-page
 *  migration (remap of 64 pages alone takes ~200 us). */
constexpr sim::SimTime kMidFlight = sim::microseconds(300);

TEST(RaceDetect, TouchDuringDmaFailsTheRequest)
{
    Fixture f(RacePolicy::kDetect);
    const vm::VAddr base = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx = f.submit_migration(base, 64);

    os::TouchOutcome out;
    // NB: the coroutine lambda must outlive its frames, so it lives at
    // test scope and the scheduled callback only spawns it.
    auto toucher = [&]() -> sim::Task {
        co_await f.proc.touch(base + 10 * 4096, true, &out);
    };
    f.kernel.eq().schedule_at(kMidFlight,
                              [&] { f.kernel.spawn(toucher()); });
    f.kernel.run();

    ASSERT_EQ(f.user.retrieve_completed(), idx);
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kRaceDetected);
    EXPECT_EQ(f.user.request(idx).error, MovError::kRace);
    EXPECT_EQ(f.dev.stats().races_detected, 1u);
    // The toucher was never blocked: that is the whole point of
    // detection over prevention.
    EXPECT_EQ(out.blocked, 0u);
}

TEST(RaceDetect, NoTouchNoRace)
{
    Fixture f(RacePolicy::kDetect);
    const vm::VAddr base = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx = f.submit_migration(base, 64);
    f.kernel.run();
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.dev.stats().races_detected, 0u);
}

TEST(RaceDetect, TouchAfterCompletionIsFine)
{
    Fixture f(RacePolicy::kDetect);
    const vm::VAddr base = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx = f.submit_migration(base, 16);
    f.kernel.run();  // completes fully
    os::TouchOutcome out;
    auto toucher = [&]() -> sim::Task {
        co_await f.proc.touch(base, true, &out);
    };
    f.kernel.spawn(toucher());
    f.kernel.run();
    EXPECT_EQ(out.result, vm::AccessResult::kOk);
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
}

TEST(RaceRecover, TouchAbortsAndRestoresOldMapping)
{
    Fixture f(RacePolicy::kRecover);
    const vm::VAddr base = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    std::vector<std::uint8_t> pattern(64 * 4096);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 7);
    ASSERT_TRUE(f.proc.as().write(base, pattern.data(), pattern.size()));

    const std::uint64_t fast_free =
        f.kernel.phys().node(f.kernel.fast_node()).free_frames();
    const std::uint32_t idx = f.submit_migration(base, 64);

    os::TouchOutcome out;
    // NB: the coroutine lambda must outlive its frames, so it lives at
    // test scope and the scheduled callback only spawns it.
    auto toucher = [&]() -> sim::Task {
        co_await f.proc.touch(base + 10 * 4096, true, &out);
    };
    f.kernel.eq().schedule_at(kMidFlight,
                              [&] { f.kernel.spawn(toucher()); });
    f.kernel.run();

    ASSERT_EQ(f.user.retrieve_completed(), idx);
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kAborted);
    EXPECT_EQ(f.user.request(idx).error, MovError::kAborted);
    EXPECT_EQ(f.dev.stats().migrations_aborted, 1u);
    // Old mapping restored: everything still on the slow node, every
    // new page returned, data intact.
    vm::Vma *vma = f.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(f.kernel.phys().node_of(vma->pte(i).pfn),
                  f.kernel.slow_node());
    EXPECT_EQ(f.kernel.phys().node(f.kernel.fast_node()).free_frames(),
              fast_free);
    std::vector<std::uint8_t> readback(pattern.size());
    ASSERT_TRUE(f.proc.as().read(base, readback.data(), readback.size()));
    EXPECT_EQ(readback, pattern);
    // The access itself proceeded on the old page without blocking.
    EXPECT_EQ(out.blocked, 0u);
}

TEST(RaceRecover, CleanMigrationStillSucceeds)
{
    Fixture f(RacePolicy::kRecover);
    const vm::VAddr base = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx = f.submit_migration(base, 32);
    f.kernel.run();
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.dev.stats().migrations_aborted, 0u);
}

TEST(RacePrevent, TouchBlocksUntilRelease)
{
    Fixture f(RacePolicy::kPrevent);
    const vm::VAddr base = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const std::uint32_t idx = f.submit_migration(base, 64);

    os::TouchOutcome out;
    bool touched = false;
    sim::SimTime touched_at = 0;
    auto toucher = [&]() -> sim::Task {
        co_await f.proc.touch(base + 10 * 4096, true, &out);
        touched = true;
        touched_at = f.kernel.eq().now();
    };
    f.kernel.eq().schedule_at(kMidFlight,
                              [&] { f.kernel.spawn(toucher()); });
    f.kernel.run();

    EXPECT_TRUE(touched);
    EXPECT_GE(out.blocked, 1u);  // parked on the migration PTE
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    // The accessor is released at the Release step, which precedes the
    // Notify step by at most the notification cost.
    EXPECT_GE(touched_at + f.kernel.costs().queue_op,
              f.user.request(idx).complete_time);
    EXPECT_GT(touched_at, kMidFlight);
    EXPECT_EQ(f.dev.stats().races_detected, 0u);
}

TEST(RacePrevent, ReleaseRunsInKernelThreadNotIrq)
{
    // The structural consequence of prevention (§5.2/§5.4): Release may
    // not run in the interrupt handler, so the irq defers to the
    // kthread. Detection has no such deferral.
    Fixture prevent(RacePolicy::kPrevent);
    {
        const vm::VAddr base =
            prevent.proc.mmap(170 * 4096, vm::PageSize::k4K);
        prevent.submit_migration(base, 170);  // > 512 KB: irq-driven
        prevent.kernel.run();
        const auto &acct = prevent.kernel.cpu().accounting();
        // All Release work happened in kthread context.
        EXPECT_EQ(acct.context(sim::ExecContext::kIrq),
                  prevent.kernel.costs().irq_overhead +
                      prevent.kernel.costs().kthread_wakeup);
    }
    Fixture detect(RacePolicy::kDetect);
    {
        const vm::VAddr base =
            detect.proc.mmap(170 * 4096, vm::PageSize::k4K);
        detect.submit_migration(base, 170);
        detect.kernel.run();
        const auto &acct = detect.kernel.cpu().accounting();
        // Release ran inside the interrupt handler: irq context time
        // far exceeds the bare overhead.
        EXPECT_GT(acct.context(sim::ExecContext::kIrq),
                  2 * (detect.kernel.costs().irq_overhead +
                       detect.kernel.costs().kthread_wakeup));
    }
}

TEST(RacePrevent, CostsMoreTlbFlushesThanDetect)
{
    auto run = [](RacePolicy policy) -> std::uint64_t {
        Fixture f(policy);
        const vm::VAddr base = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
        f.submit_migration(base, 32);
        f.kernel.run();
        return f.proc.as().stats().tlb_page_flushes;
    };
    // Prevention flushes at Remap AND Release; detection only at Remap
    // (the semi-final PTE never enters the TLB).
    EXPECT_EQ(run(RacePolicy::kPrevent), 64u);
    EXPECT_EQ(run(RacePolicy::kDetect), 32u);
}

}  // namespace
}  // namespace memif::core
