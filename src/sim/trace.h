/**
 * @file
 * Lightweight event tracing for driver-execution timelines.
 *
 * When enabled, subsystems append (time, point, context, request)
 * records; the paper's Figure 5 — one example execution of the memif
 * driver across the syscall, interrupt and kernel-thread paths — is
 * rendered straight from this stream (see examples/driver_timeline).
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <string_view>
#include <vector>

#include "sim/cpu.h"
#include "sim/types.h"

namespace memif::sim {

/** Instrumented moments in the move-request lifecycle. */
enum class TracePoint : std::uint8_t {
    kSubmit = 0,     ///< application enqueued the request
    kKickIoctl,      ///< MOV_ONE syscall entered the kernel
    kServeBegin,     ///< driver starts ops 1-3 for a request
    kPrepDone,       ///< op 1 finished
    kRemapDone,      ///< op 2 finished
    kDmaConfigDone,  ///< op 3 (descriptor programming) finished
    kDmaStart,       ///< transfer triggered
    kDmaComplete,    ///< engine finished moving the bytes
    kIrqEnter,       ///< completion interrupt handler entered
    kReleaseDone,    ///< op 4 finished
    kNotifyDone,     ///< op 5: completion visible to the application
    kKthreadWake,    ///< worker woken
    kKthreadSleep,   ///< worker going idle (staging recolored blue)
    kPolledWait,     ///< worker sleeping for a predicted completion
    kAborted,        ///< recover-policy rollback
    kRaceDetected,   ///< detect-policy CAS failure
    kDmaError,       ///< transfer completed with a TC error
    kWatchdogFire,   ///< watchdog deadline passed without completion irq
    kDmaRetry,       ///< transfer restarted after backoff
    kFallbackCopy,   ///< degraded to the CPU byte-copy path
    kDmaFailed,      ///< unrecoverable DMA failure (rolled back)
};

/** Human-readable name of a trace point. */
std::string_view to_string(TracePoint p);

/** One trace record. */
struct TraceRecord {
    SimTime time = 0;
    TracePoint point = TracePoint::kSubmit;
    ExecContext ctx = ExecContext::kUser;
    /** Request index, or kNoTraceReq for request-less events. */
    std::uint32_t req = kNoTraceReq;

    static constexpr std::uint32_t kNoTraceReq = ~std::uint32_t{0};
};

/** An append-only trace buffer; disabled (and free) by default. */
class Tracer {
  public:
    bool enabled() const { return enabled_; }
    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }

    void
    record(SimTime time, TracePoint point, ExecContext ctx,
           std::uint32_t req = TraceRecord::kNoTraceReq)
    {
        if (!enabled_) return;
        records_.push_back(TraceRecord{time, point, ctx, req});
    }

    const std::vector<TraceRecord> &records() const { return records_; }
    void clear() { records_.clear(); }

    /** Print one line per record ("t=... [ctx] point req=..."). */
    void dump(std::FILE *out) const;

  private:
    bool enabled_ = false;
    std::vector<TraceRecord> records_;
};

}  // namespace memif::sim
