/**
 * @file
 * Minimal logging and error-reporting helpers, modelled on gem5's
 * panic()/fatal()/warn()/inform() conventions.
 *
 *  - panic():  an internal invariant was violated (a bug in this library);
 *              aborts so a debugger or core dump can catch it.
 *  - fatal():  the *user* of the library asked for something impossible
 *              (bad configuration, invalid arguments); exits cleanly.
 *  - warn():   something suspicious but survivable happened.
 *  - inform(): status messages, off by default.
 */
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace memif::sim {

/** Global log verbosity: 0 = warnings only, 1 = inform, 2 = debug. */
int log_level();

/** Set the global log verbosity. */
void set_log_level(int level);

namespace detail {
[[noreturn]] void panic_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatal_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warn_impl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void inform_impl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void debug_impl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
/** Prints the failed condition text (which may itself contain '%'). */
void assert_fail(const char *file, int line, const char *cond);
/** Aborts after an assert_fail, with or without an extra message. */
[[noreturn]] void assert_abort();
[[noreturn]] void assert_abort(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace memif::sim

/** Abort on an internal invariant violation (library bug). */
#define MEMIF_PANIC(...) \
    ::memif::sim::detail::panic_impl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit on an unrecoverable user error (bad config / arguments). */
#define MEMIF_FATAL(...) \
    ::memif::sim::detail::fatal_impl(__FILE__, __LINE__, __VA_ARGS__)

/** Report a survivable anomaly. */
#define MEMIF_WARN(...) ::memif::sim::detail::warn_impl(__VA_ARGS__)

/** Report status (visible at log level >= 1). */
#define MEMIF_INFORM(...) ::memif::sim::detail::inform_impl(__VA_ARGS__)

/** Verbose tracing (visible at log level >= 2). */
#define MEMIF_DEBUG(...) ::memif::sim::detail::debug_impl(__VA_ARGS__)

/**
 * panic() unless @p cond holds. Extra arguments, if given, must start
 * with a string *literal* format (it is concatenated into the message).
 */
#define MEMIF_ASSERT(cond, ...)                                         \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::memif::sim::detail::assert_fail(__FILE__, __LINE__,       \
                                              #cond);                   \
            ::memif::sim::detail::assert_abort(__VA_ARGS__);            \
        }                                                               \
    } while (0)
