#include "mem/buddy.h"

#include "sim/log.h"

namespace memif::mem {

BuddyAllocator::BuddyAllocator(std::uint64_t num_frames)
    : num_frames_(num_frames),
      free_lists_(kMaxOrder + 1),
      allocated_order_(num_frames, 0)
{
    // Seed the free lists with the largest naturally aligned blocks that
    // fit, walking the range front to back (handles non-power-of-two
    // node sizes).
    std::uint64_t frame = 0;
    while (frame < num_frames_) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((frame & ((std::uint64_t{1} << order) - 1)) != 0 ||
                frame + (std::uint64_t{1} << order) > num_frames_)) {
            --order;
        }
        free_lists_[order].insert(frame);
        free_frames_ += std::uint64_t{1} << order;
        frame += std::uint64_t{1} << order;
    }
    MEMIF_ASSERT(free_frames_ == num_frames_);
}

std::uint64_t
BuddyAllocator::allocate(unsigned order)
{
    MEMIF_ASSERT(order <= kMaxOrder, "order %u too large", order);
    // Find the smallest order with a free block.
    unsigned o = order;
    while (o <= kMaxOrder && free_lists_[o].empty()) ++o;
    if (o > kMaxOrder) return kInvalidFrame;

    std::uint64_t head = *free_lists_[o].begin();
    free_lists_[o].erase(free_lists_[o].begin());

    // Split down to the requested order, returning the upper halves.
    while (o > order) {
        --o;
        free_lists_[o].insert(head + (std::uint64_t{1} << o));
    }

    allocated_order_[head] = static_cast<std::uint8_t>(order + 1);
    free_frames_ -= std::uint64_t{1} << order;
    return head;
}

bool
BuddyAllocator::allocate_bulk(unsigned order, std::uint64_t n,
                              std::vector<std::uint64_t> &out)
{
    MEMIF_ASSERT(order <= kMaxOrder, "order %u too large", order);
    if (!can_allocate(order, n)) return false;
    const std::size_t base = out.size();
    out.reserve(base + n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t head = allocate(order);
        // can_allocate(order, n) is exact, so exhaustion here is a bug.
        MEMIF_ASSERT(head != kInvalidFrame);
        out.push_back(head);
    }
    (void)base;
    return true;
}

void
BuddyAllocator::free(std::uint64_t head, unsigned order)
{
    MEMIF_ASSERT(head < num_frames_, "frame %llu out of range",
                 static_cast<unsigned long long>(head));
    MEMIF_ASSERT(order <= kMaxOrder);
    if (allocated_order_[head] == 0)
        MEMIF_PANIC("double free or bad head frame %llu",
                    static_cast<unsigned long long>(head));
    if (allocated_order_[head] != order + 1)
        MEMIF_PANIC("free order %u mismatches allocation order %u", order,
                    allocated_order_[head] - 1);
    allocated_order_[head] = 0;
    free_frames_ += std::uint64_t{1} << order;

    // Coalesce with the buddy while possible.
    std::uint64_t block = head;
    unsigned o = order;
    while (o < kMaxOrder) {
        const std::uint64_t buddy = buddy_of(block, o);
        auto it = free_lists_[o].find(buddy);
        if (it == free_lists_[o].end()) break;
        // A same-order free buddy exists: merge.
        free_lists_[o].erase(it);
        block = block < buddy ? block : buddy;
        ++o;
    }
    free_lists_[o].insert(block);
}

bool
BuddyAllocator::can_allocate(unsigned order) const
{
    for (unsigned o = order; o <= kMaxOrder; ++o)
        if (!free_lists_[o].empty()) return true;
    return false;
}

bool
BuddyAllocator::can_allocate(unsigned order, std::uint64_t n) const
{
    MEMIF_ASSERT(order <= kMaxOrder, "order %u too large", order);
    // Every free block at order o >= order yields 2^(o-order) blocks of
    // the requested order; splitting never wastes frames, so this count
    // is exactly what allocate_bulk can hand out.
    std::uint64_t blocks = 0;
    for (unsigned o = order; o <= kMaxOrder; ++o) {
        blocks += static_cast<std::uint64_t>(free_lists_[o].size())
                  << (o - order);
        if (blocks >= n) return true;
    }
    return blocks >= n;
}

}  // namespace memif::mem
