/**
 * @file
 * Single-threaded semantic tests for the red-blue lock-free queue:
 * FIFO order, color propagation, set_color preconditions, cell recycling.
 */
#include "lockfree/queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "lockfree/cell.h"
#include "lockfree/link.h"

namespace memif::lockfree {
namespace {

/** A self-contained region: one pool, up to four queues. */
struct Region {
    static constexpr std::uint32_t kCells = 64;
    StackHeader stack_header;
    std::vector<Cell> cells;
    QueueHeader q_header;

    Region() : cells(kCells)
    {
        CellPool::initialize(&stack_header, cells.data(), kCells);
    }

    CellPool pool() { return CellPool(&stack_header, cells.data(), kCells); }

    RedBlueQueue
    make_queue(Color initial = Color::kBlue)
    {
        CellPool p = pool();
        RedBlueQueue::initialize(&q_header, p, initial);
        return RedBlueQueue(&q_header, pool());
    }
};

TEST(CellPool, PopAllThenExhausted)
{
    Region r;
    CellPool p = r.pool();
    std::vector<std::uint32_t> got;
    for (std::uint32_t i = 0; i < Region::kCells; ++i) {
        const std::uint32_t idx = p.pop();
        ASSERT_NE(idx, kNil);
        got.push_back(idx);
    }
    EXPECT_EQ(p.pop(), kNil);
    for (std::uint32_t idx : got) p.push(idx);
    EXPECT_NE(p.pop(), kNil);
}

TEST(CellPool, LifoRecycling)
{
    Region r;
    CellPool p = r.pool();
    const std::uint32_t a = p.pop();
    p.push(a);
    EXPECT_EQ(p.pop(), a);
}

TEST(RedBlueQueue, StartsEmptyWithInitialColor)
{
    Region r;
    RedBlueQueue q = r.make_queue(Color::kBlue);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.color(), Color::kBlue);
    const DequeueResult d = q.dequeue();
    EXPECT_FALSE(d.ok);
    EXPECT_EQ(d.color, Color::kBlue);
}

TEST(RedBlueQueue, FifoOrder)
{
    Region r;
    RedBlueQueue q = r.make_queue();
    for (std::uint32_t v = 100; v < 110; ++v) q.enqueue(v);
    EXPECT_EQ(q.size_unsafe(), 10u);
    for (std::uint32_t v = 100; v < 110; ++v) {
        const DequeueResult d = q.dequeue();
        ASSERT_TRUE(d.ok);
        EXPECT_EQ(d.value, v);
    }
    EXPECT_TRUE(q.empty());
}

TEST(RedBlueQueue, EnqueueReturnsObservedColor)
{
    Region r;
    RedBlueQueue q = r.make_queue(Color::kBlue);
    EXPECT_EQ(q.enqueue(1), Color::kBlue);
    EXPECT_EQ(q.enqueue(2), Color::kBlue);
    // Color sticks to links: still blue for later enqueues.
    EXPECT_EQ(q.enqueue(3), Color::kBlue);
}

TEST(RedBlueQueue, SetColorFailsOnNonEmptyQueue)
{
    Region r;
    RedBlueQueue q = r.make_queue(Color::kBlue);
    q.enqueue(1);
    EXPECT_EQ(q.set_color(Color::kRed), kColorBusy);
    q.dequeue();
    EXPECT_EQ(q.set_color(Color::kRed), static_cast<int>(Color::kBlue));
    EXPECT_EQ(q.color(), Color::kRed);
}

TEST(RedBlueQueue, SetColorIsIdempotent)
{
    Region r;
    RedBlueQueue q = r.make_queue(Color::kRed);
    EXPECT_EQ(q.set_color(Color::kRed), static_cast<int>(Color::kRed));
    EXPECT_EQ(q.color(), Color::kRed);
}

TEST(RedBlueQueue, ColorPropagatesThroughEnqueues)
{
    Region r;
    RedBlueQueue q = r.make_queue(Color::kBlue);
    ASSERT_EQ(q.set_color(Color::kRed), static_cast<int>(Color::kBlue));
    // Everything enqueued now observes red.
    EXPECT_EQ(q.enqueue(7), Color::kRed);
    EXPECT_EQ(q.enqueue(8), Color::kRed);
    const DequeueResult a = q.dequeue();
    EXPECT_TRUE(a.ok);
    EXPECT_EQ(a.color, Color::kRed);
    const DequeueResult b = q.dequeue();
    EXPECT_TRUE(b.ok);
    EXPECT_EQ(b.color, Color::kRed);
    // Empty again: color survives draining.
    EXPECT_EQ(q.color(), Color::kRed);
}

TEST(RedBlueQueue, SubmitFlushCycleMatchesPaperProtocol)
{
    // The §4.4 state machine on one thread: enqueue on blue -> flush ->
    // set red -> subsequent enqueues see red (no flush responsibility).
    Region r;
    RedBlueQueue q = r.make_queue(Color::kBlue);
    EXPECT_EQ(q.enqueue(1), Color::kBlue);  // caller must flush
    DequeueResult d = q.dequeue();
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(q.set_color(Color::kRed), static_cast<int>(Color::kBlue));
    EXPECT_EQ(q.enqueue(2), Color::kRed);  // kernel's job now
    // Kernel drains and recolors blue.
    EXPECT_TRUE(q.dequeue().ok);
    EXPECT_EQ(q.set_color(Color::kBlue), static_cast<int>(Color::kRed));
    EXPECT_EQ(q.enqueue(3), Color::kBlue);
}

TEST(RedBlueQueue, ManyCyclesDoNotLeakCells)
{
    Region r;
    RedBlueQueue q = r.make_queue();
    // Far more operations than cells exist: recycling must work.
    for (int round = 0; round < 1000; ++round) {
        for (std::uint32_t v = 0; v < 32; ++v) q.enqueue(v);
        for (std::uint32_t v = 0; v < 32; ++v) {
            const DequeueResult d = q.dequeue();
            ASSERT_TRUE(d.ok);
            ASSERT_EQ(d.value, v);
        }
    }
    EXPECT_TRUE(q.empty());
}

TEST(RedBlueQueue, InterleavedEnqueueDequeue)
{
    // Two enqueues per dequeue: population grows to ~170, so this also
    // checks behaviour near a deliberately roomy capacity.
    constexpr std::uint32_t kBigCells = 512;
    struct BigRegion {
        StackHeader stack_header;
        std::vector<Cell> cells;
        QueueHeader q_header;
    } r{.stack_header = {}, .cells = std::vector<Cell>(kBigCells), .q_header = {}};
    CellPool::initialize(&r.stack_header, r.cells.data(), kBigCells);
    CellPool pool(&r.stack_header, r.cells.data(), kBigCells);
    RedBlueQueue::initialize(&r.q_header, pool, Color::kBlue);
    RedBlueQueue q(&r.q_header, pool);
    std::uint32_t next_in = 0, next_out = 0;
    for (int step = 0; step < 500; ++step) {
        if (step % 3 != 2) {
            q.enqueue(next_in++);
        } else {
            const DequeueResult d = q.dequeue();
            if (d.ok) { EXPECT_EQ(d.value, next_out++); }
        }
    }
    while (true) {
        const DequeueResult d = q.dequeue();
        if (!d.ok) break;
        EXPECT_EQ(d.value, next_out++);
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(RedBlueQueue, TwoQueuesShareOnePool)
{
    Region r;
    CellPool p = r.pool();
    QueueHeader h2;
    RedBlueQueue::initialize(&r.q_header, p, Color::kBlue);
    RedBlueQueue::initialize(&h2, p, Color::kRed);
    RedBlueQueue a(&r.q_header, r.pool());
    RedBlueQueue b(&h2, r.pool());
    for (std::uint32_t v = 0; v < 10; ++v) {
        a.enqueue(v);
        b.enqueue(100 + v);
    }
    for (std::uint32_t v = 0; v < 10; ++v) {
        EXPECT_EQ(a.dequeue().value, v);
        EXPECT_EQ(b.dequeue().value, 100 + v);
    }
}

}  // namespace
}  // namespace memif::lockfree
