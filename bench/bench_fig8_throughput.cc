/**
 * @file
 * Figure 8 reproduction: sustained memory-move throughput across page
 * granularities (4 KB / 64 KB / 2 MB) and request sizes, comparing:
 *
 *   migspeed   — continuous Linux NUMA migration (the numactl utility)
 *   memif-mig  — a stream of memif migration requests
 *   memif-rep  — a stream of memif replication requests
 *
 * Requests ping-pong regions between the slow and fast nodes so the
 * 6 MB SRAM never fills.
 *
 * Paper claims: except at one 4 KB page per request, memif beats
 * migspeed by >= 40% (small pages) up to ~3x (large pages), and
 * replication outruns migration (no VM management).
 *
 * A final section compares the paper-default memif against the
 * pipelined configuration (SG coalescing + multi-TC dispatch + batched
 * TLB shootdown) on the 4 KB migration stream — the levers are off in
 * the paper tables above, which therefore keep their exact numbers.
 */
#include <cstdio>

#include "harness.h"

namespace memif::bench {
namespace {

double
memif_gbps(core::MemifConfig mc, core::MovOp op, vm::PageSize ps,
           std::uint32_t pages, std::uint32_t requests)
{
    TestBed bed(mc);
    RequestPlan plan{.op = op,
                     .page_size = ps,
                     .pages_per_request = pages,
                     .num_requests = requests};
    return run_memif_stream(bed, plan).gb_per_sec();
}

double
memif_gbps(core::MovOp op, vm::PageSize ps, std::uint32_t pages,
           std::uint32_t requests)
{
    return memif_gbps(core::MemifConfig{}, op, ps, pages, requests);
}

double
linux_gbps(vm::PageSize ps, std::uint32_t pages, std::uint32_t requests)
{
    TestBed bed;
    RequestPlan plan{.op = core::MovOp::kMigrate,
                     .page_size = ps,
                     .pages_per_request = pages,
                     .num_requests = requests};
    return run_linux_stream(bed, plan, 1).gb_per_sec();
}

std::uint32_t
requests_for(vm::PageSize ps, std::uint32_t pages, std::uint64_t target_bytes)
{
    const std::uint64_t req_bytes = vm::page_bytes(ps) * pages;
    auto requests = static_cast<std::uint32_t>(target_bytes / req_bytes);
    if (requests < 8) requests = 8;
    if (requests > 2048) requests = 2048;
    return requests;
}

void
sweep(BenchReport &report, vm::PageSize ps, const char *label,
      const std::vector<std::uint32_t> &page_counts,
      std::uint64_t target_bytes)
{
    std::printf("\n--- page size %s ---\n", label);
    std::printf("%6s %10s %10s %10s %12s %12s\n", "pages", "migspeed",
                "memif-mig", "memif-rep", "mig/migspd", "rep/migspd");
    rule();
    for (const std::uint32_t pages : page_counts) {
        const std::uint32_t requests = requests_for(ps, pages, target_bytes);
        const double lin = linux_gbps(ps, pages, requests);
        const double mig =
            memif_gbps(core::MovOp::kMigrate, ps, pages, requests);
        const double rep =
            memif_gbps(core::MovOp::kReplicate, ps, pages, requests);
        std::printf("%6u %9.2f %10.2f %10.2f %11.2fx %11.2fx\n", pages, lin,
                    mig, rep, mig / lin, rep / lin);
        report.add(std::string("migspeed-") + label, pages, lin);
        report.add(std::string("memif-mig-") + label, pages, mig);
        report.add(std::string("memif-rep-") + label, pages, rep);
    }
}

void
pipelined_sweep(BenchReport &report,
                const std::vector<std::uint32_t> &page_counts,
                std::uint64_t target_bytes)
{
    std::printf("\n--- memif-pipelined (4KB migration): coalescing + "
                "multi-TC + batched shootdown ---\n");
    std::printf("%6s %10s %10s %10s\n", "pages", "memif-mig", "memif-pip",
                "speedup");
    rule();
    for (const std::uint32_t pages : page_counts) {
        const std::uint32_t requests =
            requests_for(vm::PageSize::k4K, pages, target_bytes);
        const double mig = memif_gbps(core::MovOp::kMigrate,
                                      vm::PageSize::k4K, pages, requests);
        const double pip =
            memif_gbps(core::MemifConfig::pipelined(), core::MovOp::kMigrate,
                       vm::PageSize::k4K, pages, requests);
        std::printf("%6u %9.2f %10.2f %9.2fx\n", pages, mig, pip, pip / mig);
        report.add("memif-pip-4KB", pages, pip);
    }
}

}  // namespace
}  // namespace memif::bench

int
main()
{
    using namespace memif::bench;
    BenchReport report("fig8_throughput");
    header("Figure 8: memory-move throughput (GB/s) vs pages per request");
    const std::uint64_t target =
        quick_mode() ? (4ull << 20) : (64ull << 20);  // bytes moved per cell
    sweep(report, memif::vm::PageSize::k4K, "4KB", {1, 4, 16, 64, 256},
          target);
    sweep(report, memif::vm::PageSize::k64K, "64KB", {1, 4, 16, 64}, target);
    sweep(report, memif::vm::PageSize::k2M, "2MB", {1, 2}, target);
    std::printf(
        "\npaper: memif >= 1.4x migspeed for small pages (except 1x4KB),\n"
        "up to ~3x for large pages; replication >= migration throughput.\n");
    pipelined_sweep(report, {4, 16, 64, 256}, target);
    return 0;
}
