/**
 * @file
 * Human-readable system reports — the /proc-style summaries a real
 * deployment would expose: per-node memory (numastat), DMA engine
 * counters, and the CPU-time breakdown by context and by Table 1
 * operation.
 */
#pragma once

#include <cstdio>

#include "os/kernel.h"

namespace memif::os {

/** Print node / engine / CPU summaries for the whole machine. */
void print_system_report(std::FILE *out, Kernel &kernel);

}  // namespace memif::os
