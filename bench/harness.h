/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * These binaries measure *virtual* time on the simulated KeyStone II —
 * each prints the rows/series of one table or figure from the paper's
 * evaluation (§6). They are deterministic; run them directly:
 *
 *     build/bench/bench_fig6_breakdown
 *
 * (google-benchmark is used only where host time is the right metric:
 * the lock-free queue microbenchmark.)
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/page_migration.h"
#include "os/process.h"
#include "sim/types.h"
#include "vm/vma.h"

namespace memif::bench {

/** One simulated machine + process + opened memif instance. */
struct TestBed {
    os::Kernel kernel;
    os::Process &proc;
    core::MemifDevice dev;
    core::MemifUser user;

    explicit TestBed(core::MemifConfig mc = {}, os::KernelConfig kc = {})
        : kernel(kc),
          proc(kernel.create_process()),
          dev(kernel, proc, mc),
          user(dev)
    {
    }
};

/** Description of a stream of identical requests. */
struct RequestPlan {
    core::MovOp op = core::MovOp::kMigrate;
    vm::PageSize page_size = vm::PageSize::k4K;
    std::uint32_t pages_per_request = 16;
    std::uint32_t num_requests = 1;
    /** Nonzero: use exactly this many ping-pong regions instead of the
     *  SRAM-budget auto window (still clamped to num_requests). Fewer
     *  regions = more repeat traffic per region, which is what the
     *  translation-cache cells want to exercise. */
    std::uint32_t window_override = 0;
};

/** Timing of one completed request. */
struct RequestTiming {
    sim::SimTime submitted = 0;
    sim::SimTime completed = 0;
    sim::Duration latency() const { return completed - submitted; }
};

/** Outcome of a memif request stream. */
struct StreamOutcome {
    std::vector<RequestTiming> timings;
    sim::Duration elapsed = 0;
    std::uint64_t bytes = 0;
    sim::CpuAccounting cpu;  ///< CPU cost of exactly this stream

    double
    gb_per_sec() const
    {
        return sim::gb_per_sec(bytes, elapsed);
    }
};

/**
 * Submit @p plan.num_requests memif requests back to back (without
 * waiting in between — the asynchronous usage the paper advocates) and
 * collect per-request completion times.
 *
 * Migration requests ping-pong between the slow and fast node so the
 * scarce 6 MB SRAM never fills: even requests move slow->fast, odd
 * requests move the same region fast->slow. Replication copies between
 * two slow-node regions sized like the request. The regions are mapped
 * once per call.
 */
StreamOutcome run_memif_stream(TestBed &bed, const RequestPlan &plan);

/**
 * The same workload through Linux page migration, batching
 * @p requests_per_syscall requests into each migrate call (Fig. 7's
 * batch parameter). Ping-pongs like run_memif_stream.
 */
StreamOutcome run_linux_stream(TestBed &bed, const RequestPlan &plan,
                               std::uint32_t requests_per_syscall);

/** printf a horizontal rule. */
void rule(char c = '-', int width = 78);

/** printf a section header. */
void header(const std::string &title);

/**
 * True when MEMIF_BENCH_QUICK is set in the environment: benches shrink
 * the bytes moved per cell so the CI smoke job finishes in seconds. The
 * tables keep their shape (same rows, same series) at lower statistical
 * weight; without the variable nothing changes.
 */
bool quick_mode();

/**
 * Machine-readable companion to a bench's stdout tables: named (x, y)
 * series written to BENCH_<name>.json in the working directory. The CI
 * smoke job collects these as artifacts and gates on them (e.g. the
 * pipelined series must not regress below the paper-default one).
 *
 * JSON shape: {"name": ..., "series": {"<series>": [[x, y], ...], ...}}
 */
class BenchReport {
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}
    ~BenchReport() { write(); }
    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** Append one point; series appear in first-touch order. */
    void add(const std::string &series, double x, double y);

    /** Write BENCH_<name>.json now (idempotent; destructor calls it). */
    void write();

  private:
    struct Series {
        std::string name;
        std::vector<std::pair<double, double>> points;
    };
    std::string name_;
    std::vector<Series> series_;
    bool written_ = false;
};

}  // namespace memif::bench
