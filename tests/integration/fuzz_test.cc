/**
 * @file
 * Randomized whole-system fuzz: two processes, shared and private
 * regions, a mapped file, and a stream of random memif operations
 * (valid moves, invalid requests, racing touches) under every race
 * policy. After each run the entire machine is checked for
 * consistency: every request accounted for, no frame leaked, every
 * mapping's reverse map intact, all data readable.
 */
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dma/engine.h"
#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "os/tmpfs.h"
#include "sim/random.h"

namespace memif::core {
namespace {

/** Frame accounting + rmap + PTE coherence across the whole machine. */
void
check_machine_consistency(os::Kernel &kernel,
                          std::vector<os::Process *> &procs)
{
    mem::PhysicalMemory &pm = kernel.phys();
    // 1. Buddy accounting matches the allocated flags.
    for (mem::NodeId n = 0; n < pm.node_count(); ++n) {
        std::uint64_t allocated = 0;
        for (mem::Pfn p = pm.node(n).base_pfn();
             p < pm.node(n).base_pfn() + pm.node(n).num_frames(); ++p)
            if (pm.node(n).frame(p).allocated) ++allocated;
        ASSERT_EQ(allocated,
                  pm.node(n).num_frames() - pm.node(n).free_frames())
            << "node " << n;
    }
    // 2. Every present PTE points at an allocated frame whose rmap
    //    chain contains exactly that mapping.
    for (os::Process *proc : procs) {
        vm::AddressSpace &as = proc->as();
        for (vm::VAddr probe = 0x1000'0000ull; probe < 0x2000'0000ull;
             probe += 4096) {
            vm::Vma *vma = as.find_vma(probe);
            if (!vma) continue;
            probe = vma->end() - 4096;  // skip to vma end after checking
            for (std::uint64_t i = 0; i < vma->num_pages(); ++i) {
                const vm::Pte pte = vma->pte(i);
                if (!pte.present) continue;
                const mem::PageFrame &frame = pm.frame(pte.pfn);
                ASSERT_TRUE(frame.allocated);
                bool found = false;
                for (const mem::RmapEntry &re : frame.rmaps)
                    if (re.owner == &as &&
                        re.vaddr == vma->page_vaddr(i) &&
                        re.kind == mem::RmapKind::kAddressSpace)
                        found = true;
                ASSERT_TRUE(found) << "missing rmap";
            }
        }
    }
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, RandomOperationMixStaysConsistent)
{
    sim::Rng rng(GetParam());
    os::Kernel kernel;
    os::Process &a = kernel.create_process();
    os::Process &b = kernel.create_process();
    std::vector<os::Process *> procs{&a, &b};

    const RacePolicy policy = static_cast<RacePolicy>(rng.next_below(3));
    MemifConfig cfg;
    cfg.race_policy = policy;
    cfg.allow_file_backed = rng.next_below(2) == 1;
    MemifDevice dev(kernel, a, cfg);
    MemifUser user(dev);

    os::TmpFs fs(kernel);
    os::TmpFs::File *file = fs.create("/tmp/fuzz", 16);

    // Regions: private anon (2 sizes), a shared anon region, the file.
    struct Region {
        vm::VAddr base;
        std::uint32_t pages;
        bool file_backed;
    };
    std::vector<Region> regions;
    regions.push_back({a.mmap(32 * 4096, vm::PageSize::k4K), 32, false});
    regions.push_back({a.mmap(8 * 65536, vm::PageSize::k64K), 8, false});
    {
        const vm::VAddr shared = a.mmap(16 * 4096, vm::PageSize::k4K);
        b.as().mmap_shared(*a.as().find_vma(shared));
        regions.push_back({shared, 16, false});
    }
    regions.push_back({a.as().mmap_file(*file, 0, 16), 16, true});
    for (const Region &r : regions) ASSERT_NE(r.base, 0u);

    std::uint32_t submitted = 0, completed = 0;
    std::map<MovError, int> errors;

    auto driver = [&]() -> sim::Task {
        for (int step = 0; step < 160; ++step) {
            const std::uint64_t dice = rng.next_below(100);
            if (dice < 45) {
                // Submit a migration of a random sub-range.
                const Region &r = regions[rng.next_below(regions.size())];
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kMigrate;
                const std::uint32_t n = 1 + static_cast<std::uint32_t>(
                                                rng.next_below(r.pages));
                const std::uint32_t off = static_cast<std::uint32_t>(
                    rng.next_below(r.pages - n + 1));
                const vm::Vma *vma = a.as().find_vma(r.base);
                req.src_base =
                    r.base + off * vm::page_bytes(vma->page_size());
                req.num_pages = n;
                req.dst_node = rng.next_below(2) == 0
                                   ? kernel.fast_node()
                                   : kernel.slow_node();
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 60) {
                // Submit a replication between two private regions.
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kReplicate;
                req.src_base = regions[0].base;
                req.dst_base = regions[2].base;
                req.num_pages = static_cast<std::uint32_t>(
                    1 + rng.next_below(16));
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 70) {
                // Deliberately malformed request.
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kMigrate;
                req.src_base = 0xDEAD0000 + rng.next_below(1 << 20);
                req.num_pages = static_cast<std::uint32_t>(
                    rng.next_below(600));
                req.dst_node = static_cast<std::uint32_t>(
                    rng.next_below(4));
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 85) {
                // Touch memory, possibly racing an in-flight move.
                const Region &r = regions[rng.next_below(regions.size())];
                const vm::Vma *vma = a.as().find_vma(r.base);
                const vm::VAddr va =
                    r.base + rng.next_below(r.pages) *
                                 vm::page_bytes(vma->page_size());
                os::TouchOutcome out;
                co_await a.touch(va, rng.next_below(2) == 1, &out);
            } else {
                // Drain completions.
                for (;;) {
                    const std::uint32_t idx = user.retrieve_completed();
                    if (idx == kNoRequest) break;
                    ++errors[user.request(idx).error];
                    user.free_request(idx);
                    ++completed;
                }
            }
            co_await sim::Delay{kernel.eq(),
                                sim::microseconds(rng.next_below(60))};
        }
        // Final drain.
        while (completed < submitted) {
            const std::uint32_t idx = user.retrieve_completed();
            if (idx == kNoRequest) {
                co_await user.poll();
                continue;
            }
            ++errors[user.request(idx).error];
            user.free_request(idx);
            ++completed;
        }
    };
    auto task = driver();
    kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();

    // Every submitted request was answered; the device quiesced.
    EXPECT_EQ(completed, submitted);
    EXPECT_TRUE(dev.idle());
    // Only explainable errors occurred.
    for (const auto &[err, count] : errors) {
        const bool expected =
            err == MovError::kNone || err == MovError::kBadAddress ||
            err == MovError::kBadRequest || err == MovError::kBadNode ||
            err == MovError::kNoMemory || err == MovError::kRace ||
            err == MovError::kAborted || err == MovError::kBusy ||
            err == MovError::kFileBacked;
        EXPECT_TRUE(expected) << "error " << static_cast<int>(err);
    }
    // The whole machine is still coherent.
    check_machine_consistency(kernel, procs);
    // All data still readable through every region.
    std::vector<std::uint8_t> buf;
    for (const Region &r : regions) {
        const vm::Vma *vma = a.as().find_vma(r.base);
        buf.resize(r.pages * vm::page_bytes(vma->page_size()));
        EXPECT_TRUE(a.as().read(r.base, buf.data(), buf.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Fault-randomized stress: the same kind of random operation mix, but with
// every DMA fault site armed at a low probability. The machine must absorb
// TC errors, stuck transfers, lost interrupts and allocation failures and
// still deliver a terminal status for every request, keep destinations
// all-or-nothing, quiesce, leak no frames, and replay bit-identically under
// the same seed.
// ---------------------------------------------------------------------------

constexpr std::uint8_t pat_byte(std::uint8_t pattern, std::uint64_t i)
{
    return static_cast<std::uint8_t>(pattern + i * 13);
}

void
fill_pattern(os::Process &p, vm::VAddr base, std::uint64_t bytes,
             std::uint8_t pattern)
{
    std::vector<std::uint8_t> buf(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i) buf[i] = pat_byte(pattern, i);
    ASSERT_TRUE(p.as().write(base, buf.data(), bytes));
}

bool
matches_pattern(os::Process &p, vm::VAddr base, std::uint64_t bytes,
                std::uint8_t pattern)
{
    std::vector<std::uint8_t> buf(bytes);
    if (!p.as().read(base, buf.data(), bytes)) return false;
    for (std::uint64_t i = 0; i < bytes; ++i)
        if (buf[i] != pat_byte(pattern, i)) return false;
    return true;
}

/** Everything observable about one fault-fuzz run, for replay comparison. */
struct FaultRunSummary {
    sim::SimTime end_time = 0;
    std::uint32_t submitted = 0;
    std::uint32_t completed = 0;
    std::map<MovError, int> errors;
    std::uint64_t dma_errors = 0;
    std::uint64_t dma_retries = 0;
    std::uint64_t fallback_copies = 0;
    std::uint64_t watchdog_timeouts = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t outstanding = 0;

    bool operator==(const FaultRunSummary &) const = default;
};

void
run_fault_fuzz(std::uint64_t seed, FaultRunSummary *out)
{
    sim::Rng rng(seed);
    os::Kernel kernel;
    kernel.faults().seed(seed * 0x9E3779B97F4A7C15ull + 1);
    kernel.faults().arm_probability(dma::kFaultTcError, 0.08);
    kernel.faults().arm_probability(dma::kFaultStuck, 0.05);
    kernel.faults().arm_probability(dma::kFaultLostIrq, 0.04);
    kernel.faults().arm_probability(kFaultAllocFail, 0.03);

    os::Process &a = kernel.create_process();
    std::vector<os::Process *> procs{&a};

    MemifConfig cfg;
    cfg.race_policy = static_cast<RacePolicy>(rng.next_below(3));
    cfg.cpu_copy_fallback = rng.next_below(4) != 0;  // mostly on
    const std::uint64_t thresholds[] = {0, 16 * 1024, 512 * 1024};
    cfg.poll_threshold_bytes = thresholds[rng.next_below(3)];
    MemifDevice dev(kernel, a, cfg);
    MemifUser user(dev);

    // Private anonymous regions only, each with a distinct byte pattern,
    // so all-or-nothing can be checked exactly: migrations never change
    // content, and each scratch page holds either its own pattern or the
    // replication source's — never a partial mix.
    struct Region {
        vm::VAddr base;
        std::uint32_t pages;
        std::uint64_t page_bytes;
        std::uint8_t pattern;
    };
    std::vector<Region> regions;
    regions.push_back({a.mmap(32 * 4096, vm::PageSize::k4K), 32, 4096, 11});
    regions.push_back(
        {a.mmap(8 * 65536, vm::PageSize::k64K), 8, 65536, 57});
    const Region scratch{a.mmap(32 * 4096, vm::PageSize::k4K), 32, 4096,
                         101};
    regions.push_back(scratch);
    for (const Region &r : regions) ASSERT_NE(r.base, 0u);
    for (const Region &r : regions)
        fill_pattern(a, r.base, r.pages * r.page_bytes, r.pattern);

    // Every page is populated now; from here on the frame count may only
    // fluctuate transiently while a migration holds old + new frames.
    const std::uint64_t baseline = kernel.phys().outstanding_pages();

    std::uint32_t submitted = 0, completed = 0;
    std::map<MovError, int> errors;

    auto drain = [&]() {
        for (;;) {
            const std::uint32_t idx = user.retrieve_completed();
            if (idx == kNoRequest) break;
            const MovStatus st = user.request(idx).load_status();
            EXPECT_TRUE(st == MovStatus::kDone || st == MovStatus::kFailed)
                << "non-terminal status " << static_cast<int>(st);
            ++errors[user.request(idx).error];
            user.free_request(idx);
            ++completed;
        }
    };

    auto driver = [&]() -> sim::Task {
        for (int step = 0; step < 150; ++step) {
            const std::uint64_t dice = rng.next_below(100);
            if (dice < 50) {
                // Migrate a random sub-range of a random region.
                const Region &r = regions[rng.next_below(regions.size())];
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kMigrate;
                const std::uint32_t n = 1 + static_cast<std::uint32_t>(
                                                rng.next_below(r.pages));
                const std::uint32_t off = static_cast<std::uint32_t>(
                    rng.next_below(r.pages - n + 1));
                req.src_base = r.base + off * r.page_bytes;
                req.num_pages = n;
                req.dst_node = rng.next_below(2) == 0
                                   ? kernel.fast_node()
                                   : kernel.slow_node();
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 65) {
                // Replicate a prefix of region 0 into the scratch region.
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kReplicate;
                req.src_base = regions[0].base;
                req.dst_base = scratch.base;
                req.num_pages = static_cast<std::uint32_t>(
                    1 + rng.next_below(scratch.pages));
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 75) {
                // Deliberately malformed request.
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kMigrate;
                req.src_base = 0xDEAD0000 + rng.next_below(1 << 20);
                req.num_pages = static_cast<std::uint32_t>(
                    rng.next_below(600));
                req.dst_node = static_cast<std::uint32_t>(
                    rng.next_below(4));
                ++submitted;
                co_await user.submit(idx);
            } else {
                drain();
            }
            co_await sim::Delay{kernel.eq(),
                                sim::microseconds(rng.next_below(60))};
        }
        while (completed < submitted) {
            const std::uint32_t before = completed;
            drain();
            if (completed == before) co_await user.poll();
        }
    };
    auto task = driver();
    kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();

    // Every request reached a terminal state and the device quiesced.
    ASSERT_EQ(completed, submitted);
    EXPECT_TRUE(dev.idle());
    // Only explainable errors occurred: validation failures, injected
    // allocation failures, and unrecoverable DMA outcomes.
    for (const auto &[err, count] : errors) {
        const bool expected =
            err == MovError::kNone || err == MovError::kBadAddress ||
            err == MovError::kBadRequest || err == MovError::kBadNode ||
            err == MovError::kNoMemory || err == MovError::kBusy ||
            err == MovError::kDmaError || err == MovError::kTimeout;
        EXPECT_TRUE(expected) << "error " << static_cast<int>(err);
    }
    // No frame leaked: rollbacks, retries and fallbacks all returned to
    // exactly the pre-run footprint.
    EXPECT_EQ(kernel.phys().outstanding_pages(), baseline);
    check_machine_consistency(kernel, procs);

    // All-or-nothing data: migrations preserve content bit-exactly...
    EXPECT_TRUE(matches_pattern(a, regions[0].base,
                                regions[0].pages * regions[0].page_bytes,
                                regions[0].pattern));
    EXPECT_TRUE(matches_pattern(a, regions[1].base,
                                regions[1].pages * regions[1].page_bytes,
                                regions[1].pattern));
    // ...and each scratch page holds either its original pattern or the
    // replication source's page, never a torn mixture.
    for (std::uint32_t i = 0; i < scratch.pages; ++i) {
        const std::uint64_t off = i * scratch.page_bytes;
        const bool own = matches_pattern(a, scratch.base + off,
                                         scratch.page_bytes,
                                         static_cast<std::uint8_t>(
                                             pat_byte(scratch.pattern, off)));
        const bool src = matches_pattern(
            a, scratch.base + off, scratch.page_bytes,
            static_cast<std::uint8_t>(pat_byte(regions[0].pattern, off)));
        EXPECT_TRUE(own || src) << "torn scratch page " << i;
    }

    const DeviceStats &st = dev.stats();
    *out = FaultRunSummary{.end_time = kernel.eq().now(),
                           .submitted = submitted,
                           .completed = completed,
                           .errors = errors,
                           .dma_errors = st.dma_errors,
                           .dma_retries = st.dma_retries,
                           .fallback_copies = st.fallback_copies,
                           .watchdog_timeouts = st.watchdog_timeouts,
                           .rollbacks = st.rollbacks,
                           .outstanding =
                               kernel.phys().outstanding_pages()};
}

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, RecoversFromRandomFaultsAndReplaysDeterministically)
{
    FaultRunSummary first, second;
    ASSERT_NO_FATAL_FAILURE(run_fault_fuzz(GetParam(), &first));
    ASSERT_NO_FATAL_FAILURE(run_fault_fuzz(GetParam(), &second));

    // The armed probabilities actually bite on most seeds; at minimum the
    // run must have exercised the recovery machinery or survived cleanly.
    EXPECT_GT(first.submitted, 0u);

    // Same seed => bit-identical virtual time, stats and error histogram.
    EXPECT_EQ(first.end_time, second.end_time);
    EXPECT_EQ(first.submitted, second.submitted);
    EXPECT_EQ(first.completed, second.completed);
    EXPECT_EQ(first.dma_errors, second.dma_errors);
    EXPECT_EQ(first.dma_retries, second.dma_retries);
    EXPECT_EQ(first.fallback_copies, second.fallback_copies);
    EXPECT_EQ(first.watchdog_timeouts, second.watchdog_timeouts);
    EXPECT_EQ(first.rollbacks, second.rollbacks);
    EXPECT_TRUE(first.errors == second.errors);
    EXPECT_TRUE(first == second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Values(7, 19, 23, 42, 77, 1009));

}  // namespace
}  // namespace memif::core
