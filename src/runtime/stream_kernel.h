/**
 * @file
 * The compute-kernel interface the mini streaming runtime (§6.6) drives.
 *
 * A kernel is two things at once:
 *
 *  1. *Real computation*: process() consumes actual bytes (the backing
 *     memory of the simulated machine) and folds them into a running
 *     result, so tests can prove the runtime + memif moved the right
 *     data.
 *  2. *A timing model*: a KernelModel describing how fast the 4-core
 *     CPU consumes data depending on where it lives. The calibration
 *     constants are per-kernel and documented against Table 4 where
 *     they are defined (src/workloads).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.h"

namespace memif::runtime {

/**
 * Timing model of one streaming kernel on the simulated platform.
 *
 * "Useful bytes" are the stream bytes the throughput metric counts
 * (Table 4 reports MB/s of consumed stream data).
 */
struct KernelModel {
    std::string name;
    /**
     * Consumption rate (useful B/s, all 4 cores) when inputs sit in
     * fast memory — the compute-bound ceiling.
     */
    double compute_rate_fast = 0.0;
    /**
     * Total slow-memory traffic per useful byte when computing directly
     * from slow memory (extra arrays, write-allocate, ...). The
     * slow-memory consumption rate is slow_bw / this.
     */
    double slow_traffic_factor = 1.0;
    /**
     * DMA bytes that must be staged into fast memory per useful byte
     * (how much of the kernel's traffic the prefetch path carries).
     */
    double fill_factor = 1.0;
    /**
     * Fraction of the kernel's accesses served by the on-chip caches
     * regardless of which memory backs the data. Cache-friendly
     * workloads (paper §6.7: wordcount, psearchy) have this near 1 and
     * therefore gain little from fast memory.
     */
    double cache_hit_fraction = 0.0;

    /** Time for the CPU to consume @p bytes living in fast memory. */
    sim::Duration
    consume_time_fast(std::uint64_t bytes) const
    {
        return static_cast<sim::Duration>(
            static_cast<double>(bytes) / compute_rate_fast * 1e9);
    }

    /** Time to consume @p bytes directly from slow memory. */
    sim::Duration
    consume_time_slow(std::uint64_t bytes, double slow_bw) const
    {
        const double rate_bw = slow_bw / slow_traffic_factor;
        const double rate =
            rate_bw < compute_rate_fast ? rate_bw : compute_rate_fast;
        // Accesses the cache absorbs run at the compute-bound rate even
        // when the data nominally lives in slow memory (§6.7).
        const double t_fast = 1.0 / compute_rate_fast;
        const double t_slow = 1.0 / rate;
        const double t = cache_hit_fraction * t_fast +
                         (1.0 - cache_hit_fraction) * t_slow;
        return static_cast<sim::Duration>(static_cast<double>(bytes) * t *
                                          1e9);
    }
};

/** A streaming compute kernel. */
class StreamKernel {
  public:
    explicit StreamKernel(KernelModel model) : model_(std::move(model)) {}
    virtual ~StreamKernel() = default;

    const KernelModel &model() const { return model_; }
    const std::string &name() const { return model_.name; }

    /** Consume @p bytes of real data, folding them into the result. */
    virtual void process(const std::byte *data, std::uint64_t bytes) = 0;

    /** Order-independent digest of everything processed so far. */
    virtual std::uint64_t result() const = 0;

    /** Reset the running result. */
    virtual void reset() = 0;

  private:
    KernelModel model_;
};

}  // namespace memif::runtime
