#include "workloads/data_intensive.h"

namespace memif::workloads {

// Calibration rationale (§6.7): both workloads are mostly cache-bound on
// KeyStone II — their hot structures (counter tables, index nodes) and a
// large share of their input reuse fit the 4 MB of per-core L2. With
// ~85-90% of accesses absorbed by the cache, moving the backing store to
// SRAM moves only the residual traffic, so the end-to-end gain is a few
// percent — the paper's "little performance gain".

WordCount::WordCount()
    : StreamKernel(runtime::KernelModel{
          .name = "wordcount",
          .compute_rate_fast = 2.6e9,
          .slow_traffic_factor = 3.0,
          .fill_factor = 1.0,
          .cache_hit_fraction = 0.88})
{
}

void
WordCount::process(const std::byte *data, std::uint64_t bytes)
{
    bool in_word = false;
    std::uint64_t hash = 1469598103934665603ull;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        const auto c = static_cast<unsigned char>(data[i]);
        const bool alnum =
            static_cast<unsigned>((c | 0x20) - 'a') < 26u ||
            static_cast<unsigned>(c - '0') < 10u;
        if (alnum) {
            in_word = true;
            hash = (hash ^ c) * 1099511628211ull;
        } else if (in_word) {
            ++words_;
            ++counts_[hash % kBuckets];
            in_word = false;
            hash = 1469598103934665603ull;
        }
    }
    if (in_word) {
        ++words_;
        ++counts_[hash % kBuckets];
    }
}

std::uint64_t
WordCount::result() const
{
    std::uint64_t digest = words_;
    for (std::size_t b = 0; b < kBuckets; ++b)
        digest += counts_[b] * (b + 1);
    return digest;
}

void
WordCount::reset()
{
    counts_.fill(0);
    words_ = 0;
}

PSearchy::PSearchy()
    : StreamKernel(runtime::KernelModel{
          .name = "psearchy",
          .compute_rate_fast = 2.0e9,
          .slow_traffic_factor = 3.5,
          .fill_factor = 1.0,
          .cache_hit_fraction = 0.85})
{
}

void
PSearchy::process(const std::byte *data, std::uint64_t bytes)
{
    // Needle set: byte trigrams with a cheap rolling probe.
    static constexpr std::uint32_t kNeedles[] = {0x616263, 0x746865,
                                                 0x696E67, 0x111111};
    std::uint32_t window = 0;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        window = ((window << 8) |
                  static_cast<unsigned char>(data[i])) & 0xFFFFFF;
        if (i >= 2) {
            ++probes_;
            for (const std::uint32_t n : kNeedles)
                if (window == n) ++matches_;
        }
    }
}

}  // namespace memif::workloads
