#include "vm/vma.h"

#include "sim/log.h"
#include "vm/page_table.h"

namespace memif::vm {

Vma::Vma(AddressSpace *owner, VAddr base, std::uint64_t num_pages,
         PageSize psize, mem::NodeId node, PageTable &table)
    : owner_(owner), base_(base), psize_(psize), node_(node)
{
    MEMIF_ASSERT(base % page_bytes(psize) == 0, "unaligned vma base");
    slots_.reserve(num_pages);
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        PteSlot *slot =
            table.slot(base + i * page_bytes(psize), psize, /*create=*/true);
        MEMIF_ASSERT(slot != nullptr);
        slot->store(0, std::memory_order_relaxed);
        slots_.push_back(slot);
    }
}

}  // namespace memif::vm
