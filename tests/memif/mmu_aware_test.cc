/**
 * @file
 * MMU-aware DMA tests: translation prefetch ahead of the consumption
 * stream and SVA-routed replication. The races this PR introduces —
 * a shootdown landing between prefetch issue and fill, a retried chain
 * reusing stale translations, an IOMMU walk fault mid-stream — must
 * never surface as wrong bytes; only as stalls, demand walks, or a
 * clean kXlateFault through the recovery ladder.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "dma/engine.h"
#include "memif/user_api.h"
#include "memif/xlate_cache.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/task.h"
#include "sim/types.h"

namespace memif::core {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = MemifConfig::mmu_aware())
        : proc(kernel.create_process()),
          dev(kernel, proc, cfg),
          user(dev)
    {
    }

    ~Fixture()
    {
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    sim::FaultInjector &faults() { return kernel.faults(); }

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    bool
    check(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!proc.as().read(base, buf.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    std::uint32_t
    replicate(vm::VAddr src, std::uint32_t npages, vm::VAddr dst)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = MovOp::kReplicate;
        req.src_base = src;
        req.dst_base = dst;
        req.num_pages = npages;
        kernel.spawn(user.submit(idx));
        return idx;
    }
};

/** mmu_aware() with coalescing off: every 4 KB chunk is its own SG
 *  entry / stream slot, so the prefetcher has a real stream to run
 *  ahead of (the buddy allocator's contiguous frames would otherwise
 *  collapse the whole region into a couple of descriptors). */
MemifConfig
uncoalesced_mmu_aware()
{
    MemifConfig c = MemifConfig::mmu_aware();
    c.sg_coalescing = false;
    return c;
}

// ---------------------------------------------------------------------
// XlateCache pending-prefetch unit coverage: the generation check at
// fill time is what makes the issue->fill window race-safe.
// ---------------------------------------------------------------------

TEST(XlatePrefetch, FillAfterInvalidationIsDropped)
{
    Fixture f;  // only used to mint a real Vma
    const vm::VAddr base = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    vm::Vma *vma = f.proc.as().find_vma(base);
    ASSERT_NE(vma, nullptr);
    auto walk = [&](std::uint64_t first, std::uint64_t n) {
        std::vector<vm::Pte> ptes;
        for (std::uint64_t i = 0; i < n; ++i)
            ptes.push_back(vma->pte(first + i));
        return ptes;
    };

    XlateCache cache(8);
    // Clean prefetch: issue, fill, hit.
    const std::uint64_t t0 = cache.begin_prefetch(vma, 0, 4);
    EXPECT_EQ(cache.pending_prefetches().size(), 1u);
    EXPECT_TRUE(cache.fill_prefetch(t0, walk(0, 4)));
    EXPECT_TRUE(cache.pending_prefetches().empty());
    EXPECT_NE(cache.lookup(vma, 0, 4), nullptr);

    // Shootdown lands between issue and fill: the fill must be
    // dropped — the walk it snapshots may predate the PTE change.
    const std::uint64_t t1 = cache.begin_prefetch(vma, 4, 4);
    EXPECT_EQ(cache.invalidate(vma, 5, 1), 0u);  // kills the pending
    EXPECT_FALSE(cache.fill_prefetch(t1, walk(4, 4)));
    EXPECT_TRUE(cache.pending_prefetches().empty());
    EXPECT_EQ(cache.lookup(vma, 4, 4), nullptr);

    // Non-overlapping invalidations leave a pending alive.
    const std::uint64_t t2 = cache.begin_prefetch(vma, 4, 2);
    cache.invalidate(vma, 0, 2);
    EXPECT_TRUE(cache.fill_prefetch(t2, walk(4, 2)));
    EXPECT_NE(cache.lookup(vma, 4, 2), nullptr);

    // Unknown / already-consumed tokens are rejected.
    EXPECT_FALSE(cache.fill_prefetch(t2, walk(4, 2)));
    EXPECT_FALSE(cache.fill_prefetch(987654u, walk(0, 1)));

    // An empty fill cleanly retires a pending (cancellation drain).
    const std::uint64_t t3 = cache.begin_prefetch(vma, 0, 2);
    EXPECT_TRUE(cache.fill_prefetch(t3, {}));
    EXPECT_TRUE(cache.pending_prefetches().empty());
    EXPECT_EQ(cache.lookup(vma, 0, 2), nullptr);
}

// ---------------------------------------------------------------------
// SVA-routed replication: correctness and prefetch-overlap accounting.
// ---------------------------------------------------------------------

TEST(MmuAware, SvaReplicationStreamsCorrectBytes)
{
    Fixture f(uncoalesced_mmu_aware());
    const std::uint32_t pages = 64;
    const vm::VAddr src = f.proc.mmap(pages * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, pages * 4096, 42);

    const std::uint32_t idx = f.replicate(src, pages, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, pages * 4096, 42));
    const DeviceStats &ds = f.dev.stats();
    // Every slot went through the gate and resolved live.
    EXPECT_EQ(ds.sva_resolved, pages);
    EXPECT_EQ(ds.sva_faults, 0u);
    // The whole stream was prefetched; the bulk of it landed before
    // the consumer got there (first window is synchronous, later
    // batches walk ~16x faster than the 4 KB copies stream).
    EXPECT_EQ(ds.stream_prefetch_issued, pages);
    EXPECT_GE(ds.stream_prefetch_hits, pages / 2);
    EXPECT_EQ(ds.stream_prefetch_hits + ds.stream_prefetch_late +
                  ds.stream_prefetch_wasted,
              pages);
    EXPECT_EQ(f.kernel.dma_engine().stats().gated_transfers, 1u);
}

TEST(MmuAware, ShootdownStormNeverCorruptsTheStream)
{
    Fixture f(uncoalesced_mmu_aware());
    const std::uint32_t pages = 64;
    const vm::VAddr src = f.proc.mmap(pages * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, pages * 4096, 77);

    // Race a TLB-shootdown storm over the source while the SVA stream
    // is consuming it: invalidations land between prefetch issue and
    // fill (fills dropped by the generation check) and between fill
    // and consumption (prefetched entries wasted, demand re-walks).
    const std::uint32_t idx = f.replicate(src, pages, dst);
    auto storm = [&]() -> sim::Task {
        for (std::uint32_t i = 0; i < 128; ++i) {
            f.proc.as().flush_tlb_page(src + (i % pages) * 4096,
                                       vm::PageSize::k4K);
            co_await sim::Delay{f.kernel.eq(), 400};
        }
    };
    f.kernel.spawn(storm());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, pages * 4096, 77));
    const DeviceStats &ds = f.dev.stats();
    // The storm must have been seen: dead fills dropped, and at least
    // some survivors invalidated before consumption forced re-walks.
    EXPECT_GE(ds.prefetch_fills_dropped, 1u);
    EXPECT_GE(ds.stream_prefetch_wasted + ds.sva_demand_walks, 1u);
    EXPECT_EQ(ds.sva_faults, 0u);
}

TEST(MmuAware, RetriedChainRevalidatesPrefetchedTranslations)
{
    Fixture f(uncoalesced_mmu_aware());
    const std::uint32_t pages = 32;
    const vm::VAddr src = f.proc.mmap(pages * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, pages * 4096, 9);
    f.faults().arm_nth(dma::kFaultTcError, 1);

    const std::uint32_t idx = f.replicate(src, pages, dst);
    f.kernel.run();

    // The errored first attempt is restarted through the ladder; the
    // restart re-resolved every slot from the live tables (nothing
    // moved, so no rewrite was needed) and streamed clean.
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, pages * 4096, 9));
    EXPECT_EQ(f.dev.stats().dma_retries, 1u);
    EXPECT_EQ(f.dev.stats().sva_retranslated, 0u);
    EXPECT_EQ(f.dev.stats().sva_faults, 0u);
}

TEST(MmuAware, SvaWalkFaultMidChainRecoversThroughTheLadder)
{
    Fixture f(uncoalesced_mmu_aware());
    const std::uint32_t pages = 32;
    const vm::VAddr src = f.proc.mmap(pages * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, pages * 4096, 31);
    // The 8th descriptor's IOMMU walk faults mid-stream; the retried
    // chain walks clean and completes.
    f.faults().arm_nth(kFaultSvaWalk, 8);

    const std::uint32_t idx = f.replicate(src, pages, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, pages * 4096, 31));
    const DeviceStats &ds = f.dev.stats();
    EXPECT_EQ(ds.sva_faults, 1u);
    EXPECT_EQ(ds.dma_retries, 1u);
    EXPECT_EQ(f.kernel.dma_engine().stats().gate_faults, 1u);
}

TEST(MmuAware, SvaWalkFaultSurfacesAsXlateFaultWithoutTheLadder)
{
    MemifConfig cfg = uncoalesced_mmu_aware();
    cfg.cpu_copy_fallback = false;
    cfg.dma_max_retries = 0;
    Fixture f(cfg);
    const std::uint32_t pages = 16;
    const vm::VAddr src = f.proc.mmap(pages * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, pages * 4096, 3);
    f.fill(dst, pages * 4096, 99);  // pre-existing destination content
    f.faults().arm_nth(kFaultSvaWalk, 1);  // first descriptor faults

    const std::uint32_t idx = f.replicate(src, pages, dst);
    f.kernel.run();

    // With the ladder disarmed the fault is terminal and carries its
    // own error code; the fault hit descriptor 0, so not a byte moved.
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idx).error, MovError::kXlateFault);
    EXPECT_TRUE(f.check(dst, pages * 4096, 99));
    EXPECT_EQ(f.dev.stats().sva_faults, 1u);
}

TEST(MmuAware, PolledSvaStreamCompletes)
{
    MemifConfig cfg = uncoalesced_mmu_aware();
    cfg.adaptive_polling = false;    // static rule: small => polled
    cfg.multi_tc_dispatch = false;   // (multi-TC keeps everything irq)
    Fixture f(cfg);
    const std::uint32_t pages = 32;
    const vm::VAddr src = f.proc.mmap(pages * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, pages * 4096, 58);

    // The kicked first request is irq-driven; the second small one
    // (64 KB, below the poll threshold) is served by the kernel
    // thread in polled mode.
    std::uint32_t idx0 = kNoRequest, idx1 = kNoRequest;
    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 2; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.num_pages = 16;
            (r == 0 ? idx0 : idx1) = idx;
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    // The kernel thread's polled wait tolerates gate stalls pushing
    // the completion estimate: it re-sleeps instead of declaring the
    // transfer stuck.
    EXPECT_EQ(f.user.request(idx0).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.user.request(idx1).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, pages * 4096, 58));
    EXPECT_EQ(f.dev.stats().polled_completions, 1u);
    EXPECT_EQ(f.dev.stats().watchdog_timeouts, 0u);
    EXPECT_EQ(f.kernel.dma_engine().stats().gated_transfers, 2u);
}

TEST(MmuAware, LeversOffStaysOnThePrePinnedPath)
{
    // tenanted() differs from mmu_aware() only by the two new levers:
    // with them off, no transfer is gated and no prefetch machinery
    // runs — the pre-pinned contract of PR 1-6 is untouched.
    Fixture f(MemifConfig::tenanted());
    const std::uint32_t pages = 32;
    const vm::VAddr src = f.proc.mmap(pages * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, pages * 4096, 12);

    const std::uint32_t idx = f.replicate(src, pages, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, pages * 4096, 12));
    const DeviceStats &ds = f.dev.stats();
    EXPECT_EQ(ds.stream_prefetch_issued, 0u);
    EXPECT_EQ(ds.sva_resolved, 0u);
    EXPECT_EQ(f.kernel.dma_engine().stats().gated_transfers, 0u);
}

}  // namespace
}  // namespace memif::core
