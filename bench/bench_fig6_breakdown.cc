/**
 * @file
 * Figure 6 reproduction: the time breakdown (per Table 1 operation) and
 * CPU usage of fulfilling a single mov_req, across page sizes 4 KB,
 * 64 KB and 2 MB and request sizes of 1..64 pages, for:
 *
 *   Linux     — the baseline page migration (synchronous, CPU copy)
 *   memif-mig — memif migration
 *   memif-rep — memif replication
 *
 * Paper claims checked here:
 *   - memif loses to Linux only at one 4 KB page per request;
 *   - small pages: VM management dominates; memif offsets it (up to
 *     ~15% lower CPU per Fig. 6);
 *   - 64 KB / 2 MB pages: byte copy dominates and the DMA gives memif a
 *     clear win (CPU usage reduced by up to ~38x for 2 MB).
 *
 * The measured request is the third of three identical requests so the
 * descriptor-chain cache is warm, matching steady-state use.
 */
#include <cstdio>

#include "harness.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"

namespace memif::bench {
namespace {

struct Measurement {
    sim::Duration elapsed = 0;  ///< request latency (submit -> notify)
    sim::Duration window = 0;   ///< full activity window (incl. kthread tail)
    sim::CpuAccounting cpu;

    double cpu_pct() const
    {
        const sim::Duration span = window ? window : elapsed;
        return span ? 100.0 * static_cast<double>(cpu.total) /
                          static_cast<double>(span)
                    : 0.0;
    }
};

/** One warm single-request memif measurement. */
Measurement
measure_memif(core::MovOp op, vm::PageSize ps, std::uint32_t npages)
{
    // Two warm-up requests (filling the descriptor-chain cache), then
    // one timed steady-state request.
    TestBed bed;
    RequestPlan warm{.op = op,
                     .page_size = ps,
                     .pages_per_request = npages,
                     .num_requests = 2};
    (void)run_memif_stream(bed, warm);

    RequestPlan timed = warm;
    timed.num_requests = 1;
    const StreamOutcome out = run_memif_stream(bed, timed);
    Measurement m;
    m.elapsed = out.timings[0].latency();
    m.window = out.elapsed;
    m.cpu = out.cpu;
    return m;
}

Measurement
measure_linux(vm::PageSize ps, std::uint32_t npages)
{
    TestBed bed;
    RequestPlan warm{.op = core::MovOp::kMigrate,
                     .page_size = ps,
                     .pages_per_request = npages,
                     .num_requests = 2};
    (void)run_linux_stream(bed, warm, 1);
    RequestPlan timed = warm;
    timed.num_requests = 1;
    const StreamOutcome out = run_linux_stream(bed, timed, 1);
    Measurement m;
    m.elapsed = out.timings[0].latency();
    m.window = out.elapsed;
    m.cpu = out.cpu;
    return m;
}

void
print_breakdown_row(const char *system, std::uint32_t npages,
                    const Measurement &m)
{
    const auto us = [&](sim::Op op) { return sim::to_us(m.cpu.op(op)); };
    std::printf(
        "%-10s %5u | %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f | %9.2f %6.1f\n",
        system, npages, us(sim::Op::kPrep), us(sim::Op::kRemap),
        us(sim::Op::kDmaConfig), us(sim::Op::kCopy), us(sim::Op::kRelease),
        us(sim::Op::kNotify) + us(sim::Op::kQueue),
        us(sim::Op::kSyscall) + us(sim::Op::kSched) + us(sim::Op::kOther),
        sim::to_us(m.elapsed), m.cpu_pct());
}

void
run_page_size(BenchReport &report, vm::PageSize ps, const char *label,
              const std::vector<std::uint32_t> &counts)
{
    std::printf("\n--- page size %s ---\n", label);
    std::printf(
        "%-10s %5s | %8s %8s %8s %8s %8s %8s %8s | %9s %6s\n", "system",
        "pages", "prep", "remap", "dmacfg", "copy", "release", "notify",
        "misc", "total_us", "cpu%");
    rule();
    auto record = [&](const char *system, std::uint32_t n,
                      const Measurement &m) {
        print_breakdown_row(system, n, m);
        report.add(std::string(system) + "-total-us-" + label, n,
                   sim::to_us(m.elapsed));
        report.add(std::string(system) + "-cpu-us-" + label, n,
                   sim::to_us(m.cpu.total));
    };
    for (const std::uint32_t n : counts) {
        record("Linux", n, measure_linux(ps, n));
        record("memif-mig", n, measure_memif(core::MovOp::kMigrate, ps, n));
        record("memif-rep", n,
               measure_memif(core::MovOp::kReplicate, ps, n));
    }
}

}  // namespace
}  // namespace memif::bench

int
main()
{
    using namespace memif::bench;
    BenchReport report("fig6_breakdown");
    header("Figure 6: single-request time breakdown and CPU usage");
    std::printf(
        "columns are CPU microseconds per Table 1 operation; total_us is\n"
        "request latency (submit->completion); cpu%% = CPU busy / elapsed.\n");

    run_page_size(report, memif::vm::PageSize::k4K, "4KB",
                  {1, 2, 4, 8, 16, 32, 64});
    run_page_size(report, memif::vm::PageSize::k64K, "64KB",
                  {1, 2, 4, 8, 16, 32});
    run_page_size(report, memif::vm::PageSize::k2M, "2MB", {1, 2});

    // Headline ratios the paper quotes.
    {
        const Measurement lin = measure_linux(memif::vm::PageSize::k4K, 64);
        const Measurement mem =
            measure_memif(memif::core::MovOp::kMigrate,
                          memif::vm::PageSize::k4K, 64);
        std::printf(
            "\n4KB x64: CPU usage %.1f%% (Linux) vs %.1f%% (memif): "
            "-%.1f points; total CPU time -%.1f%%\n"
            "         (paper: up to 15%% lower CPU usage for small pages)\n",
            lin.cpu_pct(), mem.cpu_pct(), lin.cpu_pct() - mem.cpu_pct(),
            100.0 * (1.0 - static_cast<double>(mem.cpu.total) /
                               static_cast<double>(lin.cpu.total)));
    }
    {
        const Measurement lin = measure_linux(memif::vm::PageSize::k2M, 2);
        const Measurement mem =
            measure_memif(memif::core::MovOp::kMigrate,
                          memif::vm::PageSize::k2M, 2);
        std::printf(
            "2MB x2 : memif CPU reduction vs Linux: %.1fx "
            "(paper: up to 38x for large pages)\n",
            static_cast<double>(lin.cpu.total) /
                static_cast<double>(mem.cpu.total));
    }
    {
        const Measurement lin = measure_linux(memif::vm::PageSize::k4K, 1);
        const Measurement mem =
            measure_memif(memif::core::MovOp::kMigrate,
                          memif::vm::PageSize::k4K, 1);
        std::printf(
            "4KB x1 : Linux %.2f us vs memif %.2f us "
            "(paper: memif loses only in this extreme case)\n",
            memif::sim::to_us(lin.elapsed), memif::sim::to_us(mem.elapsed));
    }
    return 0;
}
