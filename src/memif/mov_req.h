/**
 * @file
 * The move request (paper Fig. 3b): the hardware-independent
 * description of one replication or migration of a virtual memory
 * region, allocated from and living inside the shared region.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/types.h"

namespace memif::core {

/** The two move semantics of §3. */
enum class MovOp : std::uint32_t {
    /** memcpy() semantics between two mapped regions. */
    kReplicate = 0,
    /** Replace backing pages with pages on the destination node. */
    kMigrate = 1,
};

/** Lifecycle / completion status of a request. */
enum class MovStatus : std::uint32_t {
    kFree = 0,       ///< in the free queue
    kOwned,          ///< allocated by the application, being filled in
    kSubmitted,      ///< in staging/submission
    kInFlight,       ///< DMA running
    kDone,           ///< completed successfully
    kRaceDetected,   ///< §5.2 proceed-and-fail: CPU touched a page mid-move
    kAborted,        ///< §5.2 proceed-and-recover: migration rolled back
    kFailed,         ///< validation or resource failure (see error)
};

/** Error codes reported through MovReq::error. */
enum class MovError : std::uint32_t {
    kNone = 0,
    kBadAddress,     ///< region not mapped / not page aligned
    kBadNode,        ///< unknown destination node
    kNoMemory,       ///< destination node exhausted
    kBadRequest,     ///< malformed fields
    kRace,           ///< race detected during migration
    kAborted,        ///< migration aborted by the recovery handler
    kBusy,           ///< page already part of an in-flight move
    kFileBacked,     ///< file-backed pages (rejected unless enabled, §6.7)
    kDmaError,       ///< unrecoverable DMA failure (retries exhausted)
    kTimeout,        ///< watchdog expired: transfer stuck or irq lost
    kNoSpace,        ///< admission control: tenant quota exhausted
    kXlateFault,     ///< SVA-routed DMA: walk fault at consumption time
};

/**
 * One move request. Lives in the shared region; referenced everywhere
 * by its index. The application populates the parameter fields after
 * AllocRequest() and must not touch them again until the completion
 * notification returns the request (paper §4.1).
 */
struct MovReq {
    std::atomic<std::uint32_t> status{
        static_cast<std::uint32_t>(MovStatus::kFree)};
    MovOp op = MovOp::kReplicate;

    /** Source region base virtual address (page aligned). */
    std::uint64_t src_base = 0;
    /** Replication only: destination region base (page aligned). */
    std::uint64_t dst_base = 0;
    /** Migration only: destination memory node. */
    std::uint32_t dst_node = 0;
    /** Region length in pages of the containing Vma's granularity.
     *  Strided requests (rows != 0) leave this zero: their extent is
     *  described by the geometry fields below instead. */
    std::uint32_t num_pages = 0;

    /**
     * @name 2D / strided geometry (strided_dma lever).
     * rows != 0 marks the request as strided: it replicates `rows`
     * rows of `row_bytes` each, the source rows `src_pitch` bytes
     * apart and the destination rows `dst_pitch` bytes apart
     * (EDMA3 A/B-count framing; pitch == row_bytes degenerates to a
     * flat copy). Strided requests are kReplicate-only. When
     * gather_list is non-zero the source side is a gather instead:
     * gather_list is the virtual address (in the request's address
     * space) of a u64 array of `rows` per-row source addresses, and
     * src_base/src_pitch only name the vma the rows must lie in.
     */
    ///@{
    std::uint32_t rows = 0;
    std::uint32_t row_bytes = 0;
    std::uint64_t src_pitch = 0;
    std::uint64_t dst_pitch = 0;
    std::uint64_t gather_list = 0;
    ///@}

    /** Failure detail when status is an error status. */
    MovError error = MovError::kNone;
    /** Opaque application cookie, returned untouched. */
    std::uint64_t user_tag = 0;
    /** Simulated CPU the request was deposited from (per-CPU rings:
     *  selects the ring and the flight-table shard). */
    std::uint32_t submit_cpu = 0;

    /** Tenant address-space id; 0 is the device owner. Stamped by the
     *  submitting MemifUser; ignored unless multi_tenant is on. */
    std::uint32_t asid = 0;
    /** Set on admission rejection (error == kNoSpace): a hint, in
     *  virtual microseconds, for how long the caller should back off
     *  before retrying. Scales with the tenant's backlog. Zero means
     *  the rejection is permanent — the request's frame estimate alone
     *  exceeds the tenant's whole quota — and retrying is pointless. */
    std::uint32_t retry_after_us = 0;
    /** Driver-internal: request passed admission and holds a slot in
     *  its tenant's in-flight quota (cleared at terminal notify). */
    std::uint8_t admitted = 0;
    /** Driver-internal: originated by the migration daemon (managed
     *  mode). Completion is diverted to the daemon — never surfaces on
     *  the application's completion queues — and resource accounting
     *  charges the daemon's dedicated service class, not the tenant
     *  whose pages move (asid still names the target address space). */
    std::uint8_t daemon = 0;

    /** Diagnostics (virtual time): set by the library/driver. */
    std::uint64_t submit_time = 0;
    std::uint64_t complete_time = 0;

    MovStatus
    load_status() const
    {
        return static_cast<MovStatus>(
            status.load(std::memory_order_acquire));
    }

    void
    store_status(MovStatus s)
    {
        status.store(static_cast<std::uint32_t>(s),
                     std::memory_order_release);
    }

    /** True for the statuses a completed request can carry. */
    bool
    succeeded() const
    {
        return load_status() == MovStatus::kDone;
    }
};

}  // namespace memif::core
