/**
 * @file
 * The differential runner: replay one workload through a real memif
 * instance — under any config preset and any schedule seed — and check
 * every observable against the reference model:
 *
 *  - each completion's (status, error) is in the model's allowed set;
 *  - each request completes exactly once (no lost / duplicate
 *    completions);
 *  - user-visible memory is byte-identical to the model at every
 *    barrier and at the end;
 *  - the driver quiesces clean: MemifDevice::check_quiesced() passes
 *    (empty flight table, drained queues, no leaked descriptors,
 *    consistent xlate-cache entries) and physical-frame accounting
 *    returns to baseline plus the frames parked in magazines.
 *
 * A run is identified by the pair (workload seed, schedule seed); with
 * the same pair, the run — and any failure — replays bit-identically.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/reference_model.h"
#include "check/workload.h"
#include "memif/device.h"

namespace memif::check {

/** One named lever configuration the differential suite covers. Every
 *  new config lever must appear in (at least) one preset here — see
 *  CONTRIBUTING.md. */
struct Preset {
    const char *name;
    core::MemifConfig config;
};

/** The eight standard presets: levers-off, pipelined, moderated,
 *  scaled, tenanted, mmu_aware, managed, tiered (each a superset of
 *  the previous one's levers). */
const std::vector<Preset> &presets();

struct RunOptions {
    core::MemifConfig config{};
    /** Same-timestamp tie-break seed; 0 = deterministic FIFO order. */
    std::uint64_t schedule_seed = 0;
    /** Arm probabilistic DMA/alloc fault injection (seeded from the
     *  workload and schedule seeds; replays identically). */
    bool arm_faults = false;
    /**
     * Self-test hook: make the nth DMA chain fail (dma.tc_error)
     * WITHOUT declaring faults to the model — a deliberate,
     * deterministic divergence. Pair with cpu_copy_fallback = false
     * AND dma_max_retries = 0 so the single armed occurrence reaches a
     * terminal status instead of being absorbed by the retry ladder;
     * the run must then fail, which is what the minimizer tests
     * shrink. 0 = off.
     */
    std::uint64_t inject_undeclared_fault_nth = 0;
};

struct RunResult {
    bool ok = true;
    /** First divergence, with enough context to act on. */
    std::string failure;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    /** Admission-control bounces (kNoSpace) the runner retried;
     *  multi_tenant presets only. */
    std::uint64_t rejected = 0;
    /** Virtual end time of the run. */
    std::uint64_t end_time = 0;
    /** FNV-1a over final region bytes only: must be identical across
     *  presets and schedules for the same workload. */
    std::uint64_t mem_digest = 0;
    /** FNV-1a over bytes + per-request outcomes + end time: must be
     *  identical across replays of the same (workload, schedule,
     *  preset) triple. */
    std::uint64_t full_digest = 0;
    core::DeviceStats stats{};
};

/** Replay @p w through a fresh simulated machine under @p opt. */
RunResult run_workload(const Workload &w, const RunOptions &opt);

/** "(workload_seed=S, schedule_seed=T)" — the replay coordinates every
 *  failure message leads with. */
std::string seed_pair(const Workload &w, const RunOptions &opt);

}  // namespace memif::check
